GO ?= go

.PHONY: build test vet bench bench-short bench-compare serve fleet-demo fleet-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The default test path runs vet first, mirroring the tier-1 gate, then
# race-checks the packages whose workers share the lane-batch buffers and
# queues (service fleet, simulated GPU engine, cpuref pools, the shared
# hypertree memo cache, and the cross-signature batched verification
# primitives in wots/fors/xmss/hypertree).
test: vet
	$(GO) test ./...
	$(GO) test -race ./service/... ./internal/gpu/... ./internal/cpuref/... ./internal/spx/treecache/... ./internal/spx/ ./internal/spx/wots/ ./internal/spx/fors/ ./internal/spx/xmss/ ./internal/spx/hypertree/

# bench regenerates the paper evaluation as machine-readable JSON so the
# perf trajectory can be tracked across PRs (BENCH_*.json).
bench: build
	$(GO) run ./cmd/herosign-bench -json -batch 256 -sample 2 > BENCH_latest.json
	@echo wrote BENCH_latest.json

# bench-short is the CI smoke lane: a fast subset covering a modeled table,
# the tuner, and the wall-clock experiments (lane engine, admission control
# under overload, tenant isolation under a noisy neighbor, hypertree
# memoization cold-vs-warm, lane-batched verification vs the scalar
# baseline).
bench-short: build
	$(GO) run ./cmd/herosign-bench -batch 64 -sample 1 -exp table1,table4,lanes,overload,tenants,memo,verify

# bench-compare regenerates BENCH_latest.json and diffs it against the
# newest committed dated snapshot.
bench-compare: bench
	$(GO) run ./cmd/bench-compare -old "$$(ls BENCH_2*.json | sort | tail -1)" -new BENCH_latest.json

serve: build
	$(GO) run ./cmd/herosign-serve

# fleet-demo runs the in-process fleet-of-fleets scenario: three leaf
# servers behind a remote-proxy front end, one leaf killed mid-run, with
# assertions on ejection latency, goodput recovery, tail latency, the hedge
# budget and signature byte-identity.
fleet-demo: build
	$(GO) run ./examples/fleet-demo

# fleet-smoke is the two-process integration test: a leaf herosign-serve
# and a remote-only front end over real TCP, 200 verified signs, graceful
# SIGTERM drain on both.
fleet-smoke:
	./scripts/fleet_smoke.sh
