GO ?= go

.PHONY: build test vet bench serve

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The default test path runs vet first, mirroring the tier-1 gate.
test: vet
	$(GO) test ./...

# bench regenerates the paper evaluation as machine-readable JSON so the
# perf trajectory can be tracked across PRs (BENCH_*.json).
bench: build
	$(GO) run ./cmd/herosign-bench -json -batch 256 -sample 2 > BENCH_latest.json
	@echo wrote BENCH_latest.json

serve: build
	$(GO) run ./cmd/herosign-serve
