GO ?= go

.PHONY: build test vet bench bench-short bench-compare serve fleet-demo fleet-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The default test path runs vet first, mirroring the tier-1 gate, then
# race-checks the packages whose workers share the lane-batch buffers and
# queues (service fleet incl. remote proxies + dynamic membership, the
# fault injector, simulated GPU engine, cpuref pools, the shared hypertree
# memo cache, and the cross-signature batched verification primitives in
# wots/fors/xmss/hypertree).
test: vet
	$(GO) test ./...
	$(GO) test -race ./service/... ./internal/faultinject/ ./internal/gpu/... ./internal/cpuref/... ./internal/spx/treecache/... ./internal/spx/ ./internal/spx/wots/ ./internal/spx/fors/ ./internal/spx/xmss/ ./internal/spx/hypertree/

# bench regenerates the paper evaluation as machine-readable JSON so the
# perf trajectory can be tracked across PRs (BENCH_*.json).
bench: build
	$(GO) run ./cmd/herosign-bench -json -batch 256 -sample 2 > BENCH_latest.json
	@echo wrote BENCH_latest.json

# bench-short is the CI smoke lane: a fast subset covering a modeled table,
# the tuner, and the wall-clock experiments (lane engine, admission control
# under overload, tenant isolation under a noisy neighbor, hypertree
# memoization cold-vs-warm, lane-batched verification vs the scalar
# baseline).
bench-short: build
	$(GO) run ./cmd/herosign-bench -batch 64 -sample 1 -exp table1,table4,lanes,overload,tenants,memo,verify

# bench-compare regenerates BENCH_latest.json and diffs it against the
# newest committed dated snapshot.
bench-compare: bench
	$(GO) run ./cmd/bench-compare -old "$$(ls BENCH_2*.json | sort | tail -1)" -new BENCH_latest.json

serve: build
	$(GO) run ./cmd/herosign-serve

# fleet-demo runs the in-process fleet-of-fleets scenario with
# authenticated dynamic membership: three leaf servers announce themselves
# to a zero-backend front end, one leaf crashes mid-run (ejected by health,
# retired by lease expiry), a fourth joins late and then leaves cleanly,
# with assertions on ejection latency, goodput recovery, tail latency, the
# hedge budget, the membership event log and signature byte-identity.
fleet-demo: build
	$(GO) run ./examples/fleet-demo

# fleet-smoke is the multi-process integration test over real TCP: a
# static leaf+front lane (200 verified signs, SIGTERM drains), then a
# chaos lane — a -fleet-dynamic front end, three leaves joining with a
# shared -fleet-secret (one slowed by -chaos fault injection), one leaf
# SIGKILLed mid-lane (ejection + lease-expired retirement, signs keep
# succeeding via failover) and one departing cleanly via SIGTERM leave.
fleet-smoke:
	./scripts/fleet_smoke.sh
