package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"herosign/service"
)

// eventLog is a fixed-capacity ring of membership and health transitions,
// surfaced through /v1/stats so operators can read a fleet's recent
// history (joined/left/lease-expired/ejected/recovered) without logs.
type eventLog struct {
	mu    sync.Mutex
	ring  []service.FleetEvent
	next  int
	total int
}

func newEventLog(capacity int) *eventLog {
	if capacity <= 0 {
		capacity = 64
	}
	return &eventLog{ring: make([]service.FleetEvent, capacity)}
}

func (e *eventLog) add(ev service.FleetEvent) {
	e.mu.Lock()
	e.ring[e.next] = ev
	e.next = (e.next + 1) % len(e.ring)
	e.total++
	e.mu.Unlock()
}

// snapshot returns the retained events, oldest first.
func (e *eventLog) snapshot() []service.FleetEvent {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := e.total
	if n > len(e.ring) {
		n = len(e.ring)
	}
	out := make([]service.FleetEvent, 0, n)
	start := (e.next - n + len(e.ring)) % len(e.ring)
	for i := 0; i < n; i++ {
		out = append(out, e.ring[(start+i)%len(e.ring)])
	}
	return out
}

// Membership wire types. A join is idempotent: re-joining an existing
// member renews its lease, so a leaf's announce loop can use one request
// shape for both.
type fleetJoinReq struct {
	URL string `json:"url"`
}

type fleetJoinResp struct {
	LeaseMs int64 `json:"lease_ms"`
}

type fleetErrResp struct {
	Error string `json:"error"`
}

// RegistrarOptions tunes the front end's membership registrar.
type RegistrarOptions struct {
	// LeaseTTL is how long a join/heartbeat keeps a leaf admitted
	// (default 3s). A leaf that misses its lease is retired exactly as if
	// it had sent a leave, with a "lease-expired" event instead of "left".
	LeaseTTL time.Duration
	// SweepInterval is how often expired leases are collected (default
	// LeaseTTL/2). Retiring a member drains its pool under the service's
	// own drain deadline.
	SweepInterval time.Duration
}

func (o RegistrarOptions) withDefaults() RegistrarOptions {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 3 * time.Second
	}
	if o.SweepInterval <= 0 {
		o.SweepInterval = o.LeaseTTL / 2
	}
	return o
}

type member struct {
	url     string
	backend *Backend
	expires time.Time
}

// Registrar runs the front end's half of dynamic fleet membership: leaves
// announce themselves with POST /v1/fleet/join, keep their lease alive
// with POST /v1/fleet/heartbeat, and retire cleanly with DELETE
// /v1/fleet/leave. A join admits the leaf end to end — key-domain catalog
// verification, Warm, router integration — so it serves traffic without a
// front-end restart; a leave (or an expired lease) drains and retires it
// the same way. All membership endpoints require fleet authentication
// when the fleet has a Secret.
//
// Construct the fleet with NewDynamicFleet and hand both to NewRegistrar;
// Registrar.Close owns the fleet's shutdown.
type Registrar struct {
	svc   *service.Service
	fleet *Fleet
	opts  RegistrarOptions
	auth  *service.FleetAuth

	mu      sync.Mutex
	members map[string]*member

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewRegistrar wires a dynamic fleet's membership endpoints to a running
// front-end service and starts the lease sweeper. It also registers a
// stats hook so the fleet's membership events (and auth rejections on the
// membership endpoints) fold into the service's /v1/stats.
func NewRegistrar(svc *service.Service, fleet *Fleet, opts RegistrarOptions) *Registrar {
	r := &Registrar{
		svc:     svc,
		fleet:   fleet,
		opts:    opts.withDefaults(),
		members: make(map[string]*member),
		stop:    make(chan struct{}),
	}
	if fleet.opts.Secret != "" {
		r.auth = service.NewFleetAuth(fleet.opts.Secret)
	}
	svc.AddStatsHook(func(st *service.Stats) {
		st.FleetEvents = append(st.FleetEvents, fleet.Events()...)
		if r.auth != nil {
			st.AuthRejected += r.auth.Rejected()
		}
	})
	r.wg.Add(1)
	go r.sweepLoop()
	return r
}

// Handler serves the membership endpoints. Mount it alongside the
// service's own Handler — typically on the same mux, with the service's
// /v1/* staying public on the front end while /v1/fleet/* is always
// authenticated when a secret is configured.
func (r *Registrar) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/fleet/join", r.handleJoin)
	mux.HandleFunc("POST /v1/fleet/heartbeat", r.handleHeartbeat)
	mux.HandleFunc("DELETE /v1/fleet/leave", r.handleLeave)
	var h http.Handler = mux
	if r.auth != nil {
		h = r.auth.Middleware(h)
	}
	return h
}

// Members lists the current members' URLs (sorted by admission is not
// guaranteed; callers sort if they need stable output).
func (r *Registrar) Members() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.members))
	for u := range r.members {
		out = append(out, u)
	}
	return out
}

func (r *Registrar) handleJoin(w http.ResponseWriter, req *http.Request) {
	var body fleetJoinReq
	if err := decodeFleetJSON(req, &body); err != nil {
		writeFleetErr(w, http.StatusBadRequest, err.Error())
		return
	}
	leafURL, err := normalizeLeafURL(body.URL)
	if err != nil {
		writeFleetErr(w, http.StatusBadRequest, err.Error())
		return
	}

	// Idempotent re-join renews the lease.
	r.mu.Lock()
	if m, ok := r.members[leafURL]; ok {
		m.expires = time.Now().Add(r.opts.LeaseTTL)
		r.mu.Unlock()
		writeFleetJSON(w, http.StatusOK, fleetJoinResp{LeaseMs: r.opts.LeaseTTL.Milliseconds()})
		return
	}
	r.mu.Unlock()

	// Verify the leaf's key-domain catalog covers every front-end shard
	// byte-identically before it touches the router. Warm re-checks the
	// assigned shard; this check catches a leaf launched with the right
	// key for one shard but a different layout for the rest.
	if err := r.verifyCatalog(req.Context(), leafURL); err != nil {
		writeFleetErr(w, http.StatusBadGateway, err.Error())
		return
	}

	backend, err := r.fleet.AddLeaf(leafURL)
	if err != nil {
		writeFleetErr(w, http.StatusConflict, err.Error())
		return
	}
	if err := r.svc.AddBackend(backend); err != nil {
		r.fleet.RemoveLeaf(backend)
		_ = backend.Close()
		writeFleetErr(w, http.StatusBadGateway, fmt.Sprintf("admit %s: %v", leafURL, err))
		return
	}

	r.mu.Lock()
	r.members[leafURL] = &member{
		url:     leafURL,
		backend: backend,
		expires: time.Now().Add(r.opts.LeaseTTL),
	}
	r.mu.Unlock()
	r.fleet.record("joined", leafURL, "")
	writeFleetJSON(w, http.StatusOK, fleetJoinResp{LeaseMs: r.opts.LeaseTTL.Milliseconds()})
}

func (r *Registrar) handleHeartbeat(w http.ResponseWriter, req *http.Request) {
	var body fleetJoinReq
	if err := decodeFleetJSON(req, &body); err != nil {
		writeFleetErr(w, http.StatusBadRequest, err.Error())
		return
	}
	leafURL, err := normalizeLeafURL(body.URL)
	if err != nil {
		writeFleetErr(w, http.StatusBadRequest, err.Error())
		return
	}
	r.mu.Lock()
	m, ok := r.members[leafURL]
	if ok {
		m.expires = time.Now().Add(r.opts.LeaseTTL)
	}
	r.mu.Unlock()
	if !ok {
		// The leaf thinks it is a member but the registrar disagrees
		// (front restart, prior lease expiry) — 404 tells the announcer
		// to re-join.
		writeFleetErr(w, http.StatusNotFound, fmt.Sprintf("%s is not a fleet member", leafURL))
		return
	}
	writeFleetJSON(w, http.StatusOK, fleetJoinResp{LeaseMs: r.opts.LeaseTTL.Milliseconds()})
}

func (r *Registrar) handleLeave(w http.ResponseWriter, req *http.Request) {
	var body fleetJoinReq
	if err := decodeFleetJSON(req, &body); err != nil {
		writeFleetErr(w, http.StatusBadRequest, err.Error())
		return
	}
	leafURL, err := normalizeLeafURL(body.URL)
	if err != nil {
		writeFleetErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if !r.retire(leafURL, "left") {
		writeFleetErr(w, http.StatusNotFound, fmt.Sprintf("%s is not a fleet member", leafURL))
		return
	}
	writeFleetJSON(w, http.StatusOK, struct{}{})
}

// retire removes a member end to end: out of the sibling set first (no new
// hedges or failovers target it), then out of the router (its pool drains
// under the drain timeout), then the event is logged.
func (r *Registrar) retire(leafURL, event string) bool {
	r.mu.Lock()
	m, ok := r.members[leafURL]
	if ok {
		delete(r.members, leafURL)
	}
	r.mu.Unlock()
	if !ok {
		return false
	}
	r.fleet.RemoveLeaf(m.backend)
	if err := r.svc.RemoveBackend(m.backend); err != nil {
		// The router may have already dropped it (service shutdown); the
		// backend's fleet reference still needs releasing.
		_ = m.backend.Close()
	}
	r.fleet.record(event, leafURL, "")
	return true
}

// verifyCatalog fetches the candidate leaf's /v1/keys and requires every
// front-end shard's key domain to appear with a byte-identical public key.
func (r *Registrar) verifyCatalog(ctx context.Context, leafURL string) error {
	cctx, cancel := context.WithTimeout(ctx, r.fleet.opts.ProbeTimeout)
	defer cancel()
	catalog, err := r.fleet.tr.keys(cctx, leafURL)
	if err != nil {
		return fmt.Errorf("fetch %s key catalog: %v", leafURL, err)
	}
	if want := r.svc.Params().Name; catalog.Params != want {
		return fmt.Errorf("leaf %s serves %s, front end wants %s", leafURL, catalog.Params, want)
	}
	byID := make(map[string][]byte, len(catalog.Keys))
	for _, k := range catalog.Keys {
		byID[k.KeyID] = k.PublicKey
	}
	for _, sh := range r.svc.Shards() {
		pub, ok := byID[sh.KeyID]
		if !ok {
			return fmt.Errorf("leaf %s does not serve key domain %s (shard %d) — start it with the front end's master key and shard layout",
				leafURL, sh.KeyID, sh.ID)
		}
		if !bytes.Equal(pub, sh.PublicKey.Bytes()) {
			return fmt.Errorf("leaf %s key %s has a different public key (key-id collision?)", leafURL, sh.KeyID)
		}
	}
	return nil
}

func (r *Registrar) sweepLoop() {
	defer r.wg.Done()
	tick := time.NewTicker(r.opts.SweepInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
			now := time.Now()
			var expired []string
			r.mu.Lock()
			for u, m := range r.members {
				if now.After(m.expires) {
					expired = append(expired, u)
				}
			}
			r.mu.Unlock()
			for _, u := range expired {
				r.retire(u, "lease-expired")
			}
		}
	}
}

// Close stops the lease sweeper and shuts the dynamic fleet down. Current
// members are not drained individually — closing happens at front-end
// shutdown, where the service's own Close drains the router.
func (r *Registrar) Close() error {
	r.stopOnce.Do(func() {
		close(r.stop)
	})
	r.wg.Wait()
	return r.fleet.Close()
}

// AnnouncerOptions configures a leaf's membership announcer.
type AnnouncerOptions struct {
	// FrontURL is the front end's base URL (http://host:port).
	FrontURL string
	// SelfURL is this leaf's advertised base URL, as the front end should
	// dial it.
	SelfURL string
	// Secret must match the front end's fleet secret when set.
	Secret string
	// JoinTimeout bounds one join/heartbeat/leave request (default 5s).
	JoinTimeout time.Duration
	// RetryInterval paces re-join attempts while the front end is
	// unreachable (default 1s).
	RetryInterval time.Duration
	// Client overrides the HTTP client (tests; TLS configs).
	Client *http.Client
	// Logf, when set, receives membership lifecycle messages.
	Logf func(format string, args ...any)
}

func (o AnnouncerOptions) withDefaults() AnnouncerOptions {
	if o.JoinTimeout <= 0 {
		o.JoinTimeout = 5 * time.Second
	}
	if o.RetryInterval <= 0 {
		o.RetryInterval = time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Announcer runs the leaf's half of dynamic membership: it joins the
// front end's registrar, heartbeats at a third of the granted lease so a
// healthy leaf never lapses, re-joins after a front-end restart, and
// leaves cleanly on shutdown. Start it after the leaf's HTTP server is
// listening; call Leave BEFORE draining the leaf's own queue on SIGTERM,
// so the front end stops routing new work to a leaf that is about to
// refuse it.
type Announcer struct {
	opts AnnouncerOptions
	auth *service.FleetAuth

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewAnnouncer validates the URLs and builds the announcer (not yet
// started).
func NewAnnouncer(opts AnnouncerOptions) (*Announcer, error) {
	opts = opts.withDefaults()
	var err error
	if opts.FrontURL, err = normalizeLeafURL(opts.FrontURL); err != nil {
		return nil, fmt.Errorf("remote: front URL: %w", err)
	}
	if opts.SelfURL, err = normalizeLeafURL(opts.SelfURL); err != nil {
		return nil, fmt.Errorf("remote: advertised URL: %w", err)
	}
	a := &Announcer{opts: opts, stop: make(chan struct{})}
	if opts.Secret != "" {
		a.auth = service.NewFleetAuth(opts.Secret)
	}
	return a, nil
}

// Start launches the join/heartbeat loop in the background. The first join
// is retried until it succeeds (the front end may not be up yet), then the
// lease is renewed at a third of its TTL; a 404 on heartbeat re-joins.
func (a *Announcer) Start() {
	a.wg.Add(1)
	go a.loop()
}

func (a *Announcer) loop() {
	defer a.wg.Done()
	leaseMs := int64(0)
	for {
		if leaseMs <= 0 {
			ms, err := a.post("/v1/fleet/join")
			if err != nil {
				a.opts.Logf("herosign: fleet join %s: %v (retrying)", a.opts.FrontURL, err)
				if !a.sleep(a.opts.RetryInterval) {
					return
				}
				continue
			}
			leaseMs = ms
			a.opts.Logf("herosign: joined fleet at %s (lease %dms)", a.opts.FrontURL, leaseMs)
		}
		interval := time.Duration(leaseMs) * time.Millisecond / 3
		if interval < 100*time.Millisecond {
			interval = 100 * time.Millisecond
		}
		if !a.sleep(interval) {
			return
		}
		if _, err := a.post("/v1/fleet/heartbeat"); err != nil {
			a.opts.Logf("herosign: fleet heartbeat %s: %v (re-joining)", a.opts.FrontURL, err)
			leaseMs = 0
		}
	}
}

func (a *Announcer) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-a.stop:
		return false
	case <-t.C:
		return true
	}
}

// Stop halts the announce loop without telling the front end — the crash
// path: the lease simply expires and the registrar retires the leaf with a
// lease-expired event. Leave calls it implicitly for the clean path.
func (a *Announcer) Stop() {
	a.stopOnce.Do(func() {
		close(a.stop)
	})
	a.wg.Wait()
}

// Leave stops the heartbeat loop and tells the registrar this leaf is
// departing. Call it before draining the leaf's queue so the front end
// reroutes in-flight-adjacent work instead of racing the drain deadline.
func (a *Announcer) Leave(ctx context.Context) error {
	a.Stop()
	_, err := a.request(ctx, http.MethodDelete, "/v1/fleet/leave")
	return err
}

func (a *Announcer) post(path string) (int64, error) {
	ctx, cancel := context.WithTimeout(context.Background(), a.opts.JoinTimeout)
	defer cancel()
	return a.request(ctx, http.MethodPost, path)
}

func (a *Announcer) request(ctx context.Context, method, path string) (int64, error) {
	body, _ := json.Marshal(fleetJoinReq{URL: a.opts.SelfURL})
	req, err := http.NewRequestWithContext(ctx, method, a.opts.FrontURL+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if a.auth != nil {
		a.auth.Sign(req)
	}
	resp, err := a.opts.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		var er fleetErrResp
		msg := http.StatusText(resp.StatusCode)
		if json.Unmarshal(raw, &er) == nil && er.Error != "" {
			msg = er.Error
		}
		return 0, fmt.Errorf("%s %s: %d: %s", method, path, resp.StatusCode, msg)
	}
	var jr fleetJoinResp
	if err := json.Unmarshal(raw, &jr); err != nil {
		return 0, nil // leave's empty body is fine
	}
	return jr.LeaseMs, nil
}

func normalizeLeafURL(raw string) (string, error) {
	raw = strings.TrimSpace(raw)
	u, err := url.Parse(raw)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return "", fmt.Errorf("URL %q must be absolute (http://host:port)", raw)
	}
	return strings.TrimRight(raw, "/"), nil
}

func decodeFleetJSON(req *http.Request, out any) error {
	raw, err := io.ReadAll(io.LimitReader(req.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("read body: %v", err)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("decode body: %v", err)
	}
	return nil
}

func writeFleetJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeFleetErr(w http.ResponseWriter, status int, msg string) {
	writeFleetJSON(w, status, fleetErrResp{Error: msg})
}
