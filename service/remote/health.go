package remote

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// leafState is the health checker's three-state machine.
type leafState int32

const (
	stateHealthy leafState = iota
	stateEjected
	stateHalfOpen
)

func (s leafState) String() string {
	switch s {
	case stateHealthy:
		return "healthy"
	case stateEjected:
		return "ejected"
	case stateHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// leaf is one remote server's health record. The probe loop, the request
// path and stats snapshots all touch it; everything mutable sits behind mu
// except the monotonic counters.
type leaf struct {
	url  string
	host string

	// onEvent, when set, receives health transitions ("ejected",
	// "recovered") for the fleet event log. Called with l.mu held; it must
	// not call back into the leaf.
	onEvent func(typ, url, note string)

	mu    sync.Mutex
	state leafState
	keyID string // front-end shard key domain, set at Warm

	capacity  int // admission-cap hint learned from the leaf's stats
	prefBatch int // leaf's flush threshold, for BatchHinter alignment

	ewmaSigs  float64 // probe-fed observed sigs/s (the dispatch weight)
	ewmaLatMs float64 // smoothed per-batch request latency

	quarantine      time.Duration // current backoff (doubles per re-ejection)
	quarantineUntil time.Time

	consecProbeFail int
	consecReqFail   int

	// windowed request outcomes, reset at every probe tick; feeds the
	// error-rate ejection rule.
	winSends int64
	winFails int64

	// probe baseline for observed-throughput deltas.
	lastSignMsgs int64
	lastProbe    time.Time
	probeSeeded  bool

	inflight atomic.Int64

	probes        atomic.Int64
	probeFailures atomic.Int64
	ejections     atomic.Int64
	primarySends  atomic.Int64
	hedgesSent    atomic.Int64
	hedgeWins     atomic.Int64
	failovers     atomic.Int64
	errorsTotal   atomic.Int64
	overloads     atomic.Int64
}

func newLeaf(url, host string) *leaf {
	return &leaf{url: url, host: host, state: stateHealthy}
}

// available reports whether the router may dispatch to this leaf: healthy,
// or half-open with no trial in flight (one trial at a time probes the
// leaf back in).
func (l *leaf) available() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch l.state {
	case stateHealthy:
		return true
	case stateHalfOpen:
		return l.inflight.Load() == 0
	}
	return false
}

// weight is the dispatch weight: the probe-fed EWMA while serving, zero
// while ejected so shard aggregates reflect live capacity only. A serving
// leaf's weight is floored at min (Options.MinWeight): a leaf that was
// idle between probes observes zero sigs/s, and without the floor it
// would never be routed to again — idle-but-healthy must stay routable.
func (l *leaf) weight(min float64) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.state == stateEjected {
		return 0
	}
	if l.ewmaSigs < min {
		return min
	}
	return l.ewmaSigs
}

// eject quarantines the leaf with exponential backoff. Caller holds l.mu.
func (l *leaf) ejectLocked(o Options) {
	if l.state == stateEjected {
		return
	}
	l.state = stateEjected
	l.ejections.Add(1)
	if l.quarantine <= 0 {
		l.quarantine = o.BaseQuarantine
	} else {
		l.quarantine *= 2
		if l.quarantine > o.MaxQuarantine {
			l.quarantine = o.MaxQuarantine
		}
	}
	l.quarantineUntil = time.Now().Add(l.quarantine)
	l.consecReqFail = 0
	l.consecProbeFail = 0
	if l.onEvent != nil {
		l.onEvent("ejected", l.url, "quarantine "+l.quarantine.String())
	}
}

// observeSuccess folds one completed batch into the health record. A
// success during a half-open trial restores the leaf to healthy and resets
// its quarantine backoff.
func (l *leaf) observeSuccess(o Options, dur time.Duration, n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.winSends++
	l.consecReqFail = 0
	ms := float64(dur.Microseconds()) / 1e3
	if l.ewmaLatMs <= 0 {
		l.ewmaLatMs = ms
	} else {
		l.ewmaLatMs = (1-o.EWMAAlpha)*l.ewmaLatMs + o.EWMAAlpha*ms
	}
	if l.state == stateHalfOpen {
		l.state = stateHealthy
		l.quarantine = 0
		if l.onEvent != nil {
			l.onEvent("recovered", l.url, "half-open trial succeeded")
		}
	}
}

// observeHardFailure records a transport/5xx failure; enough consecutive
// ones eject without waiting for a probe, and any failure during a
// half-open trial re-ejects immediately.
func (l *leaf) observeHardFailure(o Options) {
	l.errorsTotal.Add(1)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.winSends++
	l.winFails++
	l.consecReqFail++
	if l.state == stateHalfOpen || l.consecReqFail >= o.EjectRequestFailures {
		l.ejectLocked(o)
	}
}

// observeSoftFailure records a non-ejecting error (4xx: a proxy bug, not a
// sick leaf).
func (l *leaf) observeSoftFailure() {
	l.errorsTotal.Add(1)
	l.mu.Lock()
	l.winSends++
	l.mu.Unlock()
}

// observeOverload records a leaf 429 — a healthy-but-full signal that must
// not feed ejection.
func (l *leaf) observeOverload() {
	l.overloads.Add(1)
	l.mu.Lock()
	l.winSends++
	l.mu.Unlock()
}

// probeLoop drives the fleet's health checker: every ProbeInterval it
// probes all leaves concurrently, folds observed throughput into the
// weights, advances quarantines, and applies the error-rate and latency
// z-score ejection rules.
func (f *Fleet) probeLoop() {
	tick := time.NewTicker(f.opts.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-tick.C:
			var wg sync.WaitGroup
			for _, l := range f.leafList() {
				wg.Add(1)
				go func(l *leaf) {
					defer wg.Done()
					f.probe(l)
				}(l)
			}
			wg.Wait()
			f.evaluateOutliers()
		}
	}
}

// probe fetches one leaf's /v1/stats and updates its record.
func (f *Fleet) probe(l *leaf) {
	ctx, cancel := context.WithTimeout(context.Background(), f.opts.ProbeTimeout)
	defer cancel()
	now := time.Now()
	st, err := f.tr.stats(ctx, l.url)
	l.probes.Add(1)
	if err != nil {
		l.probeFailures.Add(1)
		l.mu.Lock()
		l.consecProbeFail++
		l.probeSeeded = false // the throughput delta restarts after a gap
		if l.consecProbeFail >= f.opts.EjectProbeFailures {
			l.ejectLocked(f.opts)
		}
		l.mu.Unlock()
		return
	}

	var signMsgs int64
	for _, d := range st.Devices {
		signMsgs += d.SignMsgs
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.consecProbeFail = 0
	if l.probeSeeded {
		elapsed := now.Sub(l.lastProbe).Seconds()
		if delta := signMsgs - l.lastSignMsgs; delta > 0 && elapsed > 0 {
			obs := float64(delta) / elapsed
			if l.ewmaSigs <= 0 {
				l.ewmaSigs = obs
			} else {
				l.ewmaSigs = (1-f.opts.EWMAAlpha)*l.ewmaSigs + f.opts.EWMAAlpha*obs
			}
		}
	}
	l.lastSignMsgs, l.lastProbe, l.probeSeeded = signMsgs, now, true

	// Error-rate rule over the window since the previous tick.
	if l.state == stateHealthy && l.winSends >= 8 &&
		float64(l.winFails)/float64(l.winSends) > f.opts.ErrorRateLimit {
		l.ejectLocked(f.opts)
	}
	l.winSends, l.winFails = 0, 0

	// A reachable leaf whose quarantine has lapsed earns half-open trials.
	if l.state == stateEjected && now.After(l.quarantineUntil) {
		l.state = stateHalfOpen
	}
}

// evaluateOutliers applies the latency z-score rule across the healthy
// leaves: a leaf whose smoothed batch latency sits LatencyZLimit standard
// deviations above the fleet mean (and above an absolute floor, so quiet
// microsecond-scale jitter never trips it) is ejected.
func (f *Fleet) evaluateOutliers() {
	leaves := f.leafList()
	if f.opts.LatencyZLimit < 0 || len(leaves) < 3 {
		return
	}
	type sample struct {
		l   *leaf
		lat float64
	}
	var samples []sample
	for _, l := range leaves {
		l.mu.Lock()
		if l.state == stateHealthy && l.ewmaLatMs > 0 {
			samples = append(samples, sample{l, l.ewmaLatMs})
		}
		l.mu.Unlock()
	}
	if len(samples) < 3 {
		return
	}
	var sum, sumSq float64
	for _, s := range samples {
		sum += s.lat
		sumSq += s.lat * s.lat
	}
	n := float64(len(samples))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance <= 0 {
		return
	}
	std := math.Sqrt(variance)
	const latencyFloorMs = 5
	for _, s := range samples {
		if s.lat < latencyFloorMs {
			continue
		}
		if (s.lat-mean)/std > f.opts.LatencyZLimit {
			s.l.mu.Lock()
			s.l.ejectLocked(f.opts)
			s.l.mu.Unlock()
		}
	}
}
