package remote

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"herosign/internal/spx"
	"herosign/internal/spx/params"
	"herosign/service"
)

// recordingLeaf is a wire-faithful fake leaf that keeps the raw JSON bodies
// of every batch it serves, so tests can assert exactly what a front end
// put on the wire.
type recordingLeaf struct {
	key   *spx.PrivateKey
	keyID string

	mu           sync.Mutex
	signBodies   [][]byte
	verifyBodies [][]byte

	srv *httptest.Server
}

func (l *recordingLeaf) lastSignBody(t *testing.T) []byte {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.signBodies) == 0 {
		t.Fatal("leaf served no sign batches")
	}
	return l.signBodies[len(l.signBodies)-1]
}

func newRecordingLeaf(t *testing.T, key *spx.PrivateKey) *recordingLeaf {
	l := &recordingLeaf{key: key, keyID: service.KeyID(&key.PublicKey)}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/keys", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"params": key.Params.Name,
			"keys": []map[string]any{{
				"key_id": l.keyID, "shard": 0, "public_key": key.PublicKey.Bytes(),
			}},
		})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(service.Stats{Params: key.Params.Name, MaxBatch: 64})
	})
	mux.HandleFunc("POST /v1/sign/batch", func(w http.ResponseWriter, r *http.Request) {
		raw, err := readBody(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		l.mu.Lock()
		l.signBodies = append(l.signBodies, raw)
		l.mu.Unlock()
		var req struct {
			Messages [][]byte `json:"messages"`
		}
		if err := json.Unmarshal(raw, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		sigs := make([][]byte, len(req.Messages))
		for i, m := range req.Messages {
			sigs[i] = append([]byte("leafsig:"), m...)
		}
		json.NewEncoder(w).Encode(map[string]any{"key_id": l.keyID, "signatures": sigs})
	})
	mux.HandleFunc("POST /v1/verify/batch", func(w http.ResponseWriter, r *http.Request) {
		raw, err := readBody(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		l.mu.Lock()
		l.verifyBodies = append(l.verifyBodies, raw)
		l.mu.Unlock()
		var req struct {
			Messages [][]byte `json:"messages"`
		}
		if err := json.Unmarshal(raw, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		valid := make([]bool, len(req.Messages))
		for i := range valid {
			valid[i] = true
		}
		json.NewEncoder(w).Encode(map[string]any{"key_id": l.keyID, "valid": valid})
	})
	l.srv = httptest.NewServer(mux)
	t.Cleanup(l.srv.Close)
	return l
}

func readBody(r *http.Request) ([]byte, error) {
	var buf bytes.Buffer
	_, err := buf.ReadFrom(r.Body)
	return buf.Bytes(), err
}

// schedWire is the scheduling slice of the leaf wire format.
type schedWire struct {
	DeadlinesMs []int64  `json:"deadlines_ms"`
	Tenants     []string `json:"tenants"`
}

// TestSchedulingMetadataForwarded: a proxy backend forwards a Job's
// per-message deadline and tenant metadata onto the leaf wire exactly as
// dispatched — same values, same positions — for sign and verify batches,
// and omits the fields entirely when the batch carries none.
func TestSchedulingMetadataForwarded(t *testing.T) {
	key := testKey(t)
	leaf := newRecordingLeaf(t, key)

	fleet, err := NewFleet([]string{leaf.srv.URL}, slowProbes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fleet.Close() })
	rb := fleet.Backends()[0].(*Backend)
	if err := rb.Warm(key); err != nil {
		t.Fatal(err)
	}

	job := &service.Job{
		Kind:        service.KindSign,
		Msgs:        [][]byte{[]byte("m0"), []byte("m1"), []byte("m2")},
		DeadlinesMs: []int64{120, 0, 45},
		Tenants:     []string{"", "acme", ""},
	}
	if _, err := rb.RunBatch(t.Context(), key, job); err != nil {
		t.Fatal(err)
	}
	var got schedWire
	if err := json.Unmarshal(leaf.lastSignBody(t), &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.DeadlinesMs, job.DeadlinesMs) {
		t.Fatalf("leaf saw deadlines_ms %v, front dispatched %v", got.DeadlinesMs, job.DeadlinesMs)
	}
	if !reflect.DeepEqual(got.Tenants, job.Tenants) {
		t.Fatalf("leaf saw tenants %v, front dispatched %v", got.Tenants, job.Tenants)
	}

	// Verify batches forward the same way.
	vjob := &service.Job{
		Kind:        service.KindVerify,
		Msgs:        [][]byte{[]byte("v0"), []byte("v1")},
		Sigs:        [][]byte{[]byte("s0"), []byte("s1")},
		DeadlinesMs: []int64{7, 9},
		Tenants:     []string{"acme", "umbrella"},
	}
	if _, err := rb.RunBatch(t.Context(), key, vjob); err != nil {
		t.Fatal(err)
	}
	leaf.mu.Lock()
	vraw := leaf.verifyBodies[len(leaf.verifyBodies)-1]
	leaf.mu.Unlock()
	var vgot schedWire
	if err := json.Unmarshal(vraw, &vgot); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vgot.DeadlinesMs, vjob.DeadlinesMs) || !reflect.DeepEqual(vgot.Tenants, vjob.Tenants) {
		t.Fatalf("verify wire sched = %+v, want %v/%v", vgot, vjob.DeadlinesMs, vjob.Tenants)
	}

	// A metadata-free batch keeps the wire clean: omitempty, no empty arrays.
	if _, err := rb.RunBatch(t.Context(), key, signJob("plain")); err != nil {
		t.Fatal(err)
	}
	raw := leaf.lastSignBody(t)
	if bytes.Contains(raw, []byte("deadlines_ms")) || bytes.Contains(raw, []byte("tenants")) {
		t.Fatalf("metadata-free batch leaked scheduling fields: %s", raw)
	}
}

// TestSchedulingRoundTripThroughFront: the full path — SubmitSignOpts on a
// front service whose only backend proxies to a leaf — lands the tenant name
// verbatim and a sane remaining-milliseconds deadline on the leaf wire.
func TestSchedulingRoundTripThroughFront(t *testing.T) {
	key := testKey(t)
	leaf := newRecordingLeaf(t, key)

	fleet, err := NewFleet([]string{leaf.srv.URL}, slowProbes)
	if err != nil {
		t.Fatal(err)
	}
	front, err := service.New(
		service.WithParams(params.SPHINCSPlus128f),
		service.WithKey(key),
		service.WithBackends(fleet.Backends()...),
		service.WithFlushDeadline(2*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	const deadlineMs = 30_000
	fut, err := front.SubmitSignOpts("", []byte("through the front"), service.SubmitOpts{
		Deadline: time.Now().Add(deadlineMs * time.Millisecond),
		Tenant:   "acme",
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fut.Wait(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(res.Sig, []byte("leafsig:")) {
		t.Fatal("result did not come from the leaf")
	}

	var got schedWire
	if err := json.Unmarshal(leaf.lastSignBody(t), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Tenants) != 1 || got.Tenants[0] != "acme" {
		t.Fatalf("leaf saw tenants %v, want [acme]", got.Tenants)
	}
	if len(got.DeadlinesMs) != 1 || got.DeadlinesMs[0] <= 0 || got.DeadlinesMs[0] > deadlineMs {
		t.Fatalf("leaf saw deadlines_ms %v, want one value in (0, %d]", got.DeadlinesMs, deadlineMs)
	}
}
