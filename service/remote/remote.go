// Package remote turns a herosign-serve instance into a service.Backend:
// RunBatch proxies flushed batches over HTTP to a leaf server's
// /v1/sign/batch (plus /v1/verify/batch and /v1/keygen), so a front-end
// shard router fans out across a fleet of leaf servers, each of which is
// itself a sharded fleet — a two-level fleet-of-fleets.
//
// A Fleet wraps one group of leaf URLs and gives each leaf:
//
//   - a health checker that probes the leaf's /v1/stats and feeds the
//     router's dispatch weight with an EWMA of *observed* sigs/s between
//     probes (not a static capacity hint);
//   - outlier ejection — a leaf whose probes fail, whose request error
//     rate degrades, or whose latency z-scores away from its siblings is
//     quarantined (the router stops dispatching to it) and probed back in
//     with half-open trials under exponential-backoff quarantine;
//   - hedged retries — when a sign batch's in-flight time exceeds an
//     adaptive percentile of recent completions, the batch is re-issued to
//     a sibling replica of the same key domain and the first success wins,
//     with a budget cap so hedging cannot double fleet load;
//   - failover — hard transport errors (connection refused, 5xx) retry on
//     a sibling immediately without spending hedge budget, so a dying leaf
//     causes rerouting, not client-visible errors;
//   - connection pooling, per-attempt timeouts, and clean shutdown: the
//     router closes each Backend after its pool drains, and the last close
//     stops the probe loop and releases idle connections.
//
// Leaves must serve the same key domains as the front end: start every
// leaf with the front end's master key (and shard layout) so the
// deterministic per-shard key derivation lines up; Warm verifies the
// leaf's /v1/keys catalog actually contains the shard key and fails fast
// otherwise. Signatures proxied through a Fleet are byte-identical to
// local signing — the wire format carries opaque batches, never key
// material for signing.
package remote

import (
	"crypto/tls"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"herosign/service"
)

// Options tunes a Fleet. The zero value selects the documented defaults.
type Options struct {
	// HedgePercentile arms hedged retries: a sign batch still in flight
	// past this percentile of recent completion latencies is re-issued to
	// a sibling leaf of the same key domain. 0 disables hedging; 95 hedges
	// past p95. Values are clamped to [50, 99].
	HedgePercentile int
	// HedgeMaxFraction caps hedge volume as a fraction of primary sends
	// (default 0.10), so hedging cannot double fleet load.
	HedgeMaxFraction float64
	// HedgeMinSamples is how many completions the latency tracker needs
	// before hedging arms (default 8).
	HedgeMinSamples int

	// ProbeInterval is the health checker's period (default 500ms);
	// ProbeTimeout bounds one /v1/stats probe (default 2s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration

	// RequestTimeout bounds one proxied batch attempt (default 60s — leaf
	// admission control, not the transport, is the backpressure mechanism).
	RequestTimeout time.Duration
	// MaxAttempts caps how many distinct leaves one batch may try across
	// failover and hedging (default 3, clamped to the fleet size).
	MaxAttempts int

	// EjectProbeFailures is the consecutive failed probes that quarantine
	// a leaf (default 1: an unreachable leaf is ejected within one probe
	// interval). EjectRequestFailures is the consecutive hard request
	// errors that do the same without waiting for a probe (default 2).
	EjectProbeFailures   int
	EjectRequestFailures int
	// ErrorRateLimit ejects a leaf whose windowed request error rate
	// exceeds it (default 0.5, evaluated per probe tick over >= 8 sends).
	ErrorRateLimit float64
	// LatencyZLimit ejects a leaf whose smoothed batch latency z-scores
	// this far above its siblings' (default 3; negative disables; needs
	// >= 3 healthy leaves to be meaningful).
	LatencyZLimit float64

	// BaseQuarantine is the first ejection's quarantine (default 1s); each
	// re-ejection doubles it up to MaxQuarantine (default 30s). After the
	// quarantine a successful probe moves the leaf to half-open: one trial
	// batch at a time, success restores it, failure re-ejects.
	BaseQuarantine time.Duration
	MaxQuarantine  time.Duration

	// EWMAAlpha smooths the observed-sigs/s weight and latency estimates
	// (default 0.3).
	EWMAAlpha float64

	// MinWeight floors the dispatch weight of a non-ejected leaf (default
	// 0.5 sigs/s). Without it, a leaf that was idle between probes reports
	// zero observed sigs/s and the router would never route to it again —
	// idle-but-healthy must stay routable.
	MinWeight float64

	// Secret arms fleet authentication on every outgoing request (proxy
	// calls, health probes, key-domain verification, membership traffic):
	// each request carries an HMAC shared-secret header the leaf verifies
	// with a constant-time compare and replay-window nonce (see
	// service.FleetAuth). Must match the leaves' -fleet-secret.
	Secret string
	// TLSConfig, when set, is used for https:// leaf URLs — pin the
	// fleet's CA (RootCAs) and present a client certificate
	// (Certificates) for mutual TLS. Stacks with Secret.
	TLSConfig *tls.Config
	// WrapTransport, when set, wraps the fleet's HTTP transport — the
	// fault-injection hook the chaos suite uses to put latency, resets
	// and blackholes between the front end and its leaves.
	WrapTransport func(http.RoundTripper) http.RoundTripper
}

func (o Options) withDefaults() Options {
	if o.HedgePercentile != 0 {
		if o.HedgePercentile < 50 {
			o.HedgePercentile = 50
		}
		if o.HedgePercentile > 99 {
			o.HedgePercentile = 99
		}
	}
	if o.HedgeMaxFraction <= 0 {
		o.HedgeMaxFraction = 0.10
	}
	if o.HedgeMinSamples <= 0 {
		o.HedgeMinSamples = 8
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 500 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 60 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.EjectProbeFailures <= 0 {
		o.EjectProbeFailures = 1
	}
	if o.EjectRequestFailures <= 0 {
		o.EjectRequestFailures = 2
	}
	if o.ErrorRateLimit <= 0 {
		o.ErrorRateLimit = 0.5
	}
	if o.LatencyZLimit == 0 {
		o.LatencyZLimit = 3
	}
	if o.BaseQuarantine <= 0 {
		o.BaseQuarantine = time.Second
	}
	if o.MaxQuarantine <= 0 {
		o.MaxQuarantine = 30 * time.Second
	}
	if o.EWMAAlpha <= 0 || o.EWMAAlpha > 1 {
		o.EWMAAlpha = 0.3
	}
	if o.MinWeight <= 0 {
		o.MinWeight = 0.5
	}
	return o
}

// Fleet is one group of leaf servers behind a shared transport, health
// checker, latency tracker and hedge budget. Backends hands out one
// service.Backend per leaf; register them with herosign.WithBackend (or
// service.WithBackends) on the front end.
type Fleet struct {
	opts    Options
	tr      *transport
	tracker *latencyTracker
	budget  *hedgeBudget
	events  *eventLog

	leafMu sync.RWMutex
	leaves []*leaf

	stop     chan struct{}
	stopOnce sync.Once
	refs     int
	refMu    sync.Mutex
}

// NewFleet builds the fleet for the leaf URLs and starts its health-probe
// loop. Each URL must be absolute (http://host:port); the leaves should be
// reachable before the front-end Service is constructed, because Warm
// fetches each leaf's key catalog to pin the shard key domain.
func NewFleet(urls []string, opts Options) (*Fleet, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("remote: at least one leaf URL is required")
	}
	f, err := newFleet(opts)
	if err != nil {
		return nil, err
	}
	for _, raw := range urls {
		l, err := f.newLeafFor(raw)
		if err != nil {
			return nil, err
		}
		f.leaves = append(f.leaves, l)
	}
	f.refs = len(f.leaves)
	go f.probeLoop()
	return f, nil
}

// NewDynamicFleet builds a fleet with no initial leaves for dynamic
// membership: leaves join via AddLeaf (typically through a Registrar) and
// depart via RemoveLeaf without restarting the front end. Unlike NewFleet,
// whose lifetime is reference-counted by its backends, a dynamic fleet may
// transiently hold zero members — the caller owns it and must Close it
// (Registrar.Close does this for you).
func NewDynamicFleet(opts Options) (*Fleet, error) {
	f, err := newFleet(opts)
	if err != nil {
		return nil, err
	}
	f.refs = 1 // owner reference, released by Close
	go f.probeLoop()
	return f, nil
}

func newFleet(opts Options) (*Fleet, error) {
	f := &Fleet{
		opts:    opts.withDefaults(),
		tracker: newLatencyTracker(256),
		events:  newEventLog(64),
		stop:    make(chan struct{}),
	}
	f.budget = &hedgeBudget{frac: f.opts.HedgeMaxFraction}
	f.tr = newTransport(f.opts)
	return f, nil
}

func (f *Fleet) newLeafFor(raw string) (*leaf, error) {
	raw = strings.TrimSpace(raw)
	u, err := url.Parse(raw)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("remote: leaf URL %q must be absolute (http://host:port)", raw)
	}
	l := newLeaf(strings.TrimRight(raw, "/"), u.Host)
	l.onEvent = f.record
	return l, nil
}

// leafList is the read path's snapshot of the membership: probe loop,
// sibling picks and stats all iterate it without holding the lock.
func (f *Fleet) leafList() []*leaf {
	f.leafMu.RLock()
	defer f.leafMu.RUnlock()
	return f.leaves
}

// maxAttempts clamps the configured attempt cap to the live fleet size at
// call time — a construction-time clamp would pin a dynamic fleet that
// started small to one attempt forever.
func (f *Fleet) maxAttempts() int {
	n := len(f.leafList())
	m := f.opts.MaxAttempts
	if m > n {
		m = n
	}
	if m < 1 {
		m = 1
	}
	return m
}

// AddLeaf admits a new leaf into the fleet and returns its Backend, ready
// to hand to Service.AddBackend (whose Warm verifies the key domain). The
// backend holds a fleet reference released by its Close.
func (f *Fleet) AddLeaf(rawURL string) (*Backend, error) {
	l, err := f.newLeafFor(rawURL)
	if err != nil {
		return nil, err
	}
	f.leafMu.Lock()
	for _, existing := range f.leaves {
		if existing.url == l.url {
			f.leafMu.Unlock()
			return nil, fmt.Errorf("remote: leaf %s is already a fleet member", l.url)
		}
	}
	next := make([]*leaf, len(f.leaves), len(f.leaves)+1)
	copy(next, f.leaves)
	f.leaves = append(next, l)
	f.leafMu.Unlock()
	f.refMu.Lock()
	f.refs++
	f.refMu.Unlock()
	return &Backend{f: f, leaf: l}, nil
}

// RemoveLeaf drops a leaf from the membership so probes stop and it is no
// longer picked as a hedge/failover sibling. The caller still closes the
// leaf's Backend (Service.RemoveBackend does, after draining its pool).
func (f *Fleet) RemoveLeaf(b *Backend) {
	if b == nil || b.f != f {
		return
	}
	f.leafMu.Lock()
	next := make([]*leaf, 0, len(f.leaves))
	for _, l := range f.leaves {
		if l != b.leaf {
			next = append(next, l)
		}
	}
	f.leaves = next
	f.leafMu.Unlock()
}

// Backends returns one service.Backend per current leaf, in URL order. The
// router closes each backend after its pool drains; for a NewFleet-built
// fleet the last close stops the probe loop and releases pooled
// connections.
func (f *Fleet) Backends() []service.Backend {
	leaves := f.leafList()
	out := make([]service.Backend, len(leaves))
	for i, l := range leaves {
		out[i] = &Backend{f: f, leaf: l}
	}
	return out
}

// record appends a membership/health transition to the fleet's event ring.
func (f *Fleet) record(typ, url, note string) {
	f.events.add(service.FleetEvent{Time: time.Now(), Type: typ, URL: url, Note: note})
}

// Events snapshots the fleet's membership and health transition log,
// oldest first. The Registrar folds this into the front end's /v1/stats.
func (f *Fleet) Events() []service.FleetEvent {
	return f.events.snapshot()
}

// release drops one backend's reference; the last one shuts the fleet
// down. Close is also safe to call directly on an unused fleet.
func (f *Fleet) release() {
	f.refMu.Lock()
	f.refs--
	done := f.refs <= 0
	f.refMu.Unlock()
	if done {
		f.Close()
	}
}

// Close stops the probe loop and closes idle connections. Idempotent.
func (f *Fleet) Close() error {
	f.stopOnce.Do(func() {
		close(f.stop)
		f.tr.close()
	})
	return nil
}
