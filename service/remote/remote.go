// Package remote turns a herosign-serve instance into a service.Backend:
// RunBatch proxies flushed batches over HTTP to a leaf server's
// /v1/sign/batch (plus /v1/verify/batch and /v1/keygen), so a front-end
// shard router fans out across a fleet of leaf servers, each of which is
// itself a sharded fleet — a two-level fleet-of-fleets.
//
// A Fleet wraps one group of leaf URLs and gives each leaf:
//
//   - a health checker that probes the leaf's /v1/stats and feeds the
//     router's dispatch weight with an EWMA of *observed* sigs/s between
//     probes (not a static capacity hint);
//   - outlier ejection — a leaf whose probes fail, whose request error
//     rate degrades, or whose latency z-scores away from its siblings is
//     quarantined (the router stops dispatching to it) and probed back in
//     with half-open trials under exponential-backoff quarantine;
//   - hedged retries — when a sign batch's in-flight time exceeds an
//     adaptive percentile of recent completions, the batch is re-issued to
//     a sibling replica of the same key domain and the first success wins,
//     with a budget cap so hedging cannot double fleet load;
//   - failover — hard transport errors (connection refused, 5xx) retry on
//     a sibling immediately without spending hedge budget, so a dying leaf
//     causes rerouting, not client-visible errors;
//   - connection pooling, per-attempt timeouts, and clean shutdown: the
//     router closes each Backend after its pool drains, and the last close
//     stops the probe loop and releases idle connections.
//
// Leaves must serve the same key domains as the front end: start every
// leaf with the front end's master key (and shard layout) so the
// deterministic per-shard key derivation lines up; Warm verifies the
// leaf's /v1/keys catalog actually contains the shard key and fails fast
// otherwise. Signatures proxied through a Fleet are byte-identical to
// local signing — the wire format carries opaque batches, never key
// material for signing.
package remote

import (
	"fmt"
	"net/url"
	"strings"
	"sync"
	"time"

	"herosign/service"
)

// Options tunes a Fleet. The zero value selects the documented defaults.
type Options struct {
	// HedgePercentile arms hedged retries: a sign batch still in flight
	// past this percentile of recent completion latencies is re-issued to
	// a sibling leaf of the same key domain. 0 disables hedging; 95 hedges
	// past p95. Values are clamped to [50, 99].
	HedgePercentile int
	// HedgeMaxFraction caps hedge volume as a fraction of primary sends
	// (default 0.10), so hedging cannot double fleet load.
	HedgeMaxFraction float64
	// HedgeMinSamples is how many completions the latency tracker needs
	// before hedging arms (default 8).
	HedgeMinSamples int

	// ProbeInterval is the health checker's period (default 500ms);
	// ProbeTimeout bounds one /v1/stats probe (default 2s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration

	// RequestTimeout bounds one proxied batch attempt (default 60s — leaf
	// admission control, not the transport, is the backpressure mechanism).
	RequestTimeout time.Duration
	// MaxAttempts caps how many distinct leaves one batch may try across
	// failover and hedging (default 3, clamped to the fleet size).
	MaxAttempts int

	// EjectProbeFailures is the consecutive failed probes that quarantine
	// a leaf (default 1: an unreachable leaf is ejected within one probe
	// interval). EjectRequestFailures is the consecutive hard request
	// errors that do the same without waiting for a probe (default 2).
	EjectProbeFailures    int
	EjectRequestFailures  int
	// ErrorRateLimit ejects a leaf whose windowed request error rate
	// exceeds it (default 0.5, evaluated per probe tick over >= 8 sends).
	ErrorRateLimit float64
	// LatencyZLimit ejects a leaf whose smoothed batch latency z-scores
	// this far above its siblings' (default 3; negative disables; needs
	// >= 3 healthy leaves to be meaningful).
	LatencyZLimit float64

	// BaseQuarantine is the first ejection's quarantine (default 1s); each
	// re-ejection doubles it up to MaxQuarantine (default 30s). After the
	// quarantine a successful probe moves the leaf to half-open: one trial
	// batch at a time, success restores it, failure re-ejects.
	BaseQuarantine time.Duration
	MaxQuarantine  time.Duration

	// EWMAAlpha smooths the observed-sigs/s weight and latency estimates
	// (default 0.3).
	EWMAAlpha float64
}

func (o Options) withDefaults(leaves int) Options {
	if o.HedgePercentile != 0 {
		if o.HedgePercentile < 50 {
			o.HedgePercentile = 50
		}
		if o.HedgePercentile > 99 {
			o.HedgePercentile = 99
		}
	}
	if o.HedgeMaxFraction <= 0 {
		o.HedgeMaxFraction = 0.10
	}
	if o.HedgeMinSamples <= 0 {
		o.HedgeMinSamples = 8
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 500 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 60 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.MaxAttempts > leaves {
		o.MaxAttempts = leaves
	}
	if o.EjectProbeFailures <= 0 {
		o.EjectProbeFailures = 1
	}
	if o.EjectRequestFailures <= 0 {
		o.EjectRequestFailures = 2
	}
	if o.ErrorRateLimit <= 0 {
		o.ErrorRateLimit = 0.5
	}
	if o.LatencyZLimit == 0 {
		o.LatencyZLimit = 3
	}
	if o.BaseQuarantine <= 0 {
		o.BaseQuarantine = time.Second
	}
	if o.MaxQuarantine <= 0 {
		o.MaxQuarantine = 30 * time.Second
	}
	if o.EWMAAlpha <= 0 || o.EWMAAlpha > 1 {
		o.EWMAAlpha = 0.3
	}
	return o
}

// Fleet is one group of leaf servers behind a shared transport, health
// checker, latency tracker and hedge budget. Backends hands out one
// service.Backend per leaf; register them with herosign.WithBackend (or
// service.WithBackends) on the front end.
type Fleet struct {
	opts    Options
	tr      *transport
	leaves  []*leaf
	tracker *latencyTracker
	budget  *hedgeBudget

	stop     chan struct{}
	stopOnce sync.Once
	refs     int
	refMu    sync.Mutex
}

// NewFleet builds the fleet for the leaf URLs and starts its health-probe
// loop. Each URL must be absolute (http://host:port); the leaves should be
// reachable before the front-end Service is constructed, because Warm
// fetches each leaf's key catalog to pin the shard key domain.
func NewFleet(urls []string, opts Options) (*Fleet, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("remote: at least one leaf URL is required")
	}
	f := &Fleet{
		opts:    opts.withDefaults(len(urls)),
		tracker: newLatencyTracker(256),
		stop:    make(chan struct{}),
	}
	f.budget = &hedgeBudget{frac: f.opts.HedgeMaxFraction}
	f.tr = newTransport(f.opts)
	for _, raw := range urls {
		raw = strings.TrimSpace(raw)
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("remote: leaf URL %q must be absolute (http://host:port)", raw)
		}
		f.leaves = append(f.leaves, newLeaf(strings.TrimRight(raw, "/"), u.Host))
	}
	f.refs = len(f.leaves)
	go f.probeLoop()
	return f, nil
}

// Backends returns one service.Backend per leaf, in URL order. The router
// closes each backend after its pool drains; the last close stops the
// probe loop and releases pooled connections.
func (f *Fleet) Backends() []service.Backend {
	out := make([]service.Backend, len(f.leaves))
	for i, l := range f.leaves {
		out[i] = &Backend{f: f, leaf: l}
	}
	return out
}

// release drops one backend's reference; the last one shuts the fleet
// down. Close is also safe to call directly on an unused fleet.
func (f *Fleet) release() {
	f.refMu.Lock()
	f.refs--
	done := f.refs <= 0
	f.refMu.Unlock()
	if done {
		f.Close()
	}
}

// Close stops the probe loop and closes idle connections. Idempotent.
func (f *Fleet) Close() error {
	f.stopOnce.Do(func() {
		close(f.stop)
		f.tr.close()
	})
	return nil
}
