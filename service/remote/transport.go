package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"herosign/service"
)

// Wire mirrors of the leaf's JSON types. The JSON field names are the
// contract (service keeps its own structs unexported); []byte travels as
// base64 per encoding/json.
type signBatchReq struct {
	Messages [][]byte `json:"messages"`
	KeyID    string   `json:"key_id,omitempty"`
	// DeadlinesMs / Tenants forward the front end's per-message scheduling
	// metadata (remaining deadline in ms, tenant API key) so the leaf's EDF
	// ordering and per-tenant accounting see the same attributes the front
	// end admitted the work under.
	DeadlinesMs []int64  `json:"deadlines_ms,omitempty"`
	Tenants     []string `json:"tenants,omitempty"`
}

// schedMeta carries a proxied batch's per-message scheduling metadata
// (from service.Job) to the wire encoders. Hedge and failover resends reuse
// the same snapshot: the remaining-deadline values were taken at dispatch,
// which slightly overstates the remaining time on a late resend — the leaf
// still drops truly expired work itself.
type schedMeta struct {
	deadlinesMs []int64
	tenants     []string
}

type signBatchResp struct {
	KeyID      string   `json:"key_id"`
	Signatures [][]byte `json:"signatures"`
}

type verifyBatchReq struct {
	Messages   [][]byte `json:"messages"`
	Signatures [][]byte `json:"signatures"`
	KeyID      string   `json:"key_id,omitempty"`
	// Scheduling forwarding with signBatchReq semantics.
	DeadlinesMs []int64  `json:"deadlines_ms,omitempty"`
	Tenants     []string `json:"tenants,omitempty"`
}

type verifyBatchResp struct {
	Valid []bool `json:"valid"`
}

type seedTripleWire struct {
	SKSeed []byte `json:"sk_seed"`
	SKPRF  []byte `json:"sk_prf"`
	PKSeed []byte `json:"pk_seed"`
}

type keygenReq struct {
	Seeds []seedTripleWire `json:"seeds"`
}

type keygenResp struct {
	Keys []struct {
		PublicKey  []byte `json:"public_key"`
		PrivateKey []byte `json:"private_key"`
	} `json:"keys"`
}

type keysResp struct {
	Params string `json:"params"`
	Keys   []struct {
		KeyID     string `json:"key_id"`
		Shard     int    `json:"shard"`
		PublicKey []byte `json:"public_key"`
	} `json:"keys"`
}

type errResp struct {
	Error        string `json:"error"`
	RetryAfterMs int64  `json:"retry_after_ms"`
}

// StatusError is a non-429 HTTP error a leaf returned. 5xx are retryable
// on a sibling; 4xx indicate a front-end bug (malformed proxy request) and
// propagate as-is.
type StatusError struct {
	URL    string
	Status int
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("remote: leaf %s returned %d: %s", e.URL, e.Status, e.Msg)
}

// TransportError is a hard transport failure (connection refused, reset,
// timeout): the strongest ejection signal and always worth a failover.
type TransportError struct {
	URL string
	Err error
}

func (e *TransportError) Error() string { return fmt.Sprintf("remote: leaf %s: %v", e.URL, e.Err) }
func (e *TransportError) Unwrap() error { return e.Err }

// retryable reports whether a sibling leaf could plausibly serve the same
// request: transport failures, 5xx, and leaf overloads (another replica
// may have queue room).
func retryable(err error) bool {
	var te *TransportError
	if errors.As(err, &te) {
		return true
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Status >= 500
	}
	return errors.Is(err, service.ErrOverloaded)
}

// hardFailure reports whether the error should count toward ejection (an
// overloaded leaf is healthy, just full).
func hardFailure(err error) bool {
	var te *TransportError
	if errors.As(err, &te) {
		return true
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Status >= 500
	}
	return false
}

// transport is the fleet's pooled HTTP client. When Options.Secret is set
// it signs every outgoing request — proxy calls, probes, key-catalog
// fetches and membership traffic — with the fleet auth header.
type transport struct {
	client *http.Client
	auth   *service.FleetAuth
	inner  *http.Transport
}

func newTransport(o Options) *transport {
	inner := &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   5 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
		TLSClientConfig:     o.TLSConfig,
	}
	var rt http.RoundTripper = inner
	if o.WrapTransport != nil {
		rt = o.WrapTransport(rt)
	}
	t := &transport{client: &http.Client{
		Transport: rt,
		// Per-attempt deadlines come from the caller's context; the client
		// itself stays unbounded so probe and batch timeouts can differ.
	}, inner: inner}
	if o.Secret != "" {
		t.auth = service.NewFleetAuth(o.Secret)
	}
	return t
}

// do signs (when fleet auth is armed) and sends one request.
func (t *transport) do(req *http.Request) (*http.Response, error) {
	if t.auth != nil {
		t.auth.Sign(req)
	}
	return t.client.Do(req)
}

func (t *transport) close() { t.inner.CloseIdleConnections() }

// postJSON round-trips one JSON request. A leaf 429 comes back as
// *service.OverloadError carrying the leaf's own retry_after_ms estimate,
// so the front end surfaces the leaf's drain time instead of recomputing
// one from its own (empty) queue.
func (t *transport) postJSON(ctx context.Context, base, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("remote: encode %s: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("remote: build %s: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.do(req)
	if err != nil {
		return &TransportError{URL: base, Err: err}
	}
	return decodeResp(base, resp, out)
}

func (t *transport) getJSON(ctx context.Context, base, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	if err != nil {
		return fmt.Errorf("remote: build %s: %w", path, err)
	}
	resp, err := t.do(req)
	if err != nil {
		return &TransportError{URL: base, Err: err}
	}
	return decodeResp(base, resp, out)
}

func decodeResp(base string, resp *http.Response, out any) error {
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return &TransportError{URL: base, Err: err}
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		var er errResp
		retry := 50 * time.Millisecond
		if json.Unmarshal(raw, &er) == nil && er.RetryAfterMs > 0 {
			retry = time.Duration(er.RetryAfterMs) * time.Millisecond
		}
		return &service.OverloadError{Scope: "leaf", RetryAfter: retry}
	}
	if resp.StatusCode != http.StatusOK {
		var er errResp
		msg := http.StatusText(resp.StatusCode)
		if json.Unmarshal(raw, &er) == nil && er.Error != "" {
			msg = er.Error
		}
		return &StatusError{URL: base, Status: resp.StatusCode, Msg: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return &TransportError{URL: base, Err: fmt.Errorf("decode response: %w", err)}
	}
	return nil
}

func (t *transport) signBatch(ctx context.Context, base, keyID string, msgs [][]byte, sched schedMeta) ([][]byte, error) {
	var out signBatchResp
	req := signBatchReq{Messages: msgs, KeyID: keyID, DeadlinesMs: sched.deadlinesMs, Tenants: sched.tenants}
	if err := t.postJSON(ctx, base, "/v1/sign/batch", req, &out); err != nil {
		return nil, err
	}
	if len(out.Signatures) != len(msgs) {
		return nil, &StatusError{URL: base, Status: http.StatusOK,
			Msg: fmt.Sprintf("sign batch returned %d signatures for %d messages", len(out.Signatures), len(msgs))}
	}
	return out.Signatures, nil
}

func (t *transport) verifyBatch(ctx context.Context, base, keyID string, msgs, sigs [][]byte, sched schedMeta) ([]bool, error) {
	var out verifyBatchResp
	req := verifyBatchReq{Messages: msgs, Signatures: sigs, KeyID: keyID,
		DeadlinesMs: sched.deadlinesMs, Tenants: sched.tenants}
	if err := t.postJSON(ctx, base, "/v1/verify/batch", req, &out); err != nil {
		return nil, err
	}
	if len(out.Valid) != len(msgs) {
		return nil, &StatusError{URL: base, Status: http.StatusOK,
			Msg: fmt.Sprintf("verify batch returned %d verdicts for %d pairs", len(out.Valid), len(msgs))}
	}
	return out.Valid, nil
}

func (t *transport) keygen(ctx context.Context, base string, seeds []service.SeedTriple) ([][]byte, error) {
	req := keygenReq{Seeds: make([]seedTripleWire, len(seeds))}
	for i, s := range seeds {
		req.Seeds[i] = seedTripleWire{SKSeed: s.SKSeed, SKPRF: s.SKPRF, PKSeed: s.PKSeed}
	}
	var out keygenResp
	if err := t.postJSON(ctx, base, "/v1/keygen", req, &out); err != nil {
		return nil, err
	}
	if len(out.Keys) != len(seeds) {
		return nil, &StatusError{URL: base, Status: http.StatusOK,
			Msg: fmt.Sprintf("keygen returned %d keys for %d seeds", len(out.Keys), len(seeds))}
	}
	keys := make([][]byte, len(out.Keys))
	for i, k := range out.Keys {
		keys[i] = k.PrivateKey
	}
	return keys, nil
}

func (t *transport) stats(ctx context.Context, base string) (*service.Stats, error) {
	var st service.Stats
	if err := t.getJSON(ctx, base, "/v1/stats", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

func (t *transport) keys(ctx context.Context, base string) (*keysResp, error) {
	var kr keysResp
	if err := t.getJSON(ctx, base, "/v1/keys", &kr); err != nil {
		return nil, err
	}
	return &kr, nil
}
