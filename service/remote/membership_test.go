package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"herosign/internal/gpu/device"
	"herosign/internal/spx"
	"herosign/internal/spx/params"
	"herosign/service"
)

// dynamicFront builds a front end with zero construction-time backends, a
// dynamic fleet, and a registrar mounted at /v1/fleet/* — the exact
// composition herosign-serve -fleet-dynamic uses.
func dynamicFront(t *testing.T, key *spx.PrivateKey, secret string, regOpts RegistrarOptions) (*service.Service, *Registrar, *httptest.Server) {
	t.Helper()
	svc, err := service.New(
		service.WithParams(params.SPHINCSPlus128f),
		service.WithKey(key),
		service.WithDynamicMembership(),
		service.WithFlushDeadline(2*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := NewDynamicFleet(Options{ProbeInterval: 50 * time.Millisecond, Secret: secret})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistrar(svc, fleet, regOpts)
	mux := http.NewServeMux()
	mux.Handle("/v1/fleet/", reg.Handler())
	mux.Handle("/", svc.Handler())
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
		reg.Close()
	})
	return svc, reg, ts
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func eventTypes(evs []service.FleetEvent) []string {
	out := make([]string, len(evs))
	for i, e := range evs {
		out[i] = e.Type
	}
	return out
}

func hasEvent(evs []service.FleetEvent, typ string) bool {
	for _, e := range evs {
		if e.Type == typ {
			return true
		}
	}
	return false
}

// TestDynamicJoinSignLeave is the membership acceptance path: a front end
// started with zero leaves refuses work; a leaf started afterwards joins
// via the announcer, serves byte-identical signatures, and leaves cleanly,
// after which work is refused again — all without restarting the front.
func TestDynamicJoinSignLeave(t *testing.T) {
	key := testKey(t)
	front, reg, frontTS := dynamicFront(t, key, "", RegistrarOptions{})

	ctx := context.Background()
	fut, err := front.SubmitSign([]byte("pre-join"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(ctx); !errors.Is(err, service.ErrNoBackends) {
		t.Fatalf("sign before any join: err = %v, want ErrNoBackends", err)
	}

	// A leaf starts later and announces itself.
	_, leafTS := newLeafServer(t, key)
	ann, err := NewAnnouncer(AnnouncerOptions{
		FrontURL:      frontTS.URL,
		SelfURL:       leafTS.URL,
		RetryInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ann.Start()

	waitFor(t, 5*time.Second, "leaf admission", func() bool {
		return len(front.Shards()[0].Backends) == 1
	})
	if got := reg.Members(); len(got) != 1 || got[0] != leafTS.URL {
		t.Fatalf("Members() = %v, want [%s]", got, leafTS.URL)
	}

	msgs := [][]byte{[]byte("joined-0"), []byte("joined-1"), []byte("joined-2")}
	futs, err := front.SubmitSignBatch("", msgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		res, err := f.Wait(ctx)
		if err != nil {
			t.Fatalf("sign %d through joined leaf: %v", i, err)
		}
		want, err := spx.Sign(key, msgs[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Sig, want) {
			t.Fatalf("signature %d differs from local signing", i)
		}
	}

	// The membership event surfaces in the front's stats.
	if st := front.Stats(); !hasEvent(st.FleetEvents, "joined") {
		t.Fatalf("stats fleet_events = %v, want a joined event", eventTypes(st.FleetEvents))
	}

	// Clean leave: the member disappears and work is refused again.
	leaveCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := ann.Leave(leaveCtx); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	waitFor(t, 5*time.Second, "leaf retirement", func() bool {
		return len(front.Shards()[0].Backends) == 0
	})
	fut, err = front.SubmitSign([]byte("post-leave"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(ctx); !errors.Is(err, service.ErrNoBackends) {
		t.Fatalf("sign after leave: err = %v, want ErrNoBackends", err)
	}
	if st := front.Stats(); !hasEvent(st.FleetEvents, "left") {
		t.Fatalf("stats fleet_events = %v, want a left event", eventTypes(st.FleetEvents))
	}
}

// TestLeaseExpiryRetiresLeaf: a member that stops heartbeating is retired
// by the sweeper with a lease-expired event, exactly as if it had left.
func TestLeaseExpiryRetiresLeaf(t *testing.T) {
	key := testKey(t)
	front, reg, frontTS := dynamicFront(t, key, "", RegistrarOptions{
		LeaseTTL:      200 * time.Millisecond,
		SweepInterval: 50 * time.Millisecond,
	})
	_, leafTS := newLeafServer(t, key)

	// Join once, by hand — no heartbeats follow.
	body, _ := json.Marshal(fleetJoinReq{URL: leafTS.URL})
	resp, err := http.Post(frontTS.URL+"/v1/fleet/join", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var jr fleetJoinResp
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || jr.LeaseMs != 200 {
		t.Fatalf("join: status %d lease %dms, want 200 / 200ms", resp.StatusCode, jr.LeaseMs)
	}
	if len(front.Shards()[0].Backends) != 1 {
		t.Fatal("leaf not admitted after join")
	}

	waitFor(t, 5*time.Second, "lease expiry", func() bool {
		return len(reg.Members()) == 0
	})
	waitFor(t, 5*time.Second, "router retirement", func() bool {
		return len(front.Shards()[0].Backends) == 0
	})
	if st := front.Stats(); !hasEvent(st.FleetEvents, "lease-expired") {
		t.Fatalf("stats fleet_events = %v, want lease-expired", eventTypes(st.FleetEvents))
	}
}

// TestMembershipAuth: with a fleet secret, unsigned membership calls are
// rejected 401 and counted, while the front's client-facing /v1/* stays
// public; a secret-bearing announcer joins normally.
func TestMembershipAuth(t *testing.T) {
	key := testKey(t)
	front, _, frontTS := dynamicFront(t, key, "fleet-pw", RegistrarOptions{})
	_, leafTS := newLeafServer(t, key)

	// Unsigned join: 401.
	body, _ := json.Marshal(fleetJoinReq{URL: leafTS.URL})
	resp, err := http.Post(frontTS.URL+"/v1/fleet/join", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unsigned join: status %d, want 401", resp.StatusCode)
	}

	// Client-facing endpoints stay public on the front.
	resp, err = http.Get(frontTS.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("front /v1/stats with secret set: status %d, want 200 (public)", resp.StatusCode)
	}

	// The rejection is visible in stats.
	if st := front.Stats(); st.AuthRejected < 1 {
		t.Fatalf("auth_rejected = %d, want >= 1", st.AuthRejected)
	}

	// A signed announcer joins fine. Note the leaf here has no inbound
	// secret (the front's outgoing requests would still sign; leaves
	// ignore unknown headers).
	ann, err := NewAnnouncer(AnnouncerOptions{
		FrontURL:      frontTS.URL,
		SelfURL:       leafTS.URL,
		Secret:        "fleet-pw",
		RetryInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ann.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = ann.Leave(ctx)
	})
	waitFor(t, 5*time.Second, "signed join", func() bool {
		return len(front.Shards()[0].Backends) == 1
	})
}

// TestJoinRejectsForeignKey: a leaf launched with a different master key
// must be refused at join time, before it can receive any traffic.
func TestJoinRejectsForeignKey(t *testing.T) {
	key := testKey(t)
	front, reg, frontTS := dynamicFront(t, key, "", RegistrarOptions{})

	p := params.SPHINCSPlus128f
	otherKey, err := spx.KeyFromSeeds(p,
		bytes.Repeat([]byte{0x11}, p.N),
		bytes.Repeat([]byte{0x22}, p.N),
		bytes.Repeat([]byte{0x33}, p.N))
	if err != nil {
		t.Fatal(err)
	}
	_, leafTS := newLeafServer(t, otherKey)

	body, _ := json.Marshal(fleetJoinReq{URL: leafTS.URL})
	resp, err := http.Post(frontTS.URL+"/v1/fleet/join", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw := new(bytes.Buffer)
	raw.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("foreign-key join: status %d (%s), want 502", resp.StatusCode, raw)
	}
	if !strings.Contains(raw.String(), "key domain") {
		t.Fatalf("foreign-key join error %q does not name the key domain", raw)
	}
	if len(reg.Members()) != 0 || len(front.Shards()[0].Backends) != 0 {
		t.Fatal("foreign-key leaf was admitted")
	}
}

// TestAuthedFleetEndToEnd: a leaf that requires the fleet secret serves a
// secret-bearing fleet (probes, warm, sign all signed) and rejects a fleet
// without one at Warm.
func TestAuthedFleetEndToEnd(t *testing.T) {
	key := testKey(t)
	leafSvc, err := service.New(
		service.WithParams(params.SPHINCSPlus128f),
		service.WithKey(key),
		service.WithDevices(mustDevice(t)),
		service.WithFlushDeadline(2*time.Millisecond),
		service.WithFleetSecret("fleet-pw"),
	)
	if err != nil {
		t.Fatal(err)
	}
	leafTS := httptest.NewServer(leafSvc.Handler())
	t.Cleanup(func() { leafTS.Close(); leafSvc.Close() })

	// No secret: the leaf's 401 fails Warm fast.
	noAuth, err := NewFleet([]string{leafTS.URL}, slowProbes)
	if err != nil {
		t.Fatal(err)
	}
	defer noAuth.Close()
	if err := noAuth.Backends()[0].(*Backend).Warm(key); err == nil {
		t.Fatal("Warm against an authed leaf succeeded without the secret")
	}

	// With the secret, the whole proxy path works.
	opts := slowProbes
	opts.Secret = "fleet-pw"
	fleet, err := NewFleet([]string{leafTS.URL}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	b := fleet.Backends()[0].(*Backend)
	if err := b.Warm(key); err != nil {
		t.Fatalf("authed Warm: %v", err)
	}
	out, err := b.RunBatch(context.Background(), key, signJob("authed-msg"))
	if err != nil {
		t.Fatalf("authed sign: %v", err)
	}
	want, err := spx.Sign(key, []byte("authed-msg"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Sigs[0], want) {
		t.Fatal("authed proxied signature differs from local signing")
	}
}

// TestAddLeafDuplicateRejected: the same URL cannot join twice through
// AddLeaf (the registrar treats a re-join as a lease renewal instead).
func TestAddLeafDuplicateRejected(t *testing.T) {
	fleet, err := NewDynamicFleet(slowProbes)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	if _, err := fleet.AddLeaf("http://leaf-a:1"); err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.AddLeaf("http://leaf-a:1"); err == nil {
		t.Fatal("duplicate AddLeaf accepted")
	}
	if _, err := fleet.AddLeaf("not-a-url"); err == nil {
		t.Fatal("relative URL accepted")
	}
	if got := len(fleet.leafList()); got != 1 {
		t.Fatalf("leafList() = %d entries, want 1", got)
	}
}

func mustDevice(t *testing.T) *device.Device {
	t.Helper()
	d, err := device.ByName("RTX 4090")
	if err != nil {
		t.Fatal(err)
	}
	return d
}
