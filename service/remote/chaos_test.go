// Chaos suite: drives a real front end against faulty leaves through the
// fault injector and asserts the robustness invariants the fleet claims —
// fast ejection, goodput under partial failure, a capped hedge budget,
// zero lost-but-acknowledged signatures, and byte-identical KATs.
package remote

import (
	"bytes"
	"context"
	"fmt"
	"net/url"
	"testing"
	"time"

	"herosign/internal/faultinject"
	"herosign/internal/spx"
	"herosign/internal/spx/params"
	"herosign/service"
)

func hostOf(t *testing.T, rawURL string) string {
	t.Helper()
	u, err := url.Parse(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

// TestChaosEjectionWithinProbeInterval: a leaf whose connections start
// resetting must be quarantined by the very next probe tick
// (EjectProbeFailures=1), and recover once the fault clears.
func TestChaosEjectionWithinProbeInterval(t *testing.T) {
	key := testKey(t)
	a := newFakeLeaf(t, "a", key)
	b := newFakeLeaf(t, "b", key)
	c := newFakeLeaf(t, "c", key)

	inj := faultinject.New()
	const probeInterval = 50 * time.Millisecond
	opts := Options{
		ProbeInterval:  probeInterval,
		ProbeTimeout:   500 * time.Millisecond,
		BaseQuarantine: 100 * time.Millisecond,
		WrapTransport:  inj.RoundTripper,
	}
	_, backends := fakeFleet(t, opts, a, b, c)
	sick := backends[1]

	ejectedAt := time.Time{}
	armedAt := time.Now()
	disarm := inj.Arm(faultinject.Rule{Mode: faultinject.ModeReset, Host: hostOf(t, b.srv.URL)})
	waitFor(t, 2*time.Second, "ejection of the resetting leaf", func() bool {
		if sick.RemoteHealth().State == "ejected" {
			ejectedAt = time.Now()
			return true
		}
		return false
	})
	// One failed probe must be enough: allow two intervals of scheduling
	// slack on top of the single tick the rule requires.
	if d := ejectedAt.Sub(armedAt); d > 3*probeInterval {
		t.Fatalf("ejection took %v, want within ~one probe interval (%v)", d, probeInterval)
	}
	// The healthy siblings stay in service.
	if st := backends[0].RemoteHealth(); st.State != "healthy" {
		t.Fatalf("leaf a collateral state = %s", st.State)
	}
	if st := backends[2].RemoteHealth(); st.State != "healthy" {
		t.Fatalf("leaf c collateral state = %s", st.State)
	}

	// Clearing the fault lets quarantine lapse into recovery.
	disarm()
	waitFor(t, 5*time.Second, "recovery of the ejected leaf", func() bool {
		st := sick.RemoteHealth().State
		return st == "half-open" || st == "healthy"
	})
}

// TestChaosGoodputInvariants drives a real front end (real signing leaves)
// against a fleet where one leaf bursts 500s and another runs slow, and
// asserts: every acknowledged signature arrives and is byte-identical to
// the CPU reference (zero lost-but-acked), the error burst never surfaces
// to the client (goodput floor), and hedging stays within its budget.
func TestChaosGoodputInvariants(t *testing.T) {
	key := testKey(t)
	_, leafA := newLeafServer(t, key)
	_, leafB := newLeafServer(t, key)
	_, leafC := newLeafServer(t, key)

	inj := faultinject.New()
	fleet, err := NewFleet([]string{leafA.URL, leafB.URL, leafC.URL}, Options{
		ProbeInterval:   50 * time.Millisecond,
		HedgePercentile: 95,
		RequestTimeout:  10 * time.Second,
		BaseQuarantine:  100 * time.Millisecond,
		WrapTransport:   inj.RoundTripper,
	})
	if err != nil {
		t.Fatal(err)
	}
	front, err := service.New(
		service.WithParams(params.SPHINCSPlus128f),
		service.WithKey(key),
		service.WithBackends(fleet.Backends()...),
		service.WithFlushDeadline(2*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	// The first two sign attempts — whichever leaves field them — burst
	// hard 500s (MaxHits stays below MaxAttempts, so failover can always
	// win); leaf C additionally runs slow for the whole test.
	inj.Arm(faultinject.Rule{
		Name: "burst", Mode: faultinject.ModeStatus, Status: 500,
		PathPrefix: "/v1/sign", MaxHits: 2,
	})
	inj.Arm(faultinject.Rule{
		Name: "slow", Mode: faultinject.ModeLatency, Latency: 80 * time.Millisecond,
		Host: hostOf(t, leafC.URL), PathPrefix: "/v1/sign",
	})

	ctx := context.Background()
	const n = 30
	msgs := make([][]byte, n)
	futs := make([]*service.Future, n)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("chaos-%d", i))
		fut, err := front.SubmitSign(msgs[i])
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		futs[i] = fut
	}
	start := time.Now()
	for i, fut := range futs {
		res, err := fut.Wait(ctx)
		if err != nil {
			// Goodput floor: faults on individual leaves must never
			// surface — failover and hedging absorb them.
			t.Fatalf("sign %d surfaced a leaf fault: %v", i, err)
		}
		// Zero lost-but-acked + KAT: every acknowledged signature is the
		// byte-identical CPU-reference signature.
		want, err := spx.Sign(key, msgs[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Sig, want) {
			t.Fatalf("signature %d differs from CPU reference under chaos", i)
		}
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("chaos batch took %v — tail latency unbounded", elapsed)
	}
	if inj.Hits("burst") == 0 {
		t.Fatal("the 500 burst never fired — the test proved nothing")
	}

	// Hedge budget: hedges stay under HedgeMaxFraction of primaries (+1
	// for the in-flight allowance).
	var primaries, hedges int64
	for _, b := range fleet.Backends() {
		st := b.(*Backend).RemoteHealth()
		primaries += st.PrimarySends
		hedges += st.HedgesSent
	}
	if limit := int64(float64(primaries)*fleet.opts.HedgeMaxFraction) + 1; hedges > limit {
		t.Fatalf("hedge budget blowout: %d hedges for %d primaries (limit %d)", hedges, primaries, limit)
	}
}

// TestHalfOpenFlapReEjection (satellite): a flapping leaf that fails
// exactly during its single-trial recovery probe must re-enter quarantine
// with DOUBLED backoff, and only a successful trial resets it. The fault
// injector fails sign traffic while probes stay green, which is precisely
// the flap the half-open state exists for. Run under -race: the trial
// races the probe loop's state transitions.
func TestHalfOpenFlapReEjection(t *testing.T) {
	key := testKey(t)
	a := newFakeLeaf(t, "a", key)

	inj := faultinject.New()
	base := 120 * time.Millisecond
	opts := Options{
		ProbeInterval:        20 * time.Millisecond,
		ProbeTimeout:         500 * time.Millisecond,
		BaseQuarantine:       base,
		MaxQuarantine:        10 * time.Second,
		EjectRequestFailures: 1,
		WrapTransport:        inj.RoundTripper,
	}
	fleet, backends := fakeFleet(t, opts, a)
	b := backends[0]
	l := b.leaf

	quarantineOf := func() time.Duration {
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.quarantine
	}
	stateOf := func() string { return b.RemoteHealth().State }

	// Sign traffic fails; probes (on /v1/stats) stay green.
	disarm := inj.Arm(faultinject.Rule{
		Mode: faultinject.ModeStatus, Status: 500, PathPrefix: "/v1/sign",
	})

	// First failure ejects with the base quarantine.
	if _, err := b.RunBatch(context.Background(), key, signJob("flap-0")); err == nil {
		t.Fatal("faulted sign succeeded")
	}
	if got := stateOf(); got != "ejected" {
		t.Fatalf("state after first failure = %s, want ejected", got)
	}
	if got := quarantineOf(); got != base {
		t.Fatalf("first quarantine = %v, want %v", got, base)
	}

	// Probes are green, so quarantine lapses into half-open.
	waitFor(t, 5*time.Second, "first half-open", func() bool { return stateOf() == "half-open" })

	// The single recovery trial fails — the flap. Re-ejected, backoff
	// doubled.
	if _, err := b.RunBatch(context.Background(), key, signJob("flap-1")); err == nil {
		t.Fatal("half-open trial under fault succeeded")
	}
	if got := stateOf(); got != "ejected" {
		t.Fatalf("state after failed trial = %s, want ejected (re-quarantined)", got)
	}
	if got := quarantineOf(); got != 2*base {
		t.Fatalf("quarantine after flap = %v, want doubled (%v)", got, 2*base)
	}

	// Clear the fault; the next trial restores the leaf and resets the
	// backoff.
	disarm()
	waitFor(t, 5*time.Second, "second half-open", func() bool { return stateOf() == "half-open" })
	if _, err := b.RunBatch(context.Background(), key, signJob("flap-2")); err != nil {
		t.Fatalf("recovery trial failed with fault cleared: %v", err)
	}
	if got := stateOf(); got != "healthy" {
		t.Fatalf("state after successful trial = %s, want healthy", got)
	}
	if got := quarantineOf(); got != 0 {
		t.Fatalf("quarantine after recovery = %v, want reset to 0", got)
	}

	// The whole flap is visible in the event log.
	evs := fleet.Events()
	var ejected, recovered int
	for _, e := range evs {
		switch e.Type {
		case "ejected":
			ejected++
		case "recovered":
			recovered++
		}
	}
	if ejected < 2 || recovered < 1 {
		t.Fatalf("event log saw %d ejections / %d recoveries, want >=2 / >=1 (%v)",
			ejected, recovered, eventTypes(evs))
	}
}

// TestMinWeightFloor (satellite): an idle-but-healthy leaf must keep a
// routable dispatch weight — the EWMA decaying to zero between probes must
// not pin the leaf out of the rotation forever.
func TestMinWeightFloor(t *testing.T) {
	key := testKey(t)
	a := newFakeLeaf(t, "a", key)
	_, backends := fakeFleet(t, slowProbes, a)
	b := backends[0]

	// Simulate a leaf that has observed zero throughput since warm.
	b.leaf.mu.Lock()
	b.leaf.ewmaSigs = 0
	b.leaf.mu.Unlock()

	if w := b.Weight(); w <= 0 {
		t.Fatalf("idle healthy leaf weight = %v, want floored above zero", w)
	}
	if w := b.Weight(); w != b.f.opts.MinWeight {
		t.Fatalf("idle weight = %v, want the MinWeight floor %v", w, b.f.opts.MinWeight)
	}
	if st := b.RemoteHealth(); st.WeightSigsPerSec != b.f.opts.MinWeight {
		t.Fatalf("stats weight = %v, want floor %v", st.WeightSigsPerSec, b.f.opts.MinWeight)
	}

	// Ejection still zeroes the weight — the floor is for healthy leaves.
	b.leaf.mu.Lock()
	b.leaf.ejectLocked(b.f.opts)
	b.leaf.mu.Unlock()
	if w := b.Weight(); w != 0 {
		t.Fatalf("ejected leaf weight = %v, want 0", w)
	}
	if st := b.RemoteHealth(); st.WeightSigsPerSec != 0 {
		t.Fatalf("ejected stats weight = %v, want 0", st.WeightSigsPerSec)
	}
}
