package remote

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"herosign/internal/spx"
	"herosign/service"
)

// Backend proxies one leaf server as a service.Backend. Construct through
// Fleet.Backends; the fleet supplies the shared transport, health checker,
// latency tracker and hedge budget.
type Backend struct {
	f    *Fleet
	leaf *leaf

	closeOnce sync.Once
}

// Name identifies the leaf in stats and results.
func (b *Backend) Name() string { return "remote(" + b.leaf.host + ")" }

// Capacity reflects the leaf's own admission cap (learned at Warm from its
// /v1/stats), so the front end's AutoQueueLimit stacks sensibly on top of
// the leaf's.
func (b *Backend) Capacity() int {
	b.leaf.mu.Lock()
	defer b.leaf.mu.Unlock()
	if b.leaf.capacity > 0 {
		return b.leaf.capacity
	}
	return 256
}

// PreferredBatch aligns the front end's flush threshold with the leaf's,
// so one proxied batch maps onto whole leaf-side flushes.
func (b *Backend) PreferredBatch() int {
	b.leaf.mu.Lock()
	defer b.leaf.mu.Unlock()
	return b.leaf.prefBatch
}

// Weight is the probe-fed EWMA of the leaf's observed sigs/s, floored at
// Options.MinWeight so an idle-but-healthy leaf stays routable (zero while
// ejected).
func (b *Backend) Weight() float64 { return b.leaf.weight(b.f.opts.MinWeight) }

// Available implements service.Availabler: the router skips this leaf's
// pool while the health checker has it quarantined.
func (b *Backend) Available() bool { return b.leaf.available() }

// Warm pins the leaf to the shard's key domain: it fetches the leaf's
// /v1/keys catalog, requires an entry whose public key is byte-identical
// to the shard key's, and seeds the dispatch weight and capacity hints
// from the leaf's /v1/stats. A leaf launched with a different master key
// (or shard layout) fails here, before any traffic is misrouted.
func (b *Backend) Warm(key *service.PrivateKey) error {
	ctx, cancel := context.WithTimeout(context.Background(), b.f.opts.ProbeTimeout)
	defer cancel()
	wantID := service.KeyID(&key.PublicKey)
	wantPub := key.PublicKey.Bytes()
	catalog, err := b.f.tr.keys(ctx, b.leaf.url)
	if err != nil {
		return fmt.Errorf("remote: warming %s: %w", b.leaf.url, err)
	}
	if catalog.Params != key.Params.Name {
		return fmt.Errorf("remote: leaf %s serves %s, front end wants %s",
			b.leaf.url, catalog.Params, key.Params.Name)
	}
	found := false
	for _, k := range catalog.Keys {
		if k.KeyID == wantID {
			if !bytes.Equal(k.PublicKey, wantPub) {
				return fmt.Errorf("remote: leaf %s key %s has a different public key (key-id collision?)",
					b.leaf.url, wantID)
			}
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("remote: leaf %s does not serve key domain %s — start the leaf with the front end's master key and shard layout",
			b.leaf.url, wantID)
	}

	st, err := b.f.tr.stats(ctx, b.leaf.url)
	if err != nil {
		return fmt.Errorf("remote: warming %s: %w", b.leaf.url, err)
	}
	var seedWeight float64
	capacity := 0
	for _, sh := range st.Shards {
		if sh.KeyID == wantID {
			seedWeight = sh.WeightSigsPerSec
			if sh.QueueLimit > 0 {
				capacity = int(sh.QueueLimit)
			}
		}
	}
	if capacity == 0 {
		capacity = 4 * st.MaxBatch
	}
	var signMsgs int64
	for _, d := range st.Devices {
		signMsgs += d.SignMsgs
	}

	l := b.leaf
	l.mu.Lock()
	l.keyID = wantID
	l.capacity = capacity
	l.prefBatch = st.MaxBatch
	if l.ewmaSigs <= 0 && seedWeight > 0 {
		l.ewmaSigs = seedWeight
	}
	l.lastSignMsgs, l.lastProbe, l.probeSeeded = signMsgs, time.Now(), true
	// A fresh (or re-) warm means the operator believes in this leaf;
	// clear any stale quarantine from a pre-startup probe race.
	l.state = stateHealthy
	l.consecProbeFail, l.consecReqFail = 0, 0
	l.mu.Unlock()
	return nil
}

// RunBatch executes one flushed batch on the fleet: the primary attempt
// goes to this backend's leaf, hedging and failover may involve siblings
// of the same key domain, and the first success wins.
func (b *Backend) RunBatch(ctx context.Context, key *service.PrivateKey, job *service.Job) (*service.BatchOutput, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.leaf.mu.Lock()
	keyID := b.leaf.keyID
	b.leaf.mu.Unlock()
	if keyID == "" {
		return nil, fmt.Errorf("remote: backend %s used before Warm", b.Name())
	}
	sched := schedMeta{deadlinesMs: job.DeadlinesMs, tenants: job.Tenants}
	switch job.Kind {
	case service.KindSign:
		return b.f.runSign(ctx, b.leaf, job.Msgs, sched)
	case service.KindVerify:
		return b.f.runVerify(ctx, b.leaf, job.Msgs, job.Sigs, sched)
	case service.KindKeyGen:
		return b.f.runKeyGen(ctx, b.leaf, key.Params, job.Seeds)
	}
	return nil, fmt.Errorf("remote: unknown job kind %d", job.Kind)
}

// RemoteHealth implements service.RemoteHealthReporter for /v1/stats.
func (b *Backend) RemoteHealth() service.RemoteLeafStats {
	l := b.leaf
	l.mu.Lock()
	st := service.RemoteLeafStats{
		URL:              l.url,
		KeyID:            l.keyID,
		State:            l.state.String(),
		EWMASigsPerSec:   l.ewmaSigs,
		LatencyEWMAMs:    l.ewmaLatMs,
		WeightSigsPerSec: l.ewmaSigs,
	}
	if st.WeightSigsPerSec < b.f.opts.MinWeight {
		st.WeightSigsPerSec = b.f.opts.MinWeight
	}
	if l.state == stateEjected {
		st.WeightSigsPerSec = 0
	}
	l.mu.Unlock()
	st.Probes = l.probes.Load()
	st.ProbeFailures = l.probeFailures.Load()
	st.Ejections = l.ejections.Load()
	st.PrimarySends = l.primarySends.Load()
	st.HedgesSent = l.hedgesSent.Load()
	st.HedgeWins = l.hedgeWins.Load()
	st.Failovers = l.failovers.Load()
	st.Errors = l.errorsTotal.Load()
	st.Overloads = l.overloads.Load()
	return st
}

// Close releases this backend's fleet reference; the router calls it after
// the pool drains, and the last backend's close stops the probe loop.
func (b *Backend) Close() error {
	b.closeOnce.Do(b.f.release)
	return nil
}

// pickSibling chooses a failover/hedge target serving the same key domain:
// available, not yet attempted, least in flight (ties broken by weight).
func (f *Fleet) pickSibling(keyID string, attempted map[*leaf]bool) *leaf {
	var best *leaf
	var bestInflight int64
	var bestWeight float64
	for _, l := range f.leafList() {
		if attempted[l] || !l.available() {
			continue
		}
		l.mu.Lock()
		match := l.keyID == keyID
		w := l.ewmaSigs
		l.mu.Unlock()
		if !match {
			continue
		}
		inflight := l.inflight.Load()
		if best == nil || inflight < bestInflight ||
			(inflight == bestInflight && w > bestWeight) {
			best, bestInflight, bestWeight = l, inflight, w
		}
	}
	return best
}

// attemptResult is one leaf's answer for a proxied sign batch.
type attemptResult struct {
	leaf  *leaf
	sigs  [][]byte
	dur   time.Duration
	err   error
	hedge bool
}

// runSign proxies one sign batch with hedging and failover. The first
// successful attempt resolves the batch; losing attempts are canceled
// (the leaf may still complete the work — that redundancy is the price of
// the tail cut, which is why the hedge budget is capped).
func (f *Fleet) runSign(ctx context.Context, primary *leaf, msgs [][]byte, sched schedMeta) (*service.BatchOutput, error) {
	runCtx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	keyID := func(l *leaf) string {
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.keyID
	}
	maxAttempts := f.maxAttempts()
	results := make(chan attemptResult, maxAttempts)
	attempted := make(map[*leaf]bool, maxAttempts)
	pending := 0

	send := func(l *leaf, hedge bool) {
		attempted[l] = true
		pending++
		l.inflight.Add(1)
		go func() {
			actx, cancel := context.WithTimeout(runCtx, f.opts.RequestTimeout)
			defer cancel()
			t0 := time.Now()
			sigs, err := f.tr.signBatch(actx, l.url, keyID(l), msgs, sched)
			dur := time.Since(t0)
			l.inflight.Add(-1)
			canceled := runCtx.Err() != nil && err != nil
			switch {
			case canceled:
				// The race was decided elsewhere; a canceled loser says
				// nothing about the leaf's health.
			case err == nil:
				f.tracker.add(dur)
				l.observeSuccess(f.opts, dur, len(msgs))
			case errors.Is(err, service.ErrOverloaded):
				l.observeOverload()
			case hardFailure(err):
				l.observeHardFailure(f.opts)
			default:
				l.observeSoftFailure()
			}
			results <- attemptResult{leaf: l, sigs: sigs, dur: dur, err: err, hedge: hedge}
		}()
	}

	primary.primarySends.Add(1)
	f.budget.recordPrimary()
	send(primary, false)

	// Arm the hedge timer from the adaptive percentile of recent
	// completions; dormant until the tracker has seen enough traffic.
	var hedgeCh <-chan time.Time
	if f.opts.HedgePercentile > 0 {
		if d, ok := f.tracker.percentile(f.opts.HedgePercentile, f.opts.HedgeMinSamples); ok {
			timer := time.NewTimer(d)
			defer timer.Stop()
			hedgeCh = timer.C
		}
	}

	var overloadMax time.Duration
	sawOverload := false
	var lastErr error
	for pending > 0 {
		select {
		case res := <-results:
			pending--
			if res.err == nil {
				if res.hedge {
					res.leaf.hedgeWins.Add(1)
				}
				return &service.BatchOutput{
					Sigs:   res.sigs,
					BusyUs: float64(res.dur.Microseconds()),
				}, nil
			}
			var over *service.OverloadError
			if errors.As(res.err, &over) {
				sawOverload = true
				if over.RetryAfter > overloadMax {
					overloadMax = over.RetryAfter
				}
			} else {
				lastErr = res.err
			}
			// Failover: with no attempt left in flight and budget for
			// another leaf, retry the batch on a sibling. Does not spend
			// hedge budget — this is correctness rerouting, not tail
			// trimming.
			if pending == 0 && retryable(res.err) && len(attempted) < maxAttempts {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				if sib := f.pickSibling(keyID(primary), attempted); sib != nil {
					res.leaf.failovers.Add(1)
					send(sib, false)
				}
			}
		case <-hedgeCh:
			hedgeCh = nil
			if len(attempted) < maxAttempts && f.budget.tryAcquire() {
				if sib := f.pickSibling(keyID(primary), attempted); sib != nil {
					primary.hedgesSent.Add(1)
					send(sib, true)
				}
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	// Every attempted leaf failed. Overload wins the error ranking: it is
	// retryable by the client, and it must carry the *leaves'* drain
	// estimate (the max across attempted leaves), not one recomputed from
	// the front end's own queue.
	if sawOverload {
		return nil, &service.OverloadError{Scope: "leaf", RetryAfter: overloadMax}
	}
	return nil, lastErr
}

// runFailover executes op against the primary, then against siblings on
// retryable errors — the non-hedged path shared by verify and keygen.
func (f *Fleet) runFailover(ctx context.Context, primary *leaf,
	op func(ctx context.Context, l *leaf) error) error {
	l := primary
	maxAttempts := f.maxAttempts()
	attempted := make(map[*leaf]bool, maxAttempts)
	var overloadMax time.Duration
	sawOverload := false
	var lastErr error
	for len(attempted) < maxAttempts && l != nil {
		attempted[l] = true
		l.inflight.Add(1)
		actx, cancel := context.WithTimeout(ctx, f.opts.RequestTimeout)
		t0 := time.Now()
		err := op(actx, l)
		cancel()
		dur := time.Since(t0)
		l.inflight.Add(-1)
		if err == nil {
			l.observeSuccess(f.opts, dur, 1)
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var over *service.OverloadError
		switch {
		case errors.As(err, &over):
			l.observeOverload()
			sawOverload = true
			if over.RetryAfter > overloadMax {
				overloadMax = over.RetryAfter
			}
		case hardFailure(err):
			l.observeHardFailure(f.opts)
			lastErr = err
		default:
			l.observeSoftFailure()
			return err // 4xx: retrying elsewhere cannot help
		}
		if !retryable(err) {
			return err
		}
		prev := l
		l.mu.Lock()
		kid := l.keyID
		l.mu.Unlock()
		l = f.pickSibling(kid, attempted)
		if l != nil {
			prev.failovers.Add(1)
		}
	}
	if sawOverload {
		return &service.OverloadError{Scope: "leaf", RetryAfter: overloadMax}
	}
	return lastErr
}

func (f *Fleet) runVerify(ctx context.Context, primary *leaf, msgs, sigs [][]byte, sched schedMeta) (*service.BatchOutput, error) {
	primary.primarySends.Add(1)
	var out *service.BatchOutput
	err := f.runFailover(ctx, primary, func(actx context.Context, l *leaf) error {
		l.mu.Lock()
		kid := l.keyID
		l.mu.Unlock()
		t0 := time.Now()
		ok, err := f.tr.verifyBatch(actx, l.url, kid, msgs, sigs, sched)
		if err != nil {
			return err
		}
		out = &service.BatchOutput{OK: ok, BusyUs: float64(time.Since(t0).Microseconds())}
		return nil
	})
	return out, err
}

func (f *Fleet) runKeyGen(ctx context.Context, primary *leaf, p *service.Params, seeds []service.SeedTriple) (*service.BatchOutput, error) {
	primary.primarySends.Add(1)
	var out *service.BatchOutput
	err := f.runFailover(ctx, primary, func(actx context.Context, l *leaf) error {
		t0 := time.Now()
		raw, err := f.tr.keygen(actx, l.url, seeds)
		if err != nil {
			return err
		}
		keys := make([]*service.PrivateKey, len(raw))
		for i, kb := range raw {
			sk, err := spx.ParsePrivateKey(p, kb)
			if err != nil {
				return &StatusError{URL: l.url, Status: 200,
					Msg: fmt.Sprintf("keygen key %d does not parse: %v", i, err)}
			}
			keys[i] = sk
		}
		out = &service.BatchOutput{Keys: keys, BusyUs: float64(time.Since(t0).Microseconds())}
		return nil
	})
	return out, err
}
