package remote

import (
	"sort"
	"sync"
	"time"
)

// latencyTracker keeps a ring of recent sign-batch completion latencies and
// answers percentile queries — the adaptive hedge trigger: a batch still in
// flight past pN of recent completions is worth re-issuing.
type latencyTracker struct {
	mu   sync.Mutex
	ring []time.Duration
	next int
	n    int
}

func newLatencyTracker(size int) *latencyTracker {
	if size < 16 {
		size = 16
	}
	return &latencyTracker{ring: make([]time.Duration, size)}
}

func (t *latencyTracker) add(d time.Duration) {
	t.mu.Lock()
	t.ring[t.next] = d
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
}

// percentile returns the p-th percentile of the recorded completions, or
// ok=false while fewer than minSamples are recorded (hedging stays dormant
// until the tracker has seen real traffic).
func (t *latencyTracker) percentile(p, minSamples int) (time.Duration, bool) {
	t.mu.Lock()
	if t.n < minSamples {
		t.mu.Unlock()
		return 0, false
	}
	buf := make([]time.Duration, t.n)
	copy(buf, t.ring[:t.n])
	t.mu.Unlock()
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := len(buf) * p / 100
	if idx >= len(buf) {
		idx = len(buf) - 1
	}
	return buf[idx], true
}

// hedgeBudget caps hedge volume at frac of primary sends, fleet-wide, so
// hedging trims the tail without doubling load. Primary sends are recorded
// unconditionally; a hedge is only granted while hedges < primaries*frac —
// a strict cap, so hedge volume can never exceed the configured fraction
// (hedging therefore stays dormant for the first 1/frac primaries).
type hedgeBudget struct {
	frac      float64
	mu        sync.Mutex
	primaries int64
	hedges    int64
	denied    int64
}

func (b *hedgeBudget) recordPrimary() {
	b.mu.Lock()
	b.primaries++
	b.mu.Unlock()
}

// tryAcquire grants one hedge if the budget allows.
func (b *hedgeBudget) tryAcquire() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	allowed := int64(float64(b.primaries) * b.frac)
	if b.hedges >= allowed {
		b.denied++
		return false
	}
	b.hedges++
	return true
}
