package remote

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"herosign/internal/gpu/device"
	"herosign/internal/spx"
	"herosign/internal/spx/params"
	"herosign/service"
)

var testKeyOnce struct {
	sync.Once
	sk *spx.PrivateKey
}

// testKey matches the service package's deterministic test key so signers
// warmed by other test binaries stay cache-compatible.
func testKey(t *testing.T) *spx.PrivateKey {
	t.Helper()
	testKeyOnce.Do(func() {
		p := params.SPHINCSPlus128f
		sk, err := spx.KeyFromSeeds(p,
			bytes.Repeat([]byte{0x5a}, p.N),
			bytes.Repeat([]byte{0xa5}, p.N),
			bytes.Repeat([]byte{0x3c}, p.N))
		if err != nil {
			panic(err)
		}
		testKeyOnce.sk = sk
	})
	return testKeyOnce.sk
}

// newLeafServer starts a real herosign service behind its HTTP handler — an
// actual leaf, signing for real.
func newLeafServer(t *testing.T, key *spx.PrivateKey) (*service.Service, *httptest.Server) {
	t.Helper()
	dev, err := device.ByName("RTX 4090")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(
		service.WithParams(params.SPHINCSPlus128f),
		service.WithKey(key),
		service.WithDevices(dev),
		service.WithFlushDeadline(2*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { ts.Close(); svc.Close() })
	return svc, ts
}

// TestFleetProxySignByteIdentical is the tentpole acceptance check: a front
// end whose only backend proxies to a real leaf over HTTP must produce
// signatures byte-identical to local signing (same key, same message, same
// bytes), and surface the leaf's health under /v1/stats.
func TestFleetProxySignByteIdentical(t *testing.T) {
	key := testKey(t)
	_, leafTS := newLeafServer(t, key)

	fleet, err := NewFleet([]string{leafTS.URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	front, err := service.New(
		service.WithParams(params.SPHINCSPlus128f),
		service.WithKey(key),
		service.WithBackends(fleet.Backends()...),
		service.WithFlushDeadline(2*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	msgs := [][]byte{[]byte("proxy-0"), []byte("proxy-1"), []byte("proxy-2")}
	futs, err := front.SubmitSignBatch("", msgs)
	if err != nil {
		t.Fatalf("proxied batch sign: %v", err)
	}
	ctx := t.Context()
	sigs := make([][]byte, len(futs))
	for i, fut := range futs {
		res, err := fut.Wait(ctx)
		if err != nil {
			t.Fatalf("proxied sign %d: %v", i, err)
		}
		want, err := spx.Sign(key, msgs[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Sig, want) {
			t.Fatalf("proxied signature %d differs from local signing", i)
		}
		sigs[i] = res.Sig
	}

	// Verify through the proxy too.
	vf, err := front.SubmitVerify(msgs[0], sigs[0])
	if err != nil {
		t.Fatal(err)
	}
	if res, err := vf.Wait(ctx); err != nil || !res.Valid {
		t.Fatalf("proxied verify: %+v err=%v", res, err)
	}
	vf, err = front.SubmitVerify([]byte("tampered"), sigs[0])
	if err != nil {
		t.Fatal(err)
	}
	if res, err := vf.Wait(ctx); err != nil || res.Valid {
		t.Fatalf("proxied verify accepted tampered message: %+v err=%v", res, err)
	}

	st := front.Stats()
	if len(st.RemoteLeaves) != 1 {
		t.Fatalf("front stats list %d remote leaves, want 1", len(st.RemoteLeaves))
	}
	rl := st.RemoteLeaves[0]
	if rl.State != "healthy" || rl.PrimarySends == 0 {
		t.Fatalf("remote leaf stats: %+v", rl)
	}
	if !strings.HasPrefix(st.Devices[0].Device, "remote(") {
		t.Fatalf("backend name %q, want remote(host)", st.Devices[0].Device)
	}
}

// TestWarmRejectsMismatchedKey: a leaf launched with a different master key
// must fail the front end's construction, not silently produce signatures
// under the wrong key domain.
func TestWarmRejectsMismatchedKey(t *testing.T) {
	p := params.SPHINCSPlus128f
	otherKey, err := spx.KeyFromSeeds(p,
		bytes.Repeat([]byte{0x11}, p.N),
		bytes.Repeat([]byte{0x22}, p.N),
		bytes.Repeat([]byte{0x33}, p.N))
	if err != nil {
		t.Fatal(err)
	}
	_, leafTS := newLeafServer(t, otherKey)

	fleet, err := NewFleet([]string{leafTS.URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	_, err = service.New(
		service.WithParams(p),
		service.WithKey(testKey(t)),
		service.WithBackends(fleet.Backends()...),
	)
	if err == nil || !strings.Contains(err.Error(), "does not serve key domain") {
		t.Fatalf("front construction error = %v, want key-domain mismatch", err)
	}
}

// fakeLeaf is a scriptable leaf: real wire format, fake execution. It lets
// the health, hedging and failover paths run in milliseconds.
type fakeLeaf struct {
	t     *testing.T
	name  string
	key   *spx.PrivateKey
	keyID string

	mu           sync.Mutex
	signDelay    time.Duration
	signStatus   int // 0 serves; otherwise the HTTP status to return
	retryAfterMs int64
	statsStatus  int // 0 serves; otherwise /v1/stats returns this

	signCalls atomic.Int64
	signMsgs  atomic.Int64

	srv *httptest.Server
}

func (f *fakeLeaf) set(fn func(*fakeLeaf)) {
	f.mu.Lock()
	fn(f)
	f.mu.Unlock()
}

// sig fabricates a recognizable per-leaf signature.
func (f *fakeLeaf) sig(msg []byte) []byte {
	return append([]byte("sig:"+f.name+":"), msg...)
}

func newFakeLeaf(t *testing.T, name string, key *spx.PrivateKey) *fakeLeaf {
	f := &fakeLeaf{t: t, name: name, key: key, keyID: service.KeyID(&key.PublicKey)}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/keys", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"params": key.Params.Name,
			"keys": []map[string]any{{
				"key_id": f.keyID, "shard": 0, "public_key": key.PublicKey.Bytes(),
			}},
		})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		status := f.statsStatus
		f.mu.Unlock()
		if status != 0 {
			http.Error(w, "stats down", status)
			return
		}
		json.NewEncoder(w).Encode(service.Stats{
			Params:   key.Params.Name,
			MaxBatch: 64,
			Devices:  []service.BackendStats{{SignMsgs: f.signMsgs.Load()}},
			Shards: []service.ShardStats{{
				KeyID: f.keyID, QueueLimit: 128, WeightSigsPerSec: 100,
			}},
		})
	})
	mux.HandleFunc("POST /v1/sign/batch", func(w http.ResponseWriter, r *http.Request) {
		f.signCalls.Add(1)
		f.mu.Lock()
		delay, status, retry := f.signDelay, f.signStatus, f.retryAfterMs
		f.mu.Unlock()
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				return
			}
		}
		if status != 0 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(map[string]any{
				"error": "scripted failure", "retry_after_ms": retry,
			})
			return
		}
		var req struct {
			Messages [][]byte `json:"messages"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		sigs := make([][]byte, len(req.Messages))
		for i, m := range req.Messages {
			sigs[i] = f.sig(m)
		}
		f.signMsgs.Add(int64(len(req.Messages)))
		json.NewEncoder(w).Encode(map[string]any{"key_id": f.keyID, "signatures": sigs})
	})
	mux.HandleFunc("POST /v1/verify/batch", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Messages [][]byte `json:"messages"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		valid := make([]bool, len(req.Messages))
		for i := range valid {
			valid[i] = true
		}
		json.NewEncoder(w).Encode(map[string]any{"key_id": f.keyID, "valid": valid})
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

// fakeFleet wires fake leaves into a warmed Fleet without a front service.
func fakeFleet(t *testing.T, opts Options, leaves ...*fakeLeaf) (*Fleet, []*Backend) {
	t.Helper()
	urls := make([]string, len(leaves))
	for i, l := range leaves {
		urls[i] = l.srv.URL
	}
	fleet, err := NewFleet(urls, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fleet.Close() })
	backends := make([]*Backend, len(leaves))
	for i, b := range fleet.Backends() {
		rb := b.(*Backend)
		if err := rb.Warm(leaves[i].key); err != nil {
			t.Fatalf("warming fake leaf %d: %v", i, err)
		}
		backends[i] = rb
	}
	return fleet, backends
}

func signJob(msgs ...string) *service.Job {
	j := &service.Job{Kind: service.KindSign}
	for _, m := range msgs {
		j.Msgs = append(j.Msgs, []byte(m))
	}
	return j
}

// slowProbes keeps the health checker out of short scripted tests.
var slowProbes = Options{ProbeInterval: time.Hour}

// TestRetryAfterPropagation: overloaded leaves must surface THEIR drain
// estimate — the max across attempted leaves — not one recomputed from the
// front end's empty queue, and a 429 must not count toward ejection.
func TestRetryAfterPropagation(t *testing.T) {
	key := testKey(t)
	a := newFakeLeaf(t, "a", key)
	b := newFakeLeaf(t, "b", key)
	a.set(func(f *fakeLeaf) { f.signStatus = 429; f.retryAfterMs = 200 })
	b.set(func(f *fakeLeaf) { f.signStatus = 429; f.retryAfterMs = 1500 })

	_, backends := fakeFleet(t, slowProbes, a, b)
	_, err := backends[0].RunBatch(t.Context(), key, signJob("m"))
	var over *service.OverloadError
	if !errors.As(err, &over) {
		t.Fatalf("err = %v, want OverloadError", err)
	}
	if over.Scope != "leaf" {
		t.Fatalf("overload scope %q, want leaf", over.Scope)
	}
	if over.RetryAfter != 1500*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 1.5s (max across attempted leaves)", over.RetryAfter)
	}
	if !errors.Is(err, service.ErrOverloaded) {
		t.Fatal("leaf overload does not unwrap to ErrOverloaded")
	}
	// Both leaves were tried (failover across replicas), neither ejected.
	if a.signCalls.Load() != 1 || b.signCalls.Load() != 1 {
		t.Fatalf("sign calls a=%d b=%d, want 1 each", a.signCalls.Load(), b.signCalls.Load())
	}
	for _, rb := range backends {
		if !rb.Available() {
			t.Fatal("a 429 must not eject a leaf")
		}
	}
}

// TestFailoverOnHardError: a 5xx from the primary reroutes the batch to a
// sibling replica without surfacing an error, and without spending hedge
// budget.
func TestFailoverOnHardError(t *testing.T) {
	key := testKey(t)
	a := newFakeLeaf(t, "a", key)
	b := newFakeLeaf(t, "b", key)
	a.set(func(f *fakeLeaf) { f.signStatus = 500 })

	fleet, backends := fakeFleet(t, slowProbes, a, b)
	out, err := backends[0].RunBatch(t.Context(), key, signJob("m0", "m1"))
	if err != nil {
		t.Fatalf("failover batch: %v", err)
	}
	if !bytes.Equal(out.Sigs[0], b.sig([]byte("m0"))) {
		t.Fatal("failover result did not come from the sibling leaf")
	}
	if got := backends[0].RemoteHealth().Failovers; got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	if fleet.budget.hedges != 0 {
		t.Fatalf("failover consumed %d hedge budget", fleet.budget.hedges)
	}
}

// TestRequestFailureEjection: consecutive hard request failures quarantine
// the leaf without waiting for a probe tick.
func TestRequestFailureEjection(t *testing.T) {
	key := testKey(t)
	a := newFakeLeaf(t, "a", key)
	b := newFakeLeaf(t, "b", key)
	a.set(func(f *fakeLeaf) { f.signStatus = 500 })

	_, backends := fakeFleet(t, slowProbes, a, b)
	for i := 0; i < 2; i++ {
		if _, err := backends[0].RunBatch(t.Context(), key, signJob("m")); err != nil {
			t.Fatalf("batch %d should have failed over: %v", i, err)
		}
	}
	if backends[0].Available() {
		t.Fatal("leaf still available after consecutive hard failures")
	}
	if backends[0].Weight() != 0 {
		t.Fatalf("ejected leaf weight = %v, want 0", backends[0].Weight())
	}
	if st := backends[0].RemoteHealth(); st.State != "ejected" || st.Ejections != 1 {
		t.Fatalf("leaf health: %+v", st)
	}
}

// TestProbeEjectionAndRecovery drives the full health state machine: a leaf
// whose probes fail is ejected within one probe interval, sits out its
// quarantine, returns via a half-open trial and is restored by a success.
func TestProbeEjectionAndRecovery(t *testing.T) {
	key := testKey(t)
	a := newFakeLeaf(t, "a", key)
	opts := Options{
		ProbeInterval:  20 * time.Millisecond,
		BaseQuarantine: 40 * time.Millisecond,
	}
	_, backends := fakeFleet(t, opts, a)
	rb := backends[0]

	a.set(func(f *fakeLeaf) { f.statsStatus = 503 })
	deadline := time.Now().Add(2 * time.Second)
	for rb.Available() {
		if time.Now().After(deadline) {
			t.Fatal("leaf not ejected after repeated probe failures")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := rb.RemoteHealth(); st.State != "ejected" || st.ProbeFailures == 0 {
		t.Fatalf("leaf health after probe failures: %+v", st)
	}

	// Heal the leaf: after the quarantine a good probe moves it half-open.
	a.set(func(f *fakeLeaf) { f.statsStatus = 0 })
	for rb.RemoteHealth().State != "half-open" {
		if time.Now().After(deadline) {
			t.Fatal("leaf never reached half-open after quarantine")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !rb.Available() {
		t.Fatal("half-open leaf with no trial in flight must accept one")
	}

	// One successful trial restores it.
	if _, err := rb.RunBatch(t.Context(), key, signJob("trial")); err != nil {
		t.Fatalf("half-open trial: %v", err)
	}
	if st := rb.RemoteHealth(); st.State != "healthy" {
		t.Fatalf("leaf state after successful trial = %s, want healthy", st.State)
	}
}

// TestHedgedRetryCutsTail: a batch stuck past the adaptive percentile is
// re-issued to a sibling and the sibling's fast answer wins.
func TestHedgedRetryCutsTail(t *testing.T) {
	key := testKey(t)
	slow := newFakeLeaf(t, "slow", key)
	fast := newFakeLeaf(t, "fast", key)
	slow.set(func(f *fakeLeaf) { f.signDelay = 400 * time.Millisecond })

	opts := slowProbes
	opts.HedgePercentile = 90
	fleet, backends := fakeFleet(t, opts, slow, fast)

	// Prime the latency tracker with fast completions and the budget with
	// enough primaries that one hedge is within the 10% cap.
	for i := 0; i < 16; i++ {
		fleet.tracker.add(5 * time.Millisecond)
		fleet.budget.recordPrimary()
	}

	t0 := time.Now()
	out, err := backends[0].RunBatch(t.Context(), key, signJob("tail"))
	if err != nil {
		t.Fatalf("hedged batch: %v", err)
	}
	if d := time.Since(t0); d >= 400*time.Millisecond {
		t.Fatalf("hedge did not cut the tail: batch took %v", d)
	}
	if !bytes.Equal(out.Sigs[0], fast.sig([]byte("tail"))) {
		t.Fatal("winning signature did not come from the hedge target")
	}
	if got := backends[0].RemoteHealth().HedgesSent; got != 1 {
		t.Fatalf("primary hedgesSent = %d, want 1", got)
	}
	if got := backends[1].RemoteHealth().HedgeWins; got != 1 {
		t.Fatalf("sibling hedgeWins = %d, want 1", got)
	}
}

// TestHedgeBudgetStrictCap: hedge volume may never exceed the configured
// fraction of primary sends, from the very first request.
func TestHedgeBudgetStrictCap(t *testing.T) {
	b := &hedgeBudget{frac: 0.10}
	granted := 0
	for i := 0; i < 200; i++ {
		b.recordPrimary()
		if b.tryAcquire() {
			granted++
		}
		if float64(b.hedges) > float64(b.primaries)*b.frac {
			t.Fatalf("after %d primaries: %d hedges exceeds 10%%", b.primaries, b.hedges)
		}
	}
	if granted == 0 {
		t.Fatal("budget never granted a hedge across 200 primaries")
	}
	if granted > 20 {
		t.Fatalf("granted %d hedges for 200 primaries, cap is 20", granted)
	}
}

func TestLatencyTrackerPercentile(t *testing.T) {
	tr := newLatencyTracker(64)
	if _, ok := tr.percentile(95, 8); ok {
		t.Fatal("tracker returned a percentile before minSamples")
	}
	for i := 1; i <= 100; i++ {
		tr.add(time.Duration(i) * time.Millisecond)
	}
	// Ring holds the most recent 64 samples: 37ms..100ms.
	p50, ok := tr.percentile(50, 8)
	if !ok {
		t.Fatal("percentile unavailable after 100 samples")
	}
	if p50 < 60*time.Millisecond || p50 > 80*time.Millisecond {
		t.Fatalf("p50 = %v, want ~68ms over the 37..100ms window", p50)
	}
	p99, _ := tr.percentile(99, 8)
	if p99 < p50 {
		t.Fatal("p99 below p50")
	}
}

// TestFleetRefcountClose: the router closes each backend after its pool
// drains; the last release stops the probe loop.
func TestFleetRefcountClose(t *testing.T) {
	key := testKey(t)
	a := newFakeLeaf(t, "a", key)
	b := newFakeLeaf(t, "b", key)
	fleet, backends := fakeFleet(t, slowProbes, a, b)
	backends[0].Close()
	select {
	case <-fleet.stop:
		t.Fatal("fleet stopped after first backend close")
	default:
	}
	backends[1].Close()
	select {
	case <-fleet.stop:
	default:
		t.Fatal("fleet still running after last backend close")
	}
	// Double close is harmless.
	backends[1].Close()
	fleet.Close()
}

func TestNewFleetRejectsBadURLs(t *testing.T) {
	if _, err := NewFleet(nil, Options{}); err == nil {
		t.Fatal("empty URL list accepted")
	}
	for _, bad := range []string{"", "localhost:8080", "not a url"} {
		if _, err := NewFleet([]string{bad}, Options{}); err == nil {
			t.Fatalf("URL %q accepted", bad)
		}
	}
}

func TestBackendBeforeWarm(t *testing.T) {
	key := testKey(t)
	a := newFakeLeaf(t, "a", key)
	fleet, err := NewFleet([]string{a.srv.URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	rb := fleet.Backends()[0].(*Backend)
	if _, err := rb.RunBatch(t.Context(), key, signJob("m")); err == nil ||
		!strings.Contains(err.Error(), "before Warm") {
		t.Fatalf("RunBatch before Warm: %v", err)
	}
}
