package service

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FleetAuthHeader carries the fleet's node-to-node request authenticator:
//
//	X-Herosign-Fleet-Auth: v1:<unix-ms>:<nonce-hex>:<hmac-hex>
//
// where the MAC is HMAC-SHA256 over (method, path, timestamp, nonce) under
// the shared fleet secret. The timestamp bounds the replay window and the
// nonce makes every header single-use inside it.
const FleetAuthHeader = "X-Herosign-Fleet-Auth"

// fleetAuthWindow is how far a request's timestamp may sit from the
// verifier's clock. Nonces are remembered for the same window, so a
// captured header cannot be replayed: inside the window the nonce cache
// rejects it, outside the timestamp check does.
const fleetAuthWindow = 30 * time.Second

// fleetAuthMaxNonces caps the replay cache. At the default window a cache
// this size absorbs >100k authenticated requests/s before eviction could
// matter; past it the oldest nonces are dropped (their timestamps are near
// the window edge anyway).
const fleetAuthMaxNonces = 1 << 16

// FleetAuth authenticates fleet-internal HTTP traffic with a shared
// secret: the front end signs every request it sends a leaf (proxy calls,
// health probes, key-domain verification, membership traffic) and each
// receiver verifies the header with a constant-time compare, a bounded
// clock-skew window and a replay-nonce cache. It is the minimal
// authenticated transport for deployments that terminate TLS elsewhere (or
// stack on top of mutual TLS for defense in depth).
type FleetAuth struct {
	secret []byte
	window time.Duration

	mu    sync.Mutex
	seen  map[string]time.Time // nonce -> expiry
	sweep time.Time

	rejected atomic.Int64
}

// NewFleetAuth builds the authenticator for a shared secret. The secret is
// an opaque operator-chosen string; every node of one fleet must use the
// same value.
func NewFleetAuth(secret string) *FleetAuth {
	return &FleetAuth{
		secret: []byte(secret),
		window: fleetAuthWindow,
		seen:   make(map[string]time.Time),
	}
}

// mac computes the v1 authenticator for one request signature input.
func (a *FleetAuth) mac(method, path string, tsMs int64, nonce string) []byte {
	h := hmac.New(sha256.New, a.secret)
	fmt.Fprintf(h, "herosign-fleet-v1\n%s\n%s\n%d\n%s", method, path, tsMs, nonce)
	return h.Sum(nil)
}

// Sign stamps req with a fresh authentication header.
func (a *FleetAuth) Sign(req *http.Request) {
	var nb [12]byte
	_, _ = rand.Read(nb[:])
	nonce := hex.EncodeToString(nb[:])
	ts := time.Now().UnixMilli()
	mac := a.mac(req.Method, req.URL.Path, ts, nonce)
	req.Header.Set(FleetAuthHeader, fmt.Sprintf("v1:%d:%s:%s", ts, nonce, hex.EncodeToString(mac)))
}

// Authenticate verifies req's header: format, clock-skew window, MAC
// (constant time) and nonce freshness, in an order that never reveals
// through timing which earlier check failed a forged header.
func (a *FleetAuth) Authenticate(r *http.Request) error {
	raw := r.Header.Get(FleetAuthHeader)
	if raw == "" {
		return fmt.Errorf("missing %s header", FleetAuthHeader)
	}
	parts := strings.Split(raw, ":")
	if len(parts) != 4 || parts[0] != "v1" {
		return fmt.Errorf("malformed %s header", FleetAuthHeader)
	}
	ts, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return fmt.Errorf("malformed %s timestamp", FleetAuthHeader)
	}
	nonce, macHex := parts[2], parts[3]
	got, err := hex.DecodeString(macHex)
	if err != nil {
		return fmt.Errorf("malformed %s mac", FleetAuthHeader)
	}
	want := a.mac(r.Method, r.URL.Path, ts, nonce)
	if !hmac.Equal(got, want) {
		return fmt.Errorf("bad %s mac", FleetAuthHeader)
	}
	now := time.Now()
	sent := time.UnixMilli(ts)
	if sent.Before(now.Add(-a.window)) || sent.After(now.Add(a.window)) {
		return fmt.Errorf("%s timestamp outside the %s replay window", FleetAuthHeader, a.window)
	}
	if !a.admitNonce(nonce, now) {
		return fmt.Errorf("replayed %s nonce", FleetAuthHeader)
	}
	return nil
}

// admitNonce records a first-seen nonce and rejects repeats inside the
// replay window.
func (a *FleetAuth) admitNonce(nonce string, now time.Time) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if exp, ok := a.seen[nonce]; ok && exp.After(now) {
		return false
	}
	// Amortized sweep: drop expired entries at most once per window half.
	if now.After(a.sweep) || len(a.seen) >= fleetAuthMaxNonces {
		for n, exp := range a.seen {
			if !exp.After(now) {
				delete(a.seen, n)
			}
		}
		a.sweep = now.Add(a.window / 2)
	}
	if len(a.seen) >= fleetAuthMaxNonces {
		// Still full of live nonces: drop arbitrary entries rather than
		// unbounded growth; the timestamp window still bounds replays.
		for n := range a.seen {
			delete(a.seen, n)
			if len(a.seen) < fleetAuthMaxNonces {
				break
			}
		}
	}
	a.seen[nonce] = now.Add(a.window)
	return true
}

// Rejected reports how many requests the middleware refused with 401.
func (a *FleetAuth) Rejected() int64 { return a.rejected.Load() }

// Middleware wraps next so every request must carry a valid fleet
// authenticator; failures are answered 401 and counted (see the
// auth_rejected field of /v1/stats).
func (a *FleetAuth) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if err := a.Authenticate(r); err != nil {
			a.rejected.Add(1)
			writeJSON(w, http.StatusUnauthorized, errorResponse{Error: "fleet auth: " + err.Error()})
			return
		}
		next.ServeHTTP(w, r)
	})
}

// AuthClient is a small authenticated HTTP helper for fleet-internal
// control traffic (membership joins, heartbeats): it signs each request
// when an authenticator is configured and passes through untouched
// otherwise.
type AuthClient struct {
	Client *http.Client
	Auth   *FleetAuth // nil = unauthenticated
}

// Do signs and sends one request.
func (c *AuthClient) Do(req *http.Request) (*http.Response, error) {
	if c.Auth != nil {
		c.Auth.Sign(req)
	}
	cl := c.Client
	if cl == nil {
		cl = http.DefaultClient
	}
	return cl.Do(req)
}
