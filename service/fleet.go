package service

import (
	"fmt"
	"sync"
	"sync/atomic"

	"herosign/internal/core"
	"herosign/internal/gpu/device"
	"herosign/internal/spx"
	"herosign/internal/spx/params"
)

// signerKey identifies one cached core.Signer. Tree Tuning and the adaptive
// PTX probe run once per key; every worker configured for the same
// (params, device, features, geometry) shares the warmed signer.
type signerKey struct {
	params      string
	device      string
	features    core.Features
	subBatch    int
	streams     int
	alpha       float64
	probeBlocks int
}

var signerCache = struct {
	sync.Mutex
	m map[signerKey]*core.Signer
}{m: make(map[signerKey]*core.Signer)}

// cachedSigner returns the shared signer for cfg, building and warming it
// under the cache lock on first use. Warming runs the adaptive PTX probe so
// the signer's kernel selection is immutable afterwards, which is what makes
// concurrent SignBatch calls from multiple workers safe.
//
// The cache is process-wide and keyed by configuration, not by signing key:
// the PTX probe's variant choice is a performance-model decision (never a
// correctness one), so a signer warmed with one key is reused for another.
// Entries live for the process lifetime — the population is bounded by the
// distinct (params, device, features, geometry) combinations in use.
func cachedSigner(cfg core.Config, sk *spx.PrivateKey) (*core.Signer, error) {
	key := signerKey{
		params: cfg.Params.Name, device: cfg.Device.Name,
		features: cfg.Features, subBatch: cfg.SubBatch, streams: cfg.Streams,
		alpha: cfg.Alpha, probeBlocks: cfg.ProbeBlocks,
	}
	signerCache.Lock()
	defer signerCache.Unlock()
	if s, ok := signerCache.m[key]; ok {
		return s, nil
	}
	s, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := s.Selection(sk); err != nil {
		return nil, err
	}
	signerCache.m[key] = s
	return s, nil
}

// batchJob is one flushed batch on its way through the fleet.
type batchJob struct {
	kind Kind
	reqs []*request
}

// histBuckets are the upper bounds of the batch-size histogram
// (1, 2, 4, …, 64, +Inf).
var histBuckets = []int{1, 2, 4, 8, 16, 32, 64}

func histIdx(n int) int {
	for i, le := range histBuckets {
		if n <= le {
			return i
		}
	}
	return len(histBuckets)
}

// worker owns one device's submission queue. A goroutine drains the queue
// serially — the device-level analogue of the per-block worker under a
// super-level scheduler — while the fleet above picks which worker each
// flushed batch lands on.
type worker struct {
	id     int
	dev    *device.Device
	signer *core.Signer

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*batchJob
	closing bool

	// outstanding counts messages queued or executing; the fleet's
	// least-outstanding-work dispatch reads it lock-free.
	outstanding atomic.Int64

	statsMu sync.Mutex
	stats   workerStats
}

// workerStats accumulates per-device counters. BusyUs fields integrate the
// modeled device time from the sched timelines (per-worker stream
// accounting), not wall time.
type workerStats struct {
	Batches          int64
	Messages         int64
	SignMsgs         int64
	VerifyMsgs       int64
	KeyGenMsgs       int64
	SignBusyUs       float64
	VerifyBusyUs     float64
	KeyGenBusyUs     float64
	LaunchOverheadUs float64
	Hist             []int64
}

func (w *worker) enqueue(j *batchJob) {
	w.mu.Lock()
	w.queue = append(w.queue, j)
	w.cond.Signal()
	w.mu.Unlock()
}

func (w *worker) queueDepth() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.queue)
}

// Fleet spreads flushed batches over N per-device workers and drains them
// gracefully on Close. It supports sign, verify and keygen job kinds.
type Fleet struct {
	params *params.Params
	key    *spx.PrivateKey

	workers []*worker
	wg      sync.WaitGroup

	// mu orders Dispatch against Close: Dispatch holds the read side
	// across the closed-check and the enqueue, so Close (write side)
	// cannot slip between them and retire a worker that is about to
	// receive a batch — which would leave futures unresolved forever.
	mu     sync.RWMutex
	closed bool
}

// NewFleet builds one worker per entry of devs (a device may appear more
// than once; workers then share its cached signer). The key is the fleet's
// signing identity and also warms each signer's PTX selection.
func NewFleet(p *params.Params, sk *spx.PrivateKey, devs []*device.Device, cfg core.Config) (*Fleet, error) {
	if p == nil || sk == nil {
		return nil, fmt.Errorf("service: params and key are required")
	}
	if sk.Params != p {
		return nil, fmt.Errorf("service: key parameter set %s does not match fleet %s",
			sk.Params.Name, p.Name)
	}
	if len(devs) == 0 {
		return nil, fmt.Errorf("service: at least one device is required")
	}
	f := &Fleet{params: p, key: sk}
	for i, d := range devs {
		c := cfg
		c.Params, c.Device = p, d
		s, err := cachedSigner(c, sk)
		if err != nil {
			return nil, err
		}
		w := &worker{id: i, dev: d, signer: s}
		w.cond = sync.NewCond(&w.mu)
		w.stats.Hist = make([]int64, len(histBuckets)+1)
		f.workers = append(f.workers, w)
	}
	for _, w := range f.workers {
		f.wg.Add(1)
		go f.runWorker(w)
	}
	return f, nil
}

// Params returns the fleet's parameter set.
func (f *Fleet) Params() *params.Params { return f.params }

// PublicKey returns the fleet's signing public key.
func (f *Fleet) PublicKey() *spx.PublicKey { return &f.key.PublicKey }

// Dispatch hands a flushed batch to the worker with the least outstanding
// work (queued plus executing messages). It returns ErrClosed once the
// fleet is shutting down.
func (f *Fleet) Dispatch(j *batchJob) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return ErrClosed
	}
	best := f.workers[0]
	bestLoad := best.outstanding.Load()
	for _, w := range f.workers[1:] {
		if l := w.outstanding.Load(); l < bestLoad {
			best, bestLoad = w, l
		}
	}
	best.outstanding.Add(int64(len(j.reqs)))
	best.enqueue(j)
	return nil
}

// Close stops accepting batches, waits for every queued batch to finish and
// returns. Futures of in-flight batches all resolve before Close returns.
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.mu.Unlock()
	// Every Dispatch that passed its closed-check has released the read
	// lock, so its batch is already queued; workers drain their queues
	// before exiting.
	for _, w := range f.workers {
		w.mu.Lock()
		w.closing = true
		w.cond.Broadcast()
		w.mu.Unlock()
	}
	f.wg.Wait()
}

// QueuedMessages reports messages dispatched to workers but not yet
// completed.
func (f *Fleet) QueuedMessages() int64 {
	var n int64
	for _, w := range f.workers {
		n += w.outstanding.Load()
	}
	return n
}

func (f *Fleet) runWorker(w *worker) {
	defer f.wg.Done()
	for {
		w.mu.Lock()
		for len(w.queue) == 0 && !w.closing {
			w.cond.Wait()
		}
		if len(w.queue) == 0 && w.closing {
			w.mu.Unlock()
			return
		}
		j := w.queue[0]
		w.queue = w.queue[1:]
		w.mu.Unlock()

		f.runBatch(w, j)
		w.outstanding.Add(-int64(len(j.reqs)))
	}
}

// runBatch executes one coalesced batch on w's signer and resolves every
// future. Per-message validation errors resolve individually; an engine
// error resolves the whole batch with that error.
func (f *Fleet) runBatch(w *worker, j *batchJob) {
	switch j.kind {
	case KindSign:
		f.runSign(w, j.reqs)
	case KindVerify:
		f.runVerify(w, j.reqs)
	case KindKeyGen:
		f.runKeyGen(w, j.reqs)
	default:
		for _, r := range j.reqs {
			r.fut.resolve(Result{}, fmt.Errorf("service: unknown job kind %d", j.kind))
		}
	}
}

func (f *Fleet) runSign(w *worker, reqs []*request) {
	live := reqs[:0:0]
	for _, r := range reqs {
		if len(r.msg) == 0 {
			r.fut.resolve(Result{}, ErrEmptyMessage)
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	msgs := make([][]byte, len(live))
	for i, r := range live {
		msgs[i] = r.msg
	}
	res, err := w.signer.SignBatch(f.key, msgs)
	if err != nil {
		for _, r := range live {
			r.fut.resolve(Result{}, err)
		}
		return
	}
	w.record(KindSign, len(live), res.TotalUs, res.LaunchOverheadUs)
	for i, r := range live {
		r.fut.resolve(Result{Sig: res.Sigs[i], Batch: len(live), Dev: w.dev.Name}, nil)
	}
}

func (f *Fleet) runVerify(w *worker, reqs []*request) {
	live := reqs[:0:0]
	for _, r := range reqs {
		if len(r.sig) != f.params.SigBytes {
			r.fut.resolve(Result{}, fmt.Errorf("%w: got %d bytes, want %d",
				ErrSignatureLength, len(r.sig), f.params.SigBytes))
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	msgs := make([][]byte, len(live))
	sigs := make([][]byte, len(live))
	for i, r := range live {
		msgs[i], sigs[i] = r.msg, r.sig
	}
	res, err := w.signer.VerifyBatch(f.PublicKey(), msgs, sigs)
	if err != nil {
		for _, r := range live {
			r.fut.resolve(Result{}, err)
		}
		return
	}
	w.record(KindVerify, len(live), res.Timeline.TotalUs, res.Timeline.LaunchOverheadUs)
	for i, r := range live {
		r.fut.resolve(Result{Valid: res.OK[i], Batch: len(live), Dev: w.dev.Name}, nil)
	}
}

func (f *Fleet) runKeyGen(w *worker, reqs []*request) {
	n := f.params.N
	live := reqs[:0:0]
	for _, r := range reqs {
		if len(r.seed.SKSeed) != n || len(r.seed.SKPRF) != n || len(r.seed.PKSeed) != n {
			r.fut.resolve(Result{}, fmt.Errorf("%w: components must be %d bytes", ErrSeedLength, n))
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	seeds := make([]core.SeedTriple, len(live))
	for i, r := range live {
		seeds[i] = r.seed
	}
	res, err := w.signer.KeyGenBatch(seeds)
	if err != nil {
		for _, r := range live {
			r.fut.resolve(Result{}, err)
		}
		return
	}
	w.record(KindKeyGen, len(live), res.Kernel.DurationUs, 0)
	for i, r := range live {
		r.fut.resolve(Result{Key: res.Keys[i], Batch: len(live), Dev: w.dev.Name}, nil)
	}
}

// record folds one executed batch into the worker's modeled-time stats.
func (w *worker) record(kind Kind, n int, busyUs, launchUs float64) {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	w.stats.Batches++
	w.stats.Messages += int64(n)
	w.stats.LaunchOverheadUs += launchUs
	w.stats.Hist[histIdx(n)]++
	switch kind {
	case KindSign:
		w.stats.SignMsgs += int64(n)
		w.stats.SignBusyUs += busyUs
	case KindVerify:
		w.stats.VerifyMsgs += int64(n)
		w.stats.VerifyBusyUs += busyUs
	case KindKeyGen:
		w.stats.KeyGenMsgs += int64(n)
		w.stats.KeyGenBusyUs += busyUs
	}
}

func (w *worker) snapshot() workerStats {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	s := w.stats
	s.Hist = append([]int64(nil), w.stats.Hist...)
	return s
}
