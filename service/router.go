package service

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"herosign/internal/spx"
	"herosign/internal/spx/params"
)

// ErrNoBackends reports a shard with an empty routing set — a
// dynamic-membership front end whose leaves have all left (or none has
// joined yet). The HTTP layer maps it to 503: unlike a 429 there is no
// local queue to drain, the fleet needs a member.
var ErrNoBackends = errors.New("service: no backends available")

// shard is one key domain: a keypair plus the worker pools of the backends
// assigned to it. All signatures in a shard come from its key; the router
// maps key IDs to shards.
type shard struct {
	id    int
	key   *spx.PrivateKey
	keyID string
	// pools is a copy-on-write snapshot: readers (dispatch, weights, stats)
	// load it lock-free, mutations swap a fresh slice under router.mu so
	// backends can join and leave a running shard.
	pools atomic.Pointer[[]*pool]

	// gate bounds admitted-but-unresolved messages (coalescing, queued or
	// executing) for the shard.
	gate     gate
	rejected atomic.Int64
	shed     atomic.Int64
}

// poolList returns the shard's current pool snapshot (never mutate it).
func (sh *shard) poolList() []*pool {
	if ps := sh.pools.Load(); ps != nil {
		return *ps
	}
	return nil
}

// storePools publishes a new pool snapshot (call with router.mu held).
func (sh *shard) storePools(ps []*pool) { sh.pools.Store(&ps) }

// weight is the shard's aggregate sigs/s estimate.
func (sh *shard) weight() float64 {
	var w float64
	for _, p := range sh.poolList() {
		w += p.backend.Weight()
	}
	return w
}

// retryAfter estimates the shard's drain time: outstanding messages over
// aggregate throughput.
func (sh *shard) retryAfter() time.Duration {
	return retryEstimate(sh.gate.depth(), sh.weight())
}

// queueWait estimates how long newly admitted work waits behind the
// shard's current backlog: outstanding messages over aggregate sigs/s.
// Unlike retryAfter it is unclamped — an idle shard reports zero, so
// deadline pre-rejection never refuses a tight deadline the shard could
// actually meet.
func (sh *shard) queueWait() time.Duration {
	n, w := sh.gate.depth(), sh.weight()
	if n <= 0 || w <= 0 {
		return 0
	}
	return time.Duration(float64(n) / w * float64(time.Second))
}

// retryEstimate converts an outstanding-message backlog and a sigs/s rate
// into a clamped drain-time hint.
func retryEstimate(n int64, w float64) time.Duration {
	if w <= 0 || n <= 0 {
		return 50 * time.Millisecond
	}
	d := time.Duration(float64(n) / w * float64(time.Second))
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	if d > time.Minute {
		d = time.Minute
	}
	return d
}

// routerConfig collects the resolved construction parameters for newRouter.
type routerConfig struct {
	params   *params.Params
	key      *spx.PrivateKey // shard 0's key; further shard keys derive from it
	backends []Backend
	shards   int
	// queueLimit bounds each shard (0 unbounded, AutoQueueLimit derives
	// from backend capacities); globalLimit bounds the whole service.
	queueLimit  int
	globalLimit int
	policy      ShedPolicy
	drain       time.Duration // 0 = drain without deadline
	// dynamic allows zero backends at construction and resizing through
	// addBackend/removeBackend afterwards.
	dynamic bool
}

// router spreads key domains over shards and flushed batches over each
// shard's per-backend pools with weighted least-outstanding-work dispatch.
type router struct {
	shards []*shard
	// pools is the append-only registry of every pool ever started —
	// including removed-but-draining ones — so close can drain/abort and
	// release them all. Backends may therefore see Close twice (removal,
	// then router close); implementations must tolerate it.
	pools   []*pool
	byKeyID map[string]*shard

	global         gate
	rejectedGlobal atomic.Int64
	policy         ShedPolicy
	drain          time.Duration

	// Dynamic-membership state: the configured (possibly AutoQueueLimit)
	// caps for limit recomputation as members come and go, and the next
	// worker id.
	dynamic    bool
	queueCfg   int
	globalCfg  int
	nextPoolID int

	ctx    context.Context // canceled when a drain deadline aborts
	cancel context.CancelFunc

	// mu orders dispatch against close: dispatch holds the read side across
	// the closed-check and the enqueue, so close (write side) cannot slip
	// between them and retire a pool that is about to receive a batch —
	// which would leave futures unresolved forever.
	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup
}

func newRouter(cfg routerConfig) (*router, error) {
	if cfg.params == nil || cfg.key == nil {
		return nil, fmt.Errorf("service: params and key are required")
	}
	if cfg.key.Params != cfg.params {
		return nil, fmt.Errorf("service: key parameter set %s does not match service %s",
			cfg.key.Params.Name, cfg.params.Name)
	}
	if len(cfg.backends) == 0 && !cfg.dynamic {
		return nil, fmt.Errorf("service: at least one backend is required")
	}
	if cfg.shards < 1 {
		cfg.shards = 1
	}
	if cfg.shards > len(cfg.backends) && !cfg.dynamic {
		return nil, fmt.Errorf("service: %d shards need at least as many backends, have %d",
			cfg.shards, len(cfg.backends))
	}

	rt := &router{
		policy: cfg.policy, drain: cfg.drain, byKeyID: make(map[string]*shard),
		dynamic: cfg.dynamic, queueCfg: cfg.queueLimit, globalCfg: cfg.globalLimit,
	}
	rt.ctx, rt.cancel = context.WithCancel(context.Background())

	var totalCap int
	for i := 0; i < cfg.shards; i++ {
		key := cfg.key
		if i > 0 {
			var err error
			if key, err = deriveShardKey(cfg.key, i); err != nil {
				return nil, err
			}
		}
		sh := &shard{id: i, key: key, keyID: KeyID(&key.PublicKey)}
		rt.shards = append(rt.shards, sh)
		rt.byKeyID[sh.keyID] = sh
	}
	// Backends distribute round-robin so heterogeneous fleets spread across
	// shards instead of clustering the fast backends in shard 0.
	perShard := make([][]*pool, cfg.shards)
	for i, b := range cfg.backends {
		sh := rt.shards[i%cfg.shards]
		if err := b.Warm(sh.key); err != nil {
			return nil, fmt.Errorf("service: warming backend %s: %w", b.Name(), err)
		}
		p := newPool(i, sh.id, b)
		perShard[sh.id] = append(perShard[sh.id], p)
		rt.pools = append(rt.pools, p)
		totalCap += b.Capacity()
	}
	rt.nextPoolID = len(cfg.backends)
	for _, sh := range rt.shards {
		sh.storePools(perShard[sh.id])
		var shardCap int
		for _, p := range sh.poolList() {
			shardCap += p.backend.Capacity()
		}
		switch {
		case cfg.queueLimit == AutoQueueLimit:
			sh.gate.setCap(autoLimit(shardCap))
		case cfg.queueLimit > 0:
			sh.gate.setCap(int64(cfg.queueLimit))
		}
	}
	switch {
	case cfg.globalLimit == AutoQueueLimit:
		rt.global.setCap(autoLimit(totalCap))
	case cfg.globalLimit > 0:
		rt.global.setCap(int64(cfg.globalLimit))
	}

	for _, sh := range rt.shards {
		for _, p := range sh.poolList() {
			rt.wg.Add(1)
			go func(sh *shard, p *pool) {
				defer rt.wg.Done()
				p.run(rt.ctx, sh.key, sh.keyID)
			}(sh, p)
		}
	}
	return rt, nil
}

// addBackend warms b against the least-populated shard's key and inserts a
// new pool for it into the routing set — the join half of dynamic fleet
// membership. Warm runs before the routing lock is taken: it may rebuild
// cached tree state or verify a remote leaf's key catalog over the network.
func (rt *router) addBackend(b Backend) error {
	rt.mu.RLock()
	if rt.closed {
		rt.mu.RUnlock()
		return ErrClosed
	}
	var sh *shard
	for _, cand := range rt.shards {
		if sh == nil || len(cand.poolList()) < len(sh.poolList()) {
			sh = cand
		}
	}
	rt.mu.RUnlock()
	if err := b.Warm(sh.key); err != nil {
		return fmt.Errorf("service: warming backend %s: %w", b.Name(), err)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return ErrClosed
	}
	p := newPool(rt.nextPoolID, sh.id, b)
	rt.nextPoolID++
	sh.storePools(append(append([]*pool(nil), sh.poolList()...), p))
	rt.pools = append(rt.pools, p)
	rt.recomputeLimitsLocked()
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		p.run(rt.ctx, sh.key, sh.keyID)
	}()
	return nil
}

// removeBackend retires b: it leaves the routing set immediately (no new
// batch lands on it), its already-queued batches drain — bounded by the
// router's drain deadline, past which they abort with ErrClosed — and the
// backend is closed. The leave half of dynamic fleet membership.
func (rt *router) removeBackend(b Backend) error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return ErrClosed
	}
	var victim *pool
	for _, sh := range rt.shards {
		ps := sh.poolList()
		for i, p := range ps {
			if p.backend == b {
				victim = p
				sh.storePools(append(append([]*pool(nil), ps[:i]...), ps[i+1:]...))
				break
			}
		}
		if victim != nil {
			break
		}
	}
	if victim == nil {
		rt.mu.Unlock()
		return fmt.Errorf("service: backend %s is not in the routing set", b.Name())
	}
	rt.recomputeLimitsLocked()
	rt.mu.Unlock()
	// Every dispatch that could still pick the old snapshot has finished
	// (removal held the write lock), so the queue only shrinks from here.
	victim.beginClose()
	if rt.drain > 0 {
		select {
		case <-victim.done:
		case <-time.After(rt.drain):
			victim.abort()
			<-victim.done
		}
	} else {
		<-victim.done
	}
	if c, ok := b.(interface{ Close() error }); ok {
		_ = c.Close()
	}
	return nil
}

// recomputeLimitsLocked re-derives the AutoQueueLimit admission caps from
// the current membership (call with rt.mu held). Fixed caps are untouched.
func (rt *router) recomputeLimitsLocked() {
	var totalCap int
	for _, sh := range rt.shards {
		var shardCap int
		for _, p := range sh.poolList() {
			shardCap += p.backend.Capacity()
		}
		totalCap += shardCap
		if rt.queueCfg == AutoQueueLimit {
			sh.gate.setCap(autoLimit(shardCap))
		}
	}
	if rt.globalCfg == AutoQueueLimit {
		rt.global.setCap(autoLimit(totalCap))
	}
}

// KeyID derives the stable identifier the router uses to map signing keys
// to shards: the first 12 hex characters of SHA-256 over the serialized
// public key.
func KeyID(pk *PublicKey) string {
	sum := sha256.Sum256(pk.Bytes())
	return hex.EncodeToString(sum[:6])
}

// deriveShardKey deterministically expands the master key into shard i's
// keypair: each seed component is a domain-separated SHA-256 over the
// master's secret seeds and the shard index. Shard keys are therefore
// stable across restarts for a fixed master key and shard count.
func deriveShardKey(master *spx.PrivateKey, i int) (*spx.PrivateKey, error) {
	comp := func(tag byte) []byte {
		h := sha256.New()
		h.Write([]byte("herosign/shard-key/v1"))
		h.Write([]byte{tag})
		var idx [4]byte
		binary.BigEndian.PutUint32(idx[:], uint32(i))
		h.Write(idx[:])
		h.Write(master.SKSeed)
		h.Write(master.SKPRF)
		h.Write(master.Seed)
		return h.Sum(nil)[:master.Params.N]
	}
	return spx.KeyFromSeeds(master.Params, comp(1), comp(2), comp(3))
}

// shardFor resolves a key ID to its shard ("" selects weighted routing).
func (rt *router) shardFor(keyID string) (*shard, error) {
	if keyID == "" {
		return rt.route(), nil
	}
	if sh, ok := rt.byKeyID[keyID]; ok {
		return sh, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownKey, keyID)
}

// route picks the shard with the least outstanding work relative to its
// aggregate throughput — the shard-level face of weighted
// least-outstanding-work dispatch. Shards already at their admission cap
// only win when every shard is full: under partial overload the slack
// shards absorb traffic (at worse relative load) before anything is
// rejected.
func (rt *router) route() *shard {
	var best *shard
	var bestScore float64
	consider := func(sh *shard, full bool) {
		if lim := sh.gate.cap(); lim > 0 && (sh.gate.depth() >= lim) != full {
			return
		}
		if s := loadScore(sh.gate.depth(), sh.weight()); best == nil || s < bestScore {
			best, bestScore = sh, s
		}
	}
	for _, sh := range rt.shards {
		consider(sh, false)
	}
	if best == nil {
		for _, sh := range rt.shards {
			consider(sh, true)
		}
	}
	if best == nil {
		// Gate depths moved between the two passes (a shard emptied after
		// the full-only pass started); any shard is valid — admission
		// re-checks the caps authoritatively.
		best = rt.shards[0]
	}
	return best
}

// loadScore is outstanding work in estimated seconds-to-drain.
func loadScore(outstanding int64, weight float64) float64 {
	if weight <= 0 {
		weight = 1
	}
	return float64(outstanding) / weight
}

// dispatch hands a flushed batch to the shard's pool with the least
// outstanding work relative to its backend's weight, so a backend modeled
// at 10× the sigs/s absorbs 10× the queue before the dispatcher prefers a
// slower sibling. Pools whose backend reports itself unavailable (an
// ejected remote leaf) are skipped; when the whole shard is unavailable the
// least-loaded pool is used anyway so the batch resolves with the backend's
// error instead of hanging. It returns ErrClosed once the router is
// shutting down.
func (rt *router) dispatch(sh *shard, j *batchJob) error {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if rt.closed {
		return ErrClosed
	}
	pools := sh.poolList()
	if len(pools) == 0 {
		return ErrNoBackends
	}
	var best *pool
	var bestScore float64
	pick := func(requireAvailable bool) {
		for _, p := range pools {
			if requireAvailable {
				if av, ok := p.backend.(Availabler); ok && !av.Available() {
					continue
				}
			}
			if s := loadScore(p.outstanding.Load(), p.backend.Weight()); best == nil || s < bestScore {
				best, bestScore = p, s
			}
		}
	}
	pick(true)
	if best == nil {
		pick(false)
	}
	best.outstanding.Add(int64(len(j.reqs)))
	best.enqueue(j)
	return nil
}

// close stops accepting batches and drains the pools. With a drain deadline
// configured, batches still queued (not yet started) when it expires are
// abandoned — their futures resolve ErrClosed — instead of holding Close
// hostage to an arbitrarily deep queue; the batch currently executing on
// each backend always completes.
func (rt *router) close() {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.closed = true
	rt.mu.Unlock()
	// Every dispatch that passed its closed-check has released the read
	// lock, so its batch is already queued; pools drain their queues before
	// exiting.
	for _, p := range rt.pools {
		p.beginClose()
	}
	done := make(chan struct{})
	go func() {
		rt.wg.Wait()
		close(done)
	}()
	if rt.drain > 0 {
		select {
		case <-done:
		case <-time.After(rt.drain):
			rt.cancel()
			for _, p := range rt.pools {
				p.abort()
			}
			<-done
		}
	} else {
		<-done
	}
	rt.cancel()
	// Pools are drained (or aborted); backends owning external resources —
	// remote transports, health-probe goroutines — release them now. A
	// backend shared by several pools closes once per pool; implementations
	// must tolerate repeated Close (io.Closer's usual contract).
	for _, p := range rt.pools {
		if c, ok := p.backend.(interface{ Close() error }); ok {
			_ = c.Close()
		}
	}
}

// globalRetryAfter estimates the whole service's drain time: the global
// gate's backlog over the fleet-wide throughput.
func (rt *router) globalRetryAfter() time.Duration {
	var w float64
	for _, sh := range rt.shards {
		w += sh.weight()
	}
	return retryEstimate(rt.global.depth(), w)
}
