package service

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"herosign/internal/spx"
	"herosign/internal/spx/params"
)

// newMemoService builds a single-backend service on a memoized cpuref
// backend, so every sign request flows through the shared TreeCache.
func newMemoService(t *testing.T, memoBytes int64, warm bool) *Service {
	t.Helper()
	svc, err := New(
		WithParams(params.SPHINCSPlus128f),
		WithKey(testKey(t)),
		WithBackends(NewCPURefBackendMemo(2, memoBytes, warm)),
		WithFlushDeadline(2*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestMemoWarmBeforeServing is the warm-ordering regression test: New must
// not return until the backend's Warm — including the memo cache prebuild —
// has completed, so the very first request hits the prebuilt pinned layers
// instead of paying the cold tree builds.
func TestMemoWarmBeforeServing(t *testing.T) {
	svc := newMemoService(t, 4<<20, true)
	defer svc.Close()

	// Before any request: the cache was prebuilt during construction.
	st := svc.Stats()
	if len(st.Shards) != 1 {
		t.Fatalf("shards = %d", len(st.Shards))
	}
	memo := st.Shards[0].Memo
	if memo == nil {
		t.Fatal("no memo stats on a memoized backend")
	}
	if memo.WarmedEntries == 0 {
		t.Fatalf("cache not prebuilt before service became available: %+v", memo)
	}
	preWarmed := memo.WarmedEntries

	// First request: the hypertree's upper layers are already resident, so
	// the request must record cache hits without having missed on them.
	sig, err := svc.Sign(context.Background(), []byte("first request"))
	if err != nil {
		t.Fatal(err)
	}
	if err := spx.Verify(&testKey(t).PublicKey, []byte("first request"), sig); err != nil {
		t.Fatal(err)
	}
	st = svc.Stats()
	memo = st.Shards[0].Memo
	if memo.Hits == 0 {
		t.Fatalf("first post-warm request took the slow path: %+v", memo)
	}
	if memo.WarmedEntries != preWarmed {
		t.Fatalf("serving changed warmed count: %d -> %d", preWarmed, memo.WarmedEntries)
	}
	// Warm-up signing happens before pools start too, so the backend device
	// stats must agree with the shard rollup.
	if len(st.Devices) != 1 || st.Devices[0].Memo == nil {
		t.Fatalf("device memo stats missing: %+v", st.Devices)
	}
}

// TestMemoStatsInHTTPStats: /v1/stats exposes the memo block per shard and
// per device.
func TestMemoStatsInHTTPStats(t *testing.T) {
	svc := newMemoService(t, 4<<20, true)
	defer svc.Close()

	if _, err := svc.Sign(context.Background(), []byte("stats probe")); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Shards []struct {
			Memo *MemoStats `json:"memo"`
		} `json:"shards"`
		Devices []struct {
			Backend string     `json:"backend"`
			Memo    *MemoStats `json:"memo"`
		} `json:"devices"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Shards) != 1 || body.Shards[0].Memo == nil {
		t.Fatalf("stats JSON missing shard memo block: %+v", body.Shards)
	}
	m := body.Shards[0].Memo
	if m.BudgetBytes != 4<<20 || m.ResidentBytes == 0 || m.ResidentBytes > m.BudgetBytes {
		t.Fatalf("memo residency out of range: %+v", m)
	}
	if len(body.Devices) != 1 || body.Devices[0].Memo == nil {
		t.Fatalf("stats JSON missing device memo block: %+v", body.Devices)
	}
}

// TestMemoOffHasNoStats: without a memo budget the backend reports no memo
// block, keeping the stats payload unchanged for cache-free deployments.
func TestMemoOffHasNoStats(t *testing.T) {
	svc, err := New(
		WithParams(params.SPHINCSPlus128f),
		WithKey(testKey(t)),
		WithBackends(NewCPURefBackend(2)),
		WithFlushDeadline(2*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	st := svc.Stats()
	if st.Shards[0].Memo != nil || st.Devices[0].Memo != nil {
		t.Fatal("memo stats present on a cache-free backend")
	}
}
