package service

import (
	"encoding/json"
	"errors"
	"net/http"
)

// JSON wire types. []byte fields travel as standard base64 strings.
type signRequest struct {
	Message []byte `json:"message"`
}

type signResponse struct {
	Signature []byte `json:"signature"`
	Batch     int    `json:"batch"`  // coalesced batch size the request rode in
	Device    string `json:"device"` // worker that executed it
}

type verifyRequest struct {
	Message   []byte `json:"message"`
	Signature []byte `json:"signature"`
}

type verifyResponse struct {
	Valid  bool   `json:"valid"`
	Batch  int    `json:"batch"`
	Device string `json:"device"`
}

type keygenRequest struct {
	Count int `json:"count"` // default 1, capped at 256 per call
}

type keygenKey struct {
	PublicKey  []byte `json:"public_key"`
	PrivateKey []byte `json:"private_key"`
}

type keygenResponse struct {
	Params string      `json:"params"`
	Keys   []keygenKey `json:"keys"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the HTTP/JSON front end:
//
//	POST /v1/sign    {"message": b64}               -> {"signature": b64, "batch": n, "device": name}
//	POST /v1/verify  {"message": b64, "signature": b64} -> {"valid": bool, ...}
//	POST /v1/keygen  {"count": n}                   -> {"keys": [{"public_key", "private_key"}]}
//	GET  /v1/stats                                  -> Stats
//
// Each request is submitted through the coalescer, so concurrent HTTP
// clients are batched together onto the fleet.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sign", s.handleSign)
	mux.HandleFunc("POST /v1/verify", s.handleVerify)
	mux.HandleFunc("POST /v1/keygen", s.handleKeyGen)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrEmptyMessage), errors.Is(err, ErrSignatureLength):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func (s *Service) handleSign(w http.ResponseWriter, r *http.Request) {
	var req signRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request: " + err.Error()})
		return
	}
	fut, err := s.SubmitSign(req.Message)
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := fut.Wait(r.Context())
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, signResponse{Signature: res.Sig, Batch: res.Batch, Device: res.Dev})
}

func (s *Service) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req verifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request: " + err.Error()})
		return
	}
	fut, err := s.SubmitVerify(req.Message, req.Signature)
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := fut.Wait(r.Context())
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, verifyResponse{Valid: res.Valid, Batch: res.Batch, Device: res.Dev})
}

func (s *Service) handleKeyGen(w http.ResponseWriter, r *http.Request) {
	var req keygenRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request: " + err.Error()})
		return
	}
	if req.Count <= 0 {
		req.Count = 1
	}
	if req.Count > 256 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "count exceeds the 256-key cap"})
		return
	}
	futs := make([]*Future, 0, req.Count)
	for i := 0; i < req.Count; i++ {
		fut, err := s.SubmitKeyGen(nil)
		if err != nil {
			writeError(w, err)
			return
		}
		futs = append(futs, fut)
	}
	resp := keygenResponse{Params: s.cfg.Params.Name}
	for _, fut := range futs {
		res, err := fut.Wait(r.Context())
		if err != nil {
			writeError(w, err)
			return
		}
		resp.Keys = append(resp.Keys, keygenKey{
			PublicKey:  res.Key.PublicKey.Bytes(),
			PrivateKey: res.Key.Bytes(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
