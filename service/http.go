package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"herosign/internal/core"
)

// MaxBodyBytes caps request bodies on the HTTP front end; larger bodies get
// 413. Generous for any sane sign/verify payload (a 256f signature is
// ~50 KB base64) while bounding memory per connection.
const MaxBodyBytes = 1 << 20

// JSON wire types. []byte fields travel as standard base64 strings.
type signRequest struct {
	Message []byte `json:"message"`
	KeyID   string `json:"key_id,omitempty"` // "" routes to the least-loaded shard
}

type signResponse struct {
	Signature []byte `json:"signature"`
	KeyID     string `json:"key_id"` // key domain that signed; verify against its key
	Shard     int    `json:"shard"`
	Batch     int    `json:"batch"`  // coalesced batch size the request rode in
	Device    string `json:"device"` // backend that executed it
}

type signBatchRequest struct {
	Messages [][]byte `json:"messages"`
	KeyID    string   `json:"key_id,omitempty"`
}

type signBatchResponse struct {
	KeyID      string   `json:"key_id"`
	Signatures [][]byte `json:"signatures"`
}

type verifyRequest struct {
	Message   []byte `json:"message"`
	Signature []byte `json:"signature"`
	KeyID     string `json:"key_id,omitempty"` // "" checks every shard's key
}

type verifyResponse struct {
	Valid  bool   `json:"valid"`
	KeyID  string `json:"key_id"`
	Batch  int    `json:"batch"`
	Device string `json:"device"`
}

type verifyBatchRequest struct {
	Messages   [][]byte `json:"messages"`
	Signatures [][]byte `json:"signatures"` // parallel to Messages
	KeyID      string   `json:"key_id,omitempty"`
}

type verifyBatchResponse struct {
	KeyID string `json:"key_id"`
	Valid []bool `json:"valid"` // parallel to the request pairs
}

// seedTriple is the wire form of core.SeedTriple for deterministic remote
// key generation; each component is Params.N bytes.
type seedTriple struct {
	SKSeed []byte `json:"sk_seed"`
	SKPRF  []byte `json:"sk_prf"`
	PKSeed []byte `json:"pk_seed"`
}

type keygenRequest struct {
	Count int `json:"count"` // default 1, capped at 256 per call
	// Seeds, when present, derives one key per triple instead of Count
	// random keys — the deterministic path remote front ends proxy through.
	Seeds []seedTriple `json:"seeds,omitempty"`
}

type keygenKey struct {
	PublicKey  []byte `json:"public_key"`
	PrivateKey []byte `json:"private_key"`
}

type keygenResponse struct {
	Params string      `json:"params"`
	Keys   []keygenKey `json:"keys"`
}

type keyInfo struct {
	KeyID     string `json:"key_id"`
	Shard     int    `json:"shard"`
	PublicKey []byte `json:"public_key"`
}

type keysResponse struct {
	Params string    `json:"params"`
	Keys   []keyInfo `json:"keys"`
}

// errorResponse is the JSON error shape. RetryAfterMs is set on 429s and
// mirrors the Retry-After header at millisecond resolution.
type errorResponse struct {
	Error        string `json:"error"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

// Handler returns the HTTP/JSON front end:
//
//	POST /v1/sign        {"message": b64, "key_id"?: id}  -> {"signature": b64, "key_id": id, ...}
//	POST /v1/sign/batch  {"messages": [b64...], "key_id"?: id} -> {"signatures": [...], "key_id": id}
//	POST /v1/verify      {"message": b64, "signature": b64, "key_id"?: id} -> {"valid": bool, ...}
//	POST /v1/verify/batch {"messages": [...], "signatures": [...], "key_id"?: id} -> {"valid": [bool...]}
//	POST /v1/keygen      {"count": n} or {"seeds": [{sk_seed,sk_prf,pk_seed}...]} -> {"keys": [...]}
//	GET  /v1/keys                                         -> shard key catalog
//	GET  /v1/stats                                        -> Stats
//
// Each request is submitted through the coalescer, so concurrent HTTP
// clients are batched together onto the fleet. Overload rejections return
// 429 with a Retry-After header; request bodies are capped at MaxBodyBytes
// (413 beyond).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sign", s.handleSign)
	mux.HandleFunc("POST /v1/sign/batch", s.handleSignBatch)
	mux.HandleFunc("POST /v1/verify", s.handleVerify)
	mux.HandleFunc("POST /v1/verify/batch", s.handleVerifyBatch)
	mux.HandleFunc("POST /v1/keygen", s.handleKeyGen)
	mux.HandleFunc("GET /v1/keys", s.handleKeys)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return http.MaxBytesHandler(mux, MaxBodyBytes)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	var over *OverloadError
	if errors.As(err, &over) {
		// Retry-After is whole seconds by spec; the JSON body carries the
		// finer-grained estimate.
		secs := int64((over.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{
			Error: err.Error(), RetryAfterMs: over.RetryAfter.Milliseconds(),
		})
		return
	}
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownKey):
		status = http.StatusNotFound
	case errors.Is(err, ErrEmptyMessage), errors.Is(err, ErrSignatureLength),
		errors.Is(err, ErrSeedLength), errors.Is(err, ErrBatchTooLarge):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// decodeJSON decodes the request body, distinguishing oversized bodies
// (413) from malformed ones (400). It reports whether decoding succeeded.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{Error: fmt.Sprintf("body exceeds the %d-byte cap", tooLarge.Limit)})
			return false
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request: " + err.Error()})
		return false
	}
	return true
}

func (s *Service) handleSign(w http.ResponseWriter, r *http.Request) {
	var req signRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	fut, err := s.SubmitSignKey(req.KeyID, req.Message)
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := fut.Wait(r.Context())
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, signResponse{
		Signature: res.Sig, KeyID: res.KeyID, Shard: res.Shard, Batch: res.Batch, Device: res.Dev,
	})
}

// handleSignBatch signs a set of messages under one key domain in a single
// round trip. Admission is all-or-nothing: a 429 means no message of the
// batch was admitted (and no signing work was spent on it), so a retry
// after Retry-After is cheap; admitted members are exempt from
// drop-oldest-deadline shedding. A batch that cannot fit the admission
// caps at all is a 400 (split it), not a retryable 429.
func (s *Service) handleSignBatch(w http.ResponseWriter, r *http.Request) {
	var req signBatchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Messages) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty batch: no messages"})
		return
	}
	if len(req.Messages) > 256 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "batch exceeds the 256-message cap"})
		return
	}
	for i, m := range req.Messages {
		if len(m) == 0 {
			// Reject up front: one empty member admitted into the batch
			// would fail alone only after its batch-mates were signed.
			writeJSON(w, http.StatusBadRequest,
				errorResponse{Error: fmt.Sprintf("empty message at index %d", i)})
			return
		}
	}
	keyID := req.KeyID
	if keyID == "" {
		// Pin the whole batch to one shard so every signature shares a key.
		keyID = s.router.route().keyID
	}
	futs, err := s.SubmitSignBatch(keyID, req.Messages)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := signBatchResponse{KeyID: keyID, Signatures: make([][]byte, 0, len(futs))}
	for _, fut := range futs {
		res, err := fut.Wait(r.Context())
		if err != nil {
			writeError(w, err)
			return
		}
		resp.Signatures = append(resp.Signatures, res.Sig)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req verifyRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	fut, err := s.SubmitVerifyKey(req.KeyID, req.Message, req.Signature)
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := fut.Wait(r.Context())
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, verifyResponse{
		Valid: res.Valid, KeyID: res.KeyID, Batch: res.Batch, Device: res.Dev,
	})
}

// handleVerifyBatch checks a set of (message, signature) pairs against one
// key domain in a single round trip — the wire path remote front ends
// proxy coalesced verify batches through. Admission is all-or-nothing
// (SubmitVerifyBatchKey): a 429 means no pair of the batch was admitted and
// no verification work was spent, so a retry after Retry-After is cheap.
// A pair whose signature has the wrong length for the parameter set is
// reported invalid (not an error); shutdown maps to 503 for the whole
// batch. Only when no key domain is named on a multi-shard service does the
// batch fall back to per-pair any-shard submission, where partial admission
// is inherent.
func (s *Service) handleVerifyBatch(w http.ResponseWriter, r *http.Request) {
	var req verifyBatchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Messages) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty batch: no messages"})
		return
	}
	if len(req.Messages) != len(req.Signatures) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf(
			"messages and signatures must be parallel: %d vs %d", len(req.Messages), len(req.Signatures))})
		return
	}
	if len(req.Messages) > 256 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "batch exceeds the 256-pair cap"})
		return
	}
	keyID := req.KeyID
	if keyID == "" && len(s.router.shards) == 1 {
		keyID = s.router.shards[0].keyID
	}
	var futs []*Future
	if keyID != "" {
		var err error
		futs, err = s.SubmitVerifyBatchKey(keyID, req.Messages, req.Signatures)
		if err != nil {
			writeError(w, err)
			return
		}
	} else {
		// No key domain on a multi-shard service: each pair must consult
		// every shard, so pairs submit independently.
		futs = make([]*Future, 0, len(req.Messages))
		for i := range req.Messages {
			fut, err := s.SubmitVerifyKey(keyID, req.Messages[i], req.Signatures[i])
			if err != nil {
				writeError(w, err)
				return
			}
			futs = append(futs, fut)
		}
	}
	resp := verifyBatchResponse{KeyID: keyID, Valid: make([]bool, 0, len(futs))}
	for _, fut := range futs {
		res, err := fut.Wait(r.Context())
		switch {
		case err == nil:
			resp.Valid = append(resp.Valid, res.Valid)
		case errors.Is(err, ErrSignatureLength):
			resp.Valid = append(resp.Valid, false)
		default:
			writeError(w, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleKeyGen(w http.ResponseWriter, r *http.Request) {
	var req keygenRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Seeds) > 256 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "seeds exceed the 256-key cap"})
		return
	}
	if req.Count <= 0 {
		req.Count = 1
	}
	if req.Count > 256 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "count exceeds the 256-key cap"})
		return
	}
	var futs []*Future
	if len(req.Seeds) > 0 {
		// Deterministic path: one key per seed triple, Count ignored.
		futs = make([]*Future, 0, len(req.Seeds))
		for _, tr := range req.Seeds {
			fut, err := s.SubmitKeyGen(&core.SeedTriple{
				SKSeed: tr.SKSeed, SKPRF: tr.SKPRF, PKSeed: tr.PKSeed,
			})
			if err != nil {
				writeError(w, err)
				return
			}
			futs = append(futs, fut)
		}
	} else {
		futs = make([]*Future, 0, req.Count)
		for i := 0; i < req.Count; i++ {
			fut, err := s.SubmitKeyGen(nil)
			if err != nil {
				writeError(w, err)
				return
			}
			futs = append(futs, fut)
		}
	}
	resp := keygenResponse{Params: s.cfg.Params.Name}
	for _, fut := range futs {
		res, err := fut.Wait(r.Context())
		if err != nil {
			writeError(w, err)
			return
		}
		resp.Keys = append(resp.Keys, keygenKey{
			PublicKey:  res.Key.PublicKey.Bytes(),
			PrivateKey: res.Key.Bytes(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleKeys(w http.ResponseWriter, r *http.Request) {
	resp := keysResponse{Params: s.cfg.Params.Name}
	for _, sh := range s.Shards() {
		resp.Keys = append(resp.Keys, keyInfo{
			KeyID: sh.KeyID, Shard: sh.ID, PublicKey: sh.PublicKey.Bytes(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
