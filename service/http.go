package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"herosign/internal/core"
)

// MaxBodyBytes caps request bodies on the HTTP front end; larger bodies get
// 413. Generous for any sane sign/verify payload (a 256f signature is
// ~50 KB base64) while bounding memory per connection.
const MaxBodyBytes = 1 << 20

// Scheduling headers. X-Request-Deadline carries the client's completion
// deadline as relative milliseconds (clock-skew safe across hosts) and
// overrides the body's deadline_ms; X-API-Key names the tenant the work is
// charged to (absent = the default tenant).
const (
	DeadlineHeader = "X-Request-Deadline"
	TenantHeader   = "X-API-Key"
)

// JSON wire types. []byte fields travel as standard base64 strings.
type signRequest struct {
	Message []byte `json:"message"`
	KeyID   string `json:"key_id,omitempty"` // "" routes to the least-loaded shard
	// DeadlineMs is the client deadline in relative milliseconds (0 = none);
	// the X-Request-Deadline header overrides it.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

type signResponse struct {
	Signature []byte `json:"signature"`
	KeyID     string `json:"key_id"` // key domain that signed; verify against its key
	Shard     int    `json:"shard"`
	Batch     int    `json:"batch"`  // coalesced batch size the request rode in
	Device    string `json:"device"` // backend that executed it
}

type signBatchRequest struct {
	Messages [][]byte `json:"messages"`
	KeyID    string   `json:"key_id,omitempty"`
	// DeadlineMs applies one relative deadline to every member (header
	// overrides); DeadlinesMs, when present, is parallel to Messages with a
	// per-member relative deadline (0 falls back to the scalar). Tenants,
	// parallel likewise, names each member's tenant ("" falls back to
	// X-API-Key) — the fields a proxying front end forwards so a leaf sees
	// the same urgency and accounting it did.
	DeadlineMs  int64    `json:"deadline_ms,omitempty"`
	DeadlinesMs []int64  `json:"deadlines_ms,omitempty"`
	Tenants     []string `json:"tenants,omitempty"`
}

type signBatchResponse struct {
	KeyID      string   `json:"key_id"`
	Signatures [][]byte `json:"signatures"`
}

type verifyRequest struct {
	Message   []byte `json:"message"`
	Signature []byte `json:"signature"`
	KeyID     string `json:"key_id,omitempty"` // "" checks every shard's key
	// DeadlineMs is the client deadline in relative milliseconds (0 = none);
	// the X-Request-Deadline header overrides it.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

type verifyResponse struct {
	Valid  bool   `json:"valid"`
	KeyID  string `json:"key_id"`
	Batch  int    `json:"batch"`
	Device string `json:"device"`
}

type verifyBatchRequest struct {
	Messages   [][]byte `json:"messages"`
	Signatures [][]byte `json:"signatures"` // parallel to Messages
	KeyID      string   `json:"key_id,omitempty"`
	// Scheduling fields with signBatchRequest semantics.
	DeadlineMs  int64    `json:"deadline_ms,omitempty"`
	DeadlinesMs []int64  `json:"deadlines_ms,omitempty"`
	Tenants     []string `json:"tenants,omitempty"`
}

type verifyBatchResponse struct {
	KeyID string `json:"key_id"`
	Valid []bool `json:"valid"` // parallel to the request pairs
}

// seedTriple is the wire form of core.SeedTriple for deterministic remote
// key generation; each component is Params.N bytes.
type seedTriple struct {
	SKSeed []byte `json:"sk_seed"`
	SKPRF  []byte `json:"sk_prf"`
	PKSeed []byte `json:"pk_seed"`
}

type keygenRequest struct {
	Count int `json:"count"` // default 1, capped at 256 per call
	// Seeds, when present, derives one key per triple instead of Count
	// random keys — the deterministic path remote front ends proxy through.
	Seeds []seedTriple `json:"seeds,omitempty"`
	// DeadlineMs is the client deadline in relative milliseconds applied to
	// every derived key (0 = none); the header overrides it.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

type keygenKey struct {
	PublicKey  []byte `json:"public_key"`
	PrivateKey []byte `json:"private_key"`
}

type keygenResponse struct {
	Params string      `json:"params"`
	Keys   []keygenKey `json:"keys"`
}

type keyInfo struct {
	KeyID     string `json:"key_id"`
	Shard     int    `json:"shard"`
	PublicKey []byte `json:"public_key"`
}

type keysResponse struct {
	Params string    `json:"params"`
	Keys   []keyInfo `json:"keys"`
}

// errorResponse is the JSON error shape. RetryAfterMs is set on 429s and
// mirrors the Retry-After header at millisecond resolution.
type errorResponse struct {
	Error        string `json:"error"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

// Handler returns the HTTP/JSON front end:
//
//	POST /v1/sign        {"message": b64, "key_id"?: id}  -> {"signature": b64, "key_id": id, ...}
//	POST /v1/sign/batch  {"messages": [b64...], "key_id"?: id} -> {"signatures": [...], "key_id": id}
//	POST /v1/verify      {"message": b64, "signature": b64, "key_id"?: id} -> {"valid": bool, ...}
//	POST /v1/verify/batch {"messages": [...], "signatures": [...], "key_id"?: id} -> {"valid": [bool...]}
//	POST /v1/keygen      {"count": n} or {"seeds": [{sk_seed,sk_prf,pk_seed}...]} -> {"keys": [...]}
//	GET  /v1/keys                                         -> shard key catalog
//	GET  /v1/stats                                        -> Stats
//
// Each request is submitted through the coalescer, so concurrent HTTP
// clients are batched together onto the fleet. Overload rejections return
// 429 with a Retry-After header; request bodies are capped at MaxBodyBytes
// (413 beyond).
//
// Every submitting endpoint additionally honors two scheduling inputs: the
// X-Request-Deadline header (relative milliseconds, overriding the body's
// deadline_ms) sets a client deadline — work that cannot meet it is
// pre-rejected (429 with retry_after_ms), an expired deadline returns 504 —
// and X-API-Key names the tenant the work is charged to (per-tenant token
// buckets when -tenant-rate is configured; per-tenant counters in
// /v1/stats always). Batch endpoints also accept per-member deadlines_ms
// and tenants arrays, the fields a proxying front end forwards.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sign", s.handleSign)
	mux.HandleFunc("POST /v1/sign/batch", s.handleSignBatch)
	mux.HandleFunc("POST /v1/verify", s.handleVerify)
	mux.HandleFunc("POST /v1/verify/batch", s.handleVerifyBatch)
	mux.HandleFunc("POST /v1/keygen", s.handleKeyGen)
	mux.HandleFunc("GET /v1/keys", s.handleKeys)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	var h http.Handler = mux
	if s.auth != nil {
		// Leaf posture (WithFleetSecret): every endpoint — proxy calls,
		// health probes, key-domain verification — requires the fleet
		// authenticator; anything else is 401.
		h = s.auth.Middleware(h)
	}
	return http.MaxBytesHandler(h, MaxBodyBytes)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	var over *OverloadError
	if errors.As(err, &over) {
		// Retry-After is whole seconds by spec; the JSON body carries the
		// finer-grained estimate.
		secs := int64((over.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{
			Error: err.Error(), RetryAfterMs: over.RetryAfter.Milliseconds(),
		})
		return
	}
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrClosed), errors.Is(err, ErrNoBackends):
		// ErrNoBackends: a dynamic fleet with no routable member — retrying
		// helps only once a leaf joins, so 503 rather than 429.
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownKey):
		status = http.StatusNotFound
	case errors.Is(err, ErrDeadlineExceeded):
		// The client's own deadline expired before the work could run (or
		// was already expired on arrival); unlike a 429 there is no point
		// retrying with the same deadline.
		status = http.StatusGatewayTimeout
	case errors.Is(err, ErrEmptyMessage), errors.Is(err, ErrSignatureLength),
		errors.Is(err, ErrSeedLength), errors.Is(err, ErrBatchTooLarge):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// submitOptsFrom derives one submission's scheduling attributes: the tenant
// from X-API-Key and the deadline from the X-Request-Deadline header
// (relative milliseconds; overrides the body's deadline_ms). It reports
// false after writing a 400 for a malformed or non-positive deadline.
func submitOptsFrom(w http.ResponseWriter, r *http.Request, bodyDeadlineMs int64) (SubmitOpts, bool) {
	if bodyDeadlineMs < 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("bad deadline_ms %d: want milliseconds > 0 (omit for none)", bodyDeadlineMs)})
		return SubmitOpts{}, false
	}
	ms := bodyDeadlineMs
	if h := r.Header.Get(DeadlineHeader); h != "" {
		v, err := strconv.ParseInt(h, 10, 64)
		if err != nil || v <= 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error: fmt.Sprintf("bad %s %q: want an integer of milliseconds > 0", DeadlineHeader, h)})
			return SubmitOpts{}, false
		}
		ms = v
	}
	opts := SubmitOpts{Tenant: r.Header.Get(TenantHeader)}
	if ms > 0 {
		opts.Deadline = time.Now().Add(time.Duration(ms) * time.Millisecond)
	}
	return opts, true
}

// batchSubmitOpts expands a batch request's scheduling fields into one
// SubmitOpts per member: base (the header/scalar-derived attributes)
// applies everywhere, a non-zero deadlines_ms entry overrides the deadline
// and a non-empty tenants entry overrides the tenant. Returns nil (all
// defaults) when nothing is set; reports false after writing a 400 for
// mis-sized arrays or a negative per-member deadline.
func batchSubmitOpts(w http.ResponseWriter, base SubmitOpts, n int, deadlinesMs []int64, tenants []string) ([]SubmitOpts, bool) {
	if len(deadlinesMs) > 0 && len(deadlinesMs) != n {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf(
			"deadlines_ms must be parallel to the batch: %d entries for %d members", len(deadlinesMs), n)})
		return nil, false
	}
	if len(tenants) > 0 && len(tenants) != n {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf(
			"tenants must be parallel to the batch: %d entries for %d members", len(tenants), n)})
		return nil, false
	}
	if base == (SubmitOpts{}) && len(deadlinesMs) == 0 && len(tenants) == 0 {
		return nil, true
	}
	now := time.Now()
	opts := make([]SubmitOpts, n)
	for i := range opts {
		opts[i] = base
		if len(deadlinesMs) > 0 {
			switch ms := deadlinesMs[i]; {
			case ms < 0:
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf(
					"bad deadlines_ms[%d] %d: want milliseconds > 0 (0 falls back to deadline_ms)", i, ms)})
				return nil, false
			case ms > 0:
				opts[i].Deadline = now.Add(time.Duration(ms) * time.Millisecond)
			}
		}
		if len(tenants) > 0 && tenants[i] != "" {
			opts[i].Tenant = tenants[i]
		}
	}
	return opts, true
}

// decodeJSON decodes the request body, distinguishing oversized bodies
// (413) from malformed ones (400). It reports whether decoding succeeded.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{Error: fmt.Sprintf("body exceeds the %d-byte cap", tooLarge.Limit)})
			return false
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request: " + err.Error()})
		return false
	}
	return true
}

func (s *Service) handleSign(w http.ResponseWriter, r *http.Request) {
	var req signRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	opts, ok := submitOptsFrom(w, r, req.DeadlineMs)
	if !ok {
		return
	}
	fut, err := s.SubmitSignOpts(req.KeyID, req.Message, opts)
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := fut.Wait(r.Context())
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, signResponse{
		Signature: res.Sig, KeyID: res.KeyID, Shard: res.Shard, Batch: res.Batch, Device: res.Dev,
	})
}

// handleSignBatch signs a set of messages under one key domain in a single
// round trip. Admission is all-or-nothing: a 429 means no message of the
// batch was admitted (and no signing work was spent on it), so a retry
// after Retry-After is cheap; admitted members are exempt from
// drop-oldest-deadline shedding. A batch that cannot fit the admission
// caps at all is a 400 (split it), not a retryable 429.
func (s *Service) handleSignBatch(w http.ResponseWriter, r *http.Request) {
	var req signBatchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Messages) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty batch: no messages"})
		return
	}
	if len(req.Messages) > 256 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "batch exceeds the 256-message cap"})
		return
	}
	for i, m := range req.Messages {
		if len(m) == 0 {
			// Reject up front: one empty member admitted into the batch
			// would fail alone only after its batch-mates were signed.
			writeJSON(w, http.StatusBadRequest,
				errorResponse{Error: fmt.Sprintf("empty message at index %d", i)})
			return
		}
	}
	base, ok := submitOptsFrom(w, r, req.DeadlineMs)
	if !ok {
		return
	}
	opts, ok := batchSubmitOpts(w, base, len(req.Messages), req.DeadlinesMs, req.Tenants)
	if !ok {
		return
	}
	keyID := req.KeyID
	if keyID == "" {
		// Pin the whole batch to one shard so every signature shares a key.
		keyID = s.router.route().keyID
	}
	futs, err := s.SubmitSignBatchOpts(keyID, req.Messages, opts)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := signBatchResponse{KeyID: keyID, Signatures: make([][]byte, 0, len(futs))}
	for _, fut := range futs {
		res, err := fut.Wait(r.Context())
		if err != nil {
			writeError(w, err)
			return
		}
		resp.Signatures = append(resp.Signatures, res.Sig)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req verifyRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	opts, ok := submitOptsFrom(w, r, req.DeadlineMs)
	if !ok {
		return
	}
	fut, err := s.SubmitVerifyKeyOpts(req.KeyID, req.Message, req.Signature, opts)
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := fut.Wait(r.Context())
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, verifyResponse{
		Valid: res.Valid, KeyID: res.KeyID, Batch: res.Batch, Device: res.Dev,
	})
}

// handleVerifyBatch checks a set of (message, signature) pairs against one
// key domain in a single round trip — the wire path remote front ends
// proxy coalesced verify batches through. Admission is all-or-nothing
// (SubmitVerifyBatchKey): a 429 means no pair of the batch was admitted and
// no verification work was spent, so a retry after Retry-After is cheap.
// A pair whose signature has the wrong length for the parameter set is
// reported invalid (not an error); shutdown maps to 503 for the whole
// batch. Only when no key domain is named on a multi-shard service does the
// batch fall back to per-pair any-shard submission, where partial admission
// is inherent.
func (s *Service) handleVerifyBatch(w http.ResponseWriter, r *http.Request) {
	var req verifyBatchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Messages) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty batch: no messages"})
		return
	}
	if len(req.Messages) != len(req.Signatures) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf(
			"messages and signatures must be parallel: %d vs %d", len(req.Messages), len(req.Signatures))})
		return
	}
	if len(req.Messages) > 256 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "batch exceeds the 256-pair cap"})
		return
	}
	base, ok := submitOptsFrom(w, r, req.DeadlineMs)
	if !ok {
		return
	}
	opts, ok := batchSubmitOpts(w, base, len(req.Messages), req.DeadlinesMs, req.Tenants)
	if !ok {
		return
	}
	keyID := req.KeyID
	if keyID == "" && len(s.router.shards) == 1 {
		keyID = s.router.shards[0].keyID
	}
	var futs []*Future
	if keyID != "" {
		var err error
		futs, err = s.SubmitVerifyBatchKeyOpts(keyID, req.Messages, req.Signatures, opts)
		if err != nil {
			writeError(w, err)
			return
		}
	} else {
		// No key domain on a multi-shard service: each pair must consult
		// every shard, so pairs submit independently.
		futs = make([]*Future, 0, len(req.Messages))
		for i := range req.Messages {
			memberOpts := base
			if opts != nil {
				memberOpts = opts[i]
			}
			fut, err := s.SubmitVerifyKeyOpts(keyID, req.Messages[i], req.Signatures[i], memberOpts)
			if err != nil {
				writeError(w, err)
				return
			}
			futs = append(futs, fut)
		}
	}
	resp := verifyBatchResponse{KeyID: keyID, Valid: make([]bool, 0, len(futs))}
	for _, fut := range futs {
		res, err := fut.Wait(r.Context())
		switch {
		case err == nil:
			resp.Valid = append(resp.Valid, res.Valid)
		case errors.Is(err, ErrSignatureLength):
			resp.Valid = append(resp.Valid, false)
		default:
			writeError(w, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleKeyGen(w http.ResponseWriter, r *http.Request) {
	var req keygenRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	opts, ok := submitOptsFrom(w, r, req.DeadlineMs)
	if !ok {
		return
	}
	if len(req.Seeds) > 256 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "seeds exceed the 256-key cap"})
		return
	}
	if req.Count <= 0 {
		req.Count = 1
	}
	if req.Count > 256 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "count exceeds the 256-key cap"})
		return
	}
	var futs []*Future
	if len(req.Seeds) > 0 {
		// Deterministic path: one key per seed triple, Count ignored.
		futs = make([]*Future, 0, len(req.Seeds))
		for _, tr := range req.Seeds {
			fut, err := s.SubmitKeyGenOpts(&core.SeedTriple{
				SKSeed: tr.SKSeed, SKPRF: tr.SKPRF, PKSeed: tr.PKSeed,
			}, opts)
			if err != nil {
				writeError(w, err)
				return
			}
			futs = append(futs, fut)
		}
	} else {
		futs = make([]*Future, 0, req.Count)
		for i := 0; i < req.Count; i++ {
			fut, err := s.SubmitKeyGenOpts(nil, opts)
			if err != nil {
				writeError(w, err)
				return
			}
			futs = append(futs, fut)
		}
	}
	resp := keygenResponse{Params: s.cfg.Params.Name}
	for _, fut := range futs {
		res, err := fut.Wait(r.Context())
		if err != nil {
			writeError(w, err)
			return
		}
		resp.Keys = append(resp.Keys, keygenKey{
			PublicKey:  res.Key.PublicKey.Bytes(),
			PrivateKey: res.Key.Bytes(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleKeys(w http.ResponseWriter, r *http.Request) {
	resp := keysResponse{Params: s.cfg.Params.Name}
	for _, sh := range s.Shards() {
		resp.Keys = append(resp.Keys, keyInfo{
			KeyID: sh.KeyID, Shard: sh.ID, PublicKey: sh.PublicKey.Bytes(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
