package service

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrOverloaded is the sentinel behind admission rejections. Rejections are
// returned as *OverloadError (which unwraps to ErrOverloaded via errors.Is)
// so callers can read the retry hint; the HTTP layer maps them to 429 with
// a Retry-After header.
var ErrOverloaded = errors.New("service: overloaded")

// OverloadError reports an admission rejection with a drain-time estimate.
type OverloadError struct {
	// Scope is which admission layer rejected: "shard" or "global" for a
	// full queue gate, "tenant" for a per-API-key token-bucket rejection,
	// "deadline" for a deadline pre-rejection (the estimated queue wait
	// already exceeds the client's deadline, so queuing would only waste a
	// slot on work that expires anyway).
	Scope string
	// Tenant names the API key whose bucket rejected (Scope "tenant" only).
	Tenant string
	// RetryAfter estimates when capacity frees up: the rejecting queue's
	// outstanding messages divided by its sigs/s weight, or for Scope
	// "tenant" the bucket's refill time.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	switch e.Scope {
	case "tenant":
		return fmt.Sprintf("service: overloaded (tenant %q over rate, retry in %s)",
			e.Tenant, e.RetryAfter.Round(time.Millisecond))
	case "deadline":
		return fmt.Sprintf("service: overloaded (estimated queue wait %s exceeds request deadline)",
			e.RetryAfter.Round(time.Millisecond))
	}
	return fmt.Sprintf("service: overloaded (%s queue full, retry in %s)",
		e.Scope, e.RetryAfter.Round(time.Millisecond))
}

func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// IsOverloaded reports whether err is (or wraps) an admission rejection —
// from this service's own gates or, for remote-backed fleets, a leaf's.
func IsOverloaded(err error) bool { return errors.Is(err, ErrOverloaded) }

// IsDeadlineExceeded reports whether err is (or wraps) a client-deadline
// expiry — an already-expired deadline pre-rejected at Submit, or admitted
// work dropped unexecuted once its deadline passed in the queue.
func IsDeadlineExceeded(err error) bool { return errors.Is(err, ErrDeadlineExceeded) }

// RetryAfter extracts the drain-time estimate from an overload error, or
// zero when err carries none. Clients should back off at least this long
// before resubmitting.
func RetryAfter(err error) time.Duration {
	var oe *OverloadError
	if errors.As(err, &oe) {
		return oe.RetryAfter
	}
	return 0
}

// ShedPolicy selects what an over-limit shard does with the overflow.
type ShedPolicy int

const (
	// RejectNewest (the default) rejects the incoming request with
	// ErrOverloaded and leaves the queue untouched.
	RejectNewest ShedPolicy = iota
	// DropOldestDeadline sheds the still-coalescing request of the same
	// kind with the nearest client deadline — the entry least likely to be
	// served in time (falling back to the oldest arrival when nothing
	// pending carries a deadline) — resolving its future with ErrOverloaded,
	// and admits the incoming request in its place. Requests already flushed
	// to a backend are never dropped.
	DropOldestDeadline
)

// String names the policy for stats and flags.
func (p ShedPolicy) String() string {
	switch p {
	case RejectNewest:
		return "reject-newest"
	case DropOldestDeadline:
		return "drop-oldest-deadline"
	}
	return "unknown"
}

// ShedPolicyByName parses a policy name as printed by String.
func ShedPolicyByName(name string) (ShedPolicy, error) {
	switch name {
	case "reject-newest":
		return RejectNewest, nil
	case "drop-oldest-deadline", "drop-oldest":
		return DropOldestDeadline, nil
	}
	return 0, fmt.Errorf("service: unknown shed policy %q (have reject-newest, drop-oldest-deadline)", name)
}

// AutoQueueLimit, passed to WithQueueLimit or WithGlobalQueueLimit, derives
// the cap from the backends' Capacity hints instead of a fixed count.
const AutoQueueLimit = -1

// minAutoQueueLimit floors the derived cap: a backend advertising a zero
// (or tiny) Capacity hint must not silently disable admission control —
// auto mode always yields a bounded, non-zero gate.
const minAutoQueueLimit = 16

// autoLimit converts an aggregate Capacity hint into an admission cap:
// twice the capacity (one batch executing, one queued behind it), floored
// at minAutoQueueLimit.
func autoLimit(capacity int) int64 {
	l := int64(2 * capacity)
	if l < minAutoQueueLimit {
		l = minAutoQueueLimit
	}
	return l
}

// gate is a bounded admission counter: n admitted-but-unresolved messages
// against a limit (0 = unbounded). The limit is atomic so a
// dynamic-membership router can re-derive auto caps as backends join and
// leave while admissions race through.
type gate struct {
	limit atomic.Int64
	n     atomic.Int64
}

// cap returns the current admission limit (0 = unbounded).
func (g *gate) cap() int64 { return g.limit.Load() }

// setCap installs a new admission limit. Work admitted under the old cap
// keeps its slots; the new cap governs admissions from here on.
func (g *gate) setCap(limit int64) { g.limit.Store(limit) }

// tryAcquire admits k messages unless that would exceed the limit.
func (g *gate) tryAcquire(k int64) bool {
	lim := g.limit.Load()
	if lim <= 0 {
		g.n.Add(k)
		return true
	}
	for {
		cur := g.n.Load()
		if cur+k > lim {
			return false
		}
		if g.n.CompareAndSwap(cur, cur+k) {
			return true
		}
	}
}

func (g *gate) release(k int64) { g.n.Add(-k) }

func (g *gate) depth() int64 { return g.n.Load() }
