package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestFleetAuthRoundTrip covers the header lifecycle: a signed request
// authenticates, and each tampering axis — MAC, timestamp window, nonce
// replay — is rejected.
func TestFleetAuthRoundTrip(t *testing.T) {
	a := NewFleetAuth("topsecret")

	req := httptest.NewRequest(http.MethodPost, "/v1/sign", nil)
	a.Sign(req)
	if err := a.Authenticate(req); err != nil {
		t.Fatalf("fresh signed request rejected: %v", err)
	}

	// Replay: the identical header (same nonce) must be rejected.
	if err := a.Authenticate(req); err == nil {
		t.Fatal("replayed nonce accepted")
	}

	// Missing header.
	bare := httptest.NewRequest(http.MethodPost, "/v1/sign", nil)
	if err := a.Authenticate(bare); err == nil {
		t.Fatal("request without header accepted")
	}

	// Tampered MAC.
	bad := httptest.NewRequest(http.MethodPost, "/v1/sign", nil)
	a.Sign(bad)
	h := bad.Header.Get(FleetAuthHeader)
	last := h[len(h)-1]
	flip := "0"
	if last == '0' {
		flip = "1"
	}
	bad.Header.Set(FleetAuthHeader, h[:len(h)-1]+flip)
	if err := a.Authenticate(bad); err == nil {
		t.Fatal("tampered MAC accepted")
	}

	// A different path invalidates the MAC (method/path are signed).
	moved := httptest.NewRequest(http.MethodPost, "/v1/keygen", nil)
	signedFor := httptest.NewRequest(http.MethodPost, "/v1/sign", nil)
	a.Sign(signedFor)
	moved.Header.Set(FleetAuthHeader, signedFor.Header.Get(FleetAuthHeader))
	if err := a.Authenticate(moved); err == nil {
		t.Fatal("header signed for another path accepted")
	}

	// Wrong secret.
	other := NewFleetAuth("othersecret")
	cross := httptest.NewRequest(http.MethodPost, "/v1/sign", nil)
	other.Sign(cross)
	if err := a.Authenticate(cross); err == nil {
		t.Fatal("request signed with a different secret accepted")
	}
}

// TestFleetAuthWindow: a timestamp outside the replay window is rejected
// even with a valid MAC.
func TestFleetAuthWindow(t *testing.T) {
	a := NewFleetAuth("topsecret")
	a.window = 50 * time.Millisecond
	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	a.Sign(req)
	time.Sleep(80 * time.Millisecond)
	if err := a.Authenticate(req); err == nil {
		t.Fatal("request outside the replay window accepted")
	}
}

// TestFleetSecretProtectsHandler is the leaf posture end to end: with
// WithFleetSecret every /v1/* request needs the header, rejections come
// back 401 and are counted in /v1/stats.
func TestFleetSecretProtectsHandler(t *testing.T) {
	svc := newTestService(t, WithFleetSecret("fleet-pw"))
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Unauthenticated: rejected 401.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated /v1/stats: got %d, want 401 (%s)", resp.StatusCode, body)
	}

	// Wrong secret: rejected 401.
	wrong := NewFleetAuth("not-the-pw")
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/stats", nil)
	wrong.Sign(req)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong-secret /v1/stats: got %d, want 401", resp.StatusCode)
	}

	// Signed: served, and the stats body counts the two rejections.
	auth := NewFleetAuth("fleet-pw")
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/v1/stats", nil)
	auth.Sign(req)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("signed /v1/stats: got %d, want 200", resp.StatusCode)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.AuthRejected < 2 {
		t.Fatalf("auth_rejected = %d, want >= 2", st.AuthRejected)
	}

	// Signing also works through a signed POST (body endpoints).
	sreq, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sign",
		strings.NewReader(`{"message":"aGVsbG8="}`))
	sreq.Header.Set("Content-Type", "application/json")
	auth.Sign(sreq)
	resp, err = http.DefaultClient.Do(sreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("signed /v1/sign: got %d, want 200", resp.StatusCode)
	}
}

// TestStatsHooks: registered hooks see and may extend every snapshot.
func TestStatsHooks(t *testing.T) {
	svc := newTestService(t)
	defer svc.Close()
	svc.AddStatsHook(func(st *Stats) {
		st.FleetEvents = append(st.FleetEvents, FleetEvent{Type: "joined", URL: "http://x"})
		st.AuthRejected += 7
	})
	st := svc.Stats()
	if len(st.FleetEvents) != 1 || st.FleetEvents[0].Type != "joined" {
		t.Fatalf("stats hook did not contribute fleet events: %+v", st.FleetEvents)
	}
	if st.AuthRejected != 7 {
		t.Fatalf("stats hook did not fold auth_rejected: %d", st.AuthRejected)
	}
}
