package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// postSched posts a JSON body with scheduling headers and returns the
// response with its decoded error body (when not 200).
func postSched(t *testing.T, url string, headers map[string]string, body any) (*http.Response, errorResponse) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var er errorResponse
	if resp.StatusCode != http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("decoding %d error body: %v", resp.StatusCode, err)
		}
	}
	return resp, er
}

// TestHTTPDeadlineValidation: malformed scheduling inputs are 400s with a
// message naming the offending field, before any admission work happens.
func TestHTTPDeadlineValidation(t *testing.T) {
	stub := &stubBackend{name: "stub", weight: 1000, cap: 64}
	svc := newStubService(t, stub)
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	msg := []byte("m")
	cases := []struct {
		name    string
		url     string
		headers map[string]string
		body    any
		wantIn  string
	}{
		{"header not a number", "/v1/sign", map[string]string{DeadlineHeader: "soon"},
			signRequest{Message: msg}, DeadlineHeader},
		{"header zero", "/v1/sign", map[string]string{DeadlineHeader: "0"},
			signRequest{Message: msg}, DeadlineHeader},
		{"header negative", "/v1/sign", map[string]string{DeadlineHeader: "-5"},
			signRequest{Message: msg}, DeadlineHeader},
		{"body negative", "/v1/sign", nil,
			signRequest{Message: msg, DeadlineMs: -1}, "deadline_ms"},
		{"batch deadlines_ms mis-sized", "/v1/sign/batch", nil,
			signBatchRequest{Messages: [][]byte{msg, msg}, DeadlinesMs: []int64{5}}, "deadlines_ms"},
		{"batch deadlines_ms negative", "/v1/sign/batch", nil,
			signBatchRequest{Messages: [][]byte{msg, msg}, DeadlinesMs: []int64{5, -2}}, "deadlines_ms"},
		{"batch tenants mis-sized", "/v1/sign/batch", nil,
			signBatchRequest{Messages: [][]byte{msg, msg}, Tenants: []string{"a"}}, "tenants"},
		{"verify header bad", "/v1/verify", map[string]string{DeadlineHeader: "1.5"},
			verifyRequest{Message: msg, Signature: msg}, DeadlineHeader},
		{"keygen body negative", "/v1/keygen", nil,
			keygenRequest{Count: 1, DeadlineMs: -7}, "deadline_ms"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, er := postSched(t, ts.URL+tc.url, tc.headers, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			if !strings.Contains(er.Error, tc.wantIn) {
				t.Fatalf("error %q does not name %q", er.Error, tc.wantIn)
			}
		})
	}
}

// TestHTTPDeadlinePrecedence: X-Request-Deadline overrides the body's
// deadline_ms in both directions, observed through admission outcomes
// against a backlogged shard (estimated wait ~2s): a 100ms deadline is
// pre-rejected 429, an hour-long one is admitted.
func TestHTTPDeadlinePrecedence(t *testing.T) {
	// 50 sigs/s with 90 occupants parked in the coalescer (below the 100
	// MaxBatch, hour-long flush): estimated queue wait 1.8s.
	stub := &stubBackend{name: "slow", weight: 50, cap: 64}
	svc := newStubService(t, stub)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Close() // before ts.Close: draining unblocks the pending handler

	for i := 0; i < 90; i++ {
		if _, err := svc.SubmitSign([]byte(fmt.Sprintf("occupant-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// Body deadline alone is honored: 100ms < 1.8s wait -> 429, scope deadline.
	resp, er := postSched(t, ts.URL+"/v1/sign",
		map[string]string{TenantHeader: "t-body"},
		signRequest{Message: []byte("m"), DeadlineMs: 100})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("body-deadline status %d, want 429", resp.StatusCode)
	}
	if er.RetryAfterMs <= 0 || !strings.Contains(er.Error, "deadline") {
		t.Fatalf("429 body: %+v, want a deadline pre-rejection with retry_after_ms", er)
	}
	if ts1 := findTenant(t, svc.Stats().Tenants, "t-body"); ts1.RejectedDeadline != 1 || ts1.Admitted != 0 {
		t.Fatalf("t-body counters: %+v", ts1)
	}

	// Header overrides a tight body deadline upward: the request is admitted
	// and parks in the coalescer (a 2h deadline leaves the 1h flush timer
	// alone); the tenant gauge proves the admission.
	respCh := make(chan int, 1)
	go func() {
		resp, _ := postSched(t, ts.URL+"/v1/sign",
			map[string]string{TenantHeader: "t-hdr-up", DeadlineHeader: "7200000"},
			signRequest{Message: []byte("m"), DeadlineMs: 100})
		respCh <- resp.StatusCode
	}()
	waitFor(t, 5*time.Second, func() bool {
		for _, ts2 := range svc.Stats().Tenants {
			if ts2.Tenant == "t-hdr-up" {
				return ts2.Admitted == 1 && ts2.RejectedDeadline == 0
			}
		}
		return false
	})

	// Header overrides a generous body deadline downward: immediate 429.
	resp, _ = postSched(t, ts.URL+"/v1/sign",
		map[string]string{TenantHeader: "t-hdr-down", DeadlineHeader: "100"},
		signRequest{Message: []byte("m"), DeadlineMs: 3600000})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("header-override-down status %d, want 429", resp.StatusCode)
	}
	if ts3 := findTenant(t, svc.Stats().Tenants, "t-hdr-down"); ts3.RejectedDeadline != 1 {
		t.Fatalf("t-hdr-down counters: %+v", ts3)
	}

	// /v1/stats wire shape: per-tenant counters ride under "tenants".
	hresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(hresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if def := findTenant(t, st.Tenants, DefaultTenant); def.Queued != 90 {
		t.Fatalf("default tenant queued = %d over the wire, want the 90 occupants", def.Queued)
	}
	findTenant(t, st.Tenants, "t-body")

	// Draining resolves the admitted hour-deadline request successfully.
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-respCh:
		if code != http.StatusOK {
			t.Fatalf("admitted request finished %d after drain, want 200", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("admitted request never finished")
	}
}

// TestHTTPTenant429Shape: a tenant over its token bucket gets the full 429
// contract — Retry-After header, retry_after_ms body, the tenant named in
// the error — and the stats surface the configured rate and the rejection.
func TestHTTPTenant429Shape(t *testing.T) {
	stub := &stubBackend{name: "stub", weight: 1000, cap: 64}
	svc := newStubService(t, stub,
		WithMaxBatch(1), WithTenantRate(1), WithTenantBurst(4))
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	hdr := map[string]string{TenantHeader: "meter"}
	for i := 0; i < 4; i++ {
		resp, er := postSched(t, ts.URL+"/v1/sign", hdr, signRequest{Message: []byte(fmt.Sprintf("m-%d", i))})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("in-burst request %d: status %d (%s)", i, resp.StatusCode, er.Error)
		}
	}
	resp, er := postSched(t, ts.URL+"/v1/sign", hdr, signRequest{Message: []byte("over")})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-burst status %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After header %q, want whole seconds >= 1", resp.Header.Get("Retry-After"))
	}
	if er.RetryAfterMs <= 0 {
		t.Fatalf("retry_after_ms = %d, want > 0", er.RetryAfterMs)
	}
	if !strings.Contains(er.Error, `"meter"`) {
		t.Fatalf("429 error %q does not name the tenant", er.Error)
	}

	hresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(hresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if st.TenantRate != 1 || st.TenantBurst != 4 {
		t.Fatalf("stats tenant_rate/tenant_burst = %g/%d, want 1/4", st.TenantRate, st.TenantBurst)
	}
	meter := findTenant(t, st.Tenants, "meter")
	if meter.Done != 4 || meter.RejectedRate != 1 {
		t.Fatalf("meter counters over the wire: %+v", meter)
	}
}

// TestHTTP504ExpiredInQueue: a deadline that was live at admission but
// lapses behind a stuck backend surfaces as 504 Gateway Timeout — retrying
// with the same deadline is pointless, unlike a 429.
func TestHTTP504ExpiredInQueue(t *testing.T) {
	unblock := make(chan struct{})
	stub := &stubBackend{name: "stuck", weight: 100000, cap: 64, unblock: unblock}
	svc := newStubService(t, stub, WithMaxBatch(1), WithFlushDeadline(time.Millisecond))
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	if _, err := svc.SubmitSign([]byte("occupant")); err != nil {
		t.Fatal(err)
	}
	timer := time.AfterFunc(100*time.Millisecond, func() { close(unblock) })
	defer timer.Stop()

	resp, er := postSched(t, ts.URL+"/v1/sign",
		map[string]string{DeadlineHeader: "40"}, signRequest{Message: []byte("victim")})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired-in-queue status %d, want 504 (%s)", resp.StatusCode, er.Error)
	}
	if !strings.Contains(er.Error, "deadline") {
		t.Fatalf("504 error %q does not mention the deadline", er.Error)
	}
}
