package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"herosign/internal/gpu/device"
	"herosign/internal/spx"
	"herosign/internal/spx/params"
)

// TestDynamicAddRemoveBackend: a service started with dynamic membership
// and zero backends rejects work with ErrNoBackends, serves byte-identical
// signatures once a backend is admitted, and returns to ErrNoBackends
// after the backend is removed (its pool drained and closed).
func TestDynamicAddRemoveBackend(t *testing.T) {
	svc, err := New(
		WithParams(params.SPHINCSPlus128f),
		WithKey(testKey(t)),
		WithDynamicMembership(),
		WithFlushDeadline(2*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	ctx := context.Background()

	// No members yet: flushing work fails with ErrNoBackends.
	fut, err := svc.SubmitSign([]byte("before-join"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(ctx); !errors.Is(err, ErrNoBackends) {
		t.Fatalf("sign with no members: err = %v, want ErrNoBackends", err)
	}

	// Admit a backend at runtime.
	dev, err := device.ByName("RTX 4090")
	if err != nil {
		t.Fatal(err)
	}
	b := NewDeviceBackend(dev)
	if err := svc.AddBackend(b); err != nil {
		t.Fatalf("AddBackend: %v", err)
	}
	if got := len(svc.Shards()[0].Backends); got != 1 {
		t.Fatalf("shard backends after add = %d, want 1", got)
	}

	msgs := make([][]byte, 6)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("dynamic-%d", i))
		fut, err := svc.SubmitSign(msgs[i])
		if err != nil {
			t.Fatal(err)
		}
		res, err := fut.Wait(ctx)
		if err != nil {
			t.Fatalf("sign %d after join: %v", i, err)
		}
		want, err := spx.Sign(testKey(t), msgs[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Sig, want) {
			t.Fatalf("signature %d differs from CPU reference after dynamic join", i)
		}
	}

	// Retire it again: pool drains, work is refused once more.
	if err := svc.RemoveBackend(b); err != nil {
		t.Fatalf("RemoveBackend: %v", err)
	}
	if got := len(svc.Shards()[0].Backends); got != 0 {
		t.Fatalf("shard backends after remove = %d, want 0", got)
	}
	fut, err = svc.SubmitSign([]byte("after-leave"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(ctx); !errors.Is(err, ErrNoBackends) {
		t.Fatalf("sign after remove: err = %v, want ErrNoBackends", err)
	}

	// Removing an unknown backend errors instead of panicking.
	if err := svc.RemoveBackend(b); err == nil {
		t.Fatal("second RemoveBackend of the same backend succeeded")
	}
}

// TestDynamicAutoLimitsRecompute: with AutoQueueLimit, admission caps must
// grow as members join and shrink as they leave.
func TestDynamicAutoLimitsRecompute(t *testing.T) {
	svc, err := New(
		WithParams(params.SPHINCSPlus128f),
		WithKey(testKey(t)),
		WithDynamicMembership(),
		WithQueueLimit(AutoQueueLimit),
		WithFlushDeadline(2*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	limit0 := svc.Stats().Shards[0].QueueLimit

	dev, err := device.ByName("RTX 4090")
	if err != nil {
		t.Fatal(err)
	}
	b := NewDeviceBackend(dev)
	if err := svc.AddBackend(b); err != nil {
		t.Fatal(err)
	}
	limit1 := svc.Stats().Shards[0].QueueLimit
	if limit1 <= limit0 {
		t.Fatalf("auto queue limit did not grow on join: %d -> %d", limit0, limit1)
	}

	if err := svc.RemoveBackend(b); err != nil {
		t.Fatal(err)
	}
	limit2 := svc.Stats().Shards[0].QueueLimit
	if limit2 >= limit1 {
		t.Fatalf("auto queue limit did not shrink on leave: %d -> %d", limit1, limit2)
	}
}
