package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// batchJob is one flushed batch on its way through the router.
type batchJob struct {
	kind Kind
	reqs []*request
}

// histBuckets are the upper bounds of the batch-size histogram
// (1, 2, 4, …, 64, +Inf).
var histBuckets = []int{1, 2, 4, 8, 16, 32, 64}

func histIdx(n int) int {
	for i, le := range histBuckets {
		if n <= le {
			return i
		}
	}
	return len(histBuckets)
}

// pool owns one backend's submission queue. A goroutine drains the queue
// serially — the backend-level analogue of the per-block worker under a
// super-level scheduler — while the shard router above picks which pool
// each flushed batch lands on.
type pool struct {
	id      int // global worker index, stable across shards
	shardID int
	backend Backend

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*batchJob
	closing  bool
	aborting bool

	// done closes when the worker loop exits — how a dynamic-membership
	// removal waits for the pool's queue to drain.
	done chan struct{}

	// outstanding counts messages queued or executing on this backend; the
	// router's weighted least-outstanding-work dispatch reads it lock-free.
	outstanding atomic.Int64

	statsMu sync.Mutex
	stats   poolStats
}

// poolStats accumulates per-backend counters. BusyUs fields integrate the
// backend's reported execution time: modeled device time for simulated
// backends, measured wall time for CPU backends.
type poolStats struct {
	Batches          int64
	Messages         int64
	SignMsgs         int64
	VerifyMsgs       int64
	KeyGenMsgs       int64
	SignBusyUs       float64
	VerifyBusyUs     float64
	KeyGenBusyUs     float64
	LaunchOverheadUs float64
	Hist             []int64
}

func newPool(id, shardID int, b Backend) *pool {
	p := &pool{id: id, shardID: shardID, backend: b, done: make(chan struct{})}
	p.cond = sync.NewCond(&p.mu)
	p.stats.Hist = make([]int64, len(histBuckets)+1)
	return p
}

func (p *pool) enqueue(j *batchJob) {
	p.mu.Lock()
	p.queue = append(p.queue, j)
	p.cond.Signal()
	p.mu.Unlock()
}

// beginClose asks the worker to exit once its queue is empty.
func (p *pool) beginClose() {
	p.mu.Lock()
	p.closing = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// abort makes the worker abandon still-queued batches (their futures
// resolve ErrClosed) instead of executing them; the batch currently running
// completes.
func (p *pool) abort() {
	p.mu.Lock()
	p.aborting = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// run is the pool's worker loop: serially execute queued batches until
// closing drains the queue or abort abandons it.
func (p *pool) run(ctx context.Context, key *PrivateKey, keyID string) {
	defer close(p.done)
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closing && !p.aborting {
			p.cond.Wait()
		}
		if p.aborting {
			abandoned := p.queue
			p.queue = nil
			p.mu.Unlock()
			for _, j := range abandoned {
				for _, r := range j.reqs {
					r.resolve(Result{}, ErrClosed)
				}
				p.outstanding.Add(-int64(len(j.reqs)))
			}
			return
		}
		if len(p.queue) == 0 && p.closing {
			p.mu.Unlock()
			return
		}
		j := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()

		p.runBatch(ctx, key, keyID, j)
		p.outstanding.Add(-int64(len(j.reqs)))
	}
}

// runBatch validates the batch per message, executes the survivors on the
// backend and resolves every future. Per-message validation errors resolve
// individually; a backend error resolves the whole batch with that error.
func (p *pool) runBatch(ctx context.Context, key *PrivateKey, keyID string, j *batchJob) {
	live := p.validate(key, j)
	if len(live) == 0 {
		return
	}
	job := &Job{Kind: j.kind}
	switch j.kind {
	case KindSign:
		job.Msgs = make([][]byte, len(live))
		for i, r := range live {
			job.Msgs[i] = r.msg
		}
	case KindVerify:
		job.Msgs = make([][]byte, len(live))
		job.Sigs = make([][]byte, len(live))
		for i, r := range live {
			job.Msgs[i], job.Sigs[i] = r.msg, r.sig
		}
	case KindKeyGen:
		job.Seeds = make([]SeedTriple, len(live))
		for i, r := range live {
			job.Seeds[i] = r.seed
		}
	default:
		for _, r := range live {
			r.resolve(Result{}, fmt.Errorf("service: unknown job kind %d", j.kind))
		}
		return
	}
	fillScheduling(job, live)
	out, err := p.backend.RunBatch(ctx, key, job)
	if err != nil {
		if ctx.Err() != nil {
			err = ErrClosed
		}
		for _, r := range live {
			r.resolve(Result{}, err)
		}
		return
	}
	p.record(j.kind, len(live), out.BusyUs, out.LaunchOverheadUs)
	meta := Result{Batch: len(live), Dev: p.backend.Name(), KeyID: keyID, Shard: p.shardID}
	for i, r := range live {
		res := meta
		switch j.kind {
		case KindSign:
			res.Sig = out.Sigs[i]
		case KindVerify:
			res.Valid = out.OK[i]
		case KindKeyGen:
			res.Key = out.Keys[i]
		}
		r.resolve(res, nil)
	}
}

// fillScheduling attaches the batch's advisory deadline/tenant metadata so
// proxying backends (service/remote) can forward it to a leaf's scheduler.
// Deadlines are snapshotted as remaining milliseconds at dispatch (floored
// at 1ms: the work was admitted, so a leaf should not pre-reject it over
// transit time). Both slices stay nil when no message needs them.
func fillScheduling(job *Job, live []*request) {
	now := time.Now()
	for i, r := range live {
		if !r.deadline.IsZero() {
			if job.DeadlinesMs == nil {
				job.DeadlinesMs = make([]int64, len(live))
			}
			ms := int64(r.deadline.Sub(now) / time.Millisecond)
			if ms < 1 {
				ms = 1
			}
			job.DeadlinesMs[i] = ms
		}
		if r.tenant != nil && r.tenant.name != DefaultTenant {
			if job.Tenants == nil {
				job.Tenants = make([]string, len(live))
			}
			job.Tenants[i] = r.tenant.name
		}
	}
}

// validate resolves malformed requests individually and returns the rest.
// A request whose client deadline passed while it waited in the queue is
// dropped here with ErrDeadlineExceeded — after admission but before any
// backend work is spent on it.
func (p *pool) validate(key *PrivateKey, j *batchJob) []*request {
	n := key.Params.N
	now := time.Now()
	live := j.reqs[:0:0]
	for _, r := range j.reqs {
		if !r.deadline.IsZero() && !r.deadline.After(now) {
			r.resolve(Result{}, ErrDeadlineExceeded)
			continue
		}
		switch j.kind {
		case KindSign:
			if len(r.msg) == 0 {
				r.resolve(Result{}, ErrEmptyMessage)
				continue
			}
		case KindVerify:
			if len(r.sig) != key.Params.SigBytes {
				r.resolve(Result{}, fmt.Errorf("%w: got %d bytes, want %d",
					ErrSignatureLength, len(r.sig), key.Params.SigBytes))
				continue
			}
		case KindKeyGen:
			if len(r.seed.SKSeed) != n || len(r.seed.SKPRF) != n || len(r.seed.PKSeed) != n {
				r.resolve(Result{}, fmt.Errorf("%w: components must be %d bytes", ErrSeedLength, n))
				continue
			}
		}
		live = append(live, r)
	}
	return live
}

// record folds one executed batch into the pool's stats.
func (p *pool) record(kind Kind, n int, busyUs, launchUs float64) {
	p.statsMu.Lock()
	defer p.statsMu.Unlock()
	p.stats.Batches++
	p.stats.Messages += int64(n)
	p.stats.LaunchOverheadUs += launchUs
	p.stats.Hist[histIdx(n)]++
	switch kind {
	case KindSign:
		p.stats.SignMsgs += int64(n)
		p.stats.SignBusyUs += busyUs
	case KindVerify:
		p.stats.VerifyMsgs += int64(n)
		p.stats.VerifyBusyUs += busyUs
	case KindKeyGen:
		p.stats.KeyGenMsgs += int64(n)
		p.stats.KeyGenBusyUs += busyUs
	}
}

func (p *pool) snapshot() poolStats {
	p.statsMu.Lock()
	defer p.statsMu.Unlock()
	s := p.stats
	s.Hist = append([]int64(nil), p.stats.Hist...)
	return s
}
