package service

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"herosign/internal/spx/params"
)

// TestRetryEstimateClamps pins the drain-time hint's contract: 50ms floor
// (even for empty or weightless queues), linear middle, one-minute cap.
func TestRetryEstimateClamps(t *testing.T) {
	cases := []struct {
		n    int64
		w    float64
		want time.Duration
	}{
		{0, 100, 50 * time.Millisecond},  // nothing queued -> floor
		{10, 0, 50 * time.Millisecond},   // no weight estimate -> floor
		{-5, 100, 50 * time.Millisecond}, // negative depth (racy read) -> floor
		{1, 1000, 50 * time.Millisecond}, // 1ms true estimate -> floor
		{100, 100, time.Second},          // linear region
		{500, 100, 5 * time.Second},      // linear region
		{1_000_000, 1, time.Minute},      // absurd backlog -> cap
		{100, 0.001, time.Minute},        // near-zero weight -> cap
	}
	for _, c := range cases {
		if got := retryEstimate(c.n, c.w); got != c.want {
			t.Errorf("retryEstimate(%d, %v) = %v, want %v", c.n, c.w, got, c.want)
		}
	}
}

// TestAutoLimitFloor: AutoQueueLimit must never produce a zero (= unbounded)
// or degenerate gate, whatever the backends advertise.
func TestAutoLimitFloor(t *testing.T) {
	cases := []struct {
		capacity int
		want     int64
	}{
		{0, minAutoQueueLimit},  // zero-capacity hint must stay bounded
		{-4, minAutoQueueLimit}, // nonsense hint
		{1, minAutoQueueLimit},  // tiny hint floors
		{8, minAutoQueueLimit},  // 2*8 == floor
		{9, 18},                 // above the floor: twice the capacity
		{256, 512},
	}
	for _, c := range cases {
		if got := autoLimit(c.capacity); got != c.want {
			t.Errorf("autoLimit(%d) = %d, want %d", c.capacity, got, c.want)
		}
	}
}

// zeroCapBackend advertises no capacity at all — the degenerate hint
// AutoQueueLimit has to survive.
type zeroCapBackend struct{ Backend }

func (zeroCapBackend) Capacity() int { return 0 }

// TestAutoQueueLimitZeroCapacityBackend: a single-shard service whose only
// backend advertises Capacity 0 still gets a bounded, non-zero admission
// gate, and overload still reports a positive retry estimate.
func TestAutoQueueLimitZeroCapacityBackend(t *testing.T) {
	svc, err := New(
		WithParams(params.SPHINCSPlus128f),
		WithKey(testKey(t)),
		WithBackends(zeroCapBackend{NewCPURefBackend(1)}),
		WithQueueLimit(AutoQueueLimit),
		WithMaxBatch(4),
		WithFlushDeadline(time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	st := svc.Stats()
	if len(st.Shards) != 1 {
		t.Fatalf("shards = %d, want 1", len(st.Shards))
	}
	if got := st.Shards[0].QueueLimit; got != minAutoQueueLimit {
		t.Fatalf("auto queue limit with zero-capacity backend = %d, want %d",
			got, minAutoQueueLimit)
	}
}

// TestAutoQueueLimitSingleShard: with one shard, the shard gate and the
// global gate derive from the same aggregate capacity.
func TestAutoQueueLimitSingleShard(t *testing.T) {
	svc := newTestService(t,
		WithQueueLimit(AutoQueueLimit),
		WithGlobalQueueLimit(AutoQueueLimit),
	)
	defer svc.Close()
	st := svc.Stats()
	if len(st.Shards) != 1 {
		t.Fatalf("shards = %d, want 1", len(st.Shards))
	}
	if st.Shards[0].QueueLimit <= 0 {
		t.Fatal("auto shard gate is unbounded")
	}
	if st.GlobalQueueLimit != st.Shards[0].QueueLimit {
		t.Fatalf("single-shard global gate %d != shard gate %d",
			st.GlobalQueueLimit, st.Shards[0].QueueLimit)
	}
}

// TestGlobalLimitBelowShardLimit: when the explicit global cap is tighter
// than the per-shard caps, the global gate rejects first and the error says
// so (scope "global"), with a positive retry estimate.
func TestGlobalLimitBelowShardLimit(t *testing.T) {
	svc := newTestService(t,
		WithShards(2),
		WithQueueLimit(100),                             // roomy shard gates
		WithGlobalQueueLimit(3),                         // but a tight global gate
		WithMaxBatch(100), WithFlushDeadline(time.Hour), // hold admits open
	)
	defer svc.Close()

	for i := 0; i < 3; i++ {
		if _, err := svc.SubmitSign([]byte(fmt.Sprintf("hold-%d", i))); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	_, err := svc.SubmitSign([]byte("rejected"))
	if !IsOverloaded(err) {
		t.Fatalf("4th submit err = %v, want overload", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("overload error type: %T", err)
	}
	if oe.Scope != "global" {
		t.Fatalf("overload scope %q, want global (global gate is the tight one)", oe.Scope)
	}
	if oe.RetryAfter < 50*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want >= 50ms floor", oe.RetryAfter)
	}
	if RetryAfter(err) != oe.RetryAfter {
		t.Fatal("RetryAfter helper disagrees with the error field")
	}

	// Per-shard accounting: the global rejection must not increment any
	// shard's Rejected counter.
	st := svc.Stats()
	for _, sh := range st.Shards {
		if sh.Rejected != 0 {
			t.Fatalf("shard %d counted a global rejection", sh.Shard)
		}
	}
	if st.RejectedTotal != 1 {
		t.Fatalf("RejectedTotal = %d, want 1", st.RejectedTotal)
	}
}

// TestOverloadHelpers covers the exported helpers on non-overload errors.
func TestOverloadHelpers(t *testing.T) {
	if IsOverloaded(nil) || IsOverloaded(errors.New("other")) {
		t.Fatal("IsOverloaded misclassified a non-overload error")
	}
	if RetryAfter(errors.New("other")) != 0 {
		t.Fatal("RetryAfter invented an estimate for a non-overload error")
	}
	err := &OverloadError{Scope: "leaf", RetryAfter: 123 * time.Millisecond}
	if !IsOverloaded(err) || RetryAfter(err) != 123*time.Millisecond {
		t.Fatalf("helpers on OverloadError: is=%v after=%v", IsOverloaded(err), RetryAfter(err))
	}
}
