package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"herosign/internal/gpu/device"
	"herosign/internal/spx"
	"herosign/internal/spx/params"
)

// TestShardedKeyDomains covers the per-shard key model: two shards own
// distinct derived keys, signatures name their key domain, verify routes by
// key ID (and fans out across shards when none is given), and every
// signature stays byte-identical to the CPU reference under the shard key.
func TestShardedKeyDomains(t *testing.T) {
	devA, _ := device.ByName("RTX 4090")
	devB, _ := device.ByName("A100")
	svc, err := New(
		WithParams(params.SPHINCSPlus128f),
		WithKey(testKey(t)),
		WithDevices(devA, devB),
		WithShards(2),
		WithFlushDeadline(2*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	shards := svc.Shards()
	if len(shards) != 2 {
		t.Fatalf("Shards() = %d entries, want 2", len(shards))
	}
	if shards[0].KeyID == shards[1].KeyID {
		t.Fatal("shards share a key ID")
	}
	if bytes.Equal(shards[0].PublicKey.Bytes(), shards[1].PublicKey.Bytes()) {
		t.Fatal("shards share a public key")
	}
	// Shard 0 signs under the master key.
	if !bytes.Equal(shards[0].PublicKey.Bytes(), testKey(t).PublicKey.Bytes()) {
		t.Fatal("shard 0 does not own the master key")
	}

	ctx := context.Background()
	n := 12
	msgs := make([][]byte, n)
	futs := make([]*Future, n)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("sharded-%d", i))
		fut, err := svc.SubmitSign(msgs[i])
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = fut
	}
	for i, fut := range futs {
		res, err := fut.Wait(ctx)
		if err != nil {
			t.Fatalf("sign %d: %v", i, err)
		}
		pk, err := svc.PublicKeyFor(res.KeyID)
		if err != nil {
			t.Fatalf("sign %d reported unknown key id %q", i, res.KeyID)
		}
		if err := spx.Verify(pk, msgs[i], res.Sig); err != nil {
			t.Fatalf("signature %d does not verify under its key domain: %v", i, err)
		}
		// Byte-identical to the reference under the executing shard's key.
		ref, err := spx.Sign(svc.router.shards[res.Shard].key, msgs[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ref, res.Sig) {
			t.Fatalf("signature %d differs from the reference for shard %d", i, res.Shard)
		}

		// Verify routed to the signing domain succeeds; the other domain
		// rejects; the fan-out path finds the right domain on its own.
		otherID := shards[0].KeyID
		if res.KeyID == otherID {
			otherID = shards[1].KeyID
		}
		if i < 3 {
			for _, tc := range []struct {
				keyID string
				want  bool
			}{{res.KeyID, true}, {otherID, false}, {"", true}} {
				fut, err := svc.SubmitVerifyKey(tc.keyID, msgs[i], res.Sig)
				if err != nil {
					t.Fatal(err)
				}
				vres, err := fut.Wait(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if vres.Valid != tc.want {
					t.Fatalf("verify msg %d keyID=%q = %v, want %v", i, tc.keyID, vres.Valid, tc.want)
				}
			}
		}
	}

	if _, err := svc.SubmitSignKey("no-such-key", []byte("x")); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("unknown key id error = %v, want ErrUnknownKey", err)
	}

	st := svc.Stats()
	if len(st.Shards) != 2 {
		t.Fatalf("stats report %d shards, want 2", len(st.Shards))
	}
	for _, ss := range st.Shards {
		if ss.WeightSigsPerSec <= 0 {
			t.Fatalf("shard %d has no dispatch weight", ss.Shard)
		}
		if len(ss.Backends) != 1 {
			t.Fatalf("shard %d has %d backends, want 1", ss.Shard, len(ss.Backends))
		}
	}
}

// TestWeightedDispatchPrefersFasterBackend mixes a modeled GPU backend with
// a single-thread real-CPU backend in one shard: weighted
// least-outstanding-work dispatch must send the bulk of the load to the
// backend with the (much) higher sigs/s weight.
func TestWeightedDispatchPrefersFasterBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed-backend dispatch needs a real cpuref batch")
	}
	devA, _ := device.ByName("RTX 4090")
	svc, err := New(
		WithParams(params.SPHINCSPlus128f),
		WithKey(testKey(t)),
		WithDevices(devA),
		WithBackends(NewCPURefBackend(1)),
		WithMaxBatch(8),
		WithFlushDeadline(2*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	n := 48
	futs := make([]*Future, n)
	for i := range futs {
		fut, err := svc.SubmitSign([]byte(fmt.Sprintf("weighted-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = fut
	}
	ctx := context.Background()
	pk := svc.PublicKey()
	for i, fut := range futs {
		res, err := fut.Wait(ctx)
		if err != nil {
			t.Fatalf("sign %d: %v", i, err)
		}
		if err := spx.Verify(pk, []byte(fmt.Sprintf("weighted-%d", i)), res.Sig); err != nil {
			t.Fatalf("signature %d (backend %s) does not verify: %v", i, res.Dev, err)
		}
	}

	st := svc.Stats()
	var gpuMsgs, cpuMsgs int64
	for _, d := range st.Devices {
		switch d.Device {
		case devA.Name:
			gpuMsgs = d.Messages
		case "cpuref-1t":
			cpuMsgs = d.Messages
			if d.WeightSigsPerSec <= 0 {
				t.Fatal("cpuref backend has no calibrated weight")
			}
		}
	}
	if gpuMsgs+cpuMsgs != int64(n) {
		t.Fatalf("backends executed %d messages, want %d", gpuMsgs+cpuMsgs, n)
	}
	if gpuMsgs <= cpuMsgs {
		t.Fatalf("weighted dispatch sent %d to the GPU vs %d to cpuref-1t; want the GPU to dominate",
			gpuMsgs, cpuMsgs)
	}
	t.Logf("weighted split: gpu=%d cpuref=%d", gpuMsgs, cpuMsgs)
}

// TestAdmissionRejectNewest fills a shard's bounded queue and checks the
// default policy rejects the overflow with a retry hint, with the counters
// visible in Stats.
func TestAdmissionRejectNewest(t *testing.T) {
	svc := newTestService(t,
		WithQueueLimit(4), WithMaxBatch(100), WithFlushDeadline(time.Hour))
	defer svc.Close()

	for i := 0; i < 4; i++ {
		if _, err := svc.SubmitSign([]byte(fmt.Sprintf("fill-%d", i))); err != nil {
			t.Fatalf("submit %d under the limit: %v", i, err)
		}
	}
	_, err := svc.SubmitSign([]byte("overflow"))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-limit submit = %v, want ErrOverloaded", err)
	}
	var over *OverloadError
	if !errors.As(err, &over) {
		t.Fatalf("over-limit error %T does not carry an OverloadError", err)
	}
	if over.RetryAfter <= 0 {
		t.Fatalf("retry hint = %v, want > 0", over.RetryAfter)
	}
	if over.Scope != "shard" {
		t.Fatalf("scope = %q, want shard", over.Scope)
	}

	st := svc.Stats()
	if st.RejectedTotal != 1 || st.ShedTotal != 0 {
		t.Fatalf("rejected/shed = %d/%d, want 1/0", st.RejectedTotal, st.ShedTotal)
	}
	if got := st.Shards[0].QueueDepth; got != 4 {
		t.Fatalf("shard queue depth = %d, want 4", got)
	}
	if got := st.Shards[0].QueueLimit; got != 4 {
		t.Fatalf("shard queue limit = %d, want 4", got)
	}
}

// TestSubmitSignBatchAllOrNothing: an over-limit batch is rejected without
// admitting (or shedding) anything; an in-limit batch signs completely.
func TestSubmitSignBatchAllOrNothing(t *testing.T) {
	svc := newTestService(t,
		WithQueueLimit(4), WithShedPolicy(DropOldestDeadline),
		WithMaxBatch(100), WithFlushDeadline(time.Hour))
	defer svc.Close()

	// A batch that can never fit the cap is non-retryable, not a 429.
	over := [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d"), []byte("e")}
	if _, err := svc.SubmitSignBatch("", over); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("5-message batch against limit 4 = %v, want ErrBatchTooLarge", err)
	}

	// A batch that fits the cap but not the current free space is a
	// transient overload — and must not shed the occupant to make room.
	occupant, err := svc.SubmitSign([]byte("occupant"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.SubmitSignBatch("", over[:4]); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("4-message batch with 1 slot taken = %v, want ErrOverloaded", err)
	}
	select {
	case <-occupant.Done():
		t.Fatal("rejected batch displaced the occupant")
	default:
	}
	st := svc.Stats()
	if st.Shards[0].QueueDepth != 1 || st.ShedTotal != 0 {
		t.Fatalf("rejected batch left depth=%d shed=%d, want 1/0",
			st.Shards[0].QueueDepth, st.ShedTotal)
	}

	futs, err := svc.SubmitSignBatch("", over[:3])
	if err != nil {
		t.Fatal(err)
	}

	// The queue is now full (occupant + 3 pinned members). A new single
	// submit sheds the only unpinned request — the occupant — while the
	// batch members survive.
	extra, err := svc.SubmitSign([]byte("extra"))
	if err != nil {
		t.Fatalf("drop-oldest should shed the occupant for the newcomer: %v", err)
	}
	if _, err := occupant.Wait(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("occupant error = %v, want ErrOverloaded (shed)", err)
	}

	if err := svc.Close(); err != nil { // flush the hour-long coalescing window
		t.Fatal(err)
	}
	ctx := context.Background()
	for i, fut := range futs {
		res, err := fut.Wait(ctx)
		if err != nil {
			t.Fatalf("pinned batch member %d was shed: %v", i, err)
		}
		if err := spx.Verify(svc.PublicKey(), over[i], res.Sig); err != nil {
			t.Fatalf("batch signature %d invalid: %v", i, err)
		}
	}
	if res, err := extra.Wait(ctx); err != nil || len(res.Sig) == 0 {
		t.Fatalf("admitted newcomer failed: %v", err)
	}
	if st := svc.Stats(); st.GlobalQueueDepth != 0 {
		t.Fatalf("admission gates did not drain: depth %d", st.GlobalQueueDepth)
	}
}

// TestAdmissionGlobalLimit checks the service-wide cap fires independently
// of per-shard room.
func TestAdmissionGlobalLimit(t *testing.T) {
	svc := newTestService(t,
		WithGlobalQueueLimit(2), WithMaxBatch(100), WithFlushDeadline(time.Hour))
	defer svc.Close()

	for i := 0; i < 2; i++ {
		if _, err := svc.SubmitSign([]byte(fmt.Sprintf("g-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	_, err := svc.SubmitSign([]byte("overflow"))
	var over *OverloadError
	if !errors.As(err, &over) || over.Scope != "global" {
		t.Fatalf("global overflow = %v, want OverloadError{Scope: global}", err)
	}
	st := svc.Stats()
	if st.GlobalQueueDepth != 2 || st.GlobalQueueLimit != 2 {
		t.Fatalf("global depth/limit = %d/%d, want 2/2", st.GlobalQueueDepth, st.GlobalQueueLimit)
	}
	if st.RejectedTotal != 1 {
		t.Fatalf("rejected = %d, want 1", st.RejectedTotal)
	}
}

// TestAdmissionDropOldestDeadline checks the shedding policy: the oldest
// still-coalescing request is evicted (its future resolving ErrOverloaded)
// to admit the newcomer.
func TestAdmissionDropOldestDeadline(t *testing.T) {
	svc := newTestService(t,
		WithQueueLimit(2), WithShedPolicy(DropOldestDeadline),
		WithMaxBatch(100), WithFlushDeadline(time.Hour))
	defer svc.Close()

	oldest, err := svc.SubmitSign([]byte("oldest"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.SubmitSign([]byte("middle")); err != nil {
		t.Fatal(err)
	}
	newest, err := svc.SubmitSign([]byte("newest"))
	if err != nil {
		t.Fatalf("drop-oldest should admit the newcomer, got %v", err)
	}

	// The evicted future resolves ErrOverloaded without waiting for Close.
	select {
	case <-oldest.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("shed future never resolved")
	}
	if _, err := oldest.Wait(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("shed future error = %v, want ErrOverloaded", err)
	}

	st := svc.Stats()
	if st.ShedTotal != 1 || st.RejectedTotal != 0 {
		t.Fatalf("shed/rejected = %d/%d, want 1/0", st.ShedTotal, st.RejectedTotal)
	}
	if st.ShedPolicy != "drop-oldest-deadline" {
		t.Fatalf("policy = %q", st.ShedPolicy)
	}

	// Close drains the two admitted requests; the newest must sign.
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := newest.Wait(context.Background())
	if err != nil {
		t.Fatalf("admitted newcomer failed: %v", err)
	}
	if err := spx.Verify(svc.PublicKey(), []byte("newest"), res.Sig); err != nil {
		t.Fatalf("newcomer signature invalid: %v", err)
	}
}

// TestCloseUnderLoadRace hammers the service with concurrent submitters and
// Stats readers while Close runs mid-load. Run with -race (the Makefile's
// service test lane does): this is the regression test for the close vs
// in-flight stats-recording race. Every submitted future must still resolve
// exactly once, either with a signature or ErrClosed.
func TestCloseUnderLoadRace(t *testing.T) {
	svc := newTestService(t, WithFlushDeadline(time.Millisecond), WithMaxBatch(4))

	const submitters, perSubmitter = 4, 15
	var mu sync.Mutex
	var futs []*Future
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				fut, err := svc.SubmitSign([]byte(fmt.Sprintf("load-%d-%d", g, i)))
				if err != nil {
					if errors.Is(err, ErrClosed) {
						return
					}
					t.Errorf("submit: %v", err)
					return
				}
				mu.Lock()
				futs = append(futs, fut)
				mu.Unlock()
				time.Sleep(200 * time.Microsecond)
			}
		}(g)
	}
	// Concurrent stats reader races the recording and the close path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = svc.Stats()
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	time.Sleep(5 * time.Millisecond)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// Stats after close must be coherent too.
	_ = svc.Stats()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, fut := range futs {
		res, err := fut.Wait(ctx)
		if err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("future %d resolved with %v", i, err)
		}
		if err == nil && len(res.Sig) == 0 {
			t.Fatalf("future %d resolved without a signature", i)
		}
	}
}

// TestDrainDeadlineAbandonsQueue checks Close stops waiting at the
// configured drain deadline: batches not yet started resolve ErrClosed
// instead of holding Close hostage to a deep queue on a slow backend.
func TestDrainDeadlineAbandonsQueue(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a deliberately slow real-CPU backend")
	}
	svc, err := New(
		WithParams(params.SPHINCSPlus128f),
		WithKey(testKey(t)),
		WithBackends(NewCPURefBackend(1)),
		WithMaxBatch(1),
		WithFlushDeadline(time.Millisecond),
		WithDrainDeadline(30*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}

	const n = 12
	futs := make([]*Future, n)
	for i := range futs {
		fut, err := svc.SubmitSign([]byte(fmt.Sprintf("drain-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = fut
	}

	start := time.Now()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	closeTook := time.Since(start)
	// A full drain of 12 single-message batches on one thread takes ~150ms+;
	// the deadline plus one in-flight batch must come in well under that.
	if closeTook > 5*time.Second {
		t.Fatalf("Close took %v despite the drain deadline", closeTook)
	}

	ctx := context.Background()
	var signed, abandoned int
	for i, fut := range futs {
		res, err := fut.Wait(ctx)
		switch {
		case err == nil:
			if len(res.Sig) == 0 {
				t.Fatalf("future %d resolved without a signature", i)
			}
			signed++
		case errors.Is(err, ErrClosed):
			abandoned++
		default:
			t.Fatalf("future %d resolved with %v", i, err)
		}
	}
	if abandoned == 0 {
		t.Fatalf("drain deadline abandoned nothing (signed=%d); queue drained fully before 30ms?", signed)
	}
	t.Logf("drain deadline: %d signed, %d abandoned, Close took %v", signed, abandoned, closeTook)
}

// TestAutoQueueLimit checks AutoQueueLimit derives the caps from backend
// capacity hints.
func TestAutoQueueLimit(t *testing.T) {
	svc := newTestService(t, WithQueueLimit(AutoQueueLimit), WithGlobalQueueLimit(AutoQueueLimit))
	defer svc.Close()
	st := svc.Stats()
	if st.Shards[0].QueueLimit <= 0 {
		t.Fatalf("auto shard queue limit = %d, want > 0", st.Shards[0].QueueLimit)
	}
	if st.GlobalQueueLimit < st.Shards[0].QueueLimit {
		t.Fatalf("global limit %d below shard limit %d", st.GlobalQueueLimit, st.Shards[0].QueueLimit)
	}
}

// TestShardKeyDerivationDeterministic pins the derived shard keys to the
// master key so restarts keep the key catalog stable.
func TestShardKeyDerivationDeterministic(t *testing.T) {
	a, err := deriveShardKey(testKey(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := deriveShardKey(testKey(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("shard key derivation is not deterministic")
	}
	c, err := deriveShardKey(testKey(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different shard indices derived the same key")
	}
}
