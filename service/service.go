// Package service turns the HERO-Sign batch engine into a concurrent
// signing service: a request coalescer collects individual sign / verify /
// keygen submissions into GPU-sized batches (size threshold or deadline,
// whichever fires first), a shard router spreads the flushed batches over
// per-backend worker pools with weighted least-outstanding-work dispatch,
// and bounded admission control sheds load once the queues fill. The
// structural model is hierarchical: pluggable backends below (simulated GPU
// devices, the real-CPU lane engine, later remote workers), per-backend
// pools above them, a shard router on top, a front end (HTTP/JSON, see
// Handler) above everything.
//
// Each shard owns its own keypair (derived deterministically from the
// service master key); the router maps key IDs to shards, so a single
// service signs under several key domains at once.
//
// Signatures produced through the service are byte-identical to the
// package-level Sign — coalescing, sharding and backend choice change
// scheduling, never bytes.
package service

import (
	"context"
	"crypto/rand"
	"fmt"
	"sync"
	"time"

	"herosign/internal/core"
	"herosign/internal/gpu/device"
	"herosign/internal/spx"
	"herosign/internal/spx/params"
)

// Aliases so service callers don't need the internal packages.
type (
	Params     = params.Params
	Device     = device.Device
	PublicKey  = spx.PublicKey
	PrivateKey = spx.PrivateKey
	Features   = core.Features
)

// Config collects the service construction parameters. Zero values select
// the defaults documented per field; use New with Options rather than
// filling this in directly.
type Config struct {
	Params *Params // default SPHINCS+-128f
	// Key is shard 0's keypair and the root of the per-shard key
	// derivation. Default: a fresh key from crypto/rand.
	Key *PrivateKey
	// Devices become one simulated-GPU backend per entry, built with the
	// engine knobs below. Backends are appended after them. With neither
	// set, the default is one RTX 4090 backend.
	Devices  []*Device
	Backends []Backend

	// Shards is the number of key domains; backends distribute round-robin
	// across them. Zero selects one shard (every backend serves one key).
	Shards int

	// QueueLimit caps each shard's admitted-but-unresolved messages
	// (coalescing, queued or executing). Zero is unbounded; AutoQueueLimit
	// derives the cap from the shard's backend capacities.
	QueueLimit int
	// GlobalQueueLimit caps the whole service the same way.
	GlobalQueueLimit int
	// ShedPolicy selects what an over-limit shard does with the overflow
	// (default RejectNewest).
	ShedPolicy ShedPolicy
	// TenantRate enables per-tenant fair queuing: each API key's admitted
	// messages are charged against its own token bucket refilling at
	// TenantRate messages/s, so a hot tenant exhausts its bucket instead of
	// the shard queue. Zero disables rate limiting; per-tenant accounting in
	// Stats stays on either way.
	TenantRate float64
	// TenantBurst caps each tenant's bucket (zero derives one second of
	// TenantRate, floored at 8).
	TenantBurst int
	// DrainDeadline bounds how long Close waits for queued batches. Zero
	// waits for a full drain; past the deadline, not-yet-started batches
	// resolve ErrClosed.
	DrainDeadline time.Duration

	// FleetSecret, when non-empty, requires every request at the HTTP
	// front end to carry a valid shared-secret authenticator (see
	// FleetAuth): the configuration a leaf node runs with so only its own
	// fleet's front end can reach it. Unauthenticated requests are
	// rejected 401 and counted in Stats.AuthRejected.
	FleetSecret string
	// DynamicMembership allows constructing the service with zero
	// backends and resizing it later through AddBackend/RemoveBackend —
	// the shape of a fleet front end whose leaves join and leave at
	// runtime. While no backend is routable, submissions fail with
	// ErrNoBackends (503 on the HTTP front end).
	DynamicMembership bool

	// MaxBatch is the size-triggered flush threshold. Zero aligns it with
	// the engine's SubBatch (64 by default) so a flushed batch maps onto
	// whole launch groups.
	MaxBatch int
	// FlushDeadline bounds how long a lone request waits before its batch
	// flushes anyway. Zero selects 2ms.
	FlushDeadline time.Duration

	Features Features // engine feature set; zero value is upgraded to the full HERO stack
	SubBatch int      // engine launch-group size; zero selects the engine default (64)
	Streams  int      // engine stream count; zero selects the engine default

	baselineFeatures bool // set by WithFeatures so a zero Features can mean "baseline"
}

// Option configures New.
type Option func(*Config)

// WithParams selects the SPHINCS+ parameter set.
func WithParams(p *Params) Option { return func(c *Config) { c.Params = p } }

// WithKey installs the service master key: shard 0 signs under it and
// further shard keys derive from it (default: freshly generated).
func WithKey(sk *PrivateKey) Option { return func(c *Config) { c.Key = sk } }

// WithDevices adds one simulated-GPU backend per device entry, configured
// with the service engine knobs. Repeating a device adds a second backend
// sharing its cached, tuned signer.
func WithDevices(devs ...*Device) Option {
	return func(c *Config) { c.Devices = append(c.Devices, devs...) }
}

// WithBackends registers pre-built backends (for example NewCPURefBackend,
// or a custom implementation) alongside any device backends.
func WithBackends(bs ...Backend) Option {
	return func(c *Config) { c.Backends = append(c.Backends, bs...) }
}

// WithShards splits the service into n key domains; backends distribute
// round-robin across them. n must not exceed the backend count.
func WithShards(n int) Option { return func(c *Config) { c.Shards = n } }

// WithQueueLimit bounds each shard's admitted-but-unresolved messages
// (AutoQueueLimit derives the bound from backend capacities; 0 means
// unbounded). Past the bound, submits fail with ErrOverloaded.
func WithQueueLimit(n int) Option { return func(c *Config) { c.QueueLimit = n } }

// WithGlobalQueueLimit bounds the whole service's admitted-but-unresolved
// messages the same way.
func WithGlobalQueueLimit(n int) Option { return func(c *Config) { c.GlobalQueueLimit = n } }

// WithShedPolicy selects the overload behavior (default RejectNewest).
func WithShedPolicy(p ShedPolicy) Option { return func(c *Config) { c.ShedPolicy = p } }

// WithTenantRate enables per-tenant fair queuing: each API key's admitted
// messages are charged against its own token bucket refilling at rate
// messages/s, so one hot tenant runs out of tokens (429, Scope "tenant")
// before it can fill a shard queue and starve its neighbors. Zero (the
// default) disables rate limiting; per-tenant accounting in Stats stays on
// either way.
func WithTenantRate(rate float64) Option { return func(c *Config) { c.TenantRate = rate } }

// WithTenantBurst caps each tenant's token bucket (default: one second of
// TenantRate, floored at 8). A single batch larger than its tenant's burst
// can never be admitted and fails with ErrBatchTooLarge.
func WithTenantBurst(n int) Option { return func(c *Config) { c.TenantBurst = n } }

// WithDrainDeadline bounds how long Close waits for queued batches before
// abandoning them (their futures resolve ErrClosed). Zero waits forever.
func WithDrainDeadline(d time.Duration) Option { return func(c *Config) { c.DrainDeadline = d } }

// WithFleetSecret requires fleet authentication on the HTTP front end:
// every request must carry a valid X-Herosign-Fleet-Auth header derived
// from the shared secret, or it is rejected 401 (counted in /v1/stats as
// auth_rejected). This is a leaf node's posture; a front end keeps its
// /v1/* public and protects only the membership endpoints.
func WithFleetSecret(secret string) Option { return func(c *Config) { c.FleetSecret = secret } }

// WithDynamicMembership lets the service start with zero backends and grow
// or shrink at runtime via AddBackend/RemoveBackend — the fleet front end
// whose leaves join and leave through the membership registry. While no
// backend is routable, submissions fail ErrNoBackends (503 over HTTP).
func WithDynamicMembership() Option { return func(c *Config) { c.DynamicMembership = true } }

// WithMaxBatch sets the size-triggered flush threshold.
func WithMaxBatch(n int) Option { return func(c *Config) { c.MaxBatch = n } }

// WithFlushDeadline sets the coalescing deadline.
func WithFlushDeadline(d time.Duration) Option { return func(c *Config) { c.FlushDeadline = d } }

// WithFeatures overrides the engine optimization set (default: the full
// HERO-Sign stack; pass core.Baseline()-equivalent zero Features for the
// TCAS-style baseline).
func WithFeatures(f Features) Option {
	return func(c *Config) { c.Features = f; c.baselineFeatures = true }
}

// WithSubBatch sets the engine launch-group granularity.
func WithSubBatch(n int) Option { return func(c *Config) { c.SubBatch = n } }

// WithStreams sets the engine stream count.
func WithStreams(n int) Option { return func(c *Config) { c.Streams = n } }

// shardBatchers are one shard's per-kind coalescers.
type shardBatchers struct {
	sign, verify, keygen *batcher
}

func (sb *shardBatchers) byKind(k Kind) *batcher {
	switch k {
	case KindSign:
		return sb.sign
	case KindVerify:
		return sb.verify
	default:
		return sb.keygen
	}
}

// Service is the concurrent request-coalescing signing service.
type Service struct {
	cfg      Config
	router   *router
	batchers []*shardBatchers // indexed by shard id
	tenants  *tenantRegistry
	auth     *FleetAuth // non-nil when FleetSecret is configured

	hookMu     sync.Mutex
	statsHooks []func(*Stats)

	start time.Time
}

// New builds a Service: it resolves defaults, builds (or reuses) one tuned
// signer per distinct device backend, derives the shard keys, starts the
// per-backend pools and the per-shard coalescers.
func New(opts ...Option) (*Service, error) {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.Params == nil {
		cfg.Params = params.SPHINCSPlus128f
	}
	if cfg.Key == nil {
		sk, err := spx.GenerateKey(cfg.Params)
		if err != nil {
			return nil, err
		}
		cfg.Key = sk
	}
	if cfg.Features == (Features{}) && !cfg.baselineFeatures {
		cfg.Features = core.AllFeatures()
	}

	backends := make([]Backend, 0, len(cfg.Devices)+len(cfg.Backends))
	engineCfg := core.Config{Features: cfg.Features, SubBatch: cfg.SubBatch, Streams: cfg.Streams}
	for _, d := range cfg.Devices {
		backends = append(backends, newDeviceBackend(d, engineCfg))
	}
	backends = append(backends, cfg.Backends...)
	if len(backends) == 0 && !cfg.DynamicMembership {
		d, err := device.ByName("RTX 4090")
		if err != nil {
			return nil, err
		}
		backends = append(backends, newDeviceBackend(d, engineCfg))
	}

	rt, err := newRouter(routerConfig{
		params: cfg.Params, key: cfg.Key, backends: backends,
		shards: cfg.Shards, queueLimit: cfg.QueueLimit, globalLimit: cfg.GlobalQueueLimit,
		policy: cfg.ShedPolicy, drain: cfg.DrainDeadline, dynamic: cfg.DynamicMembership,
	})
	if err != nil {
		return nil, err
	}
	if cfg.MaxBatch == 0 {
		// Align the flush threshold with the largest preferred batch in the
		// fleet (for device backends, the engine launch group) so a full
		// flushed batch maps onto whole execution units. Backends without a
		// hint fall back to the engine default.
		best := 0
		for _, p := range rt.pools {
			if h, ok := p.backend.(BatchHinter); ok {
				if n := h.PreferredBatch(); n > best {
					best = n
				}
			}
		}
		if best <= 0 {
			best = 64
		}
		cfg.MaxBatch = best
	}
	s := &Service{
		cfg: cfg, router: rt,
		tenants: newTenantRegistry(cfg.TenantRate, cfg.TenantBurst),
		start:   time.Now(),
	}
	if cfg.FleetSecret != "" {
		s.auth = NewFleetAuth(cfg.FleetSecret)
	}
	for _, sh := range rt.shards {
		sh := sh
		flush := func(kind Kind, reqs []*request) {
			if err := rt.dispatch(sh, &batchJob{kind: kind, reqs: reqs}); err != nil {
				for _, r := range reqs {
					r.resolve(Result{}, err)
				}
			}
		}
		s.batchers = append(s.batchers, &shardBatchers{
			sign:   newBatcher(KindSign, cfg.MaxBatch, cfg.FlushDeadline, flush),
			verify: newBatcher(KindVerify, cfg.MaxBatch, cfg.FlushDeadline, flush),
			keygen: newBatcher(KindKeyGen, cfg.MaxBatch, cfg.FlushDeadline, flush),
		})
	}
	return s, nil
}

// Params returns the service parameter set.
func (s *Service) Params() *Params { return s.cfg.Params }

// PublicKey returns shard 0's public key — the master key domain. Use
// Shards for the full key catalog.
func (s *Service) PublicKey() *PublicKey { return &s.router.shards[0].key.PublicKey }

// ShardInfo describes one key domain.
type ShardInfo struct {
	ID        int
	KeyID     string
	PublicKey *PublicKey
	Backends  []string
}

// Shards lists the service's key domains and the backends serving each.
func (s *Service) Shards() []ShardInfo {
	out := make([]ShardInfo, 0, len(s.router.shards))
	for _, sh := range s.router.shards {
		info := ShardInfo{ID: sh.id, KeyID: sh.keyID, PublicKey: &sh.key.PublicKey}
		for _, p := range sh.poolList() {
			info.Backends = append(info.Backends, p.backend.Name())
		}
		out = append(out, info)
	}
	return out
}

// AddBackend warms b against a shard key and adds it to the routing set of
// a running service — the admit half of dynamic fleet membership. The
// backend starts receiving flushed batches as soon as Warm succeeds; its
// Weight integrates into dispatch like any construction-time backend's.
func (s *Service) AddBackend(b Backend) error { return s.router.addBackend(b) }

// RemoveBackend retires b from a running service: it immediately stops
// receiving new batches, its queued batches drain (bounded by the drain
// deadline), and it is closed. Unknown backends return an error.
func (s *Service) RemoveBackend(b Backend) error { return s.router.removeBackend(b) }

// FleetAuth returns the service's fleet authenticator, nil unless
// WithFleetSecret configured one. Front-end composition code uses it to
// protect extra endpoints (the membership registry) with the same secret
// and replay cache.
func (s *Service) FleetAuth() *FleetAuth { return s.auth }

// AddStatsHook registers fn to run on every Stats snapshot just before it
// is returned — how composition layers (the membership registry, an
// external authenticator) fold their own counters and event logs into
// /v1/stats without the service importing them.
func (s *Service) AddStatsHook(fn func(*Stats)) {
	s.hookMu.Lock()
	s.statsHooks = append(s.statsHooks, fn)
	s.hookMu.Unlock()
}

// PublicKeyFor resolves a key ID to its shard's public key.
func (s *Service) PublicKeyFor(keyID string) (*PublicKey, error) {
	sh, ok := s.router.byKeyID[keyID]
	if !ok {
		return nil, ErrUnknownKey
	}
	return &sh.key.PublicKey, nil
}

// SubmitOpts carries the optional scheduling attributes of one submission.
// The zero value — no deadline, default tenant — behaves exactly like the
// pre-deadline API.
type SubmitOpts struct {
	// Deadline is the client's absolute completion deadline (zero = none).
	// Admission pre-rejects work whose estimated queue wait already exceeds
	// it (429, Scope "deadline") and an already-expired deadline fails
	// immediately with ErrDeadlineExceeded without consuming a queue slot;
	// admitted work flushes EDF and is dropped unexecuted if it expires in
	// the queue.
	Deadline time.Time
	// Tenant is the API key the work is charged to ("" = DefaultTenant).
	// With WithTenantRate configured, each tenant's admissions draw from its
	// own token bucket; per-tenant counters appear in Stats either way.
	Tenant string
}

// prepare stamps the request with opts' scheduling attributes.
func (s *Service) prepare(r *request, opts SubmitOpts) *request {
	r.deadline = opts.Deadline
	r.tenant = s.tenants.get(opts.Tenant)
	return r
}

// admit charges one message against the tenant's token bucket and the
// global and shard admission gates (applying the shed policy on overflow),
// after pre-rejecting work that cannot meet its deadline: an expired
// deadline fails with ErrDeadlineExceeded, and a deadline nearer than the
// shard's estimated queue wait fails 429 — cheaper than queuing work that
// would only be dropped later. On success the request carries a release
// hook that refunds the slots when its future resolves.
func (s *Service) admit(sh *shard, kind Kind, r *request) error {
	now := time.Now()
	t := r.tenant
	if !r.deadline.IsZero() {
		if !r.deadline.After(now) {
			t.rejectedDeadline.Add(1)
			return ErrDeadlineExceeded
		}
		if wait := sh.queueWait(); wait > 0 && now.Add(wait).After(r.deadline) {
			t.rejectedDeadline.Add(1)
			return &OverloadError{Scope: "deadline", RetryAfter: wait}
		}
	}
	if t.bucket != nil {
		if ok, wait := t.bucket.take(1, now); !ok {
			t.rejectedRate.Add(1)
			return &OverloadError{Scope: "tenant", Tenant: t.name, RetryAfter: wait}
		}
	}
	rt := s.router
	if !rt.global.tryAcquire(1) {
		if !(s.cfg.ShedPolicy == DropOldestDeadline && s.shedOne(sh, kind) && rt.global.tryAcquire(1)) {
			rt.rejectedGlobal.Add(1)
			t.rejectedOverload.Add(1)
			if t.bucket != nil {
				t.bucket.refund(1)
			}
			return &OverloadError{Scope: "global", RetryAfter: rt.globalRetryAfter()}
		}
	}
	if !sh.gate.tryAcquire(1) {
		if !(s.cfg.ShedPolicy == DropOldestDeadline && s.shedOne(sh, kind) && sh.gate.tryAcquire(1)) {
			rt.global.release(1)
			sh.rejected.Add(1)
			t.rejectedOverload.Add(1)
			if t.bucket != nil {
				t.bucket.refund(1)
			}
			return &OverloadError{Scope: "shard", RetryAfter: sh.retryAfter()}
		}
	}
	r.release = func() {
		sh.gate.release(1)
		rt.global.release(1)
	}
	r.enqueued = now
	t.queued.Add(1)
	t.admitted.Add(1)
	return nil
}

// shedOne evicts the still-coalescing request of the same kind with the
// nearest client deadline (oldest arrival when none carries one) from the
// shard, resolving it with ErrOverloaded; its release refunds the slots the
// caller is about to claim.
func (s *Service) shedOne(sh *shard, kind Kind) bool {
	old := s.batchers[sh.id].byKind(kind).evictNearestDeadline()
	if old == nil {
		return false
	}
	sh.shed.Add(1)
	if old.tenant != nil {
		old.tenant.shed.Add(1)
	}
	old.resolve(Result{}, &OverloadError{Scope: "shard", RetryAfter: sh.retryAfter()})
	return true
}

// submitTo admits r into the shard and hands it to the shard's coalescer.
func (s *Service) submitTo(sh *shard, kind Kind, r *request) error {
	if err := s.admit(sh, kind, r); err != nil {
		return err
	}
	if err := s.batchers[sh.id].byKind(kind).submit(r); err != nil {
		r.release()
		r.release = nil
		// Undo the tenant accounting admit charged: the request was never
		// queued, so resolve (which would drain it) will not run.
		r.tenant.queued.Add(-1)
		r.tenant.admitted.Add(-1)
		if r.tenant.bucket != nil {
			r.tenant.bucket.refund(1)
		}
		r.tenant = nil
		return err
	}
	return nil
}

// SubmitSign queues one message for coalesced signing on a weighted-routed
// shard and returns its future immediately.
func (s *Service) SubmitSign(msg []byte) (*Future, error) { return s.SubmitSignKey("", msg) }

// SubmitSignKey queues one message for signing under a specific key domain
// ("" routes to the least-loaded shard).
func (s *Service) SubmitSignKey(keyID string, msg []byte) (*Future, error) {
	return s.SubmitSignOpts(keyID, msg, SubmitOpts{})
}

// SubmitSignOpts is SubmitSignKey with scheduling attributes: a client
// deadline (EDF flush ordering, admission pre-rejection) and a tenant the
// work is charged to.
func (s *Service) SubmitSignOpts(keyID string, msg []byte, opts SubmitOpts) (*Future, error) {
	sh, err := s.router.shardFor(keyID)
	if err != nil {
		return nil, err
	}
	r := s.prepare(&request{msg: append([]byte(nil), msg...), fut: newFuture()}, opts)
	if err := s.submitTo(sh, KindSign, r); err != nil {
		return nil, err
	}
	return r.fut, nil
}

// SubmitSignBatch queues a set of messages for signing under one key
// domain ("" routes to the least-loaded shard) with all-or-nothing
// admission: either every message is admitted (one future each) or none is
// and ErrOverloaded is returned — a rejected batch does no signing work. A
// batch that could never fit the admission caps even on an idle service
// fails with ErrBatchTooLarge instead (retrying cannot help; split it).
// Admitted members are exempt from drop-oldest-deadline shedding, so
// competing traffic cannot waste the batch by evicting one of them.
func (s *Service) SubmitSignBatch(keyID string, msgs [][]byte) ([]*Future, error) {
	return s.SubmitSignBatchOpts(keyID, msgs, nil)
}

// SubmitSignBatchOpts is SubmitSignBatch with per-member scheduling
// attributes: opts is nil (all defaults) or exactly one entry per message.
// Tenant charging is grouped and all-or-nothing like the slot admission —
// either every member's tenant has tokens or the whole batch is rejected
// with nothing charged; a member count above its tenant's burst can never
// fit and fails ErrBatchTooLarge. Per-member deadlines do not pre-reject
// the batch (all-or-nothing would reject every member for one stale
// deadline); a member whose deadline expires in the queue resolves
// ErrDeadlineExceeded individually before any signing work is spent on it.
func (s *Service) SubmitSignBatchOpts(keyID string, msgs [][]byte, opts []SubmitOpts) ([]*Future, error) {
	sh, err := s.router.shardFor(keyID)
	if err != nil {
		return nil, err
	}
	if len(msgs) == 0 {
		return nil, nil
	}
	members, undoBatch, err := s.admitBatch(sh, len(msgs), opts, "messages")
	if err != nil {
		return nil, err
	}
	futs := make([]*Future, 0, len(msgs))
	b := s.batchers[sh.id].byKind(KindSign)
	for i, msg := range msgs {
		r := members[i]
		r.msg = append([]byte(nil), msg...)
		if err := b.submit(r); err != nil {
			// Closed mid-batch: refund the slots and tenant accounting of the
			// never-submitted tail; already-submitted futures resolve through
			// the drain.
			r.release = nil
			r.tenant = nil
			undoBatch(i)
			return nil, err
		}
		futs = append(futs, r.fut)
	}
	return futs, nil
}

// admitBatch performs all-or-nothing admission of an n-member batch into
// the shard: the capacity-fit check, grouped per-tenant token charging and
// the global+shard gate acquisition. On success it returns one prepared
// pinned request per member (deadline/tenant/release stamped; msg/sig left
// for the caller) plus an undo hook that refunds members [from, n) after a
// mid-submit failure. On rejection nothing stays charged.
func (s *Service) admitBatch(sh *shard, n int, opts []SubmitOpts, unit string) ([]*request, func(from int), error) {
	if opts != nil && len(opts) != n {
		return nil, nil, fmt.Errorf("service: %d %s but %d submit options", n, unit, len(opts))
	}
	rt := s.router
	k := int64(n)
	shardCap, globalCap := sh.gate.cap(), rt.global.cap()
	if (shardCap > 0 && k > shardCap) || (globalCap > 0 && k > globalCap) {
		return nil, nil, fmt.Errorf("%w: %d %s against caps shard=%d global=%d",
			ErrBatchTooLarge, k, unit, shardCap, globalCap)
	}

	// Group the members by tenant for all-or-nothing bucket charging.
	perMember := make([]*tenantState, n)
	var states []*tenantState
	var counts []int64
	index := make(map[*tenantState]int)
	for i := 0; i < n; i++ {
		var name string
		if opts != nil {
			name = opts[i].Tenant
		}
		t := s.tenants.get(name)
		perMember[i] = t
		j, ok := index[t]
		if !ok {
			j = len(states)
			index[t] = j
			states = append(states, t)
			counts = append(counts, 0)
		}
		counts[j]++
	}
	now := time.Now()
	for j, t := range states {
		if t.bucket != nil && float64(counts[j]) > t.bucket.burst {
			return nil, nil, fmt.Errorf("%w: %d %s against tenant %q burst %d",
				ErrBatchTooLarge, counts[j], unit, t.name, int(t.bucket.burst))
		}
	}
	if t, wait := chargeCounts(states, counts, now); t != nil {
		t.rejectedRate.Add(1)
		return nil, nil, &OverloadError{Scope: "tenant", Tenant: t.name, RetryAfter: wait}
	}
	if !rt.global.tryAcquire(k) {
		refundCounts(states, counts)
		rt.rejectedGlobal.Add(1)
		for _, t := range states {
			t.rejectedOverload.Add(1)
		}
		return nil, nil, &OverloadError{Scope: "global", RetryAfter: rt.globalRetryAfter()}
	}
	if !sh.gate.tryAcquire(k) {
		rt.global.release(k)
		refundCounts(states, counts)
		sh.rejected.Add(1)
		for _, t := range states {
			t.rejectedOverload.Add(1)
		}
		return nil, nil, &OverloadError{Scope: "shard", RetryAfter: sh.retryAfter()}
	}

	release := func() {
		sh.gate.release(1)
		rt.global.release(1)
	}
	members := make([]*request, n)
	for i := 0; i < n; i++ {
		t := perMember[i]
		t.queued.Add(1)
		t.admitted.Add(1)
		r := &request{fut: newFuture(), release: release, pinned: true, enqueued: now, tenant: t}
		if opts != nil {
			r.deadline = opts[i].Deadline
		}
		members[i] = r
	}
	undo := func(from int) {
		for j := from; j < n; j++ {
			release()
			t := perMember[j]
			t.queued.Add(-1)
			t.admitted.Add(-1)
			if t.bucket != nil {
				t.bucket.refund(1)
			}
		}
	}
	return members, undo, nil
}

// SubmitVerify queues one (message, signature) pair for coalesced
// verification. With a single shard the pair checks against its key; with
// several shards the verdict is valid when any shard's key validates it —
// pass the signing key ID to SubmitVerifyKey to check one domain (and spend
// one admission slot instead of one per shard). An invalid verdict is only
// returned when every shard actually checked the pair; if any shard could
// not be consulted (overload, shutdown) and no shard validated it, the
// future resolves with that error instead of a false negative.
func (s *Service) SubmitVerify(msg, sig []byte) (*Future, error) {
	return s.SubmitVerifyOpts(msg, sig, SubmitOpts{})
}

// SubmitVerifyOpts is SubmitVerify with scheduling attributes. The
// multi-shard fan-out admits one request per shard consulted, so a tenant
// with rate limiting configured is charged one token per shard — name the
// key domain via SubmitVerifyKeyOpts to spend exactly one.
func (s *Service) SubmitVerifyOpts(msg, sig []byte, opts SubmitOpts) (*Future, error) {
	shards := s.router.shards
	// Copy once; the per-shard requests share the buffers (never mutated).
	msg = append([]byte(nil), msg...)
	sig = append([]byte(nil), sig...)
	if len(shards) == 1 {
		return s.submitVerifyShared(shards[0], msg, sig, opts)
	}
	subs := make([]*Future, 0, len(shards))
	var submitErr error
	for _, sh := range shards {
		fut, err := s.submitVerifyShared(sh, msg, sig, opts)
		if err != nil {
			if submitErr == nil {
				submitErr = err
			}
			continue
		}
		subs = append(subs, fut)
	}
	if len(subs) == 0 {
		return nil, submitErr
	}
	master := newFuture()
	go func() {
		var lastRes Result
		var waitErr error
		sawVerdict := false
		for _, fut := range subs {
			<-fut.Done()
			switch {
			case fut.err == nil && fut.res.Valid:
				master.resolve(fut.res, nil)
				return
			case fut.err == nil:
				lastRes, sawVerdict = fut.res, true
			case waitErr == nil:
				waitErr = fut.err
			}
		}
		switch {
		case submitErr != nil:
			master.resolve(Result{}, submitErr) // a shard was never consulted
		case waitErr != nil:
			master.resolve(Result{}, waitErr) // a consulted shard failed
		case sawVerdict:
			master.resolve(lastRes, nil) // every shard says invalid
		default:
			master.resolve(Result{}, ErrClosed)
		}
	}()
	return master, nil
}

// SubmitVerifyKey queues one (message, signature) pair for verification
// against a specific key domain ("" falls back to SubmitVerify semantics).
func (s *Service) SubmitVerifyKey(keyID string, msg, sig []byte) (*Future, error) {
	return s.SubmitVerifyKeyOpts(keyID, msg, sig, SubmitOpts{})
}

// SubmitVerifyKeyOpts is SubmitVerifyKey with scheduling attributes.
func (s *Service) SubmitVerifyKeyOpts(keyID string, msg, sig []byte, opts SubmitOpts) (*Future, error) {
	if keyID == "" {
		return s.SubmitVerifyOpts(msg, sig, opts)
	}
	sh, err := s.router.shardFor(keyID)
	if err != nil {
		return nil, err
	}
	return s.submitVerifyShared(sh,
		append([]byte(nil), msg...), append([]byte(nil), sig...), opts)
}

// SubmitVerifyBatchKey queues a set of (message, signature) pairs for
// verification against one key domain ("" routes to the least-loaded
// shard) with the same all-or-nothing admission as SubmitSignBatch: either
// every pair is admitted (one future each) or none is and ErrOverloaded is
// returned — a rejected batch does no verification work and a retry after
// Retry-After is cheap. A batch that could never fit the admission caps
// fails with ErrBatchTooLarge (split it). Admitted members are pinned
// against drop-oldest-deadline shedding. Keeping the pairs together also
// lets the backend lane-batch their hash work across signatures.
func (s *Service) SubmitVerifyBatchKey(keyID string, msgs, sigs [][]byte) ([]*Future, error) {
	return s.SubmitVerifyBatchKeyOpts(keyID, msgs, sigs, nil)
}

// SubmitVerifyBatchKeyOpts is SubmitVerifyBatchKey with per-member
// scheduling attributes (nil, or one entry per pair), with the same
// all-or-nothing tenant charging and per-member deadline semantics as
// SubmitSignBatchOpts.
func (s *Service) SubmitVerifyBatchKeyOpts(keyID string, msgs, sigs [][]byte, opts []SubmitOpts) ([]*Future, error) {
	if len(msgs) != len(sigs) {
		return nil, fmt.Errorf("service: %d messages but %d signatures", len(msgs), len(sigs))
	}
	sh, err := s.router.shardFor(keyID)
	if err != nil {
		return nil, err
	}
	if len(msgs) == 0 {
		return nil, nil
	}
	members, undoBatch, err := s.admitBatch(sh, len(msgs), opts, "pairs")
	if err != nil {
		return nil, err
	}
	futs := make([]*Future, 0, len(msgs))
	b := s.batchers[sh.id].byKind(KindVerify)
	for i := range msgs {
		r := members[i]
		r.msg = append([]byte(nil), msgs[i]...)
		r.sig = append([]byte(nil), sigs[i]...)
		if err := b.submit(r); err != nil {
			// Closed mid-batch: refund the slots and tenant accounting of the
			// never-submitted tail; already-submitted futures resolve through
			// the drain.
			r.release = nil
			r.tenant = nil
			undoBatch(i)
			return nil, err
		}
		futs = append(futs, r.fut)
	}
	return futs, nil
}

// submitVerifyShared submits without copying: the caller guarantees the
// buffers stay untouched until the future resolves.
func (s *Service) submitVerifyShared(sh *shard, msg, sig []byte, opts SubmitOpts) (*Future, error) {
	r := s.prepare(&request{msg: msg, sig: sig, fut: newFuture()}, opts)
	if err := s.submitTo(sh, KindVerify, r); err != nil {
		return nil, err
	}
	return r.fut, nil
}

// SubmitKeyGen queues one key derivation on the least-loaded shard (key
// generation is independent of the shard's signing key). With a nil seed
// triple, fresh seeds are drawn from crypto/rand.
func (s *Service) SubmitKeyGen(seed *core.SeedTriple) (*Future, error) {
	return s.SubmitKeyGenOpts(seed, SubmitOpts{})
}

// SubmitKeyGenOpts is SubmitKeyGen with scheduling attributes.
func (s *Service) SubmitKeyGenOpts(seed *core.SeedTriple, opts SubmitOpts) (*Future, error) {
	var tr core.SeedTriple
	if seed != nil {
		// Copy the components: the future resolves asynchronously, and a
		// caller may reuse (or zero) its seed buffers after Submit returns.
		tr = core.SeedTriple{
			SKSeed: append([]byte(nil), seed.SKSeed...),
			SKPRF:  append([]byte(nil), seed.SKPRF...),
			PKSeed: append([]byte(nil), seed.PKSeed...),
		}
	} else {
		n := s.cfg.Params.N
		buf := make([]byte, 3*n)
		if _, err := rand.Read(buf); err != nil {
			return nil, err
		}
		tr = core.SeedTriple{SKSeed: buf[:n], SKPRF: buf[n : 2*n], PKSeed: buf[2*n:]}
	}
	r := s.prepare(&request{seed: tr, fut: newFuture()}, opts)
	if err := s.submitTo(s.router.route(), KindKeyGen, r); err != nil {
		return nil, err
	}
	return r.fut, nil
}

// Sign submits msg and waits for the coalesced signature.
func (s *Service) Sign(ctx context.Context, msg []byte) ([]byte, error) {
	fut, err := s.SubmitSign(msg)
	if err != nil {
		return nil, err
	}
	res, err := fut.Wait(ctx)
	if err != nil {
		return nil, err
	}
	return res.Sig, nil
}

// Verify submits (msg, sig) and waits for the verdict.
func (s *Service) Verify(ctx context.Context, msg, sig []byte) (bool, error) {
	fut, err := s.SubmitVerify(msg, sig)
	if err != nil {
		return false, err
	}
	res, err := fut.Wait(ctx)
	if err != nil {
		return false, err
	}
	return res.Valid, nil
}

// KeyGen derives one fresh key pair on the fleet.
func (s *Service) KeyGen(ctx context.Context) (*PrivateKey, error) {
	fut, err := s.SubmitKeyGen(nil)
	if err != nil {
		return nil, err
	}
	res, err := fut.Wait(ctx)
	if err != nil {
		return nil, err
	}
	return res.Key, nil
}

// Close flushes pending requests, drains the router and waits for every
// in-flight future to resolve — or, with a drain deadline configured,
// abandons not-yet-started batches once it expires (their futures resolve
// ErrClosed). Submits after Close return ErrClosed.
func (s *Service) Close() error {
	for _, sb := range s.batchers {
		sb.sign.close()
		sb.verify.close()
		sb.keygen.close()
	}
	// Batches flushed by close are already queued; the router drains them
	// before its pools exit.
	s.router.close()
	return nil
}
