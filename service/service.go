// Package service turns the HERO-Sign batch engine into a concurrent
// signing service: a request coalescer collects individual sign / verify /
// keygen submissions into GPU-sized batches (size threshold or deadline,
// whichever fires first), and a fleet scheduler spreads the flushed batches
// over per-device workers with least-outstanding-work dispatch. The
// structural model is hierarchical: per-device workers below, a fleet-level
// dispatcher above, a front end (HTTP/JSON, see Handler) on top.
//
// Signatures produced through the service are byte-identical to the
// package-level Sign — coalescing changes scheduling, never bytes.
package service

import (
	"context"
	"crypto/rand"
	"time"

	"herosign/internal/core"
	"herosign/internal/gpu/device"
	"herosign/internal/spx"
	"herosign/internal/spx/params"
)

// Aliases so service callers don't need the internal packages.
type (
	Params     = params.Params
	Device     = device.Device
	PublicKey  = spx.PublicKey
	PrivateKey = spx.PrivateKey
	Features   = core.Features
)

// Config collects the service construction parameters. Zero values select
// the defaults documented per field; use New with Options rather than
// filling this in directly.
type Config struct {
	Params  *Params     // default SPHINCS+-128f
	Key     *PrivateKey // default: a fresh key from crypto/rand
	Devices []*Device   // one worker per entry; default one RTX 4090

	// MaxBatch is the size-triggered flush threshold. Zero aligns it with
	// the engine's SubBatch (64 by default) so a flushed batch maps onto
	// whole launch groups.
	MaxBatch int
	// FlushDeadline bounds how long a lone request waits before its batch
	// flushes anyway. Zero selects 2ms.
	FlushDeadline time.Duration

	Features Features // engine feature set; zero value is upgraded to the full HERO stack
	SubBatch int      // engine launch-group size; zero selects the engine default (64)
	Streams  int      // engine stream count; zero selects the engine default

	baselineFeatures bool // set by WithFeatures so a zero Features can mean "baseline"
}

// Option configures New.
type Option func(*Config)

// WithParams selects the SPHINCS+ parameter set.
func WithParams(p *Params) Option { return func(c *Config) { c.Params = p } }

// WithKey installs the service signing key (default: freshly generated).
func WithKey(sk *PrivateKey) Option { return func(c *Config) { c.Key = sk } }

// WithDevices sets the fleet: one worker per device entry. Repeating a
// device adds a second worker sharing its cached, tuned signer.
func WithDevices(devs ...*Device) Option {
	return func(c *Config) { c.Devices = append([]*Device(nil), devs...) }
}

// WithMaxBatch sets the size-triggered flush threshold.
func WithMaxBatch(n int) Option { return func(c *Config) { c.MaxBatch = n } }

// WithFlushDeadline sets the coalescing deadline.
func WithFlushDeadline(d time.Duration) Option { return func(c *Config) { c.FlushDeadline = d } }

// WithFeatures overrides the engine optimization set (default: the full
// HERO-Sign stack; pass core.Baseline()-equivalent zero Features for the
// TCAS-style baseline).
func WithFeatures(f Features) Option {
	return func(c *Config) { c.Features = f; c.baselineFeatures = true }
}

// WithSubBatch sets the engine launch-group granularity.
func WithSubBatch(n int) Option { return func(c *Config) { c.SubBatch = n } }

// WithStreams sets the engine stream count.
func WithStreams(n int) Option { return func(c *Config) { c.Streams = n } }

// Service is the concurrent request-coalescing signing service.
type Service struct {
	cfg    Config
	fleet  *Fleet
	sign   *batcher
	verify *batcher
	keygen *batcher

	start time.Time
}

// New builds a Service: it resolves defaults, builds (or reuses) one tuned
// signer per distinct device, starts the per-device workers and the three
// per-kind coalescers.
func New(opts ...Option) (*Service, error) {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.Params == nil {
		cfg.Params = params.SPHINCSPlus128f
	}
	if cfg.Key == nil {
		sk, err := spx.GenerateKey(cfg.Params)
		if err != nil {
			return nil, err
		}
		cfg.Key = sk
	}
	if len(cfg.Devices) == 0 {
		d, err := device.ByName("RTX 4090")
		if err != nil {
			return nil, err
		}
		cfg.Devices = []*Device{d}
	}
	if cfg.Features == (Features{}) && !cfg.baselineFeatures {
		cfg.Features = core.AllFeatures()
	}

	fleet, err := NewFleet(cfg.Params, cfg.Key, cfg.Devices, core.Config{
		Features: cfg.Features, SubBatch: cfg.SubBatch, Streams: cfg.Streams,
	})
	if err != nil {
		return nil, err
	}
	if cfg.MaxBatch == 0 {
		// Align the flush threshold with the engine's (defaulted) SubBatch
		// so a full flushed batch maps onto whole launch groups.
		cfg.MaxBatch = fleet.workers[0].signer.SubBatch()
	}
	s := &Service{cfg: cfg, fleet: fleet, start: time.Now()}
	flush := func(kind Kind, reqs []*request) {
		if err := fleet.Dispatch(&batchJob{kind: kind, reqs: reqs}); err != nil {
			for _, r := range reqs {
				r.fut.resolve(Result{}, err)
			}
		}
	}
	s.sign = newBatcher(KindSign, cfg.MaxBatch, cfg.FlushDeadline, flush)
	s.verify = newBatcher(KindVerify, cfg.MaxBatch, cfg.FlushDeadline, flush)
	s.keygen = newBatcher(KindKeyGen, cfg.MaxBatch, cfg.FlushDeadline, flush)
	return s, nil
}

// Params returns the service parameter set.
func (s *Service) Params() *Params { return s.cfg.Params }

// PublicKey returns the service signing public key.
func (s *Service) PublicKey() *PublicKey { return s.fleet.PublicKey() }

// SubmitSign queues one message for coalesced signing and returns its
// future immediately.
func (s *Service) SubmitSign(msg []byte) (*Future, error) {
	r := &request{msg: append([]byte(nil), msg...), fut: newFuture()}
	if err := s.sign.submit(r); err != nil {
		return nil, err
	}
	return r.fut, nil
}

// SubmitVerify queues one (message, signature) pair for coalesced
// verification.
func (s *Service) SubmitVerify(msg, sig []byte) (*Future, error) {
	r := &request{
		msg: append([]byte(nil), msg...),
		sig: append([]byte(nil), sig...),
		fut: newFuture(),
	}
	if err := s.verify.submit(r); err != nil {
		return nil, err
	}
	return r.fut, nil
}

// SubmitKeyGen queues one key derivation. With a nil seed triple, fresh
// seeds are drawn from crypto/rand.
func (s *Service) SubmitKeyGen(seed *core.SeedTriple) (*Future, error) {
	var tr core.SeedTriple
	if seed != nil {
		// Copy the components: the future resolves asynchronously, and a
		// caller may reuse (or zero) its seed buffers after Submit returns.
		tr = core.SeedTriple{
			SKSeed: append([]byte(nil), seed.SKSeed...),
			SKPRF:  append([]byte(nil), seed.SKPRF...),
			PKSeed: append([]byte(nil), seed.PKSeed...),
		}
	} else {
		n := s.cfg.Params.N
		buf := make([]byte, 3*n)
		if _, err := rand.Read(buf); err != nil {
			return nil, err
		}
		tr = core.SeedTriple{SKSeed: buf[:n], SKPRF: buf[n : 2*n], PKSeed: buf[2*n:]}
	}
	r := &request{seed: tr, fut: newFuture()}
	if err := s.keygen.submit(r); err != nil {
		return nil, err
	}
	return r.fut, nil
}

// Sign submits msg and waits for the coalesced signature.
func (s *Service) Sign(ctx context.Context, msg []byte) ([]byte, error) {
	fut, err := s.SubmitSign(msg)
	if err != nil {
		return nil, err
	}
	res, err := fut.Wait(ctx)
	if err != nil {
		return nil, err
	}
	return res.Sig, nil
}

// Verify submits (msg, sig) and waits for the verdict.
func (s *Service) Verify(ctx context.Context, msg, sig []byte) (bool, error) {
	fut, err := s.SubmitVerify(msg, sig)
	if err != nil {
		return false, err
	}
	res, err := fut.Wait(ctx)
	if err != nil {
		return false, err
	}
	return res.Valid, nil
}

// KeyGen derives one fresh key pair on the fleet.
func (s *Service) KeyGen(ctx context.Context) (*PrivateKey, error) {
	fut, err := s.SubmitKeyGen(nil)
	if err != nil {
		return nil, err
	}
	res, err := fut.Wait(ctx)
	if err != nil {
		return nil, err
	}
	return res.Key, nil
}

// Close flushes pending requests, drains the fleet and waits for every
// in-flight future to resolve. Submits after Close return ErrClosed.
func (s *Service) Close() error {
	s.sign.close()
	s.verify.close()
	s.keygen.close()
	// Batches flushed by close are already queued; the fleet drains them
	// before its workers exit.
	s.fleet.Close()
	return nil
}
