package service

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTenant is the accounting bucket for requests that name no API key
// (no X-API-Key header, empty SubmitOpts.Tenant).
const DefaultTenant = "default"

// maxTenants bounds the tenant registry so an attacker spraying random API
// keys cannot grow service memory without bound; keys beyond the cap share
// one catch-all bucket (they are still rate-limited, just jointly).
const maxTenants = 4096

// overflowTenant is the shared catch-all past maxTenants.
const overflowTenant = "!overflow"

// tenantBucket is a token bucket: rate tokens/s refill against a burst
// cap, starting full. take is all-or-nothing and reports how long until
// the requested tokens exist when it fails — the honest Retry-After.
type tenantBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTenantBucket(rate, burst float64, now time.Time) *tenantBucket {
	return &tenantBucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// take removes n tokens if available; otherwise it reports the wait until
// the deficit refills.
func (b *tenantBucket) take(n float64, now time.Time) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	wait := time.Duration((n - b.tokens) / b.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// refund returns tokens taken for an admission that then failed a later
// gate, so a full queue does not also charge the tenant's rate.
func (b *tenantBucket) refund(n float64) {
	b.mu.Lock()
	b.tokens += n
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// tenantState is one API key's accounting: a token bucket (nil when
// per-tenant rate limiting is off) plus the counters surfaced per tenant
// in /v1/stats.
type tenantState struct {
	name   string
	bucket *tenantBucket

	queued   atomic.Int64 // admitted-but-unresolved messages right now
	admitted atomic.Int64 // messages ever admitted
	done     atomic.Int64 // messages resolved without error

	rejectedOverload atomic.Int64 // gate-full rejections (shard or global)
	rejectedRate     atomic.Int64 // token-bucket rejections
	rejectedDeadline atomic.Int64 // deadline pre-rejections at admission
	expired          atomic.Int64 // admitted work dropped once its deadline passed
	shed             atomic.Int64 // evictions by drop-oldest-deadline

	latSumUs atomic.Int64 // sum over successfully completed messages
	latMaxUs atomic.Int64
}

// complete folds one resolved request into the tenant's counters. Called
// from request.resolve for every admitted request, success or not.
func (t *tenantState) complete(err error, lat time.Duration) {
	t.queued.Add(-1)
	switch {
	case err == nil:
		t.done.Add(1)
		us := lat.Microseconds()
		t.latSumUs.Add(us)
		for {
			cur := t.latMaxUs.Load()
			if us <= cur || t.latMaxUs.CompareAndSwap(cur, us) {
				break
			}
		}
	case IsDeadlineExceeded(err):
		t.expired.Add(1)
	}
}

// tenantRegistry maps API keys to their accounting state, creating buckets
// lazily with the service's rate/burst configuration.
type tenantRegistry struct {
	rate  float64
	burst float64

	mu sync.Mutex
	m  map[string]*tenantState
}

func newTenantRegistry(rate float64, burst int) *tenantRegistry {
	b := float64(burst)
	if rate > 0 && b <= 0 {
		// Default burst: one second of rate, floored so a tenant can always
		// get at least a small batch through after an idle period.
		b = rate
		if b < 8 {
			b = 8
		}
	}
	return &tenantRegistry{rate: rate, burst: b, m: make(map[string]*tenantState)}
}

// get returns (creating if needed) the state for an API key. The empty key
// is the default tenant; keys past the registry cap share one catch-all.
func (tr *tenantRegistry) get(name string) *tenantState {
	if name == "" {
		name = DefaultTenant
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if t, ok := tr.m[name]; ok {
		return t
	}
	if len(tr.m) >= maxTenants {
		if t, ok := tr.m[overflowTenant]; ok {
			return t
		}
		name = overflowTenant
	}
	t := &tenantState{name: name}
	if tr.rate > 0 {
		t.bucket = newTenantBucket(tr.rate, tr.burst, time.Now())
	}
	tr.m[name] = t
	return t
}

// chargeCounts takes count tokens from each tenant's bucket
// all-or-nothing: on any failure everything already taken is refunded and
// the failing tenant plus its wait estimate are returned. Tenants without
// buckets (rate limiting off) always pass.
func chargeCounts(states []*tenantState, counts []int64, now time.Time) (*tenantState, time.Duration) {
	for i, t := range states {
		if t.bucket == nil {
			continue
		}
		ok, wait := t.bucket.take(float64(counts[i]), now)
		if !ok {
			for j := 0; j < i; j++ {
				if states[j].bucket != nil {
					states[j].bucket.refund(float64(counts[j]))
				}
			}
			return t, wait
		}
	}
	return nil, 0
}

// refundCounts undoes chargeCounts after a later admission gate rejected.
func refundCounts(states []*tenantState, counts []int64) {
	for i, t := range states {
		if t.bucket != nil {
			t.bucket.refund(float64(counts[i]))
		}
	}
}

// TenantStats is one API key's accounting snapshot in /v1/stats.
type TenantStats struct {
	Tenant string `json:"tenant"`

	// Queued is the tenant's admitted-but-unresolved messages right now;
	// Admitted and Done are lifetime counters.
	Queued   int64 `json:"queued"`
	Admitted int64 `json:"admitted"`
	Done     int64 `json:"done"`

	// RejectedOverload counts gate-full 429s, RejectedRate token-bucket
	// 429s, RejectedDeadline deadline pre-rejections; Expired is admitted
	// work dropped unexecuted once its deadline passed, and Shed counts
	// drop-oldest-deadline evictions.
	RejectedOverload int64 `json:"rejected_overload"`
	RejectedRate     int64 `json:"rejected_rate"`
	RejectedDeadline int64 `json:"rejected_deadline"`
	Expired          int64 `json:"expired"`
	Shed             int64 `json:"shed"`

	// AvgLatencyMs / MaxLatencyMs cover successfully completed messages,
	// submit to resolve.
	AvgLatencyMs float64 `json:"avg_latency_ms"`
	MaxLatencyMs float64 `json:"max_latency_ms"`
}

// snapshot lists every tenant's counters sorted by name.
func (tr *tenantRegistry) snapshot() []TenantStats {
	tr.mu.Lock()
	states := make([]*tenantState, 0, len(tr.m))
	for _, t := range tr.m {
		states = append(states, t)
	}
	tr.mu.Unlock()
	sort.Slice(states, func(i, j int) bool { return states[i].name < states[j].name })
	out := make([]TenantStats, 0, len(states))
	for _, t := range states {
		ts := TenantStats{
			Tenant:           t.name,
			Queued:           t.queued.Load(),
			Admitted:         t.admitted.Load(),
			Done:             t.done.Load(),
			RejectedOverload: t.rejectedOverload.Load(),
			RejectedRate:     t.rejectedRate.Load(),
			RejectedDeadline: t.rejectedDeadline.Load(),
			Expired:          t.expired.Load(),
			Shed:             t.shed.Load(),
			MaxLatencyMs:     float64(t.latMaxUs.Load()) / 1e3,
		}
		if ts.Done > 0 {
			ts.AvgLatencyMs = float64(t.latSumUs.Load()) / float64(ts.Done) / 1e3
		}
		out = append(out, ts)
	}
	return out
}
