package service

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collectFlush records flushed batches for assertions.
type collectFlush struct {
	mu      sync.Mutex
	batches [][]*request
}

func (c *collectFlush) fn(kind Kind, reqs []*request) {
	c.mu.Lock()
	c.batches = append(c.batches, reqs)
	c.mu.Unlock()
	for _, r := range reqs {
		r.fut.resolve(Result{Batch: len(reqs)}, nil)
	}
}

func (c *collectFlush) snapshot() [][]*request {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([][]*request(nil), c.batches...)
}

func newReq() *request { return &request{msg: []byte("m"), fut: newFuture()} }

func TestBatcherDeadlineFlushSingleRequest(t *testing.T) {
	var c collectFlush
	b := newBatcher(KindSign, 64, 5*time.Millisecond, c.fn)
	r := newReq()
	if err := b.submit(r); err != nil {
		t.Fatal(err)
	}
	select {
	case <-r.fut.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("future did not resolve from the deadline flush")
	}
	got := c.snapshot()
	if len(got) != 1 || len(got[0]) != 1 {
		t.Fatalf("want one flush of one request, got %d flushes", len(got))
	}
	if r.fut.res.Batch != 1 {
		t.Fatalf("batch size = %d, want 1", r.fut.res.Batch)
	}
}

func TestBatcherSizeFlushBeatsTimer(t *testing.T) {
	var c collectFlush
	// Long deadline: only the size threshold can flush within the test.
	b := newBatcher(KindSign, 4, 250*time.Millisecond, c.fn)
	reqs := make([]*request, 4)
	for i := range reqs {
		reqs[i] = newReq()
		if err := b.submit(reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Size-triggered flush is synchronous with the 4th submit.
	got := c.snapshot()
	if len(got) != 1 || len(got[0]) != 4 {
		t.Fatalf("want one size-triggered flush of 4, got %v flushes", len(got))
	}
	// The armed timer must have been cancelled or become a stale no-op:
	// no second flush after the deadline passes.
	time.Sleep(350 * time.Millisecond)
	if got := c.snapshot(); len(got) != 1 {
		t.Fatalf("stale timer double-flushed: %d flushes", len(got))
	}
	if b.depth() != 0 {
		t.Fatalf("depth = %d after flush, want 0", b.depth())
	}
}

// TestBatcherFlushRace hammers a tiny batcher with concurrent submitters
// while the deadline timer races the size trigger; every future must
// resolve exactly once and batches must never exceed maxBatch. Run with
// -race to exercise the locking.
func TestBatcherFlushRace(t *testing.T) {
	var flushed atomic.Int64
	var maxSeen atomic.Int64
	flush := func(kind Kind, reqs []*request) {
		flushed.Add(int64(len(reqs)))
		if n := int64(len(reqs)); n > maxSeen.Load() {
			maxSeen.Store(n)
		}
		for _, r := range reqs {
			r.fut.resolve(Result{}, nil)
		}
	}
	b := newBatcher(KindSign, 3, 100*time.Microsecond, flush)
	const goroutines, per = 8, 50
	var wg sync.WaitGroup
	futs := make(chan *Future, goroutines*per)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r := newReq()
				if err := b.submit(r); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				futs <- r.fut
				if i%7 == 0 {
					time.Sleep(200 * time.Microsecond) // let the timer win sometimes
				}
			}
		}()
	}
	wg.Wait()
	close(futs)
	deadline := time.After(5 * time.Second)
	for fut := range futs {
		select {
		case <-fut.Done():
		case <-deadline:
			t.Fatal("future never resolved")
		}
	}
	// Any still-pending tail flushes via close.
	b.close()
	if flushed.Load() != goroutines*per {
		t.Fatalf("flushed %d requests, want %d", flushed.Load(), goroutines*per)
	}
	if maxSeen.Load() > 3 {
		t.Fatalf("a batch exceeded maxBatch: %d", maxSeen.Load())
	}
}

func TestBatcherSubmitAfterClose(t *testing.T) {
	var c collectFlush
	b := newBatcher(KindSign, 4, time.Millisecond, c.fn)
	r := newReq()
	if err := b.submit(r); err != nil {
		t.Fatal(err)
	}
	b.close()
	// close flushes the pending request.
	select {
	case <-r.fut.Done():
	case <-time.After(time.Second):
		t.Fatal("close did not flush the pending request")
	}
	err := b.submit(newReq())
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
	b.close() // idempotent
}
