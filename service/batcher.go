package service

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"herosign/internal/core"
)

// Sentinel errors returned through futures or Submit.
var (
	// ErrClosed is returned by Submit calls after the service (or its
	// batcher) has been closed.
	ErrClosed = errors.New("service: closed")
	// ErrEmptyMessage is resolved into a sign future whose message was
	// empty; the rest of the coalesced batch proceeds.
	ErrEmptyMessage = errors.New("service: empty message")
	// ErrSignatureLength is resolved into a verify future whose signature
	// had the wrong length for the parameter set; the rest of the batch
	// proceeds.
	ErrSignatureLength = errors.New("service: signature has wrong length")
	// ErrSeedLength is resolved into a keygen future whose seed triple had
	// wrong-length components; the rest of the batch proceeds.
	ErrSeedLength = errors.New("service: seed triple has wrong lengths")
	// ErrUnknownKey is returned by Submit calls naming a key ID no shard
	// owns.
	ErrUnknownKey = errors.New("service: unknown key id")
	// ErrBatchTooLarge is returned by SubmitSignBatch when the batch could
	// never fit the admission caps even on an idle service — unlike
	// ErrOverloaded, retrying cannot help; split the batch instead.
	ErrBatchTooLarge = errors.New("service: batch exceeds admission capacity")
	// ErrDeadlineExceeded marks work whose client deadline cannot be (or was
	// not) met: an already-expired deadline is pre-rejected at admission
	// without consuming a queue slot, and a request whose deadline passes
	// while it waits for a flush is dropped before any signing work is spent
	// on it. The HTTP layer maps it to 504.
	ErrDeadlineExceeded = errors.New("service: client deadline exceeded")
)

// Kind identifies the job type a request carries through the batcher and
// fleet.
type Kind int

const (
	KindSign Kind = iota
	KindVerify
	KindKeyGen
)

// String names the kind for stats and logs.
func (k Kind) String() string {
	switch k {
	case KindSign:
		return "sign"
	case KindVerify:
		return "verify"
	case KindKeyGen:
		return "keygen"
	}
	return "unknown"
}

// Result is the resolved value of one request's future. Exactly the fields
// matching the request kind are populated.
type Result struct {
	Sig   []byte      // KindSign: the signature, byte-identical to Sign
	Valid bool        // KindVerify: the verdict
	Key   *PrivateKey // KindKeyGen: the derived key pair
	Batch int         // size of the coalesced batch this request rode in
	Dev   string      // backend that executed the batch
	KeyID string      // key domain the executing shard owns
	Shard int         // shard that executed the batch
}

// Future is the pending result of a Submit call. It resolves exactly once,
// either with a Result or with an error (which may be per-message: one
// failing request does not poison its batch-mates).
type Future struct {
	done chan struct{}
	res  Result
	err  error
}

func newFuture() *Future { return &Future{done: make(chan struct{})} }

func (f *Future) resolve(res Result, err error) {
	f.res, f.err = res, err
	close(f.done)
}

// Wait blocks until the future resolves or the context is done. The
// underlying batch keeps executing even when the waiter gives up.
func (f *Future) Wait(ctx context.Context) (Result, error) {
	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// Done reports the future's channel for select-based waiters.
func (f *Future) Done() <-chan struct{} { return f.done }

// request is one submitted unit of work: a message to sign, a
// (message, signature) pair to verify, or a seed triple to expand into a
// key pair.
type request struct {
	msg  []byte
	sig  []byte
	seed core.SeedTriple
	fut  *Future
	// deadline is the client's completion deadline (zero = none). Admission
	// pre-rejects work that cannot make it, the batcher flushes early and
	// orders EDF around it, and the pool drops it unexecuted once expired.
	deadline time.Time
	// enqueued timestamps the submit for per-tenant latency accounting.
	enqueued time.Time
	// tenant is the per-API-key accounting state the request charges
	// (always set on admitted requests; the empty key maps to DefaultTenant).
	tenant *tenantState
	// release returns the request's admission slots; set when the request
	// is admitted, invoked exactly once via resolve.
	release func()
	// pinned marks members of an atomically admitted batch: the
	// drop-oldest-deadline policy never sheds them (evicting one member
	// would waste the whole batch's work).
	pinned bool
}

// resolve settles the request's future and returns its admission slots.
// Every admitted request must be settled through this method (not the
// future directly) so the admission gates drain.
func (r *request) resolve(res Result, err error) {
	r.fut.resolve(res, err)
	if r.release != nil {
		r.release()
	}
	if r.tenant != nil {
		r.tenant.complete(err, time.Since(r.enqueued))
	}
}

// batcher coalesces individual requests of one kind into GPU-sized batches.
// A flush happens when the pending queue reaches maxBatch (size-triggered)
// or when the oldest pending request has waited deadline (timer-triggered),
// whichever comes first — so tail latency stays bounded under light load
// while batches approach maxBatch under heavy load.
//
// Requests carrying a client deadline make the flush earliest-deadline-
// first aware: the timer tightens so a tight deadline flushes its batch
// early (one flush interval before it expires, immediately when even that
// is too late), flushed batches are ordered EDF, and the drop-oldest-
// deadline shed policy evicts the entry with the truly nearest deadline
// instead of the oldest arrival.
type batcher struct {
	kind     Kind
	maxBatch int
	deadline time.Duration
	flush    func(kind Kind, reqs []*request)

	mu      sync.Mutex
	pending []*request // arrival order; sorted EDF at take
	gen     uint64     // increments at every flush; defeats stale timers
	timer   *time.Timer
	timerAt time.Time // when the armed timer fires (zero = none)
	closed  bool
}

func newBatcher(kind Kind, maxBatch int, deadline time.Duration, flush func(Kind, []*request)) *batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if deadline <= 0 {
		deadline = 2 * time.Millisecond
	}
	return &batcher{kind: kind, maxBatch: maxBatch, deadline: deadline, flush: flush}
}

// submit queues one request. The size threshold flushes inline (on the
// caller's goroutine); the deadline flushes from a timer goroutine. A
// request whose client deadline is tighter than the armed flush point
// re-arms the timer to fire one flush interval before that deadline — and
// when even an immediate flush is barely in time, flushes inline — so a
// deadline shorter than the coalescing interval still has a chance instead
// of expiring in the queue.
func (b *batcher) submit(r *request) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	b.pending = append(b.pending, r)
	if len(b.pending) >= b.maxBatch {
		batch := b.take()
		b.mu.Unlock()
		b.flush(b.kind, batch)
		return nil
	}
	now := time.Now()
	var fire time.Time
	if len(b.pending) == 1 {
		fire = now.Add(b.deadline)
	}
	if !r.deadline.IsZero() {
		// Reserve one flush interval as queue-and-execute margin.
		if d := r.deadline.Add(-b.deadline); fire.IsZero() && d.Before(b.timerAt) || !fire.IsZero() && d.Before(fire) {
			fire = d
		}
	}
	if !fire.IsZero() {
		if !fire.After(now) {
			batch := b.take()
			b.mu.Unlock()
			b.flush(b.kind, batch)
			return nil
		}
		gen := b.gen
		if b.timer != nil {
			b.timer.Stop()
		}
		b.timerAt = fire
		b.timer = time.AfterFunc(time.Until(fire), func() { b.deadlineFlush(gen) })
	}
	b.mu.Unlock()
	return nil
}

// take detaches the pending batch in EDF order (deadline-carrying requests
// first, nearest deadline leading; deadline-free requests follow in arrival
// order) and advances the generation. Caller holds b.mu.
func (b *batcher) take() []*request {
	batch := b.pending
	b.pending = nil
	b.gen++
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	b.timerAt = time.Time{}
	sortEDF(batch)
	return batch
}

// sortEDF orders a batch earliest-deadline-first: requests with deadlines
// lead (nearest first), requests without keep their arrival order behind
// them.
func sortEDF(reqs []*request) {
	sort.SliceStable(reqs, func(i, j int) bool {
		di, dj := reqs[i].deadline, reqs[j].deadline
		switch {
		case di.IsZero():
			return false
		case dj.IsZero():
			return true
		default:
			return di.Before(dj)
		}
	})
}

// deadlineFlush fires from the timer. If a size-triggered flush (or close)
// won the race, the generation has moved on and the timer is a no-op.
func (b *batcher) deadlineFlush(gen uint64) {
	b.mu.Lock()
	if b.closed || b.gen != gen || len(b.pending) == 0 {
		b.mu.Unlock()
		return
	}
	batch := b.take()
	b.mu.Unlock()
	b.flush(b.kind, batch)
}

// evictNearestDeadline removes and returns the still-coalescing unpinned
// request with the nearest client deadline — exact EDF eviction: the entry
// closest to expiring is the least likely to be served in time, so it is
// the cheapest to shed. When no pending request carries a deadline the
// eviction falls back to the oldest arrival (the pre-deadline behavior).
// Returns nil when nothing is evictable. The caller resolves the evicted
// request; the drop-oldest-deadline shed policy uses this to make room for
// a new admission.
func (b *batcher) evictNearestDeadline() *request {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	best := -1
	for i, r := range b.pending {
		if r.pinned {
			continue
		}
		if best == -1 {
			best = i
			continue
		}
		if !r.deadline.IsZero() &&
			(b.pending[best].deadline.IsZero() || r.deadline.Before(b.pending[best].deadline)) {
			best = i
		}
	}
	if best == -1 {
		return nil
	}
	r := b.pending[best]
	b.pending = append(b.pending[:best], b.pending[best+1:]...)
	if len(b.pending) == 0 && b.timer != nil {
		b.timer.Stop()
		b.timer = nil
		b.timerAt = time.Time{}
		b.gen++
	}
	return r
}

// depth reports the number of requests waiting for a flush.
func (b *batcher) depth() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending)
}

// close flushes whatever is pending and rejects further submits.
func (b *batcher) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	batch := b.take()
	b.mu.Unlock()
	if len(batch) > 0 {
		b.flush(b.kind, batch)
	}
}
