package service

import (
	"context"
	"fmt"
	"sync"

	"herosign/internal/core"
	"herosign/internal/gpu/device"
	"herosign/internal/spx"
)

// SeedTriple aliases the engine's (SK.seed, SK.prf, PK.seed) input so
// Backend implementations outside this package can name it.
type SeedTriple = core.SeedTriple

// Job is one flushed batch on its way to a Backend. Exactly the fields
// matching Kind are populated; the scheduling metadata below is advisory
// and may be nil when no request in the batch carried it.
type Job struct {
	Kind  Kind
	Msgs  [][]byte     // KindSign and KindVerify
	Sigs  [][]byte     // KindVerify
	Seeds []SeedTriple // KindKeyGen

	// DeadlinesMs holds each message's remaining client deadline in
	// milliseconds at dispatch time (0 = none), parallel to the Kind inputs.
	// Proxying backends (service/remote) forward it so a leaf's scheduler
	// sees the same urgency the front end did; local backends may ignore it.
	// Nil when no message in the batch carries a deadline.
	DeadlinesMs []int64
	// Tenants holds each message's API key ("" = default tenant), parallel
	// to the Kind inputs, for proxying backends to forward. Nil when every
	// message is the default tenant.
	Tenants []string
}

// BatchOutput is a Backend's result for one Job. Slices are parallel to the
// Job inputs.
type BatchOutput struct {
	Sigs [][]byte      // KindSign
	OK   []bool        // KindVerify
	Keys []*PrivateKey // KindKeyGen

	// BusyUs is the backend's execution time for the batch in microseconds:
	// modeled device time for simulated backends, measured wall time for
	// real-CPU backends. It feeds the stats and the dispatch weight.
	BusyUs           float64
	LaunchOverheadUs float64
}

// Backend executes flushed batches for one executor: a simulated GPU device,
// the real-CPU lane engine, or (later) a remote worker. Implementations must
// be safe for the single pool goroutine that owns them plus concurrent
// Weight/Capacity/Name readers.
type Backend interface {
	// Name identifies the backend in stats and results.
	Name() string
	// Capacity hints how many messages the backend can profitably keep in
	// flight; AutoQueueLimit derives shard queue bounds from it.
	Capacity() int
	// Weight is the backend's signing throughput estimate in signatures per
	// second — modeled for simulated devices, measured for CPU backends.
	// The router's weighted least-outstanding-work dispatch divides each
	// backend's outstanding messages by its weight.
	Weight() float64
	// Warm prepares the backend for a shard key (engine construction,
	// kernel selection, weight calibration). Called once per shard before
	// any RunBatch.
	Warm(key *PrivateKey) error
	// RunBatch executes one flushed batch. The context is canceled when the
	// service aborts a drain; backends should honor it between units of
	// work where practical.
	RunBatch(ctx context.Context, key *PrivateKey, job *Job) (*BatchOutput, error)
}

// BatchHinter is an optional Backend refinement: a preferred coalescing
// batch size (for device backends, the engine launch group). New aligns the
// service flush threshold with the largest hint in the fleet; backends
// without the method accept whatever batch sizes the coalescer produces.
type BatchHinter interface {
	PreferredBatch() int
}

// Availabler is an optional Backend refinement for executors that can go
// away at runtime (a remote leaf that failed its health checks, say). The
// router's dispatch skips pools whose backend reports false; when every
// pool in a shard is unavailable, dispatch falls back to the least-loaded
// one so batches still resolve (with the backend's error) instead of
// hanging. Backends without the method are always available.
type Availabler interface {
	Available() bool
}

// Backends may additionally implement io.Closer; the router closes them
// after their pools drain, so a backend owning sockets or background
// goroutines (remote health probes) can release them on Service.Close.

// weightMeter tracks a backend's sigs/s estimate: seeded by calibration in
// Warm, refined by an EWMA over observed sign batches.
type weightMeter struct {
	mu sync.Mutex
	w  float64
}

func (m *weightMeter) get() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.w
}

func (m *weightMeter) seed(w float64) {
	m.mu.Lock()
	if w > 0 {
		m.w = w
	}
	m.mu.Unlock()
}

// observe folds one executed sign batch (n messages in busyUs) into the
// estimate.
func (m *weightMeter) observe(n int, busyUs float64) {
	if n <= 0 || busyUs <= 0 {
		return
	}
	obs := float64(n) / busyUs * 1e6
	m.mu.Lock()
	if m.w <= 0 {
		m.w = obs
	} else {
		m.w = 0.7*m.w + 0.3*obs
	}
	m.mu.Unlock()
}

// signerKey identifies one cached core.Signer. Tree Tuning and the adaptive
// PTX probe run once per key; every backend configured for the same
// (params, device, features, geometry) shares the warmed signer.
type signerKey struct {
	params      string
	device      string
	features    core.Features
	subBatch    int
	streams     int
	alpha       float64
	probeBlocks int
}

var signerCache = struct {
	sync.Mutex
	m map[signerKey]*core.Signer
}{m: make(map[signerKey]*core.Signer)}

// cachedSigner returns the shared signer for cfg, building and warming it
// under the cache lock on first use. Warming runs the adaptive PTX probe so
// the signer's kernel selection is immutable afterwards, which is what makes
// concurrent SignBatch calls from multiple backends safe.
//
// The cache is process-wide and keyed by configuration, not by signing key:
// the PTX probe's variant choice is a performance-model decision (never a
// correctness one), so a signer warmed with one key is reused for another —
// including across shards, whose keys differ by design.
func cachedSigner(cfg core.Config, sk *spx.PrivateKey) (*core.Signer, error) {
	key := signerKey{
		params: cfg.Params.Name, device: cfg.Device.Name,
		features: cfg.Features, subBatch: cfg.SubBatch, streams: cfg.Streams,
		alpha: cfg.Alpha, probeBlocks: cfg.ProbeBlocks,
	}
	signerCache.Lock()
	defer signerCache.Unlock()
	if s, ok := signerCache.m[key]; ok {
		return s, nil
	}
	s, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := s.Selection(sk); err != nil {
		return nil, err
	}
	signerCache.m[key] = s
	return s, nil
}

// deviceBackend runs batches on one simulated GPU device through the HERO
// engine. BusyUs is modeled device time from the scheduler timelines.
type deviceBackend struct {
	dev    *device.Device
	cfg    core.Config // engine knobs; Params/Device filled in Warm
	signer *core.Signer
	weight weightMeter
}

// NewDeviceBackend wraps one simulated GPU device as a Backend with the
// default engine configuration (full HERO feature stack). Service options
// like WithFeatures do not reach into pre-built backends; use WithDevices
// for engine-configured device workers.
func NewDeviceBackend(d *Device) Backend {
	return newDeviceBackend(d, core.Config{Features: core.AllFeatures()})
}

func newDeviceBackend(d *device.Device, cfg core.Config) *deviceBackend {
	return &deviceBackend{dev: d, cfg: cfg}
}

func (b *deviceBackend) Name() string { return b.dev.Name }

func (b *deviceBackend) Capacity() int {
	if b.signer != nil {
		return 4 * b.signer.SubBatch()
	}
	return 256
}

// PreferredBatch aligns flushes with the engine launch group.
func (b *deviceBackend) PreferredBatch() int {
	if b.signer != nil {
		return b.signer.SubBatch()
	}
	return 64
}

func (b *deviceBackend) Weight() float64 { return b.weight.get() }

// Warm builds (or fetches) the tuned signer and calibrates the dispatch
// weight with one sampled modeled measurement.
func (b *deviceBackend) Warm(key *PrivateKey) error {
	cfg := b.cfg
	cfg.Params, cfg.Device = key.Params, b.dev
	s, err := cachedSigner(cfg, key)
	if err != nil {
		return err
	}
	b.signer = s
	res, err := s.MeasureBatch(key, s.SubBatch(), 1)
	if err != nil {
		return err
	}
	if res.TotalUs > 0 {
		b.weight.seed(float64(s.SubBatch()) / res.TotalUs * 1e6)
	}
	return nil
}

func (b *deviceBackend) RunBatch(ctx context.Context, key *PrivateKey, job *Job) (*BatchOutput, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if b.signer == nil {
		return nil, fmt.Errorf("service: device backend %s used before Warm", b.dev.Name)
	}
	switch job.Kind {
	case KindSign:
		res, err := b.signer.SignBatch(key, job.Msgs)
		if err != nil {
			return nil, err
		}
		b.weight.observe(len(job.Msgs), res.TotalUs)
		return &BatchOutput{
			Sigs: res.Sigs, BusyUs: res.TotalUs, LaunchOverheadUs: res.LaunchOverheadUs,
		}, nil
	case KindVerify:
		res, err := b.signer.VerifyBatch(&key.PublicKey, job.Msgs, job.Sigs)
		if err != nil {
			return nil, err
		}
		return &BatchOutput{
			OK: res.OK, BusyUs: res.Timeline.TotalUs, LaunchOverheadUs: res.Timeline.LaunchOverheadUs,
		}, nil
	case KindKeyGen:
		res, err := b.signer.KeyGenBatch(job.Seeds)
		if err != nil {
			return nil, err
		}
		return &BatchOutput{Keys: res.Keys, BusyUs: res.Kernel.DurationUs}, nil
	}
	return nil, fmt.Errorf("service: unknown job kind %d", job.Kind)
}
