package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"herosign/internal/spx"
	"herosign/internal/spx/params"
)

// stubBackend is a scriptable Backend for scheduling tests: it fabricates
// signatures instantly (the scheduling layer never inspects signature
// bytes), reports a fixed weight so queue-wait estimates are deterministic,
// and can be blocked to build backlog on demand.
type stubBackend struct {
	name   string
	weight float64
	cap    int
	// unblock, when non-nil, holds every RunBatch until it is closed.
	unblock chan struct{}
	// perMsg simulates service time per message.
	perMsg time.Duration

	ran atomic.Int64 // messages executed
}

func (b *stubBackend) Name() string           { return b.name }
func (b *stubBackend) Capacity() int          { return b.cap }
func (b *stubBackend) Weight() float64        { return b.weight }
func (b *stubBackend) Warm(*PrivateKey) error { return nil }

func (b *stubBackend) RunBatch(ctx context.Context, key *PrivateKey, job *Job) (*BatchOutput, error) {
	if b.unblock != nil {
		select {
		case <-b.unblock:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	n := len(job.Msgs)
	if job.Kind == KindKeyGen {
		n = len(job.Seeds)
	}
	if b.perMsg > 0 {
		time.Sleep(time.Duration(n) * b.perMsg)
	}
	out := &BatchOutput{BusyUs: float64(n)}
	switch job.Kind {
	case KindSign:
		out.Sigs = make([][]byte, n)
		for i := range out.Sigs {
			out.Sigs[i] = append([]byte("stub-sig:"), job.Msgs[i]...)
		}
	case KindVerify:
		out.OK = make([]bool, n)
		for i := range out.OK {
			out.OK[i] = true
		}
	default:
		return nil, fmt.Errorf("stubBackend: unsupported kind %v", job.Kind)
	}
	b.ran.Add(int64(n))
	return out, nil
}

// newStubService builds a service on a single stubBackend with the hour-long
// flush interval most scheduling tests want (only deadlines or size flush).
func newStubService(t *testing.T, b *stubBackend, opts ...Option) *Service {
	t.Helper()
	base := []Option{
		WithParams(params.SPHINCSPlus128f),
		WithKey(testKey(t)),
		WithBackends(b),
		WithMaxBatch(100),
		WithFlushDeadline(time.Hour),
	}
	svc, err := New(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestExpiredDeadlinePreReject: an already-expired deadline fails immediately
// with ErrDeadlineExceeded and consumes no queue slot — neither the shard nor
// the global gate moves, and the tenant is charged a deadline rejection, not
// an admission.
func TestExpiredDeadlinePreReject(t *testing.T) {
	stub := &stubBackend{name: "stub", weight: 1000, cap: 64}
	svc := newStubService(t, stub, WithQueueLimit(8), WithGlobalQueueLimit(8))
	defer svc.Close()

	sh := svc.router.shards[0]
	_, err := svc.SubmitSignOpts("", []byte("late"), SubmitOpts{
		Deadline: time.Now().Add(-time.Second),
		Tenant:   "expired-tenant",
	})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired deadline error = %v, want ErrDeadlineExceeded", err)
	}
	if !IsDeadlineExceeded(err) {
		t.Fatal("IsDeadlineExceeded does not recognize the pre-rejection")
	}
	if d := sh.gate.depth(); d != 0 {
		t.Fatalf("shard gate depth = %d after pre-rejection, want 0 (no slot consumed)", d)
	}
	if d := svc.router.global.depth(); d != 0 {
		t.Fatalf("global gate depth = %d after pre-rejection, want 0", d)
	}
	ts := findTenant(t, svc.Stats().Tenants, "expired-tenant")
	if ts.RejectedDeadline != 1 || ts.Admitted != 0 || ts.Queued != 0 {
		t.Fatalf("tenant counters after pre-rejection: %+v", ts)
	}
}

// TestUnmeetableDeadlinePreReject: a live deadline nearer than the shard's
// estimated queue wait is rejected 429 with Scope "deadline" and an honest
// retry hint, again without consuming a slot; the same deadline clears on an
// idle shard because queueWait is unclamped.
func TestUnmeetableDeadlinePreReject(t *testing.T) {
	// 10 sigs/s: five queued messages put the estimated wait at 500ms.
	stub := &stubBackend{name: "slow", weight: 10, cap: 64}
	svc := newStubService(t, stub)
	defer svc.Close()
	sh := svc.router.shards[0]

	// Idle shard: a tight deadline must be admitted (wait estimate is zero).
	if _, err := svc.SubmitSignOpts("", []byte("idle-ok"), SubmitOpts{
		Deadline: time.Now().Add(50 * time.Millisecond),
	}); err != nil {
		t.Fatalf("tight deadline rejected on an idle shard: %v", err)
	}
	// The tight deadline flushed its batch inline; wait for the slot to drain
	// so the backlog below is exactly the occupants.
	waitFor(t, time.Second, func() bool { return sh.gate.depth() == 0 })

	for i := 0; i < 5; i++ {
		if _, err := svc.SubmitSign([]byte(fmt.Sprintf("occupant-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if d := sh.gate.depth(); d != 5 {
		t.Fatalf("backlog depth = %d, want 5", d)
	}

	_, err := svc.SubmitSignOpts("", []byte("too-tight"), SubmitOpts{
		Deadline: time.Now().Add(50 * time.Millisecond),
		Tenant:   "tight",
	})
	var over *OverloadError
	if !errors.As(err, &over) {
		t.Fatalf("unmeetable deadline error = %v, want *OverloadError", err)
	}
	if over.Scope != "deadline" {
		t.Fatalf("overload scope = %q, want \"deadline\"", over.Scope)
	}
	if over.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", over.RetryAfter)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatal("deadline pre-rejection does not unwrap to ErrOverloaded")
	}
	if d := sh.gate.depth(); d != 5 {
		t.Fatalf("depth = %d after pre-rejection, want 5 (no slot consumed)", d)
	}
	if ts := findTenant(t, svc.Stats().Tenants, "tight"); ts.RejectedDeadline != 1 {
		t.Fatalf("tenant \"tight\" rejected_deadline = %d, want 1", ts.RejectedDeadline)
	}
}

// TestDeadlineShorterThanFlushInterval: a deadline far tighter than the
// coalescing interval flushes its batch immediately instead of expiring in
// the hour-long window, and the signature is the real thing.
func TestDeadlineShorterThanFlushInterval(t *testing.T) {
	svc := newTestService(t, WithMaxBatch(100), WithFlushDeadline(time.Hour))
	defer svc.Close()

	msg := []byte("tight but feasible")
	fut, err := svc.SubmitSignOpts("", msg, SubmitOpts{
		Deadline: time.Now().Add(100 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := fut.Wait(ctx)
	if err != nil {
		t.Fatalf("tight-deadline sign did not beat the flush interval: %v", err)
	}
	if err := spx.Verify(svc.PublicKey(), msg, res.Sig); err != nil {
		t.Fatalf("early-flushed signature does not verify: %v", err)
	}
}

// TestDeadlineTightensFlushTimer: a deadline longer than one flush interval
// but shorter than the armed timer re-arms the flush to one interval before
// the deadline, so the request completes well before the plain timer would
// have fired.
func TestDeadlineTightensFlushTimer(t *testing.T) {
	svc := newTestService(t, WithMaxBatch(100), WithFlushDeadline(500*time.Millisecond))
	defer svc.Close()

	start := time.Now()
	// Deadline 650ms with a 500ms interval: the timer re-arms to ~150ms.
	fut, err := svc.SubmitSignOpts("", []byte("rearm"), SubmitOpts{
		Deadline: start.Add(650 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(context.Background()); err != nil {
		t.Fatalf("re-armed flush: %v", err)
	}
	if d := time.Since(start); d >= 450*time.Millisecond {
		t.Fatalf("request took %v; the deadline did not tighten the 500ms flush timer", d)
	}
}

// TestDeadlineExpiresInQueue: work admitted with a live deadline that then
// expires behind a stuck backend is dropped by the pool with
// ErrDeadlineExceeded — after admission, before any signing work — and the
// tenant's expired counter moves.
func TestDeadlineExpiresInQueue(t *testing.T) {
	unblock := make(chan struct{})
	stub := &stubBackend{name: "stuck", weight: 1000, cap: 64, unblock: unblock}
	svc := newStubService(t, stub, WithMaxBatch(1), WithFlushDeadline(time.Millisecond))
	defer svc.Close()

	// The occupant flushes immediately (MaxBatch 1) and blocks the backend.
	occ, err := svc.SubmitSign([]byte("occupant"))
	if err != nil {
		t.Fatal(err)
	}
	victim, err := svc.SubmitSignOpts("", []byte("victim"), SubmitOpts{
		Deadline: time.Now().Add(30 * time.Millisecond),
		Tenant:   "impatient",
	})
	if err != nil {
		t.Fatalf("victim admission (deadline was live): %v", err)
	}

	time.Sleep(80 * time.Millisecond) // let the victim's deadline lapse in queue
	close(unblock)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := occ.Wait(ctx); err != nil {
		t.Fatalf("occupant: %v", err)
	}
	if _, err := victim.Wait(ctx); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired-in-queue error = %v, want ErrDeadlineExceeded", err)
	}
	if got := stub.ran.Load(); got != 1 {
		t.Fatalf("backend executed %d messages, want 1 (no work spent on the expired victim)", got)
	}
	if ts := findTenant(t, svc.Stats().Tenants, "impatient"); ts.Expired != 1 {
		t.Fatalf("tenant expired counter = %d, want 1", ts.Expired)
	}
}

// TestEvictNearestDeadlineExact drives the batcher's eviction directly: the
// entry with the truly nearest deadline goes first (not the oldest arrival),
// deadline-free entries only after every deadline-carrying one, and pinned
// batch members are never touched.
func TestEvictNearestDeadlineExact(t *testing.T) {
	var c collectFlush
	b := newBatcher(KindSign, 100, time.Hour, c.fn)
	defer b.close()

	now := time.Now()
	oldest := newReq() // no deadline, arrives first
	far := newReq()
	far.deadline = now.Add(3 * time.Hour)
	near := newReq()
	near.deadline = now.Add(90 * time.Minute)
	for _, r := range []*request{oldest, far, near} {
		if err := b.submit(r); err != nil {
			t.Fatal(err)
		}
	}

	if got := b.evictNearestDeadline(); got != near {
		t.Fatalf("first eviction picked %p, want the nearest-deadline entry %p", got, near)
	}
	if got := b.evictNearestDeadline(); got != far {
		t.Fatalf("second eviction did not pick the remaining deadline entry")
	}
	if got := b.evictNearestDeadline(); got != oldest {
		t.Fatalf("third eviction did not fall back to the oldest arrival")
	}
	if got := b.evictNearestDeadline(); got != nil {
		t.Fatalf("eviction from an empty batcher returned %p, want nil", got)
	}

	// Pinned members are invisible to eviction even with the nearest deadline.
	pinned := newReq()
	pinned.pinned = true
	pinned.deadline = now.Add(time.Minute)
	loose := newReq()
	for _, r := range []*request{pinned, loose} {
		if err := b.submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.evictNearestDeadline(); got != loose {
		t.Fatal("eviction picked a pinned batch member over a loose request")
	}
	if got := b.evictNearestDeadline(); got != nil {
		t.Fatal("eviction returned a pinned batch member")
	}
}

// TestShedPolicyEvictsNearestDeadline: under DropOldestDeadline a full shard
// sheds the coalescing request with the nearest client deadline — not the
// oldest arrival — to admit new work.
func TestShedPolicyEvictsNearestDeadline(t *testing.T) {
	stub := &stubBackend{name: "stub", weight: 1000, cap: 64}
	svc := newStubService(t, stub,
		WithQueueLimit(2), WithShedPolicy(DropOldestDeadline))
	defer svc.Close()

	oldest, err := svc.SubmitSign([]byte("oldest, no deadline"))
	if err != nil {
		t.Fatal(err)
	}
	// Far enough out that the deadline-tightened timer (deadline minus the
	// hour-long interval) stays in the future and the request keeps
	// coalescing.
	doomed, err := svc.SubmitSignOpts("", []byte("nearest deadline"), SubmitOpts{
		Deadline: time.Now().Add(90 * time.Minute),
		Tenant:   "doomed",
	})
	if err != nil {
		t.Fatal(err)
	}

	// Queue full (2/2): this admission must shed the deadline-carrying entry.
	if _, err := svc.SubmitSign([]byte("newcomer")); err != nil {
		t.Fatalf("admission with DropOldestDeadline: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err = doomed.Wait(ctx)
	var over *OverloadError
	if !errors.As(err, &over) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("shed future error = %v, want *OverloadError", err)
	}
	select {
	case <-oldest.Done():
		t.Fatal("the oldest arrival was shed; the nearest deadline should have been")
	default:
	}
	if ts := findTenant(t, svc.Stats().Tenants, "doomed"); ts.Shed != 1 {
		t.Fatalf("tenant shed counter = %d, want 1", ts.Shed)
	}
}

// TestDeadlineRacesClose: deadline-carrying submissions racing Close must
// neither hang nor leak — every accepted future resolves with a signature,
// ErrClosed, ErrDeadlineExceeded or an overload rejection.
func TestDeadlineRacesClose(t *testing.T) {
	stub := &stubBackend{name: "stub", weight: 1000, cap: 64}
	svc := newStubService(t, stub, WithMaxBatch(4), WithFlushDeadline(time.Millisecond))

	var mu sync.Mutex
	var futs []*Future
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				opts := SubmitOpts{Tenant: fmt.Sprintf("racer-%d", g)}
				switch i % 3 {
				case 0:
					opts.Deadline = time.Now().Add(time.Millisecond)
				case 1:
					opts.Deadline = time.Now().Add(time.Hour)
				}
				fut, err := svc.SubmitSignOpts("", []byte(fmt.Sprintf("race-%d-%d", g, i)), opts)
				if err != nil {
					if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrDeadlineExceeded) &&
						!errors.Is(err, ErrOverloaded) {
						t.Errorf("submit during close: %v", err)
					}
					continue
				}
				mu.Lock()
				futs = append(futs, fut)
				mu.Unlock()
			}
		}(g)
	}
	time.Sleep(2 * time.Millisecond)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, fut := range futs {
		res, err := fut.Wait(ctx)
		switch {
		case err == nil:
			if len(res.Sig) == 0 {
				t.Fatalf("future %d resolved without error but has no signature", i)
			}
		case errors.Is(err, ErrClosed), errors.Is(err, ErrDeadlineExceeded), errors.Is(err, ErrOverloaded):
		default:
			t.Fatalf("future %d resolved with %v", i, err)
		}
	}
}

// findTenant pulls one tenant's stats entry, failing when absent.
func findTenant(t *testing.T, tenants []TenantStats, name string) TenantStats {
	t.Helper()
	for _, ts := range tenants {
		if ts.Tenant == name {
			return ts
		}
	}
	t.Fatalf("tenant %q missing from stats (have %d entries)", name, len(tenants))
	return TenantStats{}
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
