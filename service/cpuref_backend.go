package service

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"herosign/internal/cpuref"
	"herosign/internal/spx"
)

// cpurefBackend executes batches on the host CPU through the multi-goroutine
// lane-engine reference implementation. Unlike the simulated device
// backends, its BusyUs is measured wall time, so a mixed fleet dispatches on
// real CPU throughput versus modeled GPU throughput — both in sigs/s.
type cpurefBackend struct {
	threads int
	weight  weightMeter

	// Hypertree memoization (NewCPURefBackendMemo): all worker goroutines
	// share one per-key cache, built — and, when memoWarm is set, fully
	// prebuilt — inside Warm, so the router never reports the shard
	// available before the fast path exists.
	memoBytes int64
	memoWarm  bool
	cache     *spx.TreeCache

	// Persistent lane-batched verification contexts for the shard key,
	// built in Warm so steady-state verify batches reuse warm arenas.
	verifier *cpuref.BatchVerifier
}

// NewCPURefBackend wraps the real-CPU lane-engine signer as a Backend with
// the given worker-goroutine count (<= 0 selects GOMAXPROCS). Signatures
// are byte-identical to the simulated backends' — only scheduling and
// throughput differ.
func NewCPURefBackend(threads int) Backend {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	return &cpurefBackend{threads: threads}
}

// NewCPURefBackendMemo is NewCPURefBackend with a per-key hypertree
// memoization cache of at most memoBytes shared by all workers. With warm
// set, Warm prebuilds the pinned top layers before the backend serves —
// moving warm-up off the request path — so the first request already hits;
// otherwise they fill lazily. memoBytes <= 0 disables memoization.
func NewCPURefBackendMemo(threads int, memoBytes int64, warm bool) Backend {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	return &cpurefBackend{threads: threads, memoBytes: memoBytes, memoWarm: warm}
}

func (b *cpurefBackend) Name() string {
	if b.memoBytes > 0 {
		return fmt.Sprintf("cpuref-%dt-memo", b.threads)
	}
	return fmt.Sprintf("cpuref-%dt", b.threads)
}

func (b *cpurefBackend) Capacity() int { return 8 * b.threads }

// PreferredBatch keeps every worker goroutine busy for a few messages per
// flush without stretching coalescing latency.
func (b *cpurefBackend) PreferredBatch() int { return 4 * b.threads }

func (b *cpurefBackend) Weight() float64 { return b.weight.get() }

// Warm builds (and, when configured, prebuilds) the hypertree memoization
// cache for the shard key, then calibrates the dispatch weight by timing
// one real signature and scaling by the worker count (batched signing
// parallelizes linearly until the cores run out). The router calls Warm
// before starting the backend's pool, so cache prebuild completes before
// the shard is reported available and the first request already takes the
// fast path.
func (b *cpurefBackend) Warm(key *PrivateKey) error {
	if b.memoBytes > 0 {
		b.cache = spx.NewTreeCache(key, b.memoBytes)
		if b.memoWarm {
			b.cache.Warm(b.threads)
		}
	}
	b.verifier = cpuref.NewBatchVerifier(&key.PublicKey)
	signer, err := spx.NewSignerWithCache(key, b.cache)
	if err != nil {
		return err
	}
	start := time.Now()
	if _, err := signer.Sign([]byte("herosign-cpuref-warm"), nil); err != nil {
		return err
	}
	perSig := time.Since(start)
	if perSig > 0 {
		b.weight.seed(float64(b.threads) / perSig.Seconds())
	}
	return nil
}

// MemoStats implements MemoReporter; the second return is false when the
// backend was built without memoization.
func (b *cpurefBackend) MemoStats() (MemoStats, bool) {
	if b.cache == nil {
		return MemoStats{}, false
	}
	s := b.cache.Stats()
	return MemoStats{
		Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions,
		WOTSHits: s.WOTSHits, WOTSFills: s.WOTSFills,
		ResidentBytes: s.ResidentBytes, BudgetBytes: s.BudgetBytes,
		PinnedLayers: s.PinnedLayers, Entries: s.Entries,
		WarmedEntries: s.WarmedEntries,
	}, true
}

func (b *cpurefBackend) RunBatch(ctx context.Context, key *PrivateKey, job *Job) (*BatchOutput, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch job.Kind {
	case KindSign:
		sigs, res, err := cpuref.SignBatchCached(key, job.Msgs, b.threads, b.cache)
		if err != nil {
			return nil, err
		}
		busyUs := float64(res.Elapsed.Microseconds())
		b.weight.observe(len(job.Msgs), busyUs)
		return &BatchOutput{Sigs: sigs, BusyUs: busyUs}, nil
	case KindVerify:
		// Lane-batched across signatures via the persistent verifier pool
		// built in Warm (a one-shot pool covers direct RunBatch callers).
		bv := b.verifier
		if bv == nil {
			bv = cpuref.NewBatchVerifier(&key.PublicKey)
		}
		ok, res, err := bv.VerifyBatch(job.Msgs, job.Sigs, b.threads)
		if err != nil {
			return nil, err
		}
		return &BatchOutput{OK: ok, BusyUs: float64(res.Elapsed.Microseconds())}, nil
	case KindKeyGen:
		skSeeds := make([][]byte, len(job.Seeds))
		skPRFs := make([][]byte, len(job.Seeds))
		pkSeeds := make([][]byte, len(job.Seeds))
		for i, s := range job.Seeds {
			skSeeds[i], skPRFs[i], pkSeeds[i] = s.SKSeed, s.SKPRF, s.PKSeed
		}
		keys, res, err := cpuref.KeyGenBatch(key.Params, skSeeds, skPRFs, pkSeeds, b.threads)
		if err != nil {
			return nil, err
		}
		return &BatchOutput{Keys: keys, BusyUs: float64(res.Elapsed.Microseconds())}, nil
	}
	return nil, fmt.Errorf("service: unknown job kind %d", job.Kind)
}
