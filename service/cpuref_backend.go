package service

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"herosign/internal/cpuref"
	"herosign/internal/spx"
)

// cpurefBackend executes batches on the host CPU through the multi-goroutine
// lane-engine reference implementation. Unlike the simulated device
// backends, its BusyUs is measured wall time, so a mixed fleet dispatches on
// real CPU throughput versus modeled GPU throughput — both in sigs/s.
type cpurefBackend struct {
	threads int
	weight  weightMeter
}

// NewCPURefBackend wraps the real-CPU lane-engine signer as a Backend with
// the given worker-goroutine count (<= 0 selects GOMAXPROCS). Signatures
// are byte-identical to the simulated backends' — only scheduling and
// throughput differ.
func NewCPURefBackend(threads int) Backend {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	return &cpurefBackend{threads: threads}
}

func (b *cpurefBackend) Name() string { return fmt.Sprintf("cpuref-%dt", b.threads) }

func (b *cpurefBackend) Capacity() int { return 8 * b.threads }

// PreferredBatch keeps every worker goroutine busy for a few messages per
// flush without stretching coalescing latency.
func (b *cpurefBackend) PreferredBatch() int { return 4 * b.threads }

func (b *cpurefBackend) Weight() float64 { return b.weight.get() }

// Warm calibrates the dispatch weight by timing one real signature and
// scaling by the worker count (batched signing parallelizes linearly until
// the cores run out).
func (b *cpurefBackend) Warm(key *PrivateKey) error {
	signer := spx.NewSigner(key)
	start := time.Now()
	if _, err := signer.Sign([]byte("herosign-cpuref-warm"), nil); err != nil {
		return err
	}
	perSig := time.Since(start)
	if perSig > 0 {
		b.weight.seed(float64(b.threads) / perSig.Seconds())
	}
	return nil
}

func (b *cpurefBackend) RunBatch(ctx context.Context, key *PrivateKey, job *Job) (*BatchOutput, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch job.Kind {
	case KindSign:
		sigs, res, err := cpuref.SignBatch(key, job.Msgs, b.threads)
		if err != nil {
			return nil, err
		}
		busyUs := float64(res.Elapsed.Microseconds())
		b.weight.observe(len(job.Msgs), busyUs)
		return &BatchOutput{Sigs: sigs, BusyUs: busyUs}, nil
	case KindVerify:
		ok, res, err := cpuref.VerifyBatch(&key.PublicKey, job.Msgs, job.Sigs, b.threads)
		if err != nil {
			return nil, err
		}
		return &BatchOutput{OK: ok, BusyUs: float64(res.Elapsed.Microseconds())}, nil
	case KindKeyGen:
		skSeeds := make([][]byte, len(job.Seeds))
		skPRFs := make([][]byte, len(job.Seeds))
		pkSeeds := make([][]byte, len(job.Seeds))
		for i, s := range job.Seeds {
			skSeeds[i], skPRFs[i], pkSeeds[i] = s.SKSeed, s.SKPRF, s.PKSeed
		}
		keys, res, err := cpuref.KeyGenBatch(key.Params, skSeeds, skPRFs, pkSeeds, b.threads)
		if err != nil {
			return nil, err
		}
		return &BatchOutput{Keys: keys, BusyUs: float64(res.Elapsed.Microseconds())}, nil
	}
	return nil, fmt.Errorf("service: unknown job kind %d", job.Kind)
}
