package service

import "fmt"

// DeviceStats reports one worker's counters. All times are modeled device
// time from the scheduler timelines, not wall time.
type DeviceStats struct {
	Worker  int    `json:"worker"`
	Device  string `json:"device"`
	Batches int64  `json:"batches"`

	Messages   int64 `json:"messages"`
	SignMsgs   int64 `json:"sign_messages"`
	VerifyMsgs int64 `json:"verify_messages"`
	KeyGenMsgs int64 `json:"keygen_messages"`

	// ModeledBusySec is the device's accumulated modeled execution time
	// (its stream-accounting clock) across all kinds.
	ModeledBusySec   float64 `json:"modeled_busy_sec"`
	ModeledLaunchSec float64 `json:"modeled_launch_overhead_sec"`
	// ModeledSignPerSec is the device's signing throughput: signed
	// messages over modeled signing busy time.
	ModeledSignPerSec float64 `json:"modeled_sign_per_sec"`

	// QueueDepth is messages dispatched to this worker but not completed.
	QueueDepth int64 `json:"queue_depth"`
}

// HistBucket is one batch-size histogram bucket; Le is the inclusive upper
// bound ("+Inf" for the overflow bucket).
type HistBucket struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// Stats is the service-wide snapshot served at /v1/stats.
type Stats struct {
	Params    string `json:"params"`
	MaxBatch  int    `json:"max_batch"`
	DeadlineM string `json:"flush_deadline"`

	// PendingRequests are submitted requests still waiting in a coalescer.
	PendingRequests int `json:"pending_requests"`
	// QueuedMessages are flushed messages dispatched to workers but not
	// yet completed.
	QueuedMessages int64 `json:"queued_messages"`

	TotalMessages int64 `json:"total_messages"`
	TotalBatches  int64 `json:"total_batches"`

	// ModeledGPUSeconds sums every device's modeled busy time.
	ModeledGPUSeconds float64 `json:"modeled_gpu_seconds"`
	// ModeledMakespanSec is the busiest device's modeled clock — the
	// fleet-level modeled wall time, since devices run concurrently.
	ModeledMakespanSec float64 `json:"modeled_makespan_sec"`
	// ModeledSignPerSec is fleet signing throughput: total signed messages
	// over the makespan.
	ModeledSignPerSec float64 `json:"modeled_sign_per_sec"`

	BatchSizeHist []HistBucket  `json:"batch_size_hist"`
	Devices       []DeviceStats `json:"devices"`
}

// Stats snapshots the coalescers and the fleet.
func (s *Service) Stats() Stats {
	st := Stats{
		Params:          s.cfg.Params.Name,
		MaxBatch:        s.cfg.MaxBatch,
		DeadlineM:       s.sign.deadline.String(),
		PendingRequests: s.sign.depth() + s.verify.depth() + s.keygen.depth(),
	}
	hist := make([]int64, len(histBuckets)+1)
	var signMsgs int64
	for _, w := range s.fleet.workers {
		ws := w.snapshot()
		busyUs := ws.SignBusyUs + ws.VerifyBusyUs + ws.KeyGenBusyUs
		ds := DeviceStats{
			Worker: w.id, Device: w.dev.Name,
			Batches: ws.Batches, Messages: ws.Messages,
			SignMsgs: ws.SignMsgs, VerifyMsgs: ws.VerifyMsgs, KeyGenMsgs: ws.KeyGenMsgs,
			ModeledBusySec:   busyUs / 1e6,
			ModeledLaunchSec: ws.LaunchOverheadUs / 1e6,
			QueueDepth:       w.outstanding.Load(),
		}
		if ws.SignBusyUs > 0 {
			ds.ModeledSignPerSec = float64(ws.SignMsgs) / (ws.SignBusyUs / 1e6)
		}
		st.Devices = append(st.Devices, ds)
		st.TotalMessages += ws.Messages
		st.TotalBatches += ws.Batches
		st.ModeledGPUSeconds += ds.ModeledBusySec
		if ds.ModeledBusySec > st.ModeledMakespanSec {
			st.ModeledMakespanSec = ds.ModeledBusySec
		}
		st.QueuedMessages += w.outstanding.Load()
		signMsgs += ws.SignMsgs
		for i, c := range ws.Hist {
			hist[i] += c
		}
	}
	if st.ModeledMakespanSec > 0 {
		st.ModeledSignPerSec = float64(signMsgs) / st.ModeledMakespanSec
	}
	for i, c := range hist {
		le := "+Inf"
		if i < len(histBuckets) {
			le = fmt.Sprintf("%d", histBuckets[i])
		}
		st.BatchSizeHist = append(st.BatchSizeHist, HistBucket{Le: le, Count: c})
	}
	return st
}
