package service

import "fmt"

// BackendStats reports one pool's counters. Busy times are the backend's
// own clock: modeled device time for simulated GPUs, measured wall time for
// CPU backends.
type BackendStats struct {
	Worker  int    `json:"worker"`
	Shard   int    `json:"shard"`
	Device  string `json:"device"` // backend name (historic field name)
	KeyID   string `json:"key_id"`
	Batches int64  `json:"batches"`

	Messages   int64 `json:"messages"`
	SignMsgs   int64 `json:"sign_messages"`
	VerifyMsgs int64 `json:"verify_messages"`
	KeyGenMsgs int64 `json:"keygen_messages"`

	// WeightSigsPerSec is the dispatch weight: the backend's current sigs/s
	// estimate the weighted least-outstanding-work router divides by.
	WeightSigsPerSec float64 `json:"weight_sigs_per_sec"`

	// ModeledBusySec is the backend's accumulated execution time across all
	// kinds (its stream-accounting clock for simulated devices).
	ModeledBusySec   float64 `json:"modeled_busy_sec"`
	ModeledLaunchSec float64 `json:"modeled_launch_overhead_sec"`
	// ModeledSignPerSec is the backend's signing throughput: signed
	// messages over its signing busy time.
	ModeledSignPerSec float64 `json:"modeled_sign_per_sec"`

	// QueueDepth is messages dispatched to this pool but not completed.
	QueueDepth int64 `json:"queue_depth"`
}

// ShardStats reports one key domain's admission state.
type ShardStats struct {
	Shard    int      `json:"shard"`
	KeyID    string   `json:"key_id"`
	Backends []string `json:"backends"`

	// QueueDepth is the shard's admitted-but-unresolved messages
	// (coalescing, queued or executing); QueueLimit is its admission cap
	// (0 = unbounded).
	QueueDepth int64 `json:"queue_depth"`
	QueueLimit int64 `json:"queue_limit"`

	// Rejected counts submissions refused with ErrOverloaded; Shed counts
	// coalescing requests evicted by the drop-oldest-deadline policy.
	Rejected int64 `json:"rejected"`
	Shed     int64 `json:"shed"`

	// WeightSigsPerSec aggregates the shard's backend weights.
	WeightSigsPerSec float64 `json:"weight_sigs_per_sec"`
}

// HistBucket is one batch-size histogram bucket; Le is the inclusive upper
// bound ("+Inf" for the overflow bucket).
type HistBucket struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// Stats is the service-wide snapshot served at /v1/stats.
type Stats struct {
	Params    string `json:"params"`
	MaxBatch  int    `json:"max_batch"`
	DeadlineM string `json:"flush_deadline"`

	// ShedPolicy names the overload behavior; the counters below record how
	// often it fired.
	ShedPolicy string `json:"shed_policy"`
	// GlobalQueueDepth / GlobalQueueLimit mirror the service-wide admission
	// gate (limit 0 = unbounded).
	GlobalQueueDepth int64 `json:"global_queue_depth"`
	GlobalQueueLimit int64 `json:"global_queue_limit"`
	// RejectedTotal counts every ErrOverloaded rejection (global and
	// per-shard); ShedTotal counts drop-oldest-deadline evictions.
	RejectedTotal int64 `json:"rejected_total"`
	ShedTotal     int64 `json:"shed_total"`

	// PendingRequests are submitted requests still waiting in a coalescer.
	PendingRequests int `json:"pending_requests"`
	// QueuedMessages are flushed messages dispatched to pools but not yet
	// completed.
	QueuedMessages int64 `json:"queued_messages"`

	TotalMessages int64 `json:"total_messages"`
	TotalBatches  int64 `json:"total_batches"`

	// ModeledGPUSeconds sums every backend's busy time.
	ModeledGPUSeconds float64 `json:"modeled_gpu_seconds"`
	// ModeledMakespanSec is the busiest backend's clock — the fleet-level
	// modeled wall time, since backends run concurrently.
	ModeledMakespanSec float64 `json:"modeled_makespan_sec"`
	// ModeledSignPerSec is fleet signing throughput: total signed messages
	// over the makespan.
	ModeledSignPerSec float64 `json:"modeled_sign_per_sec"`

	BatchSizeHist []HistBucket   `json:"batch_size_hist"`
	Devices       []BackendStats `json:"devices"` // historic field name
	Shards        []ShardStats   `json:"shards"`
}

// Stats snapshots the coalescers, the admission gates and the pools.
func (s *Service) Stats() Stats {
	st := Stats{
		Params:           s.cfg.Params.Name,
		MaxBatch:         s.cfg.MaxBatch,
		DeadlineM:        s.batchers[0].sign.deadline.String(),
		ShedPolicy:       s.cfg.ShedPolicy.String(),
		GlobalQueueDepth: s.router.global.depth(),
		GlobalQueueLimit: s.router.global.limit,
		RejectedTotal:    s.router.rejectedGlobal.Load(),
	}
	for _, sb := range s.batchers {
		st.PendingRequests += sb.sign.depth() + sb.verify.depth() + sb.keygen.depth()
	}
	hist := make([]int64, len(histBuckets)+1)
	var signMsgs int64
	for _, sh := range s.router.shards {
		ss := ShardStats{
			Shard: sh.id, KeyID: sh.keyID,
			QueueDepth: sh.gate.depth(), QueueLimit: sh.gate.limit,
			Rejected: sh.rejected.Load(), Shed: sh.shed.Load(),
			WeightSigsPerSec: sh.weight(),
		}
		st.RejectedTotal += ss.Rejected
		st.ShedTotal += ss.Shed
		for _, p := range sh.pools {
			ss.Backends = append(ss.Backends, p.backend.Name())
			ws := p.snapshot()
			busyUs := ws.SignBusyUs + ws.VerifyBusyUs + ws.KeyGenBusyUs
			ds := BackendStats{
				Worker: p.id, Shard: sh.id, Device: p.backend.Name(), KeyID: sh.keyID,
				Batches: ws.Batches, Messages: ws.Messages,
				SignMsgs: ws.SignMsgs, VerifyMsgs: ws.VerifyMsgs, KeyGenMsgs: ws.KeyGenMsgs,
				WeightSigsPerSec: p.backend.Weight(),
				ModeledBusySec:   busyUs / 1e6,
				ModeledLaunchSec: ws.LaunchOverheadUs / 1e6,
				QueueDepth:       p.outstanding.Load(),
			}
			if ws.SignBusyUs > 0 {
				ds.ModeledSignPerSec = float64(ws.SignMsgs) / (ws.SignBusyUs / 1e6)
			}
			st.Devices = append(st.Devices, ds)
			st.TotalMessages += ws.Messages
			st.TotalBatches += ws.Batches
			st.ModeledGPUSeconds += ds.ModeledBusySec
			if ds.ModeledBusySec > st.ModeledMakespanSec {
				st.ModeledMakespanSec = ds.ModeledBusySec
			}
			st.QueuedMessages += p.outstanding.Load()
			signMsgs += ws.SignMsgs
			for i, c := range ws.Hist {
				hist[i] += c
			}
		}
		st.Shards = append(st.Shards, ss)
	}
	if st.ModeledMakespanSec > 0 {
		st.ModeledSignPerSec = float64(signMsgs) / st.ModeledMakespanSec
	}
	for i, c := range hist {
		le := "+Inf"
		if i < len(histBuckets) {
			le = fmt.Sprintf("%d", histBuckets[i])
		}
		st.BatchSizeHist = append(st.BatchSizeHist, HistBucket{Le: le, Count: c})
	}
	return st
}
