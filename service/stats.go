package service

import (
	"fmt"
	"time"
)

// FleetEvent is one membership transition of a dynamic fleet: a leaf
// joined, left, lost its heartbeat lease, was ejected by the health
// checker or recovered through a half-open trial. The membership registry
// folds its event ring into Stats.FleetEvents via AddStatsHook.
type FleetEvent struct {
	Time time.Time `json:"time"`
	// Type is "joined", "left", "lease-expired", "ejected" or "recovered".
	Type string `json:"type"`
	URL  string `json:"url"`
	Note string `json:"note,omitempty"`
}

// BackendStats reports one pool's counters. Busy times are the backend's
// own clock: modeled device time for simulated GPUs, measured wall time for
// CPU backends.
type BackendStats struct {
	Worker  int    `json:"worker"`
	Shard   int    `json:"shard"`
	Device  string `json:"device"` // backend name (historic field name)
	KeyID   string `json:"key_id"`
	Batches int64  `json:"batches"`

	Messages   int64 `json:"messages"`
	SignMsgs   int64 `json:"sign_messages"`
	VerifyMsgs int64 `json:"verify_messages"`
	KeyGenMsgs int64 `json:"keygen_messages"`

	// WeightSigsPerSec is the dispatch weight: the backend's current sigs/s
	// estimate the weighted least-outstanding-work router divides by.
	WeightSigsPerSec float64 `json:"weight_sigs_per_sec"`

	// ModeledBusySec is the backend's accumulated execution time across all
	// kinds (its stream-accounting clock for simulated devices).
	ModeledBusySec   float64 `json:"modeled_busy_sec"`
	ModeledLaunchSec float64 `json:"modeled_launch_overhead_sec"`
	// ModeledSignPerSec is the backend's signing throughput: signed
	// messages over its signing busy time.
	ModeledSignPerSec float64 `json:"modeled_sign_per_sec"`

	// QueueDepth is messages dispatched to this pool but not completed.
	QueueDepth int64 `json:"queue_depth"`

	// Memo reports the backend's hypertree memoization cache, when it has
	// one (see MemoReporter).
	Memo *MemoStats `json:"memo,omitempty"`
}

// MemoStats reports one hypertree memoization cache: layer-level hit/miss
// counters, residency against the byte budget, and how much of the pinned
// plan Warm prebuilt. A hit means the subtree's node table was cached (auth
// path and root were memcpys); a WOTS hit means the layer's one-time
// signature slot matched too, making the whole layer hash-free.
type MemoStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	WOTSHits  int64 `json:"wots_hits"`
	WOTSFills int64 `json:"wots_fills"`

	ResidentBytes int64 `json:"resident_bytes"`
	BudgetBytes   int64 `json:"budget_bytes"`
	PinnedLayers  int   `json:"pinned_layers"`
	Entries       int   `json:"entries"`
	WarmedEntries int64 `json:"warmed_entries"`
}

// add accumulates other into m for shard-level aggregation (gauges sum;
// PinnedLayers keeps the maximum since caches may differ per backend).
func (m *MemoStats) add(other *MemoStats) {
	m.Hits += other.Hits
	m.Misses += other.Misses
	m.Evictions += other.Evictions
	m.WOTSHits += other.WOTSHits
	m.WOTSFills += other.WOTSFills
	m.ResidentBytes += other.ResidentBytes
	m.BudgetBytes += other.BudgetBytes
	m.Entries += other.Entries
	m.WarmedEntries += other.WarmedEntries
	if other.PinnedLayers > m.PinnedLayers {
		m.PinnedLayers = other.PinnedLayers
	}
}

// MemoReporter is an optional Backend refinement: backends holding a
// hypertree memoization cache expose its counters through it. The second
// return is false when memoization is configured off, which keeps the
// stats JSON free of all-zero memo blocks.
type MemoReporter interface {
	MemoStats() (MemoStats, bool)
}

// ShardStats reports one key domain's admission state.
type ShardStats struct {
	Shard    int      `json:"shard"`
	KeyID    string   `json:"key_id"`
	Backends []string `json:"backends"`

	// QueueDepth is the shard's admitted-but-unresolved messages
	// (coalescing, queued or executing); QueueLimit is its admission cap
	// (0 = unbounded).
	QueueDepth int64 `json:"queue_depth"`
	QueueLimit int64 `json:"queue_limit"`

	// Rejected counts submissions refused with ErrOverloaded; Shed counts
	// coalescing requests evicted by the drop-oldest-deadline policy.
	Rejected int64 `json:"rejected"`
	Shed     int64 `json:"shed"`

	// WeightSigsPerSec aggregates the shard's backend weights.
	WeightSigsPerSec float64 `json:"weight_sigs_per_sec"`

	// Memo aggregates the shard's backend memoization caches (nil when no
	// backend in the shard memoizes).
	Memo *MemoStats `json:"memo,omitempty"`
}

// RemoteLeafStats reports one remote leaf's health as seen by its
// front-end backend: the health checker's state machine, the probe-fed
// weight, and the hedging counters. Backends surface it by implementing
// RemoteHealthReporter; /v1/stats lists one entry per remote-backed pool.
type RemoteLeafStats struct {
	URL   string `json:"url"`
	KeyID string `json:"key_id,omitempty"` // key domain the leaf was warmed for
	// State is "healthy", "ejected" or "half-open".
	State string `json:"state"`
	// WeightSigsPerSec is the dispatch weight the router sees (zero while
	// ejected); EWMASigsPerSec is the underlying estimate from observed
	// throughput between /v1/stats probes.
	WeightSigsPerSec float64 `json:"weight_sigs_per_sec"`
	EWMASigsPerSec   float64 `json:"ewma_sigs_per_sec"`
	// LatencyEWMAMs is the smoothed per-batch request latency feeding the
	// outlier z-score.
	LatencyEWMAMs float64 `json:"latency_ewma_ms"`

	Probes        int64 `json:"probes"`
	ProbeFailures int64 `json:"probe_failures"`
	Ejections     int64 `json:"ejections"`

	// PrimarySends counts batches first issued to this leaf; HedgesSent
	// counts hedge copies this leaf's slow batches spawned on siblings;
	// HedgeWins counts hedges that finished first. Failovers are retries
	// after a hard transport error (they do not spend hedge budget).
	PrimarySends int64 `json:"primary_sends"`
	HedgesSent   int64 `json:"hedges_sent"`
	HedgeWins    int64 `json:"hedge_wins"`
	Failovers    int64 `json:"failovers"`
	Errors       int64 `json:"errors"`
	Overloads    int64 `json:"overloads"` // 429s the leaf returned
}

// RemoteHealthReporter is an optional Backend refinement: remote-leaf
// backends expose their health/hedge telemetry through it and Stats
// surfaces the snapshots under "remote_leaves".
type RemoteHealthReporter interface {
	RemoteHealth() RemoteLeafStats
}

// HistBucket is one batch-size histogram bucket; Le is the inclusive upper
// bound ("+Inf" for the overflow bucket).
type HistBucket struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// Stats is the service-wide snapshot served at /v1/stats.
type Stats struct {
	Params    string `json:"params"`
	MaxBatch  int    `json:"max_batch"`
	DeadlineM string `json:"flush_deadline"`

	// ShedPolicy names the overload behavior; the counters below record how
	// often it fired.
	ShedPolicy string `json:"shed_policy"`
	// GlobalQueueDepth / GlobalQueueLimit mirror the service-wide admission
	// gate (limit 0 = unbounded).
	GlobalQueueDepth int64 `json:"global_queue_depth"`
	GlobalQueueLimit int64 `json:"global_queue_limit"`
	// RejectedTotal counts every ErrOverloaded rejection (global and
	// per-shard); ShedTotal counts drop-oldest-deadline evictions.
	RejectedTotal int64 `json:"rejected_total"`
	ShedTotal     int64 `json:"shed_total"`

	// PendingRequests are submitted requests still waiting in a coalescer.
	PendingRequests int `json:"pending_requests"`
	// QueuedMessages are flushed messages dispatched to pools but not yet
	// completed.
	QueuedMessages int64 `json:"queued_messages"`

	TotalMessages int64 `json:"total_messages"`
	TotalBatches  int64 `json:"total_batches"`

	// ModeledGPUSeconds sums every backend's busy time.
	ModeledGPUSeconds float64 `json:"modeled_gpu_seconds"`
	// ModeledMakespanSec is the busiest backend's clock — the fleet-level
	// modeled wall time, since backends run concurrently.
	ModeledMakespanSec float64 `json:"modeled_makespan_sec"`
	// ModeledSignPerSec is fleet signing throughput: total signed messages
	// over the makespan.
	ModeledSignPerSec float64 `json:"modeled_sign_per_sec"`

	BatchSizeHist []HistBucket   `json:"batch_size_hist"`
	Devices       []BackendStats `json:"devices"` // historic field name
	Shards        []ShardStats   `json:"shards"`

	// TenantRate / TenantBurst echo the per-tenant fair-queuing
	// configuration (rate 0 = rate limiting off); Tenants lists every API
	// key's accounting, sorted by name. At least the default tenant appears
	// once any request has been submitted.
	TenantRate  float64       `json:"tenant_rate,omitempty"`
	TenantBurst int           `json:"tenant_burst,omitempty"`
	Tenants     []TenantStats `json:"tenants,omitempty"`

	// RemoteLeaves lists per-leaf health for remote-backed pools (empty on
	// an all-local fleet).
	RemoteLeaves []RemoteLeafStats `json:"remote_leaves,omitempty"`

	// AuthRejected counts requests refused 401 by fleet authentication
	// (missing, malformed, forged or replayed X-Herosign-Fleet-Auth).
	AuthRejected int64 `json:"auth_rejected,omitempty"`
	// FleetEvents is the recent membership transition log of a dynamic
	// fleet (newest last), surfaced by the membership registry.
	FleetEvents []FleetEvent `json:"fleet_events,omitempty"`
}

// Stats snapshots the coalescers, the admission gates and the pools.
func (s *Service) Stats() Stats {
	st := Stats{
		Params:           s.cfg.Params.Name,
		MaxBatch:         s.cfg.MaxBatch,
		DeadlineM:        s.batchers[0].sign.deadline.String(),
		ShedPolicy:       s.cfg.ShedPolicy.String(),
		GlobalQueueDepth: s.router.global.depth(),
		GlobalQueueLimit: s.router.global.cap(),
		RejectedTotal:    s.router.rejectedGlobal.Load(),
		TenantRate:       s.tenants.rate,
		TenantBurst:      int(s.tenants.burst),
		Tenants:          s.tenants.snapshot(),
	}
	for _, sb := range s.batchers {
		st.PendingRequests += sb.sign.depth() + sb.verify.depth() + sb.keygen.depth()
	}
	hist := make([]int64, len(histBuckets)+1)
	var signMsgs int64
	for _, sh := range s.router.shards {
		ss := ShardStats{
			Shard: sh.id, KeyID: sh.keyID,
			QueueDepth: sh.gate.depth(), QueueLimit: sh.gate.cap(),
			Rejected: sh.rejected.Load(), Shed: sh.shed.Load(),
			WeightSigsPerSec: sh.weight(),
		}
		st.RejectedTotal += ss.Rejected
		st.ShedTotal += ss.Shed
		for _, p := range sh.poolList() {
			ss.Backends = append(ss.Backends, p.backend.Name())
			ws := p.snapshot()
			busyUs := ws.SignBusyUs + ws.VerifyBusyUs + ws.KeyGenBusyUs
			ds := BackendStats{
				Worker: p.id, Shard: sh.id, Device: p.backend.Name(), KeyID: sh.keyID,
				Batches: ws.Batches, Messages: ws.Messages,
				SignMsgs: ws.SignMsgs, VerifyMsgs: ws.VerifyMsgs, KeyGenMsgs: ws.KeyGenMsgs,
				WeightSigsPerSec: p.backend.Weight(),
				ModeledBusySec:   busyUs / 1e6,
				ModeledLaunchSec: ws.LaunchOverheadUs / 1e6,
				QueueDepth:       p.outstanding.Load(),
			}
			if ws.SignBusyUs > 0 {
				ds.ModeledSignPerSec = float64(ws.SignMsgs) / (ws.SignBusyUs / 1e6)
			}
			st.Devices = append(st.Devices, ds)
			st.TotalMessages += ws.Messages
			st.TotalBatches += ws.Batches
			st.ModeledGPUSeconds += ds.ModeledBusySec
			if ds.ModeledBusySec > st.ModeledMakespanSec {
				st.ModeledMakespanSec = ds.ModeledBusySec
			}
			st.QueuedMessages += p.outstanding.Load()
			signMsgs += ws.SignMsgs
			for i, c := range ws.Hist {
				hist[i] += c
			}
			if hr, ok := p.backend.(RemoteHealthReporter); ok {
				st.RemoteLeaves = append(st.RemoteLeaves, hr.RemoteHealth())
			}
			if mr, ok := p.backend.(MemoReporter); ok {
				if ms, on := mr.MemoStats(); on {
					msCopy := ms
					st.Devices[len(st.Devices)-1].Memo = &msCopy
					if ss.Memo == nil {
						ss.Memo = &MemoStats{}
					}
					ss.Memo.add(&ms)
				}
			}
		}
		st.Shards = append(st.Shards, ss)
	}
	if st.ModeledMakespanSec > 0 {
		st.ModeledSignPerSec = float64(signMsgs) / st.ModeledMakespanSec
	}
	for i, c := range hist {
		le := "+Inf"
		if i < len(histBuckets) {
			le = fmt.Sprintf("%d", histBuckets[i])
		}
		st.BatchSizeHist = append(st.BatchSizeHist, HistBucket{Le: le, Count: c})
	}
	if s.auth != nil {
		st.AuthRejected += s.auth.Rejected()
	}
	s.hookMu.Lock()
	hooks := make([]func(*Stats), len(s.statsHooks))
	copy(hooks, s.statsHooks)
	s.hookMu.Unlock()
	for _, fn := range hooks {
		fn(&st)
	}
	return st
}
