package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTenantBucketTakeRefund(t *testing.T) {
	base := time.Now()
	b := newTenantBucket(10, 4, base) // 10 tokens/s, burst 4, starts full

	if ok, _ := b.take(4, base); !ok {
		t.Fatal("full bucket rejected its burst")
	}
	ok, wait := b.take(1, base)
	if ok {
		t.Fatal("empty bucket granted a token")
	}
	// Deficit of one token at 10/s refills in 100ms.
	if wait < 50*time.Millisecond || wait > 150*time.Millisecond {
		t.Fatalf("refill wait = %v, want ~100ms", wait)
	}
	if ok, _ := b.take(1, base.Add(100*time.Millisecond)); !ok {
		t.Fatal("bucket still empty after the advertised refill wait")
	}
	// Refund clamps at burst: an over-refund cannot mint extra capacity.
	b.refund(100)
	if ok, _ := b.take(4, base.Add(100*time.Millisecond)); !ok {
		t.Fatal("refunded bucket cannot serve its burst")
	}
	if ok, _ := b.take(1, base.Add(100*time.Millisecond)); ok {
		t.Fatal("refund minted tokens beyond the burst cap")
	}
}

func TestTenantRegistryDefaultsAndOverflow(t *testing.T) {
	tr := newTenantRegistry(2, 0)
	def := tr.get("")
	if def.name != DefaultTenant {
		t.Fatalf("empty key mapped to %q, want %q", def.name, DefaultTenant)
	}
	if def.bucket == nil || def.bucket.burst != 8 {
		t.Fatalf("default burst not floored at 8: %+v", def.bucket)
	}
	if tr.get("") != def {
		t.Fatal("registry did not reuse the default tenant state")
	}

	// Rate limiting off: accounting states exist, buckets do not.
	off := newTenantRegistry(0, 16)
	if st := off.get("unmetered"); st.bucket != nil {
		t.Fatal("tenant got a bucket with rate limiting disabled")
	}

	// Past the cap, unseen keys share one catch-all state.
	for i := 0; i < maxTenants; i++ {
		tr.get(fmt.Sprintf("t-%d", i))
	}
	over1 := tr.get("sprayed-1")
	over2 := tr.get("sprayed-2")
	if over1 != over2 || over1.name != overflowTenant {
		t.Fatalf("overflow keys got %q/%q, want the shared %q state", over1.name, over2.name, overflowTenant)
	}
	if tr.get("t-7").name != "t-7" {
		t.Fatal("pre-cap tenant lost its dedicated state")
	}
}

// TestTenantRateLimit429: single submits beyond the tenant's burst reject
// with Scope "tenant" and an honest refill hint, without touching other
// tenants' buckets; a batch above the burst can never fit and fails
// ErrBatchTooLarge rather than a retryable 429.
func TestTenantRateLimit429(t *testing.T) {
	stub := &stubBackend{name: "stub", weight: 1000, cap: 64}
	// Rate 1/s keeps refill negligible across the test's microseconds.
	svc := newStubService(t, stub, WithTenantRate(1), WithTenantBurst(4))
	defer svc.Close()

	for i := 0; i < 4; i++ {
		if _, err := svc.SubmitSignOpts("", []byte(fmt.Sprintf("hog-%d", i)), SubmitOpts{Tenant: "hog"}); err != nil {
			t.Fatalf("submit %d within burst: %v", i, err)
		}
	}
	_, err := svc.SubmitSignOpts("", []byte("hog-over"), SubmitOpts{Tenant: "hog"})
	var over *OverloadError
	if !errors.As(err, &over) {
		t.Fatalf("over-burst submit error = %v, want *OverloadError", err)
	}
	if over.Scope != "tenant" || over.Tenant != "hog" {
		t.Fatalf("overload scope=%q tenant=%q, want tenant/hog", over.Scope, over.Tenant)
	}
	if over.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", over.RetryAfter)
	}

	// The hog's exhaustion must not touch a neighbor's bucket.
	if _, err := svc.SubmitSignOpts("", []byte("neighbor"), SubmitOpts{Tenant: "neighbor"}); err != nil {
		t.Fatalf("neighbor submit while hog is limited: %v", err)
	}

	// A batch above the burst can never be admitted: permanent, not 429.
	msgs := make([][]byte, 5)
	opts := make([]SubmitOpts, 5)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("batch-%d", i))
		opts[i] = SubmitOpts{Tenant: "fresh"}
	}
	if _, err := svc.SubmitSignBatchOpts("", msgs, opts); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("over-burst batch error = %v, want ErrBatchTooLarge", err)
	}
	// At the burst it fits.
	if _, err := svc.SubmitSignBatchOpts("", msgs[:4], opts[:4]); err != nil {
		t.Fatalf("burst-sized batch: %v", err)
	}

	if ts := findTenant(t, svc.Stats().Tenants, "hog"); ts.RejectedRate != 1 || ts.Admitted != 4 {
		t.Fatalf("hog counters: %+v", ts)
	}
}

// TestTenantBucketRefundOnGateReject: a token taken for an admission that
// then loses at the queue gate is refunded — a full queue must not also
// charge the tenant's rate.
func TestTenantBucketRefundOnGateReject(t *testing.T) {
	stub := &stubBackend{name: "stub", weight: 1000, cap: 64}
	// Near-zero rate: the bucket holds exactly its burst for the whole test.
	svc := newStubService(t, stub,
		WithTenantRate(0.001), WithTenantBurst(8), WithQueueLimit(1))
	defer svc.Close()

	if _, err := svc.SubmitSignOpts("", []byte("occupant"), SubmitOpts{Tenant: "r"}); err != nil {
		t.Fatal(err)
	}
	_, err := svc.SubmitSignOpts("", []byte("rejected"), SubmitOpts{Tenant: "r"})
	var over *OverloadError
	if !errors.As(err, &over) || over.Scope != "shard" {
		t.Fatalf("gate rejection = %v, want shard-scope overload", err)
	}
	// One token spent (occupant), one refunded: exactly burst-1 must remain.
	bucket := svc.tenants.get("r").bucket
	if ok, _ := bucket.take(7, time.Now()); !ok {
		t.Fatal("bucket short after gate rejection: the failed admission was not refunded")
	}
	if ok, _ := bucket.take(1, time.Now()); ok {
		t.Fatal("bucket over-refunded: more than burst-1 tokens remained")
	}
	if ts := findTenant(t, svc.Stats().Tenants, "r"); ts.RejectedOverload != 1 {
		t.Fatalf("rejected_overload = %d, want 1", ts.RejectedOverload)
	}
}

// tenantLoadResult is one run of the overload workload from the quiet
// tenant's perspective.
type tenantLoadResult struct {
	done      int
	attempts  int
	p99       time.Duration
	stats     []TenantStats
	hotTried  int64
	hotReject int64
}

// runTenantLoad drives a stub-backed service with a paced quiet tenant and,
// when withHot is set, a hot tenant submitting flat-out — several times the
// backend's service rate, with the two tenants' combined offered load at
// least twice what the fleet can absorb.
func runTenantLoad(t *testing.T, policy ShedPolicy, withHot bool) tenantLoadResult {
	t.Helper()
	// 200µs/message: the backend absorbs ~5000 msgs/s. The hot tenant submits
	// flat-out — tens of thousands offered per second — but its bucket admits
	// only 500/s; the quiet tenant's inline-waited ~300/s always fits its own.
	stub := &stubBackend{name: "stub", weight: 5000, cap: 64, perMsg: 200 * time.Microsecond}
	svc, err := New(
		WithParams(testKey(t).Params),
		WithKey(testKey(t)),
		WithBackends(stub),
		WithMaxBatch(32),
		WithFlushDeadline(time.Millisecond),
		WithQueueLimit(128),
		WithShedPolicy(policy),
		WithTenantRate(500),
		WithTenantBurst(32),
	)
	if err != nil {
		t.Fatal(err)
	}

	stopHot := make(chan struct{})
	var hotWG sync.WaitGroup
	var hotTried, hotReject atomic.Int64
	if withHot {
		hotWG.Add(1)
		go func() {
			defer hotWG.Done()
			msg := []byte("hot")
			for {
				select {
				case <-stopHot:
					return
				default:
				}
				hotTried.Add(1)
				if _, err := svc.SubmitSignOpts("", msg, SubmitOpts{Tenant: "hot"}); err != nil {
					if !errors.Is(err, ErrOverloaded) {
						t.Errorf("hot submit: %v", err)
						return
					}
					hotReject.Add(1)
				}
				runtime.Gosched()
			}
		}()
	}

	const quietN = 120
	res := tenantLoadResult{attempts: quietN}
	lats := make([]time.Duration, 0, quietN)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < quietN; i++ {
		start := time.Now()
		fut, err := svc.SubmitSignOpts("", []byte(fmt.Sprintf("quiet-%d", i)), SubmitOpts{Tenant: "quiet"})
		if err == nil {
			if _, werr := fut.Wait(ctx); werr == nil {
				res.done++
				lats = append(lats, time.Since(start))
			}
		}
		time.Sleep(time.Millisecond)
	}

	close(stopHot)
	hotWG.Wait()
	if err := svc.Close(); err != nil { // drains the hot tenant's futures
		t.Fatal(err)
	}
	res.stats = svc.Stats().Tenants
	res.hotTried = hotTried.Load()
	res.hotReject = hotReject.Load()
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		res.p99 = lats[len(lats)*99/100]
	}
	return res
}

// TestTwoTenantOverloadIsolation is the isolation acceptance test: with the
// fleet driven well past capacity by one hot tenant, the quiet tenant keeps
// at least 80% of its solo goodput and a bounded p99 while the hot tenant
// absorbs the 429s — under both shed policies.
func TestTwoTenantOverloadIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("overload isolation needs sustained load")
	}
	solo := runTenantLoad(t, RejectNewest, false)
	if solo.done == 0 {
		t.Fatal("solo quiet run completed nothing")
	}
	t.Logf("solo: quiet %d/%d done, p99 %v", solo.done, solo.attempts, solo.p99)

	for _, policy := range []ShedPolicy{RejectNewest, DropOldestDeadline} {
		t.Run(policy.String(), func(t *testing.T) {
			mixed := runTenantLoad(t, policy, true)
			t.Logf("mixed: quiet %d/%d done, p99 %v; hot %d tried, %d rejected",
				mixed.done, mixed.attempts, mixed.p99, mixed.hotTried, mixed.hotReject)

			if float64(mixed.done) < 0.8*float64(solo.done) {
				t.Fatalf("quiet goodput collapsed under the hot tenant: %d vs %d solo (< 80%%)",
					mixed.done, solo.done)
			}
			if mixed.p99 > 500*time.Millisecond {
				t.Fatalf("quiet p99 = %v under overload, want <= 500ms", mixed.p99)
			}
			if mixed.hotReject == 0 {
				t.Fatal("hot tenant was never rate-limited; the overload went somewhere else")
			}

			hot := findTenant(t, mixed.stats, "hot")
			quiet := findTenant(t, mixed.stats, "quiet")
			if hot.RejectedRate == 0 {
				t.Fatalf("hot tenant counters show no rate rejections: %+v", hot)
			}
			if hot.Done == 0 {
				t.Fatalf("hot tenant was starved outright, want its fair share served: %+v", hot)
			}
			if quiet.RejectedRate != 0 {
				t.Fatalf("quiet tenant hit the rate limiter: %+v", quiet)
			}
			if quiet.Queued != 0 || hot.Queued != 0 {
				t.Fatalf("queued gauges nonzero after drain: quiet=%+v hot=%+v", quiet, hot)
			}
		})
	}
}

// TestTenantStatsAccounting: the per-tenant snapshot reflects one completed
// request end to end — admitted, done, latency recorded, nothing left
// queued — and the service-level stats carry the configured rate and burst.
func TestTenantStatsAccounting(t *testing.T) {
	stub := &stubBackend{name: "stub", weight: 1000, cap: 64}
	svc := newStubService(t, stub,
		WithMaxBatch(1), WithTenantRate(100), WithTenantBurst(16))
	defer svc.Close()

	fut, err := svc.SubmitSignOpts("", []byte("accounted"), SubmitOpts{Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	st := svc.Stats()
	if st.TenantRate != 100 || st.TenantBurst != 16 {
		t.Fatalf("stats rate/burst = %g/%d, want 100/16", st.TenantRate, st.TenantBurst)
	}
	alice := findTenant(t, st.Tenants, "alice")
	if alice.Admitted != 1 || alice.Done != 1 || alice.Queued != 0 {
		t.Fatalf("alice counters: %+v", alice)
	}
	if alice.MaxLatencyMs < alice.AvgLatencyMs {
		t.Fatalf("latency stats inconsistent: %+v", alice)
	}
}
