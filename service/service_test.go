package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"herosign/internal/core"
	"herosign/internal/gpu/device"
	"herosign/internal/spx"
	"herosign/internal/spx/params"
)

// newTestService builds a small two-device service. The signer cache makes
// repeated construction cheap across tests.
func newTestService(t *testing.T, opts ...Option) *Service {
	t.Helper()
	devA, err := device.ByName("RTX 4090")
	if err != nil {
		t.Fatal(err)
	}
	devB, err := device.ByName("A100")
	if err != nil {
		t.Fatal(err)
	}
	base := []Option{
		WithParams(params.SPHINCSPlus128f),
		WithKey(testKey(t)),
		WithDevices(devA, devB),
		WithFlushDeadline(2 * time.Millisecond),
	}
	svc, err := New(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

var testKeyOnce struct {
	sync.Once
	sk *spx.PrivateKey
}

// testKey derives one deterministic key shared by the tests so the cached
// signers' PTX warm-up matches across services.
func testKey(t *testing.T) *spx.PrivateKey {
	testKeyOnce.Do(func() {
		p := params.SPHINCSPlus128f
		seed := bytes.Repeat([]byte{0x5a}, p.N)
		prf := bytes.Repeat([]byte{0xa5}, p.N)
		pub := bytes.Repeat([]byte{0x3c}, p.N)
		sk, err := spx.KeyFromSeeds(p, seed, prf, pub)
		if err != nil {
			t.Fatalf("testKey: %v", err)
		}
		testKeyOnce.sk = sk
	})
	return testKeyOnce.sk
}

// TestFleetCoalescedSignaturesIdentical is the acceptance-criterion core: a
// two-device fleet serving coalesced single-message submits must produce
// signatures byte-identical to Sign (checked via Verify on every message
// and a byte-compare against the reference on a sample).
func TestFleetCoalescedSignaturesIdentical(t *testing.T) {
	n := 96
	if testing.Short() {
		n = 24
	}
	svc := newTestService(t)
	defer svc.Close()

	msgs := make([][]byte, n)
	futs := make([]*Future, n)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("coalesce-%d", i))
		fut, err := svc.SubmitSign(msgs[i])
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = fut
	}
	ctx := context.Background()
	pk := svc.PublicKey()
	coalesced := 0
	for i, fut := range futs {
		res, err := fut.Wait(ctx)
		if err != nil {
			t.Fatalf("sign %d: %v", i, err)
		}
		if err := spx.Verify(pk, msgs[i], res.Sig); err != nil {
			t.Fatalf("signature %d does not verify: %v", i, err)
		}
		if res.Batch > 1 {
			coalesced++
		}
		if i%16 == 0 {
			ref, err := spx.Sign(svc.cfg.Key, msgs[i], nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ref, res.Sig) {
				t.Fatalf("signature %d differs from the reference", i)
			}
		}
	}
	if coalesced == 0 {
		t.Fatal("no request rode in a coalesced batch — the batcher never merged")
	}

	st := svc.Stats()
	var workersUsed int
	for _, d := range st.Devices {
		if d.Messages > 0 {
			workersUsed++
		}
	}
	if workersUsed < 2 {
		t.Fatalf("least-outstanding dispatch used %d workers, want both", workersUsed)
	}
	if st.TotalMessages != int64(n) {
		t.Fatalf("stats counted %d messages, want %d", st.TotalMessages, n)
	}
}

// TestFleetModeledSpeedup asserts the serving-layer throughput claim:
// coalesced fleet execution beats sequential SignBatch(1) calls by >= 5x in
// modeled signatures/sec.
func TestFleetModeledSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement needs a full batch")
	}
	n := 128
	svc := newTestService(t)
	defer svc.Close()

	futs := make([]*Future, n)
	for i := range futs {
		fut, err := svc.SubmitSign([]byte(fmt.Sprintf("speedup-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = fut
	}
	ctx := context.Background()
	for _, fut := range futs {
		if _, err := fut.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}

	// Baseline: one sequential single-message batch, scaled by n (the sim
	// is deterministic, verified in the engine tests).
	dev, _ := device.ByName("RTX 4090")
	solo, err := cachedSigner(core.Config{
		Params: svc.cfg.Params, Device: dev,
		Features: svc.cfg.Features, SubBatch: svc.cfg.SubBatch, Streams: svc.cfg.Streams,
	}, svc.cfg.Key)
	if err != nil {
		t.Fatal(err)
	}
	one, err := solo.SignBatch(svc.cfg.Key, [][]byte{[]byte("baseline")})
	if err != nil {
		t.Fatal(err)
	}
	baselineSec := float64(n) * one.TotalUs / 1e6

	st := svc.Stats()
	if st.ModeledMakespanSec <= 0 {
		t.Fatal("no modeled makespan recorded")
	}
	speedup := baselineSec / st.ModeledMakespanSec
	t.Logf("modeled speedup: %.1fx (makespan %.3fms vs sequential %.3fms)",
		speedup, st.ModeledMakespanSec*1e3, baselineSec*1e3)
	if speedup < 5 {
		t.Fatalf("modeled speedup %.1fx, want >= 5x", speedup)
	}
}

func TestServicePerMessageErrors(t *testing.T) {
	svc := newTestService(t, WithMaxBatch(4), WithFlushDeadline(time.Hour))
	defer svc.Close()

	// One empty message rides with three good ones in a single batch; the
	// empty one must fail alone.
	futs := make([]*Future, 0, 4)
	empty, err := svc.SubmitSign(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		fut, err := svc.SubmitSign([]byte(fmt.Sprintf("good-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, fut)
	}
	ctx := context.Background()
	if _, err := empty.Wait(ctx); !errors.Is(err, ErrEmptyMessage) {
		t.Fatalf("empty message error = %v, want ErrEmptyMessage", err)
	}
	for i, fut := range futs {
		res, err := fut.Wait(ctx)
		if err != nil {
			t.Fatalf("good message %d: %v", i, err)
		}
		if res.Batch != 3 {
			t.Fatalf("good batch size = %d, want 3 (empty message filtered)", res.Batch)
		}
	}

	// Same for verify: a wrong-length signature fails alone. The reference
	// signature is byte-identical to the service's, so sign on the CPU
	// (a single Sign call would sit in the hour-long coalescing window).
	msg := []byte("verify me")
	sig, err := spx.Sign(svc.cfg.Key, msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := svc.SubmitVerify(msg, []byte("short"))
	if err != nil {
		t.Fatal(err)
	}
	good := make([]*Future, 0, 3)
	for i := 0; i < 3; i++ {
		fut, err := svc.SubmitVerify(msg, sig)
		if err != nil {
			t.Fatal(err)
		}
		good = append(good, fut)
	}
	if _, err := bad.Wait(ctx); !errors.Is(err, ErrSignatureLength) {
		t.Fatalf("short signature error = %v, want ErrSignatureLength", err)
	}
	for i, fut := range good {
		res, err := fut.Wait(ctx)
		if err != nil {
			t.Fatalf("good verify %d: %v", i, err)
		}
		if !res.Valid {
			t.Fatalf("good verify %d reported invalid", i)
		}
	}
}

func TestServiceVerifyAndKeyGen(t *testing.T) {
	svc := newTestService(t)
	defer svc.Close()
	ctx := context.Background()

	msg := []byte("round trip")
	sig, err := svc.Sign(ctx, msg)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := svc.Verify(ctx, msg, sig)
	if err != nil || !ok {
		t.Fatalf("valid signature rejected: ok=%v err=%v", ok, err)
	}
	ok, err = svc.Verify(ctx, []byte("tampered"), sig)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("tampered message verified")
	}

	// KeyGen through the fleet matches KeyFromSeeds.
	p := svc.Params()
	seed := core.SeedTriple{
		SKSeed: bytes.Repeat([]byte{1}, p.N),
		SKPRF:  bytes.Repeat([]byte{2}, p.N),
		PKSeed: bytes.Repeat([]byte{3}, p.N),
	}
	fut, err := svc.SubmitKeyGen(&seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fut.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := spx.KeyFromSeeds(p, seed.SKSeed, seed.SKPRF, seed.PKSeed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Key.Bytes(), want.Bytes()) {
		t.Fatal("fleet keygen differs from KeyFromSeeds")
	}

	// A malformed seed triple fails alone; batch-mates still derive.
	badSeed := core.SeedTriple{SKSeed: []byte("short"), SKPRF: seed.SKPRF, PKSeed: seed.PKSeed}
	badFut, err := svc.SubmitKeyGen(&badSeed)
	if err != nil {
		t.Fatal(err)
	}
	goodFut, err := svc.SubmitKeyGen(&seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := badFut.Wait(ctx); !errors.Is(err, ErrSeedLength) {
		t.Fatalf("bad seed error = %v, want ErrSeedLength", err)
	}
	goodRes, err := goodFut.Wait(ctx)
	if err != nil {
		t.Fatalf("good keygen poisoned by bad batch-mate: %v", err)
	}
	if !bytes.Equal(goodRes.Key.Bytes(), want.Bytes()) {
		t.Fatal("good keygen result corrupted")
	}
}

func TestServiceCloseDrains(t *testing.T) {
	svc := newTestService(t, WithFlushDeadline(time.Hour)) // only Close can flush
	futs := make([]*Future, 0, 5)
	for i := 0; i < 5; i++ {
		fut, err := svc.SubmitSign([]byte(fmt.Sprintf("drain-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, fut)
	}
	done := make(chan struct{})
	go func() { svc.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not drain")
	}
	ctx := context.Background()
	for i, fut := range futs {
		res, err := fut.Wait(ctx)
		if err != nil {
			t.Fatalf("drained future %d: %v", i, err)
		}
		if len(res.Sig) == 0 {
			t.Fatalf("drained future %d has no signature", i)
		}
	}
	if _, err := svc.SubmitSign([]byte("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close = %v, want ErrClosed", err)
	}
	if _, err := svc.SubmitVerify([]byte("late"), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("verify after Close = %v, want ErrClosed", err)
	}
	if _, err := svc.SubmitKeyGen(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("keygen after Close = %v, want ErrClosed", err)
	}
}
