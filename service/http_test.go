package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"herosign/internal/spx"
)

func postJSON(t *testing.T, url string, req, resp any) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if resp != nil && r.StatusCode == http.StatusOK {
		if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestHTTPEndpoints(t *testing.T) {
	svc := newTestService(t)
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	msg := []byte("over the wire")

	// /v1/sign
	var sr signResponse
	if r := postJSON(t, ts.URL+"/v1/sign", signRequest{Message: msg}, &sr); r.StatusCode != http.StatusOK {
		t.Fatalf("sign status %d", r.StatusCode)
	}
	if err := spx.Verify(svc.PublicKey(), msg, sr.Signature); err != nil {
		t.Fatalf("HTTP signature does not verify: %v", err)
	}
	if sr.Device == "" || sr.Batch < 1 {
		t.Fatalf("sign response missing batch metadata: %+v", sr)
	}

	// /v1/verify — valid and tampered.
	var vr verifyResponse
	postJSON(t, ts.URL+"/v1/verify", verifyRequest{Message: msg, Signature: sr.Signature}, &vr)
	if !vr.Valid {
		t.Fatal("HTTP verify rejected a valid signature")
	}
	postJSON(t, ts.URL+"/v1/verify", verifyRequest{Message: []byte("x"), Signature: sr.Signature}, &vr)
	if vr.Valid {
		t.Fatal("HTTP verify accepted a tampered message")
	}

	// /v1/keygen
	var kr keygenResponse
	postJSON(t, ts.URL+"/v1/keygen", keygenRequest{Count: 2}, &kr)
	if len(kr.Keys) != 2 {
		t.Fatalf("keygen returned %d keys, want 2", len(kr.Keys))
	}
	p := svc.Params()
	for i, k := range kr.Keys {
		if len(k.PublicKey) != p.PKBytes || len(k.PrivateKey) != p.SKBytes {
			t.Fatalf("key %d has wrong sizes: pk=%d sk=%d", i, len(k.PublicKey), len(k.PrivateKey))
		}
	}

	// /v1/stats
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.TotalMessages < 5 { // 1 sign + 2 verify + 2 keygen
		t.Fatalf("stats counted %d messages, want >= 5", st.TotalMessages)
	}
	if len(st.BatchSizeHist) == 0 || len(st.Devices) != 2 {
		t.Fatalf("stats missing histogram or devices: %+v", st)
	}
	if st.ModeledGPUSeconds <= 0 {
		t.Fatal("stats report no modeled GPU time")
	}

	// Error paths: empty message -> 400; bad JSON -> 400.
	if r := postJSON(t, ts.URL+"/v1/sign", signRequest{}, nil); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty message status %d, want 400", r.StatusCode)
	}
	r, err := http.Post(ts.URL+"/v1/sign", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status %d, want 400", r.StatusCode)
	}
}

func TestHTTPAfterClose(t *testing.T) {
	svc := newTestService(t)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	svc.Close()
	if r := postJSON(t, ts.URL+"/v1/sign", signRequest{Message: []byte("late")}, nil); r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("sign after close status %d, want 503", r.StatusCode)
	}
}
