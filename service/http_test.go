package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"herosign/internal/spx"
)

func postJSON(t *testing.T, url string, req, resp any) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if resp != nil && r.StatusCode == http.StatusOK {
		if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestHTTPEndpoints(t *testing.T) {
	svc := newTestService(t)
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	msg := []byte("over the wire")

	// /v1/sign
	var sr signResponse
	if r := postJSON(t, ts.URL+"/v1/sign", signRequest{Message: msg}, &sr); r.StatusCode != http.StatusOK {
		t.Fatalf("sign status %d", r.StatusCode)
	}
	if err := spx.Verify(svc.PublicKey(), msg, sr.Signature); err != nil {
		t.Fatalf("HTTP signature does not verify: %v", err)
	}
	if sr.Device == "" || sr.Batch < 1 {
		t.Fatalf("sign response missing batch metadata: %+v", sr)
	}

	// /v1/verify — valid and tampered.
	var vr verifyResponse
	postJSON(t, ts.URL+"/v1/verify", verifyRequest{Message: msg, Signature: sr.Signature}, &vr)
	if !vr.Valid {
		t.Fatal("HTTP verify rejected a valid signature")
	}
	postJSON(t, ts.URL+"/v1/verify", verifyRequest{Message: []byte("x"), Signature: sr.Signature}, &vr)
	if vr.Valid {
		t.Fatal("HTTP verify accepted a tampered message")
	}

	// /v1/keygen
	var kr keygenResponse
	postJSON(t, ts.URL+"/v1/keygen", keygenRequest{Count: 2}, &kr)
	if len(kr.Keys) != 2 {
		t.Fatalf("keygen returned %d keys, want 2", len(kr.Keys))
	}
	p := svc.Params()
	for i, k := range kr.Keys {
		if len(k.PublicKey) != p.PKBytes || len(k.PrivateKey) != p.SKBytes {
			t.Fatalf("key %d has wrong sizes: pk=%d sk=%d", i, len(k.PublicKey), len(k.PrivateKey))
		}
	}

	// /v1/stats
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.TotalMessages < 5 { // 1 sign + 2 verify + 2 keygen
		t.Fatalf("stats counted %d messages, want >= 5", st.TotalMessages)
	}
	if len(st.BatchSizeHist) == 0 || len(st.Devices) != 2 {
		t.Fatalf("stats missing histogram or devices: %+v", st)
	}
	if st.ModeledGPUSeconds <= 0 {
		t.Fatal("stats report no modeled GPU time")
	}

	// Error paths: empty message -> 400; bad JSON -> 400.
	if r := postJSON(t, ts.URL+"/v1/sign", signRequest{}, nil); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty message status %d, want 400", r.StatusCode)
	}
	r, err := http.Post(ts.URL+"/v1/sign", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status %d, want 400", r.StatusCode)
	}
}

// TestHTTPSignBatchAndKeys exercises the batch-sign endpoint and the shard
// key catalog together: every signature must verify under the public key
// the catalog lists for the batch's key domain.
func TestHTTPSignBatchAndKeys(t *testing.T) {
	svc := newTestService(t)
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	msgs := [][]byte{[]byte("batch-0"), []byte("batch-1"), []byte("batch-2")}
	var br signBatchResponse
	if r := postJSON(t, ts.URL+"/v1/sign/batch", signBatchRequest{Messages: msgs}, &br); r.StatusCode != http.StatusOK {
		t.Fatalf("sign/batch status %d", r.StatusCode)
	}
	if len(br.Signatures) != len(msgs) || br.KeyID == "" {
		t.Fatalf("sign/batch returned %d signatures, key_id=%q", len(br.Signatures), br.KeyID)
	}

	resp, err := http.Get(ts.URL + "/v1/keys")
	if err != nil {
		t.Fatal(err)
	}
	var kr keysResponse
	if err := json.NewDecoder(resp.Body).Decode(&kr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(kr.Keys) != 1 {
		t.Fatalf("key catalog has %d entries, want 1", len(kr.Keys))
	}
	pk, err := spx.ParsePublicKey(svc.Params(), kr.Keys[0].PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	if kr.Keys[0].KeyID != br.KeyID {
		t.Fatalf("catalog key id %q != batch key id %q", kr.Keys[0].KeyID, br.KeyID)
	}
	for i, sig := range br.Signatures {
		if err := spx.Verify(pk, msgs[i], sig); err != nil {
			t.Fatalf("batch signature %d does not verify under the catalog key: %v", i, err)
		}
	}
}

// TestHTTPErrorPaths covers the front end's failure shapes: malformed JSON,
// an empty batch, an oversized body and an unknown key id.
func TestHTTPErrorPaths(t *testing.T) {
	svc := newTestService(t)
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Malformed JSON -> 400 on every POST endpoint.
	for _, ep := range []string{"/v1/sign", "/v1/sign/batch", "/v1/verify", "/v1/keygen"} {
		r, err := http.Post(ts.URL+ep, "application/json", bytes.NewReader([]byte("{not json")))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s malformed JSON status %d, want 400", ep, r.StatusCode)
		}
	}

	// Empty batch -> 400 with a JSON error.
	r := postJSON(t, ts.URL+"/v1/sign/batch", signBatchRequest{}, nil)
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status %d, want 400", r.StatusCode)
	}

	// Oversized body -> 413. The payload must be syntactically plausible
	// JSON so the decoder runs into the byte cap rather than a parse error.
	big := append([]byte(`{"message":"`), bytes.Repeat([]byte("A"), MaxBodyBytes+1024)...)
	big = append(big, []byte(`"}`)...)
	resp, err := http.Post(ts.URL+"/v1/sign", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status %d, want 413", resp.StatusCode)
	}
	if er.Error == "" {
		t.Fatal("oversized body error has no message")
	}

	// Unknown key id -> 404.
	if r := postJSON(t, ts.URL+"/v1/sign", signRequest{Message: []byte("m"), KeyID: "beef"}, nil); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown key id status %d, want 404", r.StatusCode)
	}
}

// TestHTTP429Shape checks the overload response: status 429, a Retry-After
// header in whole seconds, and the JSON body's retry_after_ms hint.
func TestHTTP429Shape(t *testing.T) {
	svc := newTestService(t,
		WithQueueLimit(1), WithMaxBatch(100), WithFlushDeadline(time.Hour))
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Occupy the single admission slot of each shard... there is one shard;
	// its lone slot holds a request that coalesces until Close.
	if _, err := svc.SubmitSign([]byte("occupant")); err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(signRequest{Message: []byte("rejected")})
	resp, err := http.Post(ts.URL+"/v1/sign", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After header = %q, want a positive whole-second value", ra)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.RetryAfterMs <= 0 {
		t.Fatalf("retry_after_ms = %d, want > 0", er.RetryAfterMs)
	}
	if er.Error == "" {
		t.Fatal("429 body has no error message")
	}
}

func TestHTTPAfterClose(t *testing.T) {
	svc := newTestService(t)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	svc.Close()
	if r := postJSON(t, ts.URL+"/v1/sign", signRequest{Message: []byte("late")}, nil); r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("sign after close status %d, want 503", r.StatusCode)
	}
}
