package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"herosign/internal/spx"
)

// TestSubmitVerifyBatchAllOrNothing: an over-capacity verify batch is
// rejected as a unit — no pair admitted, nothing shed, no verification work
// spent — while an in-limit batch resolves every verdict.
func TestSubmitVerifyBatchAllOrNothing(t *testing.T) {
	svc := newTestService(t,
		WithQueueLimit(4), WithShedPolicy(DropOldestDeadline),
		WithMaxBatch(100), WithFlushDeadline(time.Hour))
	defer svc.Close()

	sk := testKey(t)
	msgs := make([][]byte, 5)
	sigs := make([][]byte, 5)
	for i := range msgs {
		msgs[i] = []byte{byte(i), 'a', 'v'}
		sig, err := spx.Sign(sk, msgs[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		sigs[i] = sig
	}

	// A batch that can never fit the cap is non-retryable, not a 429.
	if _, err := svc.SubmitVerifyBatchKey("", msgs, sigs); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("5-pair batch against limit 4 = %v, want ErrBatchTooLarge", err)
	}
	if _, err := svc.SubmitVerifyBatchKey("", msgs, sigs[:4]); err == nil {
		t.Fatal("mismatched message/signature counts must error")
	}

	// A batch that fits the cap but not the current free space is a
	// transient overload, and must not displace the occupant.
	occupant, err := svc.SubmitSign([]byte("occupant"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.SubmitVerifyBatchKey("", msgs[:4], sigs[:4]); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("4-pair batch with 1 slot taken = %v, want ErrOverloaded", err)
	}
	select {
	case <-occupant.Done():
		t.Fatal("rejected verify batch displaced the occupant")
	default:
	}
	st := svc.Stats()
	if st.Shards[0].QueueDepth != 1 || st.ShedTotal != 0 {
		t.Fatalf("rejected batch left depth=%d shed=%d, want 1/0",
			st.Shards[0].QueueDepth, st.ShedTotal)
	}

	// An admitted batch resolves every pair, tampered members included.
	tampered := append([]byte(nil), sigs[1]...)
	tampered[90] ^= 1
	futs, err := svc.SubmitVerifyBatchKey("", msgs[:3], [][]byte{sigs[0], tampered, sigs[2]})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil { // flush the hour-long coalescing window
		t.Fatal(err)
	}
	want := []bool{true, false, true}
	for i, fut := range futs {
		res, err := fut.Wait(context.Background())
		if err != nil {
			t.Fatalf("pair %d: %v", i, err)
		}
		if res.Valid != want[i] {
			t.Errorf("pair %d: valid = %v, want %v", i, res.Valid, want[i])
		}
	}
}
