package herosign

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§IV). Each benchmark runs the corresponding
// experiment generator and reports the headline modeled metrics via
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates the full
// evaluation. The wall-clock ns/op measures the harness itself (simulator
// cost), not GPU time — modeled GPU quantities are the custom metrics.

import (
	"strconv"
	"strings"
	"testing"

	"herosign/internal/bench"
	"herosign/internal/core"
	"herosign/internal/cpuref"
	"herosign/internal/gpu/device"
	"herosign/internal/spx"
	"herosign/internal/spx/params"
)

func benchSuite(b *testing.B) *bench.Suite {
	b.Helper()
	s := bench.NewSuite(device.RTX4090)
	s.Sample = 2
	return s
}

func runExperiment(b *testing.B, id string) *bench.Table {
	b.Helper()
	s := benchSuite(b)
	var t *bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = s.RunByID(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	return t
}

// cell parses a float from table row r, column c.
func cell(b *testing.B, t *bench.Table, r, c int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(t.Rows[r][c], "x"), 64)
	if err != nil {
		b.Fatalf("cell(%d,%d)=%q: %v", r, c, t.Rows[r][c], err)
	}
	return v
}

func BenchmarkTable2_BaselineBreakdown(b *testing.B) {
	t := runExperiment(b, "table2")
	// Row 0 = 128f: FORS, Idle, MSS, WOTS in ms.
	b.ReportMetric(cell(b, t, 0, 1), "model-ms-FORS-128f")
	b.ReportMetric(cell(b, t, 0, 3), "model-ms-MSS-128f")
	b.ReportMetric(cell(b, t, 0, 4), "model-ms-WOTS-128f")
}

func BenchmarkTable3_BaselineProfile(b *testing.B) {
	t := runExperiment(b, "table3")
	b.ReportMetric(cell(b, t, 0, 1), "warp-occ-FORS-pct")
	b.ReportMetric(cell(b, t, 1, 2), "theo-occ-TREE-pct")
}

func BenchmarkTable4_TreeTuning(b *testing.B) {
	t := runExperiment(b, "table4")
	b.ReportMetric(cell(b, t, 0, 3), "F-128f")
	b.ReportMetric(cell(b, t, 0, 1), "shared-util-128f")
}

func BenchmarkTable5_PTXSelection(b *testing.B) {
	t := runExperiment(b, "table5")
	ptxCount := 0.0
	for _, row := range t.Rows {
		for _, c := range row[1:4] {
			if c == "ok" {
				ptxCount++
			}
		}
	}
	b.ReportMetric(ptxCount, "ptx-selections") // paper: 5 of 9
}

func BenchmarkTable6_BankConflicts(b *testing.B) {
	t := runExperiment(b, "table6")
	b.ReportMetric(cell(b, t, 0, 2), "base-load-conflicts-128f-FORS")
	b.ReportMetric(cell(b, t, 0, 4), "padded-load-conflicts-128f-FORS")
}

func BenchmarkTable8_Kernels(b *testing.B) {
	t := runExperiment(b, "table8")
	// Rows are (set x kernel); speedup is column 4.
	for i, label := range []string{"FORS-128f", "TREE-128f", "WOTS-128f"} {
		b.ReportMetric(cell(b, t, i, 4), "speedup-"+label)
	}
}

func BenchmarkTable9_CrossPlatform(b *testing.B) {
	t := runExperiment(b, "table9")
	b.ReportMetric(cell(b, t, 0, 1), "hero-kops-128f")
}

func BenchmarkTable10_CPU(b *testing.B) {
	t := runExperiment(b, "table10")
	b.ReportMetric(cell(b, t, 0, 3), "go-cpu-kops-128f")
	b.ReportMetric(cell(b, t, 0, 5), "hero-vs-avx2-16t")
}

func BenchmarkTable11_CompileTime(b *testing.B) {
	t := runExperiment(b, "table11")
	b.ReportMetric(cell(b, t, 0, 3), "compile-speedup-128f")
}

func BenchmarkFig11_FORSSteps(b *testing.B) {
	t := runExperiment(b, "fig11")
	// Final row of each set carries the cumulative speedup in column 4.
	b.ReportMetric(cell(b, t, 5, 4), "cumulative-128f")
	b.ReportMetric(cell(b, t, 11, 4), "cumulative-192f")
	b.ReportMetric(cell(b, t, 17, 4), "cumulative-256f")
}

func BenchmarkFig12_EndToEnd(b *testing.B) {
	t := runExperiment(b, "fig12")
	// Rows: 4 configs per set; KOPS column 2, launch overhead column 3.
	base128 := cell(b, t, 0, 2)
	hero128 := cell(b, t, 3, 2)
	b.ReportMetric(hero128, "hero-kops-128f")
	b.ReportMetric(hero128/base128, "speedup-128f")
	b.ReportMetric(cell(b, t, 0, 3)/cell(b, t, 3, 3), "launch-reduction-128f")
}

func BenchmarkFig13_BlockSizeSweep(b *testing.B) {
	s := benchSuite(b)
	if testing.Short() {
		b.Skip("sweep skipped in -short")
	}
	var t *bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = s.RunByID("fig13")
		if err != nil {
			b.Fatal(err)
		}
	}
	// First row: 128f, block size 2 (the paper reports ~3.1x there).
	b.ReportMetric(cell(b, t, 0, 4), "speedup-128f-bs2")
	b.ReportMetric(cell(b, t, 9, 4), "speedup-128f-bs1024")
}

func BenchmarkFig14_CrossArch(b *testing.B) {
	if testing.Short() {
		b.Skip("cross-architecture sweep skipped in -short")
	}
	t := runExperiment(b, "fig14")
	// Rows: 6 devices x 3 sets; speedup in column 4.
	for i, dev := range []string{"GTX1070", "V100", "RTX2080Ti", "A100", "RTX4090", "H100"} {
		b.ReportMetric(cell(b, t, i*3, 4), "speedup-128f-"+dev)
	}
}

// BenchmarkGPUSimSign measures the harness cost of fully-functional batch
// signing on the simulated RTX 4090 (all blocks executed).
func BenchmarkGPUSimSign128f(b *testing.B) {
	p := params.SPHINCSPlus128f
	sk := benchKey(b, p)
	signer, err := core.New(core.Config{
		Params: p, Device: device.RTX4090, Features: core.AllFeatures(),
	})
	if err != nil {
		b.Fatal(err)
	}
	msgs := [][]byte{[]byte("bench message")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := signer.SignBatch(sk, msgs)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Sigs[0]) != p.SigBytes {
			b.Fatal("bad signature size")
		}
	}
}

// BenchmarkCPUParallelSign measures the real multi-goroutine CPU signer
// (the Table X comparator) on this machine.
func BenchmarkCPUParallelSign128f(b *testing.B) {
	p := params.SPHINCSPlus128f
	sk := benchKey(b, p)
	msgs := make([][]byte, 16)
	for i := range msgs {
		msgs[i] = []byte{byte(i)}
	}
	b.ResetTimer()
	var kops float64
	for i := 0; i < b.N; i++ {
		_, res, err := cpuref.SignBatch(sk, msgs, 0)
		if err != nil {
			b.Fatal(err)
		}
		kops = res.KOPS
	}
	b.ReportMetric(kops, "measured-kops")
}

func benchKey(b *testing.B, p *params.Params) *spx.PrivateKey {
	b.Helper()
	seed := make([]byte, p.N)
	for i := range seed {
		seed[i] = byte(i + 7)
	}
	sk, err := spx.KeyFromSeeds(p, seed, seed, seed)
	if err != nil {
		b.Fatal(err)
	}
	return sk
}
