#!/usr/bin/env bash
# Two-process fleet smoke test: a leaf herosign-serve and a remote-only
# front end proxying to it over real TCP. Drives 200 signs through the
# front, verifies every signature, and checks both processes drain cleanly
# on SIGTERM. Exits non-zero on any failure.
set -euo pipefail
cd "$(dirname "$0")/.."

LEAF_PORT="${LEAF_PORT:-18081}"
FRONT_PORT="${FRONT_PORT:-18080}"
N="${N:-200}"

workdir="$(mktemp -d)"
leaf_pid=""
front_pid=""
cleanup() {
    [ -n "$front_pid" ] && kill "$front_pid" 2>/dev/null || true
    [ -n "$leaf_pid" ] && kill "$leaf_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building =="
go build -o "$workdir/herosign" ./cmd/herosign
go build -o "$workdir/herosign-serve" ./cmd/herosign-serve
go build -o "$workdir/smoke-client" ./scripts/fleet-smoke-client

echo "== shared master key =="
"$workdir/herosign" keygen -set 128f -out "$workdir/key.hex"

wait_ready() {
    local url="$1" name="$2"
    for _ in $(seq 1 100); do
        if curl -sf "$url/v1/stats" >/dev/null 2>&1; then
            echo "$name ready at $url"
            return 0
        fi
        sleep 0.2
    done
    echo "$name did not become ready at $url" >&2
    return 1
}

echo "== leaf on :$LEAF_PORT =="
"$workdir/herosign-serve" -addr "127.0.0.1:$LEAF_PORT" \
    -key "$workdir/key.hex" -queue-limit -1 &
leaf_pid=$!
wait_ready "http://127.0.0.1:$LEAF_PORT" leaf

echo "== remote-only front on :$FRONT_PORT =="
"$workdir/herosign-serve" -addr "127.0.0.1:$FRONT_PORT" \
    -gpus "" -remote "http://127.0.0.1:$LEAF_PORT" -hedge-p 95 \
    -key "$workdir/key.hex" -queue-limit -1 \
    -replica-of "http://127.0.0.1:$LEAF_PORT" &
front_pid=$!
wait_ready "http://127.0.0.1:$FRONT_PORT" front

echo "== $N signs through the front =="
"$workdir/smoke-client" -url "http://127.0.0.1:$FRONT_PORT" -n "$N"

echo "== front-end stats =="
curl -sf "http://127.0.0.1:$FRONT_PORT/v1/stats" | tr ',' '\n' | grep -E '"(state|url|primary_sends|total_messages)"' || true

echo "== graceful drain (SIGTERM) =="
kill -TERM "$front_pid"
if ! wait "$front_pid"; then
    echo "front exited non-zero on SIGTERM" >&2
    exit 1
fi
front_pid=""
kill -TERM "$leaf_pid"
if ! wait "$leaf_pid"; then
    echo "leaf exited non-zero on SIGTERM" >&2
    exit 1
fi
leaf_pid=""

echo "fleet smoke: OK"
