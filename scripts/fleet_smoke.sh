#!/usr/bin/env bash
# Fleet smoke test, two lanes over real TCP:
#
#   lane 1 (static):  a leaf herosign-serve and a remote-only front end
#       proxying to it. Drives 200 signs through the front, verifies every
#       signature, and checks both processes drain cleanly on SIGTERM.
#
#   lane 2 (chaos + dynamic membership): a front end with -fleet-dynamic
#       and three leaves that JOIN it over the authenticated membership
#       protocol (shared -fleet-secret; one leaf slowed by the -chaos
#       injector). One leaf is crashed (SIGKILL) mid-lane: the front must
#       eject it, keep serving signs via failover, and retire the member
#       when its lease expires. Another leaf is SIGTERMed and must LEAVE
#       cleanly before draining. Unsigned join attempts must bounce 401.
#
# Exits non-zero on any failure.
set -euo pipefail
cd "$(dirname "$0")/.."

LEAF_PORT="${LEAF_PORT:-18081}"
FRONT_PORT="${FRONT_PORT:-18080}"
CHAOS_FRONT_PORT="${CHAOS_FRONT_PORT:-18090}"
N="${N:-200}"

workdir="$(mktemp -d)"
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building =="
go build -o "$workdir/herosign" ./cmd/herosign
go build -o "$workdir/herosign-serve" ./cmd/herosign-serve
go build -o "$workdir/smoke-client" ./scripts/fleet-smoke-client

echo "== shared master key =="
"$workdir/herosign" keygen -set 128f -out "$workdir/key.hex"

# Authed leaves answer /v1/stats with 401 to the unsigned probe — that
# still proves the listener is up, so both 200 and 401 count as ready.
wait_ready() {
    local url="$1" name="$2" code
    for _ in $(seq 1 100); do
        code="$(curl -s -o /dev/null -w '%{http_code}' "$url/v1/stats" 2>/dev/null || true)"
        case "$code" in
        200 | 401)
            echo "$name ready at $url (HTTP $code)"
            return 0
            ;;
        esac
        sleep 0.2
    done
    echo "$name did not become ready at $url" >&2
    return 1
}

# ---------------------------------------------------------------- lane 1
echo "== lane 1: static fleet =="
echo "== leaf on :$LEAF_PORT =="
"$workdir/herosign-serve" -addr "127.0.0.1:$LEAF_PORT" \
    -key "$workdir/key.hex" -queue-limit -1 &
leaf_pid=$!
pids="$pids $leaf_pid"
wait_ready "http://127.0.0.1:$LEAF_PORT" leaf

echo "== remote-only front on :$FRONT_PORT =="
"$workdir/herosign-serve" -addr "127.0.0.1:$FRONT_PORT" \
    -gpus "" -remote "http://127.0.0.1:$LEAF_PORT" -hedge-p 95 \
    -key "$workdir/key.hex" -queue-limit -1 \
    -replica-of "http://127.0.0.1:$LEAF_PORT" &
front_pid=$!
pids="$pids $front_pid"
wait_ready "http://127.0.0.1:$FRONT_PORT" front

echo "== $N signs through the front =="
"$workdir/smoke-client" -url "http://127.0.0.1:$FRONT_PORT" -n "$N"

echo "== front-end stats =="
curl -sf "http://127.0.0.1:$FRONT_PORT/v1/stats" | tr ',' '\n' | grep -E '"(state|url|primary_sends|total_messages)"' || true

echo "== graceful drain (SIGTERM) =="
kill -TERM "$front_pid"
if ! wait "$front_pid"; then
    echo "front exited non-zero on SIGTERM" >&2
    exit 1
fi
kill -TERM "$leaf_pid"
if ! wait "$leaf_pid"; then
    echo "leaf exited non-zero on SIGTERM" >&2
    exit 1
fi

# ---------------------------------------------------------------- lane 2
echo
echo "== lane 2: chaos + dynamic membership =="
printf 'smoke-fleet-secret' >"$workdir/secret"
CF="http://127.0.0.1:$CHAOS_FRONT_PORT"

front_stats() { curl -sf "$CF/v1/stats" 2>/dev/null || true; }

wait_stats() {
    local pattern="$1" what="$2"
    for _ in $(seq 1 150); do
        if front_stats | grep -q "$pattern"; then
            echo "front observed: $what"
            return 0
        fi
        sleep 0.2
    done
    echo "front never observed: $what" >&2
    front_stats >&2
    return 1
}

echo "== dynamic front on :$CHAOS_FRONT_PORT =="
"$workdir/herosign-serve" -addr "127.0.0.1:$CHAOS_FRONT_PORT" \
    -gpus "" -fleet-dynamic -fleet-secret "@$workdir/secret" -hedge-p 95 \
    -key "$workdir/key.hex" -queue-limit -1 &
cfront_pid=$!
pids="$pids $cfront_pid"
wait_ready "$CF" chaos-front

echo "== unsigned join must bounce =="
code="$(curl -s -o /dev/null -w '%{http_code}' -X POST "$CF/v1/fleet/join" \
    -H 'Content-Type: application/json' -d '{"url":"http://127.0.0.1:1"}')"
if [ "$code" != "401" ]; then
    echo "unsigned join got HTTP $code, want 401" >&2
    exit 1
fi
echo "unsigned join rejected (HTTP 401)"

echo "== 3 leaves join (leaf 3 slowed by the fault injector) =="
cleaf_pids=()
for i in 1 2 3; do
    port=$((CHAOS_FRONT_PORT + i))
    extra=()
    if [ "$i" = 3 ]; then
        extra=(-chaos "mode=latency;path=/v1/sign;latency=25ms;jitter=10ms")
    fi
    "$workdir/herosign-serve" -addr "127.0.0.1:$port" \
        -key "$workdir/key.hex" -queue-limit -1 \
        -fleet-secret "@$workdir/secret" \
        -join "$CF" -advertise "http://127.0.0.1:$port" \
        "${extra[@]}" &
    cleaf_pids[$i]=$!
    pids="$pids ${cleaf_pids[$i]}"
    wait_ready "http://127.0.0.1:$port" "leaf$i"
done
for i in 1 2 3; do
    wait_stats "127.0.0.1:$((CHAOS_FRONT_PORT + i))" "leaf$i admitted"
done
wait_stats '"joined"' "join events in the membership log"

echo "== $N signs through the dynamic front =="
"$workdir/smoke-client" -url "$CF" -n "$N"

echo "== crash leaf 2 (SIGKILL, no leave) =="
kill -9 "${cleaf_pids[2]}"
wait "${cleaf_pids[2]}" 2>/dev/null || true
wait_stats '"ejected"' "ejection of the crashed leaf"

echo "== $N signs with a dead member (failover) =="
"$workdir/smoke-client" -url "$CF" -n "$N"
wait_stats '"lease-expired"' "lease-expired retirement of the crashed leaf"

echo "== leaf 3 departs cleanly (SIGTERM -> leave, then drain) =="
kill -TERM "${cleaf_pids[3]}"
if ! wait "${cleaf_pids[3]}"; then
    echo "leaf3 exited non-zero on SIGTERM" >&2
    exit 1
fi
wait_stats '"left"' "clean leave of leaf3"

echo "== signs on the single surviving leaf =="
"$workdir/smoke-client" -url "$CF" -n 50

echo "== membership log =="
front_stats | tr ',' '\n' | grep -E '"(type|url|auth_rejected)"' || true

echo "== graceful drain (SIGTERM) =="
kill -TERM "$cfront_pid"
if ! wait "$cfront_pid"; then
    echo "chaos front exited non-zero on SIGTERM" >&2
    exit 1
fi
kill -TERM "${cleaf_pids[1]}"
if ! wait "${cleaf_pids[1]}"; then
    echo "leaf1 exited non-zero on SIGTERM" >&2
    exit 1
fi
pids=""

echo "fleet smoke: OK"
