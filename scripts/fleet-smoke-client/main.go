// fleet-smoke-client drives the two-process fleet smoke test
// (scripts/fleet_smoke.sh): it fires -n sign requests at a front-end
// herosign-serve, retries 429s after the server's own estimate, verifies
// every signature against the public key advertised by /v1/keys, and exits
// non-zero on any hard failure or verification mismatch.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"herosign"
)

type signRequest struct {
	Message []byte `json:"message"`
}

type signResponse struct {
	Signature []byte `json:"signature"`
	KeyID     string `json:"key_id"`
}

type errorResponse struct {
	Error        string `json:"error"`
	RetryAfterMs int64  `json:"retry_after_ms"`
}

func main() {
	url := flag.String("url", "http://127.0.0.1:18080", "front-end base URL")
	n := flag.Int("n", 200, "sign requests to issue")
	workers := flag.Int("workers", 8, "concurrent clients")
	paramsName := flag.String("params", "128f", "SPHINCS+ parameter set")
	flag.Parse()

	p, err := herosign.ParamsByName(*paramsName)
	if err != nil {
		die("%v", err)
	}

	// Fetch the key catalog; signatures verify against the key domain each
	// response names.
	var catalog struct {
		Keys []struct {
			KeyID     string `json:"key_id"`
			PublicKey []byte `json:"public_key"`
		} `json:"keys"`
	}
	if err := getJSON(*url+"/v1/keys", &catalog); err != nil {
		die("fetch key catalog: %v", err)
	}
	pks := make(map[string]*herosign.PublicKey, len(catalog.Keys))
	for _, k := range catalog.Keys {
		pk, err := herosign.ParsePublicKey(p, k.PublicKey)
		if err != nil {
			die("catalog key %s: %v", k.KeyID, err)
		}
		pks[k.KeyID] = pk
	}

	var (
		ok       atomic.Int64
		retried  atomic.Int64
		failures atomic.Int64
		wg       sync.WaitGroup
	)
	jobs := make(chan int)
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				msg := fmt.Appendf(nil, "fleet-smoke-%d", i)
				if err := signOnce(*url, msg, pks, &retried); err != nil {
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "sign %d: %v\n", i, err)
				} else {
					ok.Add(1)
				}
			}
		}()
	}
	start := time.Now()
	for i := 0; i < *n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	fmt.Printf("fleet-smoke-client: %d/%d signed and verified in %v (%d 429 retries, %d failures)\n",
		ok.Load(), *n, time.Since(start).Round(time.Millisecond), retried.Load(), failures.Load())
	if failures.Load() > 0 || ok.Load() != int64(*n) {
		os.Exit(1)
	}
}

// signOnce signs one message, retrying 429s (bounded) and verifying the
// result against the catalog key for the responding domain.
func signOnce(base string, msg []byte, pks map[string]*herosign.PublicKey, retried *atomic.Int64) error {
	body, _ := json.Marshal(signRequest{Message: msg})
	for attempt := 0; attempt < 50; attempt++ {
		resp, err := http.Post(base+"/v1/sign", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			var er errorResponse
			_ = json.NewDecoder(resp.Body).Decode(&er)
			resp.Body.Close()
			retried.Add(1)
			backoff := time.Duration(er.RetryAfterMs) * time.Millisecond
			if backoff <= 0 {
				backoff = 50 * time.Millisecond
			}
			time.Sleep(backoff)
			continue
		}
		var sr signResponse
		err = json.NewDecoder(resp.Body).Decode(&sr)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		if err != nil {
			return fmt.Errorf("decode response: %w", err)
		}
		pk, ok := pks[sr.KeyID]
		if !ok {
			return fmt.Errorf("response names unknown key domain %q", sr.KeyID)
		}
		if err := herosign.Verify(pk, msg, sr.Signature); err != nil {
			return fmt.Errorf("signature does not verify: %w", err)
		}
		return nil
	}
	return fmt.Errorf("still overloaded after 50 retries")
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fleet-smoke-client: %s\n", fmt.Sprintf(format, args...))
	os.Exit(1)
}
