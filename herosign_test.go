package herosign

import (
	"bytes"
	"context"
	"testing"
	"time"
)

func apiKey(t testing.TB, p *Params) *PrivateKey {
	t.Helper()
	seed := func(tag byte) []byte {
		b := make([]byte, p.N)
		for i := range b {
			b[i] = byte(i)*3 + tag
		}
		return b
	}
	sk, err := KeyFromSeeds(p, seed(1), seed(2), seed(3))
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

// TestPublicAPISignVerify exercises the CPU path end to end.
func TestPublicAPISignVerify(t *testing.T) {
	p := SPHINCSPlus128f
	sk, err := GenerateKey(p)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("public API quickstart")
	sig, err := Sign(sk, msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) != p.SigBytes {
		t.Fatalf("sig len %d, want %d", len(sig), p.SigBytes)
	}
	if err := Verify(&sk.PublicKey, msg, sig); err != nil {
		t.Fatal(err)
	}
	sig[100] ^= 1
	if err := Verify(&sk.PublicKey, msg, sig); err == nil {
		t.Fatal("tampered signature verified")
	}
}

// TestAcceleratorMatchesCPU checks the headline invariant through the
// public API: GPU-simulated batch signatures equal the CPU reference.
func TestAcceleratorMatchesCPU(t *testing.T) {
	p := SPHINCSPlus128f
	sk := apiKey(t, p)
	gpu, err := GPUByName("RTX 4090")
	if err != nil {
		t.Fatal(err)
	}
	acc, err := NewAccelerator(p, gpu)
	if err != nil {
		t.Fatal(err)
	}
	msgs := [][]byte{[]byte("m0"), []byte("m1"), []byte("m2")}
	res, err := acc.SignBatch(sk, msgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range msgs {
		want, err := Sign(sk, m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Sigs[i], want) {
			t.Fatalf("batch signature %d differs from CPU reference", i)
		}
		if err := Verify(&sk.PublicKey, m, res.Sigs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if res.ThroughputKOPS <= 0 {
		t.Fatal("no modeled throughput")
	}
	if acc.Tuning() == nil || acc.Tuning().F != 3 {
		t.Fatalf("tuning = %+v", acc.Tuning())
	}
}

// TestBaselineSlowerThanHero compares the two public configurations.
func TestBaselineSlowerThanHero(t *testing.T) {
	p := SPHINCSPlus128f
	sk := apiKey(t, p)
	gpu := GPUs()[4] // RTX 4090
	if gpu.Name != "RTX 4090" {
		t.Fatalf("catalog order changed: %s", gpu.Name)
	}
	hero, err := NewAccelerator(p, gpu)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewBaseline(p, gpu)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hero.MeasureBatch(sk, 128)
	if err != nil {
		t.Fatal(err)
	}
	b, err := base.MeasureBatch(sk, 128)
	if err != nil {
		t.Fatal(err)
	}
	if h.ThroughputKOPS <= b.ThroughputKOPS {
		t.Fatalf("hero %.1f KOPS not faster than baseline %.1f KOPS",
			h.ThroughputKOPS, b.ThroughputKOPS)
	}
}

// TestAcceleratorVerifyBatch exercises GPU-simulated verification through
// the public API, including a tampered signature.
func TestAcceleratorVerifyBatch(t *testing.T) {
	p := SPHINCSPlus128f
	sk := apiKey(t, p)
	gpu, _ := GPUByName("RTX 4090")
	acc, err := NewAccelerator(p, gpu)
	if err != nil {
		t.Fatal(err)
	}
	msgs := [][]byte{[]byte("v0"), []byte("v1")}
	res, err := acc.SignBatch(sk, msgs)
	if err != nil {
		t.Fatal(err)
	}
	sigs := res.Sigs
	sigs[1] = append([]byte(nil), sigs[1]...)
	sigs[1][42] ^= 1
	v, err := acc.VerifyBatch(&sk.PublicKey, msgs, sigs)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK[0] || v.OK[1] {
		t.Fatalf("verdicts = %v, want [true false]", v.OK)
	}
}

// TestAcceleratorKeyGenBatch exercises GPU key generation through the
// public API and confirms equality with KeyFromSeeds.
func TestAcceleratorKeyGenBatch(t *testing.T) {
	p := SPHINCSPlus128f
	gpu, _ := GPUByName("RTX 4090")
	acc, err := NewAccelerator(p, gpu)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(tag byte) []byte {
		b := make([]byte, p.N)
		for i := range b {
			b[i] = byte(i) ^ tag
		}
		return b
	}
	seeds := []SeedTriple{{SKSeed: mk(1), SKPRF: mk(2), PKSeed: mk(3)}}
	res, err := acc.KeyGenBatch(seeds)
	if err != nil {
		t.Fatal(err)
	}
	want, err := KeyFromSeeds(p, mk(1), mk(2), mk(3))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Keys[0].Bytes(), want.Bytes()) {
		t.Fatal("GPU keygen differs from KeyFromSeeds")
	}
}

// TestParamsByName covers lookup forms.
func TestParamsByName(t *testing.T) {
	for _, name := range []string{"SPHINCS+-128f", "128f", "256s"} {
		if _, err := ParamsByName(name); err != nil {
			t.Errorf("ParamsByName(%q): %v", name, err)
		}
	}
	if _, err := ParamsByName("SPHINCS+-512f"); err == nil {
		t.Error("unknown set resolved")
	}
	if len(AllParams()) != 6 {
		t.Error("expected six built-in sets")
	}
}

// TestTuneAPI runs the exported tuner.
func TestTuneAPI(t *testing.T) {
	gpu, _ := GPUByName("Ada")
	r, err := Tune(SPHINCSPlus192f, gpu)
	if err != nil {
		t.Fatal(err)
	}
	if r.F != 2 || r.ThreadUtil != 0.75 {
		t.Fatalf("192f tuning = %s", r)
	}
}

// TestOptions covers the functional options.
func TestOptions(t *testing.T) {
	p := SPHINCSPlus128f
	gpu, _ := GPUByName("RTX 4090")
	acc, err := NewAccelerator(p, gpu,
		WithFeatures(BaselineFeatures()), WithSubBatch(16), WithStreams(2))
	if err != nil {
		t.Fatal(err)
	}
	if acc.Tuning() != nil {
		t.Error("baseline features should not run the tuner")
	}
}

// TestServiceBackendAPI exercises the new serving-layer surface end to end
// through the public package: a sharded mixed fleet with bounded admission.
func TestServiceBackendAPI(t *testing.T) {
	p := SPHINCSPlus128f
	gpu, _ := GPUByName("RTX 4090")
	svc, err := NewService(
		WithServiceParams(p),
		WithServiceKey(apiKey(t, p)),
		WithServiceDevices(gpu),
		WithBackend(NewCPURefBackend(1)),
		WithShards(2),
		WithQueueLimit(AutoQueueLimit),
		WithShedPolicy(RejectNewest),
		WithDrainDeadline(time.Minute),
		WithServiceFlushDeadline(2*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	shards := svc.Shards()
	if len(shards) != 2 {
		t.Fatalf("Shards() = %d, want 2", len(shards))
	}
	ctx := context.Background()
	msg := []byte("public api over the sharded fleet")
	sig, err := svc.Sign(ctx, msg)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := svc.Verify(ctx, msg, sig) // fan-out across both key domains
	if err != nil || !ok {
		t.Fatalf("service signature rejected: ok=%v err=%v", ok, err)
	}
	st := svc.Stats()
	for _, ss := range st.Shards {
		if ss.QueueLimit <= 0 {
			t.Fatalf("auto queue limit not applied to shard %d: %+v", ss.Shard, ss)
		}
	}
}
