module herosign

go 1.24.0
