// Cross-GPU auto-tuning: the paper's §IV-F extends HERO-Sign to six GPU
// architectures by re-running the offline Tree Tuning search per platform.
//
// This example runs Algorithm 1 for every -f parameter set on every device
// in the catalog, prints the selected fusion configuration, and measures the
// modeled HERO-vs-baseline speedup on each platform — the content of the
// paper's Figure 14 as a living program.
package main

import (
	"fmt"
	"log"

	"herosign"
)

func main() {
	sk128, err := herosign.GenerateKey(herosign.SPHINCSPlus128f)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Tree Tuning across the device catalog:")
	for _, gpu := range herosign.GPUs() {
		for _, p := range []*herosign.Params{
			herosign.SPHINCSPlus128f, herosign.SPHINCSPlus192f, herosign.SPHINCSPlus256f,
		} {
			r, err := herosign.Tune(p, gpu)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-12s %-14s %s\n", gpu.Name, p.Name, r)
		}
	}

	fmt.Println("\nModeled HERO-Sign speedup over baseline (SPHINCS+-128f, batch 256):")
	for _, gpu := range herosign.GPUs() {
		hero, err := herosign.NewAccelerator(herosign.SPHINCSPlus128f, gpu)
		if err != nil {
			log.Fatal(err)
		}
		base, err := herosign.NewBaseline(herosign.SPHINCSPlus128f, gpu)
		if err != nil {
			log.Fatal(err)
		}
		h, err := hero.MeasureBatch(sk128, 256)
		if err != nil {
			log.Fatal(err)
		}
		b, err := base.MeasureBatch(sk128, 256)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s baseline %7.2f KOPS   hero %7.2f KOPS   speedup %.2fx\n",
			gpu.Name, b.ThroughputKOPS, h.ThroughputKOPS,
			h.ThroughputKOPS/b.ThroughputKOPS)
	}
}
