// Blockchain batch signing: the paper motivates HERO-Sign with
// high-throughput applications (blockchain, authentication, VPNs, IoT)
// where SPHINCS+ signing speed bounds system throughput.
//
// This example models a block producer signing a batch of 256 transactions
// with SPHINCS+-128f, comparing the TCAS-style baseline against HERO-Sign
// with and without task-graph execution on a simulated RTX 4090, then
// verifies every returned signature.
package main

import (
	"fmt"
	"log"

	"herosign"
)

func main() {
	p := herosign.SPHINCSPlus128f
	gpu, err := herosign.GPUByName("RTX 4090")
	if err != nil {
		log.Fatal(err)
	}
	sk, err := herosign.GenerateKey(p)
	if err != nil {
		log.Fatal(err)
	}

	const txCount = 256
	txs := make([][]byte, txCount)
	for i := range txs {
		txs[i] = []byte(fmt.Sprintf("tx{nonce:%d,amount:%d,to:acct-%03d}", i, 1000+i, i%17))
	}

	configs := []struct {
		name  string
		feats herosign.Features
	}{
		{"TCAS-style baseline", herosign.BaselineFeatures()},
		{"HERO-Sign (streams)", func() herosign.Features {
			f := herosign.HeroFeatures()
			f.Graph = false
			return f
		}()},
		{"HERO-Sign (task graph)", herosign.HeroFeatures()},
	}

	var baseKOPS float64
	for _, cfg := range configs {
		acc, err := herosign.NewAccelerator(p, gpu, herosign.WithFeatures(cfg.feats))
		if err != nil {
			log.Fatal(err)
		}
		res, err := acc.SignBatch(sk, txs)
		if err != nil {
			log.Fatal(err)
		}
		for i, tx := range txs {
			if err := herosign.Verify(&sk.PublicKey, tx, res.Sigs[i]); err != nil {
				log.Fatalf("%s: tx %d failed verification: %v", cfg.name, i, err)
			}
		}
		if baseKOPS == 0 {
			baseKOPS = res.ThroughputKOPS
		}
		fmt.Printf("%-24s %8.2f KOPS  launch %8.2f us  speedup %.2fx\n",
			cfg.name, res.ThroughputKOPS, res.LaunchOverheadUs,
			res.ThroughputKOPS/baseKOPS)
	}
	fmt.Printf("\nall %d transaction signatures verified (%d bytes each)\n",
		txCount, p.SigBytes)
}
