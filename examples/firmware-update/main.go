// IoT firmware signing: hash-based signatures are a natural fit for
// long-lived embedded deployments because their security rests only on the
// hash function. This example signs a firmware image manifest with
// SPHINCS+-256f (the conservative level-5 set), distributes the public key
// to a simulated fleet of constrained verifiers, and demonstrates rollback
// rejection — a stale manifest signed under a retired key fails.
package main

import (
	"fmt"
	"log"

	"herosign"
)

type manifest struct {
	version string
	image   []byte
}

func (m manifest) encode() []byte {
	return append([]byte("fw-manifest:"+m.version+":"), m.image...)
}

func main() {
	p := herosign.SPHINCSPlus256f

	// Vendor side: current signing key and a retired one.
	current, err := herosign.GenerateKey(p)
	if err != nil {
		log.Fatal(err)
	}
	retired, err := herosign.GenerateKey(p)
	if err != nil {
		log.Fatal(err)
	}

	img := make([]byte, 4096)
	for i := range img {
		img[i] = byte(i * 31)
	}
	release := manifest{version: "2.4.1", image: img}

	// Sign the release on the build farm's simulated GPU: 256f triggers the
	// Relax-FORS model automatically.
	gpu, err := herosign.GPUByName("A100")
	if err != nil {
		log.Fatal(err)
	}
	acc, err := herosign.NewAccelerator(p, gpu)
	if err != nil {
		log.Fatal(err)
	}
	res, err := acc.SignBatch(current, [][]byte{release.encode()})
	if err != nil {
		log.Fatal(err)
	}
	sig := res.Sigs[0]
	fmt.Printf("signed firmware %s with %s on simulated %s (sig %d bytes)\n",
		release.version, p.Name, gpu.Name, len(sig))
	if t := acc.Tuning(); t != nil {
		fmt.Printf("  FORS tuning: %s\n", t)
	}

	// Device side: verify with the distributed public key (pure CPU path —
	// verification is cheap and runs on the constrained device).
	if err := herosign.Verify(&current.PublicKey, release.encode(), sig); err != nil {
		log.Fatal("fleet verification failed: ", err)
	}
	fmt.Println("fleet verifier: firmware signature OK, applying update")

	// Rollback attempt: an old manifest signed under the retired key must
	// not verify against the current public key.
	stale := manifest{version: "1.0.9", image: img}
	staleSig, err := herosign.Sign(retired, stale.encode())
	if err != nil {
		log.Fatal(err)
	}
	if err := herosign.Verify(&current.PublicKey, stale.encode(), staleSig); err == nil {
		log.Fatal("rollback manifest verified — key separation broken")
	}
	fmt.Println("fleet verifier: rollback manifest rejected (wrong key), as expected")
}
