// IoT firmware verification fan-out: hash-based signatures are a natural
// fit for long-lived embedded deployments because their security rests only
// on the hash function — and their traffic is radically verify-dominant:
// one vendor signature fans out to every device in the fleet. This example
// signs a firmware manifest once on the build farm's simulated GPU, then
// plays the device side at fleet scale: 100,000 verifications of the same
// release, comparing the scalar one-shot path (herosign.Verify, a fresh
// hashing context per call) against pooled reusable Verifiers that advance
// eight signatures' hash chains per multi-lane pass. It finishes with the
// classic rollback check — a stale manifest signed under a retired key must
// not verify.
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"sync"
	"time"

	"herosign"
)

type manifest struct {
	version string
	image   []byte
}

func (m manifest) encode() []byte {
	return append([]byte("fw-manifest:"+m.version+":"), m.image...)
}

func main() {
	fleet := flag.Int("fleet", 100_000, "device verifications to run through the lane-batched path")
	flag.Parse()

	// The f-sets trade signature size for speed; constrained verifiers care
	// about per-update latency, so the fleet runs the fast level-1 set.
	p := herosign.SPHINCSPlus128f

	// Vendor side: current signing key and a retired one.
	current, err := herosign.GenerateKey(p)
	if err != nil {
		log.Fatal(err)
	}
	retired, err := herosign.GenerateKey(p)
	if err != nil {
		log.Fatal(err)
	}

	img := make([]byte, 4096)
	for i := range img {
		img[i] = byte(i * 31)
	}
	release := manifest{version: "2.4.1", image: img}
	payload := release.encode()

	// Sign the release once on the build farm's simulated GPU.
	gpu, err := herosign.GPUByName("A100")
	if err != nil {
		log.Fatal(err)
	}
	acc, err := herosign.NewAccelerator(p, gpu)
	if err != nil {
		log.Fatal(err)
	}
	res, err := acc.SignBatch(current, [][]byte{payload})
	if err != nil {
		log.Fatal(err)
	}
	sig := res.Sigs[0]
	fmt.Printf("signed firmware %s with %s on simulated %s (sig %d bytes)\n",
		release.version, p.Name, gpu.Name, len(sig))

	// Device side, scalar baseline: the one-shot path allocates and warms a
	// fresh hashing context per call. A sample of the fleet is enough to
	// establish its rate.
	sample := *fleet / 20
	if sample < 1 {
		sample = 1
	}
	start := time.Now()
	for i := 0; i < sample; i++ {
		if err := herosign.Verify(&current.PublicKey, payload, sig); err != nil {
			log.Fatal("fleet verification failed: ", err)
		}
	}
	scalarRate := float64(sample) / time.Since(start).Seconds()
	fmt.Printf("scalar one-shot path:  %8.1f verifies/s (%d-device sample)\n", scalarRate, sample)

	// Device side, fleet scale: every device checks the same release. One
	// reusable Verifier per worker; VerifyBatch pools the WOTS chain steps
	// and Merkle climbs of up to eight signatures into each multi-lane hash
	// pass and allocates nothing in steady state.
	msgs := make([][]byte, *fleet)
	sigs := make([][]byte, *fleet)
	for i := range msgs {
		msgs[i] = payload
		sigs[i] = sig
	}
	ok := make([]bool, *fleet)
	workers := runtime.GOMAXPROCS(0)
	span := (*fleet + workers - 1) / workers
	start = time.Now()
	var wg sync.WaitGroup
	for lo := 0; lo < *fleet; lo += span {
		hi := lo + span
		if hi > *fleet {
			hi = *fleet
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			v := herosign.NewVerifier(&current.PublicKey)
			v.VerifyBatch(ok[lo:hi], msgs[lo:hi], sigs[lo:hi])
		}(lo, hi)
	}
	wg.Wait()
	laneRate := float64(*fleet) / time.Since(start).Seconds()
	for i, o := range ok {
		if !o {
			log.Fatalf("device %d rejected a valid release", i)
		}
	}
	fmt.Printf("lane-batched verifiers: %8.1f verifies/s (%d devices, %d workers)  %.2fx\n",
		laneRate, *fleet, workers, laneRate/scalarRate)
	if laneRate < scalarRate {
		log.Fatal("lane-batched fan-out fell below the scalar baseline")
	}
	fmt.Println("fleet: firmware signature OK everywhere, applying update")

	// Rollback attempt: an old manifest signed under the retired key must
	// not verify against the current public key.
	stale := manifest{version: "1.0.9", image: img}
	staleSig, err := herosign.Sign(retired, stale.encode())
	if err != nil {
		log.Fatal(err)
	}
	if err := herosign.Verify(&current.PublicKey, stale.encode(), staleSig); err == nil {
		log.Fatal("rollback manifest verified — key separation broken")
	}
	fmt.Println("fleet verifier: rollback manifest rejected (wrong key), as expected")
}
