// Service demo: an open-loop mixed workload against the signing service on
// a heterogeneous 2-shard fleet (simulated RTX 4090 + real-CPU lane
// engine), followed by an overload scenario against a bounded service.
//
// Phase 1 — mixed fleet:
//
//  1. submits -n individual sign requests (plus keygens) open-loop and
//     lets the coalescer flush them into batches across the two shards;
//  2. checks every signature verifies under the key domain named in its
//     result (each shard owns its own derived keypair), byte-compares the
//     master-shard sample against the CPU reference Sign, and verifies a
//     slice back through the service (routed by key ID and by fan-out);
//  3. compares the fleet's modeled makespan against issuing n sequential
//     SignBatch(1) calls on one device — the paper's batching argument,
//     restated as a serving-layer speedup;
//  4. fetches /v1/stats over HTTP and prints per-backend stats, dispatch
//     weights, the batch-size histogram and — since the cpuref backend runs
//     with a hypertree memo cache (-memo-mb) — the per-shard cache
//     hit/miss/residency counters.
//
// Phase 2 — overload: a service bounded by -queue-limit per shard is hit
// over HTTP with 2x its total admission capacity at once. The demo asserts
// the overflow is answered with 429 + Retry-After (so queues never grow
// beyond the caps) while the p99 latency of admitted requests stays
// bounded, and prints the shed/rejected counters from /v1/stats.
//
// Phase 3 — tenant isolation: a service with per-tenant token buckets
// (-tenant-rate equivalent) takes a flood from one API key while a second
// key submits paced requests with generous X-Request-Deadline headers. The
// demo asserts the quiet tenant is untouched (every request 200, zero rate
// rejections) while the hot tenant absorbs the 429s, fires one deliberately
// hopeless 1ms-deadline request into the backlog, and prints the per-tenant
// counter table from /v1/stats.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"herosign"
	"herosign/service"
)

func main() {
	n := flag.Int("n", 400, "open-loop sign submissions (phase 1)")
	verifies := flag.Int("verifies", 100, "verify submissions mixed in")
	keygens := flag.Int("keygens", 32, "keygen submissions mixed in")
	queueLimit := flag.Int("queue-limit", 24, "per-shard admission cap for the overload phase")
	memoMB := flag.Int("memo-mb", 8, "hypertree memo cache budget in MiB for the cpuref backend (0 = off)")
	flag.Parse()

	p := herosign.SPHINCSPlus128f
	sk, err := herosign.GenerateKey(p)
	if err != nil {
		log.Fatal(err)
	}
	dev, err := herosign.GPUByName("RTX 4090")
	if err != nil {
		log.Fatal(err)
	}
	cpuThreads := runtime.GOMAXPROCS(0)

	cpuBackend := func() herosign.Backend {
		if *memoMB > 0 {
			return herosign.NewCPURefBackendMemo(cpuThreads, int64(*memoMB)<<20, true)
		}
		return herosign.NewCPURefBackend(cpuThreads)
	}
	mixedOpts := func() []herosign.ServiceOption {
		return []herosign.ServiceOption{
			herosign.WithServiceParams(p),
			herosign.WithServiceKey(sk),
			herosign.WithServiceDevices(dev),
			herosign.WithBackend(cpuBackend()),
			herosign.WithShards(2),
			herosign.WithServiceFlushDeadline(2 * time.Millisecond),
		}
	}

	svc, err := herosign.NewService(mixedOpts()...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("service-demo phase 1: %s, 2 shards over [%s, cpuref-%dt], open-loop %d signs + %d verifies + %d keygens\n",
		p.Name, dev.Name, cpuThreads, *n, *verifies, *keygens)
	for _, sh := range svc.Shards() {
		fmt.Printf("  shard %d key=%s backends=%v\n", sh.ID, sh.KeyID, sh.Backends)
	}

	// --- Open-loop submission: fire every request without waiting. ---
	start := time.Now()
	msgs := make([][]byte, *n)
	futs := make([]*service.Future, *n)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("service-demo message %d", i))
		fut, err := svc.SubmitSign(msgs[i])
		if err != nil {
			log.Fatal(err)
		}
		futs[i] = fut
	}
	var keyFuts []*service.Future
	for i := 0; i < *keygens; i++ {
		fut, err := svc.SubmitKeyGen(nil)
		if err != nil {
			log.Fatal(err)
		}
		keyFuts = append(keyFuts, fut)
	}

	ctx := context.Background()
	sigs := make([][]byte, *n)
	keyIDs := make([]string, *n)
	perShard := map[string]int{}
	for i, fut := range futs {
		res, err := fut.Wait(ctx)
		if err != nil {
			log.Fatalf("sign %d: %v", i, err)
		}
		sigs[i], keyIDs[i] = res.Sig, res.KeyID
		perShard[res.KeyID]++
	}
	for i, fut := range keyFuts {
		if _, err := fut.Wait(ctx); err != nil {
			log.Fatalf("keygen %d: %v", i, err)
		}
	}

	// Verify a slice of the signatures back through the service, routed by
	// key ID (with every 8th message tampered) — the mixed part of the
	// workload — plus a few through the multi-shard fan-out path.
	var verFuts []*service.Future
	tampered := 0
	for i := 0; i < *verifies && i < *n; i++ {
		m := msgs[i]
		if i%8 == 3 {
			m = append([]byte("tampered "), m...)
			tampered++
		}
		fut, err := svc.SubmitVerifyKey(keyIDs[i], m, sigs[i])
		if err != nil {
			log.Fatal(err)
		}
		verFuts = append(verFuts, fut)
	}
	badVerdicts := 0
	for i, fut := range verFuts {
		res, err := fut.Wait(ctx)
		if err != nil {
			log.Fatalf("verify %d: %v", i, err)
		}
		if res.Valid != (i%8 != 3) {
			badVerdicts++
		}
	}
	for i := 0; i < 4 && i < *n; i++ {
		ok, err := svc.Verify(ctx, msgs[i], sigs[i]) // fan-out: no key ID
		if err != nil || !ok {
			log.Fatalf("fan-out verify %d failed: ok=%v err=%v", i, ok, err)
		}
	}
	wall := time.Since(start)

	// --- Correctness: every signature verifies under its key domain; the
	// master-shard sample is byte-identical to the CPU reference. ---
	masterID := service.KeyID(svc.PublicKey())
	checked := 0
	for i, sig := range sigs {
		pk, err := svc.PublicKeyFor(keyIDs[i])
		if err != nil {
			log.Fatalf("signature %d names unknown key %q", i, keyIDs[i])
		}
		if err := herosign.Verify(pk, msgs[i], sig); err != nil {
			log.Fatalf("signature %d failed verification: %v", i, err)
		}
		if keyIDs[i] == masterID && checked < 8 {
			ref, err := herosign.Sign(sk, msgs[i])
			if err != nil {
				log.Fatal(err)
			}
			if !bytes.Equal(ref, sig) {
				log.Fatalf("signature %d differs from the CPU reference", i)
			}
			checked++
		}
	}
	if badVerdicts > 0 {
		log.Fatalf("%d verify verdicts were wrong", badVerdicts)
	}
	if len(perShard) < 2 {
		log.Fatalf("only one shard signed (%v); expected both key domains in use", perShard)
	}
	fmt.Printf("correctness: %d/%d signatures verify under their key domains %v; "+
		"%d master-shard signatures byte-identical to Sign; all %d tampered verifies rejected\n",
		*n, *n, perShard, checked, tampered)

	// --- Throughput: coalesced fleet vs sequential SignBatch(1). The sim
	// is deterministic, so one measured single-message batch stands for
	// all n sequential calls. ---
	solo, err := herosign.NewAccelerator(p, dev)
	if err != nil {
		log.Fatal(err)
	}
	one, err := solo.SignBatch(sk, msgs[:1])
	if err != nil {
		log.Fatal(err)
	}
	baselineSec := float64(*n) * one.TotalUs / 1e6

	// --- Stats over the HTTP front end. ---
	ts := httptest.NewServer(svc.Handler())
	st := fetchStats(ts.URL)
	ts.Close()

	fmt.Printf("\n/v1/stats (params=%s, max_batch=%d, deadline=%s):\n", st.Params, st.MaxBatch, st.DeadlineM)
	for _, d := range st.Devices {
		fmt.Printf("  worker %d shard %d %-10s  batches=%-3d msgs=%-4d s/v/k=%d/%d/%d  "+
			"busy=%.2fms  weight %.0f sigs/s\n",
			d.Worker, d.Shard, d.Device, d.Batches, d.Messages, d.SignMsgs, d.VerifyMsgs, d.KeyGenMsgs,
			d.ModeledBusySec*1e3, d.WeightSigsPerSec)
	}
	fmt.Printf("  batch-size histogram (le:count):")
	for _, b := range st.BatchSizeHist {
		fmt.Printf(" %s:%d", b.Le, b.Count)
	}
	fmt.Println()
	for _, ss := range st.Shards {
		if ss.Memo == nil {
			continue
		}
		m := ss.Memo
		total := m.Hits + m.Misses
		hitPct := 0.0
		if total > 0 {
			hitPct = 100 * float64(m.Hits) / float64(total)
		}
		fmt.Printf("  shard %d memo: hits=%d misses=%d (%.1f%% hit) wots_hits=%d evictions=%d "+
			"resident=%.1f/%.0fMiB pinned_layers=%d warmed=%d\n",
			ss.Shard, m.Hits, m.Misses, hitPct, m.WOTSHits, m.Evictions,
			float64(m.ResidentBytes)/(1<<20), float64(m.BudgetBytes)/(1<<20),
			m.PinnedLayers, m.WarmedEntries)
	}

	speedup := baselineSec / st.ModeledMakespanSec
	fmt.Printf("\nfleet makespan: %.2fms (%.0f sign/s) vs %d×SignBatch(1) on %s: %.2fms — %.1f× speedup\n",
		st.ModeledMakespanSec*1e3, st.ModeledSignPerSec, *n, dev.Name, baselineSec*1e3, speedup)
	if speedup <= 1 {
		log.Fatalf("coalesced fleet (%.1f×) did not beat sequential SignBatch(1)", speedup)
	}
	fmt.Printf("(host wall time for phase 1: %v)\n", wall.Round(time.Millisecond))

	if err := svc.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase 1 service drained cleanly")

	// ------------------------------------------------------------------
	// Phase 2 — overload against a bounded service: 2x admission capacity
	// at once over HTTP; overflow must 429 while admitted p99 stays sane.
	// ------------------------------------------------------------------
	bounded, err := herosign.NewService(append(mixedOpts(),
		herosign.WithQueueLimit(*queueLimit),
		herosign.WithServiceMaxBatch(16),
		herosign.WithDrainDeadline(10*time.Second),
	)...)
	if err != nil {
		log.Fatal(err)
	}
	capacity := 2 * *queueLimit // two shards
	offered := 2 * capacity
	fmt.Printf("\nservice-demo phase 2: overload — capacity %d (2 shards × %d), offering %d concurrent signs over HTTP\n",
		capacity, *queueLimit, offered)

	ts2 := httptest.NewServer(bounded.Handler())
	client := &http.Client{Timeout: 2 * time.Minute}
	type outcome struct {
		status  int
		latency time.Duration
		retry   string
	}
	outcomes := make([]outcome, offered)
	var wg sync.WaitGroup
	for i := 0; i < offered; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(map[string]any{"message": []byte(fmt.Sprintf("overload %d", i))})
			t0 := time.Now()
			resp, err := client.Post(ts2.URL+"/v1/sign", "application/json", bytes.NewReader(body))
			if err != nil {
				log.Printf("overload request %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			outcomes[i] = outcome{resp.StatusCode, time.Since(t0), resp.Header.Get("Retry-After")}
		}(i)
	}
	wg.Wait()

	var admitted, rejected, other int
	var lat []time.Duration
	retryAfterSeen := false
	for _, o := range outcomes {
		switch o.status {
		case http.StatusOK:
			admitted++
			lat = append(lat, o.latency)
		case http.StatusTooManyRequests:
			rejected++
			if o.retry != "" && o.retry != "0" {
				retryAfterSeen = true
			}
		default:
			other++
		}
	}
	st2 := fetchStats(ts2.URL)
	ts2.Close()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var p50, p99 time.Duration
	if len(lat) > 0 {
		p50, p99 = lat[len(lat)/2], lat[len(lat)*99/100]
	}
	fmt.Printf("overload: admitted=%d rejected(429)=%d other=%d; admitted p50=%v p99=%v\n",
		admitted, rejected, other, p50.Round(time.Millisecond), p99.Round(time.Millisecond))
	fmt.Printf("stats: shed_policy=%s rejected_total=%d shed_total=%d\n",
		st2.ShedPolicy, st2.RejectedTotal, st2.ShedTotal)
	for _, ss := range st2.Shards {
		fmt.Printf("  shard %d key=%s depth=%d/%d rejected=%d shed=%d\n",
			ss.Shard, ss.KeyID, ss.QueueDepth, ss.QueueLimit, ss.Rejected, ss.Shed)
	}

	switch {
	case other > 0:
		log.Fatalf("%d requests failed with unexpected statuses", other)
	case rejected == 0:
		log.Fatalf("2× overload produced no 429s — admission control did not engage")
	case admitted == 0:
		log.Fatal("overload rejected everything — admission control over-triggered")
	case !retryAfterSeen:
		log.Fatal("429 responses carried no Retry-After header")
	case p99 > 30*time.Second:
		log.Fatalf("admitted p99 %v is unbounded-queue territory", p99)
	}
	for _, ss := range st2.Shards {
		if ss.QueueDepth > ss.QueueLimit {
			log.Fatalf("shard %d queue depth %d exceeds its cap %d", ss.Shard, ss.QueueDepth, ss.QueueLimit)
		}
	}

	if err := bounded.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("overload service drained cleanly; queues stayed within their caps")

	// ------------------------------------------------------------------
	// Phase 3 — tenant isolation: per-tenant token buckets keep a flooding
	// API key from starving a paced one.
	// ------------------------------------------------------------------
	const (
		tenantRate  = 50 // messages/s admitted per API key
		tenantBurst = 8
		hotFlood    = 120
		quietN      = 15
	)
	metered, err := herosign.NewService(append(mixedOpts(),
		herosign.WithTenantRate(tenantRate),
		herosign.WithTenantBurst(tenantBurst),
		herosign.WithServiceMaxBatch(16),
		herosign.WithDrainDeadline(10*time.Second),
	)...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nservice-demo phase 3: tenant isolation — bucket %d msgs/s burst %d per API key; "+
		"%d-request flood from \"hot\" vs %d paced requests from \"quiet\"\n",
		tenantRate, tenantBurst, hotFlood, quietN)

	ts3 := httptest.NewServer(metered.Handler())
	post := func(tenant, deadlineMs string, msg []byte) int {
		body, _ := json.Marshal(map[string]any{"message": msg})
		req, err := http.NewRequest(http.MethodPost, ts3.URL+"/v1/sign", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(service.TenantHeader, tenant)
		if deadlineMs != "" {
			req.Header.Set(service.DeadlineHeader, deadlineMs)
		}
		resp, err := client.Do(req)
		if err != nil {
			log.Printf("tenant %s request: %v", tenant, err)
			return 0
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	var hotOK, hot429, hotOther, probeStatus int64
	var tenantWG sync.WaitGroup
	for i := 0; i < hotFlood; i++ {
		tenantWG.Add(1)
		go func(i int) {
			defer tenantWG.Done()
			switch post("hot", "", []byte(fmt.Sprintf("hot flood %d", i))) {
			case http.StatusOK:
				atomic.AddInt64(&hotOK, 1)
			case http.StatusTooManyRequests:
				atomic.AddInt64(&hot429, 1)
			default:
				atomic.AddInt64(&hotOther, 1)
			}
		}(i)
	}
	// A 1ms deadline fired into the flood: pre-rejected (429) against the
	// backlog, expired in queue (504), or — on a fast box that already
	// drained — signed in time (200). Anything else is a bug.
	tenantWG.Add(1)
	go func() {
		defer tenantWG.Done()
		time.Sleep(2 * time.Millisecond)
		atomic.StoreInt64(&probeStatus, int64(post("probe", "1", []byte("hopeless deadline"))))
	}()

	quietOK := 0
	for i := 0; i < quietN; i++ {
		if post("quiet", "30000", []byte(fmt.Sprintf("quiet %d", i))) == http.StatusOK {
			quietOK++
		}
		time.Sleep(25 * time.Millisecond)
	}
	tenantWG.Wait()

	st3 := fetchStats(ts3.URL)
	ts3.Close()
	fmt.Printf("hot: %d ok, %d rate-limited (429), %d other; quiet: %d/%d ok; 1ms-deadline probe: %d\n",
		hotOK, hot429, hotOther, quietOK, quietN, probeStatus)
	fmt.Println("per-tenant counters from /v1/stats:")
	for _, tn := range st3.Tenants {
		fmt.Printf("  %-8s admitted=%-4d done=%-4d rej_rate=%-4d rej_deadline=%-2d expired=%-2d avg=%.2fms\n",
			tn.Tenant, tn.Admitted, tn.Done, tn.RejectedRate, tn.RejectedDeadline, tn.Expired, tn.AvgLatencyMs)
	}

	var quietStats, hotStats *service.TenantStats
	for i := range st3.Tenants {
		switch st3.Tenants[i].Tenant {
		case "quiet":
			quietStats = &st3.Tenants[i]
		case "hot":
			hotStats = &st3.Tenants[i]
		}
	}
	switch {
	case hotOther > 0:
		log.Fatalf("%d hot requests failed with unexpected statuses", hotOther)
	case quietOK != quietN:
		log.Fatalf("quiet tenant lost requests under the flood: %d/%d ok", quietOK, quietN)
	case hot429 == 0:
		log.Fatal("the flood was never rate-limited — tenant buckets did not engage")
	case hotOK == 0:
		log.Fatal("the hot tenant was starved outright; its burst should have been admitted")
	case hotStats == nil || hotStats.RejectedRate == 0:
		log.Fatalf("hot tenant counters show no rate rejections: %+v", hotStats)
	case quietStats == nil || quietStats.RejectedRate != 0 || quietStats.Done != int64(quietN):
		log.Fatalf("quiet tenant counters are off: %+v", quietStats)
	}
	switch probeStatus {
	case http.StatusOK, http.StatusTooManyRequests, http.StatusGatewayTimeout:
	default:
		log.Fatalf("1ms-deadline probe returned %d; want 200, 429 or 504", probeStatus)
	}

	if err := metered.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("tenant service drained cleanly; the quiet tenant never saw the flood")
}

func fetchStats(base string) service.Stats {
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var st service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	return st
}
