// Service demo: an open-loop mixed workload against the request-coalescing
// signing service on a two-device fleet (RTX 4090 + A100).
//
// The demo submits -n individual sign requests (plus a side stream of
// verifies and keygens), lets the coalescer flush them into GPU-sized
// batches across the fleet, then:
//
//  1. checks every coalesced signature verifies, and byte-compares a
//     sample against the CPU reference Sign;
//  2. compares the fleet's modeled makespan against issuing n sequential
//     SignBatch(1) calls on one device (the no-coalescing baseline) —
//     the paper's batching argument, restated as a serving-layer speedup;
//  3. fetches /v1/stats over HTTP and prints the per-device stats and the
//     batch-size histogram.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"herosign"
	"herosign/service"
)

func main() {
	n := flag.Int("n", 1000, "open-loop sign submissions")
	verifies := flag.Int("verifies", 200, "verify submissions mixed in")
	keygens := flag.Int("keygens", 64, "keygen submissions mixed in")
	flag.Parse()

	p := herosign.SPHINCSPlus128f
	sk, err := herosign.GenerateKey(p)
	if err != nil {
		log.Fatal(err)
	}
	devA, err := herosign.GPUByName("RTX 4090")
	if err != nil {
		log.Fatal(err)
	}
	devB, err := herosign.GPUByName("A100")
	if err != nil {
		log.Fatal(err)
	}

	svc, err := herosign.NewService(
		herosign.WithServiceParams(p),
		herosign.WithServiceKey(sk),
		herosign.WithServiceDevices(devA, devB),
		herosign.WithServiceFlushDeadline(2*time.Millisecond),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("service-demo: %s on [%s, %s], open-loop %d signs + %d verifies + %d keygens\n",
		p.Name, devA.Name, devB.Name, *n, *verifies, *keygens)

	// --- Open-loop submission: fire every request without waiting. ---
	start := time.Now()
	msgs := make([][]byte, *n)
	futs := make([]*service.Future, *n)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("service-demo message %d", i))
		fut, err := svc.SubmitSign(msgs[i])
		if err != nil {
			log.Fatal(err)
		}
		futs[i] = fut
	}
	var keyFuts []*service.Future
	for i := 0; i < *keygens; i++ {
		fut, err := svc.SubmitKeyGen(nil)
		if err != nil {
			log.Fatal(err)
		}
		keyFuts = append(keyFuts, fut)
	}

	ctx := context.Background()
	sigs := make([][]byte, *n)
	for i, fut := range futs {
		res, err := fut.Wait(ctx)
		if err != nil {
			log.Fatalf("sign %d: %v", i, err)
		}
		sigs[i] = res.Sig
	}
	for i, fut := range keyFuts {
		if _, err := fut.Wait(ctx); err != nil {
			log.Fatalf("keygen %d: %v", i, err)
		}
	}

	// Verify a slice of the signatures back through the service (the mixed
	// part of the workload), tampering with every 8th message.
	var verFuts []*service.Future
	tampered := 0
	for i := 0; i < *verifies && i < *n; i++ {
		m := msgs[i]
		if i%8 == 3 {
			m = append([]byte("tampered "), m...)
			tampered++
		}
		fut, err := svc.SubmitVerify(m, sigs[i])
		if err != nil {
			log.Fatal(err)
		}
		verFuts = append(verFuts, fut)
	}
	badVerdicts := 0
	for i, fut := range verFuts {
		res, err := fut.Wait(ctx)
		if err != nil {
			log.Fatalf("verify %d: %v", i, err)
		}
		wantValid := i%8 != 3
		if res.Valid != wantValid {
			badVerdicts++
		}
	}
	wall := time.Since(start)

	// --- Correctness: every signature verifies; sample is byte-identical
	// to the CPU reference. ---
	pk := svc.PublicKey()
	for i, sig := range sigs {
		if err := herosign.Verify(pk, msgs[i], sig); err != nil {
			log.Fatalf("signature %d failed verification: %v", i, err)
		}
	}
	sampleStride := *n / 16
	if sampleStride < 1 {
		sampleStride = 1
	}
	for i := 0; i < *n; i += sampleStride {
		ref, err := herosign.Sign(sk, msgs[i])
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(ref, sigs[i]) {
			log.Fatalf("signature %d differs from the CPU reference", i)
		}
	}
	if badVerdicts > 0 {
		log.Fatalf("%d verify verdicts were wrong", badVerdicts)
	}
	fmt.Printf("correctness: %d/%d signatures verify; sampled signatures byte-identical to Sign; "+
		"all %d tampered verifies rejected\n", *n, *n, tampered)

	// --- Throughput: coalesced fleet vs sequential SignBatch(1). The sim
	// is deterministic, so one measured single-message batch stands for
	// all n sequential calls. ---
	solo, err := herosign.NewAccelerator(p, devA)
	if err != nil {
		log.Fatal(err)
	}
	one, err := solo.SignBatch(sk, msgs[:1])
	if err != nil {
		log.Fatal(err)
	}
	baselineSec := float64(*n) * one.TotalUs / 1e6

	// --- Stats over the HTTP front end. ---
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	var st service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()

	fmt.Printf("\n/v1/stats (params=%s, max_batch=%d, deadline=%s):\n", st.Params, st.MaxBatch, st.DeadlineM)
	for _, d := range st.Devices {
		fmt.Printf("  worker %d %-9s  batches=%-3d msgs=%-4d sign/verify/keygen=%d/%d/%d  "+
			"busy=%.2fms  modeled %.0f sign/s\n",
			d.Worker, d.Device, d.Batches, d.Messages, d.SignMsgs, d.VerifyMsgs, d.KeyGenMsgs,
			d.ModeledBusySec*1e3, d.ModeledSignPerSec)
	}
	fmt.Printf("  batch-size histogram (le:count):")
	for _, b := range st.BatchSizeHist {
		fmt.Printf(" %s:%d", b.Le, b.Count)
	}
	fmt.Println()

	speedup := baselineSec / st.ModeledMakespanSec
	fmt.Printf("\nmodeled fleet makespan: %.2fms (%.0f sign/s) vs %d×SignBatch(1) on %s: %.2fms\n",
		st.ModeledMakespanSec*1e3, st.ModeledSignPerSec, *n, devA.Name, baselineSec*1e3)
	fmt.Printf("coalescing+fleet speedup: %.1f× (acceptance floor 5×)\n", speedup)
	if speedup < 5 {
		log.Fatalf("speedup %.1f× is below the 5× floor", speedup)
	}
	fmt.Printf("(host wall time for the simulated run: %v)\n", wall.Round(time.Millisecond))

	if err := svc.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("service drained cleanly")
}
