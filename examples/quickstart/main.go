// Quickstart: generate a SPHINCS+-128f key pair, sign a message on the CPU
// reference path and on a simulated RTX 4090 with the full HERO-Sign
// optimization stack, confirm both signatures are identical, and verify.
package main

import (
	"bytes"
	"fmt"
	"log"

	"herosign"
)

func main() {
	p := herosign.SPHINCSPlus128f

	sk, err := herosign.GenerateKey(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %s key pair: pk=%d bytes, sk=%d bytes, sig=%d bytes\n",
		p.Name, p.PKBytes, p.SKBytes, p.SigBytes)

	msg := []byte("HERO-Sign quickstart message")

	// CPU reference path.
	cpuSig, err := herosign.Sign(sk, msg)
	if err != nil {
		log.Fatal(err)
	}

	// Simulated-GPU path with the full HERO-Sign stack.
	gpu, err := herosign.GPUByName("RTX 4090")
	if err != nil {
		log.Fatal(err)
	}
	acc, err := herosign.NewAccelerator(p, gpu)
	if err != nil {
		log.Fatal(err)
	}
	res, err := acc.SignBatch(sk, [][]byte{msg})
	if err != nil {
		log.Fatal(err)
	}

	if !bytes.Equal(cpuSig, res.Sigs[0]) {
		log.Fatal("GPU and CPU signatures differ — this must never happen")
	}
	fmt.Println("GPU-simulated signature is byte-identical to the CPU reference")

	if err := herosign.Verify(&sk.PublicKey, msg, cpuSig); err != nil {
		log.Fatal(err)
	}
	fmt.Println("signature verifies")

	if t := acc.Tuning(); t != nil {
		fmt.Printf("FORS tree tuning on %s: %s\n", gpu.Name, t)
	}
}
