// Fleet demo: a two-level fleet-of-fleets with authenticated dynamic
// membership, losing a leaf mid-run and admitting another.
//
// Three in-process "leaf" herosign-serve instances (each a complete signing
// service with its own simulated-GPU fleet and HTTP front end) announce
// themselves to a front-end service that starts with ZERO backends and
// admits leaves at runtime through the fleet membership protocol
// (herosign/service/remote: Registrar on the front, Announcer on each
// leaf). Every fleet-internal request — proxy calls, probes, join/leave —
// is HMAC-authenticated with a shared secret. All leaves share one master
// key, so the derived key domains line up and any leaf can serve any batch.
//
// The demo drives a closed-loop workload through the front end and:
//
//  1. verifies an UNSIGNED join request is rejected 401 and counted, while
//     the three announcers join successfully and the front grows from zero
//     to three backends without a restart;
//  2. measures steady-state goodput and p99 latency on the full 3-leaf
//     fleet;
//  3. crashes one leaf mid-run (its HTTP listener closes AND its announcer
//     stops heartbeating — no leave is sent) and asserts the health
//     checker ejects it within one probe interval plus slack, then the
//     registrar retires the dead member when its lease expires — while
//     failover reroutes every affected batch, so the client sees no hard
//     errors, only (possibly) 429s from admission control;
//  4. starts a FOURTH leaf after the crash; it joins, is verified against
//     the front's key domain, and serves traffic before the run ends;
//  5. asserts goodput recovers to >= 60% of the 3-leaf rate and p99 stays
//     bounded, and hedged retries stayed within budget (<= 10% of primary
//     sends);
//  6. has the late leaf LEAVE cleanly and asserts the full membership
//     story — joined, ejected, lease-expired, left — is visible in the
//     front end's /v1/stats event log;
//  7. byte-compares a signature served through the proxy path against the
//     CPU reference — the KAT cross-check that remoting and membership
//     churn change nothing about the bytes.
//
// Exit status 0 means every assertion held.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"herosign"
	"herosign/service"
	"herosign/service/remote"
)

const fleetSecret = "fleet-demo-shared-secret"

func main() {
	workers := flag.Int("workers", 16, "closed-loop client goroutines")
	phase1 := flag.Duration("phase1", 5*time.Second, "steady-state window before the kill")
	phase2 := flag.Duration("phase2", 8*time.Second, "window after the kill")
	probe := flag.Duration("probe", 200*time.Millisecond, "fleet health-probe interval")
	hedgeP := flag.Int("hedge-p", 90, "hedge percentile (0 disables hedging)")
	flag.Parse()

	p := herosign.SPHINCSPlus128f
	sk, err := herosign.KeyFromSeeds(p,
		bytes.Repeat([]byte{0x51}, p.N),
		bytes.Repeat([]byte{0x52}, p.N),
		bytes.Repeat([]byte{0x53}, p.N))
	if err != nil {
		log.Fatal(err)
	}

	// A leaf is a complete signing service behind a real HTTP listener,
	// requiring fleet auth on every endpoint.
	startLeaf := func() (*herosign.Service, *httptest.Server) {
		dev, err := herosign.GPUByName("RTX 4090")
		if err != nil {
			log.Fatal(err)
		}
		leaf, err := herosign.NewService(
			herosign.WithServiceParams(p),
			herosign.WithServiceKey(sk),
			herosign.WithServiceDevices(dev),
			herosign.WithQueueLimit(herosign.AutoQueueLimit),
			service.WithFleetSecret(fleetSecret),
		)
		if err != nil {
			log.Fatal(err)
		}
		return leaf, httptest.NewServer(leaf.Handler())
	}

	// The front end starts with ZERO backends: leaves are admitted at
	// runtime through the membership protocol.
	front, err := herosign.NewService(
		herosign.WithServiceParams(p),
		herosign.WithServiceKey(sk),
		herosign.WithQueueLimit(herosign.AutoQueueLimit),
		service.WithDynamicMembership(),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer front.Close()

	// MinWeight is raised well above the default so a just-admitted leaf
	// with no observed throughput immediately gets a meaningful share of
	// picks and warms quickly.
	fleet, err := remote.NewDynamicFleet(remote.Options{
		ProbeInterval:   *probe,
		HedgePercentile: *hedgeP,
		Secret:          fleetSecret,
		MinWeight:       25,
	})
	if err != nil {
		log.Fatal(err)
	}
	registrar := remote.NewRegistrar(front, fleet, remote.RegistrarOptions{
		LeaseTTL:      2 * time.Second,
		SweepInterval: 250 * time.Millisecond,
	})
	defer registrar.Close()

	mux := http.NewServeMux()
	mux.Handle("/v1/fleet/", registrar.Handler())
	mux.Handle("/", front.Handler())
	frontSrv := httptest.NewServer(mux)
	defer frontSrv.Close()
	fmt.Printf("front end up at %s: 0 backends, probe=%v hedge-p%d, dynamic membership\n",
		frontSrv.URL, *probe, *hedgeP)

	// An unsigned join must bounce off the fleet auth.
	resp, err := http.Post(frontSrv.URL+"/v1/fleet/join", "application/json",
		strings.NewReader(`{"url":"http://127.0.0.1:1"}`))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	unsignedJoinStatus := resp.StatusCode
	fmt.Printf("unsigned join attempt: HTTP %d\n\n", unsignedJoinStatus)

	startAnnouncer := func(selfURL string) *remote.Announcer {
		ann, err := remote.NewAnnouncer(remote.AnnouncerOptions{
			FrontURL:      frontSrv.URL,
			SelfURL:       selfURL,
			Secret:        fleetSecret,
			RetryInterval: 100 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		ann.Start()
		return ann
	}

	fmt.Println("starting 3 leaf servers, announcing to the front end...")
	leafSrvs := make([]*httptest.Server, 3)
	leafURLs := make([]string, 3)
	anns := make([]*remote.Announcer, 3)
	for i := range leafSrvs {
		leaf, srv := startLeaf()
		defer leaf.Close()
		leafSrvs[i] = srv
		leafURLs[i] = srv.URL
		anns[i] = startAnnouncer(srv.URL)
		fmt.Printf("  leaf %d at %s\n", i, leafURLs[i])
	}
	if !waitForMembers(registrar, 3, 10*time.Second) {
		die("leaves did not all join within 10s (members: %v)", registrar.Members())
	}
	fmt.Printf("all 3 leaves admitted: members=%v\n\n", registrar.Members())

	// Closed-loop workload. Workers retry 429s after the server's own
	// estimate; anything else is a hard client-visible error and fails the
	// demo.
	type sample struct {
		at  time.Time
		lat time.Duration
	}
	var (
		mu         sync.Mutex
		samples    []sample
		hardErrors atomic.Int64
		overloads  atomic.Int64
		seq        atomic.Int64
	)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				msg := fmt.Sprintf("fleet-demo-%d", seq.Add(1))
				t0 := time.Now()
				fut, err := front.SubmitSign([]byte(msg))
				if err == nil {
					_, err = fut.Wait(ctx)
				}
				switch {
				case err == nil:
					mu.Lock()
					samples = append(samples, sample{at: time.Now(), lat: time.Since(t0)})
					mu.Unlock()
					// Think time breaks the closed loop's lockstep: without it all
					// workers resubmit the instant a batch resolves, every
					// flush finds the first pool idle, and the least-
					// outstanding dispatch pins 100% of traffic to one leaf.
					time.Sleep(time.Duration(rand.Intn(20)) * time.Millisecond)
				case ctx.Err() != nil:
					return
				case isOverload(err):
					overloads.Add(1)
					time.Sleep(retryAfter(err))
				default:
					hardErrors.Add(1)
					fmt.Fprintf(os.Stderr, "hard error: %v\n", err)
				}
			}
		}()
	}

	window := func(from, to time.Time) (rate float64, p99 time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		var lats []time.Duration
		for _, s := range samples {
			if s.at.After(from) && !s.at.After(to) {
				lats = append(lats, s.lat)
			}
		}
		if len(lats) == 0 {
			return 0, 0
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		secs := to.Sub(from).Seconds()
		return float64(len(lats)) / secs, lats[len(lats)*99/100]
	}

	// Phase 1: steady state on three leaves. The first second warms the
	// coalescer, the probe EWMAs and the hedge tracker.
	time.Sleep(time.Second)
	p1start := time.Now()
	time.Sleep(*phase1)
	p1end := time.Now()
	rate3, p99three := window(p1start, p1end)
	fmt.Printf("phase 1 (3 leaves): %.1f sigs/s, p99 %v\n", rate3, p99three.Round(time.Millisecond))
	if rate3 == 0 {
		die("no completions in phase 1")
	}

	// Phase 2: crash leaf 0 mid-run — listener closes, heartbeats stop, no
	// leave is sent. Health ejects it fast; the lease expiring retires it.
	killAt := time.Now()
	anns[0].Stop()
	leafSrvs[0].CloseClientConnections()
	leafSrvs[0].Close()
	fmt.Printf("\ncrashed leaf 0 at t=%v (listener closed, heartbeats stopped)\n",
		killAt.Round(time.Millisecond).Sub(p1start))

	ejectedAt := waitForEjection(front, leafURLs[0], killAt, 2**probe+2*time.Second)
	if ejectedAt.IsZero() {
		die("leaf 0 was not ejected after the crash")
	}
	fmt.Printf("leaf 0 ejected %v after the crash (probe interval %v)\n",
		ejectedAt.Sub(killAt).Round(time.Millisecond), *probe)

	// A late joiner: a leaf started only now, long after the front end.
	lateLeaf, lateSrv := startLeaf()
	defer lateLeaf.Close()
	defer lateSrv.Close()
	lateAnn := startAnnouncer(lateSrv.URL)
	if !waitForMembers(registrar, 3, 10*time.Second) {
		die("late leaf did not join (members: %v)", registrar.Members())
	}
	fmt.Printf("late leaf joined at %s\n", lateSrv.URL)

	// Give the fleet a moment to settle, then measure the survivors plus
	// the newcomer.
	time.Sleep(time.Second)
	p2start := time.Now()
	time.Sleep(*phase2)
	p2end := time.Now()
	cancel()
	wg.Wait()

	rate2, p99two := window(p2start, p2end)
	fmt.Printf("phase 2 (2 survivors + late joiner): %.1f sigs/s, p99 %v\n",
		rate2, p99two.Round(time.Millisecond))

	// The dead leaf's lease has long expired; the clean path: the late
	// leaf leaves before assertions run.
	var lateSends int64
	for _, rl := range front.Stats().RemoteLeaves {
		if rl.URL == lateSrv.URL {
			lateSends = rl.PrimarySends
		}
	}
	if !waitForEvent(front, "lease-expired", 5*time.Second) {
		die("crashed leaf's lease never expired")
	}
	lctx, lcancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := lateAnn.Leave(lctx); err != nil {
		die("late leaf leave: %v", err)
	}
	lcancel()

	// Assertions.
	fails := 0
	check := func(ok bool, format string, args ...any) {
		status := "ok  "
		if !ok {
			status = "FAIL"
			fails++
		}
		fmt.Printf("  [%s] %s\n", status, fmt.Sprintf(format, args...))
	}
	fmt.Println("\nassertions:")
	st := front.Stats()
	check(unsignedJoinStatus == http.StatusUnauthorized && st.AuthRejected >= 1,
		"unsigned join rejected (HTTP %d) and counted (auth_rejected=%d)",
		unsignedJoinStatus, st.AuthRejected)
	check(hardErrors.Load() == 0,
		"no hard client errors across the crash (got %d; 429s are fine: %d)",
		hardErrors.Load(), overloads.Load())
	check(ejectedAt.Sub(killAt) <= 2**probe+time.Second,
		"ejection within ~one probe interval: %v <= %v",
		ejectedAt.Sub(killAt).Round(time.Millisecond), 2**probe+time.Second)
	check(rate2 >= 0.6*rate3,
		"post-crash goodput %.1f >= 60%% of 3-leaf %.1f", rate2, 0.6*rate3)
	check(p99two <= 10*p99three || p99two <= 2*time.Second,
		"p99 stays bounded after the crash: %v (3-leaf %v)",
		p99two.Round(time.Millisecond), p99three.Round(time.Millisecond))
	check(lateSends > 0,
		"late-joining leaf served traffic: %d primary sends", lateSends)
	check(len(registrar.Members()) == 2,
		"membership settled at the 2 survivors: %v", registrar.Members())

	var primaries, hedges, hedgeWins, failovers int64
	for _, rl := range st.RemoteLeaves {
		primaries += rl.PrimarySends
		hedges += rl.HedgesSent
		hedgeWins += rl.HedgeWins
		failovers += rl.Failovers
		fmt.Printf("  leaf %s: state=%s weight=%.0f sends=%d hedges=%d wins=%d failovers=%d\n",
			rl.URL, rl.State, rl.WeightSigsPerSec, rl.PrimarySends, rl.HedgesSent, rl.HedgeWins, rl.Failovers)
	}
	check(primaries == 0 || float64(hedges) <= 0.10*float64(primaries)+1,
		"hedge volume %d <= 10%% of %d primary sends", hedges, primaries)
	fmt.Printf("  hedge wins: %d, failovers: %d\n", hedgeWins, failovers)

	// The whole membership story must be visible in the stats event log.
	events := front.Stats().FleetEvents
	fmt.Println("\nmembership events:")
	for _, e := range events {
		fmt.Printf("  %s %-13s %s  %s\n", e.Time.Format("15:04:05.000"), e.Type, e.URL, e.Note)
	}
	counts := map[string]int{}
	for _, e := range events {
		counts[e.Type]++
	}
	check(counts["joined"] >= 4, "4 joins logged (3 initial + late): %d", counts["joined"])
	check(counts["ejected"] >= 1, "crash ejection logged: %d", counts["ejected"])
	check(counts["lease-expired"] >= 1, "dead leaf retired by lease expiry: %d", counts["lease-expired"])
	check(counts["left"] >= 1, "clean leave logged: %d", counts["left"])

	// KAT cross-check: one more signature through the proxy path must be
	// byte-identical to the CPU reference.
	fut, err := front.SubmitSign([]byte("kat-after-failover"))
	if err != nil {
		die("post-run sign: %v", err)
	}
	res, err := fut.Wait(context.Background())
	if err != nil {
		die("post-run sign: %v", err)
	}
	ref, err := herosign.Sign(sk, []byte("kat-after-failover"))
	if err != nil {
		die("reference sign: %v", err)
	}
	check(bytes.Equal(res.Sig, ref), "proxied signature byte-identical to CPU reference")

	if fails > 0 {
		die("%d assertion(s) failed", fails)
	}
	fmt.Println("\nfleet-demo: all assertions passed")
}

// waitForMembers polls the registrar until it reports n members.
func waitForMembers(r *remote.Registrar, n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if len(r.Members()) == n {
			return true
		}
		time.Sleep(20 * time.Millisecond)
	}
	return false
}

// waitForEvent polls the front end's stats until an event of the given type
// appears in the membership log.
func waitForEvent(front *herosign.Service, typ string, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, e := range front.Stats().FleetEvents {
			if e.Type == typ {
				return true
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return false
}

// waitForEjection polls the front end's stats until the named leaf reports
// ejected, or the timeout lapses (zero time).
func waitForEjection(front *herosign.Service, url string, from time.Time, timeout time.Duration) time.Time {
	deadline := from.Add(timeout)
	for time.Now().Before(deadline) {
		for _, rl := range front.Stats().RemoteLeaves {
			if rl.URL == url && rl.State == "ejected" {
				return time.Now()
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	return time.Time{}
}

func isOverload(err error) bool {
	return err != nil && service.IsOverloaded(err)
}

func retryAfter(err error) time.Duration {
	if d := service.RetryAfter(err); d > 0 {
		return d
	}
	return 50 * time.Millisecond
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fleet-demo: %s\n", fmt.Sprintf(format, args...))
	os.Exit(1)
}
