// Fleet demo: a two-level fleet-of-fleets losing a leaf mid-run.
//
// Three in-process "leaf" herosign-serve instances (each a complete signing
// service with its own simulated-GPU fleet and HTTP front end) sit behind
// one front-end service whose only backends are remote proxies
// (herosign/service/remote). All four share one master key, so the derived
// key domains line up and any leaf can serve any batch.
//
// The demo drives a closed-loop workload through the front end and:
//
//  1. measures steady-state goodput and p99 latency on the full 3-leaf
//     fleet;
//  2. kills one leaf mid-run (its HTTP listener closes; in-flight and new
//     connections fail) and asserts the health checker ejects it within
//     one probe interval plus slack — while the failover path reroutes
//     every affected batch, so the client sees no hard errors, only
//     (possibly) 429s from admission control;
//  3. asserts goodput with the surviving leaves recovers to >= 60% of the
//     3-leaf rate and p99 stays bounded;
//  4. asserts hedged retries stayed within their budget (<= 10% of primary
//     sends);
//  5. byte-compares a signature served through the proxy path against the
//     CPU reference — the KAT cross-check that remoting changes nothing
//     about the bytes.
//
// Exit status 0 means every assertion held.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"herosign"
	"herosign/service"
	"herosign/service/remote"
)

func main() {
	workers := flag.Int("workers", 16, "closed-loop client goroutines")
	phase1 := flag.Duration("phase1", 5*time.Second, "steady-state window before the kill")
	phase2 := flag.Duration("phase2", 8*time.Second, "window after the kill")
	probe := flag.Duration("probe", 200*time.Millisecond, "fleet health-probe interval")
	hedgeP := flag.Int("hedge-p", 90, "hedge percentile (0 disables hedging)")
	flag.Parse()

	p := herosign.SPHINCSPlus128f
	sk, err := herosign.KeyFromSeeds(p,
		bytes.Repeat([]byte{0x51}, p.N),
		bytes.Repeat([]byte{0x52}, p.N),
		bytes.Repeat([]byte{0x53}, p.N))
	if err != nil {
		log.Fatal(err)
	}

	// Three leaves: complete signing services behind real HTTP listeners,
	// all started from the same master key.
	fmt.Println("starting 3 leaf servers...")
	leafSrvs := make([]*httptest.Server, 3)
	leafURLs := make([]string, 3)
	for i := range leafSrvs {
		dev, err := herosign.GPUByName("RTX 4090")
		if err != nil {
			log.Fatal(err)
		}
		leaf, err := herosign.NewService(
			herosign.WithServiceParams(p),
			herosign.WithServiceKey(sk),
			herosign.WithServiceDevices(dev),
			herosign.WithQueueLimit(herosign.AutoQueueLimit),
		)
		if err != nil {
			log.Fatal(err)
		}
		defer leaf.Close()
		leafSrvs[i] = httptest.NewServer(leaf.Handler())
		leafURLs[i] = leafSrvs[i].URL
		fmt.Printf("  leaf %d at %s\n", i, leafURLs[i])
	}

	fleet, err := remote.NewFleet(leafURLs, remote.Options{
		ProbeInterval:   *probe,
		HedgePercentile: *hedgeP,
	})
	if err != nil {
		log.Fatal(err)
	}
	front, err := herosign.NewService(
		herosign.WithServiceParams(p),
		herosign.WithServiceKey(sk),
		herosign.WithBackend(fleet.Backends()...),
		herosign.WithQueueLimit(herosign.AutoQueueLimit),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer front.Close()
	fmt.Printf("front end up: 1 shard, %d remote backends, probe=%v hedge-p%d\n\n",
		len(leafURLs), *probe, *hedgeP)

	// Closed-loop workload. Workers retry 429s after the server's own
	// estimate; anything else is a hard client-visible error and fails the
	// demo.
	type sample struct {
		at  time.Time
		lat time.Duration
	}
	var (
		mu         sync.Mutex
		samples    []sample
		hardErrors atomic.Int64
		overloads  atomic.Int64
		seq        atomic.Int64
	)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				msg := fmt.Sprintf("fleet-demo-%d", seq.Add(1))
				t0 := time.Now()
				fut, err := front.SubmitSign([]byte(msg))
				if err == nil {
					_, err = fut.Wait(ctx)
				}
				switch {
				case err == nil:
					mu.Lock()
					samples = append(samples, sample{at: time.Now(), lat: time.Since(t0)})
					mu.Unlock()
				case ctx.Err() != nil:
					return
				case isOverload(err):
					overloads.Add(1)
					time.Sleep(retryAfter(err))
				default:
					hardErrors.Add(1)
					fmt.Fprintf(os.Stderr, "hard error: %v\n", err)
				}
			}
		}()
	}

	window := func(from, to time.Time) (rate float64, p99 time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		var lats []time.Duration
		for _, s := range samples {
			if s.at.After(from) && !s.at.After(to) {
				lats = append(lats, s.lat)
			}
		}
		if len(lats) == 0 {
			return 0, 0
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		secs := to.Sub(from).Seconds()
		return float64(len(lats)) / secs, lats[len(lats)*99/100]
	}

	// Phase 1: steady state on three leaves. The first second warms the
	// coalescer, the probe EWMAs and the hedge tracker.
	time.Sleep(time.Second)
	p1start := time.Now()
	time.Sleep(*phase1)
	p1end := time.Now()
	rate3, p99three := window(p1start, p1end)
	fmt.Printf("phase 1 (3 leaves): %.1f sigs/s, p99 %v\n", rate3, p99three.Round(time.Millisecond))
	if rate3 == 0 {
		die("no completions in phase 1")
	}

	// Phase 2: kill leaf 0 mid-run.
	killAt := time.Now()
	leafSrvs[0].CloseClientConnections()
	leafSrvs[0].Close()
	fmt.Printf("\nkilled leaf 0 at t=%v\n", killAt.Round(time.Millisecond).Sub(p1start))

	ejectedAt := waitForEjection(front, leafURLs[0], killAt, 2**probe+2*time.Second)
	if ejectedAt.IsZero() {
		die("leaf 0 was not ejected after the kill")
	}
	fmt.Printf("leaf 0 ejected %v after the kill (probe interval %v)\n",
		ejectedAt.Sub(killAt).Round(time.Millisecond), *probe)

	// Give the fleet a moment to settle, then measure the survivors.
	time.Sleep(time.Second)
	p2start := time.Now()
	time.Sleep(*phase2)
	p2end := time.Now()
	cancel()
	wg.Wait()

	rate2, p99two := window(p2start, p2end)
	fmt.Printf("phase 2 (2 leaves): %.1f sigs/s, p99 %v\n", rate2, p99two.Round(time.Millisecond))

	// Assertions.
	fails := 0
	check := func(ok bool, format string, args ...any) {
		status := "ok  "
		if !ok {
			status = "FAIL"
			fails++
		}
		fmt.Printf("  [%s] %s\n", status, fmt.Sprintf(format, args...))
	}
	fmt.Println("\nassertions:")
	check(hardErrors.Load() == 0,
		"no hard client errors across the kill (got %d; 429s are fine: %d)",
		hardErrors.Load(), overloads.Load())
	check(ejectedAt.Sub(killAt) <= 2**probe+time.Second,
		"ejection within ~one probe interval: %v <= %v",
		ejectedAt.Sub(killAt).Round(time.Millisecond), 2**probe+time.Second)
	check(rate2 >= 0.6*rate3,
		"2-leaf goodput %.1f >= 60%% of 3-leaf %.1f", rate2, 0.6*rate3)
	check(p99two <= 10*p99three || p99two <= 2*time.Second,
		"p99 stays bounded after the kill: %v (3-leaf %v)",
		p99two.Round(time.Millisecond), p99three.Round(time.Millisecond))

	var primaries, hedges, hedgeWins, failovers int64
	for _, rl := range front.Stats().RemoteLeaves {
		primaries += rl.PrimarySends
		hedges += rl.HedgesSent
		hedgeWins += rl.HedgeWins
		failovers += rl.Failovers
		fmt.Printf("  leaf %s: state=%s weight=%.0f sends=%d hedges=%d wins=%d failovers=%d\n",
			rl.URL, rl.State, rl.WeightSigsPerSec, rl.PrimarySends, rl.HedgesSent, rl.HedgeWins, rl.Failovers)
	}
	check(primaries == 0 || float64(hedges) <= 0.10*float64(primaries)+1,
		"hedge volume %d <= 10%% of %d primary sends", hedges, primaries)
	fmt.Printf("  hedge wins: %d, failovers: %d\n", hedgeWins, failovers)

	// KAT cross-check: one more signature through the proxy path must be
	// byte-identical to the CPU reference.
	fut, err := front.SubmitSign([]byte("kat-after-failover"))
	if err != nil {
		die("post-run sign: %v", err)
	}
	res, err := fut.Wait(context.Background())
	if err != nil {
		die("post-run sign: %v", err)
	}
	ref, err := herosign.Sign(sk, []byte("kat-after-failover"))
	if err != nil {
		die("reference sign: %v", err)
	}
	check(bytes.Equal(res.Sig, ref), "proxied signature byte-identical to CPU reference")

	if fails > 0 {
		die("%d assertion(s) failed", fails)
	}
	fmt.Println("\nfleet-demo: all assertions passed")
}

// waitForEjection polls the front end's stats until the named leaf reports
// ejected, or the timeout lapses (zero time).
func waitForEjection(front *herosign.Service, url string, from time.Time, timeout time.Duration) time.Time {
	deadline := from.Add(timeout)
	for time.Now().Before(deadline) {
		for _, rl := range front.Stats().RemoteLeaves {
			if rl.URL == url && rl.State == "ejected" {
				return time.Now()
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	return time.Time{}
}

func isOverload(err error) bool {
	return err != nil && service.IsOverloaded(err)
}

func retryAfter(err error) time.Duration {
	if d := service.RetryAfter(err); d > 0 {
		return d
	}
	return 50 * time.Millisecond
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fleet-demo: %s\n", fmt.Sprintf(format, args...))
	os.Exit(1)
}
