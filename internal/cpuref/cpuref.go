// Package cpuref provides the CPU-side comparators for the paper's Table X.
//
// The paper compares HERO-Sign against the AVX2 implementation of
// SPHINCS+ [1] in single-threaded and 16-thread configurations. That code
// and its Xeon testbed are outside this reproduction, so the table is
// regenerated two ways:
//
//   - the paper's published AVX2 throughput numbers, embedded as constants;
//   - a real measured multi-goroutine batch signer built on the pure-Go
//     reference implementation, so the GPU-vs-CPU orders of magnitude can
//     be checked against an actually-executed baseline on the build machine.
package cpuref

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"herosign/internal/spx"
	"herosign/internal/spx/params"
)

// PaperAVX2KOPS holds Table X's published throughput (kilo-signatures per
// second) keyed by parameter-set name.
var PaperAVX2KOPS = map[string]struct{ SingleThread, Threads16 float64 }{
	"SPHINCS+-128f": {0.143, 0.828},
	"SPHINCS+-192f": {0.087, 0.560},
	"SPHINCS+-256f": {0.044, 0.356},
}

// Result reports one measured CPU batch run.
type Result struct {
	Params   *params.Params
	Threads  int
	Messages int
	Elapsed  time.Duration
	KOPS     float64
}

// SignBatch signs msgs with `threads` worker goroutines (threads <= 0
// selects GOMAXPROCS) and reports measured throughput. Signatures are
// returned in message order. Each worker holds one reusable spx.Signer so
// the seeded midstate, lane engine and scratch arenas are set up once per
// worker, not once per message.
func SignBatch(sk *spx.PrivateKey, msgs [][]byte, threads int) ([][]byte, *Result, error) {
	return SignBatchCached(sk, msgs, threads, nil)
}

// SignBatchCached is SignBatch with every worker sharing one hypertree
// memoization cache for the key (nil cache selects the plain path).
// Signatures are byte-identical with and without the cache.
func SignBatchCached(sk *spx.PrivateKey, msgs [][]byte, threads int, cache *spx.TreeCache) ([][]byte, *Result, error) {
	if len(msgs) == 0 {
		// Avoid clamping threads to zero (no workers would ever run) and a
		// 0/0 KOPS division: an empty batch is a zeroed result, not NaN.
		return [][]byte{}, &Result{Params: sk.Params}, nil
	}
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > len(msgs) {
		threads = len(msgs)
	}
	sigs := make([][]byte, len(msgs))
	errs := make([]error, threads)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			signer, err := spx.NewSignerWithCache(sk, cache)
			if err != nil {
				errs[w] = err
				return
			}
			for i := w; i < len(msgs); i += threads {
				sig, err := signer.Sign(msgs[i], nil)
				if err != nil {
					errs[w] = err
					return
				}
				sigs[i] = sig
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	res := &Result{
		Params:   sk.Params,
		Threads:  threads,
		Messages: len(msgs),
		Elapsed:  elapsed,
		KOPS:     float64(len(msgs)) / elapsed.Seconds() / 1000,
	}
	return sigs, res, nil
}

// VerifyBatch checks msgs[i] against sigs[i] with `threads` worker
// goroutines (threads <= 0 selects GOMAXPROCS). A malformed or forged
// signature yields ok[i] == false; only infrastructure failures return an
// error. Each worker holds one reusable spx.Verifier over a contiguous
// sub-batch, so the hash work of up to sha2.Lanes signatures shares
// multi-lane compression passes; verdicts are identical to the scalar path.
func VerifyBatch(pk *spx.PublicKey, msgs, sigs [][]byte, threads int) ([]bool, *Result, error) {
	return NewBatchVerifier(pk).VerifyBatch(msgs, sigs, threads)
}

// VerifyBatchScalar is the strided per-signature reference path (one
// spx.Verify call per pair, no cross-signature lane batching). It is kept
// as the correctness and throughput baseline for VerifyBatch.
func VerifyBatchScalar(pk *spx.PublicKey, msgs, sigs [][]byte, threads int) ([]bool, *Result, error) {
	if len(msgs) != len(sigs) {
		return nil, nil, fmt.Errorf("cpuref: %d messages but %d signatures", len(msgs), len(sigs))
	}
	if len(msgs) == 0 {
		return []bool{}, &Result{Params: pk.Params}, nil
	}
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > len(msgs) {
		threads = len(msgs)
	}
	ok := make([]bool, len(msgs))
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(msgs); i += threads {
				ok[i] = spx.Verify(pk, msgs[i], sigs[i]) == nil
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	res := &Result{
		Params:   pk.Params,
		Threads:  threads,
		Messages: len(msgs),
		Elapsed:  elapsed,
		KOPS:     float64(len(msgs)) / elapsed.Seconds() / 1000,
	}
	return ok, res, nil
}

// BatchVerifier pools reusable spx.Verifier contexts for one public key so
// repeated VerifyBatch calls — the service steady state — hand every worker
// a warm context instead of rebuilding arenas per request. Safe for
// concurrent use.
type BatchVerifier struct {
	pk   *spx.PublicKey
	mu   sync.Mutex
	free []*spx.Verifier
}

// NewBatchVerifier builds an empty pool for pk; verifier contexts are
// created on first use and retained afterwards.
func NewBatchVerifier(pk *spx.PublicKey) *BatchVerifier {
	return &BatchVerifier{pk: pk}
}

func (bv *BatchVerifier) get() *spx.Verifier {
	bv.mu.Lock()
	if n := len(bv.free); n > 0 {
		v := bv.free[n-1]
		bv.free = bv.free[:n-1]
		bv.mu.Unlock()
		return v
	}
	bv.mu.Unlock()
	return spx.NewVerifier(bv.pk)
}

func (bv *BatchVerifier) put(v *spx.Verifier) {
	bv.mu.Lock()
	bv.free = append(bv.free, v)
	bv.mu.Unlock()
}

// VerifyBatch checks msgs[i] against sigs[i] with `threads` workers, each
// holding a pooled spx.Verifier over a contiguous sub-batch so lane groups
// form across neighbouring signatures.
func (bv *BatchVerifier) VerifyBatch(msgs, sigs [][]byte, threads int) ([]bool, *Result, error) {
	if len(msgs) != len(sigs) {
		return nil, nil, fmt.Errorf("cpuref: %d messages but %d signatures", len(msgs), len(sigs))
	}
	if len(msgs) == 0 {
		return []bool{}, &Result{Params: bv.pk.Params}, nil
	}
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > len(msgs) {
		threads = len(msgs)
	}
	ok := make([]bool, len(msgs))
	span := (len(msgs) + threads - 1) / threads
	var wg sync.WaitGroup
	start := time.Now()
	for lo := 0; lo < len(msgs); lo += span {
		hi := lo + span
		if hi > len(msgs) {
			hi = len(msgs)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			v := bv.get()
			v.VerifyBatch(ok[lo:hi], msgs[lo:hi], sigs[lo:hi])
			bv.put(v)
		}(lo, hi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	res := &Result{
		Params:   bv.pk.Params,
		Threads:  threads,
		Messages: len(msgs),
		Elapsed:  elapsed,
		KOPS:     float64(len(msgs)) / elapsed.Seconds() / 1000,
	}
	return ok, res, nil
}

// KeyGenBatch derives one key pair per seed triple with `threads` worker
// goroutines. Keys are byte-identical to spx.KeyFromSeeds.
func KeyGenBatch(p *params.Params, skSeeds, skPRFs, pkSeeds [][]byte, threads int) ([]*spx.PrivateKey, *Result, error) {
	n := len(skSeeds)
	if len(skPRFs) != n || len(pkSeeds) != n {
		return nil, nil, fmt.Errorf("cpuref: seed component counts differ: %d/%d/%d",
			len(skSeeds), len(skPRFs), len(pkSeeds))
	}
	if n == 0 {
		return []*spx.PrivateKey{}, &Result{Params: p}, nil
	}
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > n {
		threads = n
	}
	keys := make([]*spx.PrivateKey, n)
	errs := make([]error, threads)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += threads {
				sk, err := spx.KeyFromSeeds(p, skSeeds[i], skPRFs[i], pkSeeds[i])
				if err != nil {
					errs[w] = err
					return
				}
				keys[i] = sk
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	res := &Result{
		Params:   p,
		Threads:  threads,
		Messages: n,
		Elapsed:  elapsed,
		KOPS:     float64(n) / elapsed.Seconds() / 1000,
	}
	return keys, res, nil
}
