package cpuref

import (
	"bytes"
	"testing"

	"herosign/internal/spx"
	"herosign/internal/spx/params"
)

func key(t testing.TB) *spx.PrivateKey {
	t.Helper()
	p := params.SPHINCSPlus128f
	s := make([]byte, p.N)
	for i := range s {
		s[i] = byte(i)
	}
	sk, err := spx.KeyFromSeeds(p, s, s, s)
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

// TestParallelMatchesSequential: the worker pool must produce exactly the
// signatures sequential signing produces, in order.
func TestParallelMatchesSequential(t *testing.T) {
	sk := key(t)
	msgs := make([][]byte, 7)
	for i := range msgs {
		msgs[i] = []byte{byte(i), 'x'}
	}
	sigs, res, err := SignBatch(sk, msgs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads != 4 || res.Messages != 7 || res.KOPS <= 0 {
		t.Fatalf("result %+v", res)
	}
	for i, m := range msgs {
		want, err := spx.Sign(sk, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sigs[i], want) {
			t.Fatalf("message %d: parallel signature differs", i)
		}
	}
}

// TestThreadClamping: more workers than messages must not deadlock or skip.
func TestThreadClamping(t *testing.T) {
	sk := key(t)
	msgs := [][]byte{[]byte("only one")}
	sigs, res, err := SignBatch(sk, msgs, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads != 1 || sigs[0] == nil {
		t.Fatalf("threads = %d", res.Threads)
	}
	if err := spx.Verify(&sk.PublicKey, msgs[0], sigs[0]); err != nil {
		t.Fatal(err)
	}
}

// TestPaperConstantsPresent ensures Table X's published values are wired in
// for all three -f sets.
func TestPaperConstantsPresent(t *testing.T) {
	for _, p := range params.FastSets() {
		v, ok := PaperAVX2KOPS[p.Name]
		if !ok || v.SingleThread <= 0 || v.Threads16 <= v.SingleThread {
			t.Errorf("%s: AVX2 constants missing or inconsistent: %+v", p.Name, v)
		}
	}
}

// TestVerifyBatch: parallel verification must agree with spx.Verify,
// including forged entries, without poisoning batch-mates.
func TestVerifyBatch(t *testing.T) {
	sk := key(t)
	msgs := make([][]byte, 5)
	for i := range msgs {
		msgs[i] = []byte{byte(i), 'v'}
	}
	sigs, _, err := SignBatch(sk, msgs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Forge one signature and truncate another.
	sigs[1] = append([]byte(nil), sigs[1]...)
	sigs[1][40] ^= 0xff
	sigs[3] = sigs[3][:17]
	ok, res, err := VerifyBatch(&sk.PublicKey, msgs, sigs, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true, false, true}
	for i := range want {
		if ok[i] != want[i] {
			t.Errorf("verdict %d = %v, want %v", i, ok[i], want[i])
		}
	}
	if res.Messages != 5 {
		t.Fatalf("result %+v", res)
	}
	if _, _, err := VerifyBatch(&sk.PublicKey, msgs, sigs[:2], 2); err == nil {
		t.Fatal("mismatched message/signature counts must error")
	}
}

// TestKeyGenBatch: parallel derivation must be byte-identical to
// spx.KeyFromSeeds.
func TestKeyGenBatch(t *testing.T) {
	p := params.SPHINCSPlus128f
	n := 4
	skSeeds := make([][]byte, n)
	skPRFs := make([][]byte, n)
	pkSeeds := make([][]byte, n)
	for i := 0; i < n; i++ {
		mk := func(tag byte) []byte {
			b := make([]byte, p.N)
			for j := range b {
				b[j] = byte(i)*7 + tag + byte(j)
			}
			return b
		}
		skSeeds[i], skPRFs[i], pkSeeds[i] = mk(1), mk(2), mk(3)
	}
	keys, res, err := KeyGenBatch(p, skSeeds, skPRFs, pkSeeds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != n {
		t.Fatalf("result %+v", res)
	}
	for i, k := range keys {
		want, err := spx.KeyFromSeeds(p, skSeeds[i], skPRFs[i], pkSeeds[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(k.Bytes(), want.Bytes()) {
			t.Errorf("key %d differs from KeyFromSeeds", i)
		}
	}
	if _, _, err := KeyGenBatch(p, skSeeds, skPRFs[:1], pkSeeds, 2); err == nil {
		t.Fatal("mismatched seed component counts must error")
	}
}
