package cpuref

import (
	"bytes"
	"testing"

	"herosign/internal/spx"
	"herosign/internal/spx/params"
)

func key(t testing.TB) *spx.PrivateKey {
	t.Helper()
	p := params.SPHINCSPlus128f
	s := make([]byte, p.N)
	for i := range s {
		s[i] = byte(i)
	}
	sk, err := spx.KeyFromSeeds(p, s, s, s)
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

// TestParallelMatchesSequential: the worker pool must produce exactly the
// signatures sequential signing produces, in order.
func TestParallelMatchesSequential(t *testing.T) {
	sk := key(t)
	msgs := make([][]byte, 7)
	for i := range msgs {
		msgs[i] = []byte{byte(i), 'x'}
	}
	sigs, res, err := SignBatch(sk, msgs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads != 4 || res.Messages != 7 || res.KOPS <= 0 {
		t.Fatalf("result %+v", res)
	}
	for i, m := range msgs {
		want, err := spx.Sign(sk, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sigs[i], want) {
			t.Fatalf("message %d: parallel signature differs", i)
		}
	}
}

// TestThreadClamping: more workers than messages must not deadlock or skip.
func TestThreadClamping(t *testing.T) {
	sk := key(t)
	msgs := [][]byte{[]byte("only one")}
	sigs, res, err := SignBatch(sk, msgs, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads != 1 || sigs[0] == nil {
		t.Fatalf("threads = %d", res.Threads)
	}
	if err := spx.Verify(&sk.PublicKey, msgs[0], sigs[0]); err != nil {
		t.Fatal(err)
	}
}

// TestPaperConstantsPresent ensures Table X's published values are wired in
// for all three -f sets.
func TestPaperConstantsPresent(t *testing.T) {
	for _, p := range params.FastSets() {
		v, ok := PaperAVX2KOPS[p.Name]
		if !ok || v.SingleThread <= 0 || v.Threads16 <= v.SingleThread {
			t.Errorf("%s: AVX2 constants missing or inconsistent: %+v", p.Name, v)
		}
	}
}
