package cpuref

import (
	"fmt"
	"testing"

	"herosign/internal/sha2"
	"herosign/internal/spx"
	"herosign/internal/spx/params"
)

// benchKey derives the deterministic benchmark key for p.
func benchKey(b *testing.B, p *params.Params) *spx.PrivateKey {
	b.Helper()
	s := make([]byte, p.N)
	for i := range s {
		s[i] = byte(i)
	}
	sk, err := spx.KeyFromSeeds(p, s, s, s)
	if err != nil {
		b.Fatal(err)
	}
	return sk
}

func benchSignBatch(b *testing.B, p *params.Params, threads int) {
	sk := benchKey(b, p)
	msgs := make([][]byte, 4)
	for i := range msgs {
		msgs[i] = []byte{byte(i), 'b', 'e', 'n'}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var kops float64
	for i := 0; i < b.N; i++ {
		_, res, err := SignBatch(sk, msgs, threads)
		if err != nil {
			b.Fatal(err)
		}
		kops = res.KOPS
	}
	b.ReportMetric(kops, "KOPS")
	b.ReportMetric(kops*1000, "sigs/s")
}

// BenchmarkSignBatch1T is the acceptance benchmark: measured wall-clock
// single-thread SPHINCS+-128f batch signing throughput.
func BenchmarkSignBatch1T(b *testing.B) {
	benchSignBatch(b, params.SPHINCSPlus128f, 1)
}

// BenchmarkSignBatch1TPortable is the same measurement with the hardware
// SHA-256 backend disabled, isolating the portable lane engine.
func BenchmarkSignBatch1TPortable(b *testing.B) {
	prev := sha2.SetAccelerated(false)
	defer sha2.SetAccelerated(prev)
	benchSignBatch(b, params.SPHINCSPlus128f, 1)
}

// BenchmarkSignBatchAllSets covers the three -f sets at GOMAXPROCS workers.
func BenchmarkSignBatchAllSets(b *testing.B) {
	for _, p := range params.FastSets() {
		b.Run(fmt.Sprintf("%s", p.Name), func(b *testing.B) {
			benchSignBatch(b, p, 0)
		})
	}
}
