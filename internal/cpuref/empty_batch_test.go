package cpuref

import (
	"math"
	"testing"

	"herosign/internal/spx/params"
)

// TestEmptyBatches: zero-item batches must return a zeroed Result instead
// of clamping the worker count to zero (which left no goroutine to run) or
// dividing 0/0 into a NaN/Inf KOPS.
func TestEmptyBatches(t *testing.T) {
	sk := key(t)
	check := func(what string, res *Result, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		if res == nil {
			t.Fatalf("%s: nil result", what)
		}
		if res.Messages != 0 || res.Threads != 0 {
			t.Errorf("%s: result %+v, want zeroed", what, res)
		}
		if math.IsNaN(res.KOPS) || math.IsInf(res.KOPS, 0) || res.KOPS != 0 {
			t.Errorf("%s: KOPS = %v, want 0", what, res.KOPS)
		}
	}

	for _, threads := range []int{0, 4} {
		sigs, res, err := SignBatch(sk, nil, threads)
		check("SignBatch", res, err)
		if len(sigs) != 0 {
			t.Errorf("SignBatch returned %d signatures", len(sigs))
		}

		ok, res, err := VerifyBatch(&sk.PublicKey, nil, nil, threads)
		check("VerifyBatch", res, err)
		if len(ok) != 0 {
			t.Errorf("VerifyBatch returned %d verdicts", len(ok))
		}

		ok, res, err = VerifyBatchScalar(&sk.PublicKey, nil, nil, threads)
		check("VerifyBatchScalar", res, err)
		if len(ok) != 0 {
			t.Errorf("VerifyBatchScalar returned %d verdicts", len(ok))
		}

		keys, res, err := KeyGenBatch(params.SPHINCSPlus128f, nil, nil, nil, threads)
		check("KeyGenBatch", res, err)
		if len(keys) != 0 {
			t.Errorf("KeyGenBatch returned %d keys", len(keys))
		}
	}
}

// TestVerifyBatchMatchesScalar: the lane-batched verify path must produce
// exactly the verdicts of the strided scalar reference on a mixed batch, at
// several worker counts (contiguous spans of different sizes).
func TestVerifyBatchMatchesScalar(t *testing.T) {
	sk := key(t)
	const n = 13
	msgs := make([][]byte, n)
	for i := range msgs {
		msgs[i] = []byte{byte(i), 'm', 's'}
	}
	sigs, _, err := SignBatch(sk, msgs, 4)
	if err != nil {
		t.Fatal(err)
	}
	sigs[2] = append([]byte(nil), sigs[2]...)
	sigs[2][70] ^= 1          // forged
	sigs[5] = sigs[5][:33]    // truncated
	msgs[8] = []byte("other") // message mismatch
	sigs[11] = append([]byte(nil), sigs[11]...)
	sigs[11][len(sigs[11])-1] ^= 0x10 // tampered tail

	want, _, err := VerifyBatchScalar(&sk.PublicKey, msgs, sigs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 3, 16} {
		got, res, err := VerifyBatch(&sk.PublicKey, msgs, sigs, threads)
		if err != nil {
			t.Fatal(err)
		}
		if res.Messages != n {
			t.Fatalf("threads=%d: result %+v", threads, res)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("threads=%d pair %d: batched %v, scalar %v", threads, i, got[i], want[i])
			}
		}
	}
}
