package cpuref

import (
	"bytes"
	"fmt"
	"testing"

	"herosign/internal/spx"
)

// TestSignBatchCachedMatchesUncached: a multi-threaded batch over one shared
// TreeCache must produce signatures byte-identical to the cache-free pool —
// repeated messages exercise the warm-hit path, fresh ones the miss path.
// Under -race this doubles as the concurrent shared-cache test: all workers
// mutate the same cache while signing.
func TestSignBatchCachedMatchesUncached(t *testing.T) {
	sk := key(t)
	cache := spx.NewTreeCache(sk, 4<<20)
	cache.Warm(2)

	msgs := make([][]byte, 24)
	for i := range msgs {
		// 8 distinct messages, each repeated 3x, interleaved.
		msgs[i] = []byte(fmt.Sprintf("memo batch message %d", i%8))
	}

	want, _, err := SignBatch(sk, msgs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ { // cold LRU, then warm
		got, res, err := SignBatchCached(sk, msgs, 4, cache)
		if err != nil {
			t.Fatal(err)
		}
		if res.Messages != len(msgs) {
			t.Fatalf("pass %d: result %+v", pass, res)
		}
		for i := range msgs {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("pass %d message %d: cached signature differs", pass, i)
			}
		}
	}
	s := cache.Stats()
	if s.Hits == 0 || s.WOTSHits == 0 {
		t.Fatalf("warm pass produced no hits: %+v", s)
	}
}

// TestSignBatchCachedNilCache: a nil cache must behave exactly like SignBatch.
func TestSignBatchCachedNilCache(t *testing.T) {
	sk := key(t)
	msgs := [][]byte{[]byte("a"), []byte("b")}
	want, _, err := SignBatch(sk, msgs, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := SignBatchCached(sk, msgs, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range msgs {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("message %d differs", i)
		}
	}
}
