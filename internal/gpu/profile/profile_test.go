package profile

import (
	"strings"
	"testing"

	"herosign/internal/gpu/device"
	"herosign/internal/gpu/shmem"
	"herosign/internal/gpu/sim"
)

func sampleStats() *sim.Stats {
	return &sim.Stats{
		Name: "FORS_Sign", Blocks: 1024, ThreadsPerBlock: 704,
		RegsPerThread: 48, SharedMemBytes: 33 * 1024,
		Occ: device.Occupancy{
			ResidentBlocksPerSM: 1, ActiveWarpsPerSM: 22,
			TheoreticalPct: 45.83, Limiter: "registers",
		},
		Compress: 6_500_000, DurationUs: 812.5,
		ComputeThroughputPct: 62.1, MemoryThroughputPct: 4.2,
		AchievedOccupancyPct: 28.4,
		Shmem: shmem.Stats{
			LoadTransactions: 120000, StoreTransactions: 60000,
			LoadConflicts: 500, StoreConflicts: 250,
		},
		GlobalRead: 1 << 20, GlobalWrite: 1 << 18, ConstRead: 1 << 16,
		Syncs: 7168,
	}
}

// TestFromStatsFieldMapping checks every field lands where it should.
func TestFromStatsFieldMapping(t *testing.T) {
	r := FromStats(device.RTX4090, sampleStats())
	if r.Kernel != "FORS_Sign" || r.Device != "RTX 4090" {
		t.Fatal("identity fields")
	}
	if r.TheoreticalOccupancyPct != 45.83 || r.AchievedOccupancyPct != 28.4 {
		t.Fatal("occupancy fields")
	}
	if r.SharedLoadConflicts != 500 || r.SharedStoreConflicts != 250 {
		t.Fatal("conflict fields")
	}
	if r.GlobalReadBytes != 1<<20 || r.ConstantReadBytes != 1<<16 {
		t.Fatal("traffic fields")
	}
	if r.OccupancyLimiter != "registers" {
		t.Fatal("limiter field")
	}
}

// TestRenderSections checks the report contains every Nsight-like section
// and the headline numbers.
func TestRenderSections(t *testing.T) {
	var sb strings.Builder
	FromStats(device.RTX4090, sampleStats()).Render(&sb)
	out := sb.String()
	for _, want := range []string{
		"Kernel: FORS_Sign", "Launch Configuration", "Occupancy",
		"GPU Speed Of Light", "Memory Workload Analysis",
		"45.83", "28.40", "812.50", "conflicts 500", "registers",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
