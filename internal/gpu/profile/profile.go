// Package profile renders Nsight-Compute-style reports from simulator
// kernel statistics: occupancy section, compute/memory throughput section,
// shared-memory traffic with bank-conflict counts, and the launch
// configuration — the quantities the paper reads off Nsight in Tables III,
// VI and VIII.
package profile

import (
	"fmt"
	"io"
	"strings"

	"herosign/internal/gpu/device"
	"herosign/internal/gpu/sim"
)

// Report is a structured per-kernel profile.
type Report struct {
	Kernel string
	Device string

	// Launch configuration.
	Blocks          int
	ThreadsPerBlock int
	RegsPerThread   int
	SharedMemBytes  int

	// Occupancy section.
	TheoreticalOccupancyPct float64
	AchievedOccupancyPct    float64
	ResidentBlocksPerSM     int
	OccupancyLimiter        string

	// Throughput section.
	DurationUs           float64
	ComputeThroughputPct float64
	MemoryThroughputPct  float64
	Compressions         int64

	// Memory workload section.
	SharedLoadTransactions  int64
	SharedStoreTransactions int64
	SharedLoadConflicts     int64
	SharedStoreConflicts    int64
	GlobalReadBytes         int64
	GlobalWriteBytes        int64
	ConstantReadBytes       int64
	Barriers                int64
}

// FromStats builds a Report from a kernel run.
func FromStats(d *device.Device, st *sim.Stats) *Report {
	return &Report{
		Kernel: st.Name, Device: d.Name,
		Blocks: st.Blocks, ThreadsPerBlock: st.ThreadsPerBlock,
		RegsPerThread: st.RegsPerThread, SharedMemBytes: st.SharedMemBytes,
		TheoreticalOccupancyPct: st.Occ.TheoreticalPct,
		AchievedOccupancyPct:    st.AchievedOccupancyPct,
		ResidentBlocksPerSM:     st.Occ.ResidentBlocksPerSM,
		OccupancyLimiter:        st.Occ.Limiter,
		DurationUs:              st.DurationUs,
		ComputeThroughputPct:    st.ComputeThroughputPct,
		MemoryThroughputPct:     st.MemoryThroughputPct,
		Compressions:            st.Compress,
		SharedLoadTransactions:  st.Shmem.LoadTransactions,
		SharedStoreTransactions: st.Shmem.StoreTransactions,
		SharedLoadConflicts:     st.Shmem.LoadConflicts,
		SharedStoreConflicts:    st.Shmem.StoreConflicts,
		GlobalReadBytes:         st.GlobalRead,
		GlobalWriteBytes:        st.GlobalWrite,
		ConstantReadBytes:       st.ConstRead,
		Barriers:                st.Syncs,
	}
}

// Render writes the report in an Nsight-like sectioned layout.
func (r *Report) Render(w io.Writer) {
	rule := strings.Repeat("-", 64)
	fmt.Fprintf(w, "%s\n", rule)
	fmt.Fprintf(w, "Kernel: %s  [%s]\n", r.Kernel, r.Device)
	fmt.Fprintf(w, "%s\n", rule)
	fmt.Fprintf(w, "Launch Configuration\n")
	fmt.Fprintf(w, "  Grid Size (blocks)              %12d\n", r.Blocks)
	fmt.Fprintf(w, "  Block Size (threads)            %12d\n", r.ThreadsPerBlock)
	fmt.Fprintf(w, "  Registers Per Thread            %12d\n", r.RegsPerThread)
	fmt.Fprintf(w, "  Static Shared Memory Per Block  %12d B\n", r.SharedMemBytes)
	fmt.Fprintf(w, "Occupancy\n")
	fmt.Fprintf(w, "  Theoretical Occupancy           %11.2f %%\n", r.TheoreticalOccupancyPct)
	fmt.Fprintf(w, "  Achieved (active-warp) Occ.     %11.2f %%\n", r.AchievedOccupancyPct)
	fmt.Fprintf(w, "  Resident Blocks Per SM          %12d  (limiter: %s)\n",
		r.ResidentBlocksPerSM, r.OccupancyLimiter)
	fmt.Fprintf(w, "GPU Speed Of Light\n")
	fmt.Fprintf(w, "  Duration                        %11.2f us\n", r.DurationUs)
	fmt.Fprintf(w, "  Compute (SM) Throughput         %11.2f %%\n", r.ComputeThroughputPct)
	fmt.Fprintf(w, "  Memory Throughput               %11.2f %%\n", r.MemoryThroughputPct)
	fmt.Fprintf(w, "  SHA-256 Compressions            %12d\n", r.Compressions)
	fmt.Fprintf(w, "Memory Workload Analysis\n")
	fmt.Fprintf(w, "  Shared Load  Transactions       %12d  (conflicts %d)\n",
		r.SharedLoadTransactions, r.SharedLoadConflicts)
	fmt.Fprintf(w, "  Shared Store Transactions       %12d  (conflicts %d)\n",
		r.SharedStoreTransactions, r.SharedStoreConflicts)
	fmt.Fprintf(w, "  Global Read / Write             %10d B / %d B\n",
		r.GlobalReadBytes, r.GlobalWriteBytes)
	fmt.Fprintf(w, "  Constant Read                   %12d B\n", r.ConstantReadBytes)
	fmt.Fprintf(w, "  Barriers (__syncthreads)        %12d\n", r.Barriers)
}
