package sched

import (
	"math"
	"testing"

	"herosign/internal/gpu/device"
)

// TestSingleKernel schedules one saturating kernel.
func TestSingleKernel(t *testing.T) {
	tl := Run(device.RTX4090, []Item{{Name: "k", DurationUs: 100, Util: 1}}, Streams)
	want := device.RTX4090.KernelLaunchOverheadUs + 100
	if math.Abs(tl.TotalUs-want) > 0.5 {
		t.Fatalf("total = %.2f, want %.2f", tl.TotalUs, want)
	}
	if len(tl.Spans) != 1 || tl.Spans[0].StartUs < device.RTX4090.KernelLaunchOverheadUs {
		t.Fatalf("span = %+v", tl.Spans)
	}
}

// TestStreamSerialization: two kernels on one stream run back to back; on
// two streams with Util 0.5 they overlap.
func TestStreamSerialization(t *testing.T) {
	d := device.RTX4090
	same := Run(d, []Item{
		{Name: "a", DurationUs: 100, Util: 0.5, Stream: 0},
		{Name: "b", DurationUs: 100, Util: 0.5, Stream: 0},
	}, Streams)
	diff := Run(d, []Item{
		{Name: "a", DurationUs: 100, Util: 0.5, Stream: 0},
		{Name: "b", DurationUs: 100, Util: 0.5, Stream: 1},
	}, Streams)
	if diff.TotalUs >= same.TotalUs-20 {
		t.Fatalf("multi-stream overlap missing: same=%.1f diff=%.1f", same.TotalUs, diff.TotalUs)
	}
}

// TestSaturatingKernelsCannotOverlap: two Util=1 kernels on two streams take
// the sum of durations — stream parallelism cannot create capacity.
func TestSaturatingKernelsCannotOverlap(t *testing.T) {
	d := device.RTX4090
	tl := Run(d, []Item{
		{Name: "a", DurationUs: 100, Util: 1, Stream: 0},
		{Name: "b", DurationUs: 100, Util: 1, Stream: 1},
	}, Streams)
	if tl.TotalUs < 200 {
		t.Fatalf("got %.1fus for 200us of saturating work", tl.TotalUs)
	}
}

// TestDependencies: a dependent kernel cannot start before its producer
// finishes (the WOTS-after-FORS/TREE pattern).
func TestDependencies(t *testing.T) {
	d := device.RTX4090
	tl := Run(d, []Item{
		{Name: "fors", DurationUs: 50, Util: 0.4, Stream: 0},
		{Name: "tree", DurationUs: 80, Util: 0.4, Stream: 1},
		{Name: "wots", DurationUs: 30, Util: 0.4, Stream: 0, Deps: []int{0, 1}},
	}, Streams)
	var wotsStart, treeFinish float64
	for _, s := range tl.Spans {
		switch s.Name {
		case "wots":
			wotsStart = s.StartUs
		case "tree":
			treeFinish = s.FinishUs
		}
	}
	if wotsStart < treeFinish {
		t.Fatalf("wots started at %.1f before tree finished at %.1f", wotsStart, treeFinish)
	}
}

// TestGraphReducesLaunchOverhead is the paper's Fig. 12 headline: for many
// small kernels, graph dispatch removes nearly all launch overhead (the
// paper reports up to 221x).
func TestGraphReducesLaunchOverhead(t *testing.T) {
	d := device.RTX4090
	var items []Item
	for i := 0; i < 300; i++ {
		items = append(items, Item{Name: "k", DurationUs: 2, Util: 1, Stream: i % 4})
	}
	st := Run(d, items, Streams)
	gr := Run(d, items, Graph)
	if st.LaunchOverheadUs < 300*d.KernelLaunchOverheadUs-1 {
		t.Fatalf("stream overhead = %.1f", st.LaunchOverheadUs)
	}
	ratio := st.LaunchOverheadUs / gr.LaunchOverheadUs
	if ratio < 10 {
		t.Fatalf("graph overhead reduction only %.1fx", ratio)
	}
	if gr.TotalUs >= st.TotalUs {
		t.Fatal("graph scheduling not faster end-to-end")
	}
}

// TestIdleAccounting: a dependency chain of half-utilization kernels leaves
// capacity idle, and the scheduler must report it.
func TestIdleAccounting(t *testing.T) {
	d := device.RTX4090
	tl := Run(d, []Item{
		{Name: "a", DurationUs: 100, Util: 0.5, Stream: 0},
		{Name: "b", DurationUs: 100, Util: 0.5, Stream: 0, Deps: []int{0}},
	}, Graph)
	if tl.IdleUs < 80 {
		t.Fatalf("idle = %.1f, expected ~half the device idle across the chain", tl.IdleUs)
	}
}

// TestEmpty handles the degenerate case.
func TestEmpty(t *testing.T) {
	tl := Run(device.RTX4090, nil, Streams)
	if tl.TotalUs != 0 || len(tl.Spans) != 0 {
		t.Fatalf("empty schedule = %+v", tl)
	}
}

// TestDeterminism: identical inputs yield identical timelines.
func TestDeterminism(t *testing.T) {
	d := device.H100
	items := []Item{
		{Name: "a", DurationUs: 33.3, Util: 0.7, Stream: 0},
		{Name: "b", DurationUs: 21.1, Util: 0.6, Stream: 1},
		{Name: "c", DurationUs: 55.5, Util: 1.0, Stream: 2, Deps: []int{0}},
		{Name: "d", DurationUs: 13.7, Util: 0.2, Stream: 1, Deps: []int{1, 2}},
	}
	a := Run(d, items, Streams)
	b := Run(d, items, Streams)
	if a.TotalUs != b.TotalUs || a.IdleUs != b.IdleUs {
		t.Fatalf("nondeterministic schedule: %+v vs %+v", a, b)
	}
}
