// Package sched schedules kernel launches onto the simulated device, either
// as host-dispatched stream launches or as an instantiated task graph (the
// CUDA Graph analogue of HERO-Sign §III-F).
//
// The model captures the two effects the paper builds on:
//
//  1. Host launch overhead. A stream launch costs the host
//     KernelLaunchOverheadUs per kernel, and dispatches serialize on the
//     host thread — with hundreds of launches this dominates small kernels.
//     An instantiated graph pays one launch plus a tiny per-node device-side
//     cost.
//  2. Device idle time. Kernels occupy a fraction of the device
//     (Utilization = resident blocks they can actually spread over the SMs);
//     dependencies and stream serialization leave capacity unused, which the
//     scheduler integrates as idle time.
//
// Execution is event-driven with proportional capacity sharing: at any
// instant, running kernels receive device capacity min(their utilization,
// fair share), which models concurrent kernel execution across streams the
// way the hardware work distributor does at first order.
package sched

import (
	"fmt"
	"math"
	"sort"

	"herosign/internal/gpu/device"
)

// Item is one kernel launch to schedule.
type Item struct {
	Name       string
	DurationUs float64 // exclusive-occupancy duration from sim.Stats
	Util       float64 // device fraction the kernel can use, (0,1]
	Stream     int     // stream id; launches on one stream serialize in order
	Deps       []int   // indices of items that must finish first
}

// Mode selects the dispatch mechanism.
type Mode int

const (
	// Streams dispatches every launch from the host (traditional
	// multi-stream submission).
	Streams Mode = iota
	// Graph executes a pre-instantiated task graph: one host launch, then
	// device-side scheduling (instantiation time excluded, as in Fig. 12).
	Graph
)

// Span records one kernel's scheduled interval.
type Span struct {
	Name     string
	StartUs  float64
	FinishUs float64
}

// Timeline is the scheduling result.
type Timeline struct {
	TotalUs          float64
	LaunchOverheadUs float64 // total host+device dispatch overhead
	IdleUs           float64 // integrated unused capacity before last finish
	Spans            []Span
}

type runState struct {
	remaining float64 // device-microseconds of work left (duration × util)
	readyAt   float64
	started   bool
	startUs   float64
	finished  bool
	finishUs  float64
}

// Run schedules items on d under the given mode.
func Run(d *device.Device, items []Item, mode Mode) Timeline {
	n := len(items)
	if n == 0 {
		return Timeline{}
	}
	st := make([]runState, n)

	// Host dispatch completion time per item.
	var launchOverhead float64
	dispatchDone := make([]float64, n)
	switch mode {
	case Streams:
		for i := range items {
			launchOverhead += d.KernelLaunchOverheadUs
			dispatchDone[i] = launchOverhead
		}
	case Graph:
		launchOverhead = d.GraphLaunchOverheadUs + float64(n)*d.GraphPerNodeOverheadUs
		for i := range items {
			// The whole graph is submitted at once; nodes become available
			// after the single launch plus their (tiny) node setup cost.
			dispatchDone[i] = d.GraphLaunchOverheadUs + d.GraphPerNodeOverheadUs
		}
	}

	for i, it := range items {
		u := it.Util
		if u <= 0 {
			u = 1
		} else if u > 1 {
			u = 1
		}
		st[i].remaining = it.DurationUs * u
		st[i].readyAt = math.Inf(1)
	}

	streamPrev := map[int]int{} // stream -> index of previous item
	prevInStream := make([]int, n)
	for i := range items {
		prevInStream[i] = -1
		if p, ok := streamPrev[items[i].Stream]; ok {
			prevInStream[i] = p
		}
		streamPrev[items[i].Stream] = i
	}

	ready := func(i int, now float64) (bool, float64) {
		t := dispatchDone[i]
		if p := prevInStream[i]; p >= 0 {
			if !st[p].finished {
				return false, math.Inf(1)
			}
			if st[p].finishUs > t {
				t = st[p].finishUs
			}
		}
		for _, dep := range items[i].Deps {
			if !st[dep].finished {
				return false, math.Inf(1)
			}
			if st[dep].finishUs > t {
				t = st[dep].finishUs
			}
		}
		return true, t
	}

	now := 0.0
	var idle float64
	finishedCount := 0
	for finishedCount < n {
		// Determine running set and next ready times.
		var running []int
		nextEvent := math.Inf(1)
		for i := range items {
			if st[i].finished {
				continue
			}
			ok, at := ready(i, now)
			if ok && at <= now {
				running = append(running, i)
			} else if ok && at < nextEvent {
				nextEvent = at
			}
		}
		if len(running) == 0 {
			if math.IsInf(nextEvent, 1) {
				panic(fmt.Sprintf("sched: deadlock with %d/%d items finished", finishedCount, n))
			}
			idle += nextEvent - now
			now = nextEvent
			continue
		}

		// Water-filling capacity allocation capped at each item's util.
		alloc := allocate(items, running)

		// Advance to the earliest completion or readiness change.
		dt := nextEvent - now
		for _, i := range running {
			if alloc[i] <= 0 {
				continue
			}
			t := st[i].remaining / alloc[i]
			if t < dt {
				dt = t
			}
		}
		if math.IsInf(dt, 1) || dt <= 0 {
			dt = 1e-9
		}

		used := 0.0
		for _, i := range running {
			if !st[i].started {
				st[i].started = true
				st[i].startUs = now
			}
			st[i].remaining -= alloc[i] * dt
			used += alloc[i]
		}
		if used < 1 {
			idle += (1 - used) * dt
		}
		now += dt
		for _, i := range running {
			if st[i].remaining <= 1e-9 && !st[i].finished {
				st[i].finished = true
				st[i].finishUs = now
				finishedCount++
			}
		}
	}

	spans := make([]Span, n)
	for i := range items {
		spans[i] = Span{Name: items[i].Name, StartUs: st[i].startUs, FinishUs: st[i].finishUs}
	}
	sort.Slice(spans, func(a, b int) bool { return spans[a].StartUs < spans[b].StartUs })
	return Timeline{
		TotalUs:          now,
		LaunchOverheadUs: launchOverhead,
		IdleUs:           idle,
		Spans:            spans,
	}
}

// allocate distributes one unit of device capacity among running items,
// capping each at its utilization bound, redistributing leftovers.
func allocate(items []Item, running []int) map[int]float64 {
	alloc := make(map[int]float64, len(running))
	remainingCap := 1.0
	unsat := append([]int(nil), running...)
	for len(unsat) > 0 && remainingCap > 1e-12 {
		share := remainingCap / float64(len(unsat))
		var next []int
		progressed := false
		for _, i := range unsat {
			u := items[i].Util
			if u <= 0 || u > 1 {
				u = 1
			}
			need := u - alloc[i]
			grant := math.Min(share, need)
			if grant > 0 {
				alloc[i] += grant
				remainingCap -= grant
				progressed = true
			}
			if alloc[i] < u-1e-12 {
				next = append(next, i)
			}
		}
		unsat = next
		if !progressed {
			break
		}
	}
	return alloc
}
