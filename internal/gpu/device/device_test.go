package device

import "testing"

// TestCatalogSanity checks structural invariants over every catalog entry.
func TestCatalogSanity(t *testing.T) {
	for _, d := range All() {
		if d.SMs <= 0 || d.BaseClockMHz <= 0 || d.WarpSize != 32 {
			t.Errorf("%s: implausible core fields", d.Name)
		}
		if d.MaxWarpsPerSM*d.WarpSize < d.MaxThreadsPerSM {
			t.Errorf("%s: warp capacity below thread capacity", d.Name)
		}
		if d.MaxSharedMemPerBlock > d.SharedMemPerSM {
			t.Errorf("%s: per-block shared memory exceeds per-SM", d.Name)
		}
		if d.StaticSharedMemPerBlock != 48*1024 {
			t.Errorf("%s: static shared memory should be 48KB", d.Name)
		}
		if d.GraphPerNodeOverheadUs >= d.KernelLaunchOverheadUs {
			t.Errorf("%s: graph node overhead should be far below stream launch", d.Name)
		}
	}
}

// TestTableVIIPlatforms verifies the catalog matches the paper's Table VII
// (SM versions and base clocks).
func TestTableVIIPlatforms(t *testing.T) {
	cases := []struct {
		dev   *Device
		arch  string
		smVer int
		clock int
	}{
		{GTX1070, "Pascal", 61, 1506},
		{V100, "Volta", 70, 1230},
		{RTX2080Ti, "Turing", 75, 1350},
		{A100, "Ampere", 80, 1095},
		{RTX4090, "Ada", 89, 2235},
		{H100, "Hopper", 90, 1035},
	}
	for _, c := range cases {
		if c.dev.Arch != c.arch || c.dev.SMVersion != c.smVer || c.dev.BaseClockMHz != c.clock {
			t.Errorf("%s: got (%s, sm_%d, %d MHz), want (%s, sm_%d, %d MHz)",
				c.dev.Name, c.dev.Arch, c.dev.SMVersion, c.dev.BaseClockMHz,
				c.arch, c.smVer, c.clock)
		}
	}
}

// TestPaperCoreCountClaims verifies the core-count facts the paper cites:
// GTX 1070 has 1920 CUDA cores (§IV-F) and H100 has slightly more cores than
// RTX 4090 (16,896 vs 16,384) while clocking much lower.
func TestPaperCoreCountClaims(t *testing.T) {
	if GTX1070.CUDACores() != 1920 {
		t.Errorf("GTX 1070 cores = %d, want 1920", GTX1070.CUDACores())
	}
	if RTX4090.CUDACores() != 16384 {
		t.Errorf("RTX 4090 cores = %d, want 16384", RTX4090.CUDACores())
	}
	if H100.CUDACores() != 16896 {
		t.Errorf("H100 cores = %d, want 16896", H100.CUDACores())
	}
	if H100.BaseClockMHz >= RTX4090.BaseClockMHz {
		t.Error("paper: RTX 4090 clocks 2.16x higher than H100")
	}
}

// TestOccupancyFORSBaseline reproduces the paper's Table III theoretical
// occupancy for FORS_Sign on RTX 4090: 64 regs/thread at 1024 threads/block
// gives exactly one resident block (register-limited), 32 of 48 warps =
// 66.67%.
func TestOccupancyFORSBaseline(t *testing.T) {
	occ := ComputeOccupancy(RTX4090, KernelResources{
		ThreadsPerBlock: 1024, RegsPerThread: 64, SharedMemPerBlock: 33 * 1024, DynamicShared: false,
	})
	if occ.ResidentBlocksPerSM != 1 {
		t.Fatalf("resident blocks = %d, want 1 (limiter %s)", occ.ResidentBlocksPerSM, occ.Limiter)
	}
	if occ.ActiveWarpsPerSM != 32 {
		t.Fatalf("active warps = %d, want 32", occ.ActiveWarpsPerSM)
	}
	if got := occ.TheoreticalPct; got < 66.6 || got > 66.7 {
		t.Fatalf("theoretical occupancy = %.2f%%, want 66.67%%", got)
	}
}

// TestOccupancyRegisterBound checks that an over-demanding kernel cannot
// launch: 128 regs/thread at 1024 threads needs 131,072 registers, double
// the SM register file.
func TestOccupancyRegisterBound(t *testing.T) {
	occ := ComputeOccupancy(RTX4090, KernelResources{ThreadsPerBlock: 1024, RegsPerThread: 128})
	if occ.ResidentBlocksPerSM != 0 {
		t.Fatalf("resident blocks = %d, want 0", occ.ResidentBlocksPerSM)
	}
	if occ.Limiter != "registers" {
		t.Fatalf("limiter = %s, want registers", occ.Limiter)
	}
}

// TestOccupancySharedMemoryBound checks the shared-memory limiter and the
// dynamic opt-in distinction (paper §III-B: 198 KB and 560 KB exceed the
// 48 KB static limit).
func TestOccupancySharedMemoryBound(t *testing.T) {
	r := KernelResources{ThreadsPerBlock: 256, RegsPerThread: 32, SharedMemPerBlock: 60 * 1024}
	if occ := ComputeOccupancy(RTX4090, r); occ.ResidentBlocksPerSM != 0 {
		t.Fatalf("60KB static should not fit in 48KB limit, got %d blocks", occ.ResidentBlocksPerSM)
	}
	r.DynamicShared = true
	occ := ComputeOccupancy(RTX4090, r)
	if occ.ResidentBlocksPerSM != 1 {
		t.Fatalf("60KB dynamic should fit once per SM (100KB), got %d", occ.ResidentBlocksPerSM)
	}
	if occ.Limiter != "shared memory" {
		t.Fatalf("limiter = %s, want shared memory", occ.Limiter)
	}
}

// TestOccupancyImprovesWithFewerRegs encodes the paper's §III-C example
// shape: reducing TREE_Sign register pressure raises occupancy
// (168 -> 95 regs per thread at 256 threads/block).
func TestOccupancyImprovesWithFewerRegs(t *testing.T) {
	hi := ComputeOccupancy(RTX4090, KernelResources{ThreadsPerBlock: 256, RegsPerThread: 168})
	lo := ComputeOccupancy(RTX4090, KernelResources{ThreadsPerBlock: 256, RegsPerThread: 95})
	if lo.ActiveWarpsPerSM <= hi.ActiveWarpsPerSM {
		t.Fatalf("occupancy did not improve: %d -> %d active warps",
			hi.ActiveWarpsPerSM, lo.ActiveWarpsPerSM)
	}
	ratio := lo.TheoreticalPct / hi.TheoreticalPct
	if ratio < 1.5 {
		t.Fatalf("expected a large occupancy gain, got %.2fx", ratio)
	}
}

// TestByName covers lookup by name and by architecture.
func TestByName(t *testing.T) {
	d, err := ByName("RTX 4090")
	if err != nil || d != RTX4090 {
		t.Fatalf("ByName(RTX 4090) = %v, %v", d, err)
	}
	d, err = ByName("Hopper")
	if err != nil || d != H100 {
		t.Fatalf("ByName(Hopper) = %v, %v", d, err)
	}
	if _, err := ByName("TPU"); err == nil {
		t.Fatal("expected error for unknown device")
	}
}

// TestOccupancyMonotonicInThreads sanity-checks that at fixed registers,
// larger blocks never increase resident block count.
func TestOccupancyMonotonicInThreads(t *testing.T) {
	prev := 1 << 30
	for _, threads := range []int{64, 128, 256, 512, 1024} {
		occ := ComputeOccupancy(RTX4090, KernelResources{ThreadsPerBlock: threads, RegsPerThread: 40})
		if occ.ResidentBlocksPerSM > prev {
			t.Fatalf("resident blocks increased with block size at %d threads", threads)
		}
		prev = occ.ResidentBlocksPerSM
	}
}
