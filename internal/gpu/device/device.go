// Package device models the NVIDIA GPUs used in the HERO-Sign evaluation
// (paper Table VII): architectural resource limits, clocks and the
// first-order throughput quantities the simulator's timing model consumes.
//
// The catalog values are the public architecture parameters for each chip.
// Where the paper states a value explicitly (base clocks in Table VII, the
// "64 KB shared memory per SM" remark for Pascal in §IV-F, "228 KB" for
// Hopper), the paper's value is used.
package device

import "fmt"

// Device describes one GPU model.
type Device struct {
	Name      string
	Arch      string // microarchitecture name, e.g. "Ada"
	SMVersion int    // compute capability × 10, e.g. 89 for sm_89

	SMs            int // streaming multiprocessors
	CUDACoresPerSM int
	BaseClockMHz   int

	MaxThreadsPerBlock int
	MaxThreadsPerSM    int
	MaxWarpsPerSM      int
	MaxBlocksPerSM     int

	RegistersPerSM      int // 32-bit registers per SM
	RegAllocGranularity int // register allocation granularity per warp
	MaxRegsPerThread    int

	StaticSharedMemPerBlock int // classic 48 KB static limit
	MaxSharedMemPerBlock    int // opt-in dynamic limit per block
	SharedMemPerSM          int
	ConstantMemBytes        int

	WarpSize int

	// IntIssueWarpsPerCycle is the number of warp-wide INT32 instructions an
	// SM can issue per cycle. SHA-2 is a pure integer workload, so this —
	// not the FP32 core count — bounds hash throughput.
	IntIssueWarpsPerCycle float64

	// LatencyHidingWarps is the number of concurrently resident active warps
	// per SM needed to fully hide ALU latency for this architecture. Below
	// it, issue efficiency degrades (the occupancy effect the paper's Eq. 1
	// discussion builds on).
	LatencyHidingWarps float64

	// Launch overheads (microseconds). Stream launches pay
	// KernelLaunchOverheadUs per kernel on the host; an instantiated graph
	// pays GraphLaunchOverheadUs once plus GraphPerNodeOverheadUs per node
	// on the device side.
	KernelLaunchOverheadUs float64
	GraphLaunchOverheadUs  float64
	GraphPerNodeOverheadUs float64

	MemBandwidthGBs float64
	TDPWatts        float64
}

// ClockHz returns the base clock in Hz.
func (d *Device) ClockHz() float64 { return float64(d.BaseClockMHz) * 1e6 }

// CUDACores returns the total CUDA core count.
func (d *Device) CUDACores() int { return d.SMs * d.CUDACoresPerSM }

// String implements fmt.Stringer.
func (d *Device) String() string {
	return fmt.Sprintf("%s (%s, sm_%d, %d SMs @ %d MHz)",
		d.Name, d.Arch, d.SMVersion, d.SMs, d.BaseClockMHz)
}

// The evaluation platform catalog (paper Table VII). Launch-overhead values
// are the commonly measured ~4-6 µs per stream launch and sub-µs graph node
// cost; they are tuning constants of the model, not chip datasheet values.
var (
	GTX1070 = &Device{
		Name: "GTX 1070", Arch: "Pascal", SMVersion: 61,
		SMs: 15, CUDACoresPerSM: 128, BaseClockMHz: 1506,
		MaxThreadsPerBlock: 1024, MaxThreadsPerSM: 2048,
		MaxWarpsPerSM: 64, MaxBlocksPerSM: 32,
		RegistersPerSM: 65536, RegAllocGranularity: 256, MaxRegsPerThread: 255,
		StaticSharedMemPerBlock: 48 * 1024, MaxSharedMemPerBlock: 48 * 1024,
		SharedMemPerSM: 64 * 1024, ConstantMemBytes: 64 * 1024,
		WarpSize:               32,
		IntIssueWarpsPerCycle:  4, // Pascal's 128 unified cores issue INT32 at full rate
		LatencyHidingWarps:     4,
		KernelLaunchOverheadUs: 6.5, GraphLaunchOverheadUs: 8.0, GraphPerNodeOverheadUs: 0.35,
		MemBandwidthGBs: 256, TDPWatts: 150,
	}

	V100 = &Device{
		Name: "V100", Arch: "Volta", SMVersion: 70,
		SMs: 80, CUDACoresPerSM: 64, BaseClockMHz: 1230,
		MaxThreadsPerBlock: 1024, MaxThreadsPerSM: 2048,
		MaxWarpsPerSM: 64, MaxBlocksPerSM: 32,
		RegistersPerSM: 65536, RegAllocGranularity: 256, MaxRegsPerThread: 255,
		StaticSharedMemPerBlock: 48 * 1024, MaxSharedMemPerBlock: 96 * 1024,
		SharedMemPerSM: 96 * 1024, ConstantMemBytes: 64 * 1024,
		WarpSize:               32,
		IntIssueWarpsPerCycle:  2,
		LatencyHidingWarps:     3,
		KernelLaunchOverheadUs: 5.5, GraphLaunchOverheadUs: 7.0, GraphPerNodeOverheadUs: 0.3,
		MemBandwidthGBs: 900, TDPWatts: 300,
	}

	RTX2080Ti = &Device{
		Name: "RTX 2080 Ti", Arch: "Turing", SMVersion: 75,
		SMs: 68, CUDACoresPerSM: 64, BaseClockMHz: 1350,
		MaxThreadsPerBlock: 1024, MaxThreadsPerSM: 1024,
		MaxWarpsPerSM: 32, MaxBlocksPerSM: 16,
		RegistersPerSM: 65536, RegAllocGranularity: 256, MaxRegsPerThread: 255,
		StaticSharedMemPerBlock: 48 * 1024, MaxSharedMemPerBlock: 64 * 1024,
		SharedMemPerSM: 64 * 1024, ConstantMemBytes: 64 * 1024,
		WarpSize:               32,
		IntIssueWarpsPerCycle:  2,
		LatencyHidingWarps:     3,
		KernelLaunchOverheadUs: 5.0, GraphLaunchOverheadUs: 6.5, GraphPerNodeOverheadUs: 0.3,
		MemBandwidthGBs: 616, TDPWatts: 250,
	}

	A100 = &Device{
		Name: "A100", Arch: "Ampere", SMVersion: 80,
		SMs: 108, CUDACoresPerSM: 64, BaseClockMHz: 1095,
		MaxThreadsPerBlock: 1024, MaxThreadsPerSM: 2048,
		MaxWarpsPerSM: 64, MaxBlocksPerSM: 32,
		RegistersPerSM: 65536, RegAllocGranularity: 256, MaxRegsPerThread: 255,
		StaticSharedMemPerBlock: 48 * 1024, MaxSharedMemPerBlock: 163 * 1024,
		SharedMemPerSM: 164 * 1024, ConstantMemBytes: 64 * 1024,
		WarpSize:               32,
		IntIssueWarpsPerCycle:  2,
		LatencyHidingWarps:     3,
		KernelLaunchOverheadUs: 4.5, GraphLaunchOverheadUs: 6.0, GraphPerNodeOverheadUs: 0.25,
		MemBandwidthGBs: 1555, TDPWatts: 400,
	}

	RTX4090 = &Device{
		Name: "RTX 4090", Arch: "Ada", SMVersion: 89,
		SMs: 128, CUDACoresPerSM: 128, BaseClockMHz: 2235,
		MaxThreadsPerBlock: 1024, MaxThreadsPerSM: 1536,
		MaxWarpsPerSM: 48, MaxBlocksPerSM: 24,
		RegistersPerSM: 65536, RegAllocGranularity: 256, MaxRegsPerThread: 255,
		StaticSharedMemPerBlock: 48 * 1024, MaxSharedMemPerBlock: 99 * 1024,
		SharedMemPerSM: 100 * 1024, ConstantMemBytes: 64 * 1024,
		WarpSize:               32,
		IntIssueWarpsPerCycle:  2,
		LatencyHidingWarps:     3,
		KernelLaunchOverheadUs: 4.0, GraphLaunchOverheadUs: 5.0, GraphPerNodeOverheadUs: 0.2,
		MemBandwidthGBs: 1008, TDPWatts: 450,
	}

	H100 = &Device{
		Name: "H100", Arch: "Hopper", SMVersion: 90,
		SMs: 132, CUDACoresPerSM: 128, BaseClockMHz: 1035,
		MaxThreadsPerBlock: 1024, MaxThreadsPerSM: 2048,
		MaxWarpsPerSM: 64, MaxBlocksPerSM: 32,
		RegistersPerSM: 65536, RegAllocGranularity: 256, MaxRegsPerThread: 255,
		StaticSharedMemPerBlock: 48 * 1024, MaxSharedMemPerBlock: 227 * 1024,
		SharedMemPerSM: 228 * 1024, ConstantMemBytes: 64 * 1024,
		WarpSize:               32,
		IntIssueWarpsPerCycle:  2,
		LatencyHidingWarps:     3,
		KernelLaunchOverheadUs: 4.0, GraphLaunchOverheadUs: 5.0, GraphPerNodeOverheadUs: 0.2,
		MemBandwidthGBs: 2000, TDPWatts: 350,
	}
)

// All lists the catalog in the paper's Table VII order.
func All() []*Device {
	return []*Device{GTX1070, V100, RTX2080Ti, A100, RTX4090, H100}
}

// ByName resolves a device by name (exact or architecture).
func ByName(name string) (*Device, error) {
	for _, d := range All() {
		if d.Name == name || d.Arch == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("device: unknown GPU %q", name)
}

// KernelResources captures the per-kernel resource demands that determine
// occupancy.
type KernelResources struct {
	ThreadsPerBlock   int
	RegsPerThread     int
	SharedMemPerBlock int  // bytes, physical (including any padding)
	DynamicShared     bool // true when launched with opt-in dynamic shared memory
}

// Occupancy is the result of the occupancy calculation (paper Eq. 1,
// extended with the shared-memory and block-slot limits the CUDA occupancy
// calculator applies).
type Occupancy struct {
	ResidentBlocksPerSM int
	ActiveWarpsPerSM    int
	TheoreticalPct      float64 // active warps / max warps × 100
	Limiter             string  // which resource bounds residency
}

// ComputeOccupancy applies the device resource limits to a kernel's demands.
func ComputeOccupancy(d *Device, r KernelResources) Occupancy {
	warpsPerBlock := (r.ThreadsPerBlock + d.WarpSize - 1) / d.WarpSize
	if warpsPerBlock == 0 {
		warpsPerBlock = 1
	}

	limit := func(x int) int {
		if x < 0 {
			return 0
		}
		return x
	}

	byThreads := d.MaxThreadsPerSM / (warpsPerBlock * d.WarpSize)
	byWarps := d.MaxWarpsPerSM / warpsPerBlock
	byBlocks := d.MaxBlocksPerSM

	// Registers are allocated per warp at the allocation granularity.
	regsPerWarp := roundUp(r.RegsPerThread*d.WarpSize, d.RegAllocGranularity)
	byRegs := byBlocks
	if r.RegsPerThread > 0 {
		regsPerBlock := regsPerWarp * warpsPerBlock
		byRegs = d.RegistersPerSM / regsPerBlock
	}

	bySmem := byBlocks
	if r.SharedMemPerBlock > 0 {
		capPerBlock := d.StaticSharedMemPerBlock
		if r.DynamicShared {
			capPerBlock = d.MaxSharedMemPerBlock
		}
		if r.SharedMemPerBlock > capPerBlock {
			bySmem = 0
		} else {
			bySmem = d.SharedMemPerSM / r.SharedMemPerBlock
		}
	}

	resident := min4(limit(byThreads), limit(byWarps), limit(byRegs), limit(bySmem))
	if resident > byBlocks {
		resident = byBlocks
	}

	limiter := "blocks"
	switch resident {
	case byThreads:
		limiter = "threads"
	case byWarps:
		limiter = "warps"
	case byRegs:
		limiter = "registers"
	case bySmem:
		limiter = "shared memory"
	}

	active := resident * warpsPerBlock
	return Occupancy{
		ResidentBlocksPerSM: resident,
		ActiveWarpsPerSM:    active,
		TheoreticalPct:      100 * float64(active) / float64(d.MaxWarpsPerSM),
		Limiter:             limiter,
	}
}

func roundUp(x, to int) int { return (x + to - 1) / to * to }

func min4(a, b, c, d int) int {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	if d < m {
		m = d
	}
	return m
}
