// Package shmem models CUDA shared memory at byte granularity with the
// 32-bank × 4-byte organization that causes bank conflicts, and implements
// the generalized padding strategy of HERO-Sign §III-E:
//
//	Eq. 2:  128     = B_n × 4 × T_h   (16- and 32-byte node accesses)
//	Eq. 3:  128 × R = B_n × 4 × T_h   (24-byte node accesses, R = 3)
//
// A padding bank (4 bytes) is inserted after every RowBytes of logical data,
// skewing subsequent addresses across banks. Kernels read and write through
// logical offsets; the package translates to physical addresses, stores the
// actual bytes (the simulator is functional, not just a counter), and
// counts transactions and conflict wavefronts per warp the way Nsight
// reports shared_ld/st_bank_conflict.
package shmem

import "fmt"

// Banks is the number of shared-memory banks on all modeled architectures.
const Banks = 32

// BankBytes is the width of one bank word.
const BankBytes = 4

// TransactionBytes is the size of one shared-memory transaction row.
const TransactionBytes = 128

// Padding describes the bank-padding layout.
type Padding struct {
	// RowBytes is the logical byte count after which one padding bank is
	// inserted. Zero disables padding.
	RowBytes int
}

// None is the unpadded layout.
var None = Padding{}

// ForNodeBytes returns the paper's padding rule for a per-thread access
// width of nodeBytes (16, 24 or 32; other multiples of 4 are handled by the
// same generalized formula).
//
// For widths dividing 128 (Eq. 2) the row is one 128-byte transaction.
// Otherwise (Eq. 3) the row extends to R contiguous 128-byte rows where
// R is the smallest integer making 128·R divisible by the access width
// (R = 3 for 24-byte accesses).
func ForNodeBytes(nodeBytes int) Padding {
	if nodeBytes <= 0 || nodeBytes%BankBytes != 0 {
		panic(fmt.Sprintf("shmem: unsupported node width %d", nodeBytes))
	}
	row := TransactionBytes
	for row%nodeBytes != 0 {
		row += TransactionBytes
	}
	return Padding{RowBytes: row}
}

// Stats accumulates shared-memory traffic for one kernel block.
type Stats struct {
	LoadTransactions  int64
	StoreTransactions int64
	LoadConflicts     int64 // extra serialized wavefronts on loads
	StoreConflicts    int64 // extra serialized wavefronts on stores
}

// Add merges other into s.
func (s *Stats) Add(other *Stats) {
	s.LoadTransactions += other.LoadTransactions
	s.StoreTransactions += other.StoreTransactions
	s.LoadConflicts += other.LoadConflicts
	s.StoreConflicts += other.StoreConflicts
}

// access is one pending per-thread access awaiting warp settlement.
type access struct {
	tid      int
	physOff  int
	numBytes int
	store    bool
}

// Memory is a shared-memory allocation with a padding layout.
type Memory struct {
	pad     Padding
	logical int
	data    []byte
	stats   Stats
	pending []access
}

// New allocates logicalBytes of shared memory under the given layout.
func New(logicalBytes int, pad Padding) *Memory {
	return &Memory{
		pad:     pad,
		logical: logicalBytes,
		data:    make([]byte, physicalSize(logicalBytes, pad)),
	}
}

func physicalSize(logical int, pad Padding) int {
	if pad.RowBytes == 0 {
		return logical
	}
	rows := (logical + pad.RowBytes - 1) / pad.RowBytes
	return logical + rows*BankBytes
}

// PhysicalSize returns the footprint including padding banks — the number
// that counts against the device's shared-memory-per-block limit.
func (m *Memory) PhysicalSize() int { return len(m.data) }

// LogicalSize returns the unpadded data size.
func (m *Memory) LogicalSize() int { return m.logical }

// Stats returns the accumulated traffic counters.
func (m *Memory) Stats() *Stats { return &m.stats }

// physical maps a logical offset to its padded physical offset.
func (m *Memory) physical(logical int) int {
	if m.pad.RowBytes == 0 {
		return logical
	}
	return logical + (logical/m.pad.RowBytes)*BankBytes
}

// Read copies numBytes at the logical offset into out on behalf of thread
// tid. The access is recorded for warp-level conflict accounting at the
// next Settle.
func (m *Memory) Read(tid, logicalOff int, out []byte) {
	off := m.physical(logicalOff)
	copy(out, m.data[off:off+len(out)])
	m.pending = append(m.pending, access{tid: tid, physOff: off, numBytes: len(out)})
}

// Write copies in to the logical offset on behalf of thread tid.
func (m *Memory) Write(tid, logicalOff int, in []byte) {
	off := m.physical(logicalOff)
	copy(m.data[off:off+len(in)], in)
	m.pending = append(m.pending, access{tid: tid, physOff: off, numBytes: len(in), store: true})
}

// Peek reads without recording traffic (host-side/debug inspection).
func (m *Memory) Peek(logicalOff int, out []byte) {
	off := m.physical(logicalOff)
	copy(out, m.data[off:off+len(out)])
}

// Settle groups all pending accesses by warp and instruction step, splits
// them into 128-byte wavefront groups and counts transactions and bank
// conflicts. Kernels call it at each barrier (the simulator's Sync does it
// automatically).
//
// The model: within one warp-instruction, the LSU services requests in
// phases of up to 128 bytes (32 bank words). All words of one phase are
// issued together; if two lanes need *different* words that live in the
// same bank, the phase replays — one extra wavefront per additional
// distinct word in the most-contended bank (same-word access broadcasts).
func (m *Memory) Settle() {
	if len(m.pending) == 0 {
		return
	}
	// Group by (warp, store). Accesses arrive in tid order per logical
	// instruction because kernels iterate lanes in order; one Settle per
	// phase means each (warp, op) group corresponds to the per-lane accesses
	// of that phase. Within a group, lanes execute the same instruction
	// sequence, so the i-th access of each lane forms one warp instruction.
	type key struct {
		warp  int
		store bool
	}
	groups := make(map[key][][]access)
	for _, a := range m.pending {
		k := key{warp: a.tid / 32, store: a.store}
		lane := a.tid % 32
		g := groups[k]
		// Find the first instruction slot where this lane has no access yet.
		placed := false
		for i := range g {
			found := false
			for _, prev := range g[i] {
				if prev.tid%32 == lane {
					found = true
					break
				}
			}
			if !found {
				g[i] = append(g[i], a)
				placed = true
				break
			}
		}
		if !placed {
			groups[k] = append(g, []access{a})
		} else {
			groups[k] = g
		}
	}
	for k, instrs := range groups {
		for _, lanes := range instrs {
			trans, conflicts := warpConflicts(lanes)
			if k.store {
				m.stats.StoreTransactions += int64(trans)
				m.stats.StoreConflicts += int64(conflicts)
			} else {
				m.stats.LoadTransactions += int64(trans)
				m.stats.LoadConflicts += int64(conflicts)
			}
		}
	}
	m.pending = m.pending[:0]
}

// warpConflicts computes (wavefronts, extra conflict wavefronts) for the
// per-lane accesses of one warp instruction.
func warpConflicts(lanes []access) (int, int) {
	// Expand every lane's access into 4-byte word addresses, then process
	// in phases of 32 words (128 bytes of request traffic per phase, the
	// hardware wavefront granularity for vectorized accesses).
	var words []int
	for _, a := range lanes {
		first := a.physOff / BankBytes
		last := (a.physOff + a.numBytes - 1) / BankBytes
		for w := first; w <= last; w++ {
			words = append(words, w)
		}
	}
	trans, conflicts := 0, 0
	for start := 0; start < len(words); start += Banks {
		end := start + Banks
		if end > len(words) {
			end = len(words)
		}
		phase := words[start:end]
		perBank := make(map[int]map[int]struct{})
		for _, w := range phase {
			b := w % Banks
			if perBank[b] == nil {
				perBank[b] = make(map[int]struct{})
			}
			perBank[b][w] = struct{}{}
		}
		wavefronts := 1
		for _, set := range perBank {
			if len(set) > wavefronts {
				wavefronts = len(set)
			}
		}
		trans += wavefronts
		conflicts += wavefronts - 1
	}
	return trans, conflicts
}
