package shmem

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestPaddingRuleWidths checks Eq. 2 / Eq. 3 row sizes: 16- and 32-byte
// accesses pad every 128 bytes; 24-byte accesses pad every 384 bytes (R=3).
func TestPaddingRuleWidths(t *testing.T) {
	cases := map[int]int{16: 128, 32: 128, 24: 384, 8: 128, 4: 128, 12: 384}
	for width, row := range cases {
		if got := ForNodeBytes(width).RowBytes; got != row {
			t.Errorf("ForNodeBytes(%d).RowBytes = %d, want %d", width, got, row)
		}
	}
}

// TestForNodeBytesPanicsOnBadWidth checks input validation.
func TestForNodeBytesPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for width 10")
		}
	}()
	ForNodeBytes(10)
}

// TestPhysicalSize verifies one padding bank per row.
func TestPhysicalSize(t *testing.T) {
	m := New(1024, Padding{RowBytes: 128})
	if got := m.PhysicalSize(); got != 1024+8*4 {
		t.Fatalf("physical = %d, want %d", got, 1024+32)
	}
	if m.LogicalSize() != 1024 {
		t.Fatalf("logical = %d", m.LogicalSize())
	}
	if got := New(1024, None).PhysicalSize(); got != 1024 {
		t.Fatalf("unpadded physical = %d, want 1024", got)
	}
}

// TestReadWriteRoundTrip checks functional storage under both layouts,
// including across padding-row boundaries.
func TestReadWriteRoundTrip(t *testing.T) {
	for _, pad := range []Padding{None, {RowBytes: 128}, {RowBytes: 384}} {
		m := New(4096, pad)
		src := make([]byte, 24)
		for i := range src {
			src[i] = byte(i + 1)
		}
		for _, off := range []int{0, 8, 120, 128, 250, 383, 384, 1000, 4072} {
			m.Write(0, off, src)
			got := make([]byte, len(src))
			m.Read(0, off, got)
			if !bytes.Equal(got, src) {
				t.Fatalf("pad=%v off=%d roundtrip mismatch", pad, off)
			}
		}
		m.Settle()
	}
}

// TestPaddingIsolation writes adjacent nodes across a padding boundary and
// verifies they do not overlap physically.
func TestPaddingIsolation(t *testing.T) {
	m := New(512, Padding{RowBytes: 128})
	a := bytes.Repeat([]byte{0xAA}, 16)
	b := bytes.Repeat([]byte{0xBB}, 16)
	m.Write(0, 112, a) // last node of row 0
	m.Write(1, 128, b) // first node of row 1 (physically offset by 4)
	got := make([]byte, 16)
	m.Read(0, 112, got)
	if !bytes.Equal(got, a) {
		t.Fatal("row-0 node corrupted")
	}
	m.Read(1, 128, got)
	if !bytes.Equal(got, b) {
		t.Fatal("row-1 node corrupted")
	}
}

// TestBroadcastNoConflict: all 32 lanes reading the same word is a
// broadcast, not a conflict.
func TestBroadcastNoConflict(t *testing.T) {
	m := New(4096, None)
	out := make([]byte, 4)
	for lane := 0; lane < 32; lane++ {
		m.Read(lane, 0, out)
	}
	m.Settle()
	st := m.Stats()
	if st.LoadConflicts != 0 {
		t.Fatalf("broadcast produced %d conflicts", st.LoadConflicts)
	}
	if st.LoadTransactions != 1 {
		t.Fatalf("broadcast took %d transactions, want 1", st.LoadTransactions)
	}
}

// TestUnitStrideNoConflict: 32 lanes reading consecutive words hit distinct
// banks.
func TestUnitStrideNoConflict(t *testing.T) {
	m := New(4096, None)
	out := make([]byte, 4)
	for lane := 0; lane < 32; lane++ {
		m.Read(lane, lane*4, out)
	}
	m.Settle()
	if c := m.Stats().LoadConflicts; c != 0 {
		t.Fatalf("unit stride produced %d conflicts", c)
	}
}

// TestStride32Conflict: 32 lanes reading words 32 apart all map to bank 0 —
// the classic worst case, 31 extra wavefronts.
func TestStride32Conflict(t *testing.T) {
	m := New(32*32*4+64, None)
	out := make([]byte, 4)
	for lane := 0; lane < 32; lane++ {
		m.Read(lane, lane*32*4, out)
	}
	m.Settle()
	if c := m.Stats().LoadConflicts; c != 31 {
		t.Fatalf("stride-32 conflicts = %d, want 31", c)
	}
}

// TestContiguousWarpAccessConflictFree: each lane loading two adjacent
// 16-byte children at contiguous 32-byte offsets is conflict-free (the
// bottom level of a single tree) — the model must not invent conflicts.
func TestContiguousWarpAccessConflictFree(t *testing.T) {
	m := New(64*1024, None)
	child := make([]byte, 32)
	for lane := 0; lane < 32; lane++ {
		m.Read(lane, lane*32, child)
	}
	m.Settle()
	if c := m.Stats().LoadConflicts; c != 0 {
		t.Fatalf("contiguous access produced %d conflicts", c)
	}
}

// TestTreeReductionConflictsEliminated models the paper's Table VI scenario.
// At the upper levels of the multi-tree FORS reduction, the lanes of a warp
// work on *different trees*, whose node arrays sit a power-of-two stride
// apart in shared memory (t·n = 1024 bytes for 128f). Those bases all map
// to the same bank, serializing the warp; the Eq. 2 padding skews them.
func TestTreeReductionConflictsEliminated(t *testing.T) {
	const treeStride = 1024 // t*n for 128f: 64 leaves x 16 bytes
	run := func(pad Padding) *Stats {
		m := New(64*1024, pad)
		child := make([]byte, 32)
		parent := make([]byte, 16)
		// Upper level: one lane per tree, each reading its tree's two
		// children at the tree base and storing the parent there.
		for lane := 0; lane < 32; lane++ {
			m.Read(lane, lane*treeStride, child)
		}
		for lane := 0; lane < 32; lane++ {
			m.Write(lane, lane*treeStride+512, parent)
		}
		m.Settle()
		return m.Stats()
	}
	base := run(None)
	padded := run(ForNodeBytes(16))
	if base.LoadConflicts == 0 || base.StoreConflicts == 0 {
		t.Fatalf("expected unpadded conflicts in tree-strided pattern, got load=%d store=%d",
			base.LoadConflicts, base.StoreConflicts)
	}
	if padded.LoadConflicts >= base.LoadConflicts/4 {
		t.Fatalf("padding barely reduced load conflicts: %d -> %d",
			base.LoadConflicts, padded.LoadConflicts)
	}
	if padded.StoreConflicts >= base.StoreConflicts/4 {
		t.Fatalf("padding barely reduced store conflicts: %d -> %d",
			base.StoreConflicts, padded.StoreConflicts)
	}
}

// Test24ByteConflictReduction checks the Eq. 3 extension on the 192f
// geometry: tree stride t·n = 256×24 = 6144 bytes; 384-byte-row padding
// (paper §III-E2) reduces the conflicts to at most the predicted ~2-way
// residual.
func Test24ByteConflictReduction(t *testing.T) {
	const treeStride = 6144
	run := func(pad Padding) *Stats {
		m := New(7*32*1024, pad)
		node := make([]byte, 48) // two 24-byte children
		for lane := 0; lane < 32; lane++ {
			m.Read(lane, lane*treeStride, node)
		}
		m.Settle()
		return m.Stats()
	}
	base := run(None)
	padded := run(ForNodeBytes(24))
	if base.LoadConflicts == 0 {
		t.Fatal("expected unpadded conflicts in 24B tree-strided pattern")
	}
	// The paper predicts a residual ~2-way conflict for 24-byte accesses
	// (§III-E2): padding must at least halve the conflicts.
	if padded.LoadConflicts > base.LoadConflicts/2 {
		t.Fatalf("24B padding did not help: %d -> %d", base.LoadConflicts, padded.LoadConflicts)
	}
}

// TestSettleClearsPending ensures Settle is idempotent.
func TestSettleClearsPending(t *testing.T) {
	m := New(1024, None)
	out := make([]byte, 4)
	m.Read(0, 0, out)
	m.Settle()
	first := m.Stats().LoadTransactions
	m.Settle()
	if m.Stats().LoadTransactions != first {
		t.Fatal("second Settle recounted accesses")
	}
}

// TestQuickRoundTrip is a property test: for random offsets and node sizes,
// data written is read back identically under every layout.
func TestQuickRoundTrip(t *testing.T) {
	layouts := []Padding{None, {RowBytes: 128}, {RowBytes: 384}}
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 64 {
			data = data[:64]
		}
		o := int(off) % 3000
		for _, pad := range layouts {
			m := New(4096, pad)
			m.Write(0, o, data)
			got := make([]byte, len(data))
			m.Read(0, o, got)
			if !bytes.Equal(got, data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
