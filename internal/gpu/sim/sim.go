// Package sim is the SIMT kernel simulator at the heart of the reproduction.
//
// A kernel launch executes a *block program* once per thread block (the
// paper assigns one block per message). Block programs do real work — they
// compute actual SPHINCS+ bytes through internal/spx primitives — while the
// engine records the quantities a GPU's performance is determined by at
// first order:
//
//   - per-thread SHA-256 compression counts, aggregated warp-synchronously
//     (a warp advances at the pace of its slowest lane);
//   - shared-memory transactions and bank-conflict wavefronts, from the
//     actual byte addresses touched (internal/gpu/shmem);
//   - barrier counts, global/constant-memory traffic.
//
// Timing is then derived analytically:
//
//	occupancy        per device.ComputeOccupancy (paper Eq. 1 + smem/block caps)
//	issue efficiency eff = aw / (aw + LatencyHidingWarps), aw = concurrently
//	                 resident *active* warps per SM — low-occupancy or
//	                 partially-idle phases issue at reduced efficiency
//	compute cycles   Σ_phase warpWork / (usedSMs × IntIssue × eff_phase)
//	shmem cycles     wavefronts / (usedSMs × 1 per cycle)
//	sync cycles      barriers × SyncCycles / usedSMs
//	duration         max(computeTime, dramTime) (+ graph/stream overhead is
//	                 applied by the scheduler, not here)
//
// The model is deterministic: no wall-clock measurement feeds any reported
// metric.
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"herosign/internal/gpu/device"
	"herosign/internal/gpu/shmem"
	"herosign/internal/spx/hashes"
)

// SyncCycles is the modeled cost of one __syncthreads barrier in SM cycles.
const SyncCycles = 32.0

// Launch describes a kernel launch.
type Launch struct {
	Name            string
	Blocks          int
	ThreadsPerBlock int
	RegsPerThread   int

	// SharedLogicalBytes and SharedPadding size the per-block shared
	// memory; the engine allocates a shmem.Memory per block and charges the
	// physical (padded) footprint against the device limits.
	SharedLogicalBytes int
	SharedPadding      shmem.Padding
	DynamicShared      bool

	// CyclesPerCompress converts one SHA-256 compression into warp issue
	// cycles; it comes from the PTX/native schedule (internal/ptx).
	CyclesPerCompress float64

	// Body runs once per simulated block.
	Body func(b *Block)
}

// Block is the execution context handed to a block program.
type Block struct {
	Idx     int
	Threads int
	Shared  *shmem.Memory

	threadCounters []hashes.Counters
	lastCompress   []int64
	phases         []phase
	syncs          int64
	globalRead     int64
	globalWrite    int64
	constRead      int64
}

// phase is one warp-synchronous region created by a For call.
type phase struct {
	activeThreads int
	warpCompress  int64 // Σ over warps of max-lane compression delta
}

// ThreadCounter returns the hash counter of thread tid; block programs
// attach it to a hashes.Ctx (via Ctx.Clone) so every hash call is charged
// to the right lane.
func (b *Block) ThreadCounter(tid int) *hashes.Counters {
	return &b.threadCounters[tid]
}

// For runs fn for tid in [0, active) as one warp-synchronous phase and
// records the per-warp work performed inside. Threads map to warps in the
// CUDA way: warp w owns lanes [32w, 32w+32).
func (b *Block) For(active int, fn func(tid int)) {
	if active > b.Threads {
		panic(fmt.Sprintf("sim: For(%d) exceeds block size %d", active, b.Threads))
	}
	for tid := 0; tid < active; tid++ {
		fn(tid)
	}
	var warpWork int64
	for w := 0; w*32 < active; w++ {
		var maxDelta int64
		hi := (w + 1) * 32
		if hi > active {
			hi = active
		}
		for tid := w * 32; tid < hi; tid++ {
			delta := b.threadCounters[tid].Compress256 - b.lastCompress[tid]
			b.lastCompress[tid] = b.threadCounters[tid].Compress256
			if delta > maxDelta {
				maxDelta = delta
			}
		}
		warpWork += maxDelta
	}
	b.phases = append(b.phases, phase{activeThreads: active, warpCompress: warpWork})
}

// Sync models __syncthreads: settles pending shared-memory warps and counts
// the barrier.
func (b *Block) Sync() {
	if b.Shared != nil {
		b.Shared.Settle()
	}
	b.syncs++
}

// GlobalRead charges n bytes of device-memory read traffic.
func (b *Block) GlobalRead(n int) { b.globalRead += int64(n) }

// GlobalWrite charges n bytes of device-memory write traffic.
func (b *Block) GlobalWrite(n int) { b.globalWrite += int64(n) }

// ConstRead charges n bytes of constant-memory traffic (broadcast;
// effectively on-chip once cached, so it contributes no DRAM time but is
// reported for the HybridME analysis).
func (b *Block) ConstRead(n int) { b.constRead += int64(n) }

// Stats is the aggregated result of one kernel launch.
type Stats struct {
	Name            string
	Blocks          int
	ThreadsPerBlock int
	RegsPerThread   int
	SharedMemBytes  int // physical, per block

	Occ device.Occupancy

	Compress    int64 // total SHA-256 compressions (all lanes)
	WarpCycles  float64
	Syncs       int64
	Shmem       shmem.Stats
	GlobalRead  int64
	GlobalWrite int64
	ConstRead   int64

	// Derived timing and Nsight-style metrics.
	DurationUs           float64
	ComputeThroughputPct float64
	MemoryThroughputPct  float64
	AchievedOccupancyPct float64 // time-weighted active warps / max warps
	SampledBlocks        int     // functional blocks executed (== Blocks when unsampled)
}

// phaseAgg accumulates one phase index across blocks.
type phaseAgg struct {
	activeThreads int
	warpCompress  int64
	blocks        int
}

// Engine runs kernels against a device model.
type Engine struct {
	Dev *device.Device

	// SampleBlocks, when > 0, limits functional execution to that many
	// blocks and scales counters by Blocks/Sampled. Valid only when every
	// block performs statistically identical work (one message per block,
	// which holds for all kernels here). Zero executes every block.
	SampleBlocks int

	// Workers bounds the goroutines used for functional execution.
	// Zero means GOMAXPROCS.
	Workers int
}

// New returns an engine for the device with full (unsampled) execution.
func New(d *device.Device) *Engine { return &Engine{Dev: d} }

// Run executes the launch and returns aggregated stats.
func (e *Engine) Run(l *Launch) (*Stats, error) {
	d := e.Dev
	if l.ThreadsPerBlock <= 0 || l.ThreadsPerBlock > d.MaxThreadsPerBlock {
		return nil, fmt.Errorf("sim: %s: threads per block %d out of range", l.Name, l.ThreadsPerBlock)
	}
	if l.Blocks <= 0 {
		return nil, fmt.Errorf("sim: %s: no blocks", l.Name)
	}
	physShared := 0
	if l.SharedLogicalBytes > 0 {
		physShared = shmem.New(l.SharedLogicalBytes, l.SharedPadding).PhysicalSize()
	}
	res := device.KernelResources{
		ThreadsPerBlock:   l.ThreadsPerBlock,
		RegsPerThread:     l.RegsPerThread,
		SharedMemPerBlock: physShared,
		DynamicShared:     l.DynamicShared,
	}
	occ := device.ComputeOccupancy(d, res)
	if occ.ResidentBlocksPerSM == 0 {
		return nil, fmt.Errorf("sim: %s: kernel does not fit on %s (limiter: %s)", l.Name, d.Name, occ.Limiter)
	}

	execBlocks := l.Blocks
	if e.SampleBlocks > 0 && execBlocks > e.SampleBlocks {
		execBlocks = e.SampleBlocks
	}
	scale := float64(l.Blocks) / float64(execBlocks)

	blocks := make([]*Block, execBlocks)
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > execBlocks {
		workers = execBlocks
	}
	var wg sync.WaitGroup
	next := make(chan int, execBlocks)
	for i := 0; i < execBlocks; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				b := &Block{
					Idx:            i,
					Threads:        l.ThreadsPerBlock,
					threadCounters: make([]hashes.Counters, l.ThreadsPerBlock),
					lastCompress:   make([]int64, l.ThreadsPerBlock),
				}
				if l.SharedLogicalBytes > 0 {
					b.Shared = shmem.New(l.SharedLogicalBytes, l.SharedPadding)
				}
				l.Body(b)
				if b.Shared != nil {
					b.Shared.Settle()
				}
				blocks[i] = b
			}
		}()
	}
	wg.Wait()

	// Aggregate.
	st := &Stats{
		Name:            l.Name,
		Blocks:          l.Blocks,
		ThreadsPerBlock: l.ThreadsPerBlock,
		RegsPerThread:   l.RegsPerThread,
		SharedMemBytes:  physShared,
		Occ:             occ,
		SampledBlocks:   execBlocks,
	}
	var aggs []phaseAgg
	for _, b := range blocks {
		for pi, p := range b.phases {
			if pi >= len(aggs) {
				aggs = append(aggs, phaseAgg{activeThreads: p.activeThreads})
			}
			aggs[pi].warpCompress += p.warpCompress
			aggs[pi].blocks++
			if p.activeThreads > aggs[pi].activeThreads {
				aggs[pi].activeThreads = p.activeThreads
			}
		}
		st.Syncs += b.syncs
		st.GlobalRead += b.globalRead
		st.GlobalWrite += b.globalWrite
		st.ConstRead += b.constRead
		if b.Shared != nil {
			st.Shmem.Add(b.Shared.Stats())
		}
		for t := range b.threadCounters {
			st.Compress += b.threadCounters[t].Compress256
		}
	}
	// Scale sampled counters up to the full grid.
	st.Syncs = int64(float64(st.Syncs) * scale)
	st.GlobalRead = int64(float64(st.GlobalRead) * scale)
	st.GlobalWrite = int64(float64(st.GlobalWrite) * scale)
	st.ConstRead = int64(float64(st.ConstRead) * scale)
	st.Compress = int64(float64(st.Compress) * scale)
	st.Shmem.LoadTransactions = int64(float64(st.Shmem.LoadTransactions) * scale)
	st.Shmem.StoreTransactions = int64(float64(st.Shmem.StoreTransactions) * scale)
	st.Shmem.LoadConflicts = int64(float64(st.Shmem.LoadConflicts) * scale)
	st.Shmem.StoreConflicts = int64(float64(st.Shmem.StoreConflicts) * scale)

	e.applyTiming(l, st, aggs, scale)
	return st, nil
}

// MustRun is Run that panics on configuration errors; used by benches.
func (e *Engine) MustRun(l *Launch) *Stats {
	st, err := e.Run(l)
	if err != nil {
		panic(err)
	}
	return st
}

// applyTiming derives the modeled duration and Nsight-style metrics.
func (e *Engine) applyTiming(l *Launch, st *Stats, aggs []phaseAgg, scale float64) {
	d := e.Dev
	usedSMs := float64(min(l.Blocks, d.SMs))
	blocksPerSM := float64(l.Blocks) / float64(d.SMs)
	if blocksPerSM < 1 {
		blocksPerSM = 1
	}
	if r := float64(st.Occ.ResidentBlocksPerSM); blocksPerSM > r {
		blocksPerSM = r
	}

	cpc := l.CyclesPerCompress
	if cpc <= 0 {
		cpc = 300 // conservative default; real schedules come from internal/ptx
	}

	var computeCycles float64
	var warpCycleSum float64
	var occWeighted float64
	for _, a := range aggs {
		activeWarps := float64((a.activeThreads + 31) / 32)
		aw := blocksPerSM * activeWarps
		eff := aw / (aw + d.LatencyHidingWarps)
		work := float64(a.warpCompress) * scale * cpc
		cycles := work / (usedSMs * d.IntIssueWarpsPerCycle * eff)
		computeCycles += cycles
		warpCycleSum += work
		occWeighted += cycles * aw
	}
	st.WarpCycles = warpCycleSum

	// Shared-memory wavefronts: one per cycle per SM LSU.
	wavefronts := float64(st.Shmem.LoadTransactions + st.Shmem.StoreTransactions)
	shmemCycles := wavefronts / usedSMs

	syncCycles := float64(st.Syncs) * SyncCycles / usedSMs

	totalComputeCycles := computeCycles + shmemCycles + syncCycles
	computeTime := totalComputeCycles / d.ClockHz() // seconds

	dramBytes := float64(st.GlobalRead + st.GlobalWrite)
	dramTime := dramBytes / (d.MemBandwidthGBs * 1e9)

	dur := computeTime
	if dramTime > dur {
		dur = dramTime
	}
	st.DurationUs = dur * 1e6

	if dur > 0 {
		durationCycles := dur * d.ClockHz()
		issued := warpCycleSum + wavefronts
		available := usedSMs * d.IntIssueWarpsPerCycle * durationCycles
		st.ComputeThroughputPct = 100 * issued / available

		dramPct := 100 * dramBytes / (d.MemBandwidthGBs * 1e9 * dur)
		shPeak := usedSMs * 128 * d.ClockHz() // bytes/s of shared-memory bandwidth
		shPct := 100 * wavefronts * 128 / (shPeak * dur)
		st.MemoryThroughputPct = dramPct
		if shPct > st.MemoryThroughputPct {
			st.MemoryThroughputPct = shPct
		}
	}
	if computeCycles > 0 {
		st.AchievedOccupancyPct = 100 * (occWeighted / computeCycles) / float64(d.MaxWarpsPerSM)
	}
	if st.AchievedOccupancyPct > st.Occ.TheoreticalPct {
		st.AchievedOccupancyPct = st.Occ.TheoreticalPct
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
