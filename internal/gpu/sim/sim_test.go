package sim

import (
	"testing"

	"herosign/internal/gpu/device"
	"herosign/internal/gpu/shmem"
	"herosign/internal/spx/address"
	"herosign/internal/spx/hashes"
	"herosign/internal/spx/params"
)

// hashKernel builds a launch whose every thread performs `perThread` F
// evaluations, for engine-model tests.
func hashKernel(name string, blocks, threads, active, perThread int) *Launch {
	p := params.SPHINCSPlus128f
	seed := make([]byte, p.N)
	base := hashes.NewCtx(p, seed, seed)
	return &Launch{
		Name: name, Blocks: blocks, ThreadsPerBlock: threads,
		RegsPerThread: 48, CyclesPerCompress: 300,
		Body: func(b *Block) {
			buf := make([]byte, p.N)
			var adrs address.Address
			b.For(active, func(tid int) {
				ctx := base.Clone(b.ThreadCounter(tid))
				for i := 0; i < perThread; i++ {
					ctx.F(buf, buf, &adrs)
				}
			})
			b.Sync()
		},
	}
}

// TestRunCountsCompressions verifies exact compression accounting: each F
// call over n=16 bytes hashes one seed block (cached) + 22B address + 16B
// message = 38 bytes past the midstate, i.e. exactly 1 compression.
func TestRunCountsCompressions(t *testing.T) {
	e := New(device.RTX4090)
	st, err := e.Run(hashKernel("k", 4, 128, 128, 10))
	if err != nil {
		t.Fatal(err)
	}
	want := int64(4 * 128 * 10)
	if st.Compress != want {
		t.Fatalf("Compress = %d, want %d", st.Compress, want)
	}
	if st.Syncs != 4 {
		t.Fatalf("Syncs = %d, want 4", st.Syncs)
	}
	if st.DurationUs <= 0 {
		t.Fatal("non-positive duration")
	}
}

// TestPartialWarpChargesFullWarp checks warp-granular accounting: 16 active
// threads still cost one warp of issue work, so duration must not halve
// versus 32 active threads.
func TestPartialWarpChargesFullWarp(t *testing.T) {
	e := New(device.RTX4090)
	full, err := e.Run(hashKernel("full", 1, 32, 32, 100))
	if err != nil {
		t.Fatal(err)
	}
	half, err := e.Run(hashKernel("half", 1, 32, 16, 100))
	if err != nil {
		t.Fatal(err)
	}
	if half.WarpCycles != full.WarpCycles {
		t.Fatalf("warp cycles differ: half=%v full=%v (lockstep violated)",
			half.WarpCycles, full.WarpCycles)
	}
}

// TestMoreActiveWarpsFaster checks the latency-hiding model: the same total
// work spread across more active warps per block completes sooner.
func TestMoreActiveWarpsFaster(t *testing.T) {
	e := New(device.RTX4090)
	// 2 warps active per block vs 22: same per-thread work, so the wide
	// kernel does 11x the work but must be far less than 11x slower.
	narrow, err := e.Run(hashKernel("narrow", 128, 1024, 64, 64))
	if err != nil {
		t.Fatal(err)
	}
	wide, err := e.Run(hashKernel("wide", 128, 1024, 704, 64))
	if err != nil {
		t.Fatal(err)
	}
	workRatio := float64(wide.Compress) / float64(narrow.Compress)
	timeRatio := wide.DurationUs / narrow.DurationUs
	if timeRatio > workRatio*0.6 {
		t.Fatalf("latency hiding too weak: work x%.1f but time x%.1f", workRatio, timeRatio)
	}
}

// TestSamplingScalesCounters runs the same kernel sampled and unsampled and
// checks counters agree after scaling.
func TestSamplingScalesCounters(t *testing.T) {
	full := New(device.RTX4090)
	sampled := &Engine{Dev: device.RTX4090, SampleBlocks: 8}
	k := hashKernel("k", 64, 128, 128, 20)
	a, err := full.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sampled.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	if b.SampledBlocks != 8 {
		t.Fatalf("SampledBlocks = %d", b.SampledBlocks)
	}
	if a.Compress != b.Compress {
		t.Fatalf("scaled compress mismatch: %d vs %d", a.Compress, b.Compress)
	}
	relDiff := (a.DurationUs - b.DurationUs) / a.DurationUs
	if relDiff > 0.01 || relDiff < -0.01 {
		t.Fatalf("scaled duration mismatch: %v vs %v", a.DurationUs, b.DurationUs)
	}
}

// TestRunRejectsOversizedKernels checks config validation.
func TestRunRejectsOversizedKernels(t *testing.T) {
	e := New(device.RTX4090)
	if _, err := e.Run(&Launch{Name: "bad", Blocks: 1, ThreadsPerBlock: 2048, Body: func(*Block) {}}); err == nil {
		t.Fatal("2048-thread block accepted")
	}
	if _, err := e.Run(&Launch{
		Name: "regs", Blocks: 1, ThreadsPerBlock: 1024, RegsPerThread: 128,
		CyclesPerCompress: 300, Body: func(*Block) {},
	}); err == nil {
		t.Fatal("register-infeasible kernel accepted")
	}
	if _, err := e.Run(&Launch{Name: "none", Blocks: 0, ThreadsPerBlock: 32, Body: func(*Block) {}}); err == nil {
		t.Fatal("zero-block launch accepted")
	}
}

// TestSharedMemoryFlowsIntoStats runs a kernel with shared-memory traffic
// and checks the transactions and padding-dependent footprint are reported.
func TestSharedMemoryFlowsIntoStats(t *testing.T) {
	e := New(device.RTX4090)
	mk := func(pad shmem.Padding) *Launch {
		return &Launch{
			Name: "sh", Blocks: 2, ThreadsPerBlock: 64, RegsPerThread: 32,
			SharedLogicalBytes: 33 * 1024, SharedPadding: pad,
			CyclesPerCompress: 300,
			Body: func(b *Block) {
				buf := make([]byte, 32)
				b.For(32, func(tid int) {
					b.Shared.Read(tid, tid*1024, buf)
				})
				b.Sync()
			},
		}
	}
	plain, err := e.Run(mk(shmem.None))
	if err != nil {
		t.Fatal(err)
	}
	padded, err := e.Run(mk(shmem.ForNodeBytes(16)))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Shmem.LoadConflicts == 0 {
		t.Fatal("tree-strided reads should conflict unpadded")
	}
	if padded.Shmem.LoadConflicts >= plain.Shmem.LoadConflicts {
		t.Fatal("padding did not reduce conflicts in engine stats")
	}
	if padded.SharedMemBytes <= plain.SharedMemBytes {
		t.Fatal("padded footprint should be larger")
	}
	if padded.DurationUs >= plain.DurationUs {
		t.Fatal("conflict elimination should reduce modeled duration")
	}
}

// TestOccupancyReported checks occupancy metadata lands in stats.
func TestOccupancyReported(t *testing.T) {
	e := New(device.RTX4090)
	st, err := e.Run(hashKernel("occ", 8, 1024, 1024, 4))
	if err != nil {
		t.Fatal(err)
	}
	if st.Occ.ActiveWarpsPerSM != 32 || st.Occ.TheoreticalPct < 66 {
		t.Fatalf("unexpected occupancy %+v", st.Occ)
	}
	if st.AchievedOccupancyPct <= 0 || st.AchievedOccupancyPct > st.Occ.TheoreticalPct+1e-9 {
		t.Fatalf("achieved occupancy %.2f out of range", st.AchievedOccupancyPct)
	}
}

// TestGlobalTrafficTiming: a kernel moving far more DRAM bytes than compute
// must be memory-bound in the model.
func TestGlobalTrafficTiming(t *testing.T) {
	e := New(device.RTX4090)
	st, err := e.Run(&Launch{
		Name: "memb", Blocks: 4, ThreadsPerBlock: 32, RegsPerThread: 32,
		CyclesPerCompress: 300,
		Body: func(b *Block) {
			b.GlobalRead(1 << 28) // 256 MiB per block
			b.For(32, func(tid int) {})
			b.Sync()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantUs := float64(4*(1<<28)) / (device.RTX4090.MemBandwidthGBs * 1e9) * 1e6
	if st.DurationUs < wantUs*0.99 {
		t.Fatalf("duration %.1fus below DRAM floor %.1fus", st.DurationUs, wantUs)
	}
	if st.MemoryThroughputPct < 90 {
		t.Fatalf("memory throughput %.1f%%, want ~100%%", st.MemoryThroughputPct)
	}
}
