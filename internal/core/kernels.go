package core

import (
	"fmt"

	"herosign/internal/core/tuner"
	"herosign/internal/gpu/device"
	"herosign/internal/gpu/shmem"
	"herosign/internal/gpu/sim"
	"herosign/internal/ptx"
	"herosign/internal/spx/address"
	"herosign/internal/spx/hashes"
	"herosign/internal/spx/params"
	"herosign/internal/spx/wots"
)

// kernelSet builds the three component kernels for a batch of jobs under a
// feature configuration. One simulated block processes one message
// (paper §III-F: "We assign one block to represent each message").
type kernelSet struct {
	p     *params.Params
	dev   *device.Device
	feats Features
	tune  *tuner.Result // nil unless feats.Fusion
	sel   map[ptx.Kernel]ptx.Variant

	baseCtx *hashes.Ctx
	jobs    []*Job
	blocks  int // grid size; >= len(jobs) when the engine samples
}

// variant returns the compilation path for kernel k under the feature set.
func (ks *kernelSet) variant(k ptx.Kernel) ptx.Variant {
	if !ks.feats.PTX {
		return ptx.Native
	}
	if v, ok := ks.sel[k]; ok {
		return v
	}
	return ptx.Native
}

// maxFeasibleRegs returns the largest per-thread register count that still
// allows one resident block at the given block size (the __launch_bounds__
// cap HERO-Sign applies, §III-A).
func maxFeasibleRegs(d *device.Device, threads int) int {
	warps := (threads + d.WarpSize - 1) / d.WarpSize
	perWarp := d.RegistersPerSM / warps
	regs := perWarp / d.WarpSize
	regs = regs / 8 * 8 // allocation granularity (256 regs / 32 lanes)
	if regs > d.MaxRegsPerThread {
		regs = d.MaxRegsPerThread
	}
	return regs
}

// heroMicroOptFactor models the instruction-level rewrites HERO-Sign's
// kernel bodies apply beyond the structural optimizations: expensive
// division/modulo index arithmetic rewritten into shifts and masks (the
// paper attributes the WOTS+_Sign compute-throughput drop to exactly this,
// §IV-D), streamlined chain loops, and precomputed address updates. These
// are calibrated model constants, anchored so the per-kernel speedups of
// Table VIII land near the paper's (TREE 1.26x, WOTS+ 1.97x at 128f).
func heroMicroOptFactor(k ptx.Kernel) float64 {
	switch k {
	case TREEKernel:
		return 0.82
	case WOTSKernel:
		return 0.52
	}
	return 1.0 // FORS gains come from the structural features themselves
}

// hybridMemFactor models §III-D beyond the counted traffic: hot read-only
// data (seeds, initial state, digest arrays) served from constant/shared
// memory instead of global removes latency stalls the issue-efficiency
// model cannot see. Calibrated against the +HybridME step of Fig. 11.
const hybridMemFactor = 0.92

// Kernel aliases to keep the cost tables readable.
const (
	FORSKernel = ptx.FORSSign
	TREEKernel = ptx.TREESign
	WOTSKernel = ptx.WOTSSign
)

// kernelCost resolves the schedule, applying the launch-bounds cap: the
// returned cycles-per-compression includes any spill penalty plus the
// HERO-side micro-optimization factors when the corresponding features are
// active.
func (ks *kernelSet) kernelCost(k ptx.Kernel, threads int) (regs int, cycles float64) {
	sched := ptx.ScheduleFor(k, ks.variant(k), ks.p.N)
	cap := maxFeasibleRegs(ks.dev, threads)
	regs, spill := sched.CappedRegs(cap)
	cycles = sched.CyclesPerCompress * spill
	if ks.feats.MMTP {
		cycles *= heroMicroOptFactor(k)
	}
	if ks.feats.HybridMem {
		cycles *= hybridMemFactor
	}
	return regs, cycles
}

// seedTraffic charges the read-only seed fetch for one hash task: constant
// memory under HybridME (broadcast, on-chip), global memory otherwise.
func (ks *kernelSet) seedTraffic(b *sim.Block, n int) {
	if ks.feats.HybridMem {
		b.ConstRead(n)
	} else {
		b.GlobalRead(n)
	}
}

// padding returns the shared-memory layout for per-thread accesses of
// nodeBytes under the FreeBank feature.
func (ks *kernelSet) padding() shmem.Padding {
	if ks.feats.FreeBank {
		return shmem.ForNodeBytes(ks.p.N)
	}
	return shmem.None
}

// readChildren loads a node pair from shared memory. The FreeBank package
// pairs the Eq. 2/3 padding with vectorized child loads (one 2n-byte
// transaction per thread, the int4/int2 access style of §III-D); the
// baseline issues two separate n-byte loads, whose 2n-stride gap pattern
// conflicts at every reduction level — the "Baseline" column of Table VI.
func (ks *kernelSet) readChildren(b *sim.Block, tid, off int, left, right []byte) {
	n := ks.p.N
	if ks.feats.FreeBank {
		var pair [64]byte // 2n <= 64
		b.Shared.Read(tid, off, pair[:2*n])
		copy(left, pair[:n])
		copy(right, pair[n:2*n])
		return
	}
	b.Shared.Read(tid, off, left)
	b.Shared.Read(tid, off+n, right)
}

// ctxCache hands out one counting hash context per thread per block.
type ctxCache struct {
	base *hashes.Ctx
	ctxs []*hashes.Ctx
}

func newCtxCache(base *hashes.Ctx, threads int) *ctxCache {
	return &ctxCache{base: base, ctxs: make([]*hashes.Ctx, threads)}
}

func (c *ctxCache) at(b *sim.Block, tid int) *hashes.Ctx {
	if c.ctxs[tid] == nil {
		c.ctxs[tid] = c.base.Clone(b.ThreadCounter(tid))
	}
	return c.ctxs[tid]
}

// forsGeometry is the resolved FORS_Sign launch shape.
type forsGeometry struct {
	threadsPerBlock int
	threadsPerTree  int // threads serving one tree (t / L)
	nTree           int // trees per Set
	f               int // fused Sets
	passes          int
	leavesPerThread int // L (1 = standard, >=2 = Relax-FORS)
	sharedLogical   int
	dynamic         bool
}

// forsGeom resolves the geometry from the feature set.
func (ks *kernelSet) forsGeom() (forsGeometry, error) {
	p, d := ks.p, ks.dev
	switch {
	case ks.feats.Fusion:
		t := ks.tune
		if t == nil {
			return forsGeometry{}, fmt.Errorf("core: fusion requires a tuning result")
		}
		return forsGeometry{
			threadsPerBlock: t.ThreadsPerSet,
			threadsPerTree:  t.ThreadsPerSet / t.TreesPerSet,
			nTree:           t.TreesPerSet,
			f:               t.F,
			passes:          t.Passes,
			leavesPerThread: t.LeavesPerThread,
			sharedLogical:   t.SharedBytesTotal,
			dynamic:         t.DynamicShared,
		}, nil
	case ks.feats.MMTP:
		nTree := d.MaxThreadsPerBlock / p.T
		if byMem := d.StaticSharedMemPerBlock / (p.T * p.N); byMem < nTree {
			nTree = byMem
		}
		if nTree > p.K {
			nTree = p.K
		}
		if nTree < 1 {
			nTree = 1
		}
		return forsGeometry{
			threadsPerBlock: nTree * p.T,
			threadsPerTree:  p.T,
			nTree:           nTree,
			f:               1,
			passes:          (p.K + nTree - 1) / nTree,
			leavesPerThread: 1,
			sharedLogical:   nTree * p.T * p.N,
		}, nil
	default:
		// Baseline: one subtree at a time per block, 256-thread blocks
		// (t threads active). This geometry reproduces the paper's
		// Table III anchors for TCAS FORS_Sign on RTX 4090: four resident
		// blocks x 8 warps = 32 warps -> 66.67% theoretical occupancy,
		// while only t/32 warps per block do work -> ~17% achieved.
		threads := 256
		if p.T > threads {
			threads = p.T
		}
		return forsGeometry{
			threadsPerBlock: threads,
			threadsPerTree:  p.T,
			nTree:           1,
			f:               1,
			passes:          p.K,
			leavesPerThread: 1,
			sharedLogical:   p.T * p.N,
		}, nil
	}
}

// forsLaunch builds the FORS_Sign kernel.
func (ks *kernelSet) forsLaunch() (*sim.Launch, error) {
	p := ks.p
	g, err := ks.forsGeom()
	if err != nil {
		return nil, err
	}
	regs, cycles := ks.kernelCost(ptx.FORSSign, g.threadsPerBlock)
	lgL := log2int(g.leavesPerThread)
	slotNodes := p.T >> uint(lgL) // nodes per tree stored in shared at the base level
	slotBytes := slotNodes * p.N
	inFlight := g.nTree * g.f

	body := func(b *sim.Block) {
		job := ks.jobs[b.Idx%len(ks.jobs)]
		cache := newCtxCache(ks.baseCtx, g.threadsPerBlock)

		// Prologue: the block reads the message digest selectors.
		b.GlobalRead(len(job.MD) + 12)

		var adrs address.Address
		adrs.SetLayer(0)
		adrs.SetTree(job.TreeIdx)
		adrs.SetType(address.FORSTree)
		adrs.SetKeyPair(job.LeafIdx)

		roots := make([]byte, p.K*p.N)

		for pass := 0; pass < g.passes; pass++ {
			// slot -> global tree index for this pass.
			treeOf := func(slot int) int {
				return pass*inFlight + slot
			}

			// Leaf phase: every thread produces its L leaves for each fused
			// Set (OFFSET reuse across Sets, paper Fig. 3), folding them to
			// the base shared-memory level. The thread owning the selected
			// leaf also reveals the leaf secret and covers the in-register
			// auth-path levels (Relax-FORS, paper Fig. 4). In baseline/MMTP
			// mode only N_tree x threadsPerTree lanes are active — the rest
			// of the block idles, which is exactly the underutilization the
			// Fusion strategy removes.
			b.For(minInt(g.nTree*g.threadsPerTree, g.threadsPerBlock), func(tid int) {
				ctx := cache.at(b, tid)
				treeInSet := tid / g.threadsPerTree
				pos := tid % g.threadsPerTree
				for f := 0; f < g.f; f++ {
					slot := f*g.nTree + treeInSet
					tree := treeOf(slot)
					if tree >= p.K {
						continue
					}
					ks.seedTraffic(b, 2*p.N)
					sel := job.Indices[tree]
					var node [32]byte // N <= 32
					if g.leavesPerThread == 1 {
						forsLeafNode(ctx, node[:p.N], &adrs, uint32(tree), uint32(pos), p)
						if uint32(pos) == sel {
							forsLeafSK(ctx, job.ForsItem(tree)[:p.N], &adrs, uint32(tree), sel, p)
							b.GlobalWrite(p.N)
						}
					} else {
						ks.relaxFold(ctx, b, job, node[:p.N], &adrs, tree, pos, lgL, sel)
					}
					b.Shared.Write(tid, slot*slotBytes+pos*p.N, node[:p.N])
				}
			})
			b.Sync()

			// Reduction: one barrier per level covers every fused Set.
			var nodeAdrs address.Address
			nodeAdrs.CopyKeyPair(&adrs)
			nodeAdrs.SetType(address.FORSTree)
			nodeAdrs.SetKeyPair(job.LeafIdx)
			for h := lgL; h < p.LogT; h++ {
				nodesNow := p.T >> uint(h) // per tree at level h
				parents := nodesNow / 2
				activeExtract := g.nTree
				if activeExtract > g.threadsPerBlock {
					activeExtract = g.threadsPerBlock
				}
				// Auth-path extraction for level h (before the in-place
				// reduce overwrites the lower half of the level).
				b.For(activeExtract, func(tid int) {
					for f := 0; f < g.f; f++ {
						slot := f*g.nTree + tid
						tree := treeOf(slot)
						if tree >= p.K {
							continue
						}
						sel := job.Indices[tree]
						sib := int(sel>>uint(h)) ^ 1
						var sibNode [32]byte
						// Level-h node j sits at slot-relative position j
						// (in-place reduction invariant).
						b.Shared.Read(tid, slot*slotBytes+sib*p.N, sibNode[:p.N])
						copy(job.ForsItem(tree)[(1+h)*p.N:(2+h)*p.N], sibNode[:p.N])
						b.GlobalWrite(p.N)
					}
				})

				active := g.nTree * parents
				if active > g.threadsPerBlock {
					active = g.threadsPerBlock
				}
				b.For(active, func(tid int) {
					ctx := cache.at(b, tid)
					perTree := parents
					treeInSet := tid / perTree
					i := tid % perTree
					if treeInSet >= g.nTree {
						return
					}
					for f := 0; f < g.f; f++ {
						slot := f*g.nTree + treeInSet
						tree := treeOf(slot)
						if tree >= p.K {
							continue
						}
						var left, right, parent [32]byte
						ks.readChildren(b, tid, slot*slotBytes+2*i*p.N, left[:p.N], right[:p.N])
						nodeAdrs.SetTreeHeight(uint32(h + 1))
						nodeAdrs.SetTreeIndex(uint32(tree)*uint32(p.T>>uint(h+1)) + uint32(i))
						ctx.H(parent[:p.N], left[:p.N], right[:p.N], &nodeAdrs)
						b.Shared.Write(tid, slot*slotBytes+i*p.N, parent[:p.N])
					}
				})
				b.Sync()
			}

			// Root collection for this pass.
			b.For(minInt(g.nTree, g.threadsPerBlock), func(tid int) {
				for f := 0; f < g.f; f++ {
					slot := f*g.nTree + tid
					tree := treeOf(slot)
					if tree >= p.K {
						continue
					}
					var root [32]byte
					b.Shared.Read(tid, slot*slotBytes, root[:p.N])
					copy(roots[tree*p.N:(tree+1)*p.N], root[:p.N])
					b.GlobalWrite(p.N)
				}
			})
			b.Sync()
		}

		// Root compression T_k (single thread, as in the reference).
		b.For(1, func(tid int) {
			ctx := cache.at(b, tid)
			var rootsAdrs address.Address
			rootsAdrs.CopyKeyPair(&adrs)
			rootsAdrs.SetType(address.FORSRoots)
			rootsAdrs.SetKeyPair(job.LeafIdx)
			ctx.Thash(job.ForsPK, roots, &rootsAdrs)
			b.GlobalWrite(p.N)
		})
		b.Sync()
	}

	return &sim.Launch{
		Name:               "FORS_Sign",
		Blocks:             ks.blocks,
		ThreadsPerBlock:    g.threadsPerBlock,
		RegsPerThread:      regs,
		SharedLogicalBytes: g.sharedLogical,
		SharedPadding:      ks.padding(),
		DynamicShared:      g.dynamic,
		CyclesPerCompress:  cycles,
		Body:               body,
	}, nil
}

// relaxFold implements the Relax-FORS per-thread fold (§III-B4): the thread
// generates L = 2^lgL consecutive leaves into its private register buffer,
// reduces them to one level-lgL node, reveals the selected leaf secret, and
// emits the auth-path siblings for the in-register levels.
func (ks *kernelSet) relaxFold(ctx *hashes.Ctx, b *sim.Block, job *Job, out []byte,
	adrs *address.Address, tree, pos, lgL int, sel uint32) {
	p := ks.p
	l := 1 << uint(lgL)
	buf := make([]byte, l*p.N) // the register Relax Buffer
	firstLeaf := pos * l
	for i := 0; i < l; i++ {
		leaf := uint32(firstLeaf + i)
		forsLeafNode(ctx, buf[i*p.N:(i+1)*p.N], adrs, uint32(tree), leaf, p)
		if leaf == sel {
			forsLeafSK(ctx, job.ForsItem(tree)[:p.N], adrs, uint32(tree), sel, p)
			b.GlobalWrite(p.N)
		}
	}
	ownsSel := int(sel)/l == pos
	var nodeAdrs address.Address
	nodeAdrs.CopyKeyPair(adrs)
	nodeAdrs.SetType(address.FORSTree)
	nodeAdrs.SetKeyPair(adrs.KeyPair())
	for h := 0; h < lgL; h++ {
		width := l >> uint(h)
		if ownsSel {
			idx := int(sel) >> uint(h)
			sib := idx ^ 1
			local := sib - (firstLeaf >> uint(h))
			copy(job.ForsItem(tree)[(1+h)*p.N:(2+h)*p.N], buf[local*p.N:(local+1)*p.N])
			b.GlobalWrite(p.N)
		}
		nodeAdrs.SetTreeHeight(uint32(h + 1))
		for i := 0; i < width/2; i++ {
			globalIdx := uint32(tree)*uint32(p.T>>uint(h+1)) + uint32(firstLeaf>>uint(h+1)+i)
			nodeAdrs.SetTreeIndex(globalIdx)
			ctx.H(buf[i*p.N:(i+1)*p.N], buf[2*i*p.N:(2*i+1)*p.N], buf[(2*i+1)*p.N:(2*i+2)*p.N], &nodeAdrs)
		}
	}
	copy(out, buf[:p.N])
}

// forsLeafSK derives the revealed leaf secret (identical addressing to
// fors.LeafSK, inlined here to run on the thread's counting context).
func forsLeafSK(ctx *hashes.Ctx, out []byte, adrs *address.Address, treeIdx, leafIdx uint32, p *params.Params) {
	var skAdrs address.Address
	skAdrs.CopyKeyPair(adrs)
	skAdrs.SetType(address.FORSPRF)
	skAdrs.SetKeyPair(adrs.KeyPair())
	skAdrs.SetTreeHeight(0)
	skAdrs.SetTreeIndex(treeIdx*uint32(p.T) + leafIdx)
	ctx.PRF(out, &skAdrs)
}

// forsLeafNode computes a FORS leaf (PRF then F), matching fors.LeafNode.
func forsLeafNode(ctx *hashes.Ctx, out []byte, adrs *address.Address, treeIdx, leafIdx uint32, p *params.Params) {
	var skBuf [32]byte
	sk := skBuf[:p.N]
	forsLeafSK(ctx, sk, adrs, treeIdx, leafIdx, p)
	var nodeAdrs address.Address
	nodeAdrs.CopyKeyPair(adrs)
	nodeAdrs.SetType(address.FORSTree)
	nodeAdrs.SetKeyPair(adrs.KeyPair())
	nodeAdrs.SetTreeHeight(0)
	nodeAdrs.SetTreeIndex(treeIdx*uint32(p.T) + leafIdx)
	ctx.F(out, sk, &nodeAdrs)
}

// treeLaunch builds the TREE_Sign kernel: every hypertree layer's subtree is
// computed in parallel — one thread per leaf (wots_gen_leaf), then a
// per-layer reduction with auth-path extraction.
func (ks *kernelSet) treeLaunch() (*sim.Launch, error) {
	p := ks.p
	leavesPerLayer := 1 << uint(p.TreeHeight)
	totalLeaves := p.D * leavesPerLayer
	threads := roundUp32(totalLeaves)
	if threads > ks.dev.MaxThreadsPerBlock {
		threads = ks.dev.MaxThreadsPerBlock
	}
	regs, cycles := ks.kernelCost(ptx.TREESign, threads)
	layerBytes := leavesPerLayer * p.N
	sharedLogical := p.D * layerBytes

	body := func(b *sim.Block) {
		job := ks.jobs[b.Idx%len(ks.jobs)]
		cache := newCtxCache(ks.baseCtx, threads)
		b.GlobalRead(16) // tree/leaf selectors

		// Leaf phase: wots_gen_leaf per thread (the register hot spot).
		b.For(minInt(totalLeaves, threads), func(tid int) {
			for task := tid; task < totalLeaves; task += threads {
				layer := task / leavesPerLayer
				leaf := task % leavesPerLayer
				ctx := cache.at(b, tid)
				ks.seedTraffic(b, 2*p.N)
				var treeAdrs address.Address
				treeAdrs.SetLayer(uint32(layer))
				treeAdrs.SetTree(job.LayerTree[layer])
				var node [32]byte
				wotsGenLeaf(ctx, node[:p.N], &treeAdrs, uint32(leaf), p)
				b.Shared.Write(tid, layer*layerBytes+leaf*p.N, node[:p.N])
			}
		})
		b.Sync()

		// Per-level reduction across all layers at once.
		for h := 0; h < p.TreeHeight; h++ {
			nodesNow := leavesPerLayer >> uint(h)
			parents := nodesNow / 2

			// Auth extraction for level h.
			b.For(minInt(p.D, threads), func(tid int) {
				layer := tid
				if layer >= p.D {
					return
				}
				idx := job.LayerLeaf[layer] >> uint(h)
				sib := int(idx) ^ 1
				var node [32]byte
				b.Shared.Read(tid, layer*layerBytes+sib*p.N, node[:p.N])
				copy(job.AuthPath(layer)[h*p.N:(h+1)*p.N], node[:p.N])
				b.GlobalWrite(p.N)
			})

			active := p.D * parents
			if active > threads {
				active = threads
			}
			b.For(active, func(tid int) {
				for task := tid; task < p.D*parents; task += threads {
					layer := task / parents
					i := task % parents
					ctx := cache.at(b, tid)
					var nodeAdrs address.Address
					nodeAdrs.SetLayer(uint32(layer))
					nodeAdrs.SetTree(job.LayerTree[layer])
					nodeAdrs.SetType(address.Tree)
					nodeAdrs.SetTreeHeight(uint32(h + 1))
					nodeAdrs.SetTreeIndex(uint32(i))
					var left, right, parent [32]byte
					ks.readChildren(b, tid, layer*layerBytes+2*i*p.N, left[:p.N], right[:p.N])
					ctx.H(parent[:p.N], left[:p.N], right[:p.N], &nodeAdrs)
					b.Shared.Write(tid, layer*layerBytes+i*p.N, parent[:p.N])
				}
			})
			b.Sync()
		}

		// Root write-back per layer.
		b.For(minInt(p.D, threads), func(tid int) {
			if tid >= p.D {
				return
			}
			var node [32]byte
			b.Shared.Read(tid, tid*layerBytes, node[:p.N])
			copy(job.Roots[tid], node[:p.N])
			b.GlobalWrite(p.N)
		})
		b.Sync()
	}

	return &sim.Launch{
		Name:               "TREE_Sign",
		Blocks:             ks.blocks,
		ThreadsPerBlock:    threads,
		RegsPerThread:      regs,
		SharedLogicalBytes: sharedLogical,
		SharedPadding:      ks.padding(),
		CyclesPerCompress:  cycles,
		Body:               body,
	}, nil
}

// wotsGenLeaf is xmss.GenLeaf on a counting context: the full WOTS+ public
// key generation plus compression for one hypertree leaf.
func wotsGenLeaf(ctx *hashes.Ctx, out []byte, treeAdrs *address.Address, leafIdx uint32, p *params.Params) {
	var adrs address.Address
	adrs.CopySubtree(treeAdrs)
	adrs.SetType(address.WOTSHash)
	adrs.SetKeyPair(leafIdx)
	wots.PKGen(ctx, out, &adrs)
}

// wotsLaunch builds the WOTS+_Sign kernel: one thread per (layer, chain),
// looping when the chain count exceeds the block size. Each chain signs the
// root produced below it (FORS public key for layer 0).
func (ks *kernelSet) wotsLaunch() (*sim.Launch, error) {
	p := ks.p
	chains := p.D * p.WOTSLen
	threads := roundUp32(chains)
	for threads > ks.dev.MaxThreadsPerBlock ||
		!fitsOneBlock(ks.dev, threads, ptx.ScheduleFor(ptx.WOTSSign, ks.variant(ptx.WOTSSign), p.N).RegsPerThread) {
		threads /= 2
		threads = roundUp32(threads)
		if threads < 32 {
			threads = 32
			break
		}
	}
	regs, cycles := ks.kernelCost(ptx.WOTSSign, threads)

	body := func(b *sim.Block) {
		job := ks.jobs[b.Idx%len(ks.jobs)]
		cache := newCtxCache(ks.baseCtx, threads)

		// Per-layer chain lengths from the layer's message (host-visible
		// precomputation in the model; negligible non-hash work).
		lengths := make([][]uint32, p.D)
		for layer := 0; layer < p.D; layer++ {
			lengths[layer] = wots.ChainLengths(p, job.WotsMessage(layer))
		}
		b.GlobalRead(p.D * p.N) // roots / FORS pk reads

		b.For(minInt(chains, threads), func(tid int) {
			for task := tid; task < chains; task += threads {
				layer := task / p.WOTSLen
				chain := task % p.WOTSLen
				ctx := cache.at(b, tid)
				ks.seedTraffic(b, 2*p.N)

				var wotsAdrs address.Address
				wotsAdrs.SetLayer(uint32(layer))
				wotsAdrs.SetTree(job.LayerTree[layer])
				wotsAdrs.SetType(address.WOTSHash)
				wotsAdrs.SetKeyPair(job.LayerLeaf[layer])

				seg := job.WotsSig(layer)[chain*p.N : (chain+1)*p.N]
				wots.ChainSK(ctx, seg, uint32(chain), &wotsAdrs)
				var chainAdrs address.Address
				chainAdrs = wotsAdrs
				chainAdrs.SetType(address.WOTSHash)
				chainAdrs.SetKeyPair(job.LayerLeaf[layer])
				chainAdrs.SetChain(uint32(chain))
				wots.GenChain(ctx, seg, seg, 0, lengths[layer][chain], &chainAdrs)
				b.GlobalWrite(p.N)
			}
		})
		b.Sync()
	}

	return &sim.Launch{
		Name:              "WOTS+_Sign",
		Blocks:            ks.blocks,
		ThreadsPerBlock:   threads,
		RegsPerThread:     regs,
		CyclesPerCompress: cycles,
		Body:              body,
	}, nil
}

// fitsOneBlock reports whether a kernel with the given geometry can be
// resident at least once per SM.
func fitsOneBlock(d *device.Device, threads, regsPerThread int) bool {
	occ := device.ComputeOccupancy(d, device.KernelResources{
		ThreadsPerBlock: threads, RegsPerThread: regsPerThread,
	})
	return occ.ResidentBlocksPerSM >= 1
}

func roundUp32(x int) int { return (x + 31) / 32 * 32 }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func log2int(x int) int {
	n := 0
	for 1<<uint(n+1) <= x {
		n++
	}
	return n
}
