package core

import (
	"fmt"

	"herosign/internal/gpu/shmem"
	"herosign/internal/gpu/sim"
	"herosign/internal/ptx"
	"herosign/internal/spx"
	"herosign/internal/spx/address"
	"herosign/internal/spx/hashes"
)

// KeyGenBatch derives the public roots for a batch of seed triples on the
// simulated GPU. SPHINCS+ key generation is one hypertree-top treehash:
// 2^(h/d) wots_gen_leaf calls plus the reduction — embarrassingly parallel
// and dominated by exactly the register-pressure-bound leaf kernel the
// paper analyses (§III). One block per key.
//
// Returned keys are byte-identical to spx.KeyFromSeeds (enforced by tests).
type SeedTriple struct {
	SKSeed []byte
	SKPRF  []byte
	PKSeed []byte
}

// KeyGenResult reports the batch and its modeled kernel stats.
type KeyGenResult struct {
	Keys   []*spx.PrivateKey
	Kernel *sim.Stats
}

// KeyGenBatch runs the key-generation kernel over the seed triples.
func (s *Signer) KeyGenBatch(seeds []SeedTriple) (*KeyGenResult, error) {
	p := s.cfg.Params
	if len(seeds) == 0 {
		return nil, fmt.Errorf("core: empty keygen batch")
	}
	for i, tr := range seeds {
		if len(tr.SKSeed) != p.N || len(tr.SKPRF) != p.N || len(tr.PKSeed) != p.N {
			return nil, fmt.Errorf("core: seed triple %d has wrong lengths", i)
		}
	}

	leaves := 1 << uint(p.TreeHeight)
	threads := roundUp32(leaves)
	variant := ptx.Native
	if s.cfg.Features.PTX {
		// Key generation is wots_gen_leaf-bound like TREE_Sign; reuse its
		// selection when available.
		if v, ok := s.sel[ptx.TREESign]; ok {
			variant = v
		}
	}
	sched := ptx.ScheduleFor(ptx.TREESign, variant, p.N)
	regs, spill := sched.CappedRegs(maxFeasibleRegs(s.cfg.Device, threads))

	roots := make([][]byte, len(seeds))
	layerBytes := leaves * p.N

	launch := &sim.Launch{
		Name:               "KEYGEN",
		Blocks:             len(seeds),
		ThreadsPerBlock:    threads,
		RegsPerThread:      regs,
		SharedLogicalBytes: layerBytes,
		SharedPadding:      s.padding(),
		CyclesPerCompress:  sched.CyclesPerCompress * spill,
		Body: func(b *sim.Block) {
			tr := seeds[b.Idx]
			ctx := hashes.NewCtx(p, tr.PKSeed, tr.SKSeed)
			cache := newCtxCache(ctx, threads)
			b.GlobalRead(3 * p.N)

			var treeAdrs address.Address
			treeAdrs.SetLayer(uint32(p.D - 1))
			treeAdrs.SetTree(0)

			b.For(minInt(leaves, threads), func(tid int) {
				for leaf := tid; leaf < leaves; leaf += threads {
					tctx := cache.at(b, tid)
					if s.cfg.Features.HybridMem {
						b.ConstRead(2 * p.N)
					} else {
						b.GlobalRead(2 * p.N)
					}
					node := make([]byte, p.N)
					wotsGenLeaf(tctx, node, &treeAdrs, uint32(leaf), p)
					b.Shared.Write(tid, leaf*p.N, node)
				}
			})
			b.Sync()

			for h := 0; h < p.TreeHeight; h++ {
				parents := (leaves >> uint(h)) / 2
				b.For(minInt(parents, threads), func(tid int) {
					for i := tid; i < parents; i += threads {
						tctx := cache.at(b, tid)
						var nodeAdrs address.Address
						nodeAdrs.CopySubtree(&treeAdrs)
						nodeAdrs.SetType(address.Tree)
						nodeAdrs.SetTreeHeight(uint32(h + 1))
						nodeAdrs.SetTreeIndex(uint32(i))
						left := make([]byte, p.N)
						right := make([]byte, p.N)
						kset := &kernelSet{p: p, dev: s.cfg.Device, feats: s.cfg.Features}
						kset.readChildren(b, tid, 2*i*p.N, left, right)
						parent := make([]byte, p.N)
						tctx.H(parent, left, right, &nodeAdrs)
						b.Shared.Write(tid, i*p.N, parent)
					}
				})
				b.Sync()
			}

			root := make([]byte, p.N)
			b.For(1, func(tid int) {
				b.Shared.Read(tid, 0, root)
				b.GlobalWrite(p.N)
			})
			b.Sync()
			roots[b.Idx] = root
		},
	}

	eng := sim.New(s.cfg.Device)
	st, err := eng.Run(launch)
	if err != nil {
		return nil, err
	}

	keys := make([]*spx.PrivateKey, len(seeds))
	for i, tr := range seeds {
		keys[i] = &spx.PrivateKey{
			PublicKey: spx.PublicKey{
				Params: p,
				Seed:   append([]byte(nil), tr.PKSeed...),
				Root:   roots[i],
			},
			SKSeed: append([]byte(nil), tr.SKSeed...),
			SKPRF:  append([]byte(nil), tr.SKPRF...),
		}
	}
	return &KeyGenResult{Keys: keys, Kernel: st}, nil
}

// padding mirrors kernelSet.padding for signer-level kernels.
func (s *Signer) padding() shmem.Padding {
	ks := &kernelSet{p: s.cfg.Params, feats: s.cfg.Features}
	return ks.padding()
}
