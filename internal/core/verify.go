package core

import (
	"fmt"

	"herosign/internal/gpu/sched"
	"herosign/internal/gpu/sim"
	"herosign/internal/ptx"
	"herosign/internal/spx"
	"herosign/internal/spx/address"
	"herosign/internal/spx/hashes"
	"herosign/internal/spx/wots"
)

// VerifyResult reports a batch verification run.
type VerifyResult struct {
	OK             []bool // per-message outcome
	Kernel         *sim.Stats
	Timeline       sched.Timeline
	ThroughputKOPS float64
}

// VerifyBatch checks a batch of signatures on the simulated GPU with one
// block per message. Verification is the paper's natural companion
// workload (its GPU baselines CUSPX/TCAS provide it): the FORS recovery
// parallelizes across the k trees and each hypertree layer's WOTS+ chain
// walk parallelizes across chains, with the layer chain itself sequential
// (each layer's root feeds the next).
//
// The outcome for every message is cross-checked against nothing — it IS
// the verdict — but the package tests assert agreement with spx.Verify on
// both valid and tampered inputs.
func (s *Signer) VerifyBatch(pk *spx.PublicKey, msgs, sigs [][]byte) (*VerifyResult, error) {
	if pk.Params != s.cfg.Params {
		return nil, fmt.Errorf("core: key parameter set %s does not match signer %s",
			pk.Params.Name, s.cfg.Params.Name)
	}
	if len(msgs) == 0 || len(msgs) != len(sigs) {
		return nil, fmt.Errorf("core: need equal, non-zero message and signature counts")
	}
	p := s.cfg.Params
	for i, sig := range sigs {
		if len(sig) != p.SigBytes {
			return nil, fmt.Errorf("core: signature %d has %d bytes, want %d", i, len(sig), p.SigBytes)
		}
	}

	ctx := hashes.NewCtx(p, pk.Seed, nil)
	ok := make([]bool, len(msgs))

	// Thread geometry: enough lanes for the widest phase (k FORS trees or
	// WOTSLen chains), bounded like the signing kernels.
	width := p.K
	if p.WOTSLen > width {
		width = p.WOTSLen
	}
	threads := roundUp32(width)
	variant := ptx.Native
	if s.cfg.Features.PTX {
		variant = ptx.PTX // chain walking mirrors FORS-style tree traffic
	}
	sched2 := ptx.ScheduleFor(ptx.WOTSSign, variant, p.N)
	regsCap := maxFeasibleRegs(s.cfg.Device, threads)
	regs, spill := sched2.CappedRegs(regsCap)

	launch := &sim.Launch{
		Name:              "VERIFY",
		Blocks:            len(msgs),
		ThreadsPerBlock:   threads,
		RegsPerThread:     regs,
		CyclesPerCompress: sched2.CyclesPerCompress * spill,
		Body: func(b *sim.Block) {
			i := b.Idx
			msg, sig := msgs[i], sigs[i]
			b.GlobalRead(len(sig) + len(msg))

			// Host-equivalent prologue: digest and index extraction.
			r := sig[:p.N]
			digest := hashes.HMsg(p, r, pk.Seed, pk.Root, msg)
			md, treeIdx, leafIdx := hashes.SplitDigest(p, digest)
			indices := hashes.MessageToIndices(p, md)

			var forsAdrs address.Address
			forsAdrs.SetLayer(0)
			forsAdrs.SetTree(treeIdx)
			forsAdrs.SetType(address.FORSTree)
			forsAdrs.SetKeyPair(leafIdx)

			cache := newCtxCache(ctx, threads)
			itemBytes := (p.LogT + 1) * p.N
			forsSig := sig[p.N : p.N+p.ForsBytes]
			roots := make([]byte, p.K*p.N)

			// Phase 1: one thread per FORS tree recovers its root.
			b.For(minInt(p.K, threads), func(tid int) {
				for tree := tid; tree < p.K; tree += threads {
					tctx := cache.at(b, tid)
					item := forsSig[tree*itemBytes : (tree+1)*itemBytes]
					leaf := indices[tree]
					var nodeAdrs address.Address
					nodeAdrs.CopyKeyPair(&forsAdrs)
					nodeAdrs.SetType(address.FORSTree)
					nodeAdrs.SetKeyPair(leafIdx)
					nodeAdrs.SetTreeHeight(0)
					nodeAdrs.SetTreeIndex(uint32(tree)*uint32(p.T) + leaf)
					node := make([]byte, p.N)
					tctx.F(node, item[:p.N], &nodeAdrs)
					idx := leaf
					offset := uint32(tree) * uint32(p.T)
					for h := 0; h < p.LogT; h++ {
						auth := item[(1+h)*p.N : (2+h)*p.N]
						nodeAdrs.SetTreeHeight(uint32(h + 1))
						offset >>= 1
						nodeAdrs.SetTreeIndex(offset + idx>>1)
						if idx&1 == 0 {
							tctx.H(node, node, auth, &nodeAdrs)
						} else {
							tctx.H(node, auth, node, &nodeAdrs)
						}
						idx >>= 1
					}
					copy(roots[tree*p.N:(tree+1)*p.N], node)
				}
			})
			b.Sync()

			node := make([]byte, p.N)
			b.For(1, func(tid int) {
				tctx := cache.at(b, tid)
				var rootsAdrs address.Address
				rootsAdrs.CopyKeyPair(&forsAdrs)
				rootsAdrs.SetType(address.FORSRoots)
				rootsAdrs.SetKeyPair(leafIdx)
				tctx.Thash(node, roots, &rootsAdrs)
			})
			b.Sync()

			// Phase 2: hypertree layers, serial across layers, chain-level
			// parallel within each.
			htSig := sig[p.N+p.ForsBytes:]
			tree, leaf := treeIdx, leafIdx
			for layer := 0; layer < p.D; layer++ {
				layerSig := htSig[layer*p.XMSSBytes : (layer+1)*p.XMSSBytes]
				lengths := wots.ChainLengths(p, node)
				pkBuf := make([]byte, p.WOTSLen*p.N)

				var wotsAdrs address.Address
				wotsAdrs.SetLayer(uint32(layer))
				wotsAdrs.SetTree(tree)
				wotsAdrs.SetType(address.WOTSHash)
				wotsAdrs.SetKeyPair(leaf)

				b.For(minInt(p.WOTSLen, threads), func(tid int) {
					for chain := tid; chain < p.WOTSLen; chain += threads {
						tctx := cache.at(b, tid)
						var chainAdrs address.Address
						chainAdrs = wotsAdrs
						chainAdrs.SetType(address.WOTSHash)
						chainAdrs.SetKeyPair(leaf)
						chainAdrs.SetChain(uint32(chain))
						seg := pkBuf[chain*p.N : (chain+1)*p.N]
						wots.GenChain(tctx, seg, layerSig[chain*p.N:(chain+1)*p.N],
							lengths[chain], uint32(p.W-1)-lengths[chain], &chainAdrs)
					}
				})
				b.Sync()

				b.For(1, func(tid int) {
					tctx := cache.at(b, tid)
					var pkAdrs address.Address
					pkAdrs.CopyKeyPair(&wotsAdrs)
					pkAdrs.SetType(address.WOTSPK)
					pkAdrs.SetKeyPair(leaf)
					tctx.Thash(node, pkBuf, &pkAdrs)

					var nodeAdrs address.Address
					nodeAdrs.SetLayer(uint32(layer))
					nodeAdrs.SetTree(tree)
					nodeAdrs.SetType(address.Tree)
					auth := layerSig[p.WOTSBytes:]
					idx := leaf
					for h := 0; h < p.TreeHeight; h++ {
						nodeAdrs.SetTreeHeight(uint32(h + 1))
						nodeAdrs.SetTreeIndex(idx >> 1)
						a := auth[h*p.N : (h+1)*p.N]
						if idx&1 == 0 {
							tctx.H(node, node, a, &nodeAdrs)
						} else {
							tctx.H(node, a, node, &nodeAdrs)
						}
						idx >>= 1
					}
				})
				b.Sync()

				leaf = uint32(tree & ((1 << uint(p.TreeHeight)) - 1))
				tree >>= uint(p.TreeHeight)
			}

			match := true
			for j := 0; j < p.N; j++ {
				if node[j] != pk.Root[j] {
					match = false
					break
				}
			}
			ok[i] = match
			b.GlobalWrite(1)
		},
	}

	eng := sim.New(s.cfg.Device)
	st, err := eng.Run(launch)
	if err != nil {
		return nil, err
	}

	// Scheduling: verification has no inter-kernel DAG; one launch per
	// sub-batch over the configured streams.
	group := s.cfg.SubBatch
	if group > len(msgs) {
		group = len(msgs)
	}
	nGroups := (len(msgs) + group - 1) / group
	var items []sched.Item
	for g := 0; g < nGroups; g++ {
		blocks := group
		if g == nGroups-1 {
			blocks = len(msgs) - g*group
		}
		c := s.cfg.Device.SMs * maxInt(st.Occ.ResidentBlocksPerSM, 1)
		gw := (blocks + c - 1) / c
		fw := (len(msgs) + c - 1) / c
		items = append(items, sched.Item{
			Name:       "VERIFY",
			DurationUs: st.DurationUs * float64(gw) / float64(fw),
			Util:       minF(1, float64(blocks)/float64(c)),
			Stream:     g % s.cfg.Streams,
		})
	}
	mode := sched.Streams
	if s.cfg.Features.Graph {
		mode = sched.Graph
	}
	tl := sched.Run(s.cfg.Device, items, mode)

	res := &VerifyResult{OK: ok, Kernel: st, Timeline: tl}
	if tl.TotalUs > 0 {
		res.ThroughputKOPS = float64(len(msgs)) / (tl.TotalUs / 1e6) / 1000
	}
	return res, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
