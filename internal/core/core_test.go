package core

import (
	"bytes"
	"testing"

	"herosign/internal/gpu/device"
	"herosign/internal/ptx"
	"herosign/internal/spx"
	"herosign/internal/spx/params"
)

func testKey(t testing.TB, p *params.Params) *spx.PrivateKey {
	t.Helper()
	skSeed := make([]byte, p.N)
	skPRF := make([]byte, p.N)
	pkSeed := make([]byte, p.N)
	for i := range skSeed {
		skSeed[i] = byte(i + 1)
		skPRF[i] = byte(2*i + 3)
		pkSeed[i] = byte(5*i + 7)
	}
	sk, err := spx.KeyFromSeeds(p, skSeed, skPRF, pkSeed)
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

func refSigs(t testing.TB, sk *spx.PrivateKey, msgs [][]byte) [][]byte {
	t.Helper()
	out := make([][]byte, len(msgs))
	for i, m := range msgs {
		sig, err := spx.Sign(sk, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = sig
	}
	return out
}

func testMsgs(n int) [][]byte {
	msgs := make([][]byte, n)
	for i := range msgs {
		msgs[i] = []byte{byte(i), byte(i >> 8), 'm', 's', 'g', byte(3 * i)}
	}
	return msgs
}

// signerFor builds a signer for a feature set on RTX 4090.
func signerFor(t testing.TB, p *params.Params, f Features) *Signer {
	t.Helper()
	s, err := New(Config{Params: p, Device: device.RTX4090, Features: f})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestEveryOptimizationStepMatchesReference is the repository's central
// invariant: at every stage of the paper's Figure 11 optimization walk
// (plus the full configuration with Graph), the GPU-simulated signer
// produces signatures byte-identical to the pure-Go reference, for every
// -f parameter set.
func TestEveryOptimizationStepMatchesReference(t *testing.T) {
	sets := []*params.Params{params.SPHINCSPlus128f}
	if !testing.Short() {
		sets = params.FastSets()
	}
	for _, p := range sets {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			sk := testKey(t, p)
			msgs := testMsgs(3)
			want := refSigs(t, sk, msgs)

			steps := append(OptimizationSteps(), Step{Name: "Full+Graph", Feats: AllFeatures()})
			for _, step := range steps {
				s := signerFor(t, p, step.Feats)
				res, err := s.SignBatch(sk, msgs)
				if err != nil {
					t.Fatalf("%s: %v", step.Name, err)
				}
				for i := range msgs {
					if !bytes.Equal(res.Sigs[i], want[i]) {
						t.Fatalf("%s: signature %d differs from reference (first diff at %d)",
							step.Name, i, firstDiff(res.Sigs[i], want[i]))
					}
					if err := spx.Verify(&sk.PublicKey, msgs[i], res.Sigs[i]); err != nil {
						t.Fatalf("%s: signature %d does not verify: %v", step.Name, i, err)
					}
				}
			}
		})
	}
}

func firstDiff(a, b []byte) int {
	for i := range a {
		if i >= len(b) || a[i] != b[i] {
			return i
		}
	}
	return -1
}

// TestTuningAppliedToKernels checks the fused FORS launch uses the tuner's
// geometry (704 threads, 33 KB shared for 128f).
func TestTuningAppliedToKernels(t *testing.T) {
	p := params.SPHINCSPlus128f
	s := signerFor(t, p, Features{MMTP: true, Fusion: true})
	sk := testKey(t, p)
	res, err := s.SignBatch(sk, testMsgs(2))
	if err != nil {
		t.Fatal(err)
	}
	fors := res.Kernels["FORS_Sign"]
	if fors.ThreadsPerBlock != 704 {
		t.Errorf("fused FORS threads = %d, want 704", fors.ThreadsPerBlock)
	}
	if fors.SharedMemBytes != 33*1024 {
		t.Errorf("fused FORS shared = %d, want 33KB (unpadded)", fors.SharedMemBytes)
	}
	if s.Tuning() == nil || s.Tuning().F != 3 {
		t.Error("tuning result not exposed or wrong")
	}
}

// TestFreeBankReducesConflicts compares FORS shared-memory conflicts with
// and without padding (Table VI's direction) and checks the padded kernel
// is not slower.
func TestFreeBankReducesConflicts(t *testing.T) {
	p := params.SPHINCSPlus128f
	sk := testKey(t, p)
	msgs := testMsgs(2)

	base := Features{MMTP: true, Fusion: true}
	withPad := base
	withPad.FreeBank = true

	resBase, err := signerFor(t, p, base).SignBatch(sk, msgs)
	if err != nil {
		t.Fatal(err)
	}
	resPad, err := signerFor(t, p, withPad).SignBatch(sk, msgs)
	if err != nil {
		t.Fatal(err)
	}
	b := resBase.Kernels["FORS_Sign"].Shmem
	q := resPad.Kernels["FORS_Sign"].Shmem
	if b.LoadConflicts == 0 {
		t.Fatal("unpadded FORS kernel shows no bank conflicts; model broken")
	}
	if q.LoadConflicts*4 > b.LoadConflicts {
		t.Fatalf("padding left too many conflicts: %d -> %d", b.LoadConflicts, q.LoadConflicts)
	}
}

// TestHybridMemMovesTrafficToConstant checks the §III-D effect.
func TestHybridMemMovesTrafficToConstant(t *testing.T) {
	p := params.SPHINCSPlus128f
	sk := testKey(t, p)
	msgs := testMsgs(2)

	off, err := signerFor(t, p, Features{MMTP: true}).SignBatch(sk, msgs)
	if err != nil {
		t.Fatal(err)
	}
	on, err := signerFor(t, p, Features{MMTP: true, HybridMem: true}).SignBatch(sk, msgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"FORS_Sign", "TREE_Sign", "WOTS+_Sign"} {
		if on.Kernels[k].GlobalRead >= off.Kernels[k].GlobalRead {
			t.Errorf("%s: HybridMem did not reduce global reads (%d -> %d)",
				k, off.Kernels[k].GlobalRead, on.Kernels[k].GlobalRead)
		}
		if on.Kernels[k].ConstRead == 0 {
			t.Errorf("%s: HybridMem produced no constant traffic", k)
		}
	}
}

// TestAdaptiveSelectionMatchesTableV runs the profiling-driven branch
// selection on RTX 4090 and compares with the paper's Table V.
func TestAdaptiveSelectionMatchesTableV(t *testing.T) {
	want := map[string]map[ptx.Kernel]ptx.Variant{
		"SPHINCS+-128f": {ptx.FORSSign: ptx.PTX, ptx.TREESign: ptx.Native, ptx.WOTSSign: ptx.Native},
		"SPHINCS+-192f": {ptx.FORSSign: ptx.PTX, ptx.TREESign: ptx.Native, ptx.WOTSSign: ptx.Native},
		"SPHINCS+-256f": {ptx.FORSSign: ptx.PTX, ptx.TREESign: ptx.PTX, ptx.WOTSSign: ptx.PTX},
	}
	for _, p := range params.FastSets() {
		sk := testKey(t, p)
		s := signerFor(t, p, AllFeatures())
		sel, err := s.Selection(sk)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range want[p.Name] {
			if sel[k] != v {
				t.Errorf("%s %v: selected %v, paper selected %v", p.Name, k, sel[k], v)
			}
		}
	}
}

// TestGraphSchedulingFasterAndCheaper checks Figure 12's direction: with
// identical kernels, graph execution reduces both launch overhead and total
// time versus stream submission.
func TestGraphSchedulingFasterAndCheaper(t *testing.T) {
	p := params.SPHINCSPlus128f
	sk := testKey(t, p)

	noGraph := AllFeatures()
	noGraph.Graph = false
	a, err := signerFor(t, p, noGraph).MeasureBatch(sk, 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := signerFor(t, p, AllFeatures()).MeasureBatch(sk, 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.LaunchOverheadUs >= a.LaunchOverheadUs/5 {
		t.Errorf("graph launch overhead %.1fus vs stream %.1fus: expected >5x reduction",
			g.LaunchOverheadUs, a.LaunchOverheadUs)
	}
	if g.TotalUs >= a.TotalUs {
		t.Errorf("graph total %.1fus not faster than streams %.1fus", g.TotalUs, a.TotalUs)
	}
}

// TestHeroBeatsBaselineThroughput is the headline claim at batch 256 on
// RTX 4090 for 128f: full HERO-Sign must beat the baseline configuration
// end to end, within the paper's reported 1.24x-3.13x range.
func TestHeroBeatsBaselineThroughput(t *testing.T) {
	p := params.SPHINCSPlus128f
	sk := testKey(t, p)
	base, err := signerFor(t, p, Baseline()).MeasureBatch(sk, 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	hero, err := signerFor(t, p, AllFeatures()).MeasureBatch(sk, 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	speedup := hero.ThroughputKOPS / base.ThroughputKOPS
	if speedup < 1.2 {
		t.Fatalf("HERO speedup %.2fx below the paper's floor (base %.1f KOPS, hero %.1f KOPS)",
			speedup, base.ThroughputKOPS, hero.ThroughputKOPS)
	}
	if speedup > 6 {
		t.Fatalf("HERO speedup %.2fx implausibly high; model miscalibrated", speedup)
	}
}

// TestMeasureBatchScalesLikeSignBatch cross-checks the sampled measurement
// path against full execution on a small batch.
func TestMeasureBatchScalesLikeSignBatch(t *testing.T) {
	p := params.SPHINCSPlus128f
	sk := testKey(t, p)
	s := signerFor(t, p, AllFeatures())
	full, err := s.SignBatch(sk, testMsgs(8))
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := s.MeasureBatch(sk, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"FORS_Sign", "TREE_Sign", "WOTS+_Sign"} {
		f, m := full.Kernels[k].DurationUs, sampled.Kernels[k].DurationUs
		rel := (f - m) / f
		if rel > 0.2 || rel < -0.2 {
			t.Errorf("%s: sampled duration %.1fus deviates >20%% from full %.1fus", k, m, f)
		}
	}
	if sampled.Sigs != nil {
		t.Error("MeasureBatch must not return signatures")
	}
}

// TestRejectsMismatchedKey checks parameter-set validation.
func TestRejectsMismatchedKey(t *testing.T) {
	s := signerFor(t, params.SPHINCSPlus128f, Baseline())
	sk := testKey(t, params.SPHINCSPlus192f)
	if _, err := s.SignBatch(sk, testMsgs(1)); err == nil {
		t.Fatal("mismatched key accepted")
	}
	if _, err := s.SignBatch(testKey(t, params.SPHINCSPlus128f), nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

// mustDev resolves a catalog device or fails the test.
func mustDev(t testing.TB, name string) *device.Device {
	t.Helper()
	d, err := device.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestPaperOccupancyAnchor256fTree reproduces the paper's §III-C example
// exactly: the baseline TREE_Sign kernel at 256f runs at ~19% theoretical
// occupancy (168 regs/thread), and the PTX branch (95 regs) doubles it to
// 37.5% — "a 1.97x increase compared to the native version".
func TestPaperOccupancyAnchor256fTree(t *testing.T) {
	p := params.SPHINCSPlus256f
	sk := testKey(t, p)

	base, err := signerFor(t, p, Baseline()).MeasureBatch(sk, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	hero, err := signerFor(t, p, AllFeatures()).MeasureBatch(sk, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := base.Kernels["TREE_Sign"].Occ.TheoreticalPct
	h := hero.Kernels["TREE_Sign"].Occ.TheoreticalPct
	if b < 18 || b > 20 {
		t.Errorf("baseline 256f TREE occupancy = %.2f%%, paper ~19%%", b)
	}
	if h < 37 || h > 38 {
		t.Errorf("HERO 256f TREE occupancy = %.2f%%, paper 37.5%%", h)
	}
	ratio := h / b
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("occupancy gain %.2fx, paper 1.97x", ratio)
	}
}
