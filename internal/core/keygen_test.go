package core

import (
	"bytes"
	"testing"

	"herosign/internal/spx"
	"herosign/internal/spx/params"
)

func seedTriples(p *params.Params, n int) []SeedTriple {
	out := make([]SeedTriple, n)
	for i := range out {
		mk := func(tag byte) []byte {
			b := make([]byte, p.N)
			for j := range b {
				b[j] = byte(j)*3 + tag + byte(i)
			}
			return b
		}
		out[i] = SeedTriple{SKSeed: mk(1), SKPRF: mk(2), PKSeed: mk(3)}
	}
	return out
}

// TestKeyGenBatchMatchesReference: GPU-derived roots equal KeyFromSeeds'.
func TestKeyGenBatchMatchesReference(t *testing.T) {
	p := params.SPHINCSPlus128f
	s := signerFor(t, p, AllFeatures())
	seeds := seedTriples(p, 3)
	res, err := s.KeyGenBatch(seeds)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range seeds {
		want, err := spx.KeyFromSeeds(p, tr.SKSeed, tr.SKPRF, tr.PKSeed)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Keys[i].Root, want.Root) {
			t.Fatalf("key %d: GPU root differs from reference", i)
		}
		if !bytes.Equal(res.Keys[i].Bytes(), want.Bytes()) {
			t.Fatalf("key %d: serialized keys differ", i)
		}
	}
	if res.Kernel.Compress == 0 || res.Kernel.DurationUs <= 0 {
		t.Fatal("keygen kernel reported no work")
	}
}

// TestKeyGenKeysActuallySign: a GPU-generated key signs and verifies.
func TestKeyGenKeysActuallySign(t *testing.T) {
	p := params.SPHINCSPlus128f
	s := signerFor(t, p, Baseline())
	res, err := s.KeyGenBatch(seedTriples(p, 1))
	if err != nil {
		t.Fatal(err)
	}
	sk := res.Keys[0]
	msg := []byte("gpu key signs")
	sig, err := spx.Sign(sk, msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := spx.Verify(&sk.PublicKey, msg, sig); err != nil {
		t.Fatal(err)
	}
}

// TestKeyGenValidation covers input checks.
func TestKeyGenValidation(t *testing.T) {
	p := params.SPHINCSPlus128f
	s := signerFor(t, p, AllFeatures())
	if _, err := s.KeyGenBatch(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	bad := seedTriples(p, 1)
	bad[0].PKSeed = bad[0].PKSeed[:p.N-1]
	if _, err := s.KeyGenBatch(bad); err == nil {
		t.Fatal("short seed accepted")
	}
}

// TestCrossDeviceByteEquality signs the same messages on every catalog
// device (different tuner geometries, pass counts, fusion factors) and
// requires identical bytes — the strongest exercise of the fused/relax
// kernel index arithmetic.
func TestCrossDeviceByteEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-device equality skipped in -short")
	}
	for _, p := range []*params.Params{params.SPHINCSPlus128f, params.SPHINCSPlus256f} {
		sk := testKey(t, p)
		msgs := testMsgs(2)
		want := refSigs(t, sk, msgs)
		for _, devName := range []string{"GTX 1070", "V100", "A100", "H100"} {
			s, err := New(Config{Params: p, Device: mustDev(t, devName), Features: AllFeatures()})
			if err != nil {
				t.Fatalf("%s on %s: %v", p.Name, devName, err)
			}
			res, err := s.SignBatch(sk, msgs)
			if err != nil {
				t.Fatalf("%s on %s: %v", p.Name, devName, err)
			}
			for i := range msgs {
				if !bytes.Equal(res.Sigs[i], want[i]) {
					t.Fatalf("%s on %s: signature %d differs", p.Name, devName, i)
				}
			}
		}
	}
}
