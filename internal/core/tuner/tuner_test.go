package tuner

import (
	"testing"

	"herosign/internal/gpu/device"
	"herosign/internal/spx/params"
)

// TestTableIV128f reproduces the paper's Table IV row for 128f on RTX 4090:
// shared-memory utilization 0.6875, thread utilization 0.6875, F = 3.
func TestTableIV128f(t *testing.T) {
	r, err := Tune(params.SPHINCSPlus128f, device.RTX4090, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.F != 3 {
		t.Errorf("F = %d, want 3", r.F)
	}
	if r.ThreadUtil != 0.6875 {
		t.Errorf("U_T = %v, want 0.6875", r.ThreadUtil)
	}
	if r.SharedUtil != 0.6875 {
		t.Errorf("U_S = %v, want 0.6875", r.SharedUtil)
	}
	if r.TreesPerSet != 11 || r.ThreadsPerSet != 704 {
		t.Errorf("N_tree/T_set = %d/%d, want 11/704", r.TreesPerSet, r.ThreadsPerSet)
	}
	if r.Relax {
		t.Error("128f must not use Relax-FORS")
	}
	// §III-B1: all 33 trees in flight use 33 KB of shared memory.
	if r.SharedBytesTotal != 33*1024 {
		t.Errorf("fused footprint = %d, want 33KB", r.SharedBytesTotal)
	}
	if r.Passes != 1 {
		t.Errorf("passes = %d, want 1", r.Passes)
	}
	// Minimum possible sync count is one barrier per level.
	if r.SyncScore != 6 {
		t.Errorf("sync score = %v, want 6", r.SyncScore)
	}
}

// TestTableIV192f reproduces the 192f row: utilizations 0.75, F = 2.
func TestTableIV192f(t *testing.T) {
	r, err := Tune(params.SPHINCSPlus192f, device.RTX4090, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.F != 2 {
		t.Errorf("F = %d, want 2", r.F)
	}
	if r.ThreadUtil != 0.75 {
		t.Errorf("U_T = %v, want 0.75", r.ThreadUtil)
	}
	if r.SharedUtil != 0.75 {
		t.Errorf("U_S = %v, want 0.75", r.SharedUtil)
	}
	if r.TreesPerSet != 3 || r.ThreadsPerSet != 768 {
		t.Errorf("N_tree/T_set = %d/%d, want 3/768", r.TreesPerSet, r.ThreadsPerSet)
	}
	if r.Relax {
		t.Error("192f must not use Relax-FORS")
	}
}

// TestRelaxTriggersFor256f checks the §III-B4 switch: 256f trees are 16 KB
// each, so three no longer fit the 48 KB static limit and Relax-FORS
// activates with L = 2 (one thread per leaf pair).
func TestRelaxTriggersFor256f(t *testing.T) {
	if !NeedsRelax(params.SPHINCSPlus256f, device.RTX4090) {
		t.Fatal("256f should require Relax-FORS on RTX 4090")
	}
	if NeedsRelax(params.SPHINCSPlus128f, device.RTX4090) ||
		NeedsRelax(params.SPHINCSPlus192f, device.RTX4090) {
		t.Fatal("128f/192f must not require Relax-FORS")
	}
	r, err := Tune(params.SPHINCSPlus256f, device.RTX4090, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Relax || r.LeavesPerThread != 2 {
		t.Fatalf("relax config = %v/L=%d, want relax L=2", r.Relax, r.LeavesPerThread)
	}
	if !r.DynamicShared {
		t.Error("relax mode should use the dynamic shared-memory limit")
	}
	// Each relaxed tree holds t/2 x n = 8 KB in shared memory (paper Fig. 4
	// "Half Used / Half Saved").
	perTree := r.SharedBytesPerSet / r.TreesPerSet
	if perTree != 8*1024 {
		t.Errorf("relaxed per-tree footprint = %d, want 8KB", perTree)
	}
	if r.SharedBytesTotal > device.RTX4090.MaxSharedMemPerBlock {
		t.Errorf("fused footprint %d exceeds opt-in limit", r.SharedBytesTotal)
	}
	// All 35 trees must be covered.
	if r.TreesPerSet*r.F*r.Passes < 35 {
		t.Errorf("coverage: %d trees/set x F=%d x %d passes < 35",
			r.TreesPerSet, r.F, r.Passes)
	}
}

// TestCandidatesRanked verifies the argmin(sync, -U_T, -U_S) ordering.
func TestCandidatesRanked(t *testing.T) {
	r, err := Tune(params.SPHINCSPlus128f, device.RTX4090, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Candidates) < 2 {
		t.Skip("not enough candidates to compare")
	}
	for i := 1; i < len(r.Candidates); i++ {
		a, b := r.Candidates[i-1], r.Candidates[i]
		if a.SyncScore > b.SyncScore {
			t.Fatalf("candidates out of order at %d: sync %v > %v", i, a.SyncScore, b.SyncScore)
		}
		if a.SyncScore == b.SyncScore && a.ThreadUtil < b.ThreadUtil {
			t.Fatalf("candidates out of order at %d: U_T %v < %v", i, a.ThreadUtil, b.ThreadUtil)
		}
	}
}

// TestAlphaFiltersLowUtilization: with a high alpha no low-occupancy
// configuration survives; with alpha near zero, more candidates appear.
func TestAlphaFiltersLowUtilization(t *testing.T) {
	strict, err := Tune(params.SPHINCSPlus128f, device.RTX4090, Options{Alpha: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Tune(params.SPHINCSPlus128f, device.RTX4090, Options{Alpha: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(loose.Candidates) <= len(strict.Candidates) {
		t.Fatalf("loose alpha found %d candidates, strict %d",
			len(loose.Candidates), len(strict.Candidates))
	}
	for _, c := range strict.Candidates {
		if c.ThreadUtil < 0.6 {
			t.Fatalf("candidate below alpha survived: %+v", c)
		}
	}
}

// TestCrossArchitectureFeasibility runs the tuner on every catalog device
// and -f set: a feasible configuration must exist everywhere (the paper
// extends HERO-Sign to all six GPUs in §IV-F).
func TestCrossArchitectureFeasibility(t *testing.T) {
	for _, d := range device.All() {
		for _, p := range params.FastSets() {
			r, err := Tune(p, d, Options{})
			if err != nil {
				t.Errorf("%s on %s: %v", p.Name, d.Name, err)
				continue
			}
			if r.ThreadsPerSet > d.MaxThreadsPerBlock {
				t.Errorf("%s on %s: threads %d exceed device", p.Name, d.Name, r.ThreadsPerSet)
			}
			limit := d.StaticSharedMemPerBlock
			if r.DynamicShared {
				limit = d.MaxSharedMemPerBlock
			}
			if r.SharedBytesTotal > limit {
				t.Errorf("%s on %s: shared %d exceeds limit %d",
					p.Name, d.Name, r.SharedBytesTotal, limit)
			}
		}
	}
}

// TestSmallSetsEitherTuneOrFailCleanly covers the -s parameter sets: large
// FORS trees may need deeper relax folding; the tuner must either produce a
// consistent configuration or a clear error, never panic.
func TestSmallSetsEitherTuneOrFailCleanly(t *testing.T) {
	for _, p := range []*params.Params{params.SPHINCSPlus128s, params.SPHINCSPlus192s, params.SPHINCSPlus256s} {
		r, err := Tune(p, device.RTX4090, Options{})
		if err != nil {
			t.Logf("%s: %v (acceptable)", p.Name, err)
			continue
		}
		if r.LeavesPerThread < 2 {
			t.Errorf("%s: expected relax folding, got L=%d", p.Name, r.LeavesPerThread)
		}
		if r.TreesPerSet*r.F*r.Passes < p.K {
			t.Errorf("%s: configuration does not cover k=%d trees", p.Name, p.K)
		}
	}
}
