// Package tuner implements HERO-Sign's offline Auto Tree Tuning search
// (paper Algorithm 1): given the FORS geometry (k, log2 t, n) and the
// target GPU's shared-memory budget, it enumerates feasible
// (threads-per-Set, fusion-factor) configurations, filters them with the
// paper's heuristics, and ranks them by argmin(sync, −U_T, −U_S).
//
// The tuner also decides when to switch to the Relax-FORS model (§III-B4):
// when so few full trees fit per block that fusion degenerates, each thread
// generates L leaves privately in a register Relax Buffer and writes only
// the level-log2(L) node to shared memory, halving (or better) the
// footprint per tree.
package tuner

import (
	"fmt"
	"sort"

	"herosign/internal/gpu/device"
	"herosign/internal/spx/params"
)

// DefaultAlpha is the thread-utilization floor α of Algorithm 1 (line 18).
// The paper notes α is architecture-dependent; 0.6 reproduces the published
// RTX 4090 search results.
const DefaultAlpha = 0.6

// MaxRelaxBufferBytes bounds the per-thread register Relax Buffer (the
// paper's R_t threshold): L·n bytes must stay within it to avoid spills.
const MaxRelaxBufferBytes = 128

// Options control the search.
type Options struct {
	// Alpha is the minimum thread utilization; zero selects DefaultAlpha.
	Alpha float64
	// ForceRelax forces the Relax-FORS model regardless of the heuristic.
	ForceRelax bool
	// MaxThreads caps threads per block; zero selects the device limit.
	MaxThreads int
}

// Candidate is one feasible configuration from the search.
type Candidate struct {
	ThreadsPerSet int     // T_set
	TreesPerSet   int     // N_tree
	F             int     // fused Sets
	ThreadUtil    float64 // U_T
	SharedUtil    float64 // U_S
	SyncScore     float64 // synchronization points after fusion
}

// Result is the selected configuration plus the candidate set.
type Result struct {
	Candidate

	// Relax is true when the Relax-FORS model is active.
	Relax bool
	// LeavesPerThread is 1 without Relax, else the L leaves each thread
	// folds privately before touching shared memory.
	LeavesPerThread int
	// SharedBytesPerSet is the logical shared-memory footprint of one Set.
	SharedBytesPerSet int
	// SharedBytesTotal is the logical footprint of the fused block
	// (F × SharedBytesPerSet), before bank padding.
	SharedBytesTotal int
	// DynamicShared reports whether the footprint needs the opt-in limit.
	DynamicShared bool
	// Passes is the number of sequential fused passes needed to cover all
	// k trees: ceil(k / (N_tree · F)).
	Passes int

	Candidates []Candidate // ranked, best first
}

// String summarizes the chosen configuration.
func (r *Result) String() string {
	mode := "standard"
	if r.Relax {
		mode = fmt.Sprintf("relax(L=%d)", r.LeavesPerThread)
	}
	return fmt.Sprintf("T_set=%d N_tree=%d F=%d U_T=%.4f U_S=%.4f sync=%.1f mode=%s",
		r.ThreadsPerSet, r.TreesPerSet, r.F, r.ThreadUtil, r.SharedUtil, r.SyncScore, mode)
}

// NeedsRelax reports the paper's switching heuristic (§III-B4): the Relax
// model is used when fewer than three full trees can run in parallel per
// block, whether the binding constraint is threads (256f: 512-leaf trees
// allow at most two per 1024-thread block) or static shared memory.
func NeedsRelax(p *params.Params, d *device.Device) bool {
	byThreads := d.MaxThreadsPerBlock / p.T
	byMem := d.StaticSharedMemPerBlock / (p.T * p.N)
	trees := byThreads
	if byMem < trees {
		trees = byMem
	}
	return trees < 3
}

// Tune runs Algorithm 1 for the parameter set on the device.
func Tune(p *params.Params, d *device.Device, opts Options) (*Result, error) {
	alpha := opts.Alpha
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	tMax := opts.MaxThreads
	if tMax == 0 || tMax > d.MaxThreadsPerBlock {
		tMax = d.MaxThreadsPerBlock
	}

	relax := opts.ForceRelax || NeedsRelax(p, d)
	leavesPerThread := 1
	threadsPerTree := p.T // T_min: one thread per leaf
	nodeBytesPerTree := p.T * p.N
	sMax := d.StaticSharedMemPerBlock
	dynamic := false
	syncLevels := p.LogT

	if relax {
		// Fold L leaves per thread until a tree's threads fit a block and
		// its shared footprint allows fusion, bounded by the register
		// budget R_t.
		l := 2
		for {
			if l*p.N > MaxRelaxBufferBytes {
				return nil, fmt.Errorf(
					"tuner: %s does not fit the Relax buffer budget on %s (t=%d, n=%d)",
					p.Name, d.Name, p.T, p.N)
			}
			if p.T/l <= tMax && (p.T/l)*p.N <= d.MaxSharedMemPerBlock {
				break
			}
			l *= 2
		}
		leavesPerThread = l
		threadsPerTree = p.T / l
		nodeBytesPerTree = (p.T / l) * p.N
		sMax = d.MaxSharedMemPerBlock
		dynamic = true
		syncLevels = p.LogT - log2(l)
	}

	if threadsPerTree > tMax {
		return nil, fmt.Errorf("tuner: one %s tree needs %d threads > block limit %d",
			p.Name, threadsPerTree, tMax)
	}

	// The FreeBank padding inserts one 4-byte bank per 128-byte row
	// (1/32 overhead); configurations must leave that headroom so the
	// padded footprint still fits the hardware limit. Utilizations are
	// still reported against the raw limit, as the paper does.
	sEffective := sMax / 33 * 32

	var cands []Candidate
	for tSet := threadsPerTree; tSet <= tMax; tSet += threadsPerTree {
		nTree := tSet / threadsPerTree
		if nTree > p.K {
			break
		}
		sSet := nTree * nodeBytesPerTree
		if sSet > sEffective {
			continue
		}
		fMax := minInt(sEffective/sSet, p.K/nTree)
		for f := 1; f <= fMax; f++ {
			tUsed := tSet
			sUsed := f * sSet
			if tUsed > tMax || sUsed > sEffective {
				continue
			}
			uT := float64(tUsed) / float64(tMax)
			uS := float64(sUsed) / float64(sMax)
			if (uT == 1 && uS == 1) || uT < alpha {
				continue
			}
			sync := float64(syncLevels) * ceilDiv(p.K, nTree) / float64(f)
			cands = append(cands, Candidate{
				ThreadsPerSet: tSet, TreesPerSet: nTree, F: f,
				ThreadUtil: uT, SharedUtil: uS, SyncScore: sync,
			})
		}
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("tuner: no feasible configuration for %s on %s (alpha=%.2f)",
			p.Name, d.Name, alpha)
	}

	sort.SliceStable(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.SyncScore != b.SyncScore {
			return a.SyncScore < b.SyncScore
		}
		if a.ThreadUtil != b.ThreadUtil {
			return a.ThreadUtil > b.ThreadUtil
		}
		if a.SharedUtil != b.SharedUtil {
			return a.SharedUtil > b.SharedUtil
		}
		// Deterministic tie-break: fewer fused sets first.
		return a.F < b.F
	})

	best := cands[0]
	r := &Result{
		Candidate:         best,
		Relax:             relax,
		LeavesPerThread:   leavesPerThread,
		SharedBytesPerSet: best.TreesPerSet * nodeBytesPerTree,
		DynamicShared:     dynamic,
		Passes:            int(ceilDiv(p.K, best.TreesPerSet*best.F)),
		Candidates:        cands,
	}
	r.SharedBytesTotal = best.F * r.SharedBytesPerSet
	return r, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func ceilDiv(a, b int) float64 { return float64((a + b - 1) / b) }

func log2(x int) int {
	n := 0
	for 1<<uint(n+1) <= x {
		n++
	}
	return n
}
