package core

import (
	"fmt"

	"herosign/internal/spx"
	"herosign/internal/spx/hashes"
	"herosign/internal/spx/params"
)

// Job is the per-message signing state shared by the three kernels. The
// host-side prologue (randomizer, message digest, index extraction — the
// precomputation highlighted in the paper's Fig. 2) runs at job creation;
// the kernels then fill the signature buffer and the intermediate roots.
type Job struct {
	P   *params.Params
	Msg []byte

	// Digest-derived selectors.
	R       []byte
	MD      []byte
	TreeIdx uint64
	LeafIdx uint32
	Indices []uint32 // FORS leaf selections, one per tree

	// Per-layer hypertree selectors (tree/leaf index per layer, bottom-up).
	LayerTree []uint64
	LayerLeaf []uint32

	// Outputs.
	Sig    []byte   // the full signature buffer
	ForsPK []byte   // filled by FORS_Sign
	Roots  [][]byte // subtree root per layer, filled by TREE_Sign
}

// NewJob performs the host-side prologue for one message.
func NewJob(sk *spx.PrivateKey, msg, optRand []byte) (*Job, error) {
	p := sk.Params
	if optRand == nil {
		optRand = sk.Seed
	}
	if len(optRand) != p.N {
		return nil, fmt.Errorf("core: OptRand must be %d bytes", p.N)
	}
	j := &Job{
		P:      p,
		Msg:    append([]byte(nil), msg...),
		Sig:    make([]byte, p.SigBytes),
		ForsPK: make([]byte, p.N),
		Roots:  make([][]byte, p.D),
	}
	for i := range j.Roots {
		j.Roots[i] = make([]byte, p.N)
	}

	j.R = hashes.PRFMsg(p, sk.SKPRF, optRand, msg)
	copy(j.Sig[:p.N], j.R)

	digest := hashes.HMsg(p, j.R, sk.Seed, sk.Root, msg)
	j.MD, j.TreeIdx, j.LeafIdx = hashes.SplitDigest(p, digest)
	j.MD = append([]byte(nil), j.MD...)
	j.Indices = hashes.MessageToIndices(p, j.MD)

	// Per-layer index walk (paper Fig. 2 snippet).
	j.LayerTree = make([]uint64, p.D)
	j.LayerLeaf = make([]uint32, p.D)
	tree, leaf := j.TreeIdx, j.LeafIdx
	for layer := 0; layer < p.D; layer++ {
		j.LayerTree[layer] = tree
		j.LayerLeaf[layer] = leaf
		leaf = uint32(tree & ((1 << uint(p.TreeHeight)) - 1))
		tree >>= uint(p.TreeHeight)
	}
	return j, nil
}

// ForsSig returns the FORS region of the signature buffer.
func (j *Job) ForsSig() []byte {
	return j.Sig[j.P.N : j.P.N+j.P.ForsBytes]
}

// ForsItem returns tree i's signature item (revealed leaf secret followed by
// the authentication path).
func (j *Job) ForsItem(i int) []byte {
	itemBytes := (j.P.LogT + 1) * j.P.N
	fs := j.ForsSig()
	return fs[i*itemBytes : (i+1)*itemBytes]
}

// LayerSig returns layer `layer`'s XMSS region (WOTS+ signature followed by
// the authentication path).
func (j *Job) LayerSig(layer int) []byte {
	p := j.P
	base := p.N + p.ForsBytes + layer*p.XMSSBytes
	return j.Sig[base : base+p.XMSSBytes]
}

// WotsSig returns the WOTS+ signature region of a layer.
func (j *Job) WotsSig(layer int) []byte { return j.LayerSig(layer)[:j.P.WOTSBytes] }

// AuthPath returns the authentication-path region of a layer.
func (j *Job) AuthPath(layer int) []byte { return j.LayerSig(layer)[j.P.WOTSBytes:] }

// WotsMessage returns the value layer `layer`'s WOTS+ key pair signs: the
// FORS public key at layer 0, otherwise the subtree root below.
func (j *Job) WotsMessage(layer int) []byte {
	if layer == 0 {
		return j.ForsPK
	}
	return j.Roots[layer-1]
}
