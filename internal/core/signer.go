package core

import (
	"fmt"

	"herosign/internal/core/tuner"
	"herosign/internal/gpu/device"
	"herosign/internal/gpu/sched"
	"herosign/internal/gpu/sim"
	"herosign/internal/ptx"
	"herosign/internal/spx"
	"herosign/internal/spx/hashes"
	"herosign/internal/spx/params"
)

// Config configures a Signer.
type Config struct {
	Params   *params.Params
	Device   *device.Device
	Features Features

	// SubBatch is the number of messages per launch group when scheduling
	// streams/graphs. Zero selects the paper's preferred 64 (§IV-E1);
	// the baseline model overrides this with a much finer granularity.
	SubBatch int
	// Streams is the number of concurrent streams (graph lanes). Zero
	// selects 4.
	Streams int
	// Alpha is the Tree Tuning search's utilization floor; zero selects the
	// tuner default.
	Alpha float64
	// ProbeBlocks is the profile-batch size used for adaptive PTX selection;
	// zero selects 4.
	ProbeBlocks int
}

// Signer signs message batches on the simulated GPU with the configured
// optimization stack.
type Signer struct {
	cfg  Config
	tune *tuner.Result
	sel  map[ptx.Kernel]ptx.Variant
}

// New builds a Signer: it runs the offline Tree Tuning search when fusion is
// enabled (the tuner decides standard vs Relax-FORS), and defers PTX branch
// selection to the first batch (profiling-driven, §III-C2).
func New(cfg Config) (*Signer, error) {
	if cfg.Params == nil || cfg.Device == nil {
		return nil, fmt.Errorf("core: Params and Device are required")
	}
	if cfg.SubBatch == 0 {
		cfg.SubBatch = 64
	}
	if cfg.Streams == 0 {
		cfg.Streams = 8
	}
	if cfg.ProbeBlocks == 0 {
		cfg.ProbeBlocks = 4
	}
	s := &Signer{cfg: cfg}
	if cfg.Features.Fusion {
		t, err := tuner.Tune(cfg.Params, cfg.Device, tuner.Options{Alpha: cfg.Alpha})
		if err != nil {
			return nil, err
		}
		s.tune = t
	}
	return s, nil
}

// Tuning returns the Tree Tuning result (nil when fusion is disabled).
func (s *Signer) Tuning() *tuner.Result { return s.tune }

// Params returns the parameter set the signer was built for.
func (s *Signer) Params() *params.Params { return s.cfg.Params }

// Device returns the simulated device the signer targets.
func (s *Signer) Device() *device.Device { return s.cfg.Device }

// SubBatch returns the launch-group granularity after defaulting.
func (s *Signer) SubBatch() int { return s.cfg.SubBatch }

// Selection returns the adaptive PTX/native choice per kernel, computing it
// on demand with a probe batch (Table V's content). Without the PTX feature
// every kernel reports native.
func (s *Signer) Selection(sk *spx.PrivateKey) (map[ptx.Kernel]ptx.Variant, error) {
	if !s.cfg.Features.PTX {
		return map[ptx.Kernel]ptx.Variant{
			ptx.FORSSign: ptx.Native, ptx.TREESign: ptx.Native, ptx.WOTSSign: ptx.Native,
		}, nil
	}
	if s.sel != nil {
		return s.sel, nil
	}
	probeMsgs := make([][]byte, s.cfg.ProbeBlocks)
	for i := range probeMsgs {
		probeMsgs[i] = []byte(fmt.Sprintf("herosign-probe-%d", i))
	}
	jobs, baseCtx, err := s.prepareJobs(sk, probeMsgs, nil)
	if err != nil {
		return nil, err
	}
	sel := make(map[ptx.Kernel]ptx.Variant, 3)
	eng := sim.New(s.cfg.Device)
	for _, k := range ptx.Kernels() {
		best, bestDur := ptx.Native, 0.0
		for _, v := range []ptx.Variant{ptx.Native, ptx.PTX} {
			ks := &kernelSet{
				p: s.cfg.Params, dev: s.cfg.Device, feats: s.cfg.Features,
				tune: s.tune, baseCtx: baseCtx, jobs: jobs, blocks: len(jobs),
				sel: map[ptx.Kernel]ptx.Variant{k: v},
			}
			l, err := s.buildKernel(ks, k)
			if err != nil {
				return nil, err
			}
			st, err := eng.Run(l)
			if err != nil {
				return nil, err
			}
			if v == ptx.Native || st.DurationUs < bestDur {
				best, bestDur = v, st.DurationUs
			}
		}
		sel[k] = best
	}
	s.sel = sel
	return sel, nil
}

func (s *Signer) buildKernel(ks *kernelSet, k ptx.Kernel) (*sim.Launch, error) {
	switch k {
	case ptx.FORSSign:
		return ks.forsLaunch()
	case ptx.TREESign:
		return ks.treeLaunch()
	case ptx.WOTSSign:
		return ks.wotsLaunch()
	}
	return nil, fmt.Errorf("core: unknown kernel %v", k)
}

// prepareJobs runs the host-side prologue for every message.
func (s *Signer) prepareJobs(sk *spx.PrivateKey, msgs [][]byte, optRand []byte) ([]*Job, *hashes.Ctx, error) {
	if sk.Params != s.cfg.Params {
		return nil, nil, fmt.Errorf("core: key parameter set %s does not match signer %s",
			sk.Params.Name, s.cfg.Params.Name)
	}
	jobs := make([]*Job, len(msgs))
	for i, m := range msgs {
		j, err := NewJob(sk, m, optRand)
		if err != nil {
			return nil, nil, err
		}
		jobs[i] = j
	}
	baseCtx := hashes.NewCtx(sk.Params, sk.Seed, sk.SKSeed)
	return jobs, baseCtx, nil
}

// BatchResult reports one batch execution.
type BatchResult struct {
	Sigs [][]byte // nil entries when the engine sampled (timing-only runs)

	Kernels  map[string]*sim.Stats // keyed by kernel name
	Timeline sched.Timeline

	// ThroughputKOPS is end-to-end kilo-signatures per second including
	// scheduling and launch overhead.
	ThroughputKOPS float64
	// KernelKOPS is per-kernel throughput (Table VIII's metric): batch size
	// over the kernel's exclusive duration.
	KernelKOPS map[string]float64

	LaunchOverheadUs float64
	IdleUs           float64
	TotalUs          float64
}

// SignBatch signs every message functionally (full execution) and returns
// signatures plus modeled performance.
func (s *Signer) SignBatch(sk *spx.PrivateKey, msgs [][]byte) (*BatchResult, error) {
	return s.runBatch(sk, msgs, 0)
}

// MeasureBatch runs the batch with functional execution sampled down to
// sampleBlocks blocks (counters are scaled; signatures are not returned).
// Use it for large timing sweeps where executing every block functionally
// would be wasteful.
func (s *Signer) MeasureBatch(sk *spx.PrivateKey, batch int, sampleBlocks int) (*BatchResult, error) {
	if sampleBlocks <= 0 {
		sampleBlocks = 4
	}
	n := batch
	if n > sampleBlocks {
		n = sampleBlocks
	}
	msgs := make([][]byte, n)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("herosign-measure-%d", i))
	}
	res, err := s.runBatchSized(sk, msgs, batch, sampleBlocks)
	if err != nil {
		return nil, err
	}
	res.Sigs = nil
	return res, nil
}

func (s *Signer) runBatch(sk *spx.PrivateKey, msgs [][]byte, sample int) (*BatchResult, error) {
	return s.runBatchSized(sk, msgs, len(msgs), sample)
}

func (s *Signer) runBatchSized(sk *spx.PrivateKey, msgs [][]byte, gridBlocks, sample int) (*BatchResult, error) {
	if len(msgs) == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	sel, err := s.Selection(sk)
	if err != nil {
		return nil, err
	}
	jobs, baseCtx, err := s.prepareJobs(sk, msgs, nil)
	if err != nil {
		return nil, err
	}
	ks := &kernelSet{
		p: s.cfg.Params, dev: s.cfg.Device, feats: s.cfg.Features,
		tune: s.tune, sel: sel, baseCtx: baseCtx, jobs: jobs, blocks: gridBlocks,
	}
	eng := &sim.Engine{Dev: s.cfg.Device, SampleBlocks: sample}

	stats := make(map[string]*sim.Stats, 3)
	// Functional execution order respects the data dependencies:
	// WOTS+_Sign consumes the FORS pk and subtree roots.
	for _, k := range []ptx.Kernel{ptx.FORSSign, ptx.TREESign, ptx.WOTSSign} {
		l, err := s.buildKernel(ks, k)
		if err != nil {
			return nil, err
		}
		st, err := eng.Run(l)
		if err != nil {
			return nil, err
		}
		stats[l.Name] = st
	}

	res := &BatchResult{Kernels: stats, KernelKOPS: make(map[string]float64, 3)}
	for name, st := range stats {
		if st.DurationUs > 0 {
			res.KernelKOPS[name] = float64(gridBlocks) / (st.DurationUs / 1e6) / 1000
		}
	}

	res.Timeline = s.schedule(gridBlocks, stats)
	res.TotalUs = res.Timeline.TotalUs
	res.LaunchOverheadUs = res.Timeline.LaunchOverheadUs
	res.IdleUs = res.Timeline.IdleUs
	if res.TotalUs > 0 {
		res.ThroughputKOPS = float64(gridBlocks) / (res.TotalUs / 1e6) / 1000
	}

	if sample == 0 {
		res.Sigs = make([][]byte, len(jobs))
		for i, j := range jobs {
			res.Sigs[i] = j.Sig
		}
	}
	return res, nil
}

// schedule builds the launch timeline for the batch: the batch splits into
// SubBatch-sized groups; each group launches FORS and TREE concurrently and
// WOTS after both (the dependency DAG of §III-F, Fig. 10).
//
// The baseline model submits work in very small groups, reproducing
// TCAS-style fine-grained stream submission whose per-launch host overhead
// dominates (the paper's Fig. 12 reports milliseconds of launch latency
// for the baseline); HERO-Sign submits SubBatch-sized groups over
// non-blocking streams, or a single instantiated task graph when the Graph
// feature is on.
func (s *Signer) schedule(batch int, stats map[string]*sim.Stats) sched.Timeline {
	d := s.cfg.Device
	// Graph mode changes the dispatch mechanism, not the submission
	// structure, so it does not make a baseline configuration "HERO".
	hero := s.cfg.Features.MMTP || s.cfg.Features.Fusion || s.cfg.Features.PTX ||
		s.cfg.Features.HybridMem || s.cfg.Features.FreeBank

	group := s.cfg.SubBatch
	streamsAvail := s.cfg.Streams
	if !hero {
		// The baseline slices the batch across twice its stream count.
		group = (batch + 2*streamsAvail - 1) / (2 * streamsAvail)
	}
	if group > batch {
		group = batch
	}
	if group < 1 {
		group = 1
	}
	nGroups := (batch + group - 1) / group

	// concurrent is how many blocks the device can run at once for a
	// kernel; a group's solo duration is its share of the full batch's
	// duration in whole waves, and its utilization is the device fraction
	// those blocks cover. remaining-work conservation: solo × util sums to
	// the full-batch device work across groups.
	concurrent := func(st *sim.Stats) int {
		res := st.Occ.ResidentBlocksPerSM
		if res < 1 {
			res = 1
		}
		return d.SMs * res
	}
	util := func(st *sim.Stats, blocks int) float64 {
		u := float64(blocks) / float64(concurrent(st))
		if u > 1 {
			return 1
		}
		return u
	}
	soloDur := func(st *sim.Stats, blocks int) float64 {
		c := concurrent(st)
		gWaves := (blocks + c - 1) / c
		fullWaves := (batch + c - 1) / c
		return st.DurationUs * float64(gWaves) / float64(fullWaves)
	}

	fors, tree, wots := stats["FORS_Sign"], stats["TREE_Sign"], stats["WOTS+_Sign"]
	var items []sched.Item
	streams := s.cfg.Streams

	if !hero {
		// TCAS-style submission: each stream owns a batch slice and chains
		// FORS -> one TREE launch per hypertree layer -> WOTS serially
		// (the baseline does not exploit the FORS/TREE independence that
		// HERO-Sign's task graph builds on, and its per-layer merkle_sign
		// launches multiply the host launch count — the paper's Fig. 12
		// measures milliseconds of baseline launch latency).
		for g := 0; g < nGroups; g++ {
			blocks := group
			if g == nGroups-1 {
				blocks = batch - g*group
			}
			stream := g % streams
			items = append(items, sched.Item{
				Name: "FORS_Sign", DurationUs: soloDur(fors, blocks), Util: util(fors, blocks),
				Stream: stream,
			})
			perLayer := soloDur(tree, blocks) / float64(s.cfg.Params.D)
			for layer := 0; layer < s.cfg.Params.D; layer++ {
				items = append(items, sched.Item{
					Name: "TREE_Sign", DurationUs: perLayer, Util: util(tree, blocks),
					Stream: stream,
				})
			}
			items = append(items, sched.Item{
				Name: "WOTS+_Sign", DurationUs: soloDur(wots, blocks), Util: util(wots, blocks),
				Stream: stream,
			})
		}
		mode := sched.Streams
		if s.cfg.Features.Graph {
			mode = sched.Graph
		}
		return sched.Run(d, items, mode)
	}

	for g := 0; g < nGroups; g++ {
		blocks := group
		if g == nGroups-1 {
			blocks = batch - g*group
		}
		base := len(items)
		items = append(items, sched.Item{
			Name: "FORS_Sign", DurationUs: soloDur(fors, blocks), Util: util(fors, blocks),
			Stream: (2 * g) % streams,
		})
		items = append(items, sched.Item{
			Name: "TREE_Sign", DurationUs: soloDur(tree, blocks), Util: util(tree, blocks),
			Stream: (2*g + 1) % streams,
		})
		items = append(items, sched.Item{
			Name: "WOTS+_Sign", DurationUs: soloDur(wots, blocks), Util: util(wots, blocks),
			Stream: (2 * g) % streams, Deps: []int{base, base + 1},
		})
	}

	mode := sched.Streams
	if s.cfg.Features.Graph {
		mode = sched.Graph
	}
	return sched.Run(d, items, mode)
}
