package core

import (
	"testing"

	"herosign/internal/spx"
	"herosign/internal/spx/params"
)

// TestVerifyBatchAgreesWithReference: the GPU-simulated verifier must
// accept exactly what spx.Verify accepts and reject what it rejects.
func TestVerifyBatchAgreesWithReference(t *testing.T) {
	p := params.SPHINCSPlus128f
	sk := testKey(t, p)
	s := signerFor(t, p, AllFeatures())

	msgs := testMsgs(4)
	res, err := s.SignBatch(sk, msgs)
	if err != nil {
		t.Fatal(err)
	}
	sigs := res.Sigs

	// Tamper with two of the four.
	sigs[1] = append([]byte(nil), sigs[1]...)
	sigs[1][100] ^= 1
	sigs[3] = append([]byte(nil), sigs[3]...)
	sigs[3][p.SigBytes-1] ^= 0x80

	vres, err := s.VerifyBatch(&sk.PublicKey, msgs, sigs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range msgs {
		refOK := spx.Verify(&sk.PublicKey, msgs[i], sigs[i]) == nil
		if vres.OK[i] != refOK {
			t.Errorf("message %d: gpu=%t reference=%t", i, vres.OK[i], refOK)
		}
	}
	if vres.OK[0] != true || vres.OK[1] != false || vres.OK[2] != true || vres.OK[3] != false {
		t.Fatalf("verdicts = %v", vres.OK)
	}
	if vres.ThroughputKOPS <= 0 {
		t.Fatal("no modeled throughput")
	}
}

// TestVerifyBatchAllSets covers 192f and 256f geometry (chain counts above
// the block width exercise the chain loop).
func TestVerifyBatchAllSets(t *testing.T) {
	if testing.Short() {
		t.Skip("heavier sets skipped in -short")
	}
	for _, p := range []*params.Params{params.SPHINCSPlus192f, params.SPHINCSPlus256f} {
		sk := testKey(t, p)
		s := signerFor(t, p, AllFeatures())
		msgs := testMsgs(2)
		res, err := s.SignBatch(sk, msgs)
		if err != nil {
			t.Fatal(err)
		}
		vres, err := s.VerifyBatch(&sk.PublicKey, msgs, res.Sigs)
		if err != nil {
			t.Fatal(err)
		}
		for i, ok := range vres.OK {
			if !ok {
				t.Errorf("%s: valid signature %d rejected", p.Name, i)
			}
		}
	}
}

// TestVerifyBatchWrongKey: signatures under key A must fail under key B.
func TestVerifyBatchWrongKey(t *testing.T) {
	p := params.SPHINCSPlus128f
	skA := testKey(t, p)
	skB, err := spx.KeyFromSeeds(p,
		make([]byte, p.N), make([]byte, p.N), make([]byte, p.N))
	if err != nil {
		t.Fatal(err)
	}
	s := signerFor(t, p, AllFeatures())
	msgs := testMsgs(2)
	res, err := s.SignBatch(skA, msgs)
	if err != nil {
		t.Fatal(err)
	}
	vres, err := s.VerifyBatch(&skB.PublicKey, msgs, res.Sigs)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range vres.OK {
		if ok {
			t.Errorf("message %d verified under the wrong key", i)
		}
	}
}

// TestVerifyBatchValidation covers the input checks.
func TestVerifyBatchValidation(t *testing.T) {
	p := params.SPHINCSPlus128f
	sk := testKey(t, p)
	s := signerFor(t, p, AllFeatures())
	if _, err := s.VerifyBatch(&sk.PublicKey, testMsgs(2), [][]byte{{1}}); err == nil {
		t.Fatal("mismatched counts accepted")
	}
	if _, err := s.VerifyBatch(&sk.PublicKey, nil, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	bad := [][]byte{make([]byte, 10)}
	if _, err := s.VerifyBatch(&sk.PublicKey, testMsgs(1), bad); err == nil {
		t.Fatal("short signature accepted")
	}
	skWrong := testKey(t, params.SPHINCSPlus192f)
	if _, err := s.VerifyBatch(&skWrong.PublicKey, testMsgs(1), bad); err == nil {
		t.Fatal("mismatched parameter set accepted")
	}
}
