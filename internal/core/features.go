// Package core implements HERO-Sign itself: the three SPHINCS+ component
// kernels (FORS_Sign, TREE_Sign, WOTS+_Sign) expressed as simulated-GPU
// block programs, plus the paper's optimization stack — multiple-Merkle-tree
// parallelization (MMTP), FORS Fusion driven by the Auto Tree Tuning search,
// the Relax-FORS model, adaptive PTX/native branch selection, hybrid memory
// placement, generalized bank-conflict padding, and task-graph batch
// execution.
//
// Every configuration of the engine produces signatures byte-identical to
// the pure-Go reference (internal/spx); the integration tests enforce this.
package core

// Features selects which HERO-Sign optimizations are active. The zero value
// is the TCAS-SPHINCSp-style baseline behaviour.
type Features struct {
	// MMTP computes multiple Merkle trees in parallel inside one block
	// (§III-A). Without it, FORS subtrees are processed one at a time, as in
	// the baseline.
	MMTP bool
	// Fusion applies the Tree Tuning search result to fuse consecutive Sets
	// (§III-B); implies MMTP. For parameter sets where the tuner selects the
	// Relax-FORS model, Fusion enables it too.
	Fusion bool
	// PTX enables adaptive per-kernel selection between the native and
	// PTX-optimized SHA-256 branches (§III-C). Without it every kernel uses
	// the native branch.
	PTX bool
	// HybridMem places read-only seed material in constant memory and
	// vectorizes residual global accesses (§III-D).
	HybridMem bool
	// FreeBank enables the generalized shared-memory padding (§III-E).
	FreeBank bool
	// Graph batches kernel launches through a task graph (§III-F). It
	// affects scheduling only, never kernel content.
	Graph bool
}

// Baseline returns the feature set modeling the TCAS-SPHINCSp baseline.
func Baseline() Features { return Features{} }

// AllFeatures returns the full HERO-Sign configuration.
func AllFeatures() Features {
	return Features{MMTP: true, Fusion: true, PTX: true, HybridMem: true, FreeBank: true, Graph: true}
}

// Step is one stage of the paper's Figure 11 optimization walk.
type Step struct {
	Name  string
	Feats Features
}

// OptimizationSteps returns the cumulative stages of Figure 11:
// Baseline → MMTP → +FS → +PTX → +HybridME → +FreeBank.
// (Graph execution is evaluated separately in Figure 12.)
func OptimizationSteps() []Step {
	return []Step{
		{Name: "Baseline", Feats: Features{}},
		{Name: "MMTP", Feats: Features{MMTP: true}},
		{Name: "+FS", Feats: Features{MMTP: true, Fusion: true}},
		{Name: "+PTX", Feats: Features{MMTP: true, Fusion: true, PTX: true}},
		{Name: "+HybridME", Feats: Features{MMTP: true, Fusion: true, PTX: true, HybridMem: true}},
		{Name: "+FreeBank", Feats: Features{MMTP: true, Fusion: true, PTX: true, HybridMem: true, FreeBank: true}},
	}
}
