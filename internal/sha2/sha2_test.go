package sha2

import (
	"bytes"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/sha512"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// TestSHA256KnownVectors checks the FIPS 180-4 example vectors.
func TestSHA256KnownVectors(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
		{"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
		{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
			"248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
	}
	for _, c := range cases {
		got := Sum256([]byte(c.in))
		if hex.EncodeToString(got[:]) != c.want {
			t.Errorf("Sum256(%q) = %x, want %s", c.in, got, c.want)
		}
	}
}

// TestSHA512KnownVectors checks the FIPS 180-4 example vectors.
func TestSHA512KnownVectors(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"abc", "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"},
		{"", "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e"},
	}
	for _, c := range cases {
		got := Sum512([]byte(c.in))
		if hex.EncodeToString(got[:]) != c.want {
			t.Errorf("Sum512(%q) = %x, want %s", c.in, got, c.want)
		}
	}
}

// TestSHA256MatchesStdlib hashes messages of every length 0..300 plus a set
// of large random messages and compares against crypto/sha256.
func TestSHA256MatchesStdlib(t *testing.T) {
	for n := 0; n <= 300; n++ {
		msg := make([]byte, n)
		for i := range msg {
			msg[i] = byte(i*7 + n)
		}
		got := Sum256(msg)
		want := sha256.Sum256(msg)
		if got != want {
			t.Fatalf("len=%d: got %x want %x", n, got, want)
		}
	}
	for _, n := range []int{1000, 4096, 65537} {
		msg := make([]byte, n)
		if _, err := rand.Read(msg); err != nil {
			t.Fatal(err)
		}
		got := Sum256(msg)
		want := sha256.Sum256(msg)
		if got != want {
			t.Fatalf("len=%d: got %x want %x", n, got, want)
		}
	}
}

// TestSHA512MatchesStdlib mirrors TestSHA256MatchesStdlib for SHA-512,
// covering the 128-byte block boundary region.
func TestSHA512MatchesStdlib(t *testing.T) {
	for n := 0; n <= 300; n++ {
		msg := make([]byte, n)
		for i := range msg {
			msg[i] = byte(i*13 + n)
		}
		got := Sum512(msg)
		want := sha512.Sum512(msg)
		if got != want {
			t.Fatalf("len=%d: got %x want %x", n, got, want)
		}
	}
}

// TestSHA256IncrementalSplits writes the same message in every 2-way split
// and verifies the digest is split-invariant.
func TestSHA256IncrementalSplits(t *testing.T) {
	msg := make([]byte, 257)
	for i := range msg {
		msg[i] = byte(i)
	}
	want := Sum256(msg)
	for cut := 0; cut <= len(msg); cut++ {
		d := New256()
		d.Write(msg[:cut])
		d.Write(msg[cut:])
		if !bytes.Equal(d.Sum(nil), want[:]) {
			t.Fatalf("cut=%d: digest mismatch", cut)
		}
	}
}

// TestSHA256SumIsIdempotent checks that Sum does not mutate hash state.
func TestSHA256SumIsIdempotent(t *testing.T) {
	d := New256()
	d.Write([]byte("hello "))
	s1 := d.Sum(nil)
	s2 := d.Sum(nil)
	if !bytes.Equal(s1, s2) {
		t.Fatal("Sum mutated state")
	}
	d.Write([]byte("world"))
	want := Sum256([]byte("hello world"))
	if !bytes.Equal(d.Sum(nil), want[:]) {
		t.Fatal("Write after Sum produced wrong digest")
	}
}

// TestSHA256Midstate verifies that snapshotting the chaining value after one
// block and resuming from it reproduces the full digest. This is the seeded
// midstate optimization SPHINCS+ implementations rely on (BlockPad(PK.seed)
// occupies exactly one block).
func TestSHA256Midstate(t *testing.T) {
	prefix := make([]byte, BlockSize256)
	for i := range prefix {
		prefix[i] = byte(i + 3)
	}
	suffix := []byte("the rest of the message")

	full := New256()
	full.Write(prefix)
	full.Write(suffix)
	want := full.Sum(nil)

	pre := New256()
	pre.Write(prefix)
	mid := pre.Midstate()

	resumed := New256()
	resumed.SetMidstate(mid, BlockSize256)
	resumed.Write(suffix)
	if !bytes.Equal(resumed.Sum(nil), want) {
		t.Fatal("midstate resume mismatch")
	}
}

// TestHMAC256MatchesStdlib cross-checks HMAC-SHA-256 against crypto/hmac for
// short, block-length, and over-length keys.
func TestHMAC256MatchesStdlib(t *testing.T) {
	keys := [][]byte{
		[]byte("k"),
		bytes.Repeat([]byte{0xaa}, 64),
		bytes.Repeat([]byte{0xbb}, 131),
		{},
	}
	msgs := [][]byte{
		[]byte(""),
		[]byte("what do ya want for nothing?"),
		bytes.Repeat([]byte{0xdd}, 500),
	}
	for _, k := range keys {
		for _, m := range msgs {
			got := HMAC256(k, m)
			mac := hmac.New(sha256.New, k)
			mac.Write(m)
			if !bytes.Equal(got[:], mac.Sum(nil)) {
				t.Fatalf("HMAC256 key=%d msg=%d mismatch", len(k), len(m))
			}
		}
	}
}

// TestHMAC512MatchesStdlib cross-checks HMAC-SHA-512 against crypto/hmac.
func TestHMAC512MatchesStdlib(t *testing.T) {
	k := bytes.Repeat([]byte{0x0b}, 20)
	m := []byte("Hi There")
	got := HMAC512(k, m)
	mac := hmac.New(sha512.New, k)
	mac.Write(m)
	if !bytes.Equal(got[:], mac.Sum(nil)) {
		t.Fatal("HMAC512 mismatch")
	}
}

// TestMGF1KnownLengths checks MGF1 output prefixes are consistent: the first
// k bytes of MGF1(seed, n) must equal MGF1(seed, k) for k <= n.
func TestMGF1KnownLengths(t *testing.T) {
	seed := []byte("mgf1 seed value")
	long := MGF1_256(seed, 200)
	for _, k := range []int{0, 1, 31, 32, 33, 64, 100, 199, 200} {
		short := MGF1_256(seed, k)
		if !bytes.Equal(short, long[:k]) {
			t.Fatalf("MGF1_256 prefix property violated at %d", k)
		}
	}
	long512 := MGF1_512(seed, 300)
	for _, k := range []int{1, 63, 64, 65, 128, 300} {
		if !bytes.Equal(MGF1_512(seed, k), long512[:k]) {
			t.Fatalf("MGF1_512 prefix property violated at %d", k)
		}
	}
}

// TestMGF1Vector checks a fixed MGF1-SHA256 output against the definition
// computed with the (already stdlib-validated) one-shot hash.
func TestMGF1Vector(t *testing.T) {
	seed := []byte{1, 2, 3, 4}
	want := sha256.Sum256(append(append([]byte{}, seed...), 0, 0, 0, 0))
	got := MGF1_256(seed, 32)
	if !bytes.Equal(got, want[:]) {
		t.Fatalf("MGF1_256 first block mismatch: %x vs %x", got, want)
	}
}

// TestCompressionBlocks256 exercises padding-boundary arithmetic.
func TestCompressionBlocks256(t *testing.T) {
	cases := map[int]int{
		0: 1, 1: 1, 55: 1, 56: 2, 63: 2, 64: 2, 119: 2, 120: 3, 128: 3,
	}
	for msgLen, want := range cases {
		if got := CompressionBlocks256(msgLen); got != want {
			t.Errorf("CompressionBlocks256(%d) = %d, want %d", msgLen, got, want)
		}
	}
}

// TestCompressionBlocks512 exercises SHA-512 padding-boundary arithmetic.
func TestCompressionBlocks512(t *testing.T) {
	cases := map[int]int{
		0: 1, 111: 1, 112: 2, 128: 2, 239: 2, 240: 3,
	}
	for msgLen, want := range cases {
		if got := CompressionBlocks512(msgLen); got != want {
			t.Errorf("CompressionBlocks512(%d) = %d, want %d", msgLen, got, want)
		}
	}
}

// TestQuickSHA256EqualsStdlib is a property-based cross-check against the
// standard library over random byte strings.
func TestQuickSHA256EqualsStdlib(t *testing.T) {
	f := func(msg []byte) bool {
		got := Sum256(msg)
		want := sha256.Sum256(msg)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSHA512EqualsStdlib is the SHA-512 property-based cross-check.
func TestQuickSHA512EqualsStdlib(t *testing.T) {
	f := func(msg []byte) bool {
		got := Sum512(msg)
		want := sha512.Sum512(msg)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIncrementalEqualsOneShot checks split-invariance as a property.
func TestQuickIncrementalEqualsOneShot(t *testing.T) {
	f := func(a, b, c []byte) bool {
		d := New256()
		d.Write(a)
		d.Write(b)
		d.Write(c)
		all := append(append(append([]byte{}, a...), b...), c...)
		want := Sum256(all)
		return bytes.Equal(d.Sum(nil), want[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSHA256Compress(b *testing.B) {
	buf := make([]byte, BlockSize256)
	var s State256 = iv256
	b.SetBytes(BlockSize256)
	for i := 0; i < b.N; i++ {
		compress256(&s, buf)
	}
}

func BenchmarkSHA256Sum1K(b *testing.B) {
	buf := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		Sum256(buf)
	}
}
