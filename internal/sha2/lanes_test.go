package sha2

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"testing"
)

func randStatesBlocks(t testing.TB, n int) ([]State256, [][BlockSize256]byte) {
	t.Helper()
	states := make([]State256, n)
	blocks := make([][BlockSize256]byte, n)
	for i := range states {
		var raw [32]byte
		if _, err := rand.Read(raw[:]); err != nil {
			t.Fatal(err)
		}
		for j := range states[i] {
			states[i][j] = uint32(raw[4*j])<<24 | uint32(raw[4*j+1])<<16 |
				uint32(raw[4*j+2])<<8 | uint32(raw[4*j+3])
		}
		if _, err := rand.Read(blocks[i][:]); err != nil {
			t.Fatal(err)
		}
	}
	return states, blocks
}

// TestCompressLanesMatchScalar: the interleaved 4- and 8-lane kernels must
// reproduce the scalar kernel bit-for-bit on random states and blocks.
func TestCompressLanesMatchScalar(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		states, blocks := randStatesBlocks(t, Lanes)
		want := make([]State256, Lanes)
		copy(want, states)
		for l := range want {
			compress256(&want[l], blocks[l][:])
		}

		s4 := make([]State256, Lanes)
		copy(s4, states)
		for l := 0; l < Lanes; l += 4 {
			Compress256x4((*[4]State256)(s4[l:l+4]), (*[4][BlockSize256]byte)(blocks[l:l+4]))
		}
		s8 := make([]State256, Lanes)
		copy(s8, states)
		Compress256x8((*[Lanes]State256)(s8), (*[Lanes][BlockSize256]byte)(blocks))

		for l := 0; l < Lanes; l++ {
			if s4[l] != want[l] {
				t.Fatalf("trial %d: x4 lane %d mismatch", trial, l)
			}
			if s8[l] != want[l] {
				t.Fatalf("trial %d: x8 lane %d mismatch", trial, l)
			}
		}
	}
}

// TestHasher256MatchesOneShot runs the reusable hasher (on whichever
// backend is active, then forced-portable) against crypto/sha256 across
// message lengths spanning several block boundaries.
func TestHasher256MatchesOneShot(t *testing.T) {
	run := func(t *testing.T) {
		var h Hasher256
		for n := 0; n <= 200; n += 7 {
			msg := make([]byte, n)
			for i := range msg {
				msg[i] = byte(i*3 + n)
			}
			h.Reset()
			h.Write(msg)
			var got [Size256]byte
			h.SumTrunc(got[:])
			want := sha256.Sum256(msg)
			if got != want {
				t.Fatalf("len=%d: %x != %x", n, got, want)
			}
		}
	}
	t.Run("default", run)
	t.Run("portable", func(t *testing.T) {
		prev := SetAccelerated(false)
		defer SetAccelerated(prev)
		run(t)
	})
}

// TestHasher256Midstate checks the seeded-midstate entry point: restarting
// from the state after one block must equal hashing the full message, on
// both backends, including truncated outputs.
func TestHasher256Midstate(t *testing.T) {
	prefix := make([]byte, BlockSize256)
	for i := range prefix {
		prefix[i] = byte(i ^ 0x5a)
	}
	pre := New256()
	pre.Write(prefix)
	mid := pre.Midstate()

	for _, accel := range []bool{true, false} {
		prev := SetAccelerated(accel)
		var h Hasher256
		for _, n := range []int{0, 1, 16, 22, 38, 55, 56, 64, 86, 130} {
			suffix := make([]byte, n)
			for i := range suffix {
				suffix[i] = byte(i + n)
			}
			h.Restart(&mid, BlockSize256)
			h.Write(suffix)
			var got [Size256]byte
			h.SumTrunc(got[:])
			want := sha256.Sum256(append(append([]byte{}, prefix...), suffix...))
			if got != want {
				t.Fatalf("accel=%v len=%d: midstate resume mismatch", accel, n)
			}
			var trunc [16]byte
			h.Restart(&mid, BlockSize256)
			h.Write(suffix)
			h.SumTrunc(trunc[:])
			if !bytes.Equal(trunc[:], want[:16]) {
				t.Fatalf("accel=%v len=%d: truncated sum mismatch", accel, n)
			}
		}
		SetAccelerated(prev)
	}
}

// TestSetAccelerated: disabling always works; enabling only when the
// self-check passed; the previous value round-trips.
func TestSetAccelerated(t *testing.T) {
	orig := Accelerated()
	defer SetAccelerated(orig)

	if prev := SetAccelerated(false); prev != orig {
		t.Fatalf("previous = %v, want %v", prev, orig)
	}
	if Accelerated() {
		t.Fatal("disable did not take effect")
	}
	SetAccelerated(true)
	if Accelerated() != accelAvailable {
		t.Fatalf("enable: got %v, available %v", Accelerated(), accelAvailable)
	}
}

// TestPutDigest256 checks truncated digest serialization against Sum.
func TestPutDigest256(t *testing.T) {
	msg := []byte("putdigest")
	want := Sum256(msg)
	var d Hash256
	d.Reset()
	d.Write(msg)
	// Reconstruct the final state by resuming a padded hash: use Hasher256
	// portable internals instead — simply compare via midstate of a full
	// block is overkill; check word serialization directly.
	s := State256{0x01020304, 0x05060708, 0x090a0b0c, 0x0d0e0f10,
		0x11121314, 0x15161718, 0x191a1b1c, 0x1d1e1f20}
	var out [32]byte
	PutDigest256(out[:], &s)
	wantBytes := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f, 0x10,
		0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17, 0x18, 0x19, 0x1a, 0x1b, 0x1c, 0x1d, 0x1e, 0x1f, 0x20}
	if !bytes.Equal(out[:], wantBytes) {
		t.Fatalf("PutDigest256 = %x", out)
	}
	var trunc [16]byte
	PutDigest256(trunc[:], &s)
	if !bytes.Equal(trunc[:], wantBytes[:16]) {
		t.Fatalf("truncated PutDigest256 = %x", trunc)
	}
	_ = want
}

// TestHasher256ZeroAlloc: the reusable hasher must not allocate per message
// on either backend.
func TestHasher256ZeroAlloc(t *testing.T) {
	for _, accel := range []bool{true, false} {
		prev := SetAccelerated(accel)
		var h Hasher256
		msg := make([]byte, 38)
		var out [16]byte
		pre := New256()
		var block [BlockSize256]byte
		pre.Write(block[:])
		mid := pre.Midstate()
		allocs := testing.AllocsPerRun(200, func() {
			h.Restart(&mid, BlockSize256)
			h.Write(msg)
			h.SumTrunc(out[:])
		})
		SetAccelerated(prev)
		if allocs != 0 {
			t.Fatalf("accel=%v: %v allocs per message", accel, allocs)
		}
	}
}

// --- wall-clock microbenchmarks (lane engine vs scalar) ------------------

func benchLaneInput(b *testing.B) (*[Lanes]State256, *[Lanes][BlockSize256]byte) {
	b.Helper()
	states, blocks := randStatesBlocks(b, Lanes)
	return (*[Lanes]State256)(states), (*[Lanes][BlockSize256]byte)(blocks)
}

// BenchmarkCompress256ScalarX8: eight scalar compressions, the baseline the
// lane kernels are measured against.
func BenchmarkCompress256ScalarX8(b *testing.B) {
	states, blocks := benchLaneInput(b)
	b.SetBytes(Lanes * BlockSize256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for l := 0; l < Lanes; l++ {
			compress256(&states[l], blocks[l][:])
		}
	}
}

// BenchmarkCompress256x8Portable: the interleaved portable lane kernel.
func BenchmarkCompress256x8Portable(b *testing.B) {
	states, blocks := benchLaneInput(b)
	b.SetBytes(Lanes * BlockSize256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compress256x8(states, blocks)
	}
}

// BenchmarkHasher256ThashShape measures the full seeded-midstate thash
// shape (restore + 38-byte message + finalize) on the active backend.
func BenchmarkHasher256ThashShape(b *testing.B) {
	var h Hasher256
	var block [BlockSize256]byte
	pre := New256()
	pre.Write(block[:])
	mid := pre.Midstate()
	msg := make([]byte, 38)
	var out [16]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Restart(&mid, BlockSize256)
		h.Write(msg)
		h.SumTrunc(out[:])
	}
}

// BenchmarkHasher256ThashShapePortable is the same shape forced onto the
// portable backend.
func BenchmarkHasher256ThashShapePortable(b *testing.B) {
	prev := SetAccelerated(false)
	defer SetAccelerated(prev)
	BenchmarkHasher256ThashShape(b)
}
