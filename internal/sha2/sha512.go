package sha2

import "encoding/binary"

// k512 holds the SHA-512 round constants.
var k512 = [80]uint64{
	0x428a2f98d728ae22, 0x7137449123ef65cd, 0xb5c0fbcfec4d3b2f, 0xe9b5dba58189dbbc,
	0x3956c25bf348b538, 0x59f111f1b605d019, 0x923f82a4af194f9b, 0xab1c5ed5da6d8118,
	0xd807aa98a3030242, 0x12835b0145706fbe, 0x243185be4ee4b28c, 0x550c7dc3d5ffb4e2,
	0x72be5d74f27b896f, 0x80deb1fe3b1696b1, 0x9bdc06a725c71235, 0xc19bf174cf692694,
	0xe49b69c19ef14ad2, 0xefbe4786384f25e3, 0x0fc19dc68b8cd5b5, 0x240ca1cc77ac9c65,
	0x2de92c6f592b0275, 0x4a7484aa6ea6e483, 0x5cb0a9dcbd41fbd4, 0x76f988da831153b5,
	0x983e5152ee66dfab, 0xa831c66d2db43210, 0xb00327c898fb213f, 0xbf597fc7beef0ee4,
	0xc6e00bf33da88fc2, 0xd5a79147930aa725, 0x06ca6351e003826f, 0x142929670a0e6e70,
	0x27b70a8546d22ffc, 0x2e1b21385c26c926, 0x4d2c6dfc5ac42aed, 0x53380d139d95b3df,
	0x650a73548baf63de, 0x766a0abb3c77b2a8, 0x81c2c92e47edaee6, 0x92722c851482353b,
	0xa2bfe8a14cf10364, 0xa81a664bbc423001, 0xc24b8b70d0f89791, 0xc76c51a30654be30,
	0xd192e819d6ef5218, 0xd69906245565a910, 0xf40e35855771202a, 0x106aa07032bbd1b8,
	0x19a4c116b8d2d0c8, 0x1e376c085141ab53, 0x2748774cdf8eeb99, 0x34b0bcb5e19b48a8,
	0x391c0cb3c5c95a63, 0x4ed8aa4ae3418acb, 0x5b9cca4f7763e373, 0x682e6ff3d6b2b8a3,
	0x748f82ee5defb2fc, 0x78a5636f43172f60, 0x84c87814a1f0ab72, 0x8cc702081a6439ec,
	0x90befffa23631e28, 0xa4506cebde82bde9, 0xbef9a3f7b2c67915, 0xc67178f2e372532b,
	0xca273eceea26619c, 0xd186b8c721c0c207, 0xeada7dd6cde0eb1e, 0xf57d4f7fee6ed178,
	0x06f067aa72176fba, 0x0a637dc5a2c898a6, 0x113f9804bef90dae, 0x1b710b35131c471b,
	0x28db77f523047d84, 0x32caab7b40c72493, 0x3c9ebe0a15c9bebc, 0x431d67c49c100d4c,
	0x4cc5d4becb3e42b6, 0x597f299cfc657e2a, 0x5fcb6fab3ad6faec, 0x6c44198c4a475817,
}

// iv512 is the SHA-512 initial hash state.
var iv512 = [8]uint64{
	0x6a09e667f3bcc908, 0xbb67ae8584caa73b, 0x3c6ef372fe94f82b, 0xa54ff53a5f1d36f1,
	0x510e527fade682d1, 0x9b05688c2b3e6c1f, 0x1f83d9abfb41bd6b, 0x5be0cd19137e2179,
}

// State512 is a raw SHA-512 chaining state.
type State512 [8]uint64

// Hash512 is an incremental SHA-512 computation. Use New512.
type Hash512 struct {
	h      State512
	buf    [BlockSize512]byte
	n      int
	length uint64 // total bytes (sufficient: inputs here are far below 2^64)
}

// New512 returns a fresh SHA-512 hash computation.
func New512() *Hash512 {
	var d Hash512
	d.Reset()
	return &d
}

// Reset restores the initial SHA-512 state.
func (d *Hash512) Reset() {
	d.h = iv512
	d.n = 0
	d.length = 0
}

// Write absorbs p. It never fails.
func (d *Hash512) Write(p []byte) (int, error) {
	n := len(p)
	d.length += uint64(n)
	if d.n > 0 {
		c := copy(d.buf[d.n:], p)
		d.n += c
		p = p[c:]
		if d.n == BlockSize512 {
			compress512(&d.h, d.buf[:])
			d.n = 0
		}
	}
	for len(p) >= BlockSize512 {
		compress512(&d.h, p[:BlockSize512])
		p = p[BlockSize512:]
	}
	if len(p) > 0 {
		d.n = copy(d.buf[:], p)
	}
	return n, nil
}

// Sum appends the digest to in and returns the result without modifying the
// receiver.
func (d *Hash512) Sum(in []byte) []byte {
	dd := *d
	var pad [BlockSize512 + 16]byte
	pad[0] = 0x80
	rem := dd.length % BlockSize512
	var padLen int
	if rem < 112 {
		padLen = int(112 - rem)
	} else {
		padLen = int(128 + 112 - rem)
	}
	// The 128-bit length field: high 64 bits are zero for any input we can
	// hold in memory.
	binary.BigEndian.PutUint64(pad[padLen+8:], dd.length*8)
	dd.Write(pad[:padLen+16])
	var out [Size512]byte
	for i, v := range dd.h {
		binary.BigEndian.PutUint64(out[i*8:], v)
	}
	return append(in, out[:]...)
}

// Size returns the digest length in bytes.
func (d *Hash512) Size() int { return Size512 }

// BlockSize returns the block length in bytes.
func (d *Hash512) BlockSize() int { return BlockSize512 }

// Sum512 computes the SHA-512 digest of data in one shot.
func Sum512(data []byte) [Size512]byte {
	var d Hash512
	d.Reset()
	d.Write(data)
	var out [Size512]byte
	copy(out[:], d.Sum(nil))
	return out
}

func compress512(state *State512, block []byte) {
	var w [80]uint64
	for i := 0; i < 16; i++ {
		w[i] = binary.BigEndian.Uint64(block[i*8:])
	}
	for i := 16; i < 80; i++ {
		v1 := w[i-2]
		t1 := rotr64(v1, 19) ^ rotr64(v1, 61) ^ (v1 >> 6)
		v2 := w[i-15]
		t2 := rotr64(v2, 1) ^ rotr64(v2, 8) ^ (v2 >> 7)
		w[i] = t1 + w[i-7] + t2 + w[i-16]
	}

	a, b, c, d := state[0], state[1], state[2], state[3]
	e, f, g, h := state[4], state[5], state[6], state[7]

	for i := 0; i < 80; i++ {
		t1 := h + (rotr64(e, 14) ^ rotr64(e, 18) ^ rotr64(e, 41)) + ((e & f) ^ (^e & g)) + k512[i] + w[i]
		t2 := (rotr64(a, 28) ^ rotr64(a, 34) ^ rotr64(a, 39)) + ((a & b) ^ (a & c) ^ (b & c))
		h = g
		g = f
		f = e
		e = d + t1
		d = c
		c = b
		b = a
		a = t1 + t2
	}

	state[0] += a
	state[1] += b
	state[2] += c
	state[3] += d
	state[4] += e
	state[5] += f
	state[6] += g
	state[7] += h
}

func rotr64(x uint64, n uint) uint64 { return x>>n | x<<(64-n) }
