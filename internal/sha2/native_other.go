//go:build !amd64

package sha2

// Non-amd64 platforms have no native kernel; the probe keeps the portable
// (or stdlib-accelerated) backends selected. The kernel stubs are functional
// so that callers need no build-tag awareness, but they are unreachable
// while nativeProbe reports false.

func nativeProbe() bool { return false }

func sha256ni(state *State256, block *[BlockSize256]byte) {
	compress256(state, block[:])
}

func sha256ni2(s0, s1 *State256, b0, b1 *[BlockSize256]byte) {
	compress256(s0, b0[:])
	compress256(s1, b1[:])
}
