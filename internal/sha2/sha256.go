package sha2

import "encoding/binary"

// k256 holds the SHA-256 round constants (first 32 bits of the fractional
// parts of the cube roots of the first 64 primes).
var k256 = [64]uint32{
	0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
	0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
	0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
	0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
	0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
	0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
	0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
	0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
}

// iv256 is the SHA-256 initial hash state (square roots of the first 8 primes).
var iv256 = [8]uint32{
	0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
	0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
}

// State256 is a raw SHA-256 chaining state. It is exported so that callers
// implementing precomputed-prefix optimizations (the SPHINCS+ "seeded state"
// trick: hash BlockPad(PK.seed) once, reuse the midstate for every thash)
// can snapshot and restore states cheaply.
type State256 [8]uint32

// Hash256 is an incremental SHA-256 computation. The zero value is NOT ready
// for use; call New256 or Reset.
type Hash256 struct {
	h      State256
	buf    [BlockSize256]byte
	n      int    // buffered bytes in buf
	length uint64 // total message bytes absorbed
}

// New256 returns a fresh SHA-256 hash computation.
func New256() *Hash256 {
	var d Hash256
	d.Reset()
	return &d
}

// Reset restores the initial SHA-256 state.
func (d *Hash256) Reset() {
	d.h = iv256
	d.n = 0
	d.length = 0
}

// Midstate returns the current chaining state. It is only meaningful when
// the absorbed length is a multiple of the block size.
func (d *Hash256) Midstate() State256 { return d.h }

// SetMidstate replaces the chaining state and absorbed length. absorbed must
// be a multiple of BlockSize256; the internal buffer is cleared.
func (d *Hash256) SetMidstate(s State256, absorbed uint64) {
	d.h = s
	d.n = 0
	d.length = absorbed
}

// Write absorbs p. It never fails.
func (d *Hash256) Write(p []byte) (int, error) {
	n := len(p)
	d.length += uint64(n)
	if d.n > 0 {
		c := copy(d.buf[d.n:], p)
		d.n += c
		p = p[c:]
		if d.n == BlockSize256 {
			Compress256(&d.h, &d.buf)
			d.n = 0
		}
	}
	for len(p) >= BlockSize256 {
		Compress256(&d.h, (*[BlockSize256]byte)(p))
		p = p[BlockSize256:]
	}
	if len(p) > 0 {
		d.n = copy(d.buf[:], p)
	}
	return n, nil
}

// Sum appends the digest to in and returns the result. The receiver state is
// not modified, so Sum may be called repeatedly and interleaved with Write.
func (d *Hash256) Sum(in []byte) []byte {
	dd := *d // padding must not clobber the caller's state
	var pad [BlockSize256 + 8]byte
	pad[0] = 0x80
	rem := dd.length % BlockSize256
	var padLen int
	if rem < 56 {
		padLen = int(56 - rem)
	} else {
		padLen = int(64 + 56 - rem)
	}
	binary.BigEndian.PutUint64(pad[padLen:], dd.length*8)
	dd.Write(pad[:padLen+8])
	var out [Size256]byte
	for i, v := range dd.h {
		binary.BigEndian.PutUint32(out[i*4:], v)
	}
	return append(in, out[:]...)
}

// Size returns the digest length in bytes.
func (d *Hash256) Size() int { return Size256 }

// BlockSize returns the block length in bytes.
func (d *Hash256) BlockSize() int { return BlockSize256 }

// Sum256 computes the SHA-256 digest of data in one shot.
func Sum256(data []byte) [Size256]byte {
	var d Hash256
	d.Reset()
	d.Write(data)
	var out [Size256]byte
	copy(out[:], d.Sum(nil))
	return out
}

// compress256 absorbs one 64-byte block into the state. This is the scalar
// "native" schedule; the PTX-modelled schedule in internal/ptx reuses this
// function for functional results and differs only in its cost model.
func compress256(state *State256, block []byte) {
	var w [64]uint32
	for i := 0; i < 16; i++ {
		// Big-endian load: on a GPU this is the 16-load byte-swap sequence
		// that HERO-Sign replaces with a single prmt.b32 per word.
		w[i] = binary.BigEndian.Uint32(block[i*4:])
	}
	for i := 16; i < 64; i++ {
		v1 := w[i-2]
		t1 := rotr32(v1, 17) ^ rotr32(v1, 19) ^ (v1 >> 10)
		v2 := w[i-15]
		t2 := rotr32(v2, 7) ^ rotr32(v2, 18) ^ (v2 >> 3)
		w[i] = t1 + w[i-7] + t2 + w[i-16]
	}

	a, b, c, d := state[0], state[1], state[2], state[3]
	e, f, g, h := state[4], state[5], state[6], state[7]

	for i := 0; i < 64; i++ {
		t1 := h + (rotr32(e, 6) ^ rotr32(e, 11) ^ rotr32(e, 25)) + ((e & f) ^ (^e & g)) + k256[i] + w[i]
		t2 := (rotr32(a, 2) ^ rotr32(a, 13) ^ rotr32(a, 22)) + ((a & b) ^ (a & c) ^ (b & c))
		h = g
		g = f
		f = e
		e = d + t1
		d = c
		c = b
		b = a
		a = t1 + t2
	}

	state[0] += a
	state[1] += b
	state[2] += c
	state[3] += d
	state[4] += e
	state[5] += f
	state[6] += g
	state[7] += h
}

func rotr32(x uint32, n uint) uint32 { return x>>n | x<<(32-n) }
