package sha2

// Native SHA-NI backend selection.
//
// The third lane-engine backend (after the portable interleaved kernels and
// the stdlib streaming path): direct SHA extension compression on raw
// chaining states. Unlike the stdlib path it needs no marshal/unmarshal
// round-trip to reach a midstate — a profile of the verify hot loop shows
// the actual block compression is ~a quarter of the stdlib path's cost, the
// rest being digest plumbing — so it is the preferred backend wherever the
// CPU supports it. Compress256/x4/x8 dispatch on it transparently; the
// multi-lane entry points pair lanes through the two-message interleaved
// kernel to cover the SHA256RNDS2 latency chain.

// native256 routes the Compress256 entry points through the SHA-NI kernels.
// Mutated only by SetNative (benchmarks/tests); the hot path reads it
// without synchronization, so toggling must not race with hashing.
var native256 = nativeSelfCheck()

// nativeAvailable records the init-time self-check result; SetNative can
// never enable a backend that failed it.
var nativeAvailable bool

// Native reports whether compression is currently routed through the native
// SHA extension kernels.
func Native() bool { return native256 }

// SetNative forces the native-kernel choice for benchmarks and equivalence
// tests and reports the previous setting. Enabling is a no-op when the
// init-time self-check failed. Not safe to call concurrently with hashing.
func SetNative(enable bool) (previous bool) {
	previous = native256
	native256 = enable && nativeAvailable
	return previous
}

// nativeSelfCheck proves the SHA-NI kernels reproduce the portable scalar
// kernel bit-for-bit before they can be selected. Any mismatch silently
// keeps the portable/stdlib backends.
func nativeSelfCheck() bool {
	if !nativeProbe() {
		return false
	}
	var blocks [2][BlockSize256]byte
	for l := range blocks {
		for i := range blocks[l] {
			blocks[l][i] = byte(i*7 + l*13 + 1)
		}
	}
	want := [2]State256{iv256, iv256}
	got := want
	for round := 0; round < 2; round++ { // second round: non-IV midstates
		compress256(&want[0], blocks[0][:])
		compress256(&want[1], blocks[1][:])
		sha256ni(&got[0], &blocks[0])
		sha256ni(&got[1], &blocks[1])
		if got != want {
			return false
		}
		compress256(&want[0], blocks[1][:])
		compress256(&want[1], blocks[0][:])
		sha256ni2(&got[0], &got[1], &blocks[1], &blocks[0])
		if got != want {
			return false
		}
	}
	nativeAvailable = true
	return true
}
