//go:build amd64

package sha2

// The SHA-NI kernels, emitted by gen_native.go into native_amd64.s.
//
// sha256ni absorbs one 64-byte block into one chaining state; sha256ni2
// absorbs one block into each of two independent states with the round
// chains interleaved (SHA256RNDS2 is latency-bound on a single message).

//go:noescape
func sha256ni(state *State256, block *[BlockSize256]byte)

//go:noescape
func sha256ni2(s0, s1 *State256, b0, b1 *[BlockSize256]byte)

func cpuidLeaf(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// nativeProbe reports whether the CPU exposes the SHA extensions plus the
// SSSE3/SSE4.1 shuffles the kernels use.
func nativeProbe() bool {
	maxLeaf, _, _, _ := cpuidLeaf(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const ssse3 = 1 << 9
	const sse41 = 1 << 19
	if _, _, ecx, _ := cpuidLeaf(1, 0); ecx&ssse3 == 0 || ecx&sse41 == 0 {
		return false
	}
	const shaExt = 1 << 29
	_, ebx, _, _ := cpuidLeaf(7, 0)
	return ebx&shaExt != 0
}
