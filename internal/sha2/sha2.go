// Package sha2 implements the SHA-2 family of hash functions (SHA-256 and
// SHA-512) from scratch, together with the HMAC and MGF1 constructions that
// the SPHINCS+ SHA-2 instantiation requires.
//
// The package exists instead of crypto/sha256 for two reasons:
//
//  1. HERO-Sign's central compiler-level optimization operates *inside* the
//     SHA-256 compression function (PTX byte-permutation loads, mad-based
//     modular additions). The simulator needs an implementation whose
//     compression-function call count and message schedule are observable,
//     so that the PTX instruction model (internal/ptx) can attribute an
//     exact instruction mix to every hash invocation.
//  2. The reproduction mandate is to build every substrate the paper
//     depends on.
//
// Correctness is pinned to the standard library in the package tests: every
// digest produced here is compared byte-for-byte against crypto/sha256 and
// crypto/sha512 across a large corpus of lengths and contents.
//
// # Multi-lane engine
//
// Beyond the scalar primitives, the package provides a lane-batch engine
// (lanes.go): Compress256x4/Compress256x8 run several independent
// compressions per pass over struct-of-arrays state, and the reusable
// Hasher256 starts messages from arbitrary midstates without allocating.
// This mirrors the paper's warp execution model — a warp advances Lanes
// independent hash chains in lockstep, one compression per lane per pass —
// on the host CPU. Two interchangeable backends (a portable interleaved
// kernel and, where the init-time self-check proves it, the platform's
// hardware SHA-256 via crypto/sha256) produce bit-identical digests; see
// the lanes.go file comment for the full design.
package sha2

// BlockSize256 is the SHA-256 message block size in bytes.
const BlockSize256 = 64

// Size256 is the SHA-256 digest size in bytes.
const Size256 = 32

// BlockSize512 is the SHA-512 message block size in bytes.
const BlockSize512 = 128

// Size512 is the SHA-512 digest size in bytes.
const Size512 = 64

// CompressionBlocks256 returns the number of SHA-256 compression-function
// invocations needed to hash a message of msgLen bytes (including padding).
// This is the quantity the GPU simulator charges for each hash call.
func CompressionBlocks256(msgLen int) int {
	// Padding: 1 byte 0x80, zeros, 8-byte length; total padded length is the
	// next multiple of 64 that leaves 9 bytes of room.
	return (msgLen + 9 + BlockSize256 - 1) / BlockSize256
}

// CompressionBlocks512 is the SHA-512 analogue of CompressionBlocks256
// (16-byte length field, 128-byte blocks).
func CompressionBlocks512(msgLen int) int {
	return (msgLen + 17 + BlockSize512 - 1) / BlockSize512
}
