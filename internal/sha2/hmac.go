package sha2

// HMAC256 computes HMAC-SHA-256(key, msg) per RFC 2104. SPHINCS+ uses it for
// PRF_msg at security level 1.
func HMAC256(key, msg []byte) [Size256]byte {
	var k [BlockSize256]byte
	if len(key) > BlockSize256 {
		kh := Sum256(key)
		copy(k[:], kh[:])
	} else {
		copy(k[:], key)
	}
	var ipad, opad [BlockSize256]byte
	for i := range k {
		ipad[i] = k[i] ^ 0x36
		opad[i] = k[i] ^ 0x5c
	}
	inner := New256()
	inner.Write(ipad[:])
	inner.Write(msg)
	innerSum := inner.Sum(nil)
	outer := New256()
	outer.Write(opad[:])
	outer.Write(innerSum)
	var out [Size256]byte
	copy(out[:], outer.Sum(nil))
	return out
}

// HMAC512 computes HMAC-SHA-512(key, msg); SPHINCS+ round 3.1 uses it for
// PRF_msg at security levels 3 and 5.
func HMAC512(key, msg []byte) [Size512]byte {
	var k [BlockSize512]byte
	if len(key) > BlockSize512 {
		kh := Sum512(key)
		copy(k[:], kh[:])
	} else {
		copy(k[:], key)
	}
	var ipad, opad [BlockSize512]byte
	for i := range k {
		ipad[i] = k[i] ^ 0x36
		opad[i] = k[i] ^ 0x5c
	}
	inner := New512()
	inner.Write(ipad[:])
	inner.Write(msg)
	innerSum := inner.Sum(nil)
	outer := New512()
	outer.Write(opad[:])
	outer.Write(innerSum)
	var out [Size512]byte
	copy(out[:], outer.Sum(nil))
	return out
}

// MGF1_256 generates outLen bytes from seed using MGF1 with SHA-256
// (RFC 8017 §B.2.1). SPHINCS+ uses it inside H_msg to stretch the message
// digest to the index/FORS bit string.
func MGF1_256(seed []byte, outLen int) []byte {
	out := make([]byte, outLen)
	MGF1_256Into(out, seed)
	return out
}

// MGF1_256Into fills dst with MGF1-SHA-256 output of seed without
// allocating — the hasher lives on the stack and each counter block's
// digest lands in a stack buffer before being copied into dst.
func MGF1_256Into(dst, seed []byte) {
	var d Hash256
	var ctr [4]byte
	var tmp [Size256]byte
	for i, off := uint32(0), 0; off < len(dst); i++ {
		ctr[0] = byte(i >> 24)
		ctr[1] = byte(i >> 16)
		ctr[2] = byte(i >> 8)
		ctr[3] = byte(i)
		d.Reset()
		d.Write(seed)
		d.Write(ctr[:])
		off += copy(dst[off:], d.Sum(tmp[:0]))
	}
}

// MGF1_512 is MGF1 instantiated with SHA-512.
func MGF1_512(seed []byte, outLen int) []byte {
	out := make([]byte, outLen)
	MGF1_512Into(out, seed)
	return out
}

// MGF1_512Into is MGF1_256Into instantiated with SHA-512.
func MGF1_512Into(dst, seed []byte) {
	var d Hash512
	var ctr [4]byte
	var tmp [Size512]byte
	for i, off := uint32(0), 0; off < len(dst); i++ {
		ctr[0] = byte(i >> 24)
		ctr[1] = byte(i >> 16)
		ctr[2] = byte(i >> 8)
		ctr[3] = byte(i)
		d.Reset()
		d.Write(seed)
		d.Write(ctr[:])
		off += copy(dst[off:], d.Sum(tmp[:0]))
	}
}
