// Package faultinject is a composable fault injector for HTTP paths: an
// http.RoundTripper wrapper (client side), an http.Handler middleware and a
// net.Listener wrapper (server side) that inject latency, jitter,
// connection resets, truncated bodies, synthesized 5xx bursts and
// blackholes by rule. Rules select traffic per path prefix and per host,
// fire with a probability, and can be bounded to a duration or a count —
// the building blocks of the chaos suite that drives the signing fleet's
// resilience claims (ejection, half-open recovery, hedging, drain) against
// real partial failures instead of ad-hoc stubs.
//
// Everything is plain build-tag-free library code: tests arm rules through
// the API, and herosign-serve's -chaos dev flag parses the same rules from
// a flag string (see ParseRules).
package faultinject

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Mode selects what an armed rule does to a matched request.
type Mode string

const (
	// ModeLatency delays the request by Latency ± Jitter before letting it
	// through.
	ModeLatency Mode = "latency"
	// ModeReset fails the exchange like a peer that closed the connection:
	// the client sees a *net.OpError wrapping ECONNRESET (a retryable hard
	// transport failure), the middleware aborts the response mid-write.
	ModeReset Mode = "reset"
	// ModeStatus answers with an synthesized HTTP status (Status, default
	// 503) without reaching the wrapped handler/transport.
	ModeStatus Mode = "status"
	// ModeTruncate lets the exchange run but cuts the response body short,
	// so the reader hits an unexpected EOF mid-decode.
	ModeTruncate Mode = "truncate"
	// ModeBlackhole swallows the request until its context is done — the
	// timeout-shaped failure (no RST, no response, nothing).
	ModeBlackhole Mode = "blackhole"
)

// Rule is one fault: where it applies, how likely it fires, what it does,
// and for how long it stays armed.
type Rule struct {
	// Name labels the rule in counters (default: the mode).
	Name string
	// PathPrefix selects request paths ("" = every path).
	PathPrefix string
	// Host selects the target host[:port] ("" = every host). Client-side
	// only: the middleware/listener sit on one host already.
	Host string
	// Probability in [0,1] is the chance a matched request is faulted
	// (0 means 1.0 — an unset probability always fires).
	Probability float64
	// Mode selects the fault (default ModeLatency).
	Mode Mode
	// Latency / Jitter shape ModeLatency: delay = Latency + U(0,Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// Status is the synthesized response code for ModeStatus (default 503).
	Status int
	// TruncateBytes bounds the surviving body prefix for ModeTruncate
	// (default: half the body).
	TruncateBytes int
	// Duration disarms the rule this long after arming (0 = until
	// disarmed).
	Duration time.Duration
	// MaxHits disarms the rule after it fired this many times (0 =
	// unlimited).
	MaxHits int64
}

// rule is an armed Rule plus its bookkeeping.
type rule struct {
	Rule
	armedAt time.Time
	hits    atomic.Int64
	off     atomic.Bool
}

func (r *rule) label() string {
	if r.Name != "" {
		return r.Name
	}
	return string(r.Mode)
}

// expired reports whether the rule's arming window or hit budget ran out.
func (r *rule) expired(now time.Time) bool {
	if r.off.Load() {
		return true
	}
	if r.Duration > 0 && now.After(r.armedAt.Add(r.Duration)) {
		return true
	}
	if r.MaxHits > 0 && r.hits.Load() >= r.MaxHits {
		return true
	}
	return false
}

// Injector holds the armed rule set and the fault counters. The zero value
// is ready to use and injects nothing until a rule is armed.
type Injector struct {
	mu    sync.Mutex
	rules []*rule
	rng   *rand.Rand

	counts sync.Map // label -> *atomic.Int64
}

// New returns an empty injector.
func New() *Injector { return &Injector{} }

// Arm installs r and returns a disarm func. Arming is cheap and
// concurrency-safe, so tests flip faults on and off mid-flight.
func (in *Injector) Arm(r Rule) (disarm func()) {
	if r.Mode == "" {
		r.Mode = ModeLatency
	}
	if r.Mode == ModeStatus && r.Status == 0 {
		r.Status = http.StatusServiceUnavailable
	}
	ar := &rule{Rule: r, armedAt: time.Now()}
	in.mu.Lock()
	in.rules = append(in.rules, ar)
	in.mu.Unlock()
	return func() { ar.off.Store(true) }
}

// Reset disarms every rule.
func (in *Injector) Reset() {
	in.mu.Lock()
	for _, r := range in.rules {
		r.off.Store(true)
	}
	in.rules = nil
	in.mu.Unlock()
}

// Hits reports how many faults the named rule injected (rules default
// their name to the mode string).
func (in *Injector) Hits(name string) int64 {
	if c, ok := in.counts.Load(name); ok {
		return c.(*atomic.Int64).Load()
	}
	return 0
}

// TotalHits sums every rule's injected-fault count.
func (in *Injector) TotalHits() int64 {
	var n int64
	in.counts.Range(func(_, v any) bool {
		n += v.(*atomic.Int64).Load()
		return true
	})
	return n
}

func (in *Injector) count(label string) {
	c, _ := in.counts.LoadOrStore(label, new(atomic.Int64))
	c.(*atomic.Int64).Add(1)
}

// match returns the first armed rule selecting (host, path) whose
// probability fires, pruning expired rules as a side effect.
func (in *Injector) match(host, path string) *rule {
	now := time.Now()
	in.mu.Lock()
	defer in.mu.Unlock()
	live := in.rules[:0]
	var hit *rule
	for _, r := range in.rules {
		if r.expired(now) {
			continue
		}
		live = append(live, r)
		if hit != nil {
			continue
		}
		if r.Host != "" && r.Host != host {
			continue
		}
		if r.PathPrefix != "" && !strings.HasPrefix(path, r.PathPrefix) {
			continue
		}
		p := r.Probability
		if p <= 0 {
			p = 1
		}
		if p < 1 {
			if in.rng == nil {
				in.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
			}
			if in.rng.Float64() >= p {
				continue
			}
		}
		hit = r
	}
	in.rules = live
	if hit != nil {
		hit.hits.Add(1)
		in.count(hit.label())
	}
	return hit
}

// resetErr fabricates the error a real peer RST produces: a *net.OpError
// wrapping ECONNRESET, which errors.Is-matches syscall.ECONNRESET the way
// transport-level retry classifiers expect.
func resetErr(host string) error {
	return &net.OpError{Op: "read", Net: "tcp",
		Addr: fakeAddr(host), Err: syscall.ECONNRESET}
}

type fakeAddr string

func (a fakeAddr) Network() string { return "tcp" }
func (a fakeAddr) String() string  { return string(a) }

// sleep waits d (plus rule jitter) or until ctx is done.
func sleepRule(ctx context.Context, r *rule, rng func() float64) {
	d := r.Latency
	if r.Jitter > 0 {
		d += time.Duration(rng() * float64(r.Jitter))
	}
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// RoundTripper wraps next with the injector's client-side faults. A nil
// next uses http.DefaultTransport.
func (in *Injector) RoundTripper(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &roundTripper{in: in, next: next}
}

type roundTripper struct {
	in   *Injector
	next http.RoundTripper
}

func (rt *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	r := rt.in.match(req.URL.Host, req.URL.Path)
	if r == nil {
		return rt.next.RoundTrip(req)
	}
	ctx := req.Context()
	switch r.Mode {
	case ModeLatency:
		sleepRule(ctx, r, rand.Float64)
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return rt.next.RoundTrip(req)
	case ModeReset:
		// Drain and close the body like a transport that died mid-exchange,
		// so callers' body lifecycles stay balanced.
		if req.Body != nil {
			_, _ = io.Copy(io.Discard, req.Body)
			_ = req.Body.Close()
		}
		return nil, resetErr(req.URL.Host)
	case ModeStatus:
		if req.Body != nil {
			_, _ = io.Copy(io.Discard, req.Body)
			_ = req.Body.Close()
		}
		return &http.Response{
			StatusCode: r.Status,
			Status:     fmt.Sprintf("%d %s", r.Status, http.StatusText(r.Status)),
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:        http.Header{"Content-Type": []string{"text/plain"}},
			Body:          io.NopCloser(strings.NewReader(http.StatusText(r.Status) + " (injected)")),
			ContentLength: -1,
			Request:       req,
		}, nil
	case ModeTruncate:
		resp, err := rt.next.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		resp.Body = truncateBody(resp.Body, r.TruncateBytes, req.URL.Host)
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
		return resp, nil
	case ModeBlackhole:
		if req.Body != nil {
			_, _ = io.Copy(io.Discard, req.Body)
			_ = req.Body.Close()
		}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return rt.next.RoundTrip(req)
}

// truncateBody yields at most limit bytes of body (half of what's read
// when limit is 0) and then fails with a connection-reset read error, like
// a peer that died mid-response.
func truncateBody(body io.ReadCloser, limit int, host string) io.ReadCloser {
	if limit <= 0 {
		// Read it all to learn the size, keep half.
		all, err := io.ReadAll(body)
		_ = body.Close()
		if err != nil {
			return io.NopCloser(bytes.NewReader(all))
		}
		limit = len(all) / 2
		return &truncatedReader{r: bytes.NewReader(all[:limit]), host: host}
	}
	return &truncatedReader{r: io.LimitReader(body, int64(limit)), c: body, host: host}
}

type truncatedReader struct {
	r    io.Reader
	c    io.Closer
	host string
}

func (t *truncatedReader) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if err == io.EOF {
		err = resetErr(t.host)
	}
	return n, err
}

func (t *truncatedReader) Close() error {
	if t.c != nil {
		return t.c.Close()
	}
	return nil
}

// Middleware wraps next with the injector's server-side faults, for
// composing into a leaf's mux (the -chaos dev flag).
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r := in.match(req.Host, req.URL.Path)
		if r == nil {
			next.ServeHTTP(w, req)
			return
		}
		ctx := req.Context()
		switch r.Mode {
		case ModeLatency:
			sleepRule(ctx, r, rand.Float64)
			if ctx.Err() != nil {
				return
			}
			next.ServeHTTP(w, req)
		case ModeReset:
			// Panic with ErrAbortHandler: net/http closes the connection
			// without a response — the client observes EOF/RST.
			panic(http.ErrAbortHandler)
		case ModeStatus:
			http.Error(w, http.StatusText(r.Status)+" (injected)", r.Status)
		case ModeTruncate:
			rec := &truncatingWriter{w: w, limit: r.TruncateBytes}
			next.ServeHTTP(rec, req)
			panic(http.ErrAbortHandler) // cut the connection before the body completes
		case ModeBlackhole:
			<-ctx.Done()
		default:
			next.ServeHTTP(w, req)
		}
	})
}

// truncatingWriter forwards at most limit body bytes (0 = half of each
// write) and drops the rest.
type truncatingWriter struct {
	w       http.ResponseWriter
	limit   int
	written int
}

func (t *truncatingWriter) Header() http.Header { return t.w.Header() }

func (t *truncatingWriter) WriteHeader(code int) {
	t.w.Header().Del("Content-Length")
	t.w.WriteHeader(code)
}

func (t *truncatingWriter) Write(p []byte) (int, error) {
	limit := t.limit
	if limit <= 0 {
		limit = t.written + len(p)/2
	}
	keep := limit - t.written
	if keep < 0 {
		keep = 0
	}
	if keep > len(p) {
		keep = len(p)
	}
	if keep > 0 {
		if _, err := t.w.Write(p[:keep]); err != nil {
			return 0, err
		}
		t.written += keep
	}
	// Claim full success so the handler keeps its invariants; the missing
	// tail is the injected fault.
	return len(p), nil
}

// Listener wraps l so accepted connections are subject to the injector's
// connection-level faults: a ModeReset rule with PathPrefix "" kills
// accepted connections immediately, a ModeLatency rule delays the first
// byte. HTTP-aware faults (status, truncate, per-path selection) belong in
// Middleware — a listener cannot see paths.
func (in *Injector) Listener(l net.Listener) net.Listener {
	return &listener{Listener: l, in: in}
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if r := l.in.match("", ""); r != nil {
		switch r.Mode {
		case ModeReset:
			// SO_LINGER 0 turns Close into an RST instead of FIN.
			if tc, ok := c.(*net.TCPConn); ok {
				_ = tc.SetLinger(0)
			}
			_ = c.Close()
			return l.Accept()
		case ModeLatency:
			return &delayedConn{Conn: c, delay: r.Latency, jitter: r.Jitter}, nil
		case ModeBlackhole:
			return &blackholeConn{Conn: c}, nil
		}
	}
	return c, nil
}

// delayedConn defers the first read — connection-level latency.
type delayedConn struct {
	net.Conn
	delay  time.Duration
	jitter time.Duration
	once   sync.Once
}

func (c *delayedConn) Read(p []byte) (int, error) {
	c.once.Do(func() {
		d := c.delay
		if c.jitter > 0 {
			d += time.Duration(rand.Float64() * float64(c.jitter))
		}
		time.Sleep(d)
	})
	return c.Conn.Read(p)
}

// blackholeConn reads requests but never writes a response byte.
type blackholeConn struct{ net.Conn }

func (c *blackholeConn) Write(p []byte) (int, error) {
	// Swallow writes; keep the connection open so the peer waits.
	return len(p), nil
}

// ParseRules parses the -chaos flag syntax: comma-separated rules, each a
// semicolon-separated k=v list.
//
//	mode=latency;path=/v1/sign;latency=200ms;jitter=50ms;p=0.3
//	mode=reset;path=/v1/;p=0.1,mode=status;status=503;max=20
//
// Keys: mode, path, host, p (probability), latency, jitter, status, trunc
// (bytes), for (duration), max (hits), name.
func ParseRules(s string) ([]Rule, error) {
	var rules []Rule
	for _, rs := range strings.Split(s, ",") {
		rs = strings.TrimSpace(rs)
		if rs == "" {
			continue
		}
		var r Rule
		for _, kv := range strings.Split(rs, ";") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: bad rule element %q (want k=v)", kv)
			}
			var err error
			switch k {
			case "mode":
				switch Mode(v) {
				case ModeLatency, ModeReset, ModeStatus, ModeTruncate, ModeBlackhole:
					r.Mode = Mode(v)
				default:
					err = fmt.Errorf("unknown mode %q", v)
				}
			case "path":
				r.PathPrefix = v
			case "host":
				r.Host = v
			case "name":
				r.Name = v
			case "p":
				r.Probability, err = strconv.ParseFloat(v, 64)
				if err == nil && (r.Probability < 0 || r.Probability > 1) {
					err = fmt.Errorf("probability %v outside [0,1]", r.Probability)
				}
			case "latency":
				r.Latency, err = time.ParseDuration(v)
			case "jitter":
				r.Jitter, err = time.ParseDuration(v)
			case "status":
				r.Status, err = strconv.Atoi(v)
			case "trunc":
				r.TruncateBytes, err = strconv.Atoi(v)
			case "for":
				r.Duration, err = time.ParseDuration(v)
			case "max":
				var n int
				n, err = strconv.Atoi(v)
				r.MaxHits = int64(n)
			default:
				err = fmt.Errorf("unknown key %q", k)
			}
			if err != nil {
				return nil, fmt.Errorf("faultinject: rule %q: %w", rs, err)
			}
		}
		if r.Mode == "" {
			return nil, fmt.Errorf("faultinject: rule %q needs mode=", rs)
		}
		rules = append(rules, r)
	}
	return rules, nil
}
