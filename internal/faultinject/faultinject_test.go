package faultinject

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]string{"ok": "yes", "pad": strings.Repeat("x", 256)})
	})
}

func clientFor(in *Injector, ts *httptest.Server) *http.Client {
	return &http.Client{Transport: in.RoundTripper(ts.Client().Transport)}
}

func TestRoundTripperPassThrough(t *testing.T) {
	ts := httptest.NewServer(okHandler())
	defer ts.Close()
	in := New()
	resp, err := clientFor(in, ts).Get(ts.URL + "/v1/sign")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pass-through status = %d", resp.StatusCode)
	}
	if in.TotalHits() != 0 {
		t.Fatalf("no rules armed but TotalHits = %d", in.TotalHits())
	}
}

func TestRoundTripperStatusAndPathSelection(t *testing.T) {
	ts := httptest.NewServer(okHandler())
	defer ts.Close()
	in := New()
	in.Arm(Rule{Mode: ModeStatus, Status: 503, PathPrefix: "/v1/sign"})
	c := clientFor(in, ts)

	resp, err := c.Get(ts.URL + "/v1/sign/batch")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 503 || !strings.Contains(string(body), "injected") {
		t.Fatalf("matched path: status %d body %q, want injected 503", resp.StatusCode, body)
	}

	// A non-matching path is untouched.
	resp, err = c.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("unmatched path faulted: %d", resp.StatusCode)
	}
	if got := in.Hits("status"); got != 1 {
		t.Fatalf("Hits(status) = %d, want 1", got)
	}
}

func TestRoundTripperReset(t *testing.T) {
	ts := httptest.NewServer(okHandler())
	defer ts.Close()
	in := New()
	in.Arm(Rule{Mode: ModeReset})
	_, err := clientFor(in, ts).Post(ts.URL+"/v1/sign", "application/json", strings.NewReader("{}"))
	if err == nil {
		t.Fatal("reset rule produced no error")
	}
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("reset error = %v, want ECONNRESET", err)
	}
}

func TestRoundTripperLatency(t *testing.T) {
	ts := httptest.NewServer(okHandler())
	defer ts.Close()
	in := New()
	in.Arm(Rule{Mode: ModeLatency, Latency: 60 * time.Millisecond})
	t0 := time.Now()
	resp, err := clientFor(in, ts).Get(ts.URL + "/v1/sign")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(t0); d < 50*time.Millisecond {
		t.Fatalf("latency rule added only %v", d)
	}
}

func TestRoundTripperTruncate(t *testing.T) {
	ts := httptest.NewServer(okHandler())
	defer ts.Close()
	in := New()
	in.Arm(Rule{Mode: ModeTruncate})
	resp, err := clientFor(in, ts).Get(ts.URL + "/v1/sign")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]string
	if jerr := json.NewDecoder(resp.Body).Decode(&out); jerr == nil {
		t.Fatal("truncated body decoded cleanly")
	}
}

func TestRoundTripperBlackholeHonorsContext(t *testing.T) {
	ts := httptest.NewServer(okHandler())
	defer ts.Close()
	in := New()
	in.Arm(Rule{Mode: ModeBlackhole})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/sign", nil)
	t0 := time.Now()
	_, err := clientFor(in, ts).Do(req)
	if err == nil {
		t.Fatal("blackhole returned a response")
	}
	if d := time.Since(t0); d < 40*time.Millisecond || d > 2*time.Second {
		t.Fatalf("blackhole held for %v, want ~context deadline", d)
	}
}

func TestMaxHitsAndDisarm(t *testing.T) {
	ts := httptest.NewServer(okHandler())
	defer ts.Close()
	in := New()
	disarm := in.Arm(Rule{Mode: ModeStatus, Status: 500, MaxHits: 2})
	c := clientFor(in, ts)
	codes := make([]int, 0, 4)
	for i := 0; i < 4; i++ {
		resp, err := c.Get(ts.URL + "/")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		codes = append(codes, resp.StatusCode)
	}
	if codes[0] != 500 || codes[1] != 500 || codes[2] != 200 || codes[3] != 200 {
		t.Fatalf("max-hits rule fired wrong: %v", codes)
	}
	disarm() // already expired; must be safe

	in.Arm(Rule{Mode: ModeStatus, Status: 500})
	in.Reset()
	resp, err := c.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("Reset left a rule armed: %d", resp.StatusCode)
	}
}

func TestMiddlewareStatusAndReset(t *testing.T) {
	in := New()
	ts := httptest.NewServer(in.Middleware(okHandler()))
	defer ts.Close()

	disarm := in.Arm(Rule{Mode: ModeStatus, Status: 502, PathPrefix: "/v1/sign"})
	resp, err := http.Get(ts.URL + "/v1/sign")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 502 {
		t.Fatalf("middleware status = %d, want 502", resp.StatusCode)
	}
	disarm()

	in.Arm(Rule{Mode: ModeReset, PathPrefix: "/v1/sign"})
	if _, err := http.Get(ts.URL + "/v1/sign"); err == nil {
		t.Fatal("middleware reset returned a clean response")
	}
}

func TestParseRules(t *testing.T) {
	rules, err := ParseRules("mode=latency;path=/v1/sign;latency=200ms;jitter=50ms;p=0.3,mode=status;status=503;max=20;for=2s;host=leaf:1234;name=burst")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("parsed %d rules, want 2", len(rules))
	}
	r0, r1 := rules[0], rules[1]
	if r0.Mode != ModeLatency || r0.PathPrefix != "/v1/sign" ||
		r0.Latency != 200*time.Millisecond || r0.Jitter != 50*time.Millisecond || r0.Probability != 0.3 {
		t.Fatalf("rule 0 parsed wrong: %+v", r0)
	}
	if r1.Mode != ModeStatus || r1.Status != 503 || r1.MaxHits != 20 ||
		r1.Duration != 2*time.Second || r1.Host != "leaf:1234" || r1.Name != "burst" {
		t.Fatalf("rule 1 parsed wrong: %+v", r1)
	}

	for _, bad := range []string{
		"path=/v1/sign",            // missing mode
		"mode=explode",             // unknown mode
		"mode=latency;p=1.5",       // probability out of range
		"mode=latency;latency=abc", // bad duration
		"mode=latency;zap=1",       // unknown key
		"mode=latency;latency",     // not k=v
	} {
		if _, err := ParseRules(bad); err == nil {
			t.Fatalf("ParseRules(%q) accepted", bad)
		}
	}
}
