package ptx

// Compile-time model (paper §IV-E2, Table XI).
//
// nvcc's optimization passes dominate compilation of these kernels: cost
// grows with the number of instructions the optimizer may transform and
// with how many distinct code paths exist in the translation unit. Inline
// PTX blocks are opaque to the optimizer, so the PTX variant of a kernel
// compiles markedly faster. HERO-Sign's constexpr-if branching instantiates
// one template specialization per kernel (a small fixed overhead) but ships
// exactly one path per kernel, whereas a runtime-branching build must
// compile and carry both paths in every kernel.

// Compile-cost calibration constants (seconds). These reproduce the scale
// of Table XI (≈15–25 s full builds) on the modeled build machine.
const (
	// secPerKiloInstrPass is the optimizer cost per 1000 SASS-level
	// instructions per aggressive pass group.
	secPerKiloInstrPass = 0.13
	// nativePassGroups / ptxPassGroups: pass groups that actually run over
	// each path's instructions (inline asm is skipped by most of them).
	nativePassGroups = 10.0
	ptxPassGroups    = 5.0
	// templateInstantiationSec is the constexpr-if specialization overhead
	// per instantiated kernel.
	templateInstantiationSec = 0.12
	// harnessBaseSec covers host code, headers and cudafe for the project.
	harnessBaseSec = 8.0
)

// unrollFactor scales compile cost with how much code the kernel inlines
// per parameter set: wots_gen_leaf bodies grow with n (560/816/1072 SHA-2
// calls per leaf at 128/192/256f, paper §III-C2).
func unrollFactor(k Kernel, n int) float64 {
	base := map[Kernel]float64{FORSSign: 1.0, TREESign: 1.6, WOTSSign: 1.2}[k]
	scale := map[int]float64{16: 1.0, 24: 1.25, 32: 1.45}[n]
	return base * scale
}

// KernelCompileSec models compiling one kernel under one variant.
func KernelCompileSec(k Kernel, v Variant, n int) float64 {
	var mix InstrMix
	var passes float64
	switch v {
	case Native:
		mix, passes = NativeMix, nativePassGroups
	case PTX:
		mix, passes = PTXMix, ptxPassGroups
	}
	kiloInstr := float64(mix.Total()) / 1000.0
	return kiloInstr * secPerKiloInstrPass * passes * unrollFactor(k, n)
}

// BuildPlan describes which variant each kernel compiles with.
type BuildPlan struct {
	Selection map[Kernel]Variant
	// RuntimeBranching carries both paths in every kernel (the baseline
	// strategy HERO-Sign's compile-time branching replaces).
	RuntimeBranching bool
}

// BaselineBuild is the TCAS-style build: native code for every kernel.
func BaselineBuild() BuildPlan {
	return BuildPlan{Selection: map[Kernel]Variant{
		FORSSign: Native, TREESign: Native, WOTSSign: Native,
	}}
}

// CompileSec models the total build time for the plan at security level n.
func (bp BuildPlan) CompileSec(n int) float64 {
	total := harnessBaseSec
	for _, k := range Kernels() {
		if bp.RuntimeBranching {
			// Both paths live in one kernel body: compile both, and the
			// merged control flow enlarges the optimization problem.
			total += 1.1 * (KernelCompileSec(k, Native, n) + KernelCompileSec(k, PTX, n))
			continue
		}
		v := bp.Selection[k]
		total += KernelCompileSec(k, v, n) + templateInstantiationSec
	}
	return total
}
