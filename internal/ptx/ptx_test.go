package ptx

import "testing"

// TestMixesAreSubstantial sanity-checks the schedules against the known
// scale of a SHA-256 compression (~1.2–1.5k instructions in scalar code).
func TestMixesAreSubstantial(t *testing.T) {
	for _, m := range []InstrMix{NativeMix, PTXMix} {
		if tot := m.Total(); tot < 900 || tot > 2000 {
			t.Errorf("mix total = %d, implausible for SHA-256 compression", tot)
		}
	}
	if PTXMix.Total() >= NativeMix.Total() {
		t.Error("prmt-based loads should shrink the instruction count")
	}
	if PTXMix.PRMT != 16 {
		t.Errorf("PTX schedule needs one prmt per message word, got %d", PTXMix.PRMT)
	}
	if NativeMix.PRMT != 0 || NativeMix.MAD != 0 {
		t.Error("native schedule must not contain PTX-pinned instructions")
	}
}

// TestRegisterAnchors pins the register model to the paper's published
// profiling numbers.
func TestRegisterAnchors(t *testing.T) {
	// Table III: baseline (native) 128f registers per thread.
	if r := ScheduleFor(FORSSign, Native, 16).RegsPerThread; r != 64 {
		t.Errorf("FORS native 128f regs = %d, want 64", r)
	}
	if r := ScheduleFor(TREESign, Native, 16).RegsPerThread; r != 128 {
		t.Errorf("TREE native 128f regs = %d, want 128", r)
	}
	if r := ScheduleFor(WOTSSign, Native, 16).RegsPerThread; r != 72 {
		t.Errorf("WOTS native 128f regs = %d, want 72", r)
	}
	// §III-C: TREE_Sign 256f: 168 native -> 95 PTX.
	if r := ScheduleFor(TREESign, Native, 32).RegsPerThread; r != 168 {
		t.Errorf("TREE native 256f regs = %d, want 168", r)
	}
	if r := ScheduleFor(TREESign, PTX, 32).RegsPerThread; r != 95 {
		t.Errorf("TREE PTX 256f regs = %d, want 95", r)
	}
}

// TestPTXAlwaysLowersRegisters: the PTX path must reduce register pressure
// for every kernel and level — that is its architectural purpose.
func TestPTXAlwaysLowersRegisters(t *testing.T) {
	for _, k := range Kernels() {
		for _, n := range []int{16, 24, 32} {
			nat := ScheduleFor(k, Native, n).RegsPerThread
			px := ScheduleFor(k, PTX, n).RegsPerThread
			if px >= nat {
				t.Errorf("%v n=%d: PTX regs %d >= native %d", k, n, px, nat)
			}
		}
	}
}

// TestNativeSchedulingAdvantageShape encodes Table V's observed pattern in
// the raw cycle model: native wins on TREE/WOTS at levels 1 and 3; at level
// 5 the native path's spill-prone aggressive optimization makes PTX cheaper
// even before occupancy effects.
func TestNativeSchedulingAdvantageShape(t *testing.T) {
	for _, k := range []Kernel{TREESign, WOTSSign} {
		for _, n := range []int{16, 24} {
			nat := ScheduleFor(k, Native, n).CyclesPerCompress
			px := ScheduleFor(k, PTX, n).CyclesPerCompress
			if nat >= px {
				t.Errorf("%v n=%d: native cycles %.0f should beat PTX %.0f", k, n, nat, px)
			}
		}
		nat := ScheduleFor(k, Native, 32).CyclesPerCompress
		px := ScheduleFor(k, PTX, 32).CyclesPerCompress
		if px >= nat {
			t.Errorf("%v n=32: PTX cycles %.0f should beat native %.0f", k, px, nat)
		}
	}
	// FORS: PTX wins at every level (Table V first column).
	for _, n := range []int{16, 24, 32} {
		nat := ScheduleFor(FORSSign, Native, n).CyclesPerCompress
		px := ScheduleFor(FORSSign, PTX, n).CyclesPerCompress
		if px >= nat {
			t.Errorf("FORS n=%d: PTX cycles %.0f should beat native %.0f", n, px, nat)
		}
	}
}

// TestCappedRegs checks the launch-bounds spill model.
func TestCappedRegs(t *testing.T) {
	s := ScheduleFor(TREESign, Native, 32) // 168 regs
	regs, spill := s.CappedRegs(0)
	if regs != 168 || spill != 1.0 {
		t.Fatalf("no cap: got %d, %.2f", regs, spill)
	}
	regs, spill = s.CappedRegs(255)
	if regs != 168 || spill != 1.0 {
		t.Fatalf("loose cap: got %d, %.2f", regs, spill)
	}
	regs, spill = s.CappedRegs(128)
	if regs != 128 || spill <= 1.0 {
		t.Fatalf("tight cap: got %d, %.2f", regs, spill)
	}
	_, spillTighter := s.CappedRegs(96)
	if spillTighter <= spill {
		t.Fatal("tighter caps must spill more")
	}
}

// TestCompileTimeShape reproduces Table XI's qualitative result: the
// HERO-Sign build (compile-time branching, per-kernel selection) compiles
// faster than the all-native baseline at every level, and far faster than a
// runtime-branching build that carries both paths.
func TestCompileTimeShape(t *testing.T) {
	heroSel := map[int]map[Kernel]Variant{
		16: {FORSSign: PTX, TREESign: Native, WOTSSign: Native},
		24: {FORSSign: PTX, TREESign: Native, WOTSSign: Native},
		32: {FORSSign: PTX, TREESign: PTX, WOTSSign: PTX},
	}
	for _, n := range []int{16, 24, 32} {
		base := BaselineBuild().CompileSec(n)
		hero := BuildPlan{Selection: heroSel[n]}.CompileSec(n)
		runtime := BuildPlan{RuntimeBranching: true}.CompileSec(n)
		if base < 10 || base > 30 {
			t.Errorf("n=%d: baseline compile %.1fs out of Table XI scale", n, base)
		}
		ratio := base / hero
		if ratio < 1.01 || ratio > 1.6 {
			t.Errorf("n=%d: baseline/hero compile ratio %.2f outside paper's 1.07-1.28 neighbourhood", n, ratio)
		}
		if runtime <= base {
			t.Errorf("n=%d: runtime branching should be the slowest build", n)
		}
	}
}

// TestKernelString covers the Stringers.
func TestKernelString(t *testing.T) {
	if FORSSign.String() != "FORS_Sign" || TREESign.String() != "TREE_Sign" ||
		WOTSSign.String() != "WOTS+_Sign" {
		t.Error("kernel names must match the paper's")
	}
	if Native.String() != "native" || PTX.String() != "PTX" {
		t.Error("variant names")
	}
}
