// Package ptx models the compiler-level dimension of HERO-Sign: the
// instruction schedule of the SHA-256 compression function under the
// "native" CUDA C path versus the hand-tuned PTX path (§III-C), the
// register pressure each path induces in each kernel, and the nvcc
// compile-time behaviour (§IV-E2).
//
// Functionally both paths compute identical digests (they share
// internal/sha2); what differs is the cost model:
//
//   - Native: the compiler emits the classic big-endian load sequence
//     (2 shifts + 1 LOP3 per word) and aggressively reassociates additions
//     into IADD3. Aggressive optimization also inflates live ranges, which
//     shows up as higher registers-per-thread.
//   - PTX: prmt.b32 replaces the shift-based byte swaps (one instruction per
//     word), and the m-parameter mad.lo.u32 trick (paper Fig. 5) pins the
//     multiply-add form at SASS level. Inline asm blocks are opaque to the
//     optimizer, which shortens live ranges (fewer registers) and shrinks
//     the optimization search space (faster compiles), at the price of
//     forgoing some compiler scheduling wins on small-state kernels.
package ptx

import "fmt"

// Variant selects the compilation path for a kernel.
type Variant int

const (
	// Native is the plain CUDA C path compiled with full optimization.
	Native Variant = iota
	// PTX is the inline-assembly path (prmt loads, retained mad).
	PTX
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	if v == PTX {
		return "PTX"
	}
	return "native"
}

// InstrMix is the per-SHA-256-compression instruction budget of a schedule,
// in SASS-level instruction classes.
type InstrMix struct {
	LD    int // shared/const/register-file loads of message words
	PRMT  int // byte-permutation instructions
	Shift int // SHL/SHR/SHF funnel shifts
	LOP3  int // 3-input logic ops (xor/and/maj/ch fusions)
	IADD3 int // 3-input adds
	ADD   int // 2-input adds
	MAD   int // multiply-add (PTX path's pinned form)
}

// issueCost per instruction class, in issue cycles. prmt and mad execute on
// lower-throughput pipes than simple ALU ops (the paper notes prmt's higher
// latency), which is why replacing instructions 1:1 must still win on count.
var issueCost = map[string]float64{
	"LD": 1.0, "PRMT": 1.3, "Shift": 1.0, "LOP3": 1.0,
	"IADD3": 1.0, "ADD": 1.0, "MAD": 1.3,
}

// Total returns the total instruction count.
func (m InstrMix) Total() int {
	return m.LD + m.PRMT + m.Shift + m.LOP3 + m.IADD3 + m.ADD + m.MAD
}

// IssueCycles returns the issue-cycle cost of the mix.
func (m InstrMix) IssueCycles() float64 {
	return float64(m.LD)*issueCost["LD"] +
		float64(m.PRMT)*issueCost["PRMT"] +
		float64(m.Shift)*issueCost["Shift"] +
		float64(m.LOP3)*issueCost["LOP3"] +
		float64(m.IADD3)*issueCost["IADD3"] +
		float64(m.ADD)*issueCost["ADD"] +
		float64(m.MAD)*issueCost["MAD"]
}

// NativeMix is the modeled native schedule for one compression:
// byte swaps as 2 shifts + 1 LOP3 per word, message schedule and rounds
// with IADD3 fusion.
var NativeMix = InstrMix{
	LD:    16,
	Shift: 32 + 288, // byteswap shifts + sigma shifts in schedule/rounds
	LOP3:  16 + 192 + 512,
	IADD3: 212,
	ADD:   104,
}

// PTXMix is the modeled PTX schedule: prmt-based loads and mad-pinned adds.
var PTXMix = InstrMix{
	LD:    16,
	PRMT:  16,
	Shift: 288,
	LOP3:  192 + 512,
	MAD:   180,
	ADD:   88,
}

// Kernel identifies one of the three SPHINCS+ component kernels
// (paper §III: FORS_Sign, TREE_Sign, WOTS+_Sign).
type Kernel int

const (
	FORSSign Kernel = iota
	TREESign
	WOTSSign
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case FORSSign:
		return "FORS_Sign"
	case TREESign:
		return "TREE_Sign"
	case WOTSSign:
		return "WOTS+_Sign"
	}
	return fmt.Sprintf("Kernel(%d)", int(k))
}

// Kernels lists the three component kernels in paper order.
func Kernels() []Kernel { return []Kernel{FORSSign, TREESign, WOTSSign} }

// nativeEfficiency is the per-kernel, per-security-level scheduling bonus of
// the unconstrained native compiler (instruction-scheduling and fusion wins
// the opaque asm path forgoes). The paper observes (Table V) that native
// codegen stays ahead on the register-light kernels at levels 1 and 3,
// while at level 5 the aggressive optimization backfires ("PTX can help
// alleviate aggressive compiler optimizations", §III-C2): huge unrolled
// wots_gen_leaf bodies cause spill traffic that costs more than the
// scheduling wins.
//
// Keyed by kernel, then by n (16/24/32). Values multiply the native
// schedule's issue cycles (lower = faster native code).
var nativeEfficiency = map[Kernel]map[int]float64{
	FORSSign: {16: 1.00, 24: 1.00, 32: 1.02}, // tree reduction: little to fuse
	TREESign: {16: 0.90, 24: 0.91, 32: 1.08}, // big unrolled bodies: wins, then spills
	WOTSSign: {16: 0.90, 24: 0.92, 32: 1.06},
}

// Schedule is the compiled cost model of one kernel under one variant.
type Schedule struct {
	Kernel  Kernel
	Variant Variant
	N       int // hash size of the parameter set (16/24/32)

	Mix               InstrMix
	CyclesPerCompress float64
	RegsPerThread     int
}

// registers per thread, calibrated to the paper's profiling anchors:
// Table III (baseline 128f: FORS 64, TREE 128, WOTS+ 72) and §III-C
// (TREE_Sign 256f: 168 native vs 95 PTX).
var regsNative = map[Kernel]map[int]int{
	FORSSign: {16: 64, 24: 72, 32: 80},
	TREESign: {16: 128, 24: 144, 32: 168},
	WOTSSign: {16: 72, 24: 80, 32: 96},
}

var regsPTX = map[Kernel]map[int]int{
	FORSSign: {16: 48, 24: 56, 32: 62},
	TREESign: {16: 96, 24: 104, 32: 95},
	WOTSSign: {16: 64, 24: 70, 32: 78},
}

// ScheduleFor returns the cost model for (kernel, variant, n).
func ScheduleFor(k Kernel, v Variant, n int) Schedule {
	s := Schedule{Kernel: k, Variant: v, N: n}
	switch v {
	case Native:
		s.Mix = NativeMix
		s.CyclesPerCompress = NativeMix.IssueCycles() * nativeEfficiency[k][n]
		s.RegsPerThread = regsNative[k][n]
	case PTX:
		s.Mix = PTXMix
		s.CyclesPerCompress = PTXMix.IssueCycles()
		s.RegsPerThread = regsPTX[k][n]
	}
	return s
}

// CappedRegs applies a __launch_bounds__-style register cap: the compiler
// respects the cap but pays for it with spill traffic once the demand
// exceeds it. Returns the effective register count and the spill penalty
// multiplier on cycles.
func (s Schedule) CappedRegs(cap int) (regs int, spillFactor float64) {
	if cap <= 0 || s.RegsPerThread <= cap {
		return s.RegsPerThread, 1.0
	}
	over := float64(s.RegsPerThread-cap) / float64(s.RegsPerThread)
	// Each spilled fraction costs local-memory round trips; 25% over-demand
	// costs about 12% extra cycles in this model.
	return cap, 1.0 + 0.5*over
}
