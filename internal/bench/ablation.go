package bench

import (
	"fmt"
	"strings"

	"herosign/internal/core"
	"herosign/internal/core/tuner"
	"herosign/internal/gpu/profile"
	"herosign/internal/spx/params"
)

// Ablation experiments beyond the paper's figures: they probe the design
// choices DESIGN.md calls out (the tuner's alpha heuristic, the launch-group
// granularity, the stream count) so the sensitivity of each knob is
// measurable rather than asserted.

// AblationAlpha sweeps the Tree Tuning utilization floor and reports the
// selected configuration plus the resulting FORS throughput.
func (s *Suite) AblationAlpha() (*Table, error) {
	t := &Table{
		ID: "ablation-alpha", Title: "Tuner alpha sensitivity (SPHINCS+-128f)",
		Header: []string{"alpha", "T_set", "N_tree", "F", "U_T", "sync", "FORS KOPS"},
		Notes:  []string{"alpha=0.6 is the default that reproduces Table IV"},
	}
	p := params.SPHINCSPlus128f
	for _, alpha := range []float64{0.1, 0.3, 0.5, 0.6, 0.7, 0.9} {
		r, err := tuner.Tune(p, s.Dev, tuner.Options{Alpha: alpha})
		if err != nil {
			t.Rows = append(t.Rows, []string{f2(alpha), "-", "-", "-", "-", "-", "infeasible"})
			continue
		}
		sg, err := core.New(core.Config{
			Params: p, Device: s.Dev, Features: core.AllFeatures(), Alpha: alpha,
		})
		if err != nil {
			return nil, err
		}
		res, err := sg.MeasureBatch(s.key(p), s.Batch, s.Sample)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			f2(alpha), d0(int64(r.ThreadsPerSet)), d0(int64(r.TreesPerSet)),
			d0(int64(r.F)), f4(r.ThreadUtil), f1(r.SyncScore),
			f1(res.KernelKOPS["FORS_Sign"]),
		})
	}
	return t, nil
}

// AblationSubBatch sweeps the launch-group size (the paper's §IV-E1
// "appropriate batch sizes" exploration).
func (s *Suite) AblationSubBatch() (*Table, error) {
	t := &Table{
		ID: "ablation-subbatch", Title: "Launch-group (sub-batch) sensitivity (SPHINCS+-128f, batch 1024)",
		Header: []string{"SubBatch", "KOPS (graph)", "KOPS (streams)", "Launch us (streams)"},
		Notes:  []string{"paper §IV-E1: ~64 preferred when transfers matter, >=512 for raw throughput"},
	}
	p := params.SPHINCSPlus128f
	for _, sb := range []int{8, 16, 32, 64, 128, 256, 512} {
		graphF := core.AllFeatures()
		sgGraph, err := core.New(core.Config{
			Params: p, Device: s.Dev, Features: graphF, SubBatch: sb,
		})
		if err != nil {
			return nil, err
		}
		streamF := core.AllFeatures()
		streamF.Graph = false
		sgStream, err := core.New(core.Config{
			Params: p, Device: s.Dev, Features: streamF, SubBatch: sb,
		})
		if err != nil {
			return nil, err
		}
		rg, err := sgGraph.MeasureBatch(s.key(p), s.Batch, s.Sample)
		if err != nil {
			return nil, err
		}
		rs, err := sgStream.MeasureBatch(s.key(p), s.Batch, s.Sample)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			d0(int64(sb)), f2(rg.ThroughputKOPS), f2(rs.ThroughputKOPS),
			f2(rs.LaunchOverheadUs),
		})
	}
	return t, nil
}

// AblationStreams sweeps the stream count for HERO-Sign without graphs.
func (s *Suite) AblationStreams() (*Table, error) {
	t := &Table{
		ID: "ablation-streams", Title: "Stream-count sensitivity (SPHINCS+-128f, streams mode)",
		Header: []string{"Streams", "KOPS", "Idle us"},
	}
	p := params.SPHINCSPlus128f
	f := core.AllFeatures()
	f.Graph = false
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		sg, err := core.New(core.Config{Params: p, Device: s.Dev, Features: f, Streams: n})
		if err != nil {
			return nil, err
		}
		res, err := sg.MeasureBatch(s.key(p), s.Batch, s.Sample)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{d0(int64(n)), f2(res.ThroughputKOPS), f2(res.IdleUs)})
	}
	return t, nil
}

// Profile renders Nsight-style kernel reports for the baseline and HERO
// configurations at 128f (the raw material behind Tables III and VIII).
func (s *Suite) Profile() (*Table, error) {
	p := params.SPHINCSPlus128f
	var sb strings.Builder
	for _, cfg := range []struct {
		name  string
		feats core.Features
	}{
		{"baseline", core.Baseline()},
		{"hero", core.AllFeatures()},
	} {
		res, err := s.measure(p, cfg.feats, 0, nil)
		if err != nil {
			return nil, err
		}
		for _, k := range kernelNames {
			sb.WriteString(fmt.Sprintf("[%s]\n", cfg.name))
			profile.FromStats(s.Dev, res.Kernels[k]).Render(&sb)
		}
	}
	t := &Table{
		ID: "profile", Title: "Nsight-style kernel profiles (SPHINCS+-128f)",
		Header: []string{"report"},
	}
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		t.Rows = append(t.Rows, []string{line})
	}
	return t, nil
}
