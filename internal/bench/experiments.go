package bench

import (
	"fmt"

	"herosign/internal/core"
	"herosign/internal/cpuref"
	"herosign/internal/gpu/device"
	"herosign/internal/ptx"
	"herosign/internal/spx/params"
)

var kernelNames = []string{"FORS_Sign", "TREE_Sign", "WOTS+_Sign"}

// Table1 regenerates the parameter-set table.
func (s *Suite) Table1() (*Table, error) {
	t := &Table{
		ID: "table1", Title: "SPHINCS+-f parameter sets (paper Table I)",
		Header: []string{"Scheme", "n", "h", "d", "log(t)", "k", "w", "sig bytes"},
	}
	for _, p := range params.FastSets() {
		t.Rows = append(t.Rows, []string{
			p.Name, d0(int64(p.N)), d0(int64(p.H)), d0(int64(p.D)),
			d0(int64(p.LogT)), d0(int64(p.K)), d0(int64(p.W)), d0(int64(p.SigBytes)),
		})
	}
	return t, nil
}

// Table2 regenerates the baseline time breakdown: per-kernel time and idle
// time for one Block=1024 batch.
func (s *Suite) Table2() (*Table, error) {
	t := &Table{
		ID: "table2", Title: "Baseline time breakdown, ms (paper Table II)",
		Header: []string{"Set", "FORS", "Idle", "MSS(TREE)", "WOTS+",
			"paper FORS", "paper Idle", "paper MSS", "paper WOTS+"},
		Notes: []string{"modeled on " + s.Dev.Name + "; paper columns: measured TCAS-SPHINCSp"},
	}
	for _, p := range params.FastSets() {
		res, err := s.measure(p, core.Baseline(), 0, nil)
		if err != nil {
			return nil, err
		}
		pp := paperTable2[p.Name]
		t.Rows = append(t.Rows, []string{
			p.Name,
			f2(res.Kernels["FORS_Sign"].DurationUs / 1000),
			f2(res.IdleUs / 1000),
			f2(res.Kernels["TREE_Sign"].DurationUs / 1000),
			f2(res.Kernels["WOTS+_Sign"].DurationUs / 1000),
			f2(pp.FORS), f2(pp.Idle), f2(pp.MSS), f2(pp.WOTS),
		})
	}
	return t, nil
}

// Table3 regenerates the baseline 128f kernel profile (occupancies and
// registers per thread).
func (s *Suite) Table3() (*Table, error) {
	p := params.SPHINCSPlus128f
	res, err := s.measure(p, core.Baseline(), 0, nil)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "table3", Title: "Baseline kernel profile, SPHINCS+-128f (paper Table III)",
		Header: []string{"Metric", "FORS_Sign", "TREE_Sign", "WOTS+_Sign"},
		Notes: []string{
			"paper: warp occ 17/25/46%, theoretical 66.67/25/52.08%, regs 64/128/72",
		},
	}
	row := func(name string, get func(k string) string) {
		t.Rows = append(t.Rows, []string{name,
			get("FORS_Sign"), get("TREE_Sign"), get("WOTS+_Sign")})
	}
	row("Warp Occupancy %", func(k string) string { return f2(res.Kernels[k].AchievedOccupancyPct) })
	row("Theoretical Occupancy %", func(k string) string { return f2(res.Kernels[k].Occ.TheoreticalPct) })
	row("Registers Per Thread", func(k string) string { return d0(int64(res.Kernels[k].RegsPerThread)) })
	return t, nil
}

// Table4 regenerates the Tree Tuning search results.
func (s *Suite) Table4() (*Table, error) {
	t := &Table{
		ID: "table4", Title: "Tree Tuning search results (paper Table IV)",
		Header: []string{"Set", "Shared Util", "Thread Util", "F", "mode", "paper"},
	}
	paper := map[string]string{
		"SPHINCS+-128f": "0.6875/0.6875/F=3",
		"SPHINCS+-192f": "0.75/0.75/F=2",
		"SPHINCS+-256f": "Relax_FORS",
	}
	for _, p := range params.FastSets() {
		sg, err := s.signer(p, core.AllFeatures(), nil)
		if err != nil {
			return nil, err
		}
		r := sg.Tuning()
		mode := "standard"
		if r.Relax {
			mode = fmt.Sprintf("relax(L=%d)", r.LeavesPerThread)
		}
		t.Rows = append(t.Rows, []string{
			p.Name, f4(r.SharedUtil), f4(r.ThreadUtil), d0(int64(r.F)), mode, paper[p.Name],
		})
	}
	return t, nil
}

// Table5 regenerates the adaptive PTX/native selection.
func (s *Suite) Table5() (*Table, error) {
	t := &Table{
		ID: "table5", Title: "PTX branch selection (paper Table V; ok = PTX, x = native)",
		Header: []string{"Set", "FORS_Sign", "TREE_Sign", "WOTS+_Sign", "paper"},
	}
	paper := map[string]string{
		"SPHINCS+-128f": "ok x x",
		"SPHINCS+-192f": "ok x x",
		"SPHINCS+-256f": "ok ok ok",
	}
	mark := func(v ptx.Variant) string {
		if v == ptx.PTX {
			return "ok"
		}
		return "x"
	}
	for _, p := range params.FastSets() {
		sg, err := s.signer(p, core.AllFeatures(), nil)
		if err != nil {
			return nil, err
		}
		sel, err := sg.Selection(s.key(p))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			p.Name, mark(sel[ptx.FORSSign]), mark(sel[ptx.TREESign]), mark(sel[ptx.WOTSSign]),
			paper[p.Name],
		})
	}
	return t, nil
}

// Table6 regenerates the bank-conflict comparison at Block = 1.
func (s *Suite) Table6() (*Table, error) {
	t := &Table{
		ID: "table6", Title: "Shared-memory bank conflicts, Block = 1 (paper Table VI)",
		Header: []string{"Set", "Kernel", "Base Load", "Base Store", "Pad Load", "Pad Store"},
		Notes: []string{
			"counts cover reduction-tree traffic; the paper's Nsight counts also include",
			"hash-internal shared accesses, so absolute magnitudes differ — the shape",
			"(large without padding, near zero with) is the reproduced result",
		},
	}
	base := core.Features{MMTP: true, Fusion: true, PTX: true, HybridMem: true}
	padded := base
	padded.FreeBank = true
	for _, p := range params.FastSets() {
		sgB, err := s.signer(p, base, nil)
		if err != nil {
			return nil, err
		}
		sgP, err := s.signer(p, padded, nil)
		if err != nil {
			return nil, err
		}
		rb, err := sgB.SignBatch(s.key(p), [][]byte{[]byte("table6-block1")})
		if err != nil {
			return nil, err
		}
		rp, err := sgP.SignBatch(s.key(p), [][]byte{[]byte("table6-block1")})
		if err != nil {
			return nil, err
		}
		for _, k := range []string{"FORS_Sign", "TREE_Sign"} {
			b := rb.Kernels[k].Shmem
			q := rp.Kernels[k].Shmem
			t.Rows = append(t.Rows, []string{
				p.Name, k,
				d0(b.LoadConflicts), d0(b.StoreConflicts),
				d0(q.LoadConflicts), d0(q.StoreConflicts),
			})
		}
	}
	return t, nil
}

// Table7 regenerates the platform catalog.
func (s *Suite) Table7() (*Table, error) {
	t := &Table{
		ID: "table7", Title: "GPU platforms (paper Table VII)",
		Header: []string{"GPU", "Architecture", "SM Version", "Base Clock (MHz)", "SMs", "CUDA Cores"},
	}
	for _, d := range device.All() {
		t.Rows = append(t.Rows, []string{
			d.Name, d.Arch, fmt.Sprintf("SM%d", d.SMVersion),
			d0(int64(d.BaseClockMHz)), d0(int64(d.SMs)), d0(int64(d.CUDACores())),
		})
	}
	return t, nil
}

// Table8 regenerates the per-kernel comparison between baseline and
// HERO-Sign.
func (s *Suite) Table8() (*Table, error) {
	t := &Table{
		ID: "table8", Title: "Kernel performance, Block = 1024 (paper Table VIII)",
		Header: []string{"Set", "Kernel",
			"Base KOPS", "Hero KOPS", "Speedup", "paper speedup",
			"Base Occ%", "Hero Occ%", "Base Cmp%", "Hero Cmp%", "Base Mem%", "Hero Mem%"},
	}
	heroF := core.AllFeatures()
	heroF.Graph = false // per-kernel metrics are graph-independent
	for _, p := range params.FastSets() {
		rb, err := s.measure(p, core.Baseline(), 0, nil)
		if err != nil {
			return nil, err
		}
		rh, err := s.measure(p, heroF, 0, nil)
		if err != nil {
			return nil, err
		}
		for _, k := range kernelNames {
			b, h := rb.Kernels[k], rh.Kernels[k]
			pp := paperTable8[p.Name][k]
			t.Rows = append(t.Rows, []string{
				p.Name, k,
				f1(rb.KernelKOPS[k]), f1(rh.KernelKOPS[k]),
				f2x(rh.KernelKOPS[k] / rb.KernelKOPS[k]),
				f2x(pp.Hero / pp.Baseline),
				f2(b.AchievedOccupancyPct), f2(h.AchievedOccupancyPct),
				f2(b.ComputeThroughputPct), f2(h.ComputeThroughputPct),
				f2(b.MemoryThroughputPct), f2(h.MemoryThroughputPct),
			})
		}
	}
	return t, nil
}

// Table9 regenerates the cross-platform comparison. The FPGA and ASIC
// comparators are closed hardware: their published numbers are reported as
// constants, and our modeled HERO-Sign throughput/PPS sits beside the
// paper's.
func (s *Suite) Table9() (*Table, error) {
	t := &Table{
		ID: "table9", Title: "GPU vs FPGA/ASIC (paper Table IX; PPS = TDP x time/signature, W*s)",
		Header: []string{"Set", "Hero KOPS", "Hero PPS", "paper KOPS", "paper PPS",
			"Berthet KOPS", "Amiet KOPS", "SPHINCSLET KOPS"},
	}
	for i, p := range params.FastSets() {
		res, err := s.measure(p, core.AllFeatures(), 0, nil)
		if err != nil {
			return nil, err
		}
		kops := res.ThroughputKOPS
		pps := s.Dev.TDPWatts / (kops * 1000)
		row := paperTable9[i]
		berthet := "n/a"
		if row.BerthetKOPS > 0 {
			berthet = fmt.Sprintf("%.5f", row.BerthetKOPS)
		}
		t.Rows = append(t.Rows, []string{
			p.Name, f2(kops), fmt.Sprintf("%.4f", pps),
			f2(row.HeroKOPS), fmt.Sprintf("%.3f", row.HeroPPS),
			berthet, f2(row.AmietKOPS), f2(row.SphincsletKOPS),
		})
	}
	return t, nil
}

// Table10 regenerates the CPU comparison: the paper's AVX2 constants plus a
// real measured multi-goroutine Go signer on this machine.
func (s *Suite) Table10() (*Table, error) {
	t := &Table{
		ID: "table10", Title: "CPU comparison (paper Table X) + measured Go CPU baseline",
		Header: []string{"Set", "AVX2 1T KOPS", "AVX2 16T KOPS", "Go measured KOPS",
			"Hero KOPS", "Hero/AVX2-16T"},
		Notes: []string{"Go measured: this machine, GOMAXPROCS workers, 16 messages"},
	}
	for _, p := range params.FastSets() {
		msgs := make([][]byte, 16)
		for i := range msgs {
			msgs[i] = []byte{byte(i), 'c', 'p', 'u'}
		}
		_, cpuRes, err := cpuref.SignBatch(s.key(p), msgs, 0)
		if err != nil {
			return nil, err
		}
		gres, err := s.measure(p, core.AllFeatures(), 0, nil)
		if err != nil {
			return nil, err
		}
		avx := cpuref.PaperAVX2KOPS[p.Name]
		t.Rows = append(t.Rows, []string{
			p.Name, fmt.Sprintf("%.3f", avx.SingleThread), fmt.Sprintf("%.3f", avx.Threads16),
			fmt.Sprintf("%.3f", cpuRes.KOPS),
			f2(gres.ThroughputKOPS), f1(gres.ThroughputKOPS / avx.Threads16),
		})
	}
	return t, nil
}

// Table11 regenerates the compilation-time comparison from the nvcc model.
func (s *Suite) Table11() (*Table, error) {
	t := &Table{
		ID: "table11", Title: "Compilation time, s (paper Table XI)",
		Header: []string{"Set", "Baseline", "HERO-Sign", "Speedup",
			"paper Base", "paper Hero", "paper Speedup"},
	}
	heroSel := map[string]map[ptx.Kernel]ptx.Variant{
		"SPHINCS+-128f": {ptx.FORSSign: ptx.PTX, ptx.TREESign: ptx.Native, ptx.WOTSSign: ptx.Native},
		"SPHINCS+-192f": {ptx.FORSSign: ptx.PTX, ptx.TREESign: ptx.Native, ptx.WOTSSign: ptx.Native},
		"SPHINCS+-256f": {ptx.FORSSign: ptx.PTX, ptx.TREESign: ptx.PTX, ptx.WOTSSign: ptx.PTX},
	}
	for _, p := range params.FastSets() {
		base := ptx.BaselineBuild().CompileSec(p.N)
		hero := ptx.BuildPlan{Selection: heroSel[p.Name]}.CompileSec(p.N)
		pp := paperTable11[p.Name]
		t.Rows = append(t.Rows, []string{
			p.Name, f2(base), f2(hero), f2x(base / hero),
			f2(pp.Baseline), f2(pp.Hero), f2x(pp.Baseline / pp.Hero),
		})
	}
	return t, nil
}

// Fig11 regenerates the FORS_Sign optimization-step walk.
func (s *Suite) Fig11() (*Table, error) {
	t := &Table{
		ID: "fig11", Title: "FORS_Sign optimization steps, KOPS (paper Fig. 11)",
		Header: []string{"Set", "Step", "KOPS", "Step Speedup", "Cumulative", "paper KOPS"},
	}
	for _, p := range params.FastSets() {
		var base, prev float64
		for i, step := range core.OptimizationSteps() {
			res, err := s.measure(p, step.Feats, 0, nil)
			if err != nil {
				return nil, err
			}
			kops := res.KernelKOPS["FORS_Sign"]
			if i == 0 {
				base, prev = kops, kops
			}
			name := step.Name
			if name == "+FS" && res.Kernels["FORS_Sign"].SharedMemBytes > s.Dev.StaticSharedMemPerBlock {
				name = "+FS(Relax_FORS)"
			}
			t.Rows = append(t.Rows, []string{
				p.Name, name, f1(kops), f2x(kops / prev), f2x(kops / base),
				f1(paperFig11[p.Name][i]),
			})
			prev = kops
		}
	}
	return t, nil
}

// Fig12 regenerates the end-to-end throughput and launch-latency chart.
func (s *Suite) Fig12() (*Table, error) {
	t := &Table{
		ID: "fig12", Title: "End-to-end KOPS and launch latency (paper Fig. 12)",
		Header: []string{"Set", "Config", "KOPS", "LaunchOverhead us", "Idle us",
			"paper KOPS", "paper latency us"},
	}
	configs := []struct {
		name  string
		feats core.Features
		kops  int // index into paperFig12KOPS
		lat   int // index into paperFig12LatencyUs, -1 when not reported
	}{
		{"Baseline (no Graph)", core.Baseline(), 0, 0},
		{"Baseline (with Graph)", func() core.Features { f := core.Baseline(); f.Graph = true; return f }(), 1, -1},
		{"HERO-Sign (no Graph)", func() core.Features { f := core.AllFeatures(); f.Graph = false; return f }(), 2, 1},
		{"HERO-Sign (with Graph)", core.AllFeatures(), 3, 2},
	}
	for _, p := range params.FastSets() {
		for _, cfg := range configs {
			res, err := s.measure(p, cfg.feats, 0, nil)
			if err != nil {
				return nil, err
			}
			paperLat := "-"
			if cfg.lat >= 0 {
				paperLat = f2(paperFig12LatencyUs[p.Name][cfg.lat])
			}
			t.Rows = append(t.Rows, []string{
				p.Name, cfg.name, f2(res.ThroughputKOPS),
				f2(res.LaunchOverheadUs), f2(res.IdleUs),
				f2(paperFig12KOPS[p.Name][cfg.kops]), paperLat,
			})
		}
	}
	return t, nil
}

// Fig13 regenerates the block-size sensitivity sweep.
func (s *Suite) Fig13() (*Table, error) {
	t := &Table{
		ID: "fig13", Title: "Block-size sensitivity (paper Fig. 13)",
		Header: []string{"Set", "Block Size", "Baseline KOPS", "HERO KOPS", "Speedup"},
	}
	sizes := []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	for _, p := range params.FastSets() {
		for _, bs := range sizes {
			rb, err := s.measure(p, core.Baseline(), bs, nil)
			if err != nil {
				return nil, err
			}
			rh, err := s.measure(p, core.AllFeatures(), bs, nil)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				p.Name, d0(int64(bs)), f2(rb.ThroughputKOPS), f2(rh.ThroughputKOPS),
				f2x(rh.ThroughputKOPS / rb.ThroughputKOPS),
			})
		}
	}
	return t, nil
}

// Fig14 regenerates the cross-architecture comparison.
func (s *Suite) Fig14() (*Table, error) {
	t := &Table{
		ID: "fig14", Title: "Cross-architecture comparison, Block = 1024 (paper Fig. 14)",
		Header: []string{"GPU", "Set", "Baseline KOPS", "HERO KOPS", "Speedup"},
	}
	for _, d := range device.All() {
		for _, p := range params.FastSets() {
			rb, err := s.measure(p, core.Baseline(), 0, d)
			if err != nil {
				return nil, err
			}
			rh, err := s.measure(p, core.AllFeatures(), 0, d)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				d.Name, p.Name, f2(rb.ThroughputKOPS), f2(rh.ThroughputKOPS),
				f2x(rh.ThroughputKOPS / rb.ThroughputKOPS),
			})
		}
	}
	return t, nil
}

// InputSize regenerates the §IV-E3 input-length sweep: throughput is
// expected to be essentially flat because H_msg reduces any input to a
// fixed digest before the (fixed) tree workload.
func (s *Suite) InputSize() (*Table, error) {
	t := &Table{
		ID: "inputsize", Title: "Input-length sensitivity, Block = 1024 (paper §IV-E3)",
		Header: []string{"Set", "Input KB", "HERO KOPS", "Baseline KOPS", "Speedup"},
		Notes:  []string{"paper: average speedups 1.30x/1.28x/1.45x; workload constant in input length"},
	}
	for _, p := range params.FastSets() {
		for _, kb := range []int{1, 2, 3, 4} {
			// Input length affects only the host-side H_msg; model it by
			// charging the extra digest traffic via the standard batch (the
			// tree workload is identical, which is the paper's observation).
			rb, err := s.measure(p, core.Baseline(), 0, nil)
			if err != nil {
				return nil, err
			}
			rh, err := s.measure(p, core.AllFeatures(), 0, nil)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				p.Name, d0(int64(kb)), f2(rh.ThroughputKOPS), f2(rb.ThroughputKOPS),
				f2x(rh.ThroughputKOPS / rb.ThroughputKOPS),
			})
		}
	}
	return t, nil
}
