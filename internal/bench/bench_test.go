package bench

import (
	"strings"
	"testing"

	"herosign/internal/gpu/device"
)

func fastSuite() *Suite {
	s := NewSuite(device.RTX4090)
	s.Batch = 64
	s.Sample = 1
	return s
}

// TestEveryExperimentRuns executes each generator once on a reduced batch
// and checks structural validity of the output table.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short")
	}
	s := fastSuite()
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if tab.ID != e.ID {
				t.Errorf("table id %q != experiment id %q", tab.ID, e.ID)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("empty table")
			}
			for i, row := range tab.Rows {
				if len(row) > len(tab.Header) {
					t.Errorf("row %d wider than header", i)
				}
			}
		})
	}
}

// TestRunByIDUnknown covers the error path.
func TestRunByIDUnknown(t *testing.T) {
	if _, err := fastSuite().RunByID("table99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestRender checks the text renderer's alignment and note emission.
func TestRender(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "T",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"hello"},
	}
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"== x: T ==", "a    bbbb", "333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

// TestTable1Static checks the static parameter table without running the
// simulator.
func TestTable1Static(t *testing.T) {
	tab, err := fastSuite().Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][7] != "17088" {
		t.Errorf("128f sig bytes cell = %q", tab.Rows[0][7])
	}
}

// TestTable4AgainstPaper checks the tuning table contains the exact
// published utilizations.
func TestTable4AgainstPaper(t *testing.T) {
	tab, err := fastSuite().Table4()
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows[0][1] != "0.6875" || tab.Rows[0][3] != "3" {
		t.Errorf("128f tuning row = %v", tab.Rows[0])
	}
	if tab.Rows[1][1] != "0.7500" || tab.Rows[1][3] != "2" {
		t.Errorf("192f tuning row = %v", tab.Rows[1])
	}
	if !strings.HasPrefix(tab.Rows[2][4], "relax") {
		t.Errorf("256f should report relax mode, got %v", tab.Rows[2])
	}
}

// TestTable5MatchesPaperSelection asserts the reproduced Table V equals the
// published selection on RTX 4090.
func TestTable5MatchesPaperSelection(t *testing.T) {
	tab, err := fastSuite().Table5()
	if err != nil {
		t.Fatal(err)
	}
	want := [][3]string{
		{"ok", "x", "x"},
		{"ok", "x", "x"},
		{"ok", "ok", "ok"},
	}
	for i, w := range want {
		for j := 0; j < 3; j++ {
			if tab.Rows[i][1+j] != w[j] {
				t.Errorf("row %d kernel %d: got %q want %q", i, j, tab.Rows[i][1+j], w[j])
			}
		}
	}
}
