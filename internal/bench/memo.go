package bench

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"herosign/internal/cpuref"
	"herosign/internal/spx"
	"herosign/internal/spx/params"
)

// Memo measures the per-key hypertree memoization cache: single-thread
// wall-clock cpuref signing throughput cold (no cache) vs warmed
// steady-state (pinned layers prebuilt, the working set's lower subtrees
// and WOTS slots resident from a populate pass). The steady rows model a
// service signing a bounded working set of messages — certificate or token
// re-issuance — where nearly every hypertree layer is a cache hit. The
// uniform row signs fresh messages against a warm cache, isolating the
// gain from the pinned upper layers alone. Byte-identity of cached vs
// uncached signatures is asserted on every message measured.
func (s *Suite) Memo() (*Table, error) {
	const budget = int64(8) << 20
	t := &Table{
		ID:     "memo",
		Title:  "Per-key hypertree memoization: cold vs warmed steady-state, 1 thread (wall-clock)",
		Header: []string{"Set", "Mode", "W", "sigs/s 1T", "vs cold", "hit%", "resident MiB", "pinned layers"},
		Notes: []string{
			fmt.Sprintf("cache budget %d MiB per key; warm = pinned layers prebuilt + one populate pass over the working set", budget>>20),
			"steady = re-signing the working set; uniform = fresh messages against the warm cache (pinned-layer gain only)",
		},
	}
	for _, p := range params.FastSets() {
		// Working set sized so its lower subtrees fit the LRU share of the
		// budget: per-entry cost grows ~2x from 128f to 192f and ~7x to
		// 256f (wider WOTS chains and larger nodes).
		w := 48
		switch p.N {
		case 24:
			w = 24
		case 32:
			w = 12
		}
		sk := s.key(p)
		msgs := make([][]byte, w)
		for i := range msgs {
			msgs[i] = []byte(fmt.Sprintf("memo working-set %s %d", p.Name, i))
		}

		coldSigs, coldRate, err := measureBatch1T(sk, msgs, nil)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{p.Name, "cold", d0(int64(w)),
			f1(coldRate), f2x(1), "-", "-", "-"})

		cache := spx.NewTreeCache(sk, budget)
		cache.Warm(runtime.GOMAXPROCS(0))
		// Populate pass: installs the working set's lower subtrees and
		// message-tagged WOTS slots; not measured.
		if _, _, err := cpuref.SignBatchCached(sk, msgs, 1, cache); err != nil {
			return nil, err
		}
		warmSigs, warmRate, err := measureBatch1T(sk, msgs, cache)
		if err != nil {
			return nil, err
		}
		for i := range msgs {
			if !bytes.Equal(warmSigs[i], coldSigs[i]) {
				return nil, fmt.Errorf("memo: %s message %d: cached signature differs from cold", p.Name, i)
			}
		}
		st := cache.Stats()
		t.Rows = append(t.Rows, []string{p.Name, "steady", d0(int64(w)),
			f1(warmRate), f2x(warmRate / coldRate), f1(hitPct(st)),
			f2(float64(st.ResidentBytes) / (1 << 20)), d0(int64(st.PinnedLayers))})

		if p.Name == params.SPHINCSPlus128f.Name {
			fresh := make([][]byte, w)
			for i := range fresh {
				fresh[i] = []byte(fmt.Sprintf("memo uniform %s %d", p.Name, i))
			}
			refSigs, _, err := measureBatch1T(sk, fresh, nil)
			if err != nil {
				return nil, err
			}
			uniSigs, uniRate, err := measureBatch1T(sk, fresh, cache)
			if err != nil {
				return nil, err
			}
			for i := range fresh {
				if !bytes.Equal(uniSigs[i], refSigs[i]) {
					return nil, fmt.Errorf("memo: uniform message %d: cached signature differs", i)
				}
			}
			st = cache.Stats()
			t.Rows = append(t.Rows, []string{p.Name, "uniform", d0(int64(w)),
				f1(uniRate), f2x(uniRate / coldRate), f1(hitPct(st)),
				f2(float64(st.ResidentBytes) / (1 << 20)), d0(int64(st.PinnedLayers))})
		}
	}
	return t, nil
}

// measureBatch1T signs msgs single-threaded (optionally through cache) and
// returns the signatures plus sigs/s, repeating the batch until roughly
// 250ms of measurement.
func measureBatch1T(sk *spx.PrivateKey, msgs [][]byte, cache *spx.TreeCache) ([][]byte, float64, error) {
	var sigs [][]byte
	var signed int
	var elapsed time.Duration
	for elapsed < 250*time.Millisecond {
		start := time.Now()
		out, _, err := cpuref.SignBatchCached(sk, msgs, 1, cache)
		if err != nil {
			return nil, 0, err
		}
		elapsed += time.Since(start)
		signed += len(msgs)
		sigs = out
	}
	return sigs, float64(signed) / elapsed.Seconds(), nil
}

func hitPct(st spx.TreeCacheStats) float64 {
	total := st.Hits + st.Misses
	if total == 0 {
		return 0
	}
	return 100 * float64(st.Hits) / float64(total)
}
