package bench

import (
	"fmt"

	"herosign/internal/core"
	"herosign/internal/spx/params"
)

// VerifyThroughput measures GPU-simulated batch verification and key
// generation — lifecycle operations beyond the paper's signing focus (its
// baselines CUSPX/TCAS provide them, so an adoptable library must too).
func (s *Suite) VerifyThroughput() (*Table, error) {
	t := &Table{
		ID: "verify", Title: "Batch verification & key generation on the simulated GPU",
		Header: []string{"Set", "Verify KOPS", "Verify Kernel us", "KeyGen Kernel us"},
	}
	for _, p := range params.FastSets() {
		sg, err := s.signer(p, core.AllFeatures(), nil)
		if err != nil {
			return nil, err
		}
		sk := s.key(p)

		const n = 16
		msgs := make([][]byte, n)
		for i := range msgs {
			msgs[i] = []byte(fmt.Sprintf("verify-%d", i))
		}
		res, err := sg.SignBatch(sk, msgs)
		if err != nil {
			return nil, err
		}
		vres, err := sg.VerifyBatch(&sk.PublicKey, msgs, res.Sigs)
		if err != nil {
			return nil, err
		}
		for i, ok := range vres.OK {
			if !ok {
				return nil, fmt.Errorf("verify experiment: signature %d rejected", i)
			}
		}

		seeds := make([]core.SeedTriple, 4)
		for i := range seeds {
			mk := func(tag byte) []byte {
				b := make([]byte, p.N)
				for j := range b {
					b[j] = byte(j) + tag + byte(i)
				}
				return b
			}
			seeds[i] = core.SeedTriple{SKSeed: mk(1), SKPRF: mk(2), PKSeed: mk(3)}
		}
		kres, err := sg.KeyGenBatch(seeds)
		if err != nil {
			return nil, err
		}

		t.Rows = append(t.Rows, []string{
			p.Name, f2(vres.ThroughputKOPS),
			f2(vres.Kernel.DurationUs), f2(kres.Kernel.DurationUs),
		})
	}
	return t, nil
}
