package bench

import (
	"fmt"
	"runtime"
	"time"

	"herosign/internal/core"
	"herosign/internal/cpuref"
	"herosign/internal/sha2"
	"herosign/internal/spx/params"
)

// VerifyThroughput measures batch verification and key generation: the
// GPU-simulated lifecycle numbers, plus wall-clock cpuref verification on
// the build machine — the seed scalar baseline (stdlib-accelerated SHA-256,
// one spx.Verify per pair) against the reusable-Verifier lane-batched path
// (native kernels, cross-signature step-synchronous chains) at one thread
// and all cores. Verdict equality between the paths is asserted on every
// measured batch.
func (s *Suite) VerifyThroughput() (*Table, error) {
	nt := runtime.GOMAXPROCS(0)
	t := &Table{
		ID: "verify", Title: "Batch verification & key generation: simulated GPU and wall-clock CPU",
		Header: []string{"Set", "GPU KOPS", "Verify Kernel us", "KeyGen Kernel us",
			"cpu v/s 1T base", "cpu v/s 1T lane", "1T gain", fmt.Sprintf("cpu v/s %dT lane", nt)},
		Notes: []string{
			"base = seed configuration: stdlib-accelerated SHA-256, one scalar spx.Verify per pair",
			"lane = reusable spx.Verifier, cross-signature lane batching on the default backend (native SHA-NI where available)",
		},
	}
	for _, p := range params.FastSets() {
		sg, err := s.signer(p, core.AllFeatures(), nil)
		if err != nil {
			return nil, err
		}
		sk := s.key(p)

		const n = 16
		msgs := make([][]byte, n)
		for i := range msgs {
			msgs[i] = []byte(fmt.Sprintf("verify-%d", i))
		}
		res, err := sg.SignBatch(sk, msgs)
		if err != nil {
			return nil, err
		}
		vres, err := sg.VerifyBatch(&sk.PublicKey, msgs, res.Sigs)
		if err != nil {
			return nil, err
		}
		for i, ok := range vres.OK {
			if !ok {
				return nil, fmt.Errorf("verify experiment: signature %d rejected", i)
			}
		}

		seeds := make([]core.SeedTriple, 4)
		for i := range seeds {
			mk := func(tag byte) []byte {
				b := make([]byte, p.N)
				for j := range b {
					b[j] = byte(j) + tag + byte(i)
				}
				return b
			}
			seeds[i] = core.SeedTriple{SKSeed: mk(1), SKPRF: mk(2), PKSeed: mk(3)}
		}
		kres, err := sg.KeyGenBatch(seeds)
		if err != nil {
			return nil, err
		}

		// Wall-clock CPU verification over the GPU-produced signatures
		// (byte-identical to cpuref signing, so the comparison is fair).
		pk := &sk.PublicKey
		baseRate, err := measureVerify(msgs, func() ([]bool, error) {
			prevN := sha2.SetNative(false)
			prevA := sha2.SetAccelerated(true)
			ok, _, err := cpuref.VerifyBatchScalar(pk, msgs, res.Sigs, 1)
			sha2.SetAccelerated(prevA)
			sha2.SetNative(prevN)
			return ok, err
		})
		if err != nil {
			return nil, err
		}
		bv := cpuref.NewBatchVerifier(pk)
		lane1Rate, err := measureVerify(msgs, func() ([]bool, error) {
			ok, _, err := bv.VerifyBatch(msgs, res.Sigs, 1)
			return ok, err
		})
		if err != nil {
			return nil, err
		}
		laneNRate, err := measureVerify(msgs, func() ([]bool, error) {
			ok, _, err := bv.VerifyBatch(msgs, res.Sigs, nt)
			return ok, err
		})
		if err != nil {
			return nil, err
		}

		t.Rows = append(t.Rows, []string{
			p.Name, f2(vres.ThroughputKOPS),
			f2(vres.Kernel.DurationUs), f2(kres.Kernel.DurationUs),
			f1(baseRate), f1(lane1Rate), f2x(lane1Rate / baseRate), f1(laneNRate),
		})
	}
	return t, nil
}

// measureVerify repeats the batch until roughly 250ms of measurement and
// returns verifies/s, failing if any verdict comes back false.
func measureVerify(msgs [][]byte, run func() ([]bool, error)) (float64, error) {
	var verified int
	var elapsed time.Duration
	for elapsed < 250*time.Millisecond {
		start := time.Now()
		ok, err := run()
		if err != nil {
			return 0, err
		}
		elapsed += time.Since(start)
		verified += len(msgs)
		for i, o := range ok {
			if !o {
				return 0, fmt.Errorf("verify experiment: cpu path rejected signature %d", i)
			}
		}
	}
	return float64(verified) / elapsed.Seconds(), nil
}
