package bench

import (
	"fmt"
	"time"

	"herosign/internal/cpuref"
	"herosign/internal/sha2"
	"herosign/internal/spx/address"
	"herosign/internal/spx/hashes"
	"herosign/internal/spx/params"
)

// backendName names the active sha2 lane-engine backend.
func backendName() string {
	if sha2.Accelerated() {
		return "stdlib-hw"
	}
	return "portable"
}

// timeOp returns the per-op wall time of f, self-calibrating the iteration
// count to roughly targetMs of measurement.
func timeOp(f func(), targetMs int) time.Duration {
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		elapsed := time.Since(start)
		if elapsed >= time.Duration(targetMs)*time.Millisecond || iters >= 1<<22 {
			return elapsed / time.Duration(iters)
		}
		iters *= 4
	}
}

// LaneEngine measures the host lane-engine wall-clock for SPHINCS+-128f:
// per-F cost and 8-lane batched per-F cost on each available backend, plus
// single-thread measured cpuref.SignBatch throughput. Unlike the modeled
// experiments, every number here is wall-clock on the build machine; this
// is the table a PR cites when it claims a host-side speedup.
func (s *Suite) LaneEngine() (*Table, error) {
	p := params.SPHINCSPlus128f
	t := &Table{
		ID:     "lanes",
		Title:  "Host multi-lane SHA-256 engine, SPHINCS+-128f (wall-clock)",
		Header: []string{"Backend", "F ns/op", "F x8 ns/lane", "SignBatch 1T KOPS"},
		Notes: []string{
			"active backend: " + backendName() +
				"; modeled GPU metrics are independent of the host backend",
		},
	}

	orig := sha2.Accelerated()
	defer sha2.SetAccelerated(orig)

	seed := make([]byte, p.N)
	ctx := hashes.NewCtx(p, seed, seed)
	var adrs [sha2.Lanes]address.Address
	var outs, ins [sha2.Lanes][]byte
	buf := make([]byte, sha2.Lanes*p.N)
	out := make([]byte, sha2.Lanes*p.N)
	for i := 0; i < sha2.Lanes; i++ {
		adrs[i].SetType(address.FORSTree)
		adrs[i].SetTreeIndex(uint32(i))
		ins[i] = buf[i*p.N : (i+1)*p.N]
		outs[i] = out[i*p.N : (i+1)*p.N]
	}
	msgs := make([][]byte, 8)
	for i := range msgs {
		msgs[i] = []byte{byte(i), 'l', 'n'}
	}

	type measured struct {
		fNs  float64
		kops float64
	}
	run := func(accel bool) (measured, error) {
		sha2.SetAccelerated(accel)
		name := backendName()
		fNs := timeOp(func() { ctx.F(outs[0], ins[0], &adrs[0]) }, 5)
		laneNs := timeOp(func() { ctx.FLanes(sha2.Lanes, &outs, &ins, &adrs) }, 5)
		_, res, err := cpuref.SignBatch(s.key(p), msgs, 1)
		if err != nil {
			return measured{}, err
		}
		t.Rows = append(t.Rows, []string{
			name,
			d0(fNs.Nanoseconds()),
			d0(laneNs.Nanoseconds() / sha2.Lanes),
			fmt.Sprintf("%.4f", res.KOPS),
		})
		return measured{fNs: float64(fNs.Nanoseconds()), kops: res.KOPS}, nil
	}

	// Portable first, then the accelerated backend when the platform has one.
	portable, err := run(false)
	if err != nil {
		return nil, err
	}
	sha2.SetAccelerated(true)
	if sha2.Accelerated() {
		hw, err := run(true)
		if err != nil {
			return nil, err
		}
		if hw.fNs > 0 && portable.kops > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"stdlib-hw vs portable: F %.2fx, SignBatch 1T %.2fx",
				portable.fNs/hw.fNs, hw.kops/portable.kops))
		}
	}
	return t, nil
}
