package bench

// Published values from the paper, used for side-by-side shape comparison.
// Keyed by parameter-set name in the -f order the paper's tables use.

// paperTable2 is the TCAS-SPHINCSp time breakdown in ms (Table II).
var paperTable2 = map[string]struct{ FORS, Idle, MSS, WOTS float64 }{
	"SPHINCS+-128f": {1.89, 2.27, 6.57, 0.93},
	"SPHINCS+-192f": {7.75, 2.31, 10.06, 1.33},
	"SPHINCS+-256f": {13.25, 2.29, 26.55, 1.47},
}

// paperTable8 is the kernel throughput comparison in KOPS (Table VIII).
var paperTable8 = map[string]map[string]struct{ Baseline, Hero float64 }{
	"SPHINCS+-128f": {
		"FORS_Sign":  {442.9, 946.3},
		"TREE_Sign":  {125.2, 157.7},
		"WOTS+_Sign": {2493.1, 4915.7},
	},
	"SPHINCS+-192f": {
		"FORS_Sign":  {128.9, 222.0},
		"TREE_Sign":  {88.2, 93.6},
		"WOTS+_Sign": {1457.6, 2464.9},
	},
	"SPHINCS+-256f": {
		"FORS_Sign":  {66.6, 116.4},
		"TREE_Sign":  {36.4, 44.9},
		"WOTS+_Sign": {776.8, 1570.9},
	},
}

// paperFig11 is the FORS_Sign optimization-step throughput in KOPS
// (Figure 11), steps Baseline, MMTP, +FS, +PTX, +HybridME, +FreeBank.
var paperFig11 = map[string][6]float64{
	"SPHINCS+-128f": {442.9, 702.7, 721.8, 752.0, 915.9, 946.3},
	"SPHINCS+-192f": {128.9, 174.1, 178.6, 206.4, 219.1, 222.0},
	"SPHINCS+-256f": {66.6, 73.5, 91.9, 97.8, 106.7, 116.4},
}

// paperFig12KOPS is the end-to-end throughput in KOPS (Figure 12), in the
// order Baseline(no graph), Baseline(with graph), HERO(no graph),
// HERO(with graph).
var paperFig12KOPS = map[string][4]float64{
	"SPHINCS+-128f": {93.17, 97.54, 116.48, 119.47},
	"SPHINCS+-192f": {51.18, 56.50, 60.94, 65.43},
	"SPHINCS+-256f": {23.93, 25.74, 31.28, 33.88},
}

// paperFig12LatencyUs is the kernel launch latency in µs (Figure 12):
// Baseline, HERO (no graph), HERO (with graph).
var paperFig12LatencyUs = map[string][3]float64{
	"SPHINCS+-128f": {4270.00, 308.06, 49.41},
	"SPHINCS+-192f": {4439.00, 2722.75, 42.97},
	"SPHINCS+-256f": {7102.00, 5025.00, 32.10},
}

// paperTable9 holds the cross-platform comparators (Table IX): throughput
// in KOPS and power-per-signature in watt-seconds per signature.
var paperTable9 = []struct {
	Variant        string
	BerthetKOPS    float64 // FPGA XZU3EG, SHA-256 (0 = not supported)
	BerthetPPS     float64
	AmietKOPS      float64 // FPGA Artix-7, SHAKE-256
	AmietPPS       float64
	SphincsletKOPS float64 // ASIC, SHA-256
	HeroKOPS       float64 // paper's HERO-Sign RTX 4090
	HeroPPS        float64
}{
	{"SPHINCS+-128f", 0.016, 0.4, 0.99, 9.76, 0.52, 119.47, 0.003},
	{"SPHINCS+-192f", 0, 0, 0.85, 9.69, 0.20, 65.43, 0.002},
	{"SPHINCS+-256f", 0.00057, 0.474, 0.40, 9.80, 0.10, 33.88, 0.003},
}

// paperTable11 is the average compilation time in seconds (Table XI).
var paperTable11 = map[string]struct{ Baseline, Hero float64 }{
	"SPHINCS+-128f": {18.68, 14.61},
	"SPHINCS+-192f": {23.25, 21.72},
	"SPHINCS+-256f": {24.19, 19.18},
}
