// Package bench regenerates every table and figure of the HERO-Sign
// evaluation (§IV): it runs the baseline and HERO-Sign configurations on
// the simulated devices and formats the same rows/series the paper
// reports, alongside the paper's published values where applicable so the
// shape comparison is immediate.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one rendered experiment.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f2x(v float64) string { return fmt.Sprintf("%.2fx", v) }
func f4(v float64) string  { return fmt.Sprintf("%.4f", v) }
func d0(v int64) string    { return fmt.Sprintf("%d", v) }

// RenderCSV writes the table as RFC-4180-style CSV (quotes only where
// needed), for downstream plotting of the regenerated figures.
func (t *Table) RenderCSV(w io.Writer) {
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				fmt.Fprintf(w, "%q", c)
			} else {
				fmt.Fprint(w, c)
			}
		}
		fmt.Fprintln(w)
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
}
