package bench

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"herosign/internal/spx/params"
	"herosign/service"
)

// Overload measures service goodput under 2x admission-capacity load for
// both shed policies. A bounded single-shard service (queue limit
// queueLimit) on the suite device is hit with one open-loop burst of
// 2x its capacity; the table reports admitted/rejected/shed counts, the
// goodput of admitted requests and their latency tail. Like the lanes
// experiment, every number is wall-clock on the build machine.
func (s *Suite) Overload() (*Table, error) {
	const queueLimit = 16
	offered := 2 * queueLimit
	t := &Table{
		ID:    "overload",
		Title: fmt.Sprintf("Admission control under 2x capacity (limit %d, offered %d, wall-clock)", queueLimit, offered),
		Header: []string{"Policy", "Admitted", "Rejected", "Shed",
			"Goodput sig/s", "p50 ms", "p99 ms"},
		Notes: []string{
			"single shard on " + s.Dev.Name + "; one concurrent burst of 2x the admission cap",
			"rejected = ErrOverloaded at submit (HTTP 429); shed = coalescing requests evicted by drop-oldest-deadline",
		},
	}
	for _, policy := range []service.ShedPolicy{service.RejectNewest, service.DropOldestDeadline} {
		if err := s.overloadRow(t, policy, queueLimit, offered); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func (s *Suite) overloadRow(t *Table, policy service.ShedPolicy, queueLimit, offered int) error {
	p := params.SPHINCSPlus128f
	svc, err := service.New(
		service.WithParams(p),
		service.WithKey(s.key(p)),
		service.WithDevices(s.Dev),
		service.WithQueueLimit(queueLimit),
		// The flush threshold sits above the queue limit so admitted
		// requests coalesce until the deadline — the window in which
		// drop-oldest-deadline has something to shed.
		service.WithMaxBatch(2*queueLimit),
		service.WithFlushDeadline(2*time.Millisecond),
		service.WithShedPolicy(policy),
	)
	if err != nil {
		return err
	}
	defer svc.Close()

	type outcome struct {
		admitted bool
		atSubmit bool // rejected before admission (the HTTP 429 path)
		latency  time.Duration
		err      error
	}
	outcomes := make([]outcome, offered)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < offered; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			fut, err := svc.SubmitSign([]byte(fmt.Sprintf("overload-%d", i)))
			if err != nil {
				outcomes[i] = outcome{atSubmit: true, err: err}
				return
			}
			_, err = fut.Wait(context.Background())
			outcomes[i] = outcome{admitted: err == nil, latency: time.Since(t0), err: err}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	var admitted, rejected int
	var lat []time.Duration
	for _, o := range outcomes {
		switch {
		case o.admitted:
			admitted++
			lat = append(lat, o.latency)
		case errors.Is(o.err, service.ErrOverloaded):
			// Submit-time rejections are the Rejected column; an admitted
			// request later evicted by drop-oldest resolves ErrOverloaded
			// too but is counted only by the Shed column (from Stats).
			if o.atSubmit {
				rejected++
			}
		case o.err != nil:
			return o.err
		}
	}
	st := svc.Stats()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var p50, p99 float64
	if len(lat) > 0 {
		p50 = float64(lat[len(lat)/2].Microseconds()) / 1e3
		p99 = float64(lat[len(lat)*99/100].Microseconds()) / 1e3
	}
	goodput := float64(admitted) / wall.Seconds()
	t.Rows = append(t.Rows, []string{
		policy.String(), d0(int64(admitted)), d0(int64(rejected)), d0(st.ShedTotal),
		f1(goodput), f1(p50), f1(p99),
	})
	return nil
}
