package bench

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"herosign/internal/spx/params"
	"herosign/service"
	"herosign/service/remote"
)

// RemoteFleet measures the distributed fleet-of-fleets path (package
// service/remote): a front end whose backends proxy sign batches over HTTP
// to two in-process leaf servers. Scenarios cover 1x and 2x client
// concurrency, hedged retries on/off, and a degraded leaf that hiccups —
// a large injected latency on a minority of its sign batches, the
// GC-pause/contention-spike shape hedging exists for. (A *uniformly* slow
// replica is the health checker's job, not the hedger's: the 10% hedge
// budget cannot cover 50% slow sends.) Every number is wall-clock on the
// build machine; the interesting comparison is the last two rows' p99,
// with the Hedges column showing the budget the cut cost.
func (s *Suite) RemoteFleet() (*Table, error) {
	const (
		baseWorkers = 4
		warmFor     = 2 * time.Second
		runFor      = 6 * time.Second
		hiccupMs    = 500
		// The hiccup rate must sit under the 10% hedge budget: above it the
		// budget (correctly) starves some hiccups of their hedge and the
		// unhedged ones own the p99 anyway.
		hiccupEvery = 12
	)
	t := &Table{
		ID:    "remote",
		Title: "Remote fleet-of-fleets: goodput and tail vs load, hedging, degraded leaf (wall-clock)",
		Header: []string{"Scenario", "OK", "429", "Goodput sig/s",
			"p50 ms", "p99 ms", "Hedges", "Wins"},
		Notes: []string{
			fmt.Sprintf("two leaf servers on %s behind HTTP; front end proxies via service/remote", s.Dev.Name),
			fmt.Sprintf("degraded = one leaf hiccups +%dms on every %dth sign batch; hedge = p90 of recent completions, budget 10%%", hiccupMs, hiccupEvery),
			"a hedged hiccup completes at ~p90 + one clean leaf round-trip; unhedged it rides out the full hiccup",
		},
	}

	p := params.SPHINCSPlus128f
	key := s.key(p)

	// Two persistent leaves; scenario code flips the injected hiccup.
	type leafProc struct {
		svc     *service.Service
		srv     *httptest.Server
		delayMs atomic.Int64
		batches atomic.Int64
	}
	leaves := make([]*leafProc, 2)
	for i := range leaves {
		svc, err := service.New(
			service.WithParams(p),
			service.WithKey(key),
			service.WithDevices(s.Dev),
			service.WithQueueLimit(service.AutoQueueLimit),
		)
		if err != nil {
			return nil, err
		}
		lp := &leafProc{svc: svc}
		h := svc.Handler()
		lp.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/sign/batch" {
				if d := lp.delayMs.Load(); d > 0 && lp.batches.Add(1)%hiccupEvery == 0 {
					time.Sleep(time.Duration(d) * time.Millisecond)
				}
			}
			h.ServeHTTP(w, r)
		}))
		leaves[i] = lp
		defer lp.srv.Close()
		defer lp.svc.Close()
	}
	urls := []string{leaves[0].srv.URL, leaves[1].srv.URL}

	scenarios := []struct {
		name    string
		workers int
		hedgeP  int
		degrade bool
	}{
		{"1x load", baseWorkers, 0, false},
		{"2x load", 2 * baseWorkers, 0, false},
		{"1x + hedge-p90", baseWorkers, 90, false},
		{"1x, leaf degraded", baseWorkers, 0, true},
		{"1x, degraded + hedge-p90", baseWorkers, 90, true},
	}
	for _, sc := range scenarios {
		if sc.degrade {
			leaves[0].delayMs.Store(hiccupMs)
		} else {
			leaves[0].delayMs.Store(0)
		}

		fleet, err := remote.NewFleet(urls, remote.Options{
			HedgePercentile: sc.hedgeP,
			ProbeInterval:   200 * time.Millisecond,
			// The degraded leaf must stay in rotation — this experiment
			// measures hedging around a slow replica, not ejection of it.
			LatencyZLimit: -1,
		})
		if err != nil {
			return nil, err
		}
		front, err := service.New(
			service.WithParams(p),
			service.WithKey(key),
			service.WithBackends(fleet.Backends()...),
			service.WithQueueLimit(service.AutoQueueLimit),
		)
		if err != nil {
			return nil, err
		}

		var (
			mu        sync.Mutex
			lats      []time.Duration
			overloads int64
		)
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		var seq atomic.Int64
		// Warm the coalescer, the leaf signers and the hedge tracker before
		// the measured window opens.
		warmed := make(chan struct{})
		time.AfterFunc(warmFor, func() { close(warmed) })
		for w := 0; w < sc.workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					msg := fmt.Sprintf("remote-bench-%d", seq.Add(1))
					t0 := time.Now()
					fut, err := front.SubmitSign([]byte(msg))
					if err == nil {
						_, err = fut.Wait(ctx)
					}
					switch {
					case ctx.Err() != nil:
						return
					case err == nil:
						select {
						case <-warmed:
							mu.Lock()
							lats = append(lats, time.Since(t0))
							mu.Unlock()
						default:
						}
					case service.IsOverloaded(err):
						atomic.AddInt64(&overloads, 1)
						time.Sleep(service.RetryAfter(err))
					default:
						// Hard errors abort the experiment below.
						mu.Lock()
						lats = nil
						mu.Unlock()
						cancel()
						return
					}
				}
			}()
		}
		<-warmed
		windowStart := time.Now()
		time.Sleep(runFor)
		cancel()
		wg.Wait()
		wall := time.Since(windowStart)

		if len(lats) == 0 {
			front.Close()
			return nil, fmt.Errorf("bench remote: scenario %q produced no successful signs", sc.name)
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		p50 := float64(lats[len(lats)/2].Microseconds()) / 1e3
		p99 := float64(lats[len(lats)*99/100].Microseconds()) / 1e3
		var hedges, wins int64
		for _, rl := range front.Stats().RemoteLeaves {
			hedges += rl.HedgesSent
			wins += rl.HedgeWins
		}
		front.Close()

		t.Rows = append(t.Rows, []string{
			sc.name, d0(int64(len(lats))), d0(atomic.LoadInt64(&overloads)),
			f1(float64(len(lats)) / wall.Seconds()), f1(p50), f1(p99),
			d0(hedges), d0(wins),
		})
	}
	return t, nil
}
