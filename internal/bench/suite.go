package bench

import (
	"fmt"
	"sort"

	"herosign/internal/core"
	"herosign/internal/gpu/device"
	"herosign/internal/spx"
	"herosign/internal/spx/params"
)

// Suite runs experiments against one device model.
type Suite struct {
	Dev *device.Device
	// Batch is the grid size used for throughput experiments (the paper's
	// Block = 1024). Zero selects 1024.
	Batch int
	// Sample bounds functional execution per kernel launch; counters are
	// scaled (see sim.Engine). Zero selects 2.
	Sample int

	keys    map[string]*spx.PrivateKey
	signers map[string]*core.Signer
}

// NewSuite builds a Suite for the device (nil selects the RTX 4090, the
// paper's primary platform).
func NewSuite(d *device.Device) *Suite {
	if d == nil {
		d = device.RTX4090
	}
	return &Suite{
		Dev:     d,
		Batch:   1024,
		Sample:  2,
		keys:    map[string]*spx.PrivateKey{},
		signers: map[string]*core.Signer{},
	}
}

func (s *Suite) key(p *params.Params) *spx.PrivateKey {
	if k, ok := s.keys[p.Name]; ok {
		return k
	}
	seed := func(tag byte) []byte {
		b := make([]byte, p.N)
		for i := range b {
			b[i] = byte(i*11) ^ tag
		}
		return b
	}
	k, err := spx.KeyFromSeeds(p, seed(0xA1), seed(0xB2), seed(0xC3))
	if err != nil {
		panic(err) // deterministic seeds over validated params cannot fail
	}
	s.keys[p.Name] = k
	return k
}

func featKey(f core.Features) string {
	return fmt.Sprintf("%t%t%t%t%t%t", f.MMTP, f.Fusion, f.PTX, f.HybridMem, f.FreeBank, f.Graph)
}

func (s *Suite) signer(p *params.Params, f core.Features, dev *device.Device) (*core.Signer, error) {
	if dev == nil {
		dev = s.Dev
	}
	key := p.Name + "/" + dev.Name + "/" + featKey(f)
	if sg, ok := s.signers[key]; ok {
		return sg, nil
	}
	sg, err := core.New(core.Config{Params: p, Device: dev, Features: f})
	if err != nil {
		return nil, err
	}
	s.signers[key] = sg
	return sg, nil
}

// measure runs a sampled timing batch.
func (s *Suite) measure(p *params.Params, f core.Features, batch int, dev *device.Device) (*core.BatchResult, error) {
	sg, err := s.signer(p, f, dev)
	if err != nil {
		return nil, err
	}
	if batch == 0 {
		batch = s.Batch
	}
	return sg.MeasureBatch(s.key(p), batch, s.Sample)
}

// Experiment couples an id with its generator.
type Experiment struct {
	ID    string
	Title string
	Run   func(s *Suite) (*Table, error)
}

// Experiments lists every table and figure generator in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "SPHINCS+-f parameter sets", (*Suite).Table1},
		{"table2", "Baseline (TCAS-SPHINCSp) time breakdown", (*Suite).Table2},
		{"table3", "Baseline kernel profile, SPHINCS+-128f", (*Suite).Table3},
		{"table4", "Tree Tuning search results", (*Suite).Table4},
		{"table5", "PTX branch selection per kernel", (*Suite).Table5},
		{"table6", "Bank conflicts: baseline vs padding (Block = 1)", (*Suite).Table6},
		{"table7", "GPU platforms", (*Suite).Table7},
		{"table8", "Kernel performance: baseline vs HERO-Sign", (*Suite).Table8},
		{"table9", "Cross-platform comparison (GPU vs FPGA/ASIC)", (*Suite).Table9},
		{"table10", "CPU AVX2 comparison", (*Suite).Table10},
		{"table11", "Compilation time", (*Suite).Table11},
		{"fig11", "FORS_Sign optimization steps", (*Suite).Fig11},
		{"fig12", "End-to-end performance and launch latency", (*Suite).Fig12},
		{"fig13", "Block-size sensitivity", (*Suite).Fig13},
		{"fig14", "Cross-architecture comparison", (*Suite).Fig14},
		{"inputsize", "Input-length sensitivity (§IV-E3)", (*Suite).InputSize},
		{"ablation-alpha", "Tuner alpha sensitivity", (*Suite).AblationAlpha},
		{"ablation-subbatch", "Launch-group sensitivity", (*Suite).AblationSubBatch},
		{"ablation-streams", "Stream-count sensitivity", (*Suite).AblationStreams},
		{"profile", "Nsight-style kernel profiles", (*Suite).Profile},
		{"verify", "Batch verification & key generation", (*Suite).VerifyThroughput},
		{"lanes", "Host multi-lane SHA-256 engine (wall-clock)", (*Suite).LaneEngine},
		{"overload", "Admission control under 2x overload (wall-clock)", (*Suite).Overload},
		{"tenants", "Tenant isolation: paced tenant vs closed-loop flood (wall-clock)", (*Suite).Tenants},
		{"remote", "Remote fleet-of-fleets: hedging and degraded leaf (wall-clock)", (*Suite).RemoteFleet},
		{"memo", "Per-key hypertree memoization: cold vs warmed steady-state (wall-clock)", (*Suite).Memo},
	}
}

// RunByID runs a single experiment.
func (s *Suite) RunByID(id string) (*Table, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e.Run(s)
		}
	}
	ids := make([]string, 0, 16)
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ids)
}
