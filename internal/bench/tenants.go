package bench

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"herosign/internal/spx/params"
	"herosign/service"
)

// Tenants measures what per-tenant token buckets buy a well-behaved client
// under a noisy neighbor. One paced "quiet" tenant runs three times on the
// suite device: alone, against a closed-loop "hot" flood with no tenant
// rate limiting, and against the same flood with buckets on. The table
// reports the quiet tenant's goodput and latency tail per scenario plus how
// the flood was absorbed (served vs 429). Wall-clock on the build machine.
func (s *Suite) Tenants() (*Table, error) {
	const (
		quietN     = 20
		quietPace  = 2 * time.Millisecond
		hotWorkers = 4
		hotBatch   = 8
		rate       = 25.0
		burst      = 8
	)
	t := &Table{
		ID: "tenants",
		Title: fmt.Sprintf("Tenant isolation: paced tenant vs %d×%d-msg flood (bucket %.0f msg/s burst %d, wall-clock)",
			hotWorkers, hotBatch, rate, burst),
		Header: []string{"Scenario", "Quiet done", "Quiet sig/s", "Quiet p50 ms", "Quiet p99 ms",
			"Hot done", "Hot 429"},
		Notes: []string{
			"single shard on " + s.Dev.Name + "; quiet = " + fmt.Sprint(quietN) + " inline-waited signs paced " + quietPace.String() + " apart",
			fmt.Sprintf("hot = closed-loop %d-message batches for the quiet run's duration; 429 = token-bucket batch rejections (X-API-Key scope, all-or-nothing)", hotBatch),
		},
	}
	scenarios := []struct {
		name    string
		withHot bool
		rate    float64
	}{
		{"quiet solo", false, 0},
		{"flood, no buckets", true, 0},
		{"flood, buckets on", true, rate},
	}
	for _, sc := range scenarios {
		if err := s.tenantRow(t, sc.name, sc.withHot, sc.rate, burst, quietN, quietPace, hotWorkers, hotBatch); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func (s *Suite) tenantRow(t *Table, name string, withHot bool, rate float64, burst, quietN int, pace time.Duration, hotWorkers, hotBatch int) error {
	p := params.SPHINCSPlus128f
	opts := []service.Option{
		service.WithParams(p),
		service.WithKey(s.key(p)),
		service.WithDevices(s.Dev),
		service.WithMaxBatch(32),
		service.WithFlushDeadline(2 * time.Millisecond),
		service.WithQueueLimit(256),
	}
	if rate > 0 {
		opts = append(opts, service.WithTenantRate(rate), service.WithTenantBurst(burst))
	}
	svc, err := service.New(opts...)
	if err != nil {
		return err
	}

	stop := make(chan struct{})
	var hotWG sync.WaitGroup
	var hotDone, hot429 atomic.Int64
	if withHot {
		for w := 0; w < hotWorkers; w++ {
			hotWG.Add(1)
			go func(w int) {
				defer hotWG.Done()
				msgs := make([][]byte, hotBatch)
				hotOpts := make([]service.SubmitOpts, hotBatch)
				for i := range msgs {
					msgs[i] = []byte(fmt.Sprintf("hot-%d-%d", w, i))
					hotOpts[i] = service.SubmitOpts{Tenant: "hot"}
				}
				for {
					select {
					case <-stop:
						return
					default:
					}
					futs, err := svc.SubmitSignBatchOpts("", msgs, hotOpts)
					if err != nil {
						if errors.Is(err, service.ErrOverloaded) {
							hot429.Add(int64(hotBatch))
							time.Sleep(2 * time.Millisecond)
						}
						continue
					}
					for _, fut := range futs {
						if _, err := fut.Wait(context.Background()); err == nil {
							hotDone.Add(1)
						}
					}
				}
			}(w)
		}
	}

	lats := make([]time.Duration, 0, quietN)
	start := time.Now()
	for i := 0; i < quietN; i++ {
		t0 := time.Now()
		fut, err := svc.SubmitSignOpts("", []byte(fmt.Sprintf("quiet-%d", i)), service.SubmitOpts{Tenant: "quiet"})
		if err != nil {
			continue // a shed quiet request still shows up as lost goodput
		}
		if _, err := fut.Wait(context.Background()); err == nil {
			lats = append(lats, time.Since(t0))
		}
		time.Sleep(pace)
	}
	wall := time.Since(start)

	close(stop)
	hotWG.Wait()
	if err := svc.Close(); err != nil {
		return err
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var p50, p99 float64
	if len(lats) > 0 {
		p50 = float64(lats[len(lats)/2].Microseconds()) / 1e3
		p99 = float64(lats[len(lats)*99/100].Microseconds()) / 1e3
	}
	t.Rows = append(t.Rows, []string{
		name, d0(int64(len(lats))), f1(float64(len(lats)) / wall.Seconds()),
		f1(p50), f1(p99), d0(hotDone.Load()), d0(hot429.Load()),
	})
	return nil
}
