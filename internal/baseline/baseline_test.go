package baseline

import (
	"bytes"
	"testing"

	"herosign/internal/gpu/device"
	"herosign/internal/spx"
	"herosign/internal/spx/params"
)

func key(t testing.TB, p *params.Params) *spx.PrivateKey {
	t.Helper()
	s := make([]byte, p.N)
	for i := range s {
		s[i] = byte(i + 2)
	}
	sk, err := spx.KeyFromSeeds(p, s, s, s)
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

// TestBaselineSignaturesMatchReference: the baseline model is functionally
// exact SPHINCS+.
func TestBaselineSignaturesMatchReference(t *testing.T) {
	p := params.SPHINCSPlus128f
	sk := key(t, p)
	s, err := New(p, device.RTX4090)
	if err != nil {
		t.Fatal(err)
	}
	msgs := [][]byte{[]byte("baseline a"), []byte("baseline b")}
	res, err := s.SignBatch(sk, msgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range msgs {
		want, err := spx.Sign(sk, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Sigs[i], want) {
			t.Fatalf("baseline signature %d differs from reference", i)
		}
	}
}

// TestBaselineUsesNoHeroFeatures verifies the configuration is the
// zero-feature one: no tuner, native kernels, unpadded shared memory.
func TestBaselineUsesNoHeroFeatures(t *testing.T) {
	p := params.SPHINCSPlus128f
	s, err := New(p, device.RTX4090)
	if err != nil {
		t.Fatal(err)
	}
	if s.Core().Tuning() != nil {
		t.Fatal("baseline ran the tree tuner")
	}
	res, err := s.MeasureBatch(key(t, p), 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	fors := res.Kernels["FORS_Sign"]
	if fors.RegsPerThread != 64 {
		t.Errorf("baseline FORS regs = %d, want native 64", fors.RegsPerThread)
	}
	if fors.Shmem.LoadConflicts == 0 {
		t.Error("baseline shared memory should exhibit bank conflicts")
	}
	if fors.ConstRead != 0 {
		t.Error("baseline must not use constant memory")
	}
}

// TestBaselineBreakdownShape checks Table II's qualitative structure on the
// model: MSS (TREE) dominates, WOTS+ is lightest, FORS in between — for all
// three -f sets.
func TestBaselineBreakdownShape(t *testing.T) {
	for _, p := range params.FastSets() {
		s, err := New(p, device.RTX4090)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.MeasureBatch(key(t, p), 256, 2)
		if err != nil {
			t.Fatal(err)
		}
		forsMs := res.Kernels["FORS_Sign"].DurationUs
		treeMs := res.Kernels["TREE_Sign"].DurationUs
		wotsMs := res.Kernels["WOTS+_Sign"].DurationUs
		if !(treeMs > forsMs && forsMs > wotsMs) {
			t.Errorf("%s: breakdown FORS=%.0f TREE=%.0f WOTS=%.0f violates MSS > FORS > WOTS",
				p.Name, forsMs, treeMs, wotsMs)
		}
	}
}
