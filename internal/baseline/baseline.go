// Package baseline models TCAS-SPHINCSp (Kim et al., IEEE TCAS-I 2024), the
// state-of-the-art GPU SPHINCS+ implementation the paper compares against
// (§IV-B1).
//
// The baseline shares HERO-Sign's kernel decomposition (the paper follows
// Kim et al.'s three-kernel split) but none of its optimizations:
//
//   - FORS processes a single subtree at a time inside each block
//     ("supported only single FORS subtree parallelism", §II-B);
//   - every kernel uses the native compilation path;
//   - read-only seeds live in global memory;
//   - shared memory is unpadded and child nodes load as two separate
//     transactions;
//   - batches are submitted stream-by-stream with blocking synchronization,
//     which produces the idle time of Table II.
//
// It is implemented as the zero-feature configuration of the core engine so
// that baseline and HERO-Sign are always functionally identical and differ
// only in the modeled optimization state.
package baseline

import (
	"herosign/internal/core"
	"herosign/internal/gpu/device"
	"herosign/internal/spx"
	"herosign/internal/spx/params"
)

// Signer is a TCAS-SPHINCSp-style batch signer on the simulated GPU.
type Signer struct {
	inner *core.Signer
}

// New builds a baseline signer for the parameter set on the device.
func New(p *params.Params, d *device.Device) (*Signer, error) {
	inner, err := core.New(core.Config{
		Params:   p,
		Device:   d,
		Features: core.Baseline(),
	})
	if err != nil {
		return nil, err
	}
	return &Signer{inner: inner}, nil
}

// SignBatch signs every message functionally.
func (s *Signer) SignBatch(sk *spx.PrivateKey, msgs [][]byte) (*core.BatchResult, error) {
	return s.inner.SignBatch(sk, msgs)
}

// MeasureBatch runs a sampled timing batch of the given size.
func (s *Signer) MeasureBatch(sk *spx.PrivateKey, batch, sample int) (*core.BatchResult, error) {
	return s.inner.MeasureBatch(sk, batch, sample)
}

// Core exposes the underlying engine for profiling experiments.
func (s *Signer) Core() *core.Signer { return s.inner }
