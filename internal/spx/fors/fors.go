// Package fors implements FORS (Forest of Random Subsets), the few-time
// signature component of SPHINCS+: k Merkle trees of t = 2^logt leaves each,
// where a message selects one leaf per tree and the signature reveals that
// leaf's secret value plus its authentication path.
//
// The package exposes node-level primitives (LeafSK, LeafNode, TreeNode) in
// addition to Sign/PKFromSig so that the GPU-simulated kernels can map leaf
// and node computations onto threads level-by-level, exactly as HERO-Sign's
// FORS_Sign kernel does.
//
// Whole-tree operations are lane-batched: leaf PRF+F evaluations and each
// Merkle level's H reductions advance sha2.Lanes independent nodes per
// multi-lane pass, and PKFromSig climbs all k authentication paths
// level-synchronously. Results are byte-identical to the node-level path.
package fors

import (
	"herosign/internal/sha2"
	"herosign/internal/spx/address"
	"herosign/internal/spx/hashes"
	"herosign/internal/spx/params"
)

// SigBytes returns the FORS signature size for p.
func SigBytes(p *params.Params) int { return p.ForsBytes }

// LeafSK derives the secret value of leaf leafIdx of tree treeIdx into out.
// adrs carries the key-pair identification (layer/tree/keypair of the FORS
// instance).
func LeafSK(ctx *hashes.Ctx, out []byte, adrs *address.Address, treeIdx, leafIdx uint32) {
	p := ctx.P
	var skAdrs address.Address
	skAdrs.CopyKeyPair(adrs)
	skAdrs.SetType(address.FORSPRF)
	skAdrs.SetKeyPair(adrs.KeyPair())
	skAdrs.SetTreeHeight(0)
	skAdrs.SetTreeIndex(treeIdx*uint32(p.T) + leafIdx)
	ctx.PRF(out, &skAdrs)
}

// LeafNode computes the leaf hash (F of the secret value) for the given
// tree/leaf into out.
func LeafNode(ctx *hashes.Ctx, out []byte, adrs *address.Address, treeIdx, leafIdx uint32) {
	p := ctx.P
	var sk [32]byte // N <= 32
	LeafSK(ctx, sk[:p.N], adrs, treeIdx, leafIdx)
	var nodeAdrs address.Address
	nodeAdrs.CopyKeyPair(adrs)
	nodeAdrs.SetType(address.FORSTree)
	nodeAdrs.SetKeyPair(adrs.KeyPair())
	nodeAdrs.SetTreeHeight(0)
	nodeAdrs.SetTreeIndex(treeIdx*uint32(p.T) + leafIdx)
	ctx.F(out, sk[:p.N], &nodeAdrs)
}

// leafBatch fills level (T*N bytes) with the leaf nodes of tree treeIdx:
// per group of sha2.Lanes leaves, one PRF pass derives the secrets in place
// and one F pass folds them to leaf hashes.
func leafBatch(ctx *hashes.Ctx, level []byte, adrs *address.Address, treeIdx uint32) {
	p := ctx.P
	var outs [sha2.Lanes][]byte
	var lanes [sha2.Lanes]address.Address
	for base := 0; base < p.T; base += sha2.Lanes {
		count := p.T - base
		if count > sha2.Lanes {
			count = sha2.Lanes
		}
		for j := 0; j < count; j++ {
			leaf := uint32(base + j)
			outs[j] = level[int(leaf)*p.N : int(leaf+1)*p.N]
			lanes[j].CopyKeyPair(adrs)
			lanes[j].SetType(address.FORSPRF)
			lanes[j].SetKeyPair(adrs.KeyPair())
			lanes[j].SetTreeHeight(0)
			lanes[j].SetTreeIndex(treeIdx*uint32(p.T) + leaf)
		}
		ctx.PRFLanes(count, &outs, &lanes)
		for j := 0; j < count; j++ {
			lanes[j].SetType(address.FORSTree)
			lanes[j].SetKeyPair(adrs.KeyPair())
			lanes[j].SetTreeHeight(0)
			lanes[j].SetTreeIndex(treeIdx*uint32(p.T) + uint32(base+j))
		}
		ctx.FLanes(count, &outs, &outs, &lanes)
	}
}

// reduceLevel folds one Merkle level of width nodes in place with
// lane-batched H calls (hashes.HReduceLevel). h is the height of the
// produced nodes (1-based); treeOffset is the tree-index offset of node 0
// at that height.
func reduceLevel(ctx *hashes.Ctx, level []byte, width int, adrs *address.Address, h int, treeOffset uint32) {
	ctx.HReduceLevel(level, width, func(a *address.Address, i int) {
		a.CopyKeyPair(adrs)
		a.SetType(address.FORSTree)
		a.SetKeyPair(adrs.KeyPair())
		a.SetTreeHeight(uint32(h))
		a.SetTreeIndex(treeOffset + uint32(i))
	})
}

// TreeRoot computes the root of FORS tree treeIdx, optionally collecting the
// authentication path for leafIdx into auth (LogT*N bytes; pass nil to skip).
// Leaves and every reduction level run lane-batched; kernels re-implement
// the same reduction over simulated shared memory and are tested for byte
// equality against this function.
func TreeRoot(ctx *hashes.Ctx, root []byte, adrs *address.Address, treeIdx uint32, leafIdx uint32, auth []byte) {
	p := ctx.P
	level := ctx.ForsLevelBuf()
	leafBatch(ctx, level, adrs, treeIdx)

	idx := leafIdx
	width := p.T
	for h := 0; h < p.LogT; h++ {
		if auth != nil {
			sib := idx ^ 1
			copy(auth[h*p.N:(h+1)*p.N], level[int(sib)*p.N:int(sib+1)*p.N])
		}
		reduceLevel(ctx, level, width, adrs, h+1, treeIdx*uint32(p.T>>(h+1)))
		width /= 2
		idx >>= 1
	}
	copy(root[:p.N], level[:p.N])
}

// Sign produces the FORS signature of md (ForsMsgBytes) into sig
// (ForsBytes) and returns the FORS public key (the compressed roots) which
// the hypertree then signs.
func Sign(ctx *hashes.Ctx, sig, md []byte, adrs *address.Address) []byte {
	p := ctx.P
	indices := hashes.MessageToIndicesInto(p, ctx.IndicesBuf(), md)
	roots := ctx.ForsRootsBuf()
	itemBytes := (p.LogT + 1) * p.N
	for i := 0; i < p.K; i++ {
		item := sig[i*itemBytes : (i+1)*itemBytes]
		// Reveal the selected leaf's secret value.
		LeafSK(ctx, item[:p.N], adrs, uint32(i), indices[i])
		// Authentication path and root.
		TreeRoot(ctx, roots[i*p.N:(i+1)*p.N], adrs, uint32(i), indices[i], item[p.N:])
	}
	return compressRoots(ctx, roots, adrs)
}

// PKFromSig recomputes the FORS public key from a signature and message.
// The k per-tree authentication paths climb level-synchronously in
// multi-lane passes.
func PKFromSig(ctx *hashes.Ctx, sig, md []byte, adrs *address.Address) []byte {
	pk := make([]byte, ctx.P.N)
	PKFromSigInto(ctx, pk, sig, md, adrs)
	return pk
}

// PKFromSigInto is PKFromSig writing the recovered public key into pk
// (N bytes) without allocating.
func PKFromSigInto(ctx *hashes.Ctx, pk, sig, md []byte, adrs *address.Address) {
	p := ctx.P
	indices := hashes.MessageToIndicesInto(p, ctx.IndicesBuf(), md)
	roots := ctx.ForsRootsBuf()
	itemBytes := (p.LogT + 1) * p.N

	var outs, lefts, rights [sha2.Lanes][]byte
	var lanes [sha2.Lanes]address.Address

	// Leaves from the revealed secret values, batched across trees.
	for base := 0; base < p.K; base += sha2.Lanes {
		count := p.K - base
		if count > sha2.Lanes {
			count = sha2.Lanes
		}
		for j := 0; j < count; j++ {
			i := base + j
			item := sig[i*itemBytes : (i+1)*itemBytes]
			outs[j] = roots[i*p.N : (i+1)*p.N]
			lefts[j] = item[:p.N]
			lanes[j].CopyKeyPair(adrs)
			lanes[j].SetType(address.FORSTree)
			lanes[j].SetKeyPair(adrs.KeyPair())
			lanes[j].SetTreeHeight(0)
			lanes[j].SetTreeIndex(uint32(i)*uint32(p.T) + indices[i])
		}
		ctx.FLanes(count, &outs, &lefts, &lanes)
	}

	// Climb all k authentication paths one level per round of passes.
	for h := 0; h < p.LogT; h++ {
		for base := 0; base < p.K; base += sha2.Lanes {
			count := p.K - base
			if count > sha2.Lanes {
				count = sha2.Lanes
			}
			for j := 0; j < count; j++ {
				i := base + j
				item := sig[i*itemBytes : (i+1)*itemBytes]
				node := roots[i*p.N : (i+1)*p.N]
				authNode := item[(1+h)*p.N : (2+h)*p.N]
				idx := indices[i] >> uint(h)
				offset := (uint32(i) * uint32(p.T)) >> uint(h+1)
				outs[j] = node
				if idx&1 == 0 {
					lefts[j] = node
					rights[j] = authNode
				} else {
					lefts[j] = authNode
					rights[j] = node
				}
				lanes[j].CopyKeyPair(adrs)
				lanes[j].SetType(address.FORSTree)
				lanes[j].SetKeyPair(adrs.KeyPair())
				lanes[j].SetTreeHeight(uint32(h + 1))
				lanes[j].SetTreeIndex(offset + idx>>1)
			}
			ctx.HLanes(count, &outs, &lefts, &rights, &lanes)
		}
	}
	compressRootsInto(ctx, pk, roots, adrs)
}

// PKFromSigBatch recomputes b FORS public keys at once, pooling the leaf F
// evaluations and every climb level's H calls across all b*K trees so lane
// passes stay full even where a single signature's K is not a lane multiple.
// pks receives b N-byte public keys back to back; sigs[j] holds signature
// j's ForsBytes, mds[j] its ForsMsgBytes message digest, and adrs[j] its
// key-pair addressing. Outputs are byte-identical to b scalar PKFromSig
// calls.
func PKFromSigBatch(ctx *hashes.Ctx, b int, pks []byte, sigs, mds *[sha2.Lanes][]byte, adrs *[sha2.Lanes]address.Address) {
	p := ctx.P
	indices := ctx.IndicesBatchBuf(b)
	roots := ctx.ForsRootsBatchBuf(b)
	itemBytes := (p.LogT + 1) * p.N
	for j := 0; j < b; j++ {
		hashes.MessageToIndicesInto(p, indices[j*p.K:(j+1)*p.K], mds[j])
	}

	total := b * p.K
	var outs, lefts, rights [sha2.Lanes][]byte
	var lanes [sha2.Lanes]address.Address

	// Per-signature template addresses, built once: the pooled loops below
	// then pay a struct copy plus the height/index words per lane instead
	// of re-deriving the key-pair prefix and re-zeroing the type words.
	var tpl [sha2.Lanes]address.Address
	for j := 0; j < b; j++ {
		tpl[j].CopyKeyPair(&adrs[j])
		tpl[j].SetType(address.FORSTree)
		tpl[j].SetKeyPair(adrs[j].KeyPair())
	}

	// Leaves from the revealed secret values, pooled across signatures.
	count := 0
	for g := 0; g < total; g++ {
		j, i := g/p.K, g%p.K
		item := sigs[j][i*itemBytes : (i+1)*itemBytes]
		outs[count] = roots[g*p.N : (g+1)*p.N]
		lefts[count] = item[:p.N]
		lanes[count] = tpl[j]
		lanes[count].SetTreeHeight(0)
		lanes[count].SetTreeIndex(uint32(i)*uint32(p.T) + indices[g])
		count++
		if count == sha2.Lanes {
			ctx.FLanes(count, &outs, &lefts, &lanes)
			count = 0
		}
	}
	if count > 0 {
		ctx.FLanes(count, &outs, &lefts, &lanes)
	}

	// Climb all b*K authentication paths level-synchronously: within a level
	// every tree's node is independent, so lane groups span tree and
	// signature boundaries; only the level boundary forces a flush.
	for h := 0; h < p.LogT; h++ {
		count = 0
		for g := 0; g < total; g++ {
			j, i := g/p.K, g%p.K
			item := sigs[j][i*itemBytes : (i+1)*itemBytes]
			node := roots[g*p.N : (g+1)*p.N]
			authNode := item[(1+h)*p.N : (2+h)*p.N]
			idx := indices[g] >> uint(h)
			offset := (uint32(i) * uint32(p.T)) >> uint(h+1)
			outs[count] = node
			if idx&1 == 0 {
				lefts[count] = node
				rights[count] = authNode
			} else {
				lefts[count] = authNode
				rights[count] = node
			}
			lanes[count] = tpl[j]
			lanes[count].SetTreeHeight(uint32(h + 1))
			lanes[count].SetTreeIndex(offset + idx>>1)
			count++
			if count == sha2.Lanes {
				ctx.HLanes(count, &outs, &lefts, &rights, &lanes)
				count = 0
			}
		}
		if count > 0 {
			ctx.HLanes(count, &outs, &lefts, &rights, &lanes)
		}
	}

	for j := 0; j < b; j++ {
		compressRootsInto(ctx, pks[j*p.N:(j+1)*p.N], roots[j*p.K*p.N:(j+1)*p.K*p.N], &adrs[j])
	}
}

// compressRoots applies T_k over the concatenated roots with the FORSRoots
// address type (one small N-byte allocation per signature).
func compressRoots(ctx *hashes.Ctx, roots []byte, adrs *address.Address) []byte {
	pk := make([]byte, ctx.P.N)
	compressRootsInto(ctx, pk, roots, adrs)
	return pk
}

// compressRootsInto is compressRoots writing into a caller buffer.
func compressRootsInto(ctx *hashes.Ctx, pk, roots []byte, adrs *address.Address) {
	var rootsAdrs address.Address
	rootsAdrs.CopyKeyPair(adrs)
	rootsAdrs.SetType(address.FORSRoots)
	rootsAdrs.SetKeyPair(adrs.KeyPair())
	ctx.Thash(pk, roots, &rootsAdrs)
}
