// Package fors implements FORS (Forest of Random Subsets), the few-time
// signature component of SPHINCS+: k Merkle trees of t = 2^logt leaves each,
// where a message selects one leaf per tree and the signature reveals that
// leaf's secret value plus its authentication path.
//
// The package exposes node-level primitives (LeafSK, LeafNode, TreeNode) in
// addition to Sign/PKFromSig so that the GPU-simulated kernels can map leaf
// and node computations onto threads level-by-level, exactly as HERO-Sign's
// FORS_Sign kernel does.
package fors

import (
	"herosign/internal/spx/address"
	"herosign/internal/spx/hashes"
	"herosign/internal/spx/params"
)

// SigBytes returns the FORS signature size for p.
func SigBytes(p *params.Params) int { return p.ForsBytes }

// LeafSK derives the secret value of leaf leafIdx of tree treeIdx into out.
// adrs carries the key-pair identification (layer/tree/keypair of the FORS
// instance).
func LeafSK(ctx *hashes.Ctx, out []byte, adrs *address.Address, treeIdx, leafIdx uint32) {
	p := ctx.P
	var skAdrs address.Address
	skAdrs.CopyKeyPair(adrs)
	skAdrs.SetType(address.FORSPRF)
	skAdrs.SetKeyPair(adrs.KeyPair())
	skAdrs.SetTreeHeight(0)
	skAdrs.SetTreeIndex(treeIdx*uint32(p.T) + leafIdx)
	ctx.PRF(out, &skAdrs)
}

// LeafNode computes the leaf hash (F of the secret value) for the given
// tree/leaf into out.
func LeafNode(ctx *hashes.Ctx, out []byte, adrs *address.Address, treeIdx, leafIdx uint32) {
	p := ctx.P
	sk := make([]byte, p.N)
	LeafSK(ctx, sk, adrs, treeIdx, leafIdx)
	var nodeAdrs address.Address
	nodeAdrs.CopyKeyPair(adrs)
	nodeAdrs.SetType(address.FORSTree)
	nodeAdrs.SetKeyPair(adrs.KeyPair())
	nodeAdrs.SetTreeHeight(0)
	nodeAdrs.SetTreeIndex(treeIdx*uint32(p.T) + leafIdx)
	ctx.F(out, sk, &nodeAdrs)
}

// TreeRoot computes the root of FORS tree treeIdx, optionally collecting the
// authentication path for leafIdx into auth (LogT*N bytes; pass nil to skip).
// This is the straightforward full-subtree computation the CPU reference
// uses; kernels re-implement the same reduction over simulated shared
// memory and are tested for byte equality against this function.
func TreeRoot(ctx *hashes.Ctx, root []byte, adrs *address.Address, treeIdx uint32, leafIdx uint32, auth []byte) {
	p := ctx.P
	level := make([]byte, p.T*p.N)
	for i := 0; i < p.T; i++ {
		LeafNode(ctx, level[i*p.N:(i+1)*p.N], adrs, treeIdx, uint32(i))
	}
	var nodeAdrs address.Address
	nodeAdrs.CopyKeyPair(adrs)
	nodeAdrs.SetType(address.FORSTree)
	nodeAdrs.SetKeyPair(adrs.KeyPair())

	idx := leafIdx
	width := p.T
	for h := 0; h < p.LogT; h++ {
		if auth != nil {
			sib := idx ^ 1
			copy(auth[h*p.N:(h+1)*p.N], level[int(sib)*p.N:int(sib+1)*p.N])
		}
		nodeAdrs.SetTreeHeight(uint32(h + 1))
		for i := 0; i < width/2; i++ {
			nodeAdrs.SetTreeIndex(treeIdx*uint32(p.T>>(h+1)) + uint32(i))
			ctx.H(level[i*p.N:(i+1)*p.N],
				level[2*i*p.N:(2*i+1)*p.N],
				level[(2*i+1)*p.N:(2*i+2)*p.N],
				&nodeAdrs)
		}
		width /= 2
		idx >>= 1
	}
	copy(root[:p.N], level[:p.N])
}

// Sign produces the FORS signature of md (ForsMsgBytes) into sig
// (ForsBytes) and returns the FORS public key (the compressed roots) which
// the hypertree then signs.
func Sign(ctx *hashes.Ctx, sig, md []byte, adrs *address.Address) []byte {
	p := ctx.P
	indices := hashes.MessageToIndices(p, md)
	roots := make([]byte, p.K*p.N)
	itemBytes := (p.LogT + 1) * p.N
	for i := 0; i < p.K; i++ {
		item := sig[i*itemBytes : (i+1)*itemBytes]
		// Reveal the selected leaf's secret value.
		LeafSK(ctx, item[:p.N], adrs, uint32(i), indices[i])
		// Authentication path and root.
		TreeRoot(ctx, roots[i*p.N:(i+1)*p.N], adrs, uint32(i), indices[i], item[p.N:])
	}
	return compressRoots(ctx, roots, adrs)
}

// PKFromSig recomputes the FORS public key from a signature and message.
func PKFromSig(ctx *hashes.Ctx, sig, md []byte, adrs *address.Address) []byte {
	p := ctx.P
	indices := hashes.MessageToIndices(p, md)
	roots := make([]byte, p.K*p.N)
	itemBytes := (p.LogT + 1) * p.N
	node := make([]byte, p.N)
	sib := make([]byte, p.N)
	_ = sib
	var nodeAdrs address.Address
	nodeAdrs.CopyKeyPair(adrs)
	nodeAdrs.SetType(address.FORSTree)
	nodeAdrs.SetKeyPair(adrs.KeyPair())
	for i := 0; i < p.K; i++ {
		item := sig[i*itemBytes : (i+1)*itemBytes]
		leafIdx := indices[i]
		// Leaf from the revealed secret value.
		nodeAdrs.SetTreeHeight(0)
		nodeAdrs.SetTreeIndex(uint32(i)*uint32(p.T) + leafIdx)
		ctx.F(node, item[:p.N], &nodeAdrs)
		// Climb the authentication path.
		idx := leafIdx
		offset := uint32(i) * uint32(p.T)
		for h := 0; h < p.LogT; h++ {
			authNode := item[(1+h)*p.N : (2+h)*p.N]
			nodeAdrs.SetTreeHeight(uint32(h + 1))
			offset >>= 1
			nodeAdrs.SetTreeIndex(offset + idx>>1)
			if idx&1 == 0 {
				ctx.H(node, node, authNode, &nodeAdrs)
			} else {
				ctx.H(node, authNode, node, &nodeAdrs)
			}
			idx >>= 1
		}
		copy(roots[i*p.N:(i+1)*p.N], node)
	}
	return compressRoots(ctx, roots, adrs)
}

// compressRoots applies T_k over the concatenated roots with the FORSRoots
// address type.
func compressRoots(ctx *hashes.Ctx, roots []byte, adrs *address.Address) []byte {
	p := ctx.P
	var rootsAdrs address.Address
	rootsAdrs.CopyKeyPair(adrs)
	rootsAdrs.SetType(address.FORSRoots)
	rootsAdrs.SetKeyPair(adrs.KeyPair())
	pk := make([]byte, p.N)
	ctx.Thash(pk, roots, &rootsAdrs)
	return pk
}
