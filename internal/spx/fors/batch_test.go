package fors

import (
	"bytes"
	"testing"

	"herosign/internal/sha2"
	"herosign/internal/spx/address"
	"herosign/internal/spx/hashes"
	"herosign/internal/spx/params"
)

// TestPKFromSigBatchMatchesScalar: the cross-signature batched recovery
// must reproduce byte-identical public keys for every batch size, including
// the full-lane case and a single signature.
func TestPKFromSigBatchMatchesScalar(t *testing.T) {
	for _, p := range params.FastSets() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			pkSeed := make([]byte, p.N)
			skSeed := make([]byte, p.N)
			for i := range pkSeed {
				pkSeed[i] = byte(i*3 + 1)
				skSeed[i] = byte(i*5 + 2)
			}
			ctx := hashes.NewCtx(p, pkSeed, skSeed)

			var sigs, mds [sha2.Lanes][]byte
			var adrs [sha2.Lanes]address.Address
			signedPK := make([]byte, sha2.Lanes*p.N)
			for j := 0; j < sha2.Lanes; j++ {
				md := make([]byte, p.ForsMsgBytes)
				for i := range md {
					md[i] = byte(j*31 + i*7 + 3)
				}
				mds[j] = md
				adrs[j].SetLayer(0)
				adrs[j].SetTree(uint64(j * 5))
				adrs[j].SetType(address.FORSTree)
				adrs[j].SetKeyPair(uint32(j))
				sigs[j] = make([]byte, p.ForsBytes)
				copy(signedPK[j*p.N:(j+1)*p.N], Sign(ctx, sigs[j], md, &adrs[j]))
			}

			for _, b := range []int{1, 3, sha2.Lanes} {
				pks := make([]byte, b*p.N)
				PKFromSigBatch(ctx, b, pks, &sigs, &mds, &adrs)
				for j := 0; j < b; j++ {
					want := PKFromSig(ctx, sigs[j], mds[j], &adrs[j])
					if !bytes.Equal(pks[j*p.N:(j+1)*p.N], want) {
						t.Fatalf("b=%d sig %d: batch pk differs from scalar", b, j)
					}
					if !bytes.Equal(want, signedPK[j*p.N:(j+1)*p.N]) {
						t.Fatalf("b=%d sig %d: recovered pk differs from signing", b, j)
					}
				}
			}
		})
	}
}
