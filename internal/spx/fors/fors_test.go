package fors

import (
	"bytes"
	"testing"
	"testing/quick"

	"herosign/internal/spx/address"
	"herosign/internal/spx/hashes"
	"herosign/internal/spx/params"
)

func testCtx(t testing.TB, p *params.Params) *hashes.Ctx {
	t.Helper()
	pkSeed := make([]byte, p.N)
	skSeed := make([]byte, p.N)
	for i := range pkSeed {
		pkSeed[i] = byte(9 * i)
		skSeed[i] = byte(4*i + 2)
	}
	return hashes.NewCtx(p, pkSeed, skSeed)
}

func forsAdrs(treeIdx uint64, leafIdx uint32) *address.Address {
	var a address.Address
	a.SetLayer(0)
	a.SetTree(treeIdx)
	a.SetType(address.FORSTree)
	a.SetKeyPair(leafIdx)
	return &a
}

// TestSignThenRecover: PKFromSig over a fresh signature reproduces the
// public key Sign returns — for every -f parameter set.
func TestSignThenRecover(t *testing.T) {
	for _, p := range params.FastSets() {
		ctx := testCtx(t, p)
		adrs := forsAdrs(42, 7)
		md := make([]byte, p.ForsMsgBytes)
		for i := range md {
			md[i] = byte(i*13 + 1)
		}
		sig := make([]byte, p.ForsBytes)
		pk := Sign(ctx, sig, md, adrs)

		rec := PKFromSig(ctx, sig, md, adrs)
		if !bytes.Equal(pk, rec) {
			t.Fatalf("%s: recovered FORS pk mismatch", p.Name)
		}
	}
}

// TestRecoverRejectsTamperedSig: flipping any region of one tree's item
// changes the recovered public key.
func TestRecoverRejectsTamperedSig(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := testCtx(t, p)
	adrs := forsAdrs(1, 2)
	md := make([]byte, p.ForsMsgBytes)
	sig := make([]byte, p.ForsBytes)
	pk := Sign(ctx, sig, md, adrs)

	itemBytes := (p.LogT + 1) * p.N
	for _, off := range []int{0, p.N, itemBytes - 1, 5 * itemBytes, p.ForsBytes - 1} {
		bad := append([]byte(nil), sig...)
		bad[off] ^= 1
		if bytes.Equal(PKFromSig(ctx, bad, md, adrs), pk) {
			t.Errorf("tamper at %d did not change the recovered pk", off)
		}
	}
}

// TestRecoverRejectsWrongMessage: a different md selects different leaves,
// so recovery diverges.
func TestRecoverRejectsWrongMessage(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := testCtx(t, p)
	adrs := forsAdrs(3, 4)
	md := make([]byte, p.ForsMsgBytes)
	sig := make([]byte, p.ForsBytes)
	pk := Sign(ctx, sig, md, adrs)

	wrong := append([]byte(nil), md...)
	wrong[0] ^= 1
	if bytes.Equal(PKFromSig(ctx, sig, wrong, adrs), pk) {
		t.Fatal("wrong message recovered the correct pk")
	}
}

// TestTreeRootAuthConsistency: climbing the auth path from the selected
// leaf reproduces the root TreeRoot computed, for every leaf of a tree.
func TestTreeRootAuthConsistency(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := testCtx(t, p)
	adrs := forsAdrs(0, 0)

	for leaf := uint32(0); leaf < uint32(p.T); leaf += 13 {
		root := make([]byte, p.N)
		auth := make([]byte, p.LogT*p.N)
		TreeRoot(ctx, root, adrs, 2, leaf, auth)

		// Climb manually.
		node := make([]byte, p.N)
		LeafNode(ctx, node, adrs, 2, leaf)
		var nodeAdrs address.Address
		nodeAdrs.CopyKeyPair(adrs)
		nodeAdrs.SetType(address.FORSTree)
		nodeAdrs.SetKeyPair(adrs.KeyPair())
		idx := leaf
		offset := uint32(2) * uint32(p.T)
		for h := 0; h < p.LogT; h++ {
			sib := auth[h*p.N : (h+1)*p.N]
			nodeAdrs.SetTreeHeight(uint32(h + 1))
			offset >>= 1
			nodeAdrs.SetTreeIndex(offset + idx>>1)
			if idx&1 == 0 {
				ctx.H(node, node, sib, &nodeAdrs)
			} else {
				ctx.H(node, sib, node, &nodeAdrs)
			}
			idx >>= 1
		}
		if !bytes.Equal(node, root) {
			t.Fatalf("leaf %d: climbed root mismatch", leaf)
		}
	}
}

// TestLeafDomainSeparation: leaves of different trees and positions differ.
func TestLeafDomainSeparation(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := testCtx(t, p)
	adrs := forsAdrs(0, 0)
	a := make([]byte, p.N)
	b := make([]byte, p.N)
	LeafNode(ctx, a, adrs, 0, 5)
	LeafNode(ctx, b, adrs, 1, 5)
	if bytes.Equal(a, b) {
		t.Fatal("same leaf across trees")
	}
	LeafNode(ctx, b, adrs, 0, 6)
	if bytes.Equal(a, b) {
		t.Fatal("same leaf across positions")
	}
}

// TestKeyPairSeparation: the same FORS geometry under different hypertree
// leaf key pairs yields different public keys (multi-instance separation).
func TestKeyPairSeparation(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := testCtx(t, p)
	md := make([]byte, p.ForsMsgBytes)
	sig := make([]byte, p.ForsBytes)
	pk1 := Sign(ctx, sig, md, forsAdrs(10, 1))
	pk2 := Sign(ctx, sig, md, forsAdrs(10, 2))
	if bytes.Equal(pk1, pk2) {
		t.Fatal("different key pairs share a FORS pk")
	}
}

// TestQuickSignRecover property-checks sign/recover over random messages.
func TestQuickSignRecover(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := testCtx(t, p)
	adrs := forsAdrs(8, 9)
	f := func(raw []byte) bool {
		md := make([]byte, p.ForsMsgBytes)
		copy(md, raw)
		sig := make([]byte, p.ForsBytes)
		pk := Sign(ctx, sig, md, adrs)
		return bytes.Equal(pk, PKFromSig(ctx, sig, md, adrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
