package fors

import (
	"testing"

	"herosign/internal/sha2"
	"herosign/internal/spx/address"
	"herosign/internal/spx/hashes"
	"herosign/internal/spx/params"
)

// TestTreeRootZeroAlloc: a full lane-batched FORS tree build (leaves plus
// every reduction level, including the HReduceLevel address callbacks) must
// not allocate after warm-up, on either backend.
func TestTreeRootZeroAlloc(t *testing.T) {
	p := params.SPHINCSPlus128f
	pkSeed := make([]byte, p.N)
	skSeed := make([]byte, p.N)
	ctx := hashes.NewCtx(p, pkSeed, skSeed)
	var adrs address.Address
	adrs.SetType(address.FORSTree)
	root := make([]byte, p.N)
	auth := make([]byte, p.LogT*p.N)

	for _, accel := range []bool{true, false} {
		prev := sha2.SetAccelerated(accel)
		if allocs := testing.AllocsPerRun(5, func() {
			TreeRoot(ctx, root, &adrs, 2, 13, auth)
		}); allocs != 0 {
			t.Errorf("accel=%v: TreeRoot allocates (%v)", accel, allocs)
		}
		sha2.SetAccelerated(prev)
	}
}
