package hypertree

import (
	"bytes"
	"testing"

	"herosign/internal/sha2"
	"herosign/internal/spx/hashes"
	"herosign/internal/spx/params"
)

// TestPKFromSigBatchMatchesScalar: the layer-synchronous batched hypertree
// recovery must reproduce byte-identical roots for ragged and full batches,
// with signatures taking distinct (treeIdx, leafIdx) paths.
func TestPKFromSigBatchMatchesScalar(t *testing.T) {
	p := params.SPHINCSPlus128f
	pkSeed := make([]byte, p.N)
	skSeed := make([]byte, p.N)
	for i := range pkSeed {
		pkSeed[i] = byte(i*7 + 4)
		skSeed[i] = byte(i*11 + 6)
	}
	ctx := hashes.NewCtx(p, pkSeed, skSeed)

	var sigs [sha2.Lanes][]byte
	var treeIdxs [sha2.Lanes]uint64
	var leafIdxs [sha2.Lanes]uint32
	msgs := make([]byte, sha2.Lanes*p.N)
	for j := 0; j < sha2.Lanes; j++ {
		for i := 0; i < p.N; i++ {
			msgs[j*p.N+i] = byte(j*13 + i*3 + 9)
		}
		treeIdxs[j] = uint64(j) * 0x9e3779b97f4a7c15 >> (64 - uint(p.H-p.TreeHeight))
		leafIdxs[j] = uint32(j*5) % (1 << uint(p.TreeHeight))
		sigs[j] = make([]byte, p.D*p.XMSSBytes)
		Sign(ctx, nil, sigs[j], msgs[j*p.N:(j+1)*p.N], treeIdxs[j], leafIdxs[j])
	}

	for _, b := range []int{1, 5, sha2.Lanes} {
		roots := make([]byte, b*p.N)
		copy(roots, msgs[:b*p.N])
		PKFromSigBatch(ctx, b, roots, &sigs, &treeIdxs, &leafIdxs)
		for j := 0; j < b; j++ {
			want := make([]byte, p.N)
			PKFromSig(ctx, want, sigs[j], msgs[j*p.N:(j+1)*p.N], treeIdxs[j], leafIdxs[j])
			if !bytes.Equal(roots[j*p.N:(j+1)*p.N], want) {
				t.Fatalf("b=%d sig %d: batch root differs from scalar", b, j)
			}
		}
	}
}
