// Package hypertree implements the SPHINCS+ hypertree: d layers of XMSS
// subtrees where each subtree root is signed by a leaf of the layer above.
package hypertree

import (
	"herosign/internal/sha2"
	"herosign/internal/spx/address"
	"herosign/internal/spx/hashes"
	"herosign/internal/spx/treecache"
	"herosign/internal/spx/xmss"
)

// Sign signs msg (the FORS public key) with the hypertree path selected by
// (treeIdx, leafIdx), writing D XMSS signatures into sig (D*XMSSBytes).
// When root is non-nil the top-layer root (which must equal PK.root) is
// written to root[:N]; the signing hot path passes nil and stays
// allocation-free.
func Sign(ctx *hashes.Ctx, root, sig, msg []byte, treeIdx uint64, leafIdx uint32) {
	p := ctx.P
	var node [32]byte // N <= 32; the root chained between layers
	copy(node[:p.N], msg[:p.N])
	for layer := 0; layer < p.D; layer++ {
		var treeAdrs address.Address
		treeAdrs.SetLayer(uint32(layer))
		treeAdrs.SetTree(treeIdx)
		layerSig := sig[layer*p.XMSSBytes : (layer+1)*p.XMSSBytes]
		xmss.Sign(ctx, node[:p.N], layerSig, node[:p.N], &treeAdrs, leafIdx)
		// Update indices for the next layer (paper Fig. 2 snippet).
		leafIdx = uint32(treeIdx & ((1 << uint(p.TreeHeight)) - 1))
		treeIdx >>= uint(p.TreeHeight)
	}
	if root != nil {
		copy(root[:p.N], node[:p.N])
	}
}

// SignCached is Sign with a per-key memoization cache consulted at every
// layer: cached subtrees emit their auth path (and, on a WOTS tag match,
// the whole layer signature) as memcpys instead of rebuilding the tree;
// misses build via the lane-batched xmss path and populate the cache. A nil
// cache is exactly Sign. Signatures are byte-identical either way, and the
// all-layers-hit steady state performs no allocation.
func SignCached(ctx *hashes.Ctx, cache *treecache.Cache, root, sig, msg []byte, treeIdx uint64, leafIdx uint32) {
	if cache == nil {
		Sign(ctx, root, sig, msg, treeIdx, leafIdx)
		return
	}
	p := ctx.P
	var node [32]byte // N <= 32; the root chained between layers
	copy(node[:p.N], msg[:p.N])
	for layer := 0; layer < p.D; layer++ {
		layerSig := sig[layer*p.XMSSBytes : (layer+1)*p.XMSSBytes]
		cache.SignLayer(ctx, node[:p.N], layerSig, node[:p.N], layer, treeIdx, leafIdx)
		leafIdx = uint32(treeIdx & ((1 << uint(p.TreeHeight)) - 1))
		treeIdx >>= uint(p.TreeHeight)
	}
	if root != nil {
		copy(root[:p.N], node[:p.N])
	}
}

// PKFromSigBatch recomputes b hypertree roots at once, one per signature,
// climbing all b D-layer chains layer- and level-synchronously so the XMSS
// and WOTS+ lane passes pool work across signatures. roots holds the b
// N-byte FORS public keys on entry and the b recovered hypertree roots on
// exit (back to back); sigs[j] is signature j's D*XMSSBytes hypertree
// signature and (treeIdxs[j], leafIdxs[j]) its path. Outputs are
// byte-identical to b scalar PKFromSig calls.
func PKFromSigBatch(ctx *hashes.Ctx, b int, roots []byte, sigs *[sha2.Lanes][]byte, treeIdxs *[sha2.Lanes]uint64, leafIdxs *[sha2.Lanes]uint32) {
	p := ctx.P
	var tIdx [sha2.Lanes]uint64
	var lIdx [sha2.Lanes]uint32
	for j := 0; j < b; j++ {
		tIdx[j] = treeIdxs[j]
		lIdx[j] = leafIdxs[j]
	}
	var treeAdrs [sha2.Lanes]address.Address
	var layerSigs [sha2.Lanes][]byte
	for layer := 0; layer < p.D; layer++ {
		for j := 0; j < b; j++ {
			treeAdrs[j] = address.Address{}
			treeAdrs[j].SetLayer(uint32(layer))
			treeAdrs[j].SetTree(tIdx[j])
			layerSigs[j] = sigs[j][layer*p.XMSSBytes : (layer+1)*p.XMSSBytes]
		}
		xmss.PKFromSigBatch(ctx, b, roots[:b*p.N], &layerSigs, &treeAdrs, &lIdx)
		for j := 0; j < b; j++ {
			lIdx[j] = uint32(tIdx[j] & ((1 << uint(p.TreeHeight)) - 1))
			tIdx[j] >>= uint(p.TreeHeight)
		}
	}
}

// PKFromSig recomputes the hypertree root from the D stacked XMSS
// signatures into root (N bytes); verification compares it with PK.root.
func PKFromSig(ctx *hashes.Ctx, root, sig, msg []byte, treeIdx uint64, leafIdx uint32) {
	p := ctx.P
	var node [32]byte
	copy(node[:p.N], msg[:p.N])
	for layer := 0; layer < p.D; layer++ {
		var treeAdrs address.Address
		treeAdrs.SetLayer(uint32(layer))
		treeAdrs.SetTree(treeIdx)
		layerSig := sig[layer*p.XMSSBytes : (layer+1)*p.XMSSBytes]
		xmss.PKFromSig(ctx, node[:p.N], layerSig, node[:p.N], &treeAdrs, leafIdx)
		leafIdx = uint32(treeIdx & ((1 << uint(p.TreeHeight)) - 1))
		treeIdx >>= uint(p.TreeHeight)
	}
	copy(root[:p.N], node[:p.N])
}

// Root computes the hypertree public root (the root of subtree 0 at the top
// layer) for key generation.
func Root(ctx *hashes.Ctx) []byte {
	p := ctx.P
	var treeAdrs address.Address
	treeAdrs.SetLayer(uint32(p.D - 1))
	treeAdrs.SetTree(0)
	root := make([]byte, p.N)
	xmss.TreeHash(ctx, root, &treeAdrs, 0, nil)
	return root
}
