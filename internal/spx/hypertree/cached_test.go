package hypertree

import (
	"bytes"
	"testing"

	"herosign/internal/spx/params"
	"herosign/internal/spx/treecache"
)

func testCache(t testing.TB, p *params.Params, budget int64) *treecache.Cache {
	t.Helper()
	pkSeed := make([]byte, p.N)
	skSeed := make([]byte, p.N)
	for i := range pkSeed {
		pkSeed[i] = byte(i + 29)
		skSeed[i] = byte(7 * i)
	}
	return treecache.New(p, pkSeed, skSeed, budget)
}

// TestSignCachedByteIdentity: SignCached must emit exactly Sign's bytes on
// cold, partially-warm and fully-warm passes, across paths and messages.
func TestSignCachedByteIdentity(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := testCtx(t, p)
	cache := testCache(t, p, 8<<20)

	msgs := make([][]byte, 3)
	for m := range msgs {
		msgs[m] = make([]byte, p.N)
		for i := range msgs[m] {
			msgs[m][i] = byte(i*9 + m)
		}
	}
	paths := []struct {
		tree uint64
		leaf uint32
	}{{0, 0}, {1, 3}, {0xFFFFFFFF, 7}, {1 << 40, 5}, {1, 3}}

	for pass := 0; pass < 2; pass++ {
		for _, path := range paths {
			for _, msg := range msgs {
				want := make([]byte, p.D*p.XMSSBytes)
				wantRoot := make([]byte, p.N)
				Sign(ctx, wantRoot, want, msg, path.tree, path.leaf)
				got := make([]byte, p.D*p.XMSSBytes)
				gotRoot := make([]byte, p.N)
				SignCached(ctx, cache, gotRoot, got, msg, path.tree, path.leaf)
				if !bytes.Equal(got, want) {
					t.Fatalf("pass %d path (%d,%d): cached signature differs", pass, path.tree, path.leaf)
				}
				if !bytes.Equal(gotRoot, wantRoot) {
					t.Fatalf("pass %d path (%d,%d): cached root differs", pass, path.tree, path.leaf)
				}
			}
		}
	}
	if s := cache.Stats(); s.Hits == 0 || s.WOTSHits == 0 {
		t.Fatalf("second pass produced no hits: %+v", s)
	}
}

// TestSignCachedVerifies: cached signatures recover the public root.
func TestSignCachedVerifies(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := testCtx(t, p)
	cache := testCache(t, p, 4<<20)
	pub := Root(ctx)
	msg := make([]byte, p.N)
	sig := make([]byte, p.D*p.XMSSBytes)
	rec := make([]byte, p.N)
	for i := 0; i < 2; i++ {
		SignCached(ctx, cache, nil, sig, msg, 12345, 2)
		PKFromSig(ctx, rec, sig, msg, 12345, 2)
		if !bytes.Equal(rec, pub) {
			t.Fatalf("pass %d: cached signature does not recover the public root", i)
		}
	}
}

// TestSignCachedSteadyStateAllocFree: once every layer of a path is a full
// hit (node table and WOTS slots resident for the repeated message), the
// memoized hypertree sign path must perform zero allocations.
func TestSignCachedSteadyStateAllocFree(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := testCtx(t, p)
	cache := testCache(t, p, 8<<20)
	msg := make([]byte, p.N)
	for i := range msg {
		msg[i] = byte(i + 3)
	}
	sig := make([]byte, p.D*p.XMSSBytes)
	root := make([]byte, p.N)

	// Prime: first pass installs every layer, second fills any WOTS slots.
	SignCached(ctx, cache, root, sig, msg, 777, 4)
	SignCached(ctx, cache, root, sig, msg, 777, 4)

	before := cache.Stats()
	allocs := testing.AllocsPerRun(50, func() {
		SignCached(ctx, cache, root, sig, msg, 777, 4)
	})
	if allocs != 0 {
		t.Fatalf("steady-state cached sign allocates %.1f times per run", allocs)
	}
	after := cache.Stats()
	if after.Misses != before.Misses || after.WOTSFills != before.WOTSFills {
		t.Fatalf("steady state was not all full hits: before %+v after %+v", before, after)
	}
}
