package hypertree

import (
	"bytes"
	"testing"

	"herosign/internal/spx/hashes"
	"herosign/internal/spx/params"
)

func testCtx(t testing.TB, p *params.Params) *hashes.Ctx {
	t.Helper()
	pkSeed := make([]byte, p.N)
	skSeed := make([]byte, p.N)
	for i := range pkSeed {
		pkSeed[i] = byte(i + 29)
		skSeed[i] = byte(7 * i)
	}
	return hashes.NewCtx(p, pkSeed, skSeed)
}

// TestSignReturnsPublicRoot: Sign's final root equals Root() regardless of
// the signing path, which is the hypertree's defining property.
func TestSignReturnsPublicRoot(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := testCtx(t, p)
	pub := Root(ctx)

	msg := make([]byte, p.N)
	for i := range msg {
		msg[i] = byte(i * 9)
	}
	for _, path := range []struct {
		tree uint64
		leaf uint32
	}{{0, 0}, {1, 3}, {0xFFFFFFFF, 7}, {1 << 40, 5}} {
		sig := make([]byte, p.D*p.XMSSBytes)
		root := make([]byte, p.N)
		Sign(ctx, root, sig, msg, path.tree, path.leaf)
		if !bytes.Equal(root, pub) {
			t.Fatalf("path (%d,%d): root differs from public root", path.tree, path.leaf)
		}
		rec := make([]byte, p.N)
		PKFromSig(ctx, rec, sig, msg, path.tree, path.leaf)
		if !bytes.Equal(rec, pub) {
			t.Fatalf("path (%d,%d): recovery differs from public root", path.tree, path.leaf)
		}
	}
}

// TestRecoverRejectsWrongPath: presenting a valid signature under a
// different (tree, leaf) must not reach the public root.
func TestRecoverRejectsWrongPath(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := testCtx(t, p)
	pub := Root(ctx)
	msg := make([]byte, p.N)
	sig := make([]byte, p.D*p.XMSSBytes)
	rec := make([]byte, p.N)
	Sign(ctx, nil, sig, msg, 5, 2)
	if PKFromSig(ctx, rec, sig, msg, 5, 3); bytes.Equal(rec, pub) {
		t.Fatal("wrong leaf accepted")
	}
	if PKFromSig(ctx, rec, sig, msg, 6, 2); bytes.Equal(rec, pub) {
		t.Fatal("wrong tree accepted")
	}
}

// TestRecoverRejectsTamperedLayers: a bit flip in any layer's region breaks
// recovery.
func TestRecoverRejectsTamperedLayers(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := testCtx(t, p)
	pub := Root(ctx)
	msg := make([]byte, p.N)
	sig := make([]byte, p.D*p.XMSSBytes)
	rec := make([]byte, p.N)
	Sign(ctx, nil, sig, msg, 9, 1)
	for layer := 0; layer < p.D; layer += 7 {
		bad := append([]byte(nil), sig...)
		bad[layer*p.XMSSBytes] ^= 1
		if PKFromSig(ctx, rec, bad, msg, 9, 1); bytes.Equal(rec, pub) {
			t.Fatalf("tampered layer %d accepted", layer)
		}
	}
}

// TestRootDeterministic: Root is a pure function of the key material.
func TestRootDeterministic(t *testing.T) {
	p := params.SPHINCSPlus128f
	a := Root(testCtx(t, p))
	b := Root(testCtx(t, p))
	if !bytes.Equal(a, b) {
		t.Fatal("Root not deterministic")
	}
}
