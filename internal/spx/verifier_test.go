package spx

import (
	"testing"

	"herosign/internal/sha2"
	"herosign/internal/spx/params"
)

// TestVerifierMatchesVerify: the reusable scalar Verifier must agree with
// the one-shot package Verify on every fast set, for valid and tampered
// signatures alike.
func TestVerifierMatchesVerify(t *testing.T) {
	sets := []*params.Params{params.SPHINCSPlus128f}
	if !testing.Short() {
		sets = params.FastSets()
	}
	for _, p := range sets {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			sk := testKey(t, p, 0x51)
			s := NewSigner(sk)
			v := NewVerifier(&sk.PublicKey)
			msg := []byte("verifier equivalence " + p.Name)
			sig, err := s.Sign(msg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := v.Verify(msg, sig); err != nil {
				t.Fatalf("valid signature rejected: %v", err)
			}
			bad := append([]byte(nil), sig...)
			bad[100] ^= 1
			if got, want := v.Verify(msg, bad), Verify(&sk.PublicKey, msg, bad); got != want {
				t.Fatalf("tampered verdicts differ: verifier %v, package %v", got, want)
			}
			if err := v.Verify(msg, sig[:len(sig)-1]); err == nil {
				t.Fatal("truncated signature accepted")
			}
			// The Verifier must still accept a valid signature after the
			// rejections (no scratch poisoning).
			if err := v.Verify(msg, sig); err != nil {
				t.Fatalf("valid signature rejected after tampered calls: %v", err)
			}
		})
	}
}

// TestVerifyBatchVerdictEquivalence: one mixed batch — valid, forged,
// truncated, bit-flipped message, wrong key — must produce exactly the
// verdicts per-pair spx.Verify produces, in position.
func TestVerifyBatchVerdictEquivalence(t *testing.T) {
	p := params.SPHINCSPlus128f
	sk := testKey(t, p, 0x52)
	other := testKey(t, p, 0x53)
	s := NewSigner(sk)
	v := NewVerifier(&sk.PublicKey)

	const n = 2*sha2.Lanes + 3 // spans several lane groups plus a ragged tail
	msgs := make([][]byte, n)
	sigs := make([][]byte, n)
	for i := range msgs {
		msgs[i] = []byte{byte(i), 'b', 'v'}
		sig, err := s.Sign(msgs[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		sigs[i] = sig
	}
	// Tamper a scatter of entries so every lane group holds a mix.
	sigs[1][60] ^= 0x80             // forged signature body
	sigs[4] = sigs[4][:100]         // truncated: wrong length, skips the lanes
	msgs[7] = []byte("swapped out") // message no longer matches
	sigs[9][p.N-1] ^= 1             // flipped randomizer R
	if sig, err := NewSigner(other).Sign(msgs[12], nil); err != nil {
		t.Fatal(err)
	} else {
		sigs[12] = sig // valid under the wrong key
	}
	sigs[n-1][0] ^= 4 // tampering in the ragged tail group

	got := v.VerifyBatch(nil, msgs, sigs)
	for i := range msgs {
		want := Verify(&sk.PublicKey, msgs[i], sigs[i]) == nil
		if got[i] != want {
			t.Errorf("pair %d: batch verdict %v, scalar %v", i, got[i], want)
		}
	}
}

// TestVerifierZeroAlloc: steady-state Verify and VerifyBatch (with a
// caller-owned verdict buffer) must not allocate.
func TestVerifierZeroAlloc(t *testing.T) {
	p := params.SPHINCSPlus128f
	sk := testKey(t, p, 0x54)
	s := NewSigner(sk)
	v := NewVerifier(&sk.PublicKey)

	msgs := make([][]byte, sha2.Lanes+2)
	sigs := make([][]byte, len(msgs))
	for i := range msgs {
		msgs[i] = []byte{byte(i), 'z'}
		sig, err := s.Sign(msgs[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		sigs[i] = sig
	}
	ok := make([]bool, len(msgs))

	v.Verify(msgs[0], sigs[0])    // warm the arenas
	v.VerifyBatch(ok, msgs, sigs) //
	if allocs := testing.AllocsPerRun(5, func() {
		if err := v.Verify(msgs[0], sigs[0]); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Verify allocates (%v allocs/op)", allocs)
	}
	if allocs := testing.AllocsPerRun(5, func() {
		v.VerifyBatch(ok, msgs, sigs)
	}); allocs != 0 {
		t.Errorf("VerifyBatch allocates (%v allocs/op)", allocs)
	}
	for i, o := range ok {
		if !o {
			t.Errorf("pair %d reported invalid", i)
		}
	}
}

// TestVerifyBatchBackendEquivalence: verdicts must be identical across the
// portable, stdlib-accelerated and native SHA-256 backends.
func TestVerifyBatchBackendEquivalence(t *testing.T) {
	p := params.SPHINCSPlus128f
	sk := testKey(t, p, 0x55)
	s := NewSigner(sk)

	msgs := make([][]byte, 5)
	sigs := make([][]byte, 5)
	for i := range msgs {
		msgs[i] = []byte{byte(i), 'e'}
		sig, err := s.Sign(msgs[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		sigs[i] = sig
	}
	sigs[2][200] ^= 2

	run := func() []bool {
		return NewVerifier(&sk.PublicKey).VerifyBatch(nil, msgs, sigs)
	}
	prevNative := sha2.SetNative(false)
	prevAccel := sha2.SetAccelerated(false)
	portable := run()
	sha2.SetAccelerated(true)
	stdlib := run()
	sha2.SetAccelerated(prevAccel)
	sha2.SetNative(prevNative)
	current := run()
	for i := range portable {
		if portable[i] != stdlib[i] || portable[i] != current[i] {
			t.Errorf("pair %d: verdicts diverge across backends: portable=%v stdlib=%v current=%v",
				i, portable[i], stdlib[i], current[i])
		}
	}
}
