// Package spx is the pure-Go reference implementation of the SPHINCS+
// stateless hash-based signature scheme (SHA-2 instantiation, simple
// construction), assembled from the component packages wots, fors, xmss and
// hypertree.
//
// This implementation is the repository's correctness oracle: every
// GPU-simulated signer (internal/baseline, internal/core) must produce
// byte-identical signatures, and all of them must verify here.
package spx

import (
	"crypto/rand"
	"errors"
	"fmt"

	"herosign/internal/spx/address"
	"herosign/internal/spx/fors"
	"herosign/internal/spx/hashes"
	"herosign/internal/spx/hypertree"
	"herosign/internal/spx/params"
	"herosign/internal/spx/treecache"
)

// PublicKey is a SPHINCS+ public key: (PK.seed, PK.root).
type PublicKey struct {
	Params *params.Params
	Seed   []byte // N bytes
	Root   []byte // N bytes
}

// PrivateKey is a SPHINCS+ private key: (SK.seed, SK.prf, PK.seed, PK.root).
type PrivateKey struct {
	PublicKey
	SKSeed []byte // N bytes
	SKPRF  []byte // N bytes
}

// Bytes serializes the public key as PK.seed || PK.root.
func (pk *PublicKey) Bytes() []byte {
	out := make([]byte, 0, pk.Params.PKBytes)
	out = append(out, pk.Seed...)
	return append(out, pk.Root...)
}

// ParsePublicKey deserializes a public key.
func ParsePublicKey(p *params.Params, b []byte) (*PublicKey, error) {
	if len(b) != p.PKBytes {
		return nil, fmt.Errorf("spx: public key must be %d bytes, got %d", p.PKBytes, len(b))
	}
	return &PublicKey{
		Params: p,
		Seed:   append([]byte(nil), b[:p.N]...),
		Root:   append([]byte(nil), b[p.N:]...),
	}, nil
}

// Bytes serializes the private key as SK.seed || SK.prf || PK.seed || PK.root.
func (sk *PrivateKey) Bytes() []byte {
	out := make([]byte, 0, sk.Params.SKBytes)
	out = append(out, sk.SKSeed...)
	out = append(out, sk.SKPRF...)
	out = append(out, sk.Seed...)
	return append(out, sk.Root...)
}

// ParsePrivateKey deserializes a private key.
func ParsePrivateKey(p *params.Params, b []byte) (*PrivateKey, error) {
	if len(b) != p.SKBytes {
		return nil, fmt.Errorf("spx: private key must be %d bytes, got %d", p.SKBytes, len(b))
	}
	sk := &PrivateKey{
		PublicKey: PublicKey{
			Params: p,
			Seed:   append([]byte(nil), b[2*p.N:3*p.N]...),
			Root:   append([]byte(nil), b[3*p.N:]...),
		},
		SKSeed: append([]byte(nil), b[:p.N]...),
		SKPRF:  append([]byte(nil), b[p.N:2*p.N]...),
	}
	return sk, nil
}

// GenerateKey creates a key pair from fresh randomness (crypto/rand).
func GenerateKey(p *params.Params) (*PrivateKey, error) {
	seeds := make([]byte, 3*p.N)
	if _, err := rand.Read(seeds); err != nil {
		return nil, err
	}
	return KeyFromSeeds(p, seeds[:p.N], seeds[p.N:2*p.N], seeds[2*p.N:])
}

// KeyFromSeeds derives a key pair deterministically from (SK.seed, SK.prf,
// PK.seed). Used by tests and by the GPU signers so that all
// implementations operate on identical keys.
func KeyFromSeeds(p *params.Params, skSeed, skPRF, pkSeed []byte) (*PrivateKey, error) {
	if len(skSeed) != p.N || len(skPRF) != p.N || len(pkSeed) != p.N {
		return nil, errors.New("spx: seed length mismatch")
	}
	sk := &PrivateKey{
		PublicKey: PublicKey{Params: p, Seed: append([]byte(nil), pkSeed...)},
		SKSeed:    append([]byte(nil), skSeed...),
		SKPRF:     append([]byte(nil), skPRF...),
	}
	ctx := hashes.NewCtx(p, sk.Seed, sk.SKSeed)
	sk.Root = hypertree.Root(ctx)
	return sk, nil
}

// SignOptions tune signing behaviour.
type SignOptions struct {
	// OptRand is the optional randomizer fed to PRF_msg. Nil selects the
	// deterministic default (PK.seed), matching the reference code.
	OptRand []byte
	// Counters, when non-nil, accumulates hash work performed by this call.
	Counters *hashes.Counters
}

// Signer is a reusable signing context for one private key. It keeps the
// seeded hash midstate, the lane-batch engine and all scratch arenas warm
// across messages, so the per-message hot path performs no setup hashing
// and no per-hash allocation. A Signer is NOT safe for concurrent use;
// create one per worker.
type Signer struct {
	sk    *PrivateKey
	ctx   *hashes.Ctx
	cache *treecache.Cache // optional; shared across signers of one key
}

// NewSigner builds a reusable signer for sk.
func NewSigner(sk *PrivateKey) *Signer {
	return &Signer{sk: sk, ctx: hashes.NewCtx(sk.Params, sk.Seed, sk.SKSeed)}
}

// TreeCache memoizes XMSS subtree state for one key: pinned top hypertree
// layers plus an LRU of lower subtrees, shared safely by any number of
// Signers. See package treecache.
type TreeCache = treecache.Cache

// TreeCacheStats snapshots a TreeCache's hit/miss/residency counters.
type TreeCacheStats = treecache.Stats

// NewTreeCache builds a hypertree memoization cache for sk holding at most
// budgetBytes. Populate the pinned layers up front with (*TreeCache).Warm,
// or let them fill lazily.
func NewTreeCache(sk *PrivateKey, budgetBytes int64) *TreeCache {
	return treecache.New(sk.Params, sk.Seed, sk.SKSeed, budgetBytes)
}

// NewSignerWithCache builds a reusable signer for sk that consults cache on
// the hypertree layers. A nil cache yields a plain NewSigner. The cache
// must have been built for sk (its state embeds key-derived values), so a
// mismatched cache is an error rather than a silent wrong signature.
func NewSignerWithCache(sk *PrivateKey, cache *TreeCache) (*Signer, error) {
	if cache != nil && !cache.MatchesKey(sk.Params, sk.Seed, sk.SKSeed) {
		return nil, errors.New("spx: tree cache was built for a different key")
	}
	s := NewSigner(sk)
	s.cache = cache
	return s, nil
}

// Sign produces a SPHINCS+ signature of msg, reusing the signer's context.
func (s *Signer) Sign(msg []byte, opts *SignOptions) ([]byte, error) {
	sk := s.sk
	p := sk.Params
	var optRand []byte
	var counters *hashes.Counters
	if opts != nil {
		optRand = opts.OptRand
		counters = opts.Counters
	}
	if optRand == nil {
		optRand = sk.Seed
	}
	if len(optRand) != p.N {
		return nil, fmt.Errorf("spx: OptRand must be %d bytes", p.N)
	}

	ctx := s.ctx
	ctx.C = counters

	sig := make([]byte, p.SigBytes)

	// R = PRF_msg(SK.prf, OptRand, M)
	r := hashes.PRFMsg(p, sk.SKPRF, optRand, msg)
	copy(sig[:p.N], r)

	// Digest and index extraction.
	digest := hashes.HMsg(p, r, sk.Seed, sk.Root, msg)
	md, treeIdx, leafIdx := hashes.SplitDigest(p, digest)

	// FORS over the bottom-layer key pair (treeIdx, leafIdx).
	var forsAdrs address.Address
	forsAdrs.SetLayer(0)
	forsAdrs.SetTree(treeIdx)
	forsAdrs.SetType(address.FORSTree)
	forsAdrs.SetKeyPair(leafIdx)
	forsPK := fors.Sign(ctx, sig[p.N:p.N+p.ForsBytes], md, &forsAdrs)

	// Hypertree over the FORS public key.
	hypertree.SignCached(ctx, s.cache, nil, sig[p.N+p.ForsBytes:], forsPK, treeIdx, leafIdx)
	ctx.C = nil
	return sig, nil
}

// Sign produces a SPHINCS+ signature of msg with a one-shot context. Batch
// callers should hold a Signer instead to amortize context setup.
func Sign(sk *PrivateKey, msg []byte, opts *SignOptions) ([]byte, error) {
	return NewSigner(sk).Sign(msg, opts)
}

// ErrVerify is returned when a signature does not verify.
var ErrVerify = errors.New("spx: signature verification failed")

// Verify checks a SPHINCS+ signature.
func Verify(pk *PublicKey, msg, sig []byte) error {
	p := pk.Params
	if len(sig) != p.SigBytes {
		return fmt.Errorf("spx: signature must be %d bytes, got %d", p.SigBytes, len(sig))
	}
	ctx := hashes.NewCtx(p, pk.Seed, nil)

	r := sig[:p.N]
	digest := hashes.HMsg(p, r, pk.Seed, pk.Root, msg)
	md, treeIdx, leafIdx := hashes.SplitDigest(p, digest)

	var forsAdrs address.Address
	forsAdrs.SetLayer(0)
	forsAdrs.SetTree(treeIdx)
	forsAdrs.SetType(address.FORSTree)
	forsAdrs.SetKeyPair(leafIdx)
	forsPK := fors.PKFromSig(ctx, sig[p.N:p.N+p.ForsBytes], md, &forsAdrs)

	var root [32]byte // N <= 32
	hypertree.PKFromSig(ctx, root[:p.N], sig[p.N+p.ForsBytes:], forsPK, treeIdx, leafIdx)
	for i := 0; i < p.N; i++ {
		if root[i] != pk.Root[i] {
			return ErrVerify
		}
	}
	return nil
}
