package spx

import (
	"fmt"

	"herosign/internal/spx/params"
)

// Signature is the structural view of a SPHINCS+ signature: the randomizer,
// the k FORS items (revealed secret + authentication path each) and the d
// hypertree layers (WOTS+ signature + authentication path each).
//
// Parsing is zero-copy: all slices alias the input buffer.
type Signature struct {
	Params *params.Params
	R      []byte
	Fors   []ForsItem
	Layers []LayerSig
}

// ForsItem is one FORS tree's contribution.
type ForsItem struct {
	SK   []byte // revealed leaf secret, N bytes
	Auth []byte // LogT sibling nodes, LogT*N bytes
}

// LayerSig is one hypertree layer's contribution.
type LayerSig struct {
	Wots []byte // WOTSLen chain values, WOTSLen*N bytes
	Auth []byte // TreeHeight sibling nodes, TreeHeight*N bytes
}

// ParseSignature splits sig into its structural components.
func ParseSignature(p *params.Params, sig []byte) (*Signature, error) {
	if len(sig) != p.SigBytes {
		return nil, fmt.Errorf("spx: signature must be %d bytes, got %d", p.SigBytes, len(sig))
	}
	s := &Signature{Params: p, R: sig[:p.N]}
	off := p.N
	itemBytes := (p.LogT + 1) * p.N
	for i := 0; i < p.K; i++ {
		item := sig[off : off+itemBytes]
		s.Fors = append(s.Fors, ForsItem{SK: item[:p.N], Auth: item[p.N:]})
		off += itemBytes
	}
	for l := 0; l < p.D; l++ {
		layer := sig[off : off+p.XMSSBytes]
		s.Layers = append(s.Layers, LayerSig{
			Wots: layer[:p.WOTSBytes],
			Auth: layer[p.WOTSBytes:],
		})
		off += p.XMSSBytes
	}
	if off != p.SigBytes {
		return nil, fmt.Errorf("spx: internal layout error at offset %d", off)
	}
	return s, nil
}

// Encode reassembles the signature buffer. The output is a fresh slice.
func (s *Signature) Encode() []byte {
	p := s.Params
	out := make([]byte, 0, p.SigBytes)
	out = append(out, s.R...)
	for _, f := range s.Fors {
		out = append(out, f.SK...)
		out = append(out, f.Auth...)
	}
	for _, l := range s.Layers {
		out = append(out, l.Wots...)
		out = append(out, l.Auth...)
	}
	return out
}
