// Package address implements the SPHINCS+ hash-function addressing scheme
// (ADRS). Every tweakable-hash call in SPHINCS+ is domain-separated by a
// 32-byte structured address; the SHA-2 instantiation compresses it to 22
// bytes before hashing, which is the form the GPU kernels move through
// constant/shared memory.
package address

import "encoding/binary"

// Address types, per the SPHINCS+ round-3.1 specification.
const (
	WOTSHash  = 0 // hashing inside a WOTS+ chain
	WOTSPK    = 1 // compressing a WOTS+ public key
	Tree      = 2 // hashing inside an XMSS (hypertree) Merkle tree
	FORSTree  = 3 // hashing inside a FORS Merkle tree
	FORSRoots = 4 // compressing the k FORS roots
	WOTSPRF   = 5 // secret-key generation for WOTS+ chains
	FORSPRF   = 6 // secret-key generation for FORS leaves
)

// Size is the uncompressed address size in bytes.
const Size = 32

// CompressedSize is the SHA-2 compressed address size in bytes:
// layer (1) || tree (8) || type (1) || remaining words (12).
const CompressedSize = 22

// Address is a SPHINCS+ ADRS. The layout of the 32-byte word view is:
//
//	word 0       layer address
//	words 1..3   tree address (96 bits; high 32 bits always zero here)
//	word 4       type
//	words 5..7   type-specific (key pair / chain / hash, or padding)
//
// The zero value is a valid address (layer 0, tree 0, type WOTS_HASH).
type Address [Size]byte

// SetLayer sets the hypertree layer (0 = bottom).
func (a *Address) SetLayer(layer uint32) {
	binary.BigEndian.PutUint32(a[0:4], layer)
}

// Layer returns the hypertree layer.
func (a *Address) Layer() uint32 { return binary.BigEndian.Uint32(a[0:4]) }

// SetTree sets the 64 low bits of the tree address (the index of the subtree
// within its layer). SPHINCS+ tree indices fit in 64 bits for all parameter
// sets; the upper 32 bits of the 96-bit field stay zero.
func (a *Address) SetTree(tree uint64) {
	binary.BigEndian.PutUint32(a[4:8], 0)
	binary.BigEndian.PutUint64(a[8:16], tree)
}

// Tree returns the 64 low bits of the tree address.
func (a *Address) Tree() uint64 { return binary.BigEndian.Uint64(a[8:16]) }

// SetType sets the address type and zeroes the three type-specific words, as
// the specification requires when switching types.
func (a *Address) SetType(t uint32) {
	binary.BigEndian.PutUint32(a[16:20], t)
	for i := 20; i < 32; i++ {
		a[i] = 0
	}
}

// Type returns the address type.
func (a *Address) Type() uint32 { return binary.BigEndian.Uint32(a[16:20]) }

// SetKeyPair sets the key-pair address (WOTS+/FORS instance within a tree).
func (a *Address) SetKeyPair(kp uint32) {
	binary.BigEndian.PutUint32(a[20:24], kp)
}

// KeyPair returns the key-pair address.
func (a *Address) KeyPair() uint32 { return binary.BigEndian.Uint32(a[20:24]) }

// SetChain sets the WOTS+ chain address.
func (a *Address) SetChain(chain uint32) {
	binary.BigEndian.PutUint32(a[24:28], chain)
}

// SetHash sets the WOTS+ hash address (position within a chain).
func (a *Address) SetHash(h uint32) {
	binary.BigEndian.PutUint32(a[28:32], h)
}

// SetTreeHeight sets the node height for Tree/FORSTree addresses (aliases
// the chain word).
func (a *Address) SetTreeHeight(h uint32) {
	binary.BigEndian.PutUint32(a[24:28], h)
}

// TreeHeight returns the node height.
func (a *Address) TreeHeight() uint32 { return binary.BigEndian.Uint32(a[24:28]) }

// SetTreeIndex sets the node index within its level (aliases the hash word).
func (a *Address) SetTreeIndex(i uint32) {
	binary.BigEndian.PutUint32(a[28:32], i)
}

// TreeIndex returns the node index within its level.
func (a *Address) TreeIndex() uint32 { return binary.BigEndian.Uint32(a[28:32]) }

// CopySubtree copies the subtree-identifying fields (layer and tree) from
// src, leaving type and type-specific words untouched.
func (a *Address) CopySubtree(src *Address) {
	copy(a[0:16], src[0:16])
}

// CopyKeyPair copies subtree fields plus the key-pair word from src.
func (a *Address) CopyKeyPair(src *Address) {
	a.CopySubtree(src)
	copy(a[20:24], src[20:24])
}

// Compressed returns the 22-byte SHA-2 address encoding:
// layer (1 byte) || tree (8 bytes) || type (1 byte) || words 5..7 (12 bytes).
func (a *Address) Compressed() [CompressedSize]byte {
	var c [CompressedSize]byte
	a.CompressedInto(c[:])
	return c
}

// CompressedInto writes the compressed form directly into dst (at least
// CompressedSize bytes), letting hot paths stage addresses into hash blocks
// without an intermediate copy.
func (a *Address) CompressedInto(dst []byte) {
	dst[0] = a[3]           // low byte of layer
	copy(dst[1:9], a[8:16]) // low 8 bytes of tree
	dst[9] = a[19]          // low byte of type
	copy(dst[10:22], a[20:32])
}
