package address

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestFieldRoundTrips checks every setter/getter pair.
func TestFieldRoundTrips(t *testing.T) {
	var a Address
	a.SetLayer(7)
	if a.Layer() != 7 {
		t.Error("layer roundtrip")
	}
	a.SetTree(0x0123456789ABCDEF)
	if a.Tree() != 0x0123456789ABCDEF {
		t.Error("tree roundtrip")
	}
	a.SetType(FORSTree)
	if a.Type() != FORSTree {
		t.Error("type roundtrip")
	}
	a.SetKeyPair(42)
	if a.KeyPair() != 42 {
		t.Error("keypair roundtrip")
	}
	a.SetTreeHeight(5)
	if a.TreeHeight() != 5 {
		t.Error("tree height roundtrip")
	}
	a.SetTreeIndex(99)
	if a.TreeIndex() != 99 {
		t.Error("tree index roundtrip")
	}
}

// TestSetTypeClearsTypeSpecificWords enforces the specification rule that
// switching address type zeroes words 5..7.
func TestSetTypeClearsTypeSpecificWords(t *testing.T) {
	var a Address
	a.SetKeyPair(1)
	a.SetChain(2)
	a.SetHash(3)
	a.SetType(Tree)
	if a.KeyPair() != 0 || a.TreeHeight() != 0 || a.TreeIndex() != 0 {
		t.Fatal("SetType must clear the type-specific words")
	}
}

// TestSetTypePreservesSubtreeIdentity: layer and tree survive a type switch.
func TestSetTypePreservesSubtreeIdentity(t *testing.T) {
	var a Address
	a.SetLayer(3)
	a.SetTree(77)
	a.SetType(WOTSPK)
	if a.Layer() != 3 || a.Tree() != 77 {
		t.Fatal("SetType must not touch layer/tree")
	}
}

// TestCopySubtree checks partial copies.
func TestCopySubtree(t *testing.T) {
	var src, dst Address
	src.SetLayer(9)
	src.SetTree(1234)
	src.SetType(FORSTree)
	src.SetKeyPair(55)

	dst.SetType(WOTSHash)
	dst.SetKeyPair(11)
	dst.CopySubtree(&src)
	if dst.Layer() != 9 || dst.Tree() != 1234 {
		t.Fatal("CopySubtree missed identity fields")
	}
	if dst.Type() != WOTSHash || dst.KeyPair() != 11 {
		t.Fatal("CopySubtree must not copy type or keypair")
	}

	var dst2 Address
	dst2.CopyKeyPair(&src)
	if dst2.KeyPair() != 55 || dst2.Tree() != 1234 {
		t.Fatal("CopyKeyPair must copy keypair and identity")
	}
}

// TestCompressedLayout pins the 22-byte SHA-2 layout:
// layer(1) || tree(8) || type(1) || words 5..7 (12).
func TestCompressedLayout(t *testing.T) {
	var a Address
	a.SetLayer(0xAB)
	a.SetTree(0x1122334455667788)
	a.SetType(FORSRoots)
	a.SetKeyPair(0xDEADBEEF)
	a.SetTreeHeight(0x01020304)
	a.SetTreeIndex(0x0A0B0C0D)

	c := a.Compressed()
	if c[0] != 0xAB {
		t.Errorf("layer byte = %#x", c[0])
	}
	wantTree := []byte{0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88}
	if !bytes.Equal(c[1:9], wantTree) {
		t.Errorf("tree bytes = %x", c[1:9])
	}
	if c[9] != FORSRoots {
		t.Errorf("type byte = %#x", c[9])
	}
	want := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03, 0x04, 0x0A, 0x0B, 0x0C, 0x0D}
	if !bytes.Equal(c[10:22], want) {
		t.Errorf("words = %x", c[10:22])
	}
}

// TestCompressedInjective property: distinct (layer, tree, type, keypair,
// height, index) tuples compress to distinct byte strings within the value
// ranges SPHINCS+ uses.
func TestCompressedInjective(t *testing.T) {
	type tuple struct {
		Layer   uint8
		Tree    uint32
		Typ     uint8
		KeyPair uint16
		Height  uint8
		Index   uint32
	}
	build := func(x tuple) [CompressedSize]byte {
		var a Address
		a.SetLayer(uint32(x.Layer))
		a.SetTree(uint64(x.Tree))
		a.SetType(uint32(x.Typ % 7))
		a.SetKeyPair(uint32(x.KeyPair))
		a.SetTreeHeight(uint32(x.Height))
		a.SetTreeIndex(x.Index)
		return a.Compressed()
	}
	f := func(x, y tuple) bool {
		if x == y {
			return true
		}
		xc, yc := build(x), build(y)
		// Equal compressed forms imply equal tuples (mod type wrap).
		if xc == yc {
			x.Typ %= 7
			y.Typ %= 7
			return x == y
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestZeroValueIsValidWOTSHash documents the zero-value semantics.
func TestZeroValueIsValidWOTSHash(t *testing.T) {
	var a Address
	if a.Type() != WOTSHash || a.Layer() != 0 || a.Tree() != 0 {
		t.Fatal("zero value must be layer 0 / tree 0 / WOTS_HASH")
	}
}
