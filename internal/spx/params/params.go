// Package params defines the SPHINCS+ parameter sets and all quantities
// derived from them (WOTS+ chain counts, FORS geometry, signature layout).
//
// The values follow Table I of the HERO-Sign paper, which are the standard
// SPHINCS+ round-3 parameter sets. The paper evaluates the -f ("fast")
// variants; the -s ("small") variants are included for completeness because
// the library is meant to be adoptable beyond the paper's evaluation.
package params

import "fmt"

// HashMode selects which SHA-2 function backs the tweakable hashes.
type HashMode int

const (
	// SHA256Everywhere uses SHA-256 for every hash role. This is the paper's
	// stated baseline ("We select SHA-256 as the hash function baseline").
	SHA256Everywhere HashMode = iota
	// SHA512Msg follows the round-3.1 rule: H_msg and PRF_msg use SHA-512 at
	// security levels 3 and 5 (n >= 24). Thash/F/H/T and PRF stay SHA-256.
	SHA512Msg
)

// Params holds one SPHINCS+ parameter set plus derived constants.
type Params struct {
	Name string

	// Core parameters (paper Table I).
	N    int // bytes of hash output, seeds and nodes
	H    int // total hypertree height
	D    int // hypertree layers
	LogT int // height of each FORS tree (log2 t)
	K    int // number of FORS trees
	W    int // Winternitz parameter

	// Hash selection.
	Mode HashMode

	// Derived WOTS+ constants.
	LogW      int // log2(W)
	WOTSLen1  int // message chains
	WOTSLen2  int // checksum chains
	WOTSLen   int // total chains
	WOTSBytes int // bytes of one WOTS+ signature (WOTSLen * N)

	// Derived FORS constants.
	T            int // leaves per FORS tree (2^LogT)
	ForsMsgBytes int // ceil(K*LogT/8)
	ForsBytes    int // bytes of a FORS signature: K*(LogT+1)*N
	ForsPKBytes  int // N

	// Derived hypertree constants.
	TreeHeight int // H / D, height of each XMSS subtree
	XMSSBytes  int // bytes of one XMSS signature: (WOTSLen + TreeHeight) * N

	// Message digest layout (H_msg output split).
	MDBytes      int // ceil(K*LogT/8)
	TreeIdxBytes int // ceil((H - H/D)/8)
	LeafIdxBytes int // ceil((H/D)/8)
	DigestBytes  int // MDBytes + TreeIdxBytes + LeafIdxBytes

	// Signature and key sizes.
	SigBytes int // N + ForsBytes + D*XMSSBytes
	PKBytes  int // 2N
	SKBytes  int // 4N
}

// derive fills in every derived field from the core parameters.
func (p *Params) derive() {
	p.LogW = log2(p.W)
	p.WOTSLen1 = (8*p.N + p.LogW - 1) / p.LogW
	// len2 = floor(log2(len1*(w-1)) / log2(w)) + 1
	p.WOTSLen2 = log2floor(p.WOTSLen1*(p.W-1))/p.LogW + 1
	p.WOTSLen = p.WOTSLen1 + p.WOTSLen2
	p.WOTSBytes = p.WOTSLen * p.N

	p.T = 1 << p.LogT
	p.ForsMsgBytes = (p.K*p.LogT + 7) / 8
	p.ForsBytes = p.K * (p.LogT + 1) * p.N
	p.ForsPKBytes = p.N

	p.TreeHeight = p.H / p.D
	p.XMSSBytes = (p.WOTSLen + p.TreeHeight) * p.N

	p.MDBytes = p.ForsMsgBytes
	p.TreeIdxBytes = (p.H - p.TreeHeight + 7) / 8
	p.LeafIdxBytes = (p.TreeHeight + 7) / 8
	p.DigestBytes = p.MDBytes + p.TreeIdxBytes + p.LeafIdxBytes

	p.SigBytes = p.N + p.ForsBytes + p.D*p.XMSSBytes
	p.PKBytes = 2 * p.N
	p.SKBytes = 4 * p.N
}

// Validate performs internal consistency checks and returns an error when
// the parameter set is malformed.
func (p *Params) Validate() error {
	switch {
	case p.N != 16 && p.N != 24 && p.N != 32:
		return fmt.Errorf("params %s: unsupported n=%d", p.Name, p.N)
	case p.W != 16 && p.W != 256:
		return fmt.Errorf("params %s: unsupported w=%d", p.Name, p.W)
	case p.H%p.D != 0:
		return fmt.Errorf("params %s: d=%d does not divide h=%d", p.Name, p.D, p.H)
	case p.LogT < 1 || p.LogT > 24:
		return fmt.Errorf("params %s: log t=%d out of range", p.Name, p.LogT)
	case p.K < 1:
		return fmt.Errorf("params %s: k=%d out of range", p.Name, p.K)
	case p.TreeHeight > 25:
		return fmt.Errorf("params %s: tree height %d too large", p.Name, p.TreeHeight)
	}
	return nil
}

// UsesSHA512Msg reports whether H_msg / PRF_msg run on SHA-512 under the
// configured mode at this security level.
func (p *Params) UsesSHA512Msg() bool {
	return p.Mode == SHA512Msg && p.N >= 24
}

// WithMode returns a copy of p using the given hash mode.
func (p Params) WithMode(m HashMode) *Params {
	p.Mode = m
	return &p
}

// String returns the canonical set name.
func (p *Params) String() string { return p.Name }

func log2(x int) int {
	n := 0
	for 1<<uint(n+1) <= x {
		n++
	}
	return n
}

func log2floor(x int) int { return log2(x) }

func mk(name string, n, h, d, logt, k, w int) *Params {
	p := &Params{Name: name, N: n, H: h, D: d, LogT: logt, K: k, W: w}
	p.derive()
	if err := p.Validate(); err != nil {
		panic(err) // parameter tables are compile-time constants
	}
	return p
}

// The six standard SPHINCS+ round-3 parameter sets. The -f rows match the
// paper's Table I exactly.
var (
	SPHINCSPlus128s = mk("SPHINCS+-128s", 16, 63, 7, 12, 14, 16)
	SPHINCSPlus128f = mk("SPHINCS+-128f", 16, 66, 22, 6, 33, 16)
	SPHINCSPlus192s = mk("SPHINCS+-192s", 24, 63, 7, 14, 17, 16)
	SPHINCSPlus192f = mk("SPHINCS+-192f", 24, 66, 22, 8, 33, 16)
	SPHINCSPlus256s = mk("SPHINCS+-256s", 32, 64, 8, 14, 22, 16)
	SPHINCSPlus256f = mk("SPHINCS+-256f", 32, 68, 17, 9, 35, 16)
)

// FastSets lists the three -f parameter sets the paper evaluates, in the
// order the paper's tables use.
func FastSets() []*Params {
	return []*Params{SPHINCSPlus128f, SPHINCSPlus192f, SPHINCSPlus256f}
}

// AllSets lists every built-in parameter set.
func AllSets() []*Params {
	return []*Params{
		SPHINCSPlus128s, SPHINCSPlus128f,
		SPHINCSPlus192s, SPHINCSPlus192f,
		SPHINCSPlus256s, SPHINCSPlus256f,
	}
}

// ByName resolves a parameter set from its canonical name (case-sensitive),
// also accepting short forms like "128f".
func ByName(name string) (*Params, error) {
	for _, p := range AllSets() {
		if p.Name == name || p.Name == "SPHINCS+-"+name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("params: unknown parameter set %q", name)
}
