package params

import "testing"

// TestTableI pins the paper's Table I exactly.
func TestTableI(t *testing.T) {
	cases := []struct {
		p                *Params
		n, h, d, logt, k int
	}{
		{SPHINCSPlus128f, 16, 66, 22, 6, 33},
		{SPHINCSPlus192f, 24, 66, 22, 8, 33},
		{SPHINCSPlus256f, 32, 68, 17, 9, 35},
	}
	for _, c := range cases {
		if c.p.N != c.n || c.p.H != c.h || c.p.D != c.d || c.p.LogT != c.logt || c.p.K != c.k {
			t.Errorf("%s: (%d,%d,%d,%d,%d)", c.p.Name, c.p.N, c.p.H, c.p.D, c.p.LogT, c.p.K)
		}
		if c.p.W != 16 {
			t.Errorf("%s: w = %d", c.p.Name, c.p.W)
		}
	}
}

// TestDerivedGeometry checks quantities the paper references in prose:
// hypertree leaf counts 176/176/272 (§III-B1) and FORS leaf counts
// 2112/8448/17920.
func TestDerivedGeometry(t *testing.T) {
	cases := map[string]struct{ htLeaves, forsLeaves int }{
		"SPHINCS+-128f": {176, 2112},
		"SPHINCS+-192f": {176, 8448},
		"SPHINCS+-256f": {272, 17920},
	}
	for _, p := range FastSets() {
		want := cases[p.Name]
		htLeaves := p.D * (1 << uint(p.TreeHeight))
		if htLeaves != want.htLeaves {
			t.Errorf("%s: hypertree leaves %d, want %d", p.Name, htLeaves, want.htLeaves)
		}
		forsLeaves := p.K * p.T
		if forsLeaves != want.forsLeaves {
			t.Errorf("%s: FORS leaves %d, want %d", p.Name, forsLeaves, want.forsLeaves)
		}
	}
}

// TestForsSharedMemoryFootprints checks the §III-B1 shared-memory
// arithmetic: 33 KB / 198 KB / 560 KB for all FORS leaves at once.
func TestForsSharedMemoryFootprints(t *testing.T) {
	want := map[string]int{
		"SPHINCS+-128f": 33 * 1024,
		"SPHINCS+-192f": 198 * 1024,
		"SPHINCS+-256f": 560 * 1024,
	}
	for _, p := range FastSets() {
		if got := p.K * p.T * p.N; got != want[p.Name] {
			t.Errorf("%s: FORS footprint %d, want %d", p.Name, got, want[p.Name])
		}
	}
}

// TestWotsGenLeafHashCounts checks the §III-C2 claim: one wots_gen_leaf
// performs 560/816/1072 hash computations (len x w chain steps).
func TestWotsGenLeafHashCounts(t *testing.T) {
	want := map[string]int{
		"SPHINCS+-128f": 560,
		"SPHINCS+-192f": 816,
		"SPHINCS+-256f": 1072,
	}
	for _, p := range FastSets() {
		if got := p.WOTSLen * p.W; got != want[p.Name] {
			t.Errorf("%s: wots_gen_leaf hashes %d, want %d", p.Name, got, want[p.Name])
		}
	}
}

// TestValidateCatchesBadParams exercises the validator.
func TestValidateCatchesBadParams(t *testing.T) {
	bad := []Params{
		{Name: "bad-n", N: 20, H: 66, D: 22, LogT: 6, K: 33, W: 16},
		{Name: "bad-w", N: 16, H: 66, D: 22, LogT: 6, K: 33, W: 17},
		{Name: "bad-d", N: 16, H: 66, D: 23, LogT: 6, K: 33, W: 16},
		{Name: "bad-k", N: 16, H: 66, D: 22, LogT: 6, K: 0, W: 16},
	}
	for i := range bad {
		p := bad[i]
		p.LogW = 4
		p.TreeHeight = p.H / max(p.D, 1)
		if err := p.Validate(); err == nil {
			t.Errorf("%s accepted", p.Name)
		}
	}
	for _, p := range AllSets() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s rejected: %v", p.Name, err)
		}
	}
}

// TestByNameForms covers the short and full lookup forms.
func TestByNameForms(t *testing.T) {
	p, err := ByName("192f")
	if err != nil || p != SPHINCSPlus192f {
		t.Fatalf("short form lookup: %v %v", p, err)
	}
	p, err = ByName("SPHINCS+-256s")
	if err != nil || p != SPHINCSPlus256s {
		t.Fatalf("full form lookup: %v %v", p, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("bogus name accepted")
	}
}

// TestWithModeCopies ensures WithMode does not mutate the shared set.
func TestWithModeCopies(t *testing.T) {
	p := SPHINCSPlus256f.WithMode(SHA512Msg)
	if !p.UsesSHA512Msg() {
		t.Fatal("mode not applied")
	}
	if SPHINCSPlus256f.UsesSHA512Msg() {
		t.Fatal("WithMode mutated the global parameter set")
	}
	if SPHINCSPlus128f.WithMode(SHA512Msg).UsesSHA512Msg() {
		t.Fatal("SHA512Msg must not apply at level 1")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
