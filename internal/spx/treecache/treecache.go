// Package treecache memoizes per-key XMSS subtree state across signatures.
//
// Every SPHINCS+ signature under one key rebuilds D XMSS subtrees from
// scratch, yet each subtree depends only on the key seeds and its (layer,
// tree index) coordinates — and at every layer above the bottom, the message
// a leaf signs is the root of a fixed child subtree. A Cache therefore
// stores, per visited subtree, the full Merkle node table (leaves through
// root, as TreeNodes lays it out) plus one WOTS+ signature slot per leaf
// tagged with the N-byte message it signs. On a hit the auth path and root
// are memcpys; when the tag also matches, the WOTS+ signature is a memcpy
// too and the layer costs no hashing at all.
//
// Residency is split by a byte budget: the top hypertree layers (few trees,
// touched by every signature) are pinned — populated up front by Warm or
// lazily on first miss — while lower-layer subtrees live in an LRU bounded
// by the remaining budget, so repeated traffic (the per-shard key domains of
// the serving layer) keeps its working set resident.
//
// A Cache is safe for concurrent use by many signers sharing one key; all
// state is guarded by a single mutex, which is cheap next to the
// milliseconds a SPHINCS+ signature costs. The hit path performs no
// allocation. Cached bytes are exactly what the uncached path recomputes,
// so signatures are byte-identical with and without a cache.
package treecache

import (
	"bytes"
	"container/list"
	"runtime"
	"sync"

	"herosign/internal/spx/address"
	"herosign/internal/spx/hashes"
	"herosign/internal/spx/params"
	"herosign/internal/spx/wots"
	"herosign/internal/spx/xmss"
)

// key identifies one XMSS subtree: its hypertree layer and the tree index
// within that layer.
type key struct {
	layer uint8
	tree  uint64
}

// entry is one cached subtree: the full node table plus per-leaf WOTS+
// signature slots tagged by signed message.
type entry struct {
	nodes  []byte // xmss.NodesLen(p): leaf level .. root
	wots   []byte // leaves * WOTSBytes, slot per leaf
	tags   []byte // leaves * N: the message each filled slot signs
	filled []bool // per leaf: wots/tags slot valid
	elem   *list.Element // LRU position; nil for pinned entries
}

// entryOverhead approximates the per-entry bookkeeping bytes (map bucket,
// list element, slice headers) charged against the budget.
const entryOverhead = 160

// Cache memoizes XMSS subtree state for one key. See the package comment.
type Cache struct {
	p      *params.Params
	pkSeed []byte
	skSeed []byte

	budget    int64 // total byte budget
	lruBudget int64 // budget remaining after the pinned-layer plan
	entrySize int64 // uniform per-entry cost, bookkeeping included
	pinFloor  int   // layers >= pinFloor are pinned resident; p.D pins none

	mu          sync.Mutex
	entries     map[key]*entry
	lru         list.List // of key; front = most recently used
	lruBytes    int64
	pinnedBytes int64

	hits, misses, evictions int64
	wotsHits, wotsFills     int64
	warmed                  int64
}

// Stats is a point-in-time snapshot of cache effectiveness and residency.
type Stats struct {
	Hits      int64 // SignLayer found the subtree's node table
	Misses    int64 // SignLayer rebuilt the subtree
	Evictions int64 // LRU entries displaced by the budget
	WOTSHits  int64 // hits whose WOTS+ slot also matched (zero-hash layer)
	WOTSFills int64 // WOTS+ slots computed and stored on the request path

	ResidentBytes int64 // bytes currently held (pinned + LRU)
	BudgetBytes   int64 // configured budget
	PinnedLayers  int   // top hypertree layers in the pinned plan
	Entries       int   // cached subtrees
	WarmedEntries int64 // pinned subtrees populated by Warm
}

// New builds a cache for the key identified by (pkSeed, skSeed) under p,
// holding at most budget bytes. The top hypertree layers whose cumulative
// size fits half the budget are pinned (populated by Warm or lazily); the
// rest of the budget bounds the lower-layer LRU. A budget too small for a
// single subtree yields a valid cache that simply never retains lower
// layers.
func New(p *params.Params, pkSeed, skSeed []byte, budget int64) *Cache {
	c := &Cache{
		p:       p,
		pkSeed:  append([]byte(nil), pkSeed...),
		skSeed:  append([]byte(nil), skSeed...),
		budget:  budget,
		entries: make(map[key]*entry),
	}
	leaves := int64(1) << uint(p.TreeHeight)
	c.entrySize = int64(xmss.NodesLen(p)) + leaves*int64(p.WOTSBytes) +
		leaves*int64(p.N) + leaves + entryOverhead

	// Pin top layers greedily while they fit half the budget. Tree counts
	// grow by 2^TreeHeight per layer descended, so the loop stops fast; the
	// shift guard keeps the count arithmetic clear of overflow long after
	// any realistic budget is exhausted.
	maxPin := (budget / 2) / c.entrySize
	var cum int64
	c.pinFloor = p.D
	for l := p.D - 1; l >= 0; l-- {
		shift := uint(p.H - (l+1)*p.TreeHeight)
		if shift >= 40 {
			break
		}
		trees := int64(1) << shift
		if cum+trees > maxPin {
			break
		}
		cum += trees
		c.pinFloor = l
	}
	c.lruBudget = budget - cum*c.entrySize
	return c
}

// MatchesKey reports whether the cache was built for the key identified by
// (p, pkSeed, skSeed). Sharing a cache across keys would emit signatures
// under the wrong key material, so callers gate on this.
func (c *Cache) MatchesKey(p *params.Params, pkSeed, skSeed []byte) bool {
	return c.p == p && bytes.Equal(c.pkSeed, pkSeed) && bytes.Equal(c.skSeed, skSeed)
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		WOTSHits: c.wotsHits, WOTSFills: c.wotsFills,
		ResidentBytes: c.pinnedBytes + c.lruBytes,
		BudgetBytes:   c.budget,
		PinnedLayers:  c.p.D - c.pinFloor,
		Entries:       len(c.entries),
		WarmedEntries: c.warmed,
	}
}

// signWOTS emits the WOTS+ signature of msg under leaf leafIdx of subtree
// (layer, treeIdx) — the same address construction as xmss.Sign.
func (c *Cache) signWOTS(ctx *hashes.Ctx, sig, msg []byte, layer int, treeIdx uint64, leafIdx uint32) {
	var adrs address.Address
	adrs.SetLayer(uint32(layer))
	adrs.SetTree(treeIdx)
	adrs.SetType(address.WOTSHash)
	adrs.SetKeyPair(leafIdx)
	wots.Sign(ctx, sig, msg, &adrs)
}

// SignLayer produces one XMSS layer signature into sig (XMSSBytes) and the
// subtree root into root (N bytes), consulting the cache for the subtree at
// (layer, treeIdx). On a full hit (node table cached, WOTS+ slot tag equal
// to msg) the layer is three memcpys and performs no hashing and no
// allocation. On a node hit the auth path and root come from the table and
// only the WOTS+ signature is computed (and stored under msg's tag). On a
// miss the full table is built — byte-identical to xmss.Sign — and
// installed: pinned if layer is in the pinned plan, else into the LRU.
//
// root must not alias sig, but may alias msg, matching xmss.Sign.
func (c *Cache) SignLayer(ctx *hashes.Ctx, root, sig, msg []byte, layer int, treeIdx uint64, leafIdx uint32) {
	p := c.p
	var m [32]byte // N <= 32; root may alias msg, so capture msg first
	copy(m[:p.N], msg[:p.N])
	w := p.WOTSBytes
	k := key{layer: uint8(layer), tree: treeIdx}
	lo := int(leafIdx) * p.N

	c.mu.Lock()
	if e := c.entries[k]; e != nil {
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.hits++
		if e.filled[leafIdx] && bytes.Equal(e.tags[lo:lo+p.N], m[:p.N]) {
			c.wotsHits++
			copy(sig[:w], e.wots[int(leafIdx)*w:(int(leafIdx)+1)*w])
			xmss.AuthFromNodes(p, sig[w:p.XMSSBytes], e.nodes, leafIdx)
			xmss.RootFromNodes(p, root, e.nodes)
			c.mu.Unlock()
			return
		}
		// Node hit, WOTS miss: copy the cheap parts under the lock, compute
		// the WOTS+ signature outside it, then store the slot.
		xmss.AuthFromNodes(p, sig[w:p.XMSSBytes], e.nodes, leafIdx)
		var r [32]byte
		xmss.RootFromNodes(p, r[:p.N], e.nodes)
		c.mu.Unlock()

		c.signWOTS(ctx, sig[:w], m[:p.N], layer, treeIdx, leafIdx)

		c.mu.Lock()
		if c.entries[k] == e { // skip the store if the entry was evicted meanwhile
			copy(e.wots[int(leafIdx)*w:(int(leafIdx)+1)*w], sig[:w])
			copy(e.tags[lo:lo+p.N], m[:p.N])
			e.filled[leafIdx] = true
			c.wotsFills++
		}
		c.mu.Unlock()
		copy(root[:p.N], r[:p.N])
		return
	}
	c.misses++
	c.mu.Unlock()

	// Miss: build the full subtree (the miss path is the slow path by
	// definition; it may allocate) and install it.
	e := c.newEntry()
	var treeAdrs address.Address
	treeAdrs.SetLayer(uint32(layer))
	treeAdrs.SetTree(treeIdx)
	xmss.TreeNodes(ctx, e.nodes, &treeAdrs)
	c.signWOTS(ctx, sig[:w], m[:p.N], layer, treeIdx, leafIdx)
	xmss.AuthFromNodes(p, sig[w:p.XMSSBytes], e.nodes, leafIdx)
	copy(e.wots[int(leafIdx)*w:(int(leafIdx)+1)*w], sig[:w])
	copy(e.tags[lo:lo+p.N], m[:p.N])
	e.filled[leafIdx] = true
	var r [32]byte
	xmss.RootFromNodes(p, r[:p.N], e.nodes)

	c.mu.Lock()
	if _, exists := c.entries[k]; !exists {
		c.insertLocked(k, e, layer)
	}
	c.mu.Unlock()
	copy(root[:p.N], r[:p.N])
}

func (c *Cache) newEntry() *entry {
	p := c.p
	leaves := 1 << uint(p.TreeHeight)
	return &entry{
		nodes:  make([]byte, xmss.NodesLen(p)),
		wots:   make([]byte, leaves*p.WOTSBytes),
		tags:   make([]byte, leaves*p.N),
		filled: make([]bool, leaves),
	}
}

// insertLocked installs e under k. Pinned layers bypass the LRU; lower
// layers evict from the LRU tail until the entry fits its budget share.
func (c *Cache) insertLocked(k key, e *entry, layer int) {
	if layer >= c.pinFloor {
		c.entries[k] = e
		c.pinnedBytes += c.entrySize
		return
	}
	if c.entrySize > c.lruBudget {
		return // budget cannot retain even one lower-layer subtree
	}
	for c.lruBytes+c.entrySize > c.lruBudget {
		back := c.lru.Back()
		delete(c.entries, back.Value.(key))
		c.lru.Remove(back)
		c.lruBytes -= c.entrySize
		c.evictions++
	}
	e.elem = c.lru.PushFront(k)
	c.entries[k] = e
	c.lruBytes += c.entrySize
}

// Warm populates every pinned layer bottom-up with up to `threads` worker
// goroutines (<= 0 selects GOMAXPROCS), each on its own hash context. For
// layers above the lowest pinned one, the message each leaf signs is the
// root of its (just built) child subtree, so the WOTS+ slots are prefilled
// too: after Warm, those layers are full hits for every signature. The
// lowest pinned layer's slots fill on first use — the signed child roots
// are deterministic, so they also converge to full hits. Warm does not
// touch the hit/miss counters.
func (c *Cache) Warm(threads int) {
	p := c.p
	if c.pinFloor >= p.D {
		return
	}
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	w := p.WOTSBytes
	leaves := 1 << uint(p.TreeHeight)
	var childRoots []byte // previous layer's roots, indexed by tree
	for layer := c.pinFloor; layer < p.D; layer++ {
		trees := 1 << uint(p.H-(layer+1)*p.TreeHeight)
		roots := make([]byte, trees*p.N)
		workers := threads
		if workers > trees {
			workers = trees
		}
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				ctx := hashes.NewCtx(p, c.pkSeed, c.skSeed)
				for t := g; t < trees; t += workers {
					e := c.newEntry()
					var adrs address.Address
					adrs.SetLayer(uint32(layer))
					adrs.SetTree(uint64(t))
					xmss.TreeNodes(ctx, e.nodes, &adrs)
					xmss.RootFromNodes(p, roots[t*p.N:(t+1)*p.N], e.nodes)
					if childRoots != nil {
						for j := 0; j < leaves; j++ {
							child := t<<uint(p.TreeHeight) | j
							msg := childRoots[child*p.N : (child+1)*p.N]
							c.signWOTS(ctx, e.wots[j*w:(j+1)*w], msg, layer, uint64(t), uint32(j))
							copy(e.tags[j*p.N:(j+1)*p.N], msg)
							e.filled[j] = true
						}
					}
					k := key{layer: uint8(layer), tree: uint64(t)}
					c.mu.Lock()
					if _, exists := c.entries[k]; !exists {
						c.entries[k] = e
						c.pinnedBytes += c.entrySize
						c.warmed++
					}
					c.mu.Unlock()
				}
			}(g)
		}
		wg.Wait()
		childRoots = roots
	}
}
