package treecache

import (
	"bytes"
	"sync"
	"testing"

	"herosign/internal/spx/address"
	"herosign/internal/spx/hashes"
	"herosign/internal/spx/params"
	"herosign/internal/spx/xmss"
)

func testSeeds(p *params.Params) (pkSeed, skSeed []byte) {
	pkSeed = make([]byte, p.N)
	skSeed = make([]byte, p.N)
	for i := range pkSeed {
		pkSeed[i] = byte(i + 2)
		skSeed[i] = byte(i)
	}
	return
}

func testCtx(p *params.Params) *hashes.Ctx {
	pkSeed, skSeed := testSeeds(p)
	return hashes.NewCtx(p, pkSeed, skSeed)
}

// signLayerUncached is the oracle: what xmss.Sign produces for the layer.
func signLayerUncached(ctx *hashes.Ctx, root, sig, msg []byte, layer int, treeIdx uint64, leafIdx uint32) {
	var adrs address.Address
	adrs.SetLayer(uint32(layer))
	adrs.SetTree(treeIdx)
	xmss.Sign(ctx, root, sig, msg, &adrs, leafIdx)
}

// TestSignLayerByteIdentity: miss, node-hit and full-hit paths must all
// produce exactly xmss.Sign's bytes.
func TestSignLayerByteIdentity(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := testCtx(p)
	pkSeed, skSeed := testSeeds(p)
	c := New(p, pkSeed, skSeed, 1<<20)

	msg := make([]byte, p.N)
	for i := range msg {
		msg[i] = byte(i * 5)
	}
	msg2 := make([]byte, p.N)
	for i := range msg2 {
		msg2[i] = byte(i*7 + 1)
	}

	wantSig := make([]byte, p.XMSSBytes)
	wantRoot := make([]byte, p.N)
	gotSig := make([]byte, p.XMSSBytes)
	gotRoot := make([]byte, p.N)

	const layer, tree, leaf = 1, 99, 3
	signLayerUncached(ctx, wantRoot, wantSig, msg, layer, tree, leaf)

	// Pass 1: miss (tree never seen).
	c.SignLayer(ctx, gotRoot, gotSig, msg, layer, tree, leaf)
	if !bytes.Equal(gotSig, wantSig) || !bytes.Equal(gotRoot, wantRoot) {
		t.Fatal("miss path differs from xmss.Sign")
	}
	// Pass 2: full hit (same leaf, same message).
	c.SignLayer(ctx, gotRoot, gotSig, msg, layer, tree, leaf)
	if !bytes.Equal(gotSig, wantSig) || !bytes.Equal(gotRoot, wantRoot) {
		t.Fatal("full-hit path differs from xmss.Sign")
	}
	// Pass 3: node hit, WOTS miss (same leaf, different message).
	signLayerUncached(ctx, wantRoot, wantSig, msg2, layer, tree, leaf)
	c.SignLayer(ctx, gotRoot, gotSig, msg2, layer, tree, leaf)
	if !bytes.Equal(gotSig, wantSig) || !bytes.Equal(gotRoot, wantRoot) {
		t.Fatal("node-hit path differs from xmss.Sign")
	}
	// Pass 4: node hit on a different leaf.
	signLayerUncached(ctx, wantRoot, wantSig, msg, layer, tree, leaf+1)
	c.SignLayer(ctx, gotRoot, gotSig, msg, layer, tree, leaf+1)
	if !bytes.Equal(gotSig, wantSig) || !bytes.Equal(gotRoot, wantRoot) {
		t.Fatal("other-leaf path differs from xmss.Sign")
	}

	s := c.Stats()
	if s.Misses != 1 || s.Hits != 3 || s.WOTSHits != 1 {
		t.Fatalf("stats = %+v, want 1 miss / 3 hits / 1 wots hit", s)
	}
}

// TestSignLayerRootAliasesMsg: SignLayer must tolerate root aliasing msg —
// the exact shape hypertree's layer loop uses (one chained node buffer).
func TestSignLayerRootAliasesMsg(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := testCtx(p)
	pkSeed, skSeed := testSeeds(p)
	c := New(p, pkSeed, skSeed, 1<<20)

	var node [32]byte
	for i := 0; i < p.N; i++ {
		node[i] = byte(i * 3)
	}
	msgCopy := append([]byte(nil), node[:p.N]...)
	wantSig := make([]byte, p.XMSSBytes)
	wantRoot := make([]byte, p.N)
	signLayerUncached(ctx, wantRoot, wantSig, msgCopy, 0, 7, 2)

	for pass := 0; pass < 3; pass++ { // miss, then full hit, then again
		copy(node[:p.N], msgCopy)
		gotSig := make([]byte, p.XMSSBytes)
		c.SignLayer(ctx, node[:p.N], gotSig, node[:p.N], 0, 7, 2)
		if !bytes.Equal(gotSig, wantSig) || !bytes.Equal(node[:p.N], wantRoot) {
			t.Fatalf("pass %d: aliased root/msg output differs", pass)
		}
	}
}

// TestPinnedPlanAndEviction: the pinned plan covers the top layers the
// budget affords; lower layers evict LRU-fashion and stay within budget.
func TestPinnedPlanAndEviction(t *testing.T) {
	p := params.SPHINCSPlus128f
	pkSeed, skSeed := testSeeds(p)

	// Budget for ~12 entries: half pins layers D-1 and D-2 (1 + 8 = 9
	// trees), half leaves room for a small LRU.
	c := New(p, pkSeed, skSeed, 24*c0EntrySize(p))
	if got, want := p.D-c.pinFloor, 2; got != want {
		t.Fatalf("pinned layers = %d, want %d", got, want)
	}

	ctx := testCtx(p)
	sig := make([]byte, p.XMSSBytes)
	root := make([]byte, p.N)
	msg := make([]byte, p.N)
	// Touch more distinct layer-0 trees than the LRU can hold.
	for i := 0; i < 40; i++ {
		c.SignLayer(ctx, root, sig, msg, 0, uint64(i), 0)
	}
	s := c.Stats()
	if s.Evictions == 0 {
		t.Fatal("no evictions under LRU pressure")
	}
	if s.ResidentBytes > s.BudgetBytes {
		t.Fatalf("resident %d exceeds budget %d", s.ResidentBytes, s.BudgetBytes)
	}
	// Evicted trees still sign correctly (as fresh misses).
	wantSig := make([]byte, p.XMSSBytes)
	wantRoot := make([]byte, p.N)
	signLayerUncached(ctx, wantRoot, wantSig, msg, 0, 0, 0)
	c.SignLayer(ctx, root, sig, msg, 0, 0, 0)
	if !bytes.Equal(sig, wantSig) || !bytes.Equal(root, wantRoot) {
		t.Fatal("re-signing an evicted tree differs from xmss.Sign")
	}
}

// c0EntrySize exposes the uniform entry cost for budget math in tests.
func c0EntrySize(p *params.Params) int64 {
	leaves := int64(1) << uint(p.TreeHeight)
	return int64(xmss.NodesLen(p)) + leaves*int64(p.WOTSBytes) +
		leaves*int64(p.N) + leaves + entryOverhead
}

// TestTinyBudgetStillCorrect: a budget below one entry must degrade to
// compute-only (no retention, no panic), not to wrong output.
func TestTinyBudgetStillCorrect(t *testing.T) {
	p := params.SPHINCSPlus128f
	pkSeed, skSeed := testSeeds(p)
	c := New(p, pkSeed, skSeed, 64)
	ctx := testCtx(p)
	msg := make([]byte, p.N)
	sig := make([]byte, p.XMSSBytes)
	root := make([]byte, p.N)
	wantSig := make([]byte, p.XMSSBytes)
	wantRoot := make([]byte, p.N)
	signLayerUncached(ctx, wantRoot, wantSig, msg, 0, 3, 1)
	for i := 0; i < 2; i++ {
		c.SignLayer(ctx, root, sig, msg, 0, 3, 1)
		if !bytes.Equal(sig, wantSig) || !bytes.Equal(root, wantRoot) {
			t.Fatal("tiny-budget output differs from xmss.Sign")
		}
	}
	if s := c.Stats(); s.ResidentBytes != 0 || s.Entries != 0 {
		t.Fatalf("tiny budget retained state: %+v", s)
	}
}

// TestWarmPrefillsPinnedLayers: after Warm, signing any path fully hits
// every warmed layer above the pin floor (their WOTS slots were prefilled
// with the deterministic child roots).
func TestWarmPrefillsPinnedLayers(t *testing.T) {
	p := params.SPHINCSPlus128f
	pkSeed, skSeed := testSeeds(p)
	c := New(p, pkSeed, skSeed, 24*c0EntrySize(p))
	c.Warm(2)

	s := c.Stats()
	if s.WarmedEntries != 9 { // layers 21 (1 tree) + 20 (8 trees)
		t.Fatalf("warmed entries = %d, want 9", s.WarmedEntries)
	}
	if s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("Warm touched hit/miss counters: %+v", s)
	}

	// Sign the top two layers of an arbitrary path against the oracle; the
	// top layer (prefilled) must be a full hit with zero fills.
	ctx := testCtx(p)
	msg := make([]byte, p.N)
	for i := range msg {
		msg[i] = byte(i + 1)
	}
	sig := make([]byte, p.XMSSBytes)
	root := make([]byte, p.N)

	// Layer D-2, tree 5: node table warmed; WOTS slot fills on first use.
	wantSig := make([]byte, p.XMSSBytes)
	wantRoot := make([]byte, p.N)
	signLayerUncached(ctx, wantRoot, wantSig, msg, p.D-2, 5, 1)
	c.SignLayer(ctx, root, sig, msg, p.D-2, 5, 1)
	if !bytes.Equal(sig, wantSig) || !bytes.Equal(root, wantRoot) {
		t.Fatal("warmed-layer output differs from xmss.Sign")
	}
	// Layer D-1 signs layer D-2's root — prefilled, so a pure memcpy hit.
	signLayerUncached(ctx, wantRoot, wantSig, root, p.D-1, 0, 5)
	before := c.Stats()
	got2 := make([]byte, p.XMSSBytes)
	root2 := make([]byte, p.N)
	c.SignLayer(ctx, root2, got2, root, p.D-1, 0, 5)
	if !bytes.Equal(got2, wantSig) || !bytes.Equal(root2, wantRoot) {
		t.Fatal("top-layer output differs from xmss.Sign")
	}
	after := c.Stats()
	if after.WOTSHits != before.WOTSHits+1 || after.WOTSFills != before.WOTSFills {
		t.Fatalf("top layer was not a prefilled full hit: before %+v after %+v", before, after)
	}
}

// TestConcurrentSharedCache: many goroutines signing overlapping paths
// through one cache under LRU pressure must race-detect clean and produce
// oracle-identical bytes. Run with -race.
func TestConcurrentSharedCache(t *testing.T) {
	p := params.SPHINCSPlus128f
	pkSeed, skSeed := testSeeds(p)
	// LRU capacity (8) below the distinct-subtree count (10), so entries
	// evict and refill concurrently, exercising the evicted-meanwhile store.
	c := New(p, pkSeed, skSeed, 9*c0EntrySize(p))
	const workers = 8
	const iters = 30

	// Oracle signatures computed single-threaded first.
	type job struct {
		layer int
		tree  uint64
		leaf  uint32
	}
	jobs := make([]job, 0, 12)
	for i := 0; i < 12; i++ {
		jobs = append(jobs, job{layer: i % 2, tree: uint64(i % 5), leaf: uint32(i % 8)})
	}
	msg := make([]byte, p.N)
	oracleCtx := testCtx(p)
	wantSigs := make([][]byte, len(jobs))
	wantRoots := make([][]byte, len(jobs))
	for i, j := range jobs {
		wantSigs[i] = make([]byte, p.XMSSBytes)
		wantRoots[i] = make([]byte, p.N)
		signLayerUncached(oracleCtx, wantRoots[i], wantSigs[i], msg, j.layer, j.tree, j.leaf)
	}

	var wg sync.WaitGroup
	errc := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := testCtx(p)
			sig := make([]byte, p.XMSSBytes)
			root := make([]byte, p.N)
			for it := 0; it < iters; it++ {
				i := (w + it) % len(jobs)
				j := jobs[i]
				c.SignLayer(ctx, root, sig, msg, j.layer, j.tree, j.leaf)
				if !bytes.Equal(sig, wantSigs[i]) || !bytes.Equal(root, wantRoots[i]) {
					select {
					case errc <- "concurrent SignLayer output differs from oracle":
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}
}

// TestMatchesKey rejects foreign key material.
func TestMatchesKey(t *testing.T) {
	p := params.SPHINCSPlus128f
	pkSeed, skSeed := testSeeds(p)
	c := New(p, pkSeed, skSeed, 1<<20)
	if !c.MatchesKey(p, pkSeed, skSeed) {
		t.Fatal("cache rejects its own key")
	}
	other := append([]byte(nil), pkSeed...)
	other[0] ^= 1
	if c.MatchesKey(p, other, skSeed) {
		t.Fatal("cache accepts a different pk seed")
	}
	if c.MatchesKey(params.SPHINCSPlus192f, pkSeed, skSeed) {
		t.Fatal("cache accepts a different parameter set")
	}
}
