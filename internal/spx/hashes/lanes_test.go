package hashes

import (
	"bytes"
	"testing"

	"herosign/internal/sha2"
	"herosign/internal/spx/address"
	"herosign/internal/spx/params"
)

// laneAdrs builds a distinct address for lane i.
func laneAdrs(i int) address.Address {
	var a address.Address
	a.SetLayer(uint32(i % 3))
	a.SetTree(uint64(1000 + i))
	a.SetType(address.FORSTree)
	a.SetTreeHeight(uint32(i % 5))
	a.SetTreeIndex(uint32(77 * i))
	return a
}

// TestLanesMatchScalar checks FLanes/HLanes/PRFLanes against the scalar
// F/H/PRF calls for every lane count and every parameter size, on both
// backends.
func TestLanesMatchScalar(t *testing.T) {
	for _, accel := range []bool{true, false} {
		prev := sha2.SetAccelerated(accel)
		for _, p := range params.FastSets() {
			ctx := testCtx(t, p)
			n := p.N
			for count := 1; count <= sha2.Lanes; count++ {
				var adrs [sha2.Lanes]address.Address
				var outs, ins, lefts, rights [sha2.Lanes][]byte
				inBuf := make([]byte, sha2.Lanes*n)
				rBuf := make([]byte, sha2.Lanes*n)
				outBuf := make([]byte, sha2.Lanes*n)
				for i := 0; i < count; i++ {
					adrs[i] = laneAdrs(i)
					ins[i] = inBuf[i*n : (i+1)*n]
					lefts[i] = ins[i]
					rights[i] = rBuf[i*n : (i+1)*n]
					outs[i] = outBuf[i*n : (i+1)*n]
					for j := 0; j < n; j++ {
						ins[i][j] = byte(i*31 + j)
						rights[i][j] = byte(i*17 + j + 3)
					}
				}

				want := make([]byte, n)
				ctx.FLanes(count, &outs, &ins, &adrs)
				for i := 0; i < count; i++ {
					a := adrs[i]
					ctx.F(want, ins[i], &a)
					if !bytes.Equal(outs[i], want) {
						t.Fatalf("accel=%v %s count=%d lane=%d: FLanes mismatch", accel, p.Name, count, i)
					}
				}

				ctx.HLanes(count, &outs, &lefts, &rights, &adrs)
				for i := 0; i < count; i++ {
					a := adrs[i]
					ctx.H(want, lefts[i], rights[i], &a)
					if !bytes.Equal(outs[i], want) {
						t.Fatalf("accel=%v %s count=%d lane=%d: HLanes mismatch", accel, p.Name, count, i)
					}
				}

				ctx.PRFLanes(count, &outs, &adrs)
				for i := 0; i < count; i++ {
					a := adrs[i]
					ctx.PRF(want, &a)
					if !bytes.Equal(outs[i], want) {
						t.Fatalf("accel=%v %s count=%d lane=%d: PRFLanes mismatch", accel, p.Name, count, i)
					}
				}
			}
		}
		sha2.SetAccelerated(prev)
	}
}

// TestBackendsAgree: scalar thash outputs must be identical on the
// accelerated and portable backends for every shape (F, H, T_l, PRF).
func TestBackendsAgree(t *testing.T) {
	for _, p := range params.AllSets() {
		ctx := testCtx(t, p)
		a := laneAdrs(4)
		long := make([]byte, p.WOTSLen*p.N) // the T_len shape
		for i := range long {
			long[i] = byte(i * 7)
		}
		run := func(accel bool) ([]byte, []byte, []byte) {
			prev := sha2.SetAccelerated(accel)
			defer sha2.SetAccelerated(prev)
			f := make([]byte, p.N)
			tl := make([]byte, p.N)
			prf := make([]byte, p.N)
			ctx.F(f, long[:p.N], &a)
			ctx.Thash(tl, long, &a)
			ctx.PRF(prf, &a)
			return f, tl, prf
		}
		af, atl, aprf := run(true)
		pf, ptl, pprf := run(false)
		if !bytes.Equal(af, pf) || !bytes.Equal(atl, ptl) || !bytes.Equal(aprf, pprf) {
			t.Fatalf("%s: backends disagree", p.Name)
		}
	}
}

// TestLaneCountersMatchScalar: lane batching must charge exactly the
// counters the equivalent scalar calls charge — the invariant that keeps
// the simulator's modeled metrics independent of host batching.
func TestLaneCountersMatchScalar(t *testing.T) {
	p := params.SPHINCSPlus128f
	n := p.N
	base := testCtx(t, p)

	var cLane, cScalar Counters
	lane := base.Clone(&cLane)
	scalar := base.Clone(&cScalar)

	const count = 7
	var adrs [sha2.Lanes]address.Address
	var outs, ins [sha2.Lanes][]byte
	buf := make([]byte, sha2.Lanes*n)
	out := make([]byte, sha2.Lanes*n)
	for i := 0; i < count; i++ {
		adrs[i] = laneAdrs(i)
		ins[i] = buf[i*n : (i+1)*n]
		outs[i] = out[i*n : (i+1)*n]
	}
	lane.FLanes(count, &outs, &ins, &adrs)
	lane.PRFLanes(count, &outs, &adrs)

	tmp := make([]byte, n)
	for i := 0; i < count; i++ {
		a := adrs[i]
		scalar.F(tmp, ins[i], &a)
	}
	for i := 0; i < count; i++ {
		a := adrs[i]
		scalar.PRF(tmp, &a)
	}
	if cLane != cScalar {
		t.Fatalf("lane counters %+v != scalar counters %+v", cLane, cScalar)
	}
}

// TestThashZeroAlloc: the satellite regression — zero allocations per
// thash (F, H, T_l, PRF) on both backends after warm-up.
func TestThashZeroAlloc(t *testing.T) {
	for _, accel := range []bool{true, false} {
		prev := sha2.SetAccelerated(accel)
		p := params.SPHINCSPlus128f
		ctx := testCtx(t, p)
		a := laneAdrs(2)
		in := make([]byte, p.N)
		in2 := make([]byte, p.N)
		long := make([]byte, p.WOTSLen*p.N)
		out := make([]byte, p.N)
		check := func(name string, f func()) {
			if allocs := testing.AllocsPerRun(100, f); allocs != 0 {
				t.Errorf("accel=%v %s: %v allocs per call", accel, name, allocs)
			}
		}
		check("F", func() { ctx.F(out, in, &a) })
		check("H", func() { ctx.H(out, in, in2, &a) })
		check("T_len", func() { ctx.Thash(out, long, &a) })
		check("PRF", func() { ctx.PRF(out, &a) })
		sha2.SetAccelerated(prev)
	}
}

// TestMessageToIndicesIntoMatches: the Into variant equals the allocating
// variant and performs no allocation.
func TestMessageToIndicesIntoMatches(t *testing.T) {
	for _, p := range params.FastSets() {
		md := make([]byte, p.MDBytes)
		for i := range md {
			md[i] = byte(i*13 + 5)
		}
		want := MessageToIndices(p, md)
		dst := make([]uint32, p.K)
		got := MessageToIndicesInto(p, dst, md)
		if len(got) != len(want) {
			t.Fatalf("%s: length mismatch", p.Name)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: index %d mismatch", p.Name, i)
			}
		}
		if allocs := testing.AllocsPerRun(50, func() {
			MessageToIndicesInto(p, dst, md)
		}); allocs != 0 {
			t.Errorf("%s: MessageToIndicesInto allocates (%v)", p.Name, allocs)
		}
	}
}

// --- wall-clock microbenchmarks ------------------------------------------

func benchLaneSetup(b *testing.B, p *params.Params) (*Ctx, *[sha2.Lanes][]byte, *[sha2.Lanes][]byte, *[sha2.Lanes]address.Address) {
	b.Helper()
	pkSeed := make([]byte, p.N)
	skSeed := make([]byte, p.N)
	ctx := NewCtx(p, pkSeed, skSeed)
	var outs, ins [sha2.Lanes][]byte
	var adrs [sha2.Lanes]address.Address
	buf := make([]byte, sha2.Lanes*p.N)
	out := make([]byte, sha2.Lanes*p.N)
	for i := 0; i < sha2.Lanes; i++ {
		adrs[i] = laneAdrs(i)
		ins[i] = buf[i*p.N : (i+1)*p.N]
		outs[i] = out[i*p.N : (i+1)*p.N]
	}
	return ctx, &outs, &ins, &adrs
}

// BenchmarkThashF: one scalar F call (per-hash cost of the active backend).
func BenchmarkThashF(b *testing.B) {
	p := params.SPHINCSPlus128f
	ctx, outs, ins, adrs := benchLaneSetup(b, p)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx.F(outs[0], ins[0], &adrs[0])
	}
}

// BenchmarkThashFPortable forces the portable scalar fast path.
func BenchmarkThashFPortable(b *testing.B) {
	prev := sha2.SetAccelerated(false)
	defer sha2.SetAccelerated(prev)
	BenchmarkThashF(b)
}

// BenchmarkFLanes8 measures 8 F evaluations per multi-lane pass; compare
// ns/op divided by 8 against BenchmarkThashF.
func BenchmarkFLanes8(b *testing.B) {
	p := params.SPHINCSPlus128f
	ctx, outs, ins, adrs := benchLaneSetup(b, p)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx.FLanes(sha2.Lanes, outs, ins, adrs)
	}
}

// BenchmarkFLanes8Portable: the portable interleaved kernel under the same
// batched shape.
func BenchmarkFLanes8Portable(b *testing.B) {
	prev := sha2.SetAccelerated(false)
	defer sha2.SetAccelerated(prev)
	BenchmarkFLanes8(b)
}
