// Package hashes implements the SPHINCS+ SHA-2 tweakable hash functions
// (F, H, T_l), the secret-key PRF, the message randomizer PRF_msg and the
// message digest H_msg, in the "simple" construction:
//
//	thash(ADRS, M)  = Trunc_n( SHA-256( BlockPad(PK.seed) || ADRS_c || M ) )
//	PRF(ADRS)       = Trunc_n( SHA-256( BlockPad(PK.seed) || ADRS_c || SK.seed ) )
//	PRF_msg(R, M)   = Trunc_n( HMAC-SHA-X( SK.prf, OptRand || M ) )
//	H_msg(R, M)     = MGF1-SHA-X( R || PK.seed || SHA-X(R || PK.seed || PK.root || M), m )
//
// where BlockPad pads PK.seed with zeros to one full compression block, so
// its midstate is computed once per context and reused for every call —
// the same precomputation CUDA implementations keep in constant memory.
//
// The hot path is allocation-free and batched: every thash call runs on a
// reusable sha2.Hasher256 embedded in the Ctx (no per-call hasher or
// buffer), fixed-shape single-block inputs skip the generic Write/Sum
// padding machinery entirely, and the FLanes/PRFLanes/HLanes/ThashLanes
// entry points advance up to sha2.Lanes independent hashes per multi-lane
// pass — the host-side mirror of HERO-Sign's warp-parallel chain stepping.
//
// A Ctx carries an optional *Counters so that callers (the GPU simulator's
// kernels) can attribute exact compression-function counts to every
// invocation without re-implementing any cryptography. Counters are charged
// analytically (CompressionBlocks256), so modeled metrics are identical
// whichever backend or batching shape executed the hash.
package hashes

import (
	"encoding/binary"

	"herosign/internal/sha2"
	"herosign/internal/spx/address"
	"herosign/internal/spx/params"
)

// Counters accumulates hash-level work. All fields count events since the
// counter was attached (or reset). A nil *Counters disables counting.
type Counters struct {
	Compress256 int64 // SHA-256 compression-function invocations
	Compress512 int64 // SHA-512 compression-function invocations
	Thash       int64 // F/H/T_l calls
	PRF         int64 // secret-key PRF calls
	Bytes       int64 // message bytes absorbed (excluding the padded seed block)
}

// Reset zeroes the counters.
func (c *Counters) Reset() { *c = Counters{} }

// Add accumulates other into c.
func (c *Counters) Add(other *Counters) {
	c.Compress256 += other.Compress256
	c.Compress512 += other.Compress512
	c.Thash += other.Thash
	c.PRF += other.PRF
	c.Bytes += other.Bytes
}

// singleBlockMax is the largest post-seed message (address + input) whose
// padded thash still fits one compression block.
const singleBlockMax = sha2.BlockSize256 - 9

// Ctx binds a parameter set to key material and caches the seeded SHA-256
// midstate. Ctx is NOT safe for concurrent use: it embeds the reusable
// hash engine, the multi-lane staging buffers and the scratch arenas the
// wots/fors/xmss packages borrow; create one Ctx per worker (Clone).
type Ctx struct {
	P      *params.Params
	PKSeed []byte
	SKSeed []byte // may be nil for verify-only contexts

	C *Counters // optional; may be nil

	seeded sha2.State256 // midstate after absorbing BlockPad(PK.seed)
	eng    sha2.Hasher256
	comp   [address.CompressedSize]byte // staged compressed address (keeps
	// the hot path free of allocations: a stack array passed to the
	// engine's interface-backed Write would escape per call)

	// Multi-lane staging: one or two blocks per lane plus the lane states.
	laneStates [sha2.Lanes]sha2.State256
	laneBlk    [sha2.Lanes][sha2.BlockSize256]byte
	laneBlk2   [sha2.Lanes][sha2.BlockSize256]byte
	laneShape  [sha2.Lanes]int32           // staged single-block msgLen per lane; -1 = stale padding
	laneAdrs   [sha2.Lanes]address.Address // HReduceLevel staging (a stack
	// array would escape through the opaque setAdrs callback)

	// Scratch arenas loaned to the spx component packages so their hot
	// paths perform no per-call allocation. Lazily sized from P; reset by
	// Clone so clones never share memory.
	wotsPK    []byte
	lengths   []uint32
	indices   []uint32
	forsLevel []byte
	forsRoots []byte
	xmssLevel []byte
	xmssNode  []byte

	// Batch arenas for the cross-signature verification path: the same
	// shapes as above, but sized for up to sha2.Lanes signatures at once.
	wotsPKBatch    []byte
	lengthsBatch   []uint32
	indicesBatch   []uint32
	forsRootsBatch []byte
}

// NewCtx builds a hash context. skSeed may be nil when only public
// operations (verification) are needed.
func NewCtx(p *params.Params, pkSeed, skSeed []byte) *Ctx {
	if len(pkSeed) != p.N {
		panic("hashes: pk seed length mismatch")
	}
	if skSeed != nil && len(skSeed) != p.N {
		panic("hashes: sk seed length mismatch")
	}
	c := &Ctx{
		P:      p,
		PKSeed: append([]byte(nil), pkSeed...),
	}
	if skSeed != nil {
		c.SKSeed = append([]byte(nil), skSeed...)
	}
	var block [sha2.BlockSize256]byte
	copy(block[:], pkSeed)
	h := sha2.New256()
	h.Write(block[:])
	c.seeded = h.Midstate()
	return c
}

// Clone returns a copy of the context with its own engine and scratch space
// and the given counter attached (counter may be nil). Used to give each
// simulated GPU thread an independent counting context over shared key
// material.
func (c *Ctx) Clone(counter *Counters) *Ctx {
	dup := *c
	dup.C = counter
	dup.eng = sha2.Hasher256{}
	dup.wotsPK = nil
	dup.lengths = nil
	dup.indices = nil
	dup.forsLevel = nil
	dup.forsRoots = nil
	dup.xmssLevel = nil
	dup.xmssNode = nil
	dup.wotsPKBatch = nil
	dup.lengthsBatch = nil
	dup.indicesBatch = nil
	dup.forsRootsBatch = nil
	return &dup
}

// --- scratch arenas -------------------------------------------------------

// WOTSPKBuf returns the WOTSLen*N-byte chain-end buffer used by
// wots.PKGen/PKFromSig. Valid until the next call that borrows it.
func (c *Ctx) WOTSPKBuf() []byte {
	if cap(c.wotsPK) < c.P.WOTSBytes {
		c.wotsPK = make([]byte, c.P.WOTSBytes)
	}
	return c.wotsPK[:c.P.WOTSBytes]
}

// WOTSLengthsBuf returns the WOTSLen-entry chain-start buffer used by the
// wots package.
func (c *Ctx) WOTSLengthsBuf() []uint32 {
	if cap(c.lengths) < c.P.WOTSLen {
		c.lengths = make([]uint32, c.P.WOTSLen)
	}
	return c.lengths[:c.P.WOTSLen]
}

// IndicesBuf returns the K-entry FORS index buffer used by the fors package.
func (c *Ctx) IndicesBuf() []uint32 {
	if cap(c.indices) < c.P.K {
		c.indices = make([]uint32, c.P.K)
	}
	return c.indices[:c.P.K]
}

// ForsLevelBuf returns the T*N-byte FORS leaf-level buffer.
func (c *Ctx) ForsLevelBuf() []byte {
	if cap(c.forsLevel) < c.P.T*c.P.N {
		c.forsLevel = make([]byte, c.P.T*c.P.N)
	}
	return c.forsLevel[:c.P.T*c.P.N]
}

// ForsRootsBuf returns the K*N-byte FORS root buffer.
func (c *Ctx) ForsRootsBuf() []byte {
	if cap(c.forsRoots) < c.P.K*c.P.N {
		c.forsRoots = make([]byte, c.P.K*c.P.N)
	}
	return c.forsRoots[:c.P.K*c.P.N]
}

// WOTSPKBatchBuf returns a b*WOTSBytes chain-end buffer for b signatures
// verified in one cross-signature batch (b <= sha2.Lanes). Like the scalar
// arenas it is valid until the next call that borrows it; capacity is
// always sized for sha2.Lanes so a varying batch size never reallocates.
func (c *Ctx) WOTSPKBatchBuf(b int) []byte {
	want := sha2.Lanes * c.P.WOTSBytes
	if cap(c.wotsPKBatch) < want {
		c.wotsPKBatch = make([]byte, want)
	}
	return c.wotsPKBatch[:b*c.P.WOTSBytes]
}

// WOTSLengthsBatchBuf returns a b*WOTSLen chain-start buffer for b
// signatures (b <= sha2.Lanes).
func (c *Ctx) WOTSLengthsBatchBuf(b int) []uint32 {
	want := sha2.Lanes * c.P.WOTSLen
	if cap(c.lengthsBatch) < want {
		c.lengthsBatch = make([]uint32, want)
	}
	return c.lengthsBatch[:b*c.P.WOTSLen]
}

// IndicesBatchBuf returns a b*K FORS index buffer for b signatures
// (b <= sha2.Lanes).
func (c *Ctx) IndicesBatchBuf(b int) []uint32 {
	want := sha2.Lanes * c.P.K
	if cap(c.indicesBatch) < want {
		c.indicesBatch = make([]uint32, want)
	}
	return c.indicesBatch[:b*c.P.K]
}

// ForsRootsBatchBuf returns a b*K*N FORS root buffer for b signatures
// (b <= sha2.Lanes).
func (c *Ctx) ForsRootsBatchBuf(b int) []byte {
	want := sha2.Lanes * c.P.K * c.P.N
	if cap(c.forsRootsBatch) < want {
		c.forsRootsBatch = make([]byte, want)
	}
	return c.forsRootsBatch[:b*c.P.K*c.P.N]
}

// XMSSNodeBuf returns an N-byte node scratch for the XMSS auth-path climb.
// A stack node would escape per call: the scalar H routes its inputs
// through the engine's interface-backed Write.
func (c *Ctx) XMSSNodeBuf() []byte {
	if cap(c.xmssNode) < c.P.N {
		c.xmssNode = make([]byte, c.P.N)
	}
	return c.xmssNode[:c.P.N]
}

// XMSSLevelBuf returns the 2^TreeHeight*N-byte XMSS leaf-level buffer.
func (c *Ctx) XMSSLevelBuf() []byte {
	want := (1 << uint(c.P.TreeHeight)) * c.P.N
	if cap(c.xmssLevel) < want {
		c.xmssLevel = make([]byte, want)
	}
	return c.xmssLevel[:want]
}

// --- counting -------------------------------------------------------------

// countThash charges one thash over msgLen message bytes (past the seed
// block) to the attached counter.
func (c *Ctx) countThash(msgLen int) {
	if c.C == nil {
		return
	}
	c.C.Thash++
	c.C.Bytes += int64(msgLen)
	// Total absorbed: one seed block (cached midstate — on GPU this is a
	// constant-memory preimage, but the compression for it still ran once;
	// we charge only the non-cached part, matching what the kernel executes)
	// plus the address and message.
	c.C.Compress256 += int64(sha2.CompressionBlocks256(sha2.BlockSize256+msgLen) - 1)
}

// countPRF charges one PRF call.
func (c *Ctx) countPRF() {
	if c.C == nil {
		return
	}
	msgLen := address.CompressedSize + c.P.N
	c.C.PRF++
	c.C.Bytes += int64(msgLen)
	c.C.Compress256 += int64(sha2.CompressionBlocks256(sha2.BlockSize256+msgLen) - 1)
}

// --- scalar thash ---------------------------------------------------------

// thash2 is the shared seeded-hash core over up to two input segments
// (in2 may be nil). It writes the truncated digest to out[:N].
func (c *Ctx) thash2(out, in1, in2 []byte, adrs *address.Address) {
	c.comp = adrs.Compressed()
	comp := &c.comp
	n := c.P.N
	msgLen := address.CompressedSize + len(in1) + len(in2)
	if msgLen <= singleBlockMax && !sha2.Accelerated() {
		// Fixed-shape fast path: build the padded block directly and run a
		// single compression from the seeded midstate, skipping the generic
		// Write/Sum padding machinery.
		var block [sha2.BlockSize256]byte
		off := copy(block[:], comp[:])
		off += copy(block[off:], in1)
		off += copy(block[off:], in2)
		block[off] = 0x80
		binary.BigEndian.PutUint64(block[sha2.BlockSize256-8:],
			uint64(sha2.BlockSize256+msgLen)*8)
		st := c.seeded
		sha2.Compress256(&st, &block)
		sha2.PutDigest256(out[:n], &st)
		return
	}
	c.eng.Restart(&c.seeded, sha2.BlockSize256)
	c.eng.Write(comp[:])
	c.eng.Write(in1)
	if in2 != nil {
		c.eng.Write(in2)
	}
	c.eng.SumTrunc(out[:n])
}

// Thash computes the tweakable hash of in (a multiple of N bytes) under
// adrs, writing N bytes to out. It implements F (one block), H (two blocks)
// and T_l (l blocks) uniformly.
func (c *Ctx) Thash(out []byte, in []byte, adrs *address.Address) {
	c.thash2(out, in, nil, adrs)
	c.countThash(address.CompressedSize + len(in))
}

// F is the single-input tweakable hash used in WOTS+ chains and FORS leaves.
func (c *Ctx) F(out, in []byte, adrs *address.Address) {
	c.Thash(out, in[:c.P.N], adrs)
}

// H is the two-input tweakable hash used for Merkle-tree node compression.
// left and right are N-byte nodes.
func (c *Ctx) H(out, left, right []byte, adrs *address.Address) {
	n := c.P.N
	c.thash2(out, left[:n], right[:n], adrs)
	c.countThash(address.CompressedSize + 2*n)
}

// PRF derives an N-byte secret value for adrs from SK.seed.
func (c *Ctx) PRF(out []byte, adrs *address.Address) {
	if c.SKSeed == nil {
		panic("hashes: PRF requires a secret context")
	}
	c.thash2(out, c.SKSeed, nil, adrs)
	c.countPRF()
}

// --- multi-lane thash -----------------------------------------------------

// thashLanes runs count (1 <= count <= sha2.Lanes) independent seeded
// hashes of identical shape: lane i hashes ADRS_c(adrs[i]) || in1[i]
// (|| in2[i] when in2 != nil) and writes N bytes to outs[i]. All lanes must
// have equal input lengths. Lane outputs may alias their own lane's inputs
// but must not alias another lane's inputs.
func (c *Ctx) thashLanes(count int, outs, in1, in2 *[sha2.Lanes][]byte, adrs *[sha2.Lanes]address.Address) {
	n := c.P.N
	msgLen := address.CompressedSize + len(in1[0])
	if in2 != nil {
		msgLen += len(in2[0])
	}
	// The accelerated backend streams each lane through hardware SHA-256;
	// batching into lane blocks would only add copies. Shapes beyond two
	// blocks (T_l) also take the scalar engine per lane.
	if sha2.Accelerated() || msgLen > singleBlockMax+sha2.BlockSize256 || count == 1 {
		for i := 0; i < count; i++ {
			if in2 != nil {
				c.thash2(outs[i], in1[i], in2[i], &adrs[i])
			} else {
				c.thash2(outs[i], in1[i], nil, &adrs[i])
			}
		}
		return
	}

	// Portable lane path: stage the padded message of every lane and run
	// the interleaved multi-lane kernel once per block position.
	blocks := 1
	if msgLen > singleBlockMax {
		blocks = 2
	}
	bitLen := uint64(sha2.BlockSize256+msgLen) * 8
	// On the native backend the padding suffix (0x80, zero run, bit length)
	// of a single-block lane survives between passes of the same shape, so
	// it is rewritten only when the staged length changes. The portable
	// wide kernels pad ragged groups by copying lane 0's block over idle
	// lanes, which silently restyles those blocks — there the cache is
	// unsound, so every portable pass invalidates it.
	skipPad := sha2.Native()
	for i := 0; i < count; i++ {
		first := &c.laneBlk[i]
		if blocks == 1 {
			adrs[i].CompressedInto(first[:])
			off := address.CompressedSize + copy(first[address.CompressedSize:], in1[i])
			if in2 != nil {
				off += copy(first[off:], in2[i])
			}
			if !skipPad || c.laneShape[i] != int32(msgLen) {
				first[off] = 0x80
				for j := off + 1; j < sha2.BlockSize256-8; j++ {
					first[j] = 0
				}
				binary.BigEndian.PutUint64(first[sha2.BlockSize256-8:], bitLen)
				c.laneShape[i] = int32(msgLen)
			}
		} else {
			second := &c.laneBlk2[i]
			var msg [2 * sha2.BlockSize256]byte
			adrs[i].CompressedInto(msg[:])
			moff := address.CompressedSize + copy(msg[address.CompressedSize:], in1[i])
			if in2 != nil {
				moff += copy(msg[moff:], in2[i])
			}
			msg[moff] = 0x80
			binary.BigEndian.PutUint64(msg[2*sha2.BlockSize256-8:], bitLen)
			copy(first[:], msg[:sha2.BlockSize256])
			copy(second[:], msg[sha2.BlockSize256:])
			c.laneShape[i] = -1
		}
		c.laneStates[i] = c.seeded
	}
	if !skipPad {
		for i := range c.laneShape {
			c.laneShape[i] = -1
		}
	}
	sha2.Compress256Lanes(count, &c.laneStates, &c.laneBlk)
	if blocks == 2 {
		sha2.Compress256Lanes(count, &c.laneStates, &c.laneBlk2)
	}
	for i := 0; i < count; i++ {
		sha2.PutDigest256(outs[i][:n], &c.laneStates[i])
	}
}

// FLanes computes outs[i] = F(ins[i], adrs[i]) for i < count in one
// multi-lane pass. count must be in [1, sha2.Lanes].
func (c *Ctx) FLanes(count int, outs, ins *[sha2.Lanes][]byte, adrs *[sha2.Lanes]address.Address) {
	n := c.P.N
	var trimmed [sha2.Lanes][]byte
	for i := 0; i < count; i++ {
		trimmed[i] = ins[i][:n]
	}
	c.thashLanes(count, outs, &trimmed, nil, adrs)
	for i := 0; i < count; i++ {
		c.countThash(address.CompressedSize + n)
	}
}

// HLanes computes outs[i] = H(lefts[i], rights[i], adrs[i]) for i < count.
func (c *Ctx) HLanes(count int, outs, lefts, rights *[sha2.Lanes][]byte, adrs *[sha2.Lanes]address.Address) {
	n := c.P.N
	var l, r [sha2.Lanes][]byte
	for i := 0; i < count; i++ {
		l[i] = lefts[i][:n]
		r[i] = rights[i][:n]
	}
	c.thashLanes(count, outs, &l, &r, adrs)
	for i := 0; i < count; i++ {
		c.countThash(address.CompressedSize + 2*n)
	}
}

// HReduceLevel folds one in-place Merkle level of width nodes stored back
// to back in level — level[i] = H(level[2i], level[2i+1]) for i < width/2 —
// lane-batching the H calls. setAdrs stages the address of the parent node
// with level-local index i. Within a pass lane j writes node j while lanes
// k >= j read nodes >= 2j, and inputs are staged before outputs are
// written, so the in-place fold is safe on both backends.
func (c *Ctx) HReduceLevel(level []byte, width int, setAdrs func(a *address.Address, i int)) {
	n := c.P.N
	var outs, lefts, rights [sha2.Lanes][]byte
	parents := width / 2
	for base := 0; base < parents; base += sha2.Lanes {
		count := parents - base
		if count > sha2.Lanes {
			count = sha2.Lanes
		}
		for j := 0; j < count; j++ {
			i := base + j
			outs[j] = level[i*n : (i+1)*n]
			lefts[j] = level[2*i*n : (2*i+1)*n]
			rights[j] = level[(2*i+1)*n : (2*i+2)*n]
			setAdrs(&c.laneAdrs[j], i)
		}
		c.HLanes(count, &outs, &lefts, &rights, &c.laneAdrs)
	}
}

// PRFLanes computes outs[i] = PRF(adrs[i]) for i < count.
func (c *Ctx) PRFLanes(count int, outs *[sha2.Lanes][]byte, adrs *[sha2.Lanes]address.Address) {
	if c.SKSeed == nil {
		panic("hashes: PRF requires a secret context")
	}
	var ins [sha2.Lanes][]byte
	for i := 0; i < count; i++ {
		ins[i] = c.SKSeed
	}
	c.thashLanes(count, outs, &ins, nil, adrs)
	for i := 0; i < count; i++ {
		c.countPRF()
	}
}

// --- message-level functions ---------------------------------------------

// PRFMsg computes the message randomizer R from SK.prf, optRand and the
// message.
func PRFMsg(p *params.Params, skPRF, optRand, msg []byte) []byte {
	buf := make([]byte, 0, len(optRand)+len(msg))
	buf = append(buf, optRand...)
	buf = append(buf, msg...)
	if p.UsesSHA512Msg() {
		mac := sha2.HMAC512(skPRF, buf)
		return append([]byte(nil), mac[:p.N]...)
	}
	mac := sha2.HMAC256(skPRF, buf)
	return append([]byte(nil), mac[:p.N]...)
}

// HMsg computes the (MDBytes + TreeIdxBytes + LeafIdxBytes)-byte message
// digest from the randomizer, public key and message.
func HMsg(p *params.Params, r, pkSeed, pkRoot, msg []byte) []byte {
	return HMsgInto(p, make([]byte, p.DigestBytes), r, pkSeed, pkRoot, msg)
}

// HMsgInto is HMsg writing into dst (length >= DigestBytes) without
// allocating: the inner hash streams r || pkSeed || pkRoot || msg through a
// stack hasher and the MGF1 seed (r || pkSeed || inner digest, at most
// 2*32+64 bytes) is staged in a stack buffer. Returns dst[:DigestBytes].
func HMsgInto(p *params.Params, dst []byte, r, pkSeed, pkRoot, msg []byte) []byte {
	var seed [2*32 + sha2.Size512]byte // N <= 32; SHA-512 has the wider digest
	off := copy(seed[:], r[:p.N])
	off += copy(seed[off:], pkSeed)

	if p.UsesSHA512Msg() {
		var d sha2.Hash512
		d.Reset()
		d.Write(r[:p.N])
		d.Write(pkSeed)
		d.Write(pkRoot)
		d.Write(msg)
		off += len(d.Sum(seed[off:off])) // appends in place: capacity is seed's tail
		sha2.MGF1_512Into(dst[:p.DigestBytes], seed[:off])
		return dst[:p.DigestBytes]
	}
	var d sha2.Hash256
	d.Reset()
	d.Write(r[:p.N])
	d.Write(pkSeed)
	d.Write(pkRoot)
	d.Write(msg)
	off += len(d.Sum(seed[off:off])) // appends in place: capacity is seed's tail
	sha2.MGF1_256Into(dst[:p.DigestBytes], seed[:off])
	return dst[:p.DigestBytes]
}

// SplitDigest splits an H_msg digest into the FORS message md, the hypertree
// index and the leaf index, per the specification's bit layout. md aliases
// digest; no allocation occurs.
func SplitDigest(p *params.Params, digest []byte) (md []byte, treeIdx uint64, leafIdx uint32) {
	md = digest[:p.MDBytes]
	treeBytes := digest[p.MDBytes : p.MDBytes+p.TreeIdxBytes]
	leafBytes := digest[p.MDBytes+p.TreeIdxBytes : p.DigestBytes]

	for _, b := range treeBytes {
		treeIdx = treeIdx<<8 | uint64(b)
	}
	treeBits := uint(p.H - p.TreeHeight)
	if treeBits < 64 {
		treeIdx &= (1 << treeBits) - 1
	}

	var leaf uint64
	for _, b := range leafBytes {
		leaf = leaf<<8 | uint64(b)
	}
	leaf &= (1 << uint(p.TreeHeight)) - 1
	return md, treeIdx, uint32(leaf)
}

// MessageToIndicesInto extracts the K FORS leaf indices (LogT bits each,
// LSB-first within the bitstream, matching the reference implementation)
// from the md portion of the digest into dst (length >= K) and returns
// dst[:K]. It performs no allocation.
func MessageToIndicesInto(p *params.Params, dst []uint32, md []byte) []uint32 {
	dst = dst[:p.K]
	offset := 0
	for i := 0; i < p.K; i++ {
		var idx uint32
		for j := 0; j < p.LogT; j++ {
			idx ^= uint32((md[offset>>3]>>(offset&7))&1) << uint(j)
			offset++
		}
		dst[i] = idx
	}
	return dst
}

// MessageToIndices is MessageToIndicesInto with a freshly allocated
// destination; hot paths should pass a reusable slice to the Into variant.
func MessageToIndices(p *params.Params, md []byte) []uint32 {
	return MessageToIndicesInto(p, make([]uint32, p.K), md)
}
