// Package hashes implements the SPHINCS+ SHA-2 tweakable hash functions
// (F, H, T_l), the secret-key PRF, the message randomizer PRF_msg and the
// message digest H_msg, in the "simple" construction:
//
//	thash(ADRS, M)  = Trunc_n( SHA-256( BlockPad(PK.seed) || ADRS_c || M ) )
//	PRF(ADRS)       = Trunc_n( SHA-256( BlockPad(PK.seed) || ADRS_c || SK.seed ) )
//	PRF_msg(R, M)   = Trunc_n( HMAC-SHA-X( SK.prf, OptRand || M ) )
//	H_msg(R, M)     = MGF1-SHA-X( R || PK.seed || SHA-X(R || PK.seed || PK.root || M), m )
//
// where BlockPad pads PK.seed with zeros to one full compression block, so
// its midstate is computed once per context and reused for every call —
// the same precomputation CUDA implementations keep in constant memory.
//
// A Ctx carries an optional *Counters so that callers (the GPU simulator's
// kernels) can attribute exact compression-function counts to every
// invocation without re-implementing any cryptography.
package hashes

import (
	"herosign/internal/sha2"
	"herosign/internal/spx/address"
	"herosign/internal/spx/params"
)

// Counters accumulates hash-level work. All fields count events since the
// counter was attached (or reset). A nil *Counters disables counting.
type Counters struct {
	Compress256 int64 // SHA-256 compression-function invocations
	Compress512 int64 // SHA-512 compression-function invocations
	Thash       int64 // F/H/T_l calls
	PRF         int64 // secret-key PRF calls
	Bytes       int64 // message bytes absorbed (excluding the padded seed block)
}

// Reset zeroes the counters.
func (c *Counters) Reset() { *c = Counters{} }

// Add accumulates other into c.
func (c *Counters) Add(other *Counters) {
	c.Compress256 += other.Compress256
	c.Compress512 += other.Compress512
	c.Thash += other.Thash
	c.PRF += other.PRF
	c.Bytes += other.Bytes
}

// Ctx binds a parameter set to key material and caches the seeded SHA-256
// midstate. Ctx is NOT safe for concurrent use when a counter is attached or
// when methods share the scratch buffer; create one Ctx per worker.
type Ctx struct {
	P      *params.Params
	PKSeed []byte
	SKSeed []byte // may be nil for verify-only contexts

	C *Counters // optional; may be nil

	seeded  sha2.State256 // midstate after absorbing BlockPad(PK.seed)
	scratch []byte
}

// NewCtx builds a hash context. skSeed may be nil when only public
// operations (verification) are needed.
func NewCtx(p *params.Params, pkSeed, skSeed []byte) *Ctx {
	if len(pkSeed) != p.N {
		panic("hashes: pk seed length mismatch")
	}
	if skSeed != nil && len(skSeed) != p.N {
		panic("hashes: sk seed length mismatch")
	}
	c := &Ctx{
		P:       p,
		PKSeed:  append([]byte(nil), pkSeed...),
		scratch: make([]byte, 0, 256),
	}
	if skSeed != nil {
		c.SKSeed = append([]byte(nil), skSeed...)
	}
	var block [sha2.BlockSize256]byte
	copy(block[:], pkSeed)
	h := sha2.New256()
	h.Write(block[:])
	c.seeded = h.Midstate()
	return c
}

// Clone returns a copy of the context with its own scratch space and the
// given counter attached (counter may be nil). Used to give each simulated
// GPU thread an independent counting context over shared key material.
func (c *Ctx) Clone(counter *Counters) *Ctx {
	dup := *c
	dup.scratch = make([]byte, 0, 256)
	dup.C = counter
	return &dup
}

// countThash charges one thash over msgLen message bytes (past the seed
// block) to the attached counter.
func (c *Ctx) countThash(msgLen int) {
	if c.C == nil {
		return
	}
	c.C.Thash++
	c.C.Bytes += int64(msgLen)
	// Total absorbed: one seed block (cached midstate — on GPU this is a
	// constant-memory preimage, but the compression for it still ran once;
	// we charge only the non-cached part, matching what the kernel executes)
	// plus the address and message.
	c.C.Compress256 += int64(sha2.CompressionBlocks256(sha2.BlockSize256+msgLen) - 1)
}

// Thash computes the tweakable hash of in (a multiple of N bytes) under
// adrs, writing N bytes to out. It implements F (one block), H (two blocks)
// and T_l (l blocks) uniformly.
func (c *Ctx) Thash(out []byte, in []byte, adrs *address.Address) {
	comp := adrs.Compressed()
	h := sha2.New256()
	h.SetMidstate(c.seeded, sha2.BlockSize256)
	h.Write(comp[:])
	h.Write(in)
	c.scratch = h.Sum(c.scratch[:0])
	copy(out[:c.P.N], c.scratch)
	c.countThash(address.CompressedSize + len(in))
}

// F is the single-input tweakable hash used in WOTS+ chains and FORS leaves.
func (c *Ctx) F(out, in []byte, adrs *address.Address) {
	c.Thash(out, in[:c.P.N], adrs)
}

// H is the two-input tweakable hash used for Merkle-tree node compression.
// left and right are N-byte nodes.
func (c *Ctx) H(out, left, right []byte, adrs *address.Address) {
	comp := adrs.Compressed()
	h := sha2.New256()
	h.SetMidstate(c.seeded, sha2.BlockSize256)
	h.Write(comp[:])
	h.Write(left[:c.P.N])
	h.Write(right[:c.P.N])
	c.scratch = h.Sum(c.scratch[:0])
	copy(out[:c.P.N], c.scratch)
	c.countThash(address.CompressedSize + 2*c.P.N)
}

// PRF derives an N-byte secret value for adrs from SK.seed.
func (c *Ctx) PRF(out []byte, adrs *address.Address) {
	if c.SKSeed == nil {
		panic("hashes: PRF requires a secret context")
	}
	comp := adrs.Compressed()
	h := sha2.New256()
	h.SetMidstate(c.seeded, sha2.BlockSize256)
	h.Write(comp[:])
	h.Write(c.SKSeed)
	c.scratch = h.Sum(c.scratch[:0])
	copy(out[:c.P.N], c.scratch)
	if c.C != nil {
		msgLen := address.CompressedSize + c.P.N
		c.C.PRF++
		c.C.Bytes += int64(msgLen)
		c.C.Compress256 += int64(sha2.CompressionBlocks256(sha2.BlockSize256+msgLen) - 1)
	}
}

// PRFMsg computes the message randomizer R from SK.prf, optRand and the
// message.
func PRFMsg(p *params.Params, skPRF, optRand, msg []byte) []byte {
	buf := make([]byte, 0, len(optRand)+len(msg))
	buf = append(buf, optRand...)
	buf = append(buf, msg...)
	if p.UsesSHA512Msg() {
		mac := sha2.HMAC512(skPRF, buf)
		return append([]byte(nil), mac[:p.N]...)
	}
	mac := sha2.HMAC256(skPRF, buf)
	return append([]byte(nil), mac[:p.N]...)
}

// HMsg computes the (MDBytes + TreeIdxBytes + LeafIdxBytes)-byte message
// digest from the randomizer, public key and message.
func HMsg(p *params.Params, r, pkSeed, pkRoot, msg []byte) []byte {
	inner := make([]byte, 0, 3*p.N+len(msg))
	inner = append(inner, r...)
	inner = append(inner, pkSeed...)
	inner = append(inner, pkRoot...)
	inner = append(inner, msg...)

	if p.UsesSHA512Msg() {
		ih := sha2.Sum512(inner)
		seed := make([]byte, 0, 2*p.N+sha2.Size512)
		seed = append(seed, r...)
		seed = append(seed, pkSeed...)
		seed = append(seed, ih[:]...)
		return sha2.MGF1_512(seed, p.DigestBytes)
	}
	ih := sha2.Sum256(inner)
	seed := make([]byte, 0, 2*p.N+sha2.Size256)
	seed = append(seed, r...)
	seed = append(seed, pkSeed...)
	seed = append(seed, ih[:]...)
	return sha2.MGF1_256(seed, p.DigestBytes)
}

// SplitDigest splits an H_msg digest into the FORS message md, the hypertree
// index and the leaf index, per the specification's bit layout.
func SplitDigest(p *params.Params, digest []byte) (md []byte, treeIdx uint64, leafIdx uint32) {
	md = digest[:p.MDBytes]
	treeBytes := digest[p.MDBytes : p.MDBytes+p.TreeIdxBytes]
	leafBytes := digest[p.MDBytes+p.TreeIdxBytes : p.DigestBytes]

	for _, b := range treeBytes {
		treeIdx = treeIdx<<8 | uint64(b)
	}
	treeBits := uint(p.H - p.TreeHeight)
	if treeBits < 64 {
		treeIdx &= (1 << treeBits) - 1
	}

	var leaf uint64
	for _, b := range leafBytes {
		leaf = leaf<<8 | uint64(b)
	}
	leaf &= (1 << uint(p.TreeHeight)) - 1
	return md, treeIdx, uint32(leaf)
}

// MessageToIndices extracts the K FORS leaf indices (LogT bits each,
// LSB-first within the bitstream, matching the reference implementation)
// from the md portion of the digest.
func MessageToIndices(p *params.Params, md []byte) []uint32 {
	indices := make([]uint32, p.K)
	offset := 0
	for i := 0; i < p.K; i++ {
		var idx uint32
		for j := 0; j < p.LogT; j++ {
			idx ^= uint32((md[offset>>3]>>(offset&7))&1) << uint(j)
			offset++
		}
		indices[i] = idx
	}
	return indices
}
