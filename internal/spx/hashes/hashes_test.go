package hashes

import (
	"bytes"
	"testing"

	"herosign/internal/sha2"
	"herosign/internal/spx/address"
	"herosign/internal/spx/params"
)

func testCtx(t *testing.T, p *params.Params) *Ctx {
	t.Helper()
	pkSeed := make([]byte, p.N)
	skSeed := make([]byte, p.N)
	for i := range pkSeed {
		pkSeed[i] = byte(i + 1)
		skSeed[i] = byte(2*i + 1)
	}
	return NewCtx(p, pkSeed, skSeed)
}

// TestThashMatchesDefinition recomputes thash from first principles:
// Trunc_n(SHA-256(BlockPad(PK.seed) || ADRS_c || M)).
func TestThashMatchesDefinition(t *testing.T) {
	for _, p := range params.FastSets() {
		ctx := testCtx(t, p)
		var adrs address.Address
		adrs.SetType(address.FORSTree)
		adrs.SetTreeIndex(9)
		msg := make([]byte, p.N)
		for i := range msg {
			msg[i] = byte(i * 5)
		}
		got := make([]byte, p.N)
		ctx.F(got, msg, &adrs)

		block := make([]byte, sha2.BlockSize256)
		copy(block, ctx.PKSeed)
		comp := adrs.Compressed()
		h := sha2.New256()
		h.Write(block)
		h.Write(comp[:])
		h.Write(msg)
		want := h.Sum(nil)[:p.N]
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: thash mismatch", p.Name)
		}
	}
}

// TestHEqualsThashOfConcat checks H(left,right) == Thash(left||right).
func TestHEqualsThashOfConcat(t *testing.T) {
	p := params.SPHINCSPlus192f
	ctx := testCtx(t, p)
	var adrs address.Address
	adrs.SetType(address.Tree)
	adrs.SetTreeHeight(2)
	left := bytes.Repeat([]byte{0x11}, p.N)
	right := bytes.Repeat([]byte{0x22}, p.N)

	viaH := make([]byte, p.N)
	ctx.H(viaH, left, right, &adrs)

	viaT := make([]byte, p.N)
	ctx.Thash(viaT, append(append([]byte{}, left...), right...), &adrs)
	if !bytes.Equal(viaH, viaT) {
		t.Fatal("H != Thash(left||right)")
	}
}

// TestPRFDiffersFromThash checks domain separation between PRF (which
// absorbs SK.seed) and thash over the same address.
func TestPRFDiffersFromThash(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := testCtx(t, p)
	var adrs address.Address
	adrs.SetType(address.FORSPRF)

	prf := make([]byte, p.N)
	ctx.PRF(prf, &adrs)
	th := make([]byte, p.N)
	ctx.Thash(th, ctx.SKSeed, &adrs)
	if !bytes.Equal(prf, th) {
		// PRF is defined as thash over SK.seed, so these MUST be equal —
		// this is a consistency check of the implementation pair.
		t.Fatal("PRF must equal Thash over SK.seed with the same address")
	}
}

// TestPRFRequiresSecret ensures verify-only contexts reject PRF.
func TestPRFRequiresSecret(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := NewCtx(p, make([]byte, p.N), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("PRF on public context must panic")
		}
	}()
	var adrs address.Address
	ctx.PRF(make([]byte, p.N), &adrs)
}

// TestAddressSensitivity: different addresses must give different digests.
func TestAddressSensitivity(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := testCtx(t, p)
	msg := make([]byte, p.N)
	out1 := make([]byte, p.N)
	out2 := make([]byte, p.N)

	var a1, a2 address.Address
	a1.SetTreeIndex(1)
	a2.SetTreeIndex(2)
	ctx.F(out1, msg, &a1)
	ctx.F(out2, msg, &a2)
	if bytes.Equal(out1, out2) {
		t.Fatal("address change did not change digest")
	}
}

// TestCountersAttribution checks exact compression accounting for F over
// n=16: one compression past the cached seed block.
func TestCountersAttribution(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := testCtx(t, p)
	var c Counters
	ctx.C = &c
	var adrs address.Address
	out := make([]byte, p.N)
	msg := make([]byte, p.N)
	ctx.F(out, msg, &adrs)
	// Message past midstate: 22 (adrs) + 16 = 38 bytes; padded total with
	// the seed block: 64+38+9 <= 128 -> 2 blocks, minus the cached one = 1.
	if c.Compress256 != 1 || c.Thash != 1 {
		t.Fatalf("counters = %+v, want 1 compression / 1 thash", c)
	}
	ctx.H(out, msg, msg, &adrs)
	// 22+32 = 54 past midstate: 64+54+9 = 127 -> 2 blocks -> 1 charged.
	if c.Compress256 != 2 {
		t.Fatalf("H charged %d compressions total, want 2", c.Compress256)
	}
	ctx.PRF(out, &adrs)
	if c.PRF != 1 {
		t.Fatalf("PRF count = %d", c.PRF)
	}
}

// TestCountersAddAndReset covers the aggregation helpers.
func TestCountersAddAndReset(t *testing.T) {
	a := Counters{Compress256: 3, Thash: 2, PRF: 1, Bytes: 100}
	b := Counters{Compress256: 7, Compress512: 1, Thash: 5, Bytes: 50}
	a.Add(&b)
	if a.Compress256 != 10 || a.Compress512 != 1 || a.Thash != 7 || a.Bytes != 150 {
		t.Fatalf("Add: %+v", a)
	}
	a.Reset()
	if a != (Counters{}) {
		t.Fatal("Reset did not zero")
	}
}

// TestCloneIsolation: cloned contexts share key material but not counters
// or scratch space.
func TestCloneIsolation(t *testing.T) {
	p := params.SPHINCSPlus128f
	base := testCtx(t, p)
	var c1, c2 Counters
	d1 := base.Clone(&c1)
	d2 := base.Clone(&c2)
	var adrs address.Address
	out := make([]byte, p.N)
	d1.F(out, make([]byte, p.N), &adrs)
	if c1.Thash != 1 || c2.Thash != 0 {
		t.Fatal("clone counters not isolated")
	}
	// Same inputs must give the same output on both clones.
	out2 := make([]byte, p.N)
	d2.F(out2, make([]byte, p.N), &adrs)
	if !bytes.Equal(out, out2) {
		t.Fatal("clones disagree functionally")
	}
}

// TestHMsgModeSwitch checks the SHA-512 message-hash option changes the
// digest at levels 3/5 and not at level 1.
func TestHMsgModeSwitch(t *testing.T) {
	msg := []byte("mode switch")
	for _, tc := range []struct {
		p      *params.Params
		differ bool
	}{
		{params.SPHINCSPlus128f, false},
		{params.SPHINCSPlus192f, true},
		{params.SPHINCSPlus256f, true},
	} {
		r := make([]byte, tc.p.N)
		seed := make([]byte, tc.p.N)
		root := make([]byte, tc.p.N)
		d256 := HMsg(tc.p, r, seed, root, msg)
		d512 := HMsg(tc.p.WithMode(params.SHA512Msg), r, seed, root, msg)
		if tc.differ && bytes.Equal(d256, d512) {
			t.Errorf("%s: SHA512Msg mode should change H_msg", tc.p.Name)
		}
		if !tc.differ && !bytes.Equal(d256, d512) {
			t.Errorf("%s: SHA512Msg must not apply at level 1", tc.p.Name)
		}
		if len(d256) != tc.p.DigestBytes {
			t.Errorf("%s: digest length %d", tc.p.Name, len(d256))
		}
	}
}

// TestPRFMsgModes mirrors TestHMsgModeSwitch for the randomizer.
func TestPRFMsgModes(t *testing.T) {
	p := params.SPHINCSPlus256f
	skPRF := make([]byte, p.N)
	opt := make([]byte, p.N)
	msg := []byte("r")
	r256 := PRFMsg(p, skPRF, opt, msg)
	r512 := PRFMsg(p.WithMode(params.SHA512Msg), skPRF, opt, msg)
	if len(r256) != p.N || len(r512) != p.N {
		t.Fatal("randomizer length")
	}
	if bytes.Equal(r256, r512) {
		t.Fatal("PRF_msg mode switch had no effect at level 5")
	}
}

// TestDigestLayoutBytes checks the m = md || tree || leaf split sizes the
// paper's parameter table implies (34/42/49 bytes for the -f sets).
func TestDigestLayoutBytes(t *testing.T) {
	want := map[string][3]int{
		"SPHINCS+-128f": {25, 8, 1},
		"SPHINCS+-192f": {33, 8, 1},
		"SPHINCS+-256f": {40, 8, 1},
	}
	for _, p := range params.FastSets() {
		w := want[p.Name]
		if p.MDBytes != w[0] || p.TreeIdxBytes != w[1] || p.LeafIdxBytes != w[2] {
			t.Errorf("%s: layout %d/%d/%d, want %v",
				p.Name, p.MDBytes, p.TreeIdxBytes, p.LeafIdxBytes, w)
		}
	}
}
