package spx

import (
	"fmt"

	"herosign/internal/sha2"
	"herosign/internal/spx/address"
	"herosign/internal/spx/fors"
	"herosign/internal/spx/hashes"
	"herosign/internal/spx/hypertree"
)

// Verifier is a reusable verification context for one public key, the
// mirror image of Signer: the seeded hash midstate, the lane-batch engine
// and all scratch arenas stay warm across calls, so steady-state Verify and
// VerifyBatch perform no allocation. A Verifier is NOT safe for concurrent
// use; create one per worker.
type Verifier struct {
	pk  *PublicKey
	ctx *hashes.Ctx

	// Scratch sized once at construction for up to sha2.Lanes signatures.
	digests []byte // Lanes * DigestBytes message digests
	forsPKs []byte // Lanes * N; FORS pk in, hypertree root out (in place)

	// Per-group staging, filled by verifyGroup.
	forsSigs [sha2.Lanes][]byte
	htSigs   [sha2.Lanes][]byte
	mds      [sha2.Lanes][]byte
	adrs     [sha2.Lanes]address.Address
	treeIdxs [sha2.Lanes]uint64
	leafIdxs [sha2.Lanes]uint32
	slots    [sha2.Lanes]int // original batch position of each lane
}

// NewVerifier builds a reusable verifier for pk.
func NewVerifier(pk *PublicKey) *Verifier {
	p := pk.Params
	return &Verifier{
		pk:      pk,
		ctx:     hashes.NewCtx(p, pk.Seed, nil),
		digests: make([]byte, sha2.Lanes*p.DigestBytes),
		forsPKs: make([]byte, sha2.Lanes*p.N),
	}
}

// Verify checks one SPHINCS+ signature, reusing the verifier's context.
// It returns nil on success and ErrVerify on mismatch; steady-state calls
// allocate nothing.
func (v *Verifier) Verify(msg, sig []byte) error {
	p := v.pk.Params
	if len(sig) != p.SigBytes {
		return fmt.Errorf("spx: signature must be %d bytes, got %d", p.SigBytes, len(sig))
	}
	digest := hashes.HMsgInto(p, v.digests[:p.DigestBytes], sig[:p.N], v.pk.Seed, v.pk.Root, msg)
	md, treeIdx, leafIdx := hashes.SplitDigest(p, digest)

	var forsAdrs address.Address
	forsAdrs.SetLayer(0)
	forsAdrs.SetTree(treeIdx)
	forsAdrs.SetType(address.FORSTree)
	forsAdrs.SetKeyPair(leafIdx)
	forsPK := v.forsPKs[:p.N]
	fors.PKFromSigInto(v.ctx, forsPK, sig[p.N:p.N+p.ForsBytes], md, &forsAdrs)

	var root [32]byte // N <= 32
	hypertree.PKFromSig(v.ctx, root[:p.N], sig[p.N+p.ForsBytes:], forsPK, treeIdx, leafIdx)
	for i := 0; i < p.N; i++ {
		if root[i] != v.pk.Root[i] {
			return ErrVerify
		}
	}
	return nil
}

// VerifyBatch checks len(msgs) signatures at once, lane-batching the hash
// work across signatures: groups of up to sha2.Lanes signatures run their
// FORS path climbs level-synchronously and their WOTS+ chain steps
// step-synchronously, so multi-lane compression passes stay nearly full
// where a single signature's live work dips. Verdicts are identical to
// calling Verify per pair; a wrong-length signature simply yields false
// without joining a lane group. ok receives one verdict per pair and is
// allocated when nil; passing a caller buffer keeps steady-state calls
// allocation-free. msgs and sigs must have equal length.
func (v *Verifier) VerifyBatch(ok []bool, msgs, sigs [][]byte) []bool {
	if len(msgs) != len(sigs) {
		panic("spx: VerifyBatch msgs/sigs length mismatch")
	}
	if ok == nil {
		ok = make([]bool, len(msgs))
	}
	ok = ok[:len(msgs)]
	p := v.pk.Params
	b := 0
	for i := range msgs {
		if len(sigs[i]) != p.SigBytes {
			ok[i] = false
			continue
		}
		v.slots[b] = i
		b++
		if b == sha2.Lanes {
			v.verifyGroup(b, ok, msgs, sigs)
			b = 0
		}
	}
	if b > 0 {
		v.verifyGroup(b, ok, msgs, sigs)
	}
	return ok
}

// verifyGroup runs one lane group of b valid-length signatures (indices in
// v.slots) through the batched FORS + hypertree recovery and writes each
// verdict into ok at its original position.
func (v *Verifier) verifyGroup(b int, ok []bool, msgs, sigs [][]byte) {
	p := v.pk.Params
	for k := 0; k < b; k++ {
		sig := sigs[v.slots[k]]
		digest := hashes.HMsgInto(p, v.digests[k*p.DigestBytes:(k+1)*p.DigestBytes],
			sig[:p.N], v.pk.Seed, v.pk.Root, msgs[v.slots[k]])
		md, treeIdx, leafIdx := hashes.SplitDigest(p, digest)
		v.mds[k] = md
		v.forsSigs[k] = sig[p.N : p.N+p.ForsBytes]
		v.htSigs[k] = sig[p.N+p.ForsBytes:]
		v.treeIdxs[k] = treeIdx
		v.leafIdxs[k] = leafIdx
		v.adrs[k] = address.Address{}
		v.adrs[k].SetLayer(0)
		v.adrs[k].SetTree(treeIdx)
		v.adrs[k].SetType(address.FORSTree)
		v.adrs[k].SetKeyPair(leafIdx)
	}
	fors.PKFromSigBatch(v.ctx, b, v.forsPKs[:b*p.N], &v.forsSigs, &v.mds, &v.adrs)
	// The recovered hypertree roots overwrite the FORS public keys in place.
	hypertree.PKFromSigBatch(v.ctx, b, v.forsPKs[:b*p.N], &v.htSigs, &v.treeIdxs, &v.leafIdxs)
	for k := 0; k < b; k++ {
		root := v.forsPKs[k*p.N : (k+1)*p.N]
		match := true
		for i := 0; i < p.N; i++ {
			if root[i] != v.pk.Root[i] {
				match = false
				break
			}
		}
		ok[v.slots[k]] = match
	}
}
