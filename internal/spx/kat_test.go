package spx

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"herosign/internal/spx/params"
)

// Known-answer regression vectors. Keys derive from the fixed seed pattern
// skSeed[i]=i, skPRF[i]=i+1, pkSeed[i]=i+2; the message is fixed; signing is
// deterministic (OptRand = PK.seed). Any change to the hash construction,
// address scheme, WOTS+/FORS/hypertree logic or signature layout changes
// these digests.
//
// The vectors are self-generated (no offline NIST KAT source is available
// in this environment) and pin the implementation against regressions; the
// cross-implementation guarantee comes from the GPU-vs-CPU byte-equality
// tests.
var katVectors = map[string]struct {
	Root      string // hex PK.root
	SigDigest string // hex SHA-256 of the signature
}{
	"SPHINCS+-128s": {Root: "a8ed535f7c32dbdd0440a1d944c403d2", SigDigest: "731954f84fe8b81d6d10263a8fafa559c9ef756af14def62c8d985efcaf360d4"},
	"SPHINCS+-128f": {Root: "3cfce46337d799113d0482b3db324630", SigDigest: "cf26caba9de6808f28dd1890bae38d84abac72fc76054404331dd87d2aa658a0"},
	"SPHINCS+-192s": {Root: "37658c94564c0e92df1c4b2a12e4d2d87fe5c91071f66b2d", SigDigest: "a12a5254caadd8b0ae7c0ba23c21b0a1b76788162c18f8f27986618efa5002f8"},
	"SPHINCS+-192f": {Root: "d84e7f7921a9a443915dc4c884c566516bfe1105a3aa804f", SigDigest: "aefef36414614d6926205a19ab5ef2f3c9062039f9c6da7a22c3ee038ebe006d"},
	"SPHINCS+-256s": {Root: "033da88c3a7d82259405654af2f9b92092f59720f9124a01620d5782bb210ebb", SigDigest: "987cd8673bb84cb4080437d579258357b09f40bcfe981e71607ac7cfc8c099c2"},
	"SPHINCS+-256f": {Root: "3c7ea53785e268429694dbb74c65f040cddffe1105da622f70ef5d3416c55ac6", SigDigest: "087e2ef324351c6321ccbc32f22c45041709a617eb7a453f0d92effb1708a249"},
}

// TestKnownAnswerVectors pins public roots and signature digests for every
// parameter set. In -short mode only the 128-bit sets run.
func TestKnownAnswerVectors(t *testing.T) {
	sets := params.AllSets()
	if testing.Short() {
		sets = []*params.Params{params.SPHINCSPlus128s, params.SPHINCSPlus128f}
	}
	msg := []byte("HERO-Sign known-answer test message")
	for _, p := range sets {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			skSeed := make([]byte, p.N)
			skPRF := make([]byte, p.N)
			pkSeed := make([]byte, p.N)
			for i := range skSeed {
				skSeed[i] = byte(i)
				skPRF[i] = byte(i + 1)
				pkSeed[i] = byte(i + 2)
			}
			sk, err := KeyFromSeeds(p, skSeed, skPRF, pkSeed)
			if err != nil {
				t.Fatal(err)
			}
			want := katVectors[p.Name]
			if got := hex.EncodeToString(sk.Root); got != want.Root {
				t.Fatalf("PK.root = %s, want %s", got, want.Root)
			}
			sig, err := Sign(sk, msg, nil)
			if err != nil {
				t.Fatal(err)
			}
			d := sha256.Sum256(sig)
			if got := hex.EncodeToString(d[:]); got != want.SigDigest {
				t.Fatalf("signature digest = %s, want %s", got, want.SigDigest)
			}
			if err := Verify(&sk.PublicKey, msg, sig); err != nil {
				t.Fatal(err)
			}
		})
	}
}
