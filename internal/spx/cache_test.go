package spx

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"herosign/internal/spx/params"
)

func cacheTestKey(t testing.TB, p *params.Params) *PrivateKey {
	t.Helper()
	skSeed := make([]byte, p.N)
	skPRF := make([]byte, p.N)
	pkSeed := make([]byte, p.N)
	for i := range skSeed {
		skSeed[i] = byte(i)
		skPRF[i] = byte(i + 1)
		pkSeed[i] = byte(i + 2)
	}
	sk, err := KeyFromSeeds(p, skSeed, skPRF, pkSeed)
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

// TestCacheByteIdentity: full SPHINCS+ signatures must be byte-identical
// with memoization on and off — the KAT seeds and message, plus varied
// messages, cold and warm cache, warmed and lazy pinned layers.
func TestCacheByteIdentity(t *testing.T) {
	sets := []*params.Params{params.SPHINCSPlus128f}
	if !testing.Short() {
		sets = params.FastSets()
	}
	for _, p := range sets {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			sk := cacheTestKey(t, p)
			cache := NewTreeCache(sk, 4<<20)
			cache.Warm(2)
			plain := NewSigner(sk)
			cached, err := NewSignerWithCache(sk, cache)
			if err != nil {
				t.Fatal(err)
			}

			msgs := [][]byte{
				[]byte("HERO-Sign known-answer test message"), // the KAT message
				[]byte("memoization probe 1"),
				[]byte("memoization probe 2"),
			}
			for pass := 0; pass < 2; pass++ { // cold then warm LRU
				for mi, msg := range msgs {
					want, err := plain.Sign(msg, nil)
					if err != nil {
						t.Fatal(err)
					}
					got, err := cached.Sign(msg, nil)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("pass %d msg %d: cached signature differs from plain", pass, mi)
					}
					if err := Verify(&sk.PublicKey, msg, got); err != nil {
						t.Fatalf("pass %d msg %d: cached signature fails verify: %v", pass, mi, err)
					}
				}
			}
			if s := cache.Stats(); s.Hits == 0 {
				t.Fatalf("cache never hit: %+v", s)
			}
		})
	}
}

// TestNewSignerWithCacheRejectsForeignKey: a cache built for one key must
// not attach to a signer for another.
func TestNewSignerWithCacheRejectsForeignKey(t *testing.T) {
	p := params.SPHINCSPlus128f
	sk := cacheTestKey(t, p)
	cache := NewTreeCache(sk, 1<<20)

	other := make([]byte, p.N)
	copy(other, sk.SKSeed)
	other[0] ^= 1
	sk2, err := KeyFromSeeds(p, other, sk.SKPRF, sk.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSignerWithCache(sk2, cache); err == nil {
		t.Fatal("foreign key accepted")
	}
	if _, err := NewSignerWithCache(sk, cache); err != nil {
		t.Fatalf("own key rejected: %v", err)
	}
	if s, err := NewSignerWithCache(sk, nil); err != nil || s == nil {
		t.Fatalf("nil cache rejected: %v", err)
	}
}

// TestConcurrentSignersSharedCache: many Signers over one TreeCache,
// signing overlapping messages concurrently, must produce signatures
// byte-identical to the single-threaded plain signer. Run with -race.
func TestConcurrentSignersSharedCache(t *testing.T) {
	p := params.SPHINCSPlus128f
	sk := cacheTestKey(t, p)
	// Small budget so concurrent signers also contend on eviction.
	cache := NewTreeCache(sk, 1<<20)

	const distinct = 6
	msgs := make([][]byte, distinct)
	want := make([][]byte, distinct)
	plain := NewSigner(sk)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("shared-cache message %d", i))
		sig, err := plain.Sign(msgs[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = sig
	}

	const workers = 8
	const iters = 12
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			signer, err := NewSignerWithCache(sk, cache)
			if err != nil {
				errs[w] = err
				return
			}
			for it := 0; it < iters; it++ {
				i := (w + it) % distinct
				got, err := signer.Sign(msgs[i], nil)
				if err != nil {
					errs[w] = err
					return
				}
				if !bytes.Equal(got, want[i]) {
					errs[w] = fmt.Errorf("worker %d iter %d: signature differs", w, it)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
