package spx

import (
	"bytes"
	"testing"
	"testing/quick"

	"herosign/internal/spx/hashes"
	"herosign/internal/spx/params"
)

// testKey derives a deterministic key for a parameter set.
func testKey(t testing.TB, p *params.Params, tag byte) *PrivateKey {
	t.Helper()
	skSeed := make([]byte, p.N)
	skPRF := make([]byte, p.N)
	pkSeed := make([]byte, p.N)
	for i := range skSeed {
		skSeed[i] = byte(i) ^ tag
		skPRF[i] = byte(i*3+1) ^ tag
		pkSeed[i] = byte(i*7+5) ^ tag
	}
	sk, err := KeyFromSeeds(p, skSeed, skPRF, pkSeed)
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

// TestSignatureSizesMatchPaper asserts the -f signature sizes the paper
// quotes (17,088 bytes for 128f) and the spec values for the others.
func TestSignatureSizesMatchPaper(t *testing.T) {
	want := map[string]int{
		"SPHINCS+-128f": 17088,
		"SPHINCS+-192f": 35664,
		"SPHINCS+-256f": 49856,
		"SPHINCS+-128s": 7856,
		"SPHINCS+-192s": 16224,
		"SPHINCS+-256s": 29792,
	}
	for _, p := range params.AllSets() {
		if got := p.SigBytes; got != want[p.Name] {
			t.Errorf("%s: SigBytes = %d, want %d", p.Name, got, want[p.Name])
		}
	}
}

// TestWOTSDerivedParams checks the derived WOTS+ constants for each set.
func TestWOTSDerivedParams(t *testing.T) {
	cases := []struct {
		p    *params.Params
		len1 int
		len2 int
	}{
		{params.SPHINCSPlus128f, 32, 3},
		{params.SPHINCSPlus192f, 48, 3},
		{params.SPHINCSPlus256f, 64, 3},
	}
	for _, c := range cases {
		if c.p.WOTSLen1 != c.len1 || c.p.WOTSLen2 != c.len2 {
			t.Errorf("%s: len1/len2 = %d/%d, want %d/%d",
				c.p.Name, c.p.WOTSLen1, c.p.WOTSLen2, c.len1, c.len2)
		}
		if c.p.WOTSLen != c.len1+c.len2 {
			t.Errorf("%s: WOTSLen inconsistent", c.p.Name)
		}
	}
}

// TestSignVerifyRoundTripAllSets signs and verifies on every parameter set.
// The -f sets are the paper's targets; -s sets are covered in -short mode
// only for 128s to bound runtime.
func TestSignVerifyRoundTripAllSets(t *testing.T) {
	sets := []*params.Params{params.SPHINCSPlus128f, params.SPHINCSPlus128s}
	if !testing.Short() {
		sets = params.AllSets()
	}
	for _, p := range sets {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			if !testing.Short() &&
				(p == params.SPHINCSPlus128f || p == params.SPHINCSPlus128s) {
				t.Parallel()
			}
			sk := testKey(t, p, 0x11)
			msg := []byte("HERO-Sign reproduction message for " + p.Name)
			sig, err := Sign(sk, msg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(sig) != p.SigBytes {
				t.Fatalf("signature length %d, want %d", len(sig), p.SigBytes)
			}
			if err := Verify(&sk.PublicKey, msg, sig); err != nil {
				t.Fatalf("verify: %v", err)
			}
		})
	}
}

// TestDeterministicSigning verifies that default signing is deterministic
// (OptRand = PK.seed) and that distinct OptRand changes only R, not validity.
func TestDeterministicSigning(t *testing.T) {
	p := params.SPHINCSPlus128f
	sk := testKey(t, p, 0x22)
	msg := []byte("determinism check")
	s1, err := Sign(sk, msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Sign(sk, msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatal("default signing is not deterministic")
	}
	optRand := make([]byte, p.N)
	optRand[0] = 0xAB
	s3, err := Sign(sk, msg, &SignOptions{OptRand: optRand})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(s1, s3) {
		t.Fatal("OptRand did not change the signature")
	}
	if err := Verify(&sk.PublicKey, msg, s3); err != nil {
		t.Fatalf("randomized signature failed to verify: %v", err)
	}
}

// TestVerifyRejectsTampering flips bits in every structural region of the
// signature (R, FORS, each hypertree layer) and in the message, expecting
// rejection for each.
func TestVerifyRejectsTampering(t *testing.T) {
	p := params.SPHINCSPlus128f
	sk := testKey(t, p, 0x33)
	msg := []byte("tamper target")
	sig, err := Sign(sk, msg, nil)
	if err != nil {
		t.Fatal(err)
	}

	offsets := []int{
		0,                               // R
		p.N,                             // FORS revealed secret
		p.N + 5*p.N,                     // FORS auth path
		p.N + p.ForsBytes,               // first WOTS+ signature
		p.N + p.ForsBytes + p.WOTSBytes, // first auth path
		p.SigBytes - 1,                  // last byte (top layer auth)
	}
	for _, off := range offsets {
		bad := append([]byte(nil), sig...)
		bad[off] ^= 0x01
		if err := Verify(&sk.PublicKey, msg, bad); err == nil {
			t.Errorf("tampered signature at offset %d verified", off)
		}
	}

	if err := Verify(&sk.PublicKey, append(msg, 'x'), sig); err == nil {
		t.Error("signature verified for modified message")
	}

	short := sig[:len(sig)-1]
	if err := Verify(&sk.PublicKey, msg, short); err == nil {
		t.Error("truncated signature verified")
	}
}

// TestVerifyRejectsWrongKey verifies key separation.
func TestVerifyRejectsWrongKey(t *testing.T) {
	p := params.SPHINCSPlus128f
	sk1 := testKey(t, p, 0x44)
	sk2 := testKey(t, p, 0x55)
	msg := []byte("key separation")
	sig, err := Sign(sk1, msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(&sk2.PublicKey, msg, sig); err == nil {
		t.Error("signature verified under wrong key")
	}
}

// TestKeySerializationRoundTrip checks Bytes/Parse inverses for both key
// types.
func TestKeySerializationRoundTrip(t *testing.T) {
	p := params.SPHINCSPlus192f
	sk := testKey(t, p, 0x66)

	skb := sk.Bytes()
	if len(skb) != p.SKBytes {
		t.Fatalf("sk bytes = %d, want %d", len(skb), p.SKBytes)
	}
	sk2, err := ParsePrivateKey(p, skb)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sk2.Bytes(), skb) {
		t.Fatal("private key roundtrip mismatch")
	}

	pkb := sk.PublicKey.Bytes()
	if len(pkb) != p.PKBytes {
		t.Fatalf("pk bytes = %d, want %d", len(pkb), p.PKBytes)
	}
	pk2, err := ParsePublicKey(p, pkb)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pk2.Bytes(), pkb) {
		t.Fatal("public key roundtrip mismatch")
	}

	// A signature from the parsed key must verify under the parsed pk.
	msg := []byte("serialization")
	sig, err := Sign(sk2, msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(pk2, msg, sig); err != nil {
		t.Fatal(err)
	}

	if _, err := ParsePublicKey(p, pkb[:len(pkb)-1]); err == nil {
		t.Error("short public key parsed")
	}
	if _, err := ParsePrivateKey(p, append(skb, 0)); err == nil {
		t.Error("long private key parsed")
	}
}

// TestHashWorkCounters signs with counters attached and sanity-checks the
// totals against the structural expectations the paper builds on: signing is
// dominated by >100k hash computations for the -f sets (paper §I).
func TestHashWorkCounters(t *testing.T) {
	p := params.SPHINCSPlus128f
	sk := testKey(t, p, 0x77)
	var c hashes.Counters
	if _, err := Sign(sk, []byte("count me"), &SignOptions{Counters: &c}); err != nil {
		t.Fatal(err)
	}
	// Expected structural hash-call count:
	//   FORS: k * (t PRF leaves + t F + (t-1) H) + 1 root compress
	//   HT:   d * (2^h' leaves * (len PRF + len*(w-1) F + 1 compress) + (2^h'-1) H + len chain F for the WOTS sig)
	// The WOTS signature chains re-run PRF+partial chains; we bound loosely.
	minThash := int64(p.K * (2*p.T - 1))
	if c.Thash < minThash {
		t.Errorf("Thash = %d, want >= %d", c.Thash, minThash)
	}
	if c.PRF < int64(p.K*p.T) {
		t.Errorf("PRF = %d, want >= %d", c.PRF, int64(p.K*p.T))
	}
	if c.Compress256 < 100000 {
		t.Errorf("Compress256 = %d, want >= 100000 (paper: >100k hashes)", c.Compress256)
	}
}

// TestMessageToIndicesProperties checks the FORS index extraction: indices
// are in range and the mapping is a bijection on the md bits it consumes.
func TestMessageToIndicesProperties(t *testing.T) {
	for _, p := range params.FastSets() {
		f := func(md []byte) bool {
			if len(md) < p.MDBytes {
				md = append(md, make([]byte, p.MDBytes-len(md))...)
			}
			idx := hashes.MessageToIndices(p, md[:p.MDBytes])
			if len(idx) != p.K {
				return false
			}
			for _, v := range idx {
				if v >= uint32(p.T) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

// TestSplitDigestRanges property-checks index extraction bounds.
func TestSplitDigestRanges(t *testing.T) {
	for _, p := range params.FastSets() {
		f := func(raw []byte) bool {
			if len(raw) < p.DigestBytes {
				raw = append(raw, make([]byte, p.DigestBytes-len(raw))...)
			}
			md, tree, leaf := hashes.SplitDigest(p, raw[:p.DigestBytes])
			if len(md) != p.MDBytes {
				return false
			}
			treeBits := uint(p.H - p.TreeHeight)
			if treeBits < 64 && tree >= 1<<treeBits {
				return false
			}
			return leaf < 1<<uint(p.TreeHeight)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func BenchmarkCPUReferenceSign128f(b *testing.B) {
	p := params.SPHINCSPlus128f
	sk := testKey(b, p, 0x99)
	msg := []byte("bench message")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sign(sk, msg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCPUReferenceVerify128f(b *testing.B) {
	p := params.SPHINCSPlus128f
	sk := testKey(b, p, 0x99)
	msg := []byte("bench message")
	sig, err := Sign(sk, msg, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(&sk.PublicKey, msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}
