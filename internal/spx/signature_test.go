package spx

import (
	"bytes"
	"testing"

	"herosign/internal/spx/params"
)

// TestParseEncodeRoundTrip: Parse then Encode is the identity for a real
// signature, and the component counts/lengths match the parameter set.
func TestParseEncodeRoundTrip(t *testing.T) {
	p := params.SPHINCSPlus128f
	sk := testKey(t, p, 0x42)
	msg := []byte("structure")
	sig, err := Sign(sk, msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParseSignature(p, sig)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.R) != p.N || len(s.Fors) != p.K || len(s.Layers) != p.D {
		t.Fatalf("structure: R=%d fors=%d layers=%d", len(s.R), len(s.Fors), len(s.Layers))
	}
	for i, f := range s.Fors {
		if len(f.SK) != p.N || len(f.Auth) != p.LogT*p.N {
			t.Fatalf("fors item %d lengths", i)
		}
	}
	for i, l := range s.Layers {
		if len(l.Wots) != p.WOTSBytes || len(l.Auth) != p.TreeHeight*p.N {
			t.Fatalf("layer %d lengths", i)
		}
	}
	if !bytes.Equal(s.Encode(), sig) {
		t.Fatal("Encode(Parse(sig)) != sig")
	}
}

// TestParseRejectsBadLength covers validation.
func TestParseRejectsBadLength(t *testing.T) {
	p := params.SPHINCSPlus128f
	if _, err := ParseSignature(p, make([]byte, p.SigBytes-1)); err == nil {
		t.Fatal("short signature parsed")
	}
	if _, err := ParseSignature(p, make([]byte, p.SigBytes+1)); err == nil {
		t.Fatal("long signature parsed")
	}
}

// TestParsedComponentsFeedVerification: swapping one parsed layer between
// two valid signatures and re-encoding must break verification — the
// structure view is faithful to verification semantics.
func TestParsedComponentsFeedVerification(t *testing.T) {
	p := params.SPHINCSPlus128f
	sk := testKey(t, p, 0x43)
	sigA, err := Sign(sk, []byte("A"), nil)
	if err != nil {
		t.Fatal(err)
	}
	sigB, err := Sign(sk, []byte("B"), nil)
	if err != nil {
		t.Fatal(err)
	}
	sa, _ := ParseSignature(p, sigA)
	sb, _ := ParseSignature(p, sigB)

	// Different messages almost surely use different hypertree paths, so a
	// transplanted top layer breaks the chain of roots.
	sa.Layers[p.D-1] = sb.Layers[p.D-1]
	if err := Verify(&sk.PublicKey, []byte("A"), sa.Encode()); err == nil {
		// The top layers could coincide only if both messages selected the
		// same top subtree AND same leaf — with identical keys the top
		// layer signs the same root only if all lower layers matched too.
		t.Fatal("transplanted layer verified")
	}
}
