package xmss

import (
	"bytes"
	"testing"

	"herosign/internal/spx/params"
)

// TestTreeNodesMatchesTreeHash: the node table's root and every leaf's auth
// path must be byte-identical to what TreeHash computes directly — the
// property that makes cached tables interchangeable with recomputation.
func TestTreeNodesMatchesTreeHash(t *testing.T) {
	for _, p := range []*params.Params{
		params.SPHINCSPlus128f, // height 3
		params.SPHINCSPlus256f, // height 4
		params.SPHINCSPlus128s, // height 9, multi-pass lane reduction
	} {
		t.Run(p.Name, func(t *testing.T) {
			ctx := testCtx(t, p)
			adrs := subtree(2, 42)
			nodes := make([]byte, NodesLen(p))
			TreeNodes(ctx, nodes, adrs)

			wantRoot := make([]byte, p.N)
			wantAuth := make([]byte, p.TreeHeight*p.N)
			gotRoot := make([]byte, p.N)
			gotAuth := make([]byte, p.TreeHeight*p.N)
			leaves := uint32(1) << uint(p.TreeHeight)
			stride := uint32(1)
			if leaves > 16 {
				stride = leaves/8 - 1 // sample odd offsets across tall trees
			}
			for leaf := uint32(0); leaf < leaves; leaf += stride {
				TreeHash(ctx, wantRoot, adrs, leaf, wantAuth)
				RootFromNodes(p, gotRoot, nodes)
				AuthFromNodes(p, gotAuth, nodes, leaf)
				if !bytes.Equal(gotRoot, wantRoot) {
					t.Fatalf("leaf %d: root differs from TreeHash", leaf)
				}
				if !bytes.Equal(gotAuth, wantAuth) {
					t.Fatalf("leaf %d: auth path differs from TreeHash", leaf)
				}
			}
		})
	}
}

// TestTreeNodesLeafLevel: the table's first segment is the leaf level in
// index order (GenLeaf output), which Warm relies on when prefilling WOTS
// slots from child roots.
func TestTreeNodesLeafLevel(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := testCtx(t, p)
	adrs := subtree(1, 7)
	nodes := make([]byte, NodesLen(p))
	TreeNodes(ctx, nodes, adrs)
	leaf := make([]byte, p.N)
	for i := uint32(0); i < 1<<uint(p.TreeHeight); i++ {
		GenLeaf(ctx, leaf, adrs, i)
		if !bytes.Equal(leaf, nodes[int(i)*p.N:(int(i)+1)*p.N]) {
			t.Fatalf("leaf %d not at table offset %d", i, int(i)*p.N)
		}
	}
}
