package xmss

import (
	"bytes"
	"testing"

	"herosign/internal/spx/address"
	"herosign/internal/spx/hashes"
	"herosign/internal/spx/params"
)

func testCtx(t testing.TB, p *params.Params) *hashes.Ctx {
	t.Helper()
	pkSeed := make([]byte, p.N)
	skSeed := make([]byte, p.N)
	for i := range pkSeed {
		pkSeed[i] = byte(i + 17)
		skSeed[i] = byte(6 * i)
	}
	return hashes.NewCtx(p, pkSeed, skSeed)
}

func subtree(layer uint32, tree uint64) *address.Address {
	var a address.Address
	a.SetLayer(layer)
	a.SetTree(tree)
	return &a
}

// TestSignThenRecoverEveryLeaf signs with every leaf of a 128f subtree
// (height 3, 8 leaves) and checks PKFromSig reproduces the root each time.
func TestSignThenRecoverEveryLeaf(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := testCtx(t, p)
	adrs := subtree(2, 1234)
	msg := make([]byte, p.N)
	for i := range msg {
		msg[i] = byte(i * 3)
	}

	wantRoot := make([]byte, p.N)
	TreeHash(ctx, wantRoot, adrs, 0, nil)

	for leaf := uint32(0); leaf < 1<<uint(p.TreeHeight); leaf++ {
		sig := make([]byte, p.XMSSBytes)
		root := make([]byte, p.N)
		Sign(ctx, root, sig, msg, adrs, leaf)
		if !bytes.Equal(root, wantRoot) {
			t.Fatalf("leaf %d: Sign returned a different root", leaf)
		}
		rec := make([]byte, p.N)
		PKFromSig(ctx, rec, sig, msg, adrs, leaf)
		if !bytes.Equal(rec, wantRoot) {
			t.Fatalf("leaf %d: PKFromSig root mismatch", leaf)
		}
	}
}

// TestRootIndependentOfAuthLeaf: TreeHash's root must not depend on which
// leaf's auth path is collected.
func TestRootIndependentOfAuthLeaf(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := testCtx(t, p)
	adrs := subtree(0, 9)
	r1 := make([]byte, p.N)
	r2 := make([]byte, p.N)
	auth := make([]byte, p.TreeHeight*p.N)
	TreeHash(ctx, r1, adrs, 0, auth)
	TreeHash(ctx, r2, adrs, 5, auth)
	if !bytes.Equal(r1, r2) {
		t.Fatal("root depends on auth leaf index")
	}
}

// TestRecoverRejectsWrongLeafIndex: a valid signature presented under a
// different leaf index must not reproduce the root.
func TestRecoverRejectsWrongLeafIndex(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := testCtx(t, p)
	adrs := subtree(1, 77)
	msg := make([]byte, p.N)
	sig := make([]byte, p.XMSSBytes)
	root := make([]byte, p.N)
	Sign(ctx, root, sig, msg, adrs, 3)
	rec := make([]byte, p.N)
	PKFromSig(ctx, rec, sig, msg, adrs, 4)
	if bytes.Equal(rec, root) {
		t.Fatal("wrong leaf index recovered the root")
	}
}

// TestSubtreeSeparation: the same key material produces different roots for
// different (layer, tree) identities.
func TestSubtreeSeparation(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := testCtx(t, p)
	r1 := make([]byte, p.N)
	r2 := make([]byte, p.N)
	r3 := make([]byte, p.N)
	TreeHash(ctx, r1, subtree(0, 5), 0, nil)
	TreeHash(ctx, r2, subtree(0, 6), 0, nil)
	TreeHash(ctx, r3, subtree(1, 5), 0, nil)
	if bytes.Equal(r1, r2) || bytes.Equal(r1, r3) {
		t.Fatal("subtree identity does not separate roots")
	}
}

// TestGenLeafMatchesManualClimb: leaf i hashed up the auth path of leaf i
// gives the root (cross-checks GenLeaf against TreeHash's auth output).
func TestGenLeafMatchesManualClimb(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := testCtx(t, p)
	adrs := subtree(3, 21)
	const leaf = 6

	root := make([]byte, p.N)
	auth := make([]byte, p.TreeHeight*p.N)
	TreeHash(ctx, root, adrs, leaf, auth)

	node := make([]byte, p.N)
	GenLeaf(ctx, node, adrs, leaf)
	var nodeAdrs address.Address
	nodeAdrs.CopySubtree(adrs)
	nodeAdrs.SetType(address.Tree)
	idx := uint32(leaf)
	for h := 0; h < p.TreeHeight; h++ {
		nodeAdrs.SetTreeHeight(uint32(h + 1))
		nodeAdrs.SetTreeIndex(idx >> 1)
		sib := auth[h*p.N : (h+1)*p.N]
		if idx&1 == 0 {
			ctx.H(node, node, sib, &nodeAdrs)
		} else {
			ctx.H(node, sib, node, &nodeAdrs)
		}
		idx >>= 1
	}
	if !bytes.Equal(node, root) {
		t.Fatal("manual climb does not reach TreeHash's root")
	}
}
