// Package xmss implements the fixed-height Merkle signature scheme (the
// paper's "MSS") that forms each layer of the SPHINCS+ hypertree: a binary
// Merkle tree whose leaves are compressed WOTS+ public keys.
//
// Node-level primitives are exported so the simulated TREE_Sign kernel can
// distribute leaf generation (wots_gen_leaf) and the tree reduction across
// threads, while Sign/Root remain the sequential reference used as the
// correctness oracle.
package xmss

import (
	"herosign/internal/spx/address"
	"herosign/internal/spx/hashes"
	"herosign/internal/spx/wots"
)

// GenLeaf computes leaf leafIdx of the subtree identified by treeAdrs
// (layer/tree set): the compressed WOTS+ public key of that key pair. This
// corresponds to the CUDA wots_gen_leaf routine the paper highlights as the
// register-pressure hot spot.
func GenLeaf(ctx *hashes.Ctx, out []byte, treeAdrs *address.Address, leafIdx uint32) {
	var adrs address.Address
	adrs.CopySubtree(treeAdrs)
	adrs.SetType(address.WOTSHash)
	adrs.SetKeyPair(leafIdx)
	wots.PKGen(ctx, out, &adrs)
}

// TreeHash computes the subtree root, optionally collecting the
// authentication path for leafIdx into auth (TreeHeight*N bytes, nil to
// skip). It materializes the full leaf level — subtrees have at most
// 2^TreeHeight <= 16 leaves for the -f sets, and at most 512 for -s.
func TreeHash(ctx *hashes.Ctx, root []byte, treeAdrs *address.Address, leafIdx uint32, auth []byte) {
	p := ctx.P
	width := 1 << uint(p.TreeHeight)
	level := make([]byte, width*p.N)
	for i := 0; i < width; i++ {
		GenLeaf(ctx, level[i*p.N:(i+1)*p.N], treeAdrs, uint32(i))
	}
	var nodeAdrs address.Address
	nodeAdrs.CopySubtree(treeAdrs)
	nodeAdrs.SetType(address.Tree)

	idx := leafIdx
	for h := 0; h < p.TreeHeight; h++ {
		if auth != nil {
			sib := idx ^ 1
			copy(auth[h*p.N:(h+1)*p.N], level[int(sib)*p.N:int(sib+1)*p.N])
		}
		nodeAdrs.SetTreeHeight(uint32(h + 1))
		for i := 0; i < width/2; i++ {
			nodeAdrs.SetTreeIndex(uint32(i))
			ctx.H(level[i*p.N:(i+1)*p.N],
				level[2*i*p.N:(2*i+1)*p.N],
				level[(2*i+1)*p.N:(2*i+2)*p.N],
				&nodeAdrs)
		}
		width /= 2
		idx >>= 1
	}
	copy(root[:p.N], level[:p.N])
}

// Sign produces one XMSS layer signature: the WOTS+ signature of msg under
// the leaf key pair leafIdx, followed by the authentication path. It also
// returns the subtree root (which the next layer up signs).
// sig must be XMSSBytes long.
func Sign(ctx *hashes.Ctx, sig, msg []byte, treeAdrs *address.Address, leafIdx uint32) []byte {
	p := ctx.P
	var wotsAdrs address.Address
	wotsAdrs.CopySubtree(treeAdrs)
	wotsAdrs.SetType(address.WOTSHash)
	wotsAdrs.SetKeyPair(leafIdx)
	wots.Sign(ctx, sig[:p.WOTSBytes], msg, &wotsAdrs)

	root := make([]byte, p.N)
	TreeHash(ctx, root, treeAdrs, leafIdx, sig[p.WOTSBytes:])
	return root
}

// PKFromSig recomputes the subtree root from an XMSS signature: recover the
// WOTS+ public key, then climb the authentication path.
func PKFromSig(ctx *hashes.Ctx, sig, msg []byte, treeAdrs *address.Address, leafIdx uint32) []byte {
	p := ctx.P
	var wotsAdrs address.Address
	wotsAdrs.CopySubtree(treeAdrs)
	wotsAdrs.SetType(address.WOTSHash)
	wotsAdrs.SetKeyPair(leafIdx)

	node := make([]byte, p.N)
	wots.PKFromSig(ctx, node, sig[:p.WOTSBytes], msg, &wotsAdrs)

	var nodeAdrs address.Address
	nodeAdrs.CopySubtree(treeAdrs)
	nodeAdrs.SetType(address.Tree)
	auth := sig[p.WOTSBytes:]
	idx := leafIdx
	for h := 0; h < p.TreeHeight; h++ {
		nodeAdrs.SetTreeHeight(uint32(h + 1))
		nodeAdrs.SetTreeIndex(idx >> 1)
		authNode := auth[h*p.N : (h+1)*p.N]
		if idx&1 == 0 {
			ctx.H(node, node, authNode, &nodeAdrs)
		} else {
			ctx.H(node, authNode, node, &nodeAdrs)
		}
		idx >>= 1
	}
	return node
}
