// Package xmss implements the fixed-height Merkle signature scheme (the
// paper's "MSS") that forms each layer of the SPHINCS+ hypertree: a binary
// Merkle tree whose leaves are compressed WOTS+ public keys.
//
// Node-level primitives are exported so the simulated TREE_Sign kernel can
// distribute leaf generation (wots_gen_leaf) and the tree reduction across
// threads, while Sign/Root remain the sequential reference used as the
// correctness oracle. Leaf generation runs on the lane-batched WOTS+ chain
// stepper and each reduction level folds its nodes in multi-lane H passes.
package xmss

import (
	"herosign/internal/spx/address"
	"herosign/internal/spx/hashes"
	"herosign/internal/spx/params"
	"herosign/internal/spx/wots"
)

// GenLeaf computes leaf leafIdx of the subtree identified by treeAdrs
// (layer/tree set): the compressed WOTS+ public key of that key pair. This
// corresponds to the CUDA wots_gen_leaf routine the paper highlights as the
// register-pressure hot spot.
func GenLeaf(ctx *hashes.Ctx, out []byte, treeAdrs *address.Address, leafIdx uint32) {
	var adrs address.Address
	adrs.CopySubtree(treeAdrs)
	adrs.SetType(address.WOTSHash)
	adrs.SetKeyPair(leafIdx)
	wots.PKGen(ctx, out, &adrs)
}

// reduceLevel folds one level of width nodes in place with lane-batched H
// calls (hashes.HReduceLevel); h is the (1-based) height of the produced
// nodes.
func reduceLevel(ctx *hashes.Ctx, level []byte, width int, treeAdrs *address.Address, h int) {
	ctx.HReduceLevel(level, width, func(a *address.Address, i int) {
		a.CopySubtree(treeAdrs)
		a.SetType(address.Tree)
		a.SetTreeHeight(uint32(h))
		a.SetTreeIndex(uint32(i))
	})
}

// TreeHash computes the subtree root into root, optionally collecting the
// authentication path for leafIdx into auth (TreeHeight*N bytes, nil to
// skip). It materializes the full leaf level — subtrees have at most
// 2^TreeHeight <= 16 leaves for the -f sets, and at most 512 for -s.
func TreeHash(ctx *hashes.Ctx, root []byte, treeAdrs *address.Address, leafIdx uint32, auth []byte) {
	p := ctx.P
	width := 1 << uint(p.TreeHeight)
	level := ctx.XMSSLevelBuf()
	for i := 0; i < width; i++ {
		GenLeaf(ctx, level[i*p.N:(i+1)*p.N], treeAdrs, uint32(i))
	}

	idx := leafIdx
	for h := 0; h < p.TreeHeight; h++ {
		if auth != nil {
			sib := idx ^ 1
			copy(auth[h*p.N:(h+1)*p.N], level[int(sib)*p.N:int(sib+1)*p.N])
		}
		reduceLevel(ctx, level, width, treeAdrs, h+1)
		width /= 2
		idx >>= 1
	}
	copy(root[:p.N], level[:p.N])
}

// NodesLen returns the byte length of the full node table TreeNodes fills:
// every node of one subtree, level by level from the leaves up
// (2^TreeHeight + 2^(TreeHeight-1) + ... + 1 = 2*2^TreeHeight - 1 nodes of
// N bytes each).
func NodesLen(p *params.Params) int {
	return (2*(1<<uint(p.TreeHeight)) - 1) * p.N
}

// TreeNodes computes every node of the subtree identified by treeAdrs into
// nodes (NodesLen bytes): the leaf level first, then each reduction level,
// the root last. It runs the same lane-batched reduction as TreeHash — only
// the destination differs — so a cached node table is byte-identical to
// what TreeHash would recompute on every signature.
func TreeNodes(ctx *hashes.Ctx, nodes []byte, treeAdrs *address.Address) {
	p := ctx.P
	width := 1 << uint(p.TreeHeight)
	for i := 0; i < width; i++ {
		GenLeaf(ctx, nodes[i*p.N:(i+1)*p.N], treeAdrs, uint32(i))
	}
	level := ctx.XMSSLevelBuf()
	copy(level, nodes[:width*p.N])
	off := width * p.N
	for h := 0; h < p.TreeHeight; h++ {
		reduceLevel(ctx, level, width, treeAdrs, h+1)
		width /= 2
		copy(nodes[off:off+width*p.N], level[:width*p.N])
		off += width * p.N
	}
}

// AuthFromNodes copies the authentication path for leafIdx out of a
// TreeNodes table into auth (TreeHeight*N bytes) without hashing.
func AuthFromNodes(p *params.Params, auth, nodes []byte, leafIdx uint32) {
	width := 1 << uint(p.TreeHeight)
	off := 0
	idx := int(leafIdx)
	for h := 0; h < p.TreeHeight; h++ {
		sib := idx ^ 1
		copy(auth[h*p.N:(h+1)*p.N], nodes[off+sib*p.N:off+(sib+1)*p.N])
		off += width * p.N
		width /= 2
		idx >>= 1
	}
}

// RootFromNodes copies the subtree root (the last node) out of a TreeNodes
// table into root (N bytes).
func RootFromNodes(p *params.Params, root, nodes []byte) {
	copy(root[:p.N], nodes[len(nodes)-p.N:])
}

// Sign produces one XMSS layer signature: the WOTS+ signature of msg under
// the leaf key pair leafIdx, followed by the authentication path. The
// subtree root (which the next layer up signs) is written to root (N
// bytes); sig must be XMSSBytes long. root must not alias sig, but may
// alias msg: msg is fully consumed before the root is written.
func Sign(ctx *hashes.Ctx, root, sig, msg []byte, treeAdrs *address.Address, leafIdx uint32) {
	p := ctx.P
	var wotsAdrs address.Address
	wotsAdrs.CopySubtree(treeAdrs)
	wotsAdrs.SetType(address.WOTSHash)
	wotsAdrs.SetKeyPair(leafIdx)
	wots.Sign(ctx, sig[:p.WOTSBytes], msg, &wotsAdrs)

	TreeHash(ctx, root, treeAdrs, leafIdx, sig[p.WOTSBytes:])
}

// PKFromSig recomputes the subtree root from an XMSS signature into root
// (N bytes): recover the WOTS+ public key, then climb the authentication
// path. root may alias msg.
func PKFromSig(ctx *hashes.Ctx, root, sig, msg []byte, treeAdrs *address.Address, leafIdx uint32) {
	p := ctx.P
	var wotsAdrs address.Address
	wotsAdrs.CopySubtree(treeAdrs)
	wotsAdrs.SetType(address.WOTSHash)
	wotsAdrs.SetKeyPair(leafIdx)

	var node [32]byte // N <= 32
	wots.PKFromSig(ctx, node[:p.N], sig[:p.WOTSBytes], msg, &wotsAdrs)

	var nodeAdrs address.Address
	nodeAdrs.CopySubtree(treeAdrs)
	nodeAdrs.SetType(address.Tree)
	auth := sig[p.WOTSBytes:]
	idx := leafIdx
	for h := 0; h < p.TreeHeight; h++ {
		nodeAdrs.SetTreeHeight(uint32(h + 1))
		nodeAdrs.SetTreeIndex(idx >> 1)
		authNode := auth[h*p.N : (h+1)*p.N]
		if idx&1 == 0 {
			ctx.H(node[:p.N], node[:p.N], authNode, &nodeAdrs)
		} else {
			ctx.H(node[:p.N], authNode, node[:p.N], &nodeAdrs)
		}
		idx >>= 1
	}
	copy(root[:p.N], node[:p.N])
}
