// Package xmss implements the fixed-height Merkle signature scheme (the
// paper's "MSS") that forms each layer of the SPHINCS+ hypertree: a binary
// Merkle tree whose leaves are compressed WOTS+ public keys.
//
// Node-level primitives are exported so the simulated TREE_Sign kernel can
// distribute leaf generation (wots_gen_leaf) and the tree reduction across
// threads, while Sign/Root remain the sequential reference used as the
// correctness oracle. Leaf generation runs on the lane-batched WOTS+ chain
// stepper and each reduction level folds its nodes in multi-lane H passes.
package xmss

import (
	"herosign/internal/sha2"
	"herosign/internal/spx/address"
	"herosign/internal/spx/hashes"
	"herosign/internal/spx/params"
	"herosign/internal/spx/wots"
)

// GenLeaf computes leaf leafIdx of the subtree identified by treeAdrs
// (layer/tree set): the compressed WOTS+ public key of that key pair. This
// corresponds to the CUDA wots_gen_leaf routine the paper highlights as the
// register-pressure hot spot.
func GenLeaf(ctx *hashes.Ctx, out []byte, treeAdrs *address.Address, leafIdx uint32) {
	var adrs address.Address
	adrs.CopySubtree(treeAdrs)
	adrs.SetType(address.WOTSHash)
	adrs.SetKeyPair(leafIdx)
	wots.PKGen(ctx, out, &adrs)
}

// reduceLevel folds one level of width nodes in place with lane-batched H
// calls (hashes.HReduceLevel); h is the (1-based) height of the produced
// nodes.
func reduceLevel(ctx *hashes.Ctx, level []byte, width int, treeAdrs *address.Address, h int) {
	ctx.HReduceLevel(level, width, func(a *address.Address, i int) {
		a.CopySubtree(treeAdrs)
		a.SetType(address.Tree)
		a.SetTreeHeight(uint32(h))
		a.SetTreeIndex(uint32(i))
	})
}

// TreeHash computes the subtree root into root, optionally collecting the
// authentication path for leafIdx into auth (TreeHeight*N bytes, nil to
// skip). It materializes the full leaf level — subtrees have at most
// 2^TreeHeight <= 16 leaves for the -f sets, and at most 512 for -s.
func TreeHash(ctx *hashes.Ctx, root []byte, treeAdrs *address.Address, leafIdx uint32, auth []byte) {
	p := ctx.P
	width := 1 << uint(p.TreeHeight)
	level := ctx.XMSSLevelBuf()
	for i := 0; i < width; i++ {
		GenLeaf(ctx, level[i*p.N:(i+1)*p.N], treeAdrs, uint32(i))
	}

	idx := leafIdx
	for h := 0; h < p.TreeHeight; h++ {
		if auth != nil {
			sib := idx ^ 1
			copy(auth[h*p.N:(h+1)*p.N], level[int(sib)*p.N:int(sib+1)*p.N])
		}
		reduceLevel(ctx, level, width, treeAdrs, h+1)
		width /= 2
		idx >>= 1
	}
	copy(root[:p.N], level[:p.N])
}

// NodesLen returns the byte length of the full node table TreeNodes fills:
// every node of one subtree, level by level from the leaves up
// (2^TreeHeight + 2^(TreeHeight-1) + ... + 1 = 2*2^TreeHeight - 1 nodes of
// N bytes each).
func NodesLen(p *params.Params) int {
	return (2*(1<<uint(p.TreeHeight)) - 1) * p.N
}

// TreeNodes computes every node of the subtree identified by treeAdrs into
// nodes (NodesLen bytes): the leaf level first, then each reduction level,
// the root last. It runs the same lane-batched reduction as TreeHash — only
// the destination differs — so a cached node table is byte-identical to
// what TreeHash would recompute on every signature.
func TreeNodes(ctx *hashes.Ctx, nodes []byte, treeAdrs *address.Address) {
	p := ctx.P
	width := 1 << uint(p.TreeHeight)
	for i := 0; i < width; i++ {
		GenLeaf(ctx, nodes[i*p.N:(i+1)*p.N], treeAdrs, uint32(i))
	}
	level := ctx.XMSSLevelBuf()
	copy(level, nodes[:width*p.N])
	off := width * p.N
	for h := 0; h < p.TreeHeight; h++ {
		reduceLevel(ctx, level, width, treeAdrs, h+1)
		width /= 2
		copy(nodes[off:off+width*p.N], level[:width*p.N])
		off += width * p.N
	}
}

// AuthFromNodes copies the authentication path for leafIdx out of a
// TreeNodes table into auth (TreeHeight*N bytes) without hashing.
func AuthFromNodes(p *params.Params, auth, nodes []byte, leafIdx uint32) {
	width := 1 << uint(p.TreeHeight)
	off := 0
	idx := int(leafIdx)
	for h := 0; h < p.TreeHeight; h++ {
		sib := idx ^ 1
		copy(auth[h*p.N:(h+1)*p.N], nodes[off+sib*p.N:off+(sib+1)*p.N])
		off += width * p.N
		width /= 2
		idx >>= 1
	}
}

// RootFromNodes copies the subtree root (the last node) out of a TreeNodes
// table into root (N bytes).
func RootFromNodes(p *params.Params, root, nodes []byte) {
	copy(root[:p.N], nodes[len(nodes)-p.N:])
}

// Sign produces one XMSS layer signature: the WOTS+ signature of msg under
// the leaf key pair leafIdx, followed by the authentication path. The
// subtree root (which the next layer up signs) is written to root (N
// bytes); sig must be XMSSBytes long. root must not alias sig, but may
// alias msg: msg is fully consumed before the root is written.
func Sign(ctx *hashes.Ctx, root, sig, msg []byte, treeAdrs *address.Address, leafIdx uint32) {
	p := ctx.P
	var wotsAdrs address.Address
	wotsAdrs.CopySubtree(treeAdrs)
	wotsAdrs.SetType(address.WOTSHash)
	wotsAdrs.SetKeyPair(leafIdx)
	wots.Sign(ctx, sig[:p.WOTSBytes], msg, &wotsAdrs)

	TreeHash(ctx, root, treeAdrs, leafIdx, sig[p.WOTSBytes:])
}

// PKFromSigBatch recomputes b subtree roots at once, one per signature:
// the WOTS+ public-key recoveries run cross-signature step-synchronously
// (wots.PKFromSigBatch) and the b authentication-path climbs advance
// level-synchronously in multi-lane H passes. roots holds the b N-byte
// signed messages on entry and receives the b recovered roots on exit (the
// in-place convention the hypertree layer chain uses; every message is
// consumed before the first root byte is written). treeAdrs[j] identifies
// signature j's subtree (layer/tree set) and leafIdxs[j] its leaf. Outputs
// are byte-identical to b scalar PKFromSig calls.
func PKFromSigBatch(ctx *hashes.Ctx, b int, roots []byte, sigs *[sha2.Lanes][]byte, treeAdrs *[sha2.Lanes]address.Address, leafIdxs *[sha2.Lanes]uint32) {
	p := ctx.P
	var wotsAdrs [sha2.Lanes]address.Address
	var msgs, nodes [sha2.Lanes][]byte
	for j := 0; j < b; j++ {
		wotsAdrs[j].CopySubtree(&treeAdrs[j])
		wotsAdrs[j].SetType(address.WOTSHash)
		wotsAdrs[j].SetKeyPair(leafIdxs[j])
		msgs[j] = roots[j*p.N : (j+1)*p.N]
	}
	// The recovered WOTS public keys overwrite the messages in place —
	// PKFromSigBatch reads every message before writing any key.
	wots.PKFromSigBatch(ctx, b, roots[:b*p.N], sigs, &msgs, &wotsAdrs)

	var idxs [sha2.Lanes]uint32
	var lanes [sha2.Lanes]address.Address
	var lefts, rights [sha2.Lanes][]byte
	for j := 0; j < b; j++ {
		idxs[j] = leafIdxs[j]
		nodes[j] = roots[j*p.N : (j+1)*p.N]
	}
	for j := 0; j < b; j++ {
		lanes[j].CopySubtree(&treeAdrs[j])
		lanes[j].SetType(address.Tree)
	}
	for h := 0; h < p.TreeHeight; h++ {
		for j := 0; j < b; j++ {
			authNode := sigs[j][p.WOTSBytes+h*p.N : p.WOTSBytes+(h+1)*p.N]
			if idxs[j]&1 == 0 {
				lefts[j] = nodes[j]
				rights[j] = authNode
			} else {
				lefts[j] = authNode
				rights[j] = nodes[j]
			}
			lanes[j].SetTreeHeight(uint32(h + 1))
			lanes[j].SetTreeIndex(idxs[j] >> 1)
			idxs[j] >>= 1
		}
		ctx.HLanes(b, &nodes, &lefts, &rights, &lanes)
	}
}

// PKFromSig recomputes the subtree root from an XMSS signature into root
// (N bytes): recover the WOTS+ public key, then climb the authentication
// path. root may alias msg.
func PKFromSig(ctx *hashes.Ctx, root, sig, msg []byte, treeAdrs *address.Address, leafIdx uint32) {
	p := ctx.P
	var wotsAdrs address.Address
	wotsAdrs.CopySubtree(treeAdrs)
	wotsAdrs.SetType(address.WOTSHash)
	wotsAdrs.SetKeyPair(leafIdx)

	// The climb node lives in the context arena: a stack array would escape
	// (and allocate) per call through the scalar H's engine-backed path.
	node := ctx.XMSSNodeBuf()
	wots.PKFromSig(ctx, node, sig[:p.WOTSBytes], msg, &wotsAdrs)

	var nodeAdrs address.Address
	nodeAdrs.CopySubtree(treeAdrs)
	nodeAdrs.SetType(address.Tree)
	auth := sig[p.WOTSBytes:]
	idx := leafIdx
	for h := 0; h < p.TreeHeight; h++ {
		nodeAdrs.SetTreeHeight(uint32(h + 1))
		nodeAdrs.SetTreeIndex(idx >> 1)
		authNode := auth[h*p.N : (h+1)*p.N]
		if idx&1 == 0 {
			ctx.H(node, node, authNode, &nodeAdrs)
		} else {
			ctx.H(node, authNode, node, &nodeAdrs)
		}
		idx >>= 1
	}
	copy(root[:p.N], node)
}
