package wots

import (
	"bytes"
	"testing"
	"testing/quick"

	"herosign/internal/spx/address"
	"herosign/internal/spx/hashes"
	"herosign/internal/spx/params"
)

func testCtx(t testing.TB, p *params.Params) *hashes.Ctx {
	t.Helper()
	pkSeed := make([]byte, p.N)
	skSeed := make([]byte, p.N)
	for i := range pkSeed {
		pkSeed[i] = byte(3 * i)
		skSeed[i] = byte(5*i + 1)
	}
	return hashes.NewCtx(p, pkSeed, skSeed)
}

// TestChainLengthsChecksum verifies the defining checksum property: the
// message digits and checksum digits satisfy csum = Σ(w-1-digit).
func TestChainLengthsChecksum(t *testing.T) {
	for _, p := range params.FastSets() {
		msg := make([]byte, p.N)
		for i := range msg {
			msg[i] = byte(i*37 + 11)
		}
		lengths := ChainLengths(p, msg)
		if len(lengths) != p.WOTSLen {
			t.Fatalf("%s: %d digits, want %d", p.Name, len(lengths), p.WOTSLen)
		}
		var csum uint32
		for _, d := range lengths[:p.WOTSLen1] {
			if d >= uint32(p.W) {
				t.Fatalf("%s: digit %d out of range", p.Name, d)
			}
			csum += uint32(p.W-1) - d
		}
		// Reassemble the checksum from its base-w digits. For the -f sets
		// (w=16, len2=3) the encoder's alignment shift cancels exactly, so
		// the reassembled value equals csum.
		var got uint32
		for _, d := range lengths[p.WOTSLen1:] {
			got = got<<uint(p.LogW) | d
		}
		if got != csum {
			t.Fatalf("%s: checksum digits %d != csum %d", p.Name, got, csum)
		}
	}
}

// TestChainLengthsFirstDigitsAreNibbles pins the base-w split (w=16: high
// nibble first).
func TestChainLengthsFirstDigitsAreNibbles(t *testing.T) {
	p := params.SPHINCSPlus128f
	msg := make([]byte, p.N)
	msg[0] = 0xAB
	msg[1] = 0xCD
	lengths := ChainLengths(p, msg)
	if lengths[0] != 0xA || lengths[1] != 0xB || lengths[2] != 0xC || lengths[3] != 0xD {
		t.Fatalf("digits = %v", lengths[:4])
	}
}

// TestGenChainComposition: F^a then F^b equals F^(a+b).
func TestGenChainComposition(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := testCtx(t, p)
	var adrs address.Address
	adrs.SetType(address.WOTSHash)
	adrs.SetChain(4)

	start := make([]byte, p.N)
	for i := range start {
		start[i] = byte(i)
	}
	oneShot := make([]byte, p.N)
	GenChain(ctx, oneShot, start, 0, 9, &adrs)

	twoStep := make([]byte, p.N)
	GenChain(ctx, twoStep, start, 0, 4, &adrs)
	GenChain(ctx, twoStep, twoStep, 4, 5, &adrs)
	if !bytes.Equal(oneShot, twoStep) {
		t.Fatal("chain composition broken")
	}
}

// TestGenChainClampsAtW: steps beyond w-1 are clamped by the loop bound.
func TestGenChainClampsAtW(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := testCtx(t, p)
	var adrs address.Address
	start := make([]byte, p.N)
	a := make([]byte, p.N)
	b := make([]byte, p.N)
	// The reference clamp is i < w: any step count >= w walks the full
	// chain and no further.
	GenChain(ctx, a, start, 0, uint32(p.W), &adrs)
	GenChain(ctx, b, start, 0, uint32(p.W+5), &adrs)
	if !bytes.Equal(a, b) {
		t.Fatal("chain did not clamp at w")
	}
}

// TestSignThenRecover is the core WOTS+ property: PKFromSig over a valid
// signature reproduces PKGen's compressed public key.
func TestSignThenRecover(t *testing.T) {
	for _, p := range params.FastSets() {
		ctx := testCtx(t, p)
		var adrs address.Address
		adrs.SetLayer(1)
		adrs.SetTree(99)
		adrs.SetType(address.WOTSHash)
		adrs.SetKeyPair(13)

		pk := make([]byte, p.N)
		PKGen(ctx, pk, &adrs)

		msg := make([]byte, p.N)
		for i := range msg {
			msg[i] = byte(i*7 + 3)
		}
		sig := make([]byte, p.WOTSBytes)
		Sign(ctx, sig, msg, &adrs)

		rec := make([]byte, p.N)
		PKFromSig(ctx, rec, sig, msg, &adrs)
		if !bytes.Equal(pk, rec) {
			t.Fatalf("%s: recovered pk mismatch", p.Name)
		}
	}
}

// TestRecoverRejectsWrongMessage: a different message must not recover the
// same public key (the unforgeability mechanism at the chain level).
func TestRecoverRejectsWrongMessage(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := testCtx(t, p)
	var adrs address.Address
	adrs.SetType(address.WOTSHash)

	pk := make([]byte, p.N)
	PKGen(ctx, pk, &adrs)
	msg := make([]byte, p.N)
	sig := make([]byte, p.WOTSBytes)
	Sign(ctx, sig, msg, &adrs)

	wrong := append([]byte(nil), msg...)
	wrong[0] ^= 0xFF
	rec := make([]byte, p.N)
	PKFromSig(ctx, rec, sig, wrong, &adrs)
	if bytes.Equal(pk, rec) {
		t.Fatal("wrong message recovered the correct pk")
	}
}

// TestQuickSignRecover is the property-based version of sign/recover over
// random messages.
func TestQuickSignRecover(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := testCtx(t, p)
	var adrs address.Address
	adrs.SetType(address.WOTSHash)
	pk := make([]byte, p.N)
	PKGen(ctx, pk, &adrs)

	f := func(raw []byte) bool {
		msg := make([]byte, p.N)
		copy(msg, raw)
		sig := make([]byte, p.WOTSBytes)
		Sign(ctx, sig, msg, &adrs)
		rec := make([]byte, p.N)
		PKFromSig(ctx, rec, sig, msg, &adrs)
		return bytes.Equal(pk, rec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestChainSKDeterminism: the chain secret depends only on (chain, keypair,
// subtree), not on mutable hash/height words.
func TestChainSKDeterminism(t *testing.T) {
	p := params.SPHINCSPlus128f
	ctx := testCtx(t, p)
	var a1, a2 address.Address
	a1.SetType(address.WOTSHash)
	a1.SetKeyPair(5)
	a2 = a1
	a2.SetHash(12) // must be irrelevant to the PRF address

	s1 := make([]byte, p.N)
	s2 := make([]byte, p.N)
	ChainSK(ctx, s1, 3, &a1)
	ChainSK(ctx, s2, 3, &a2)
	if !bytes.Equal(s1, s2) {
		t.Fatal("chain secret depends on the hash word")
	}
	ChainSK(ctx, s2, 4, &a1)
	if bytes.Equal(s1, s2) {
		t.Fatal("different chains share a secret")
	}
}
