package wots

import (
	"testing"

	"herosign/internal/sha2"
	"herosign/internal/spx/address"
	"herosign/internal/spx/hashes"
	"herosign/internal/spx/params"
)

// TestChainStepZeroAlloc: the satellite regression — advancing a WOTS+
// chain by one F step must not allocate, on either backend, and neither
// must a whole batched PKGen or Sign after warm-up.
func TestChainStepZeroAlloc(t *testing.T) {
	p := params.SPHINCSPlus128f
	pkSeed := make([]byte, p.N)
	skSeed := make([]byte, p.N)
	ctx := hashes.NewCtx(p, pkSeed, skSeed)

	var adrs address.Address
	adrs.SetType(address.WOTSHash)
	adrs.SetKeyPair(3)
	adrs.SetChain(5)
	node := make([]byte, p.N)
	sig := make([]byte, p.WOTSBytes)
	msg := make([]byte, p.N)
	out := make([]byte, p.N)

	for _, accel := range []bool{true, false} {
		prev := sha2.SetAccelerated(accel)
		if allocs := testing.AllocsPerRun(100, func() {
			GenChain(ctx, node, node, 0, 1, &adrs)
		}); allocs != 0 {
			t.Errorf("accel=%v: GenChain step allocates (%v)", accel, allocs)
		}
		if allocs := testing.AllocsPerRun(20, func() {
			Sign(ctx, sig, msg, &adrs)
		}); allocs != 0 {
			t.Errorf("accel=%v: Sign allocates (%v)", accel, allocs)
		}
		if allocs := testing.AllocsPerRun(10, func() {
			PKGen(ctx, out, &adrs)
		}); allocs != 0 {
			t.Errorf("accel=%v: PKGen allocates (%v)", accel, allocs)
		}
		sha2.SetAccelerated(prev)
	}
}

// TestMaxLenCoversAllSets enforces the wotsMaxLen invariant the batched
// stack arrays rely on: every registered parameter set must fit.
func TestMaxLenCoversAllSets(t *testing.T) {
	for _, p := range params.AllSets() {
		if p.WOTSLen > wotsMaxLen {
			t.Errorf("%s: WOTSLen %d exceeds wotsMaxLen %d", p.Name, p.WOTSLen, wotsMaxLen)
		}
	}
}

// BenchmarkPKGen measures one full lane-batched WOTS+ public-key
// generation (all chains to their end plus T_len).
func BenchmarkPKGen(b *testing.B) {
	p := params.SPHINCSPlus128f
	pkSeed := make([]byte, p.N)
	skSeed := make([]byte, p.N)
	ctx := hashes.NewCtx(p, pkSeed, skSeed)
	var adrs address.Address
	adrs.SetType(address.WOTSHash)
	out := make([]byte, p.N)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PKGen(ctx, out, &adrs)
	}
}
