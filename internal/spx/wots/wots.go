// Package wots implements the WOTS+ one-time signature scheme as used
// inside SPHINCS+ (chain generation, signing, and public-key recovery from
// a signature).
//
// Every chain is an independent sequence of F evaluations — the property
// HERO-Sign exploits for chain-level GPU parallelism. The functions here
// therefore expose per-chain entry points (ChainLengths, GenChain) in
// addition to whole-signature operations, so the simulated kernels can
// schedule chains onto threads exactly as the CUDA implementation does.
package wots

import (
	"herosign/internal/spx/address"
	"herosign/internal/spx/hashes"
	"herosign/internal/spx/params"
)

// ChainLengths computes the base-w representation of msg (N bytes) followed
// by the checksum digits: the start positions of all WOTSLen chains for a
// signature. The returned slice has length p.WOTSLen and entries in [0, w).
func ChainLengths(p *params.Params, msg []byte) []uint32 {
	lengths := make([]uint32, p.WOTSLen)
	baseW(p, lengths[:p.WOTSLen1], msg)

	// Checksum over the message digits.
	var csum uint32
	for _, d := range lengths[:p.WOTSLen1] {
		csum += uint32(p.W-1) - d
	}
	// Left-shift so the checksum occupies the top bits of its byte string.
	csum <<= uint((8 - (p.WOTSLen2*p.LogW)%8) % 8)
	csumBytes := make([]byte, (p.WOTSLen2*p.LogW+7)/8)
	for i := len(csumBytes) - 1; i >= 0; i-- {
		csumBytes[i] = byte(csum)
		csum >>= 8
	}
	baseW(p, lengths[p.WOTSLen1:], csumBytes)
	return lengths
}

// baseW splits msg into out digits of LogW bits, most-significant first.
func baseW(p *params.Params, out []uint32, msg []byte) {
	in := 0
	bits := 0
	var total byte
	for i := range out {
		if bits == 0 {
			total = msg[in]
			in++
			bits = 8
		}
		bits -= p.LogW
		out[i] = uint32(total>>uint(bits)) & uint32(p.W-1)
	}
}

// GenChain walks the hash chain: out = F^steps(in) starting at position
// start. adrs must have its chain word already set; the hash word is
// updated in place. in and out are N-byte values and may alias.
func GenChain(ctx *hashes.Ctx, out, in []byte, start, steps uint32, adrs *address.Address) {
	p := ctx.P
	copy(out[:p.N], in[:p.N])
	for i := start; i < start+steps && i < uint32(p.W); i++ {
		adrs.SetHash(i)
		ctx.F(out, out, adrs)
	}
}

// ChainSK derives the chain-i secret value into out using the WOTS PRF
// address type.
func ChainSK(ctx *hashes.Ctx, out []byte, chain uint32, adrs *address.Address) {
	var skAdrs address.Address
	skAdrs.CopyKeyPair(adrs)
	skAdrs.SetType(address.WOTSPRF)
	skAdrs.SetKeyPair(adrs.KeyPair())
	skAdrs.SetChain(chain)
	ctx.PRF(out, &skAdrs)
}

// PKGen computes the compressed WOTS+ public key (N bytes) for the key pair
// identified by adrs (type WOTSHash with key pair set). This runs all
// WOTSLen chains to their end and compresses them with T_len.
func PKGen(ctx *hashes.Ctx, out []byte, adrs *address.Address) {
	p := ctx.P
	pk := make([]byte, p.WOTSLen*p.N)
	var chainAdrs address.Address
	chainAdrs = *adrs
	chainAdrs.SetType(address.WOTSHash)
	chainAdrs.SetKeyPair(adrs.KeyPair())
	for i := 0; i < p.WOTSLen; i++ {
		seg := pk[i*p.N : (i+1)*p.N]
		ChainSK(ctx, seg, uint32(i), adrs)
		chainAdrs.SetChain(uint32(i))
		GenChain(ctx, seg, seg, 0, uint32(p.W-1), &chainAdrs)
	}
	var pkAdrs address.Address
	pkAdrs.CopyKeyPair(adrs)
	pkAdrs.SetType(address.WOTSPK)
	pkAdrs.SetKeyPair(adrs.KeyPair())
	ctx.Thash(out, pk, &pkAdrs)
}

// Sign produces the WOTS+ signature of msg (N bytes) into sig
// (WOTSLen*N bytes) for the key pair identified by adrs.
func Sign(ctx *hashes.Ctx, sig, msg []byte, adrs *address.Address) {
	p := ctx.P
	lengths := ChainLengths(p, msg)
	var chainAdrs address.Address
	chainAdrs = *adrs
	chainAdrs.SetType(address.WOTSHash)
	chainAdrs.SetKeyPair(adrs.KeyPair())
	for i := 0; i < p.WOTSLen; i++ {
		seg := sig[i*p.N : (i+1)*p.N]
		ChainSK(ctx, seg, uint32(i), adrs)
		chainAdrs.SetChain(uint32(i))
		GenChain(ctx, seg, seg, 0, lengths[i], &chainAdrs)
	}
}

// PKFromSig recovers the compressed public key from a signature and the
// signed message; verification succeeds when the result feeds a Merkle path
// that reproduces the tree root.
func PKFromSig(ctx *hashes.Ctx, out, sig, msg []byte, adrs *address.Address) {
	p := ctx.P
	lengths := ChainLengths(p, msg)
	pk := make([]byte, p.WOTSLen*p.N)
	var chainAdrs address.Address
	chainAdrs = *adrs
	chainAdrs.SetType(address.WOTSHash)
	chainAdrs.SetKeyPair(adrs.KeyPair())
	for i := 0; i < p.WOTSLen; i++ {
		seg := pk[i*p.N : (i+1)*p.N]
		chainAdrs.SetChain(uint32(i))
		GenChain(ctx, seg, sig[i*p.N:(i+1)*p.N], lengths[i], uint32(p.W-1)-lengths[i], &chainAdrs)
	}
	var pkAdrs address.Address
	pkAdrs.CopyKeyPair(adrs)
	pkAdrs.SetType(address.WOTSPK)
	pkAdrs.SetKeyPair(adrs.KeyPair())
	ctx.Thash(out, pk, &pkAdrs)
}
